package simt

// Read-only data cache, modeled after the texture/read-only caches GPU
// graph codes lean on: per-SM, set-associative with LRU replacement, caching
// SegmentBytes-sized lines of global memory. Disabled by default
// (Config.CacheLines == 0) so the core results match the cache-less GT200
// global-memory path; the A3 ablation turns it on.
//
// Only loads consult the cache. Stores and atomics bypass and invalidate
// (write-invalidate keeps the functional model trivially coherent; the
// performance effect of invalidation traffic is second-order for the
// read-dominated kernels studied here).

// cacheConfig fields live in Config:
//   CacheLines int   — total lines per SM (0 = disabled)
//   CacheWays  int   — associativity (default 4)
//   CacheHitLatency int64 — hit latency (default 40)

type smCache struct {
	ways  int
	sets  int
	tags  [][]uint64 // [set][way], segment number + 1 (0 = empty)
	order [][]int64  // LRU stamps
	tick  int64
}

func newSMCache(lines, ways int) *smCache {
	if ways < 1 {
		ways = 1
	}
	if ways > lines {
		ways = lines
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	c := &smCache{ways: ways, sets: sets}
	c.tags = make([][]uint64, sets)
	c.order = make([][]int64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.order[i] = make([]int64, ways)
	}
	return c
}

// access looks up one segment, inserting it on miss. Returns hit.
func (c *smCache) access(segment uint64) bool {
	c.tick++
	set := int(segment % uint64(c.sets))
	key := segment + 1
	tags := c.tags[set]
	order := c.order[set]
	victim := 0
	for w, tag := range tags {
		if tag == key {
			order[w] = c.tick
			return true
		}
		if order[w] < order[victim] {
			victim = w
		}
	}
	tags[victim] = key
	order[victim] = c.tick
	return false
}

// invalidate drops a segment if present (store/atomic write-invalidate).
func (c *smCache) invalidate(segment uint64) {
	set := int(segment % uint64(c.sets))
	key := segment + 1
	for w, tag := range c.tags[set] {
		if tag == key {
			c.tags[set][w] = 0
			c.order[set][w] = 0
		}
	}
}
