package simt

// Vectorized lane primitives: the batch-execution half of the interpret
// loop's round-2 speedup. Each method below is semantically equivalent to a
// one-instruction Apply with the obvious per-lane closure — identical
// instruction, issue-slot, lane-op, and FullMaskOps accounting, identical
// masked behavior (inactive lanes are untouched) — but executes as a tight
// specialized loop over the SoA lane slabs instead of width indirect calls
// through a closure. On the full-mask fast path the loop body is a dense
// slice walk the compiler can bounds-check-eliminate and unroll.
//
// Because the charge is bit-identical to the Apply it replaces, kernels may
// convert uniform arithmetic to these primitives without perturbing cycles,
// stats, or the sanitizer stream; TestFastPathEquivalence pins the masked
// and full-mask paths against each other, and the differential harness pins
// converted kernels against their CPU oracles across host modes.

// chargeALU1 is the shared accounting tail of every one-instruction vector
// primitive: exactly what Apply(1, f) charges.
func (c *WarpCtx) chargeALU1() {
	active := int64(c.activeN)
	c.noteALU(1, active, active)
	c.charge(request{class: opALU, issue: 1, latency: c.l.cfg.ALULatency})
}

// FillI32 sets dst[lane] = v on every active lane (one instruction) —
// Apply(1, func(l) { dst[l] = v }) without the closure dispatch.
func (c *WarpCtx) FillI32(dst []int32, v int32) {
	if c.fullMask() {
		dst = dst[:c.width]
		for lane := range dst {
			dst[lane] = v
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = v
			}
		}
	}
	c.chargeALU1()
}

// FillF32 is FillI32 for float registers.
func (c *WarpCtx) FillF32(dst []float32, v float32) {
	if c.fullMask() {
		dst = dst[:c.width]
		for lane := range dst {
			dst[lane] = v
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = v
			}
		}
	}
	c.chargeALU1()
}

// AddConstI32 performs dst[lane] += k on every active lane (one
// instruction) — the strided-loop induction step every stride kernel issues.
func (c *WarpCtx) AddConstI32(dst []int32, k int32) {
	if c.fullMask() {
		dst = dst[:c.width]
		for lane := range dst {
			dst[lane] += k
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] += k
			}
		}
	}
	c.chargeALU1()
}

// AddI32 performs dst[lane] = a[lane] + b[lane] on every active lane (one
// instruction). dst may alias a or b.
func (c *WarpCtx) AddI32(dst, a, b []int32) {
	if c.fullMask() {
		dst = dst[:c.width]
		a = a[:c.width]
		b = b[:c.width]
		for lane := range dst {
			dst[lane] = a[lane] + b[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = a[lane] + b[lane]
			}
		}
	}
	c.chargeALU1()
}

// AddF32 performs dst[lane] = a[lane] + b[lane] for float registers (one
// instruction). dst may alias a or b.
func (c *WarpCtx) AddF32(dst, a, b []float32) {
	if c.fullMask() {
		dst = dst[:c.width]
		a = a[:c.width]
		b = b[:c.width]
		for lane := range dst {
			dst[lane] = a[lane] + b[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = a[lane] + b[lane]
			}
		}
	}
	c.chargeALU1()
}

// MulAddF32 performs acc[lane] += a[lane] * b[lane] on every active lane —
// one fused multiply-add instruction, the SpMV/PageRank inner step.
func (c *WarpCtx) MulAddF32(acc, a, b []float32) {
	if c.fullMask() {
		acc = acc[:c.width]
		a = a[:c.width]
		b = b[:c.width]
		for lane := range acc {
			acc[lane] += a[lane] * b[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				acc[lane] += a[lane] * b[lane]
			}
		}
	}
	c.chargeALU1()
}

// OrI32 performs dst[lane] = a[lane] | b[lane] on every active lane (one
// instruction). dst may alias a or b.
func (c *WarpCtx) OrI32(dst, a, b []int32) {
	if c.fullMask() {
		dst = dst[:c.width]
		a = a[:c.width]
		b = b[:c.width]
		for lane := range dst {
			dst[lane] = a[lane] | b[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = a[lane] | b[lane]
			}
		}
	}
	c.chargeALU1()
}

// AndNotI32 performs dst[lane] = a[lane] &^ b[lane] on every active lane
// (one instruction) — the frontier-minus-visited step of bitmask BFS.
func (c *WarpCtx) AndNotI32(dst, a, b []int32) {
	if c.fullMask() {
		dst = dst[:c.width]
		a = a[:c.width]
		b = b[:c.width]
		for lane := range dst {
			dst[lane] = a[lane] &^ b[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = a[lane] &^ b[lane]
			}
		}
	}
	c.chargeALU1()
}
