package simt

import "testing"

func TestSMCacheBasics(t *testing.T) {
	c := newSMCache(8, 2) // 4 sets x 2 ways
	if c.access(0) {
		t.Fatal("cold access hit")
	}
	if !c.access(0) {
		t.Fatal("warm access missed")
	}
	// Segments 0, 4, 8 all map to set 0 (mod 4): two ways hold 2 of them.
	c.access(4)
	if !c.access(0) || !c.access(4) {
		t.Fatal("two-way set lost a resident line")
	}
	c.access(8) // evicts LRU (0 was touched after 4... order: 0,4 -> touch 0, touch 4; LRU is 0)
	if c.access(8) != true {
		t.Fatal("just-inserted line missing")
	}
}

func TestSMCacheLRU(t *testing.T) {
	c := newSMCache(2, 2) // one set, two ways
	c.access(10)
	c.access(20)
	c.access(10) // 20 is now LRU
	c.access(30) // evicts 20
	if !c.access(10) {
		t.Fatal("MRU line evicted")
	}
	if c.access(20) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestSMCacheInvalidate(t *testing.T) {
	c := newSMCache(4, 4)
	c.access(7)
	c.invalidate(7)
	if c.access(7) {
		t.Fatal("invalidated line hit")
	}
	// Invalidating an absent line is a no-op.
	c.invalidate(99)
}

func TestSMCacheDegenerateShapes(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {1, 4}, {4, 8}} {
		c := newSMCache(shape[0], shape[1])
		c.access(1)
		if !c.access(1) {
			t.Fatalf("cache %v broken", shape)
		}
	}
}

func cachedConfig() Config {
	cfg := testConfig()
	cfg.CacheLines = 256
	return cfg
}

func TestCacheDisabledNoCounters(t *testing.T) {
	d := newTestDevice(t)
	buf := d.AllocI32("buf", 64)
	k := func(w *WarpCtx) {
		v := w.VecI32()
		w.LoadI32(buf, w.LaneIDs(), v)
		w.LoadI32(buf, w.LaneIDs(), v)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || stats.CacheMisses != 0 {
		t.Fatalf("cache counters nonzero with cache disabled: %+v", stats)
	}
}

func TestCacheHitsOnRepeatedLoads(t *testing.T) {
	d := MustNewDevice(cachedConfig())
	buf := d.AllocI32("buf", 64)
	const repeats = 8
	k := func(w *WarpCtx) {
		v := w.VecI32()
		for i := 0; i < repeats; i++ {
			w.LoadI32(buf, w.LaneIDs(), v)
		}
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	// One 128B segment: first load misses, the rest hit.
	if stats.CacheMisses != 1 {
		t.Fatalf("CacheMisses = %d, want 1", stats.CacheMisses)
	}
	if stats.CacheHits != repeats-1 {
		t.Fatalf("CacheHits = %d, want %d", stats.CacheHits, repeats-1)
	}
	// DRAM transactions only for the miss.
	if stats.MemTxns != 1 {
		t.Fatalf("MemTxns = %d, want 1", stats.MemTxns)
	}

	// The same kernel without a cache pays DRAM latency every time.
	d2 := newTestDevice(t)
	buf2 := d2.AllocI32("buf", 64)
	k2 := func(w *WarpCtx) {
		v := w.VecI32()
		for i := 0; i < repeats; i++ {
			w.LoadI32(buf2, w.LaneIDs(), v)
		}
	}
	uncached, err := d2.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cycles >= uncached.Cycles {
		t.Fatalf("cache did not help: %d vs %d cycles", stats.Cycles, uncached.Cycles)
	}
}

func TestStoreInvalidatesCache(t *testing.T) {
	d := MustNewDevice(cachedConfig())
	buf := d.AllocI32("buf", 64)
	k := func(w *WarpCtx) {
		v := w.VecI32()
		w.LoadI32(buf, w.LaneIDs(), v)  // miss
		w.StoreI32(buf, w.LaneIDs(), v) // invalidate
		w.LoadI32(buf, w.LaneIDs(), v)  // miss again
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 2 || stats.CacheHits != 0 {
		t.Fatalf("write-invalidate broken: hits=%d misses=%d", stats.CacheHits, stats.CacheMisses)
	}
}

func TestAtomicInvalidatesCache(t *testing.T) {
	d := MustNewDevice(cachedConfig())
	buf := d.AllocI32("buf", 64)
	k := func(w *WarpCtx) {
		v := w.VecI32()
		w.LoadI32(buf, w.LaneIDs(), v)
		w.AtomicAddI32(buf, w.LaneIDs(), w.ConstI32(1), nil)
		w.LoadI32(buf, w.LaneIDs(), v)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheMisses != 2 {
		t.Fatalf("atomic did not invalidate: misses=%d", stats.CacheMisses)
	}
	// Functional result unaffected by caching.
	for i, x := range buf.Data()[:32] {
		if x != 1 {
			t.Fatalf("buf[%d] = %d", i, x)
		}
	}
}

func TestCacheDeterminism(t *testing.T) {
	run := func() *LaunchStats {
		d := MustNewDevice(cachedConfig())
		buf := d.AllocI32("buf", 4096)
		k := func(w *WarpCtx) {
			idx := w.VecI32()
			v := w.VecI32()
			for i := 0; i < 16; i++ {
				w.Apply(1, func(l int) {
					idx[l] = (int32(l)*67 + int32(i)*13 + int32(w.GlobalWarpID())*7) % 4096
				})
				w.LoadI32(buf, idx, v)
			}
		}
		s, err := d.Launch(Grid1D(512, 64), k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses || a.Cycles != b.Cycles {
		t.Fatalf("cache nondeterministic:\n%+v\n%+v", a, b)
	}
	if a.CacheHits == 0 {
		t.Fatal("expected some cache hits in the mixed workload")
	}
}

func TestCacheConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheLines = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative CacheLines accepted")
	}
	cfg = DefaultConfig()
	cfg.CacheLines = 128
	d, err := NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Config(); got.CacheWays != 4 || got.CacheHitLatency != 40 {
		t.Fatalf("cache defaults not applied: %+v", got)
	}
}
