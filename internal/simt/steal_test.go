package simt

import (
	"reflect"
	"testing"
)

// powerLawGridKernel is the imbalanced-grid fixture: per-block cost follows a
// Zipf-like curve of the block id (block 0 spins ~maxSpin iterations, block b
// spins ~maxSpin/(b+1)), the pathology a static breadth-first block
// distributor serializes on — the first-admitted stripe of blocks is
// systematically the heaviest. The body mixes ALU spin, global loads/stores,
// and an atomic so stealing equivalence covers every cross-SM mechanism.
func powerLawGridKernel(data, hist *BufI32, maxSpin int32) Kernel {
	return func(w *WarpCtx) {
		spin := maxSpin / (int32(w.BlockID()) + 1)
		gtid := w.GlobalThreadIDs()
		n := int32(data.Len())
		idx := w.VecI32()
		w.Apply(1, func(l int) { idx[l] = gtid[l] % n })
		v := w.VecI32()
		w.LoadI32(data, idx, v)
		i := w.ConstI32(0)
		w.While(func(l int) bool { return i[l] < spin }, func() {
			w.Apply(1, func(l int) { v[l] = v[l]*1664525 + 1013904223 })
			w.AddConstI32(i, 1)
		})
		bucket := w.VecI32()
		w.Apply(1, func(l int) { bucket[l] = ((v[l] % 16) + 16) % 16 })
		w.AtomicAddI32(hist, bucket, w.ConstI32(1), nil)
		w.StoreI32(data, idx, v)
	}
}

// runPowerLaw executes the imbalanced fixture with the given block schedule
// and host mode and returns the stats plus final memory.
func runPowerLaw(t *testing.T, schedule string, parallelSMs int) (*LaunchStats, []int32, []int32) {
	t.Helper()
	cfg := testConfig()
	cfg.NumSMs = 8
	cfg.ParallelSMs = parallelSMs
	cfg.BlockSchedule = schedule
	d := MustNewDevice(cfg)
	n := 2048
	init := make([]int32, n)
	for i := range init {
		init[i] = int32(i*2654435761) % 251
	}
	data := d.UploadI32("data", init)
	hist := d.AllocI32("hist", 16)
	stats, err := d.Launch(LaunchConfig{Blocks: 32, ThreadsPerBlock: 64},
		powerLawGridKernel(data, hist, 512))
	if err != nil {
		t.Fatal(err)
	}
	return stats,
		append([]int32(nil), data.Data()...),
		append([]int32(nil), hist.Data()...)
}

// TestStealEquivalenceAcrossHostModes is the stealing determinism guarantee:
// for both block schedules, every ParallelSMs setting produces bit-identical
// memory contents and bit-identical merged LaunchStats on the imbalanced
// fixture. (Run under -race in CI: `make race` covers this package.)
func TestStealEquivalenceAcrossHostModes(t *testing.T) {
	for _, schedule := range []string{"fifo", "steal"} {
		refStats, refData, refHist := runPowerLaw(t, schedule, 1)
		if refStats.ParallelSMs != 1 || refStats.SequentialFallback != "" {
			t.Fatalf("%s reference run: mode %d fallback %q",
				schedule, refStats.ParallelSMs, refStats.SequentialFallback)
		}
		for _, mode := range []int{2, 8} {
			stats, data, hist := runPowerLaw(t, schedule, mode)
			norm := *stats
			norm.ParallelSMs = refStats.ParallelSMs
			if !reflect.DeepEqual(&norm, refStats) {
				t.Errorf("%s ParallelSMs=%d stats differ from sequential:\n seq: %+v\n par: %+v",
					schedule, mode, refStats, stats)
			}
			if !reflect.DeepEqual(data, refData) {
				t.Errorf("%s ParallelSMs=%d data buffer differs", schedule, mode)
			}
			if !reflect.DeepEqual(hist, refHist) {
				t.Errorf("%s ParallelSMs=%d histogram differs: seq %v par %v",
					schedule, mode, refHist, hist)
			}
		}
	}
}

// TestStealRunToRunDeterminism re-runs the stealing schedule at ParallelSMs=8
// against itself: host goroutine timing must not leak into the block→SM
// assignment.
func TestStealRunToRunDeterminism(t *testing.T) {
	aStats, aData, aHist := runPowerLaw(t, "steal", 8)
	for i := 0; i < 3; i++ {
		bStats, bData, bHist := runPowerLaw(t, "steal", 8)
		if !reflect.DeepEqual(aStats, bStats) {
			t.Fatalf("run %d: stats differ:\n a: %+v\n b: %+v", i, aStats, bStats)
		}
		if !reflect.DeepEqual(aData, bData) || !reflect.DeepEqual(aHist, bHist) {
			t.Fatalf("run %d: memory contents differ", i)
		}
	}
}

// TestStealBalancesImbalancedGrid pins the point of the policy: on the
// power-law fixture the stealing distributor must finish the simulated
// launch with a tighter per-SM finish spread (and no later overall) than the
// eager FIFO distributor. Both runs are deterministic, so the comparison is
// stable.
func TestStealBalancesImbalancedGrid(t *testing.T) {
	fifoStats, _, _ := runPowerLaw(t, "fifo", 1)
	stealStats, _, _ := runPowerLaw(t, "steal", 1)
	if f, s := fifoStats.SMFinishCV(), stealStats.SMFinishCV(); s >= f {
		t.Errorf("SMFinishCV: steal %v >= fifo %v — stealing did not tighten the finish spread", s, f)
	}
	// Depth-1 dispatch trades a little cross-block latency hiding for
	// balance, so simulated cycles may tick up slightly; bound the cost.
	if lim := fifoStats.Cycles + fifoStats.Cycles/10; stealStats.Cycles > lim {
		t.Errorf("Cycles: steal %d > fifo %d + 10%% on the imbalanced grid", stealStats.Cycles, fifoStats.Cycles)
	}
}

// TestStealConfigValidation covers the new knobs.
func TestStealConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSchedule = "lifo"
	if err := cfg.Validate(); err == nil {
		t.Error("BlockSchedule=lifo validated")
	}
	cfg = DefaultConfig()
	cfg.StealDepth = -1
	if err := cfg.Validate(); err == nil {
		t.Error("StealDepth=-1 validated")
	}
	cfg = DefaultConfig()
	cfg.BlockSchedule = "steal"
	if err := cfg.Validate(); err != nil {
		t.Errorf("BlockSchedule=steal rejected: %v", err)
	}
}
