package simt

import (
	"fmt"
	"reflect"
	"testing"
)

// recordingSanitizer captures every sanitizer callback as a comparable
// string so two launches' diagnostic streams can be diffed verbatim.
type recordingSanitizer struct {
	events []string
}

func (r *recordingSanitizer) LaunchBegin(lc LaunchConfig) {
	r.events = append(r.events, fmt.Sprintf("begin blocks=%d tpb=%d", lc.Blocks, lc.ThreadsPerBlock))
}

func (r *recordingSanitizer) GlobalAccess(a *GlobalAccess) {
	r.events = append(r.events, fmt.Sprintf("global kind=%d block=%d warp=%d mask=%v idx=%v",
		a.Kind, a.Block, a.Warp, a.Mask, a.Idx))
}

func (r *recordingSanitizer) SharedAccess(a *SharedAccess) {
	r.events = append(r.events, fmt.Sprintf("shared kind=%d block=%d warp=%d", a.Kind, a.Block, a.Warp))
}

func (r *recordingSanitizer) Barrier(block, warp int, divergent bool) {
	r.events = append(r.events, fmt.Sprintf("barrier block=%d warp=%d div=%v", block, warp, divergent))
}

func (r *recordingSanitizer) WarpDone(block, warp, barriers int) {
	r.events = append(r.events, fmt.Sprintf("done block=%d warp=%d barriers=%d", block, warp, barriers))
}

func (r *recordingSanitizer) LaunchEnd(err error) {
	r.events = append(r.events, fmt.Sprintf("end err=%v", err))
}

// fastPathProbeKernel mixes fully-uniform phases (every lane active — the
// full-mask fast path) with divergent If/While regions and memory traffic,
// so both code paths execute substantially in one launch.
func fastPathProbeKernel(data, hist *BufI32) Kernel {
	return func(w *WarpCtx) {
		lane := w.LaneIDs()
		idx := w.VecI32()
		v := w.VecI32()
		acc := w.VecI32()
		one := w.VecI32()
		base := int32(w.GlobalWarpID()) * int32(w.Width())

		// Uniform phase: all lanes active, contiguous addresses.
		w.Apply(1, func(l int) {
			idx[l] = (base + lane[l]) % int32(data.Len())
			one[l] = 1
		})
		w.LoadI32(data, idx, v)
		w.Apply(2, func(l int) { acc[l] = v[l] * 3 })
		w.StoreI32(data, idx, acc)

		// Vectorized uniform primitives (ctx_vec.go), full-mask here: must
		// charge and behave exactly like their Apply forms on both paths.
		w.FillI32(one, 1)
		w.AddConstI32(acc, 5)
		w.AddI32(acc, acc, v)
		w.OrI32(acc, acc, one)
		f := w.VecF32()
		g := w.VecF32()
		w.FillF32(f, 1.5)
		w.AddF32(g, f, f)
		w.MulAddF32(g, f, f)
		w.Apply(1, func(l int) { acc[l] += int32(g[l]) })

		// Divergent phase: half the lanes take the then-branch, and a
		// per-lane While runs a lane-dependent trip count. The vectorized
		// primitives run masked here.
		w.If(func(l int) bool { return lane[l]%2 == 0 }, func() {
			w.Apply(1, func(l int) { acc[l] += 100 })
			w.AddConstI32(acc, 3)
			w.AndNotI32(acc, acc, one)
			w.LoadI32(data, idx, v)
		}, func() {
			w.Apply(1, func(l int) { acc[l] -= 7 })
		})
		trip := w.VecI32()
		w.Apply(1, func(l int) { trip[l] = lane[l] % 4 })
		w.While(func(l int) bool { return trip[l] > 0 }, func() {
			w.Apply(1, func(l int) {
				trip[l]--
				acc[l]++
			})
		})

		// Re-converged uniform tail: full-mask again after divergence, plus
		// cross-warp atomics and a barrier.
		w.Apply(1, func(l int) { idx[l] = (base + lane[l]) % int32(hist.Len()) })
		w.AtomicAddI32(hist, idx, one, v)
		w.SyncThreads()
		w.StoreI32(data, idx, acc)
	}
}

type fastPathRun struct {
	stats *LaunchStats
	data  []int32
	hist  []int32
	diag  []string
}

func runFastPathProbe(t *testing.T, disableFast bool) fastPathRun {
	t.Helper()
	saved := debugDisableFastPath
	debugDisableFastPath = disableFast
	defer func() { debugDisableFastPath = saved }()

	cfg := DefaultConfig()
	cfg.NumSMs = 4
	d := MustNewDevice(cfg)
	rec := &recordingSanitizer{}
	d.SetSanitizer(rec)
	data := d.AllocI32("data", 1<<12)
	hist := d.AllocI32("hist", 256)
	for i := range data.Data() {
		data.Data()[i] = int32(i % 37)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 12, ThreadsPerBlock: 64}, fastPathProbeKernel(data, hist))
	if err != nil {
		t.Fatal(err)
	}
	return fastPathRun{
		stats: stats,
		data:  append([]int32(nil), data.Data()...),
		hist:  append([]int32(nil), hist.Data()...),
		diag:  rec.events,
	}
}

// TestFastPathEquivalence pins that the full-mask fast path is purely an
// execution shortcut: with it force-disabled, a kernel mixing uniform and
// divergent phases must produce bit-identical cycles, stats, memory, and an
// identical sanitizer event stream.
func TestFastPathEquivalence(t *testing.T) {
	fast := runFastPathProbe(t, false)
	slow := runFastPathProbe(t, true)

	if fast.stats.Cycles != slow.stats.Cycles {
		t.Errorf("cycles diverge: fast=%d slow=%d", fast.stats.Cycles, slow.stats.Cycles)
	}
	if fast.stats.Instructions != slow.stats.Instructions {
		t.Errorf("instructions diverge: fast=%d slow=%d", fast.stats.Instructions, slow.stats.Instructions)
	}
	// FullMaskOps is derived from the mask state, not from which code path
	// ran, so it must match too.
	if fast.stats.FullMaskOps != slow.stats.FullMaskOps {
		t.Errorf("FullMaskOps diverge: fast=%d slow=%d", fast.stats.FullMaskOps, slow.stats.FullMaskOps)
	}
	if fast.stats.FullMaskOps == 0 {
		t.Error("probe kernel never took the full-mask path; it no longer exercises the fast path")
	}
	if fast.stats.FullMaskOps >= fast.stats.Instructions {
		t.Error("probe kernel never diverged; it no longer exercises the slow path")
	}
	if !reflect.DeepEqual(fast.stats, slow.stats) {
		t.Errorf("stats structs diverge:\nfast: %+v\nslow: %+v", fast.stats, slow.stats)
	}
	if !reflect.DeepEqual(fast.data, slow.data) {
		t.Error("data buffer contents diverge between fast and slow paths")
	}
	if !reflect.DeepEqual(fast.hist, slow.hist) {
		t.Error("atomic histogram contents diverge between fast and slow paths")
	}
	if len(fast.diag) != len(slow.diag) {
		t.Fatalf("sanitizer event counts diverge: fast=%d slow=%d", len(fast.diag), len(slow.diag))
	}
	for i := range fast.diag {
		if fast.diag[i] != slow.diag[i] {
			t.Fatalf("sanitizer event %d diverges:\nfast: %s\nslow: %s", i, fast.diag[i], slow.diag[i])
		}
	}
}

// TestVecPrimitivesMatchApply pins the conversion contract of ctx_vec.go: a
// kernel written with the vectorized primitives must produce bit-identical
// cycles, stats, and memory to the same kernel written with one-instruction
// Apply closures, in uniform and divergent regions alike.
func TestVecPrimitivesMatchApply(t *testing.T) {
	run := func(vec bool) (*LaunchStats, []int32) {
		cfg := DefaultConfig()
		cfg.NumSMs = 4
		d := MustNewDevice(cfg)
		out := d.AllocI32("out", 1<<10)
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			a := w.VecI32()
			b := w.VecI32()
			f := w.VecF32()
			g := w.VecF32()
			if vec {
				w.FillI32(a, 7)
				w.AddConstI32(a, 2)
				w.AddI32(b, a, a)
				w.OrI32(b, b, a)
				w.FillF32(f, 0.25)
				w.AddF32(g, f, f)
				w.MulAddF32(g, f, f)
				w.If(func(l int) bool { return lane[l] < int32(w.Width()/2) }, func() {
					w.AndNotI32(b, b, a)
					w.AddConstI32(b, 11)
				}, nil)
			} else {
				w.Apply(1, func(l int) { a[l] = 7 })
				w.Apply(1, func(l int) { a[l] += 2 })
				w.Apply(1, func(l int) { b[l] = a[l] + a[l] })
				w.Apply(1, func(l int) { b[l] |= a[l] })
				w.Apply(1, func(l int) { f[l] = 0.25 })
				w.Apply(1, func(l int) { g[l] = f[l] + f[l] })
				w.Apply(1, func(l int) { g[l] += f[l] * f[l] })
				w.If(func(l int) bool { return lane[l] < int32(w.Width()/2) }, func() {
					w.Apply(1, func(l int) { b[l] = b[l] &^ a[l] })
					w.Apply(1, func(l int) { b[l] += 11 })
				}, nil)
			}
			w.Apply(1, func(l int) { b[l] += int32(g[l] * 4) })
			idx := w.GlobalThreadIDs()
			w.StoreI32(out, idx, b)
		}
		stats, err := d.Launch(Grid1D(1<<10, 128), k)
		if err != nil {
			t.Fatal(err)
		}
		return stats, append([]int32(nil), out.Data()...)
	}
	vStats, vOut := run(true)
	aStats, aOut := run(false)
	if !reflect.DeepEqual(vStats, aStats) {
		t.Errorf("stats diverge between vec and Apply forms:\nvec:   %+v\napply: %+v", vStats, aStats)
	}
	if !reflect.DeepEqual(vOut, aOut) {
		t.Error("memory contents diverge between vec and Apply forms")
	}
}
