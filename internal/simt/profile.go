package simt

import "math/bits"

// Per-launch profiling: optional cycle/latency histograms collected by the
// scheduler alongside the flat LaunchStats counters. Like every other
// counter, histograms accumulate in per-SM shards and merge bucket-wise at
// launch end, so the totals are bit-identical for every ParallelSMs setting.
// Profiling is off unless requested (Device.SetProfiling or
// LaunchOpts.Profile); the hot path then pays one nil-check per event.

// ProfileBuckets is the bucket count of a ProfileHist.
const ProfileBuckets = 20

// ProfileHist is a power-of-two-bucketed histogram of non-negative int64
// samples: bucket 0 counts zeros, bucket i >= 1 counts samples in
// [2^(i-1), 2^i - 1], and the last bucket absorbs everything larger.
type ProfileHist struct {
	Buckets [ProfileBuckets]int64
	Count   int64
	Sum     int64
}

// Observe records one sample (negatives clamp to zero).
func (h *ProfileHist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= ProfileBuckets {
		b = ProfileBuckets - 1
	}
	h.Buckets[b]++
	h.Count++
	h.Sum += v
}

// BucketUpperBound returns the inclusive upper bound of bucket i, or -1 for
// the unbounded last bucket.
func BucketUpperBound(i int) int64 {
	if i < 0 || i >= ProfileBuckets-1 {
		return -1
	}
	return int64(1)<<uint(i) - 1
}

// Mean returns the average observed sample (0 when empty).
func (h *ProfileHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

func (h *ProfileHist) add(o *ProfileHist) {
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// LaunchProfile holds the optional per-launch histograms. All four are
// order-independent sums over per-SM shards, so they are deterministic
// across host execution modes.
type LaunchProfile struct {
	// InstrLatency buckets each issued instruction's result latency.
	InstrLatency ProfileHist
	// MemTxns buckets coalesced transactions per global-memory instruction
	// (the per-instruction view of the coalescing quality TxnsPerMemOp
	// averages away).
	MemTxns ProfileHist
	// StallWait buckets the idle gaps the scheduler had to bridge when no
	// resident warp was ready to issue.
	StallWait ProfileHist
	// WarpBusy buckets per-warp busy cycles at warp completion — the
	// distribution behind the workload-imbalance CV.
	WarpBusy ProfileHist
}

func (p *LaunchProfile) add(o *LaunchProfile) {
	p.InstrLatency.add(&o.InstrLatency)
	p.MemTxns.add(&o.MemTxns)
	p.StallWait.add(&o.StallWait)
	p.WarpBusy.add(&o.WarpBusy)
}

// Clone returns a deep copy.
func (p *LaunchProfile) Clone() *LaunchProfile {
	c := *p
	return &c
}
