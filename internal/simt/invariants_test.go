package simt

import (
	"testing"
	"testing/quick"
)

// TestGroupReduceOr covers the OR reduction used by graph coloring.
func TestGroupReduceOr(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 32)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		bits := w.VecI32()
		w.Apply(1, func(l int) { bits[l] = 1 << uint(lane[l]%4) })
		or := w.VecI32()
		w.GroupReduceOrI32(8, bits, or)
		w.StoreI32(out, lane, or)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	// Every group of 8 lanes covers residues 0..3: OR = 0b1111.
	for i, v := range out.Data() {
		if v != 0b1111 {
			t.Fatalf("or[%d] = %b, want 1111", i, v)
		}
	}
}

func TestGroupReduceOrRespectsMask(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 32)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		bits := w.VecI32()
		w.Apply(1, func(l int) { bits[l] = 1 << uint(lane[l]%8) })
		w.If(func(l int) bool { return lane[l]%8 < 2 }, func() {
			or := w.VecI32()
			w.GroupReduceOrI32(8, bits, or)
			w.StoreI32(out, lane, or)
		}, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if i%8 < 2 {
			if out.Data()[i] != 0b11 {
				t.Fatalf("masked or[%d] = %b, want 11", i, out.Data()[i])
			}
		} else if out.Data()[i] != 0 {
			t.Fatalf("inactive lane %d wrote %d", i, out.Data()[i])
		}
	}
}

// TestPropertyStatsInvariants launches pseudo-random kernel shapes and
// checks accounting invariants that must hold for any program:
// utilizations in [0,1], useful <= active, issue slots >= instructions,
// cycles positive when work was done, mem txns bounded by lanes per op.
func TestPropertyStatsInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			return int(r>>33) % n
		}
		// The kernel mutates the shared `next` closure from every warp, so
		// it is only well-defined on the sequential event loop.
		cfg := testConfig()
		cfg.ParallelSMs = 1
		d := MustNewDevice(cfg)
		buf := d.AllocI32("buf", 1024)
		cnt := d.AllocI32("cnt", 4)
		nOps := next(6) + 1
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			idx := w.VecI32()
			v := w.VecI32()
			for op := 0; op < nOps; op++ {
				switch next(5) {
				case 0:
					w.Apply(next(3)+1, func(l int) { v[l] = lane[l] })
				case 1:
					stride := int32(next(8) + 1)
					w.Apply(1, func(l int) { idx[l] = (lane[l] * stride) % 1024 })
					w.LoadI32(buf, idx, v)
				case 2:
					w.If(func(l int) bool { return lane[l]%int32(next(4)+2) == 0 }, func() {
						w.Apply(1, func(l int) { v[l]++ })
					}, func() {
						w.Apply(1, func(l int) { v[l]-- })
					})
				case 3:
					tgt := w.ConstI32(int32(next(4)))
					w.AtomicAddI32(cnt, tgt, w.ConstI32(1), nil)
				case 4:
					w.ApplyReplicated(1, 8, func(g int) {})
				}
			}
		}
		stats, err := d.Launch(Grid1D(next(512)+32, 64), k)
		if err != nil {
			return false
		}
		su, uu := stats.SIMDUtilization(), stats.UsefulUtilization()
		switch {
		case su < 0 || su > 1 || uu < 0 || uu > su+1e-12:
			return false
		case stats.IssueSlots < stats.Instructions:
			return false
		case stats.Cycles <= 0 || stats.StallCycles < 0:
			return false
		case stats.MemTxns > stats.MemOps*int64(stats.WarpWidth):
			return false
		case stats.WarpsLaunched <= 0 || stats.BlocksLaunched <= 0:
			return false
		}
		// Per-warp busy must be recorded for every launched warp.
		return len(stats.WarpBusy) == stats.WarpsLaunched
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminismRandomKernels re-runs random kernel shapes and
// demands identical stats.
func TestPropertyDeterminismRandomKernels(t *testing.T) {
	run := func(seed uint64) *LaunchStats {
		r := seed
		next := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			return int(r>>33) % n
		}
		// Shared `next` closure mutated inside the kernel: sequential only.
		cfg := testConfig()
		cfg.ParallelSMs = 1
		d := MustNewDevice(cfg)
		buf := d.AllocI32("buf", 512)
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			idx := w.VecI32()
			v := w.VecI32()
			for op := 0; op < 4; op++ {
				stride := int32(next(16) + 1)
				w.Apply(1, func(l int) { idx[l] = (lane[l]*stride + int32(w.GlobalWarpID())) % 512 })
				w.LoadI32(buf, idx, v)
				w.StoreI32(buf, idx, v)
			}
		}
		s, err := d.Launch(Grid1D(256, 64), k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for seed := uint64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if a.Cycles != b.Cycles || a.MemTxns != b.MemTxns || a.IssueSlots != b.IssueSlots {
			t.Fatalf("seed %d nondeterministic", seed)
		}
	}
}
