package simt

import (
	"errors"
	"fmt"
)

// This file defines the simulator's failure model. Every way a launch can
// fail surfaces at the Launch/LaunchWith boundary as a typed error — never a
// panic — so callers can distinguish transient faults (worth retrying) from
// permanent ones (a kernel bug, a lost device) and react programmatically.
//
// The model mirrors a real CUDA driver's contract:
//
//   - out-of-range device accesses and kernel panics map to a *KernelFault
//     carrying the faulting buffer, index, block/warp/lane, and cycle
//     (cudaErrorIllegalAddress with the extra context a simulator can give);
//   - injected memory bit-flips and mid-launch aborts are *KernelFault too,
//     with transient kinds (an ECC double-bit error or a preempted kernel);
//   - exceeding the cycle deadline wraps ErrLaunchTimeout;
//   - a lost device wraps ErrDeviceLost and poisons subsequent launches
//     until Revive, like cudaErrorDevicesUnavailable until a driver reset.

// FaultKind classifies a kernel failure.
type FaultKind uint8

const (
	// FaultUnknown is the zero value; never produced by the simulator.
	FaultUnknown FaultKind = iota
	// FaultOOB is an out-of-range global or shared memory access.
	FaultOOB
	// FaultPanic is a Go panic escaping kernel code (including misuse of
	// WarpCtx primitives, e.g. an invalid group width).
	FaultPanic
	// FaultBitFlip is an injected single-bit memory corruption, detected and
	// reported like an ECC uncorrectable error. Transient: a retry with
	// restored buffers is expected to succeed.
	FaultBitFlip
	// FaultAbort is an injected mid-launch kernel abort (a preempted or
	// evicted kernel). Transient.
	FaultAbort
	// FaultCancelled is a launch cancelled by LaunchOpts.OnProgress.
	FaultCancelled
)

// String names the kind for logs and error text.
func (k FaultKind) String() string {
	switch k {
	case FaultOOB:
		return "out-of-bounds"
	case FaultPanic:
		return "kernel-panic"
	case FaultBitFlip:
		return "bit-flip"
	case FaultAbort:
		return "kernel-abort"
	case FaultCancelled:
		return "cancelled"
	default:
		return "unknown"
	}
}

// Transient reports whether a fault of this kind is expected to succeed on
// retry (after restoring any corrupted buffers). Deterministic failures —
// bad indices, kernel bugs, cancellation — are not transient.
func (k FaultKind) Transient() bool {
	return k == FaultBitFlip || k == FaultAbort
}

// KernelFault is the structured error describing a failed kernel launch.
// Fields that are unknown for a given fault are -1 (locations) or zero
// values (names).
type KernelFault struct {
	// Kind classifies the failure.
	Kind FaultKind
	// Buffer names the device buffer involved, if any ("shared:<key>" for
	// block-shared arrays).
	Buffer string
	// Index is the faulting element index within Buffer (-1 if not
	// applicable).
	Index int64
	// Block, Warp, Lane locate the fault in the grid: the block id, the
	// grid-wide warp id, and the lane within the warp (-1 when the fault is
	// not attributable, e.g. an injected device-level fault).
	Block, Warp, Lane int
	// Cycle is the SM clock when the fault surfaced.
	Cycle int64
	// Detail is the human-readable description.
	Detail string
	// Stack holds the goroutine stack for FaultPanic faults.
	Stack string
}

// Error implements the error interface.
func (f *KernelFault) Error() string {
	msg := fmt.Sprintf("simt: %s fault", f.Kind)
	if f.Buffer != "" {
		msg += fmt.Sprintf(" on buffer %q", f.Buffer)
		if f.Index >= 0 {
			msg += fmt.Sprintf(" index %d", f.Index)
		}
	}
	if f.Block >= 0 {
		msg += fmt.Sprintf(" in block %d warp %d", f.Block, f.Warp)
		if f.Lane >= 0 {
			msg += fmt.Sprintf(" lane %d", f.Lane)
		}
	}
	if f.Cycle > 0 {
		msg += fmt.Sprintf(" at cycle %d", f.Cycle)
	}
	if f.Detail != "" {
		msg += ": " + f.Detail
	}
	return msg
}

// Transient reports whether retrying the launch (with restored buffers) is
// expected to succeed.
func (f *KernelFault) Transient() bool { return f.Kind.Transient() }

// Sentinel errors for device-level failures. They are always returned
// wrapped (with context), so test with errors.Is.
var (
	// ErrDeviceLost means the simulated device failed permanently
	// mid-launch; every subsequent launch fails with it until Revive.
	ErrDeviceLost = errors.New("simt: device lost")
	// ErrLaunchTimeout means the launch exceeded its cycle deadline
	// (Config.MaxCycles or LaunchOpts.MaxCycles).
	ErrLaunchTimeout = errors.New("simt: launch deadline exceeded")
	// ErrLaunchCancelled means LaunchOpts.OnProgress aborted the launch.
	ErrLaunchCancelled = errors.New("simt: launch cancelled")
)

// IsTransient reports whether err represents a transient launch failure — an
// injected bit-flip or kernel abort — that a retry with restored buffers is
// expected to survive. Permanent failures (out-of-bounds accesses, kernel
// panics, timeouts, cancellations, a lost device) return false.
func IsTransient(err error) bool {
	var kf *KernelFault
	if errors.As(err, &kf) {
		return kf.Transient()
	}
	return false
}

// newFaultOOB builds the typed out-of-bounds fault panicked from inside a
// kernel and recovered at the launch boundary; location fields are filled in
// by the recovering warp goroutine.
func newFaultOOB(buffer string, index int64, n int) *KernelFault {
	return &KernelFault{
		Kind:   FaultOOB,
		Buffer: buffer,
		Index:  index,
		Block:  -1, Warp: -1, Lane: -1,
		Detail: fmt.Sprintf("index %d out of range [0,%d)", index, n),
	}
}
