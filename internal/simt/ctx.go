package simt

import (
	"fmt"
	"math/bits"
)

// debugDisableFastPath forces every warp primitive down its masked slow
// path even when all lanes are active. It exists for the fast-path
// equivalence tests, which assert bit-identical stats, results, and
// sanitizer diagnostics across both paths; it must never be set outside
// tests.
var debugDisableFastPath bool

// WarpCtx is the per-warp execution context a Kernel runs against. Per-lane
// values are Go slices of length Width(); control flow goes through If and
// While so the active-lane mask (and thus divergence and utilization
// accounting) always mirrors what SIMT hardware would do.
//
// Methods on WarpCtx must only be called from inside the kernel function
// that received it, and only on the goroutine executing that kernel.
//
// The context is allocation-free in steady state: lane state lives in
// structure-of-arrays slabs owned by the warp, If/While mask save/restore
// recycles through a per-warp free list, and the register helpers (VecI32,
// ConstI32, ...) hand out slots of a per-warp register file that is reclaimed
// wholesale when the context is recycled for the next launch (see the device
// warp pool in sched.go).
type WarpCtx struct {
	l *launch
	w *warpRT

	width int
	mask  []bool
	// activeN is the number of true lanes in mask, maintained incrementally
	// by the mask-mutating primitives so ActiveCount and the full-mask fast
	// path are O(1) instead of an O(width) scan per instruction.
	activeN int

	lanes []int32
	gtids []int32

	// entryMask is the kernel-entry active mask (the tail-warp mask); the
	// sanitizer's synccheck compares the live mask against it at barriers.
	// barriers counts SyncThreads passed — the shared-memory barrier epoch.
	entryMask []bool
	barriers  int

	// laneSlab backs lanes+gtids and boolSlab backs mask+entryMask: one
	// allocation each instead of four (SoA slabs owned by the warp).
	laneSlab []int32
	boolSlab []bool

	// maskFree recycles width-sized mask save/restore buffers for If/While.
	// Get/put is LIFO, matching the nesting structure of structured control
	// flow, so the list grows to the maximum nesting depth and then never
	// allocates again.
	maskFree [][]bool

	// Register files: vectors handed out by VecI32/VecF32/VecBool (and the
	// Const/Copy variants). regI32Next etc. index the next reusable slot;
	// recycling resets the cursors so the same backing arrays serve the next
	// kernel invocation. Capped so a kernel that allocates registers inside
	// an unbounded loop degrades to plain allocation instead of growing the
	// file without limit.
	regI32      [][]int32
	regI32Next  int
	regF32      [][]float32
	regF32Next  int
	regBool     [][]bool
	regBoolNext int

	// scratch buffers reused across ops to keep the simulator allocation-free
	// in steady state.
	addrScratch []uint64
	segScratch  []uint64

	// scratch is the KernelScratch registry: per-context values kernel
	// libraries cache across invocations (it survives reset, riding the
	// warp pool). A handful of entries with static string keys, so a linear
	// scan beats a map.
	scratch []scratchEntry

	// sanitizer event scratch, reused per access (see Sanitizer).
	ga GlobalAccess
	sa SharedAccess
}

// regFileCap bounds each per-warp register file. 64 width-sized vectors is
// far beyond what any well-formed kernel requests outside a loop; past the
// cap VecI32 falls back to plain make so memory stays bounded.
const regFileCap = 64

func newWarpCtx(width int) *WarpCtx {
	c := &WarpCtx{
		width:       width,
		laneSlab:    make([]int32, 2*width),
		boolSlab:    make([]bool, 2*width),
		addrScratch: make([]uint64, 0, width),
		segScratch:  make([]uint64, 0, width),
	}
	c.lanes = c.laneSlab[:width:width]
	c.gtids = c.laneSlab[width:]
	c.mask = c.boolSlab[:width:width]
	c.entryMask = c.boolSlab[width:]
	return c
}

// reset rebinds a (fresh or recycled) context to a warp of the given launch,
// reinitializing the lane-identity vectors and the entry mask, and reclaiming
// the whole register file: every vector handed out during the previous
// kernel invocation is dead once that kernel returned.
func (c *WarpCtx) reset(l *launch, w *warpRT) {
	c.l = l
	c.w = w
	c.barriers = 0
	c.regI32Next = 0
	c.regF32Next = 0
	c.regBoolNext = 0
	width := c.width
	warpBase := w.warpInBlock * width
	n := 0
	for lane := 0; lane < width; lane++ {
		c.lanes[lane] = int32(lane)
		tidInBlock := warpBase + lane
		c.gtids[lane] = int32(w.blockID*l.lc.ThreadsPerBlock + tidInBlock)
		live := tidInBlock < l.lc.ThreadsPerBlock
		c.mask[lane] = live
		c.entryMask[lane] = live
		if live {
			n++
		}
	}
	c.activeN = n
}

// fullMask reports whether every lane is active — the common non-divergent
// case whose per-lane mask tests the fast paths skip.
func (c *WarpCtx) fullMask() bool {
	return c.activeN == c.width && !debugDisableFastPath
}

// getMask pops a width-sized scratch mask (contents undefined).
func (c *WarpCtx) getMask() []bool {
	if n := len(c.maskFree); n > 0 {
		m := c.maskFree[n-1]
		c.maskFree = c.maskFree[:n-1]
		return m
	}
	return make([]bool, c.width)
}

func (c *WarpCtx) putMask(m []bool) { c.maskFree = append(c.maskFree, m) }

type scratchEntry struct {
	key string
	val any
}

// KernelScratch returns the value cached under key, or nil. The cache
// persists for the lifetime of the (pooled) warp context — across kernel
// invocations and launches — so kernel libraries can keep per-warp scratch
// state (closures, work vectors) allocation-free in steady state. Keys
// should be package-qualified ("vwarp.tasks"). Cached values must not hold
// register-file vectors (VecI32 etc.): those are reclaimed and re-issued
// every invocation. Anything cached must be re-validated against the
// current invocation's parameters by the caller.
func (c *WarpCtx) KernelScratch(key string) any {
	for i := range c.scratch {
		if c.scratch[i].key == key {
			return c.scratch[i].val
		}
	}
	return nil
}

// SetKernelScratch stores v under key in the per-context cache, replacing
// any previous value. See KernelScratch.
func (c *WarpCtx) SetKernelScratch(key string, v any) {
	for i := range c.scratch {
		if c.scratch[i].key == key {
			c.scratch[i].val = v
			return
		}
	}
	c.scratch = append(c.scratch, scratchEntry{key, v})
}

// --- sanitizer hooks -------------------------------------------------------

// sanGlobal reports a global-buffer access to the attached sanitizer.
// Exactly one of bi/bf is non-nil; vi/vf carry stored values for stores.
func (c *WarpCtx) sanGlobal(kind AccessKind, bi *BufI32, bf *BufF32, idx []int32, vi []int32, vf []float32) {
	san := c.l.san
	if san == nil {
		return
	}
	c.ga = GlobalAccess{
		Kind: kind, I32: bi, F32: bf,
		Block: c.w.blockID, Warp: c.w.globalID, SM: c.w.sm.id,
		Mask: c.mask, Idx: idx, ValI32: vi, ValF32: vf,
	}
	san.GlobalAccess(&c.ga)
}

// sanShared reports a block-shared access to the attached sanitizer.
func (c *WarpCtx) sanShared(kind AccessKind, s *SharedI32, idx []int32, val []int32) {
	san := c.l.san
	if san == nil {
		return
	}
	c.sa = SharedAccess{
		Kind: kind, Key: s.key, Len: s.len(),
		Block: c.w.blockID, Warp: c.w.globalID, Epoch: c.barriers,
		Mask: c.mask, Idx: idx, Val: val,
	}
	san.SharedAccess(&c.sa)
}

// charge reports an instruction's cost to the scheduler and blocks until the
// warp is granted its next slot.
func (c *WarpCtx) charge(r request) {
	// Direct-handoff in both host modes: this goroutine holds the execution
	// token (the launch-wide token sequentially, its SM's token in parallel
	// mode), so it applies its own cost and passes the token itself — zero
	// goroutine switches when the scheduler picks it again.
	if c.l.parallel {
		c.l.smStep(c.w, r)
		return
	}
	c.l.seqStep(c.w, r)
}

func (c *WarpCtx) activeCount() int { return c.activeN }

func (c *WarpCtx) noteALU(instrs, activeLanes, usefulLanes int64) {
	s := &c.w.sm.stats
	s.Instructions += instrs
	s.IssueSlots += instrs
	s.ActiveLaneOps += instrs * activeLanes
	s.UsefulLaneOps += instrs * usefulLanes
	s.LaneSlots += instrs * int64(c.width)
	if activeLanes == int64(c.width) {
		s.FullMaskOps += instrs
	}
}

// --- identity / geometry -------------------------------------------------

// Width returns the warp width (number of SIMD lanes).
func (c *WarpCtx) Width() int { return c.width }

// LaneIDs returns the per-lane lane index vector [0,1,...]. Shared storage:
// treat as read-only.
func (c *WarpCtx) LaneIDs() []int32 { return c.lanes }

// GlobalThreadIDs returns each lane's global thread id
// (blockID*blockDim + threadInBlock). Shared storage: treat as read-only.
func (c *WarpCtx) GlobalThreadIDs() []int32 { return c.gtids }

// BlockID returns the block index of this warp's block.
func (c *WarpCtx) BlockID() int { return c.w.blockID }

// WarpInBlock returns this warp's index within its block.
func (c *WarpCtx) WarpInBlock() int { return c.w.warpInBlock }

// SMID returns the id of the SM this warp is resident on. The block→SM
// assignment is deterministic (identical across ParallelSMs settings), so
// per-SM sharded host-side accounting keyed on it is deterministic too.
func (c *WarpCtx) SMID() int { return c.w.sm.id }

// GlobalWarpID returns this warp's grid-wide index.
func (c *WarpCtx) GlobalWarpID() int { return c.w.globalID }

// BlockDim returns threads per block for this launch.
func (c *WarpCtx) BlockDim() int { return c.l.lc.ThreadsPerBlock }

// GridDim returns the number of blocks in this launch.
func (c *WarpCtx) GridDim() int { return c.l.lc.Blocks }

// GridThreads returns the total thread count of the launch.
func (c *WarpCtx) GridThreads() int { return c.l.lc.Blocks * c.l.lc.ThreadsPerBlock }

// ActiveCount returns how many lanes are currently active.
func (c *WarpCtx) ActiveCount() int { return c.activeN }

// AnyActive reports whether any lane is active.
func (c *WarpCtx) AnyActive() bool { return c.activeN > 0 }

// LaneActive reports whether a specific lane is active.
func (c *WarpCtx) LaneActive(lane int) bool { return c.mask[lane] }

// --- register helpers (free: registers don't issue instructions) ---------

// VecI32 returns an uninitialized per-lane register vector (contents
// undefined, exactly like a fresh hardware register).
func (c *WarpCtx) VecI32() []int32 {
	if c.regI32Next < len(c.regI32) {
		v := c.regI32[c.regI32Next]
		c.regI32Next++
		return v
	}
	v := make([]int32, c.width)
	if len(c.regI32) < regFileCap {
		c.regI32 = append(c.regI32, v)
		c.regI32Next++
	}
	return v
}

// VecF32 returns an uninitialized per-lane float register vector.
func (c *WarpCtx) VecF32() []float32 {
	if c.regF32Next < len(c.regF32) {
		v := c.regF32[c.regF32Next]
		c.regF32Next++
		return v
	}
	v := make([]float32, c.width)
	if len(c.regF32) < regFileCap {
		c.regF32 = append(c.regF32, v)
		c.regF32Next++
	}
	return v
}

// VecBool returns an uninitialized per-lane predicate register vector.
func (c *WarpCtx) VecBool() []bool {
	if c.regBoolNext < len(c.regBool) {
		v := c.regBool[c.regBoolNext]
		c.regBoolNext++
		return v
	}
	v := make([]bool, c.width)
	if len(c.regBool) < regFileCap {
		c.regBool = append(c.regBool, v)
		c.regBoolNext++
	}
	return v
}

// ConstI32 returns a register vector with every lane set to v.
func (c *WarpCtx) ConstI32(v int32) []int32 {
	r := c.VecI32()
	for i := range r {
		r[i] = v
	}
	return r
}

// ConstF32 returns a float register vector with every lane set to v.
func (c *WarpCtx) ConstF32(v float32) []float32 {
	r := c.VecF32()
	for i := range r {
		r[i] = v
	}
	return r
}

// CopyI32 returns a register vector copying src.
func (c *WarpCtx) CopyI32(src []int32) []int32 {
	r := c.VecI32()
	copy(r, src)
	return r
}

// --- compute --------------------------------------------------------------

// Apply executes f once per active lane and charges `instrs` ALU warp
// instructions (at least 1). Use it for all per-lane arithmetic; the
// simulator cannot see inside f, so pick instrs to match the work (one
// simple arithmetic statement ≈ one instruction).
func (c *WarpCtx) Apply(instrs int, f func(lane int)) {
	if instrs < 1 {
		instrs = 1
	}
	active := int64(c.activeN)
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			f(lane)
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				f(lane)
			}
		}
	}
	c.noteALU(int64(instrs), active, active)
	c.charge(request{class: opALU, issue: int64(instrs), latency: c.l.cfg.ALULatency})
}

// ApplyReplicated executes f once per virtual-warp group of groupWidth lanes
// that has at least one active lane, charging `instrs` warp instructions.
// This models the paper's replicated (SISD) phase: the hardware keeps every
// lane busy executing identical instructions, so ActiveLaneOps counts all
// active lanes but UsefulLaneOps counts only one per group.
func (c *WarpCtx) ApplyReplicated(instrs, groupWidth int, f func(group int)) {
	if instrs < 1 {
		instrs = 1
	}
	c.checkGroupWidth(groupWidth)
	groups := c.width / groupWidth
	activeGroups := int64(0)
	if c.fullMask() {
		activeGroups = int64(groups)
		for g := 0; g < groups; g++ {
			f(g)
		}
	} else {
		for g := 0; g < groups; g++ {
			if c.groupActive(g, groupWidth) {
				activeGroups++
				f(g)
			}
		}
	}
	active := int64(c.activeN)
	c.noteALU(int64(instrs), active, activeGroups)
	c.charge(request{class: opALU, issue: int64(instrs), latency: c.l.cfg.ALULatency})
}

func (c *WarpCtx) checkGroupWidth(groupWidth int) {
	if groupWidth < 1 || groupWidth > c.width || c.width%groupWidth != 0 {
		panic(fmt.Sprintf("simt: group width %d invalid for warp width %d", groupWidth, c.width))
	}
}

func (c *WarpCtx) groupActive(g, groupWidth int) bool {
	if c.activeN == c.width {
		return true
	}
	base := g * groupWidth
	for lane := base; lane < base+groupWidth; lane++ {
		if c.mask[lane] {
			return true
		}
	}
	return false
}

// activeGroupCount counts virtual-warp groups with at least one active lane.
func (c *WarpCtx) activeGroupCount(groupWidth int) int64 {
	if c.activeN == c.width {
		return int64(c.width / groupWidth)
	}
	n := int64(0)
	for g := 0; g < c.width/groupWidth; g++ {
		if c.groupActive(g, groupWidth) {
			n++
		}
	}
	return n
}

// --- control flow ----------------------------------------------------------

// If evaluates pred on the active lanes (one instruction), then runs thenFn
// with the true lanes active and elseFn (if non-nil) with the false lanes
// active, restoring the original mask afterwards. If both paths have active
// lanes the branch is divergent and both paths execute serially — exactly
// the SIMT penalty.
func (c *WarpCtx) If(pred func(lane int) bool, thenFn, elseFn func()) {
	c.ifImpl(0, pred, thenFn, elseFn)
}

// IfGrouped is If for predicates that are uniform within each virtual-warp
// group of groupWidth lanes (replicated SISD-phase conditions): timing is
// identical to If, but only one lane per active group counts as useful.
func (c *WarpCtx) IfGrouped(groupWidth int, pred func(lane int) bool, thenFn, elseFn func()) {
	c.checkGroupWidth(groupWidth)
	c.ifImpl(groupWidth, pred, thenFn, elseFn)
}

func (c *WarpCtx) ifImpl(groupWidth int, pred func(lane int) bool, thenFn, elseFn func()) {
	saved := c.getMask()
	copy(saved, c.mask)
	savedN := c.activeN
	thenMask := c.getMask()
	thenN := 0
	elseAny := false
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			if pred(lane) {
				thenMask[lane] = true
				thenN++
			} else {
				thenMask[lane] = false
				elseAny = true
			}
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			thenMask[lane] = false
			if !saved[lane] {
				continue
			}
			if pred(lane) {
				thenMask[lane] = true
				thenN++
			} else {
				elseAny = true
			}
		}
	}
	thenAny := thenN > 0
	active := int64(savedN)
	useful := active
	if groupWidth > 0 {
		useful = c.activeGroupCount(groupWidth)
	}
	c.noteALU(1, active, useful)
	c.charge(request{class: opALU, issue: 1, latency: c.l.cfg.ALULatency})
	if thenAny && elseAny && elseFn != nil {
		c.w.sm.stats.DivergentBranches++
	}
	if thenAny && thenFn != nil {
		copy(c.mask, thenMask)
		c.activeN = thenN
		thenFn()
	}
	if elseAny && elseFn != nil {
		elseN := 0
		for lane := 0; lane < c.width; lane++ {
			on := saved[lane] && !thenMask[lane]
			c.mask[lane] = on
			if on {
				elseN++
			}
		}
		c.activeN = elseN
		elseFn()
	}
	copy(c.mask, saved)
	c.activeN = savedN
	c.putMask(thenMask)
	c.putMask(saved)
}

// While loops body while cond holds for at least one active lane; lanes
// whose condition turns false fall inactive for the remaining iterations
// (they re-activate at loop exit). Per-lane trip-count differences therefore
// cost real cycles with idle lanes — the workload-imbalance mechanism at the
// core of the paper.
func (c *WarpCtx) While(cond func(lane int) bool, body func()) {
	saved := c.getMask()
	copy(saved, c.mask)
	savedN := c.activeN
	for {
		any := false
		if c.fullMask() {
			n := c.width
			for lane := 0; lane < c.width; lane++ {
				if !cond(lane) {
					c.mask[lane] = false
					n--
				}
			}
			c.activeN = n
			any = n > 0
		} else {
			for lane := 0; lane < c.width; lane++ {
				if c.mask[lane] {
					if cond(lane) {
						any = true
					} else {
						c.mask[lane] = false
						c.activeN--
					}
				}
			}
		}
		active := int64(c.activeN)
		if active == 0 {
			active = int64(savedN) // the cond evaluation still issues
		}
		c.noteALU(1, active, active)
		c.charge(request{class: opALU, issue: 1, latency: c.l.cfg.ALULatency})
		if !any {
			break
		}
		body()
	}
	copy(c.mask, saved)
	c.activeN = savedN
	c.putMask(saved)
}

// --- warp-level intrinsics --------------------------------------------------

// Ballot returns a bitmask of the active lanes where pred holds (one
// instruction), like CUDA's __ballot.
func (c *WarpCtx) Ballot(pred func(lane int) bool) uint64 {
	var out uint64
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			if pred(lane) {
				out |= 1 << uint(lane)
			}
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] && pred(lane) {
				out |= 1 << uint(lane)
			}
		}
	}
	active := int64(c.activeN)
	c.noteALU(1, active, active)
	c.charge(request{class: opALU, issue: 1, latency: c.l.cfg.ALULatency})
	return out
}

// BroadcastI32 returns src[fromLane] to all lanes (one shuffle
// instruction), like CUDA's __shfl.
func (c *WarpCtx) BroadcastI32(src []int32, fromLane int) int32 {
	if fromLane < 0 || fromLane >= c.width {
		panic(fmt.Sprintf("simt: broadcast from lane %d outside warp of width %d", fromLane, c.width))
	}
	active := int64(c.activeN)
	c.noteALU(1, active, active)
	c.charge(request{class: opALU, issue: 1, latency: c.l.cfg.ALULatency})
	return src[fromLane]
}

// GroupReduceAddI32 tree-reduces src within each virtual-warp group of
// groupWidth lanes (inactive lanes contribute 0) and writes the group sum to
// every lane of the group in dst. Charged log2(groupWidth) instructions,
// like a shuffle-based warp reduction.
func (c *WarpCtx) GroupReduceAddI32(groupWidth int, src, dst []int32) {
	full := c.fullMask()
	c.groupReduce(groupWidth, func(g, base int) {
		var sum int32
		if full {
			for lane := base; lane < base+groupWidth; lane++ {
				sum += src[lane]
			}
		} else {
			for lane := base; lane < base+groupWidth; lane++ {
				if c.mask[lane] {
					sum += src[lane]
				}
			}
		}
		for lane := base; lane < base+groupWidth; lane++ {
			dst[lane] = sum
		}
	})
}

// GroupReduceMinI32 is GroupReduceAddI32 with min (identity math.MaxInt32).
func (c *WarpCtx) GroupReduceMinI32(groupWidth int, src, dst []int32) {
	full := c.fullMask()
	c.groupReduce(groupWidth, func(g, base int) {
		mn := int32(1<<31 - 1)
		if full {
			for lane := base; lane < base+groupWidth; lane++ {
				if src[lane] < mn {
					mn = src[lane]
				}
			}
		} else {
			for lane := base; lane < base+groupWidth; lane++ {
				if c.mask[lane] && src[lane] < mn {
					mn = src[lane]
				}
			}
		}
		for lane := base; lane < base+groupWidth; lane++ {
			dst[lane] = mn
		}
	})
}

// GroupReduceOrI32 is the bitwise-OR reduction (identity 0), useful for
// building per-group bitmasks (e.g. used-color windows in graph coloring).
func (c *WarpCtx) GroupReduceOrI32(groupWidth int, src, dst []int32) {
	full := c.fullMask()
	c.groupReduce(groupWidth, func(g, base int) {
		var acc int32
		if full {
			for lane := base; lane < base+groupWidth; lane++ {
				acc |= src[lane]
			}
		} else {
			for lane := base; lane < base+groupWidth; lane++ {
				if c.mask[lane] {
					acc |= src[lane]
				}
			}
		}
		for lane := base; lane < base+groupWidth; lane++ {
			dst[lane] = acc
		}
	})
}

// GroupReduceAddF32 is the float32 sum reduction.
func (c *WarpCtx) GroupReduceAddF32(groupWidth int, src, dst []float32) {
	full := c.fullMask()
	c.groupReduce(groupWidth, func(g, base int) {
		var sum float32
		if full {
			for lane := base; lane < base+groupWidth; lane++ {
				sum += src[lane]
			}
		} else {
			for lane := base; lane < base+groupWidth; lane++ {
				if c.mask[lane] {
					sum += src[lane]
				}
			}
		}
		for lane := base; lane < base+groupWidth; lane++ {
			dst[lane] = sum
		}
	})
}

func (c *WarpCtx) groupReduce(groupWidth int, apply func(g, base int)) {
	c.checkGroupWidth(groupWidth)
	groups := c.width / groupWidth
	for g := 0; g < groups; g++ {
		apply(g, g*groupWidth)
	}
	steps := int64(bits.Len(uint(groupWidth)) - 1)
	if steps < 1 {
		steps = 1
	}
	active := int64(c.activeN)
	c.noteALU(steps, active, active)
	c.charge(request{class: opALU, issue: steps, latency: c.l.cfg.ALULatency})
}

// --- global memory -----------------------------------------------------------

func (c *WarpCtx) gatherAddrs(addrOf func(lane int) uint64) (addrs []uint64, active int64) {
	a := c.addrScratch[:0]
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			a = append(a, addrOf(lane))
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				a = append(a, addrOf(lane))
			}
		}
	}
	c.addrScratch = a
	return a, int64(len(a))
}

// gatherAddrsBuf is the closure-free address gather for the dominant case —
// element index idx[lane] into a 4-byte-element device buffer at base — with
// the bounds check batched into the same pass as a single unsigned compare
// per lane. It preserves the gatherAddrs contract exactly: ascending-lane
// order (so the lowest faulting active lane panics first), the same typed
// *KernelFault payload, and the same address stream.
func (c *WarpCtx) gatherAddrsBuf(base uint64, n int, name string, idx []int32) (addrs []uint64, active int64) {
	a := c.addrScratch[:0]
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			i := idx[lane]
			if i < 0 || int(i) >= n {
				f := newFaultOOB(name, int64(i), n)
				f.Lane = lane
				panic(f)
			}
			a = append(a, base+4*uint64(i))
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				i := idx[lane]
				if i < 0 || int(i) >= n {
					f := newFaultOOB(name, int64(i), n)
					f.Lane = lane
					panic(f)
				}
				a = append(a, base+4*uint64(i))
			}
		}
	}
	c.addrScratch = a
	return a, int64(len(a))
}

// memKind distinguishes the three global-memory access classes: only loads
// consult the read-only cache; stores and atomics bypass and invalidate.
type memKind uint8

const (
	memLoad memKind = iota
	memStore
	memAtomic
)

func (c *WarpCtx) chargeMem(addrs []uint64, active int64, kind memKind, extraLatency int64) {
	c.chargeMemUseful(addrs, active, active, kind, extraLatency)
}

func (c *WarpCtx) chargeMemUseful(addrs []uint64, active, useful int64, kind memKind, extraLatency int64) {
	if active == 0 {
		return
	}
	segs := coalesceSegments(addrs, uint64(c.l.cfg.SegmentBytes), c.segScratch[:0])
	c.segScratch = segs
	txns := int64(len(segs))
	s := &c.w.sm.stats
	s.Instructions++
	s.IssueSlots += txns
	s.ActiveLaneOps += active
	s.UsefulLaneOps += useful
	s.LaneSlots += int64(c.width)
	s.MemOps++
	if active == int64(c.width) {
		s.FullMaskOps++
	}

	cache := c.w.sm.cache
	dramTxns := txns
	latency := c.l.cfg.DRAMLatency + extraLatency
	switch {
	case cache != nil && kind == memLoad:
		misses := int64(0)
		for _, seg := range segs {
			if !cache.access(seg) {
				misses++
			}
		}
		s.CacheHits += txns - misses
		s.CacheMisses += misses
		dramTxns = misses
		if misses == 0 {
			latency = c.l.cfg.CacheHitLatency + extraLatency
		}
	case cache != nil:
		for _, seg := range segs {
			cache.invalidate(seg)
		}
	}
	s.MemTxns += dramTxns
	s.MemBytes += dramTxns * int64(c.l.cfg.SegmentBytes)
	class := opMem
	if kind == memAtomic {
		class = opAtomic
		s.AtomicOps++
	}
	c.charge(request{
		class:   class,
		txns:    dramTxns,
		latency: latency,
	})
}

// readI32 is the plain-load data phase: the frozen launch-entry value
// overridden by this SM's own stores (and its own atomics, which mirror into
// the SM shadow). Other SMs' same-launch writes are never visible — see the
// memory-model comment in mem.go.
func (c *WarpCtx) readI32(b *BufI32, i int32) int32 {
	if sh := b.sh[c.w.sm.id]; sh != nil {
		return sh.load(i)
	}
	return b.data[i]
}

func (c *WarpCtx) readF32(b *BufF32, i int32) float32 {
	if sh := b.sh[c.w.sm.id]; sh != nil {
		return sh.load(i)
	}
	return b.data[i]
}

// LoadI32 gathers b[idx[lane]] into dst[lane] for every active lane. The
// instruction's cost is one coalesced transaction per distinct 128-byte
// segment touched.
func (c *WarpCtx) LoadI32(b *BufI32, idx []int32, dst []int32) {
	c.sanGlobal(AccessLoad, b, nil, idx, nil, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	c.chargeMem(addrs, active, memLoad, 0)
	c.loadI32Data(b, idx, dst)
}

// loadI32Data performs the data phase of an int32 gather, with the shadow
// lookup hoisted out of the per-lane loop and the full-mask shadow walk
// batched through loadAll.
func (c *WarpCtx) loadI32Data(b *BufI32, idx []int32, dst []int32) {
	sh := b.sh[c.w.sm.id]
	switch {
	case sh == nil && c.fullMask():
		data := b.data
		for lane := 0; lane < c.width; lane++ {
			dst[lane] = data[idx[lane]]
		}
	case sh == nil:
		data := b.data
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = data[idx[lane]]
			}
		}
	case c.fullMask():
		sh.loadAll(idx[:c.width], dst[:c.width])
	default:
		sh.loadMasked(idx[:c.width], dst[:c.width], c.mask)
	}
}

// LoadI32Replicated is LoadI32 for addresses replicated within each
// virtual-warp group of groupWidth lanes (the SISD-phase load pattern):
// identical timing and coalescing, but only one lane per active group counts
// as useful.
func (c *WarpCtx) LoadI32Replicated(groupWidth int, b *BufI32, idx []int32, dst []int32) {
	c.checkGroupWidth(groupWidth)
	c.sanGlobal(AccessLoad, b, nil, idx, nil, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	useful := c.activeGroupCount(groupWidth)
	c.chargeMemUseful(addrs, active, useful, memLoad, 0)
	c.loadI32Data(b, idx, dst)
}

// StoreI32 scatters src[lane] to b[idx[lane]] for every active lane.
// Same-address collisions behave like CUDA: one of the writing lanes wins
// (here deterministically the highest lane).
func (c *WarpCtx) StoreI32(b *BufI32, idx []int32, src []int32) {
	c.sanGlobal(AccessStore, b, nil, idx, src, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	c.chargeMem(addrs, active, memStore, 0)
	sh := b.shadowFor(c.w.sm.id)
	if c.fullMask() {
		sh.storeAll(idx[:c.width], src[:c.width])
	} else {
		sh.storeMasked(idx[:c.width], src[:c.width], c.mask)
	}
}

// LoadF32 gathers float32 values; see LoadI32.
func (c *WarpCtx) LoadF32(b *BufF32, idx []int32, dst []float32) {
	c.sanGlobal(AccessLoad, nil, b, idx, nil, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	c.chargeMem(addrs, active, memLoad, 0)
	sh := b.sh[c.w.sm.id]
	switch {
	case sh == nil && c.fullMask():
		data := b.data
		for lane := 0; lane < c.width; lane++ {
			dst[lane] = data[idx[lane]]
		}
	case sh == nil:
		data := b.data
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = data[idx[lane]]
			}
		}
	case c.fullMask():
		sh.loadAll(idx[:c.width], dst[:c.width])
	default:
		sh.loadMasked(idx[:c.width], dst[:c.width], c.mask)
	}
}

// StoreF32 scatters float32 values; see StoreI32.
func (c *WarpCtx) StoreF32(b *BufF32, idx []int32, src []float32) {
	c.sanGlobal(AccessStore, nil, b, idx, nil, src)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	c.chargeMem(addrs, active, memStore, 0)
	sh := b.shadowFor(c.w.sm.id)
	if c.fullMask() {
		sh.storeAll(idx[:c.width], src[:c.width])
	} else {
		sh.storeMasked(idx[:c.width], src[:c.width], c.mask)
	}
}

// --- atomics -------------------------------------------------------------------

// atomLoadI32 reads the current value of an atomic target: the globally
// ordered overlay if any atomic has written the cell this launch, else this
// SM's own plain-store view. The atomic gate must be held.
func (c *WarpCtx) atomLoadI32(b *BufI32, i int32) int32 {
	if b.ov != nil && b.ov.written(i) {
		return b.ov.load(i)
	}
	return c.readI32(b, i)
}

// atomStoreI32 publishes an atomic result: into the overlay (the globally
// ordered value every later atomic reads) and mirrored into this SM's own
// shadow so the SM's later plain loads observe its atomics, exactly as the
// sequential machine would. The atomic gate must be held.
func (c *WarpCtx) atomStoreI32(b *BufI32, i int32, v int32) {
	b.overlay().store(i, v)
	b.shadowFor(c.w.sm.id).store(i, v)
}

func (c *WarpCtx) atomLoadF32(b *BufF32, i int32) float32 {
	if b.ov != nil && b.ov.written(i) {
		return b.ov.load(i)
	}
	return c.readF32(b, i)
}

func (c *WarpCtx) atomStoreF32(b *BufF32, i int32, v float32) {
	b.overlay().store(i, v)
	b.shadowFor(c.w.sm.id).store(i, v)
}

func (c *WarpCtx) atomicI32(b *BufI32, idx []int32, apply func(lane int)) {
	c.sanGlobal(AccessAtomic, b, nil, idx, nil, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	if active == 0 {
		return
	}
	serial := int64(conflictGroups(addrs) - 1)
	c.w.sm.stats.AtomicSerial += serial
	c.chargeMem(addrs, active, memAtomic, serial*c.l.cfg.AtomicExtraLatency)
	if !c.l.gateEnter(c.w.sm) {
		// Aborted while waiting for the gate. This goroutine holds its SM's
		// execution token (parallel mode only — sequential gateEnter never
		// fails), so smFinish must self-account it like a drained warp.
		c.w.seqSelfAbort = true
		panic(errAborted)
	}
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			apply(lane)
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				apply(lane)
			}
		}
	}
	c.l.gateExit(c.w.sm)
}

// AtomicAddI32 performs old[lane] = b[idx[lane]]; b[idx[lane]] += delta[lane]
// atomically per lane, in lane order. Same-address lanes serialize (charged
// AtomicExtraLatency per extra lane on the hottest address). old may be nil.
func (c *WarpCtx) AtomicAddI32(b *BufI32, idx []int32, delta []int32, old []int32) {
	c.atomicI32(b, idx, func(lane int) {
		i := idx[lane]
		cur := c.atomLoadI32(b, i)
		if old != nil {
			old[lane] = cur
		}
		c.atomStoreI32(b, i, cur+delta[lane])
	})
}

// AtomicMinI32 performs old = b[idx]; b[idx] = min(b[idx], val) per lane.
func (c *WarpCtx) AtomicMinI32(b *BufI32, idx []int32, val []int32, old []int32) {
	c.atomicI32(b, idx, func(lane int) {
		i := idx[lane]
		cur := c.atomLoadI32(b, i)
		if old != nil {
			old[lane] = cur
		}
		if val[lane] < cur {
			c.atomStoreI32(b, i, val[lane])
		}
	})
}

// AtomicCASI32 compare-and-swaps per lane: if b[idx]==cmp then b[idx]=val;
// old receives the observed value.
func (c *WarpCtx) AtomicCASI32(b *BufI32, idx []int32, cmp, val []int32, old []int32) {
	c.atomicI32(b, idx, func(lane int) {
		i := idx[lane]
		cur := c.atomLoadI32(b, i)
		if old != nil {
			old[lane] = cur
		}
		if cur == cmp[lane] {
			c.atomStoreI32(b, i, val[lane])
		}
	})
}

// AtomicOrI32 performs old = b[idx]; b[idx] |= val per lane — the bitmask
// primitive multi-source BFS and visited-set kernels build on.
func (c *WarpCtx) AtomicOrI32(b *BufI32, idx []int32, val []int32, old []int32) {
	c.atomicI32(b, idx, func(lane int) {
		i := idx[lane]
		cur := c.atomLoadI32(b, i)
		if old != nil {
			old[lane] = cur
		}
		c.atomStoreI32(b, i, cur|val[lane])
	})
}

// AtomicExchI32 swaps val into b[idx] per lane; old receives the previous
// value.
func (c *WarpCtx) AtomicExchI32(b *BufI32, idx []int32, val []int32, old []int32) {
	c.atomicI32(b, idx, func(lane int) {
		i := idx[lane]
		cur := c.atomLoadI32(b, i)
		if old != nil {
			old[lane] = cur
		}
		c.atomStoreI32(b, i, val[lane])
	})
}

// AtomicAddF32 is the float32 atomic add.
func (c *WarpCtx) AtomicAddF32(b *BufF32, idx []int32, delta []float32, old []float32) {
	c.sanGlobal(AccessAtomic, nil, b, idx, nil, nil)
	addrs, active := c.gatherAddrsBuf(b.base, len(b.data), b.name, idx)
	if active == 0 {
		return
	}
	serial := int64(conflictGroups(addrs) - 1)
	c.w.sm.stats.AtomicSerial += serial
	c.chargeMem(addrs, active, memAtomic, serial*c.l.cfg.AtomicExtraLatency)
	if !c.l.gateEnter(c.w.sm) {
		// Aborted while waiting for the gate. This goroutine holds its SM's
		// execution token (parallel mode only — sequential gateEnter never
		// fails), so smFinish must self-account it like a drained warp.
		c.w.seqSelfAbort = true
		panic(errAborted)
	}
	apply := func(lane int) {
		i := idx[lane]
		cur := c.atomLoadF32(b, i)
		if old != nil {
			old[lane] = cur
		}
		c.atomStoreF32(b, i, cur+delta[lane])
	}
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			apply(lane)
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				apply(lane)
			}
		}
	}
	c.l.gateExit(c.w.sm)
}

// --- shared memory & barriers ------------------------------------------------

// SharedI32 returns the block-shared int32 array registered under key,
// allocating it (zeroed) on first use by any warp of the block. Allocation
// is free, mirroring CUDA's static shared declarations.
func (c *WarpCtx) SharedI32(key string, n int) *SharedI32 {
	return c.w.block.shared.getI32(key, n)
}

// LoadSharedI32 gathers from block-shared memory with bank-conflict cost.
func (c *WarpCtx) LoadSharedI32(s *SharedI32, idx []int32, dst []int32) {
	c.sanShared(AccessLoad, s, idx, nil)
	slots, minSlots, active := c.sharedConflicts(s, idx)
	if active == 0 {
		return
	}
	c.chargeShared(slots, minSlots, active)
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			dst[lane] = s.data[idx[lane]]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				dst[lane] = s.data[idx[lane]]
			}
		}
	}
}

// StoreSharedI32 scatters to block-shared memory with bank-conflict cost.
// Same-address collisions: highest lane wins, deterministically.
func (c *WarpCtx) StoreSharedI32(s *SharedI32, idx []int32, src []int32) {
	c.sanShared(AccessStore, s, idx, src)
	slots, minSlots, active := c.sharedConflicts(s, idx)
	if active == 0 {
		return
	}
	c.chargeShared(slots, minSlots, active)
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			s.data[idx[lane]] = src[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				s.data[idx[lane]] = src[lane]
			}
		}
	}
}

// sharedConflicts computes shared-memory issue slots. Hardware services
// shared accesses SharedBanks lanes at a time (a half-warp on GT200-class
// parts); within each service group, distinct words mapping to the same bank
// serialize, while same-word accesses broadcast for free. The returned slot
// count is the sum over groups of each group's worst bank degree.
func (c *WarpCtx) sharedConflicts(s *SharedI32, idx []int32) (slots, minSlots, active int64) {
	banks := c.l.cfg.SharedBanks
	n := s.len()
	full := c.fullMask()
	// Distinct-word and bank bookkeeping in fixed stack arrays: a service
	// group has at most min(banks, width) <= 64 lanes (warp width is capped
	// at 64 by the Ballot bitmask), so the quadratic scans are tiny and the
	// whole computation is allocation-free.
	var words [64]int32
	var wordBank [64]int
	for base := 0; base < c.width; base += banks {
		groupActive := false
		nw := 0
		end := base + banks
		if end > c.width {
			end = c.width
		}
		for lane := base; lane < end; lane++ {
			if !full && !c.mask[lane] {
				continue
			}
			i := idx[lane]
			if i < 0 || int(i) >= n {
				f := newFaultOOB("shared:"+s.key, int64(i), n)
				f.Lane = lane
				panic(f)
			}
			active++
			groupActive = true
			dup := false
			for k := 0; k < nw; k++ {
				if words[k] == i {
					dup = true // same-word accesses broadcast for free
					break
				}
			}
			if !dup {
				words[nw] = i
				wordBank[nw] = int(i) % banks
				nw++
			}
		}
		if !groupActive {
			continue
		}
		minSlots++
		degree := int64(1)
		for k := 0; k < nw; k++ {
			cnt := int64(1)
			for j := k + 1; j < nw; j++ {
				if wordBank[j] == wordBank[k] {
					cnt++
				}
			}
			if cnt > degree {
				degree = cnt
			}
		}
		slots += degree
	}
	if slots == 0 {
		slots, minSlots = 1, 1
	}
	return slots, minSlots, active
}

func (c *WarpCtx) chargeShared(slots, minSlots, active int64) {
	s := &c.w.sm.stats
	s.Instructions++
	s.IssueSlots += slots
	s.ActiveLaneOps += active
	s.UsefulLaneOps += active
	s.LaneSlots += int64(c.width)
	s.SharedOps++
	s.SharedBankConflicts += slots - minSlots
	if active == int64(c.width) {
		s.FullMaskOps++
	}
	c.charge(request{class: opShared, issue: slots, latency: c.l.cfg.SharedLatency})
}

// AtomicAddSharedI32 atomically adds delta[lane] to s[idx[lane]] per active
// lane (in lane order), returning old values (old may be nil). Same-word
// lanes serialize like bank conflicts; this is the shared-memory atomicAdd
// histogram kernels rely on.
func (c *WarpCtx) AtomicAddSharedI32(s *SharedI32, idx []int32, delta []int32, old []int32) {
	c.sanShared(AccessAtomic, s, idx, delta)
	slots, minSlots, active := c.sharedConflicts(s, idx)
	if active == 0 {
		return
	}
	// Same-address serialization: charge like a conflict per extra lane on
	// the hottest word (the slots count from sharedConflicts already covers
	// distinct-word bank conflicts; same-word atomic lanes serialize too).
	// Every active lane whose index already appeared on an earlier active
	// lane is one extra serialization step — equivalent to summing (n-1)
	// over addresses hit n>1 times, without a map.
	extra := int64(0)
	for lane := 0; lane < c.width; lane++ {
		if !c.mask[lane] {
			continue
		}
		for j := 0; j < lane; j++ {
			if c.mask[j] && idx[j] == idx[lane] {
				extra++
				break
			}
		}
	}
	c.chargeShared(slots+extra, minSlots, active)
	if c.fullMask() {
		for lane := 0; lane < c.width; lane++ {
			i := idx[lane]
			if old != nil {
				old[lane] = s.data[i]
			}
			s.data[i] += delta[lane]
		}
	} else {
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] {
				i := idx[lane]
				if old != nil {
					old[lane] = s.data[i]
				}
				s.data[i] += delta[lane]
			}
		}
	}
}

// SyncThreads is the block-wide barrier (__syncthreads). All live warps of
// the block must reach it; warps that have already returned from the kernel
// are excluded from the rendezvous.
func (c *WarpCtx) SyncThreads() {
	if san := c.l.san; san != nil {
		divergent := false
		for lane := 0; lane < c.width; lane++ {
			if c.mask[lane] != c.entryMask[lane] {
				divergent = true
				break
			}
		}
		san.Barrier(c.w.blockID, c.w.globalID, divergent)
	}
	c.charge(request{class: opBarrier})
	c.barriers++
}
