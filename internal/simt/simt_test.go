package simt

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// testConfig returns a small, fast device for unit tests.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 8
	cfg.MaxBlocksPerSM = 4
	return cfg
}

func newTestDevice(t *testing.T) *Device {
	t.Helper()
	d, err := NewDevice(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []func(*Config){
		func(c *Config) { c.NumSMs = 0 },
		func(c *Config) { c.WarpWidth = 0 },
		func(c *Config) { c.WarpWidth = 33 },
		func(c *Config) { c.WarpWidth = 128 },
		func(c *Config) { c.MaxWarpsPerSM = 0 },
		func(c *Config) { c.MaxBlocksPerSM = -1 },
		func(c *Config) { c.DRAMLatency = -5 },
		func(c *Config) { c.SegmentBytes = 100 },
		func(c *Config) { c.SharedBanks = 0 },
		func(c *Config) { c.ClockGHz = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestLaunchConfigValidate(t *testing.T) {
	cfg := testConfig()
	if err := (LaunchConfig{Blocks: 0, ThreadsPerBlock: 32}).Validate(cfg); err == nil {
		t.Error("zero blocks accepted")
	}
	if err := (LaunchConfig{Blocks: 1, ThreadsPerBlock: 0}).Validate(cfg); err == nil {
		t.Error("zero threads accepted")
	}
	// 8 warps/SM max; 9*32 threads needs 9 warp slots.
	if err := (LaunchConfig{Blocks: 1, ThreadsPerBlock: 9 * 32}).Validate(cfg); err == nil {
		t.Error("oversized block accepted")
	}
}

func TestGrid1D(t *testing.T) {
	lc := Grid1D(1000, 128)
	if lc.Blocks != 8 || lc.ThreadsPerBlock != 128 {
		t.Fatalf("Grid1D(1000,128) = %+v", lc)
	}
	lc = Grid1D(0, 128)
	if lc.Blocks != 1 {
		t.Fatalf("Grid1D(0,128) = %+v", lc)
	}
	lc = Grid1D(100, 0)
	if lc.ThreadsPerBlock != 128 {
		t.Fatalf("Grid1D default block size: %+v", lc)
	}
}

// memsetKernel writes value v to out[tid] for tid < n.
func memsetKernel(out *BufI32, n int32, v int32) Kernel {
	return func(w *WarpCtx) {
		tid := w.GlobalThreadIDs()
		w.If(func(l int) bool { return tid[l] < n }, func() {
			w.StoreI32(out, tid, w.ConstI32(v))
		}, nil)
	}
}

func TestMemsetAcrossBlocksWithTail(t *testing.T) {
	d := newTestDevice(t)
	const n = 1000 // not a multiple of 32 or of the block size
	out := d.AllocI32("out", n)
	out.Fill(-1)
	stats, err := d.Launch(Grid1D(n, 96), memsetKernel(out, n, 7))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != 7 {
			t.Fatalf("out[%d] = %d, want 7", i, v)
		}
	}
	if stats.Cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
	wantBlocks := (n + 95) / 96
	if stats.BlocksLaunched != wantBlocks {
		t.Fatalf("BlocksLaunched = %d, want %d", stats.BlocksLaunched, wantBlocks)
	}
	if stats.WarpsLaunched != wantBlocks*3 {
		t.Fatalf("WarpsLaunched = %d, want %d", stats.WarpsLaunched, wantBlocks*3)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *LaunchStats {
		d := MustNewDevice(testConfig())
		buf := d.AllocI32("buf", 512)
		cnt := d.AllocI32("cnt", 1)
		k := func(w *WarpCtx) {
			tid := w.GlobalThreadIDs()
			w.If(func(l int) bool { return tid[l] < 512 }, func() {
				one := w.ConstI32(1)
				zero := w.ConstI32(0)
				w.AtomicAddI32(cnt, zero, one, nil)
				w.StoreI32(buf, tid, tid)
			}, nil)
		}
		s, err := d.Launch(Grid1D(512, 128), k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions ||
		a.MemTxns != b.MemTxns || a.AtomicSerial != b.AtomicSerial {
		t.Fatalf("nondeterministic stats:\n%v\n%v", a, b)
	}
}

func TestIfDivergenceAccounting(t *testing.T) {
	d := newTestDevice(t)
	sink := d.AllocI32("sink", 64)
	// One warp; half the lanes take each side.
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		r := w.VecI32()
		w.If(func(l int) bool { return lane[l] < 16 }, func() {
			w.Apply(1, func(l int) { r[l] = 1 })
		}, func() {
			w.Apply(1, func(l int) { r[l] = 2 })
		})
		w.StoreI32(sink, lane, r)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DivergentBranches != 1 {
		t.Fatalf("DivergentBranches = %d, want 1", stats.DivergentBranches)
	}
	for i, v := range sink.Data()[:32] {
		want := int32(2)
		if i < 16 {
			want = 1
		}
		if v != want {
			t.Fatalf("sink[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestIfNonDivergent(t *testing.T) {
	d := newTestDevice(t)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		w.If(func(l int) bool { return lane[l] >= 0 }, func() {
			w.Apply(1, func(l int) {})
		}, func() {
			t.Error("else branch executed with no lanes")
		})
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.DivergentBranches != 0 {
		t.Fatalf("DivergentBranches = %d, want 0", stats.DivergentBranches)
	}
}

func TestWhileImbalanceUtilization(t *testing.T) {
	// One lane loops 64 times, the rest once: utilization must collapse.
	run := func(skewed bool) *LaunchStats {
		d := MustNewDevice(testConfig())
		trips := d.AllocI32("trips", 32)
		data := trips.Data()
		for i := range data {
			data[i] = 1
			if skewed && i == 0 {
				data[i] = 64
			} else if !skewed {
				data[i] = 64
			}
		}
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			limit := w.VecI32()
			w.LoadI32(trips, lane, limit)
			i := w.ConstI32(0)
			w.While(func(l int) bool { return i[l] < limit[l] }, func() {
				w.Apply(1, func(l int) { i[l]++ })
			})
		}
		s, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	skewed := run(true)
	balanced := run(false)
	if su, bu := skewed.SIMDUtilization(), balanced.SIMDUtilization(); su >= bu/2 {
		t.Fatalf("skewed utilization %.3f not far below balanced %.3f", su, bu)
	}
	// Both warps run ~64 iterations, so cycle counts are comparable even
	// though the skewed warp does 1/32nd the useful work.
	ratio := float64(skewed.Cycles) / float64(balanced.Cycles)
	if ratio < 0.5 || ratio > 1.2 {
		t.Fatalf("cycles ratio %.2f; straggler lane should dominate time", ratio)
	}
}

func TestCoalescingSequentialVsScattered(t *testing.T) {
	cfg := testConfig()
	run := func(stride int32) *LaunchStats {
		d := MustNewDevice(cfg)
		src := d.AllocI32("src", 32*int(stride)+1)
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			idx := w.VecI32()
			w.Apply(1, func(l int) { idx[l] = lane[l] * stride })
			dst := w.VecI32()
			w.LoadI32(src, idx, dst)
		}
		s, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq := run(1)        // 32 lanes * 4B = 128B = exactly one segment
	scattered := run(32) // every lane in its own 128B segment
	if seq.MemTxns != 1 {
		t.Fatalf("sequential load issued %d txns, want 1", seq.MemTxns)
	}
	if scattered.MemTxns != 32 {
		t.Fatalf("scattered load issued %d txns, want 32", scattered.MemTxns)
	}
	if scattered.Cycles <= seq.Cycles {
		t.Fatalf("scattered (%d cycles) not slower than sequential (%d)", scattered.Cycles, seq.Cycles)
	}
}

func TestAtomicAddSameAddressSerializes(t *testing.T) {
	d := newTestDevice(t)
	counter := d.AllocI32("counter", 1)
	k := func(w *WarpCtx) {
		zero := w.ConstI32(0)
		one := w.ConstI32(1)
		w.AtomicAddI32(counter, zero, one, nil)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if got := counter.Data()[0]; got != 32 {
		t.Fatalf("counter = %d, want 32", got)
	}
	if stats.AtomicSerial != 31 {
		t.Fatalf("AtomicSerial = %d, want 31", stats.AtomicSerial)
	}
	if stats.AtomicOps != 1 {
		t.Fatalf("AtomicOps = %d, want 1", stats.AtomicOps)
	}
}

func TestAtomicAddDistinctAddressesNoSerialization(t *testing.T) {
	d := newTestDevice(t)
	counters := d.AllocI32("counters", 32)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		one := w.ConstI32(1)
		w.AtomicAddI32(counters, lane, one, nil)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AtomicSerial != 0 {
		t.Fatalf("AtomicSerial = %d, want 0", stats.AtomicSerial)
	}
	for i, v := range counters.Data() {
		if v != 1 {
			t.Fatalf("counters[%d] = %d", i, v)
		}
	}
}

func TestAtomicReturnsOldValues(t *testing.T) {
	d := newTestDevice(t)
	counter := d.AllocI32("counter", 1)
	olds := d.AllocI32("olds", 32)
	k := func(w *WarpCtx) {
		zero := w.ConstI32(0)
		one := w.ConstI32(1)
		old := w.VecI32()
		w.AtomicAddI32(counter, zero, one, old)
		w.StoreI32(olds, w.LaneIDs(), old)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	// Lane order is the serialization order, so olds must be 0..31.
	for i, v := range olds.Data() {
		if v != int32(i) {
			t.Fatalf("olds[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestAtomicMinCASExch(t *testing.T) {
	d := newTestDevice(t)
	cell := d.AllocI32("cell", 3)
	cell.Data()[0] = 100
	cell.Data()[1] = 5
	cell.Data()[2] = 0
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		w.If(func(l int) bool { return lane[l] == 0 }, func() {
			idx0 := w.ConstI32(0)
			v := w.ConstI32(42)
			w.AtomicMinI32(cell, idx0, v, nil)
			idx1 := w.ConstI32(1)
			w.AtomicMinI32(cell, idx1, v, nil) // 5 < 42, unchanged
			idx2 := w.ConstI32(2)
			cmp := w.ConstI32(0)
			val := w.ConstI32(9)
			old := w.VecI32()
			w.AtomicCASI32(cell, idx2, cmp, val, old)
			w.AtomicCASI32(cell, idx2, cmp, w.ConstI32(77), old) // fails: cell!=0
			w.AtomicExchI32(cell, idx1, w.ConstI32(55), old)
		}, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	if got := cell.Data()[0]; got != 42 {
		t.Fatalf("min: %d, want 42", got)
	}
	if got := cell.Data()[1]; got != 55 {
		t.Fatalf("exch: %d, want 55", got)
	}
	if got := cell.Data()[2]; got != 9 {
		t.Fatalf("cas: %d, want 9", got)
	}
}

func TestAtomicAddF32(t *testing.T) {
	d := newTestDevice(t)
	acc := d.AllocF32("acc", 1)
	k := func(w *WarpCtx) {
		zero := w.ConstI32(0)
		half := w.ConstF32(0.5)
		w.AtomicAddF32(acc, zero, half, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	if got := acc.Data()[0]; got != 16 {
		t.Fatalf("float accumulation = %f, want 16", got)
	}
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	d := newTestDevice(t)
	const threads = 64 // two warps per block
	out := d.AllocI32("out", threads)
	// Warp 0 writes shared[i]=i; after a barrier warp 1 reads them back
	// reversed. Cross-warp visibility requires a correct barrier.
	k := func(w *WarpCtx) {
		sh := w.SharedI32("stage", threads)
		lane := w.LaneIDs()
		tidInBlock := w.VecI32()
		w.Apply(1, func(l int) { tidInBlock[l] = int32(w.WarpInBlock()*w.Width()) + lane[l] })
		if w.WarpInBlock() == 0 {
			w.StoreSharedI32(sh, tidInBlock, tidInBlock)
			w.Apply(1, func(l int) { tidInBlock[l] += int32(w.Width()) })
			w.StoreSharedI32(sh, tidInBlock, tidInBlock)
			w.Apply(1, func(l int) { tidInBlock[l] -= int32(w.Width()) })
		}
		w.SyncThreads()
		rev := w.VecI32()
		w.Apply(1, func(l int) { rev[l] = int32(threads) - 1 - tidInBlock[l] })
		got := w.VecI32()
		w.LoadSharedI32(sh, rev, got)
		w.StoreI32(out, tidInBlock, got)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: threads}, k)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data() {
		if v != int32(threads-1-i) {
			t.Fatalf("out[%d] = %d, want %d", i, v, threads-1-i)
		}
	}
	if stats.Barriers != 1 {
		t.Fatalf("Barriers = %d, want 1", stats.Barriers)
	}
}

func TestSharedBankConflicts(t *testing.T) {
	cfg := testConfig() // 16 banks
	run := func(stride int32) *LaunchStats {
		d := MustNewDevice(cfg)
		k := func(w *WarpCtx) {
			sh := w.SharedI32("buf", 32*int(stride)+1)
			lane := w.LaneIDs()
			idx := w.VecI32()
			w.Apply(1, func(l int) { idx[l] = lane[l] * stride })
			v := w.VecI32()
			w.LoadSharedI32(sh, idx, v)
		}
		s, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	clean := run(1)  // stride 1: each lane a different bank pair, no conflicts
	worst := run(16) // stride 16 on 16 banks: all lanes in bank 0
	if clean.SharedBankConflicts != 0 {
		t.Fatalf("stride-1 conflicts = %d, want 0", clean.SharedBankConflicts)
	}
	// Two service groups of 16 lanes, each a 16-way conflict: 30 extra slots.
	if worst.SharedBankConflicts != 30 {
		t.Fatalf("stride-16 conflicts = %d, want 30", worst.SharedBankConflicts)
	}
}

func TestSharedSameWordBroadcastNoConflict(t *testing.T) {
	d := newTestDevice(t)
	k := func(w *WarpCtx) {
		sh := w.SharedI32("buf", 4)
		zero := w.ConstI32(0)
		v := w.VecI32()
		w.LoadSharedI32(sh, zero, v)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SharedBankConflicts != 0 {
		t.Fatalf("broadcast counted as conflict: %d", stats.SharedBankConflicts)
	}
}

func TestSharedRedeclareMismatchPanicsAsError(t *testing.T) {
	d := newTestDevice(t)
	k := func(w *WarpCtx) {
		w.SharedI32("x", 8)
		w.SharedI32("x", 16)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err == nil {
		t.Fatal("shared redeclaration not reported")
	}
}

func TestKernelPanicBecomesLaunchError(t *testing.T) {
	d := newTestDevice(t)
	buf := d.AllocI32("buf", 8)
	k := func(w *WarpCtx) {
		idx := w.ConstI32(100) // out of range
		v := w.VecI32()
		w.LoadI32(buf, idx, v)
	}
	_, err := d.Launch(LaunchConfig{Blocks: 4, ThreadsPerBlock: 64}, k)
	if err == nil {
		t.Fatal("out-of-range access not reported")
	}
	if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("unhelpful error: %v", err)
	}
}

func TestNoGoroutineLeakAfterError(t *testing.T) {
	before := runtime.NumGoroutine()
	d := newTestDevice(t)
	k := func(w *WarpCtx) {
		if w.BlockID() == 3 {
			panic("boom")
		}
		// Other blocks do some work.
		w.Apply(1, func(l int) {})
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 16, ThreadsPerBlock: 64}, k); err == nil {
		t.Fatal("panic not reported")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

func TestMaxCyclesAbortsLivelock(t *testing.T) {
	cfg := testConfig()
	cfg.MaxCycles = 100_000
	d := MustNewDevice(cfg)
	k := func(w *WarpCtx) {
		i := w.ConstI32(0)
		w.While(func(l int) bool { return i[l] >= 0 }, func() {
			w.Apply(1, func(l int) { i[l] = 0 })
		})
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "MaxCycles") {
			t.Fatalf("want MaxCycles error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("livelock kernel hung the simulator")
	}
}

func TestApplyReplicatedUtilization(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 8)
	k := func(w *WarpCtx) {
		// 8 groups of 4 lanes; each group computes one value.
		vals := w.VecI32()
		w.ApplyReplicated(1, 4, func(g int) {
			for lane := g * 4; lane < g*4+4; lane++ {
				vals[lane] = int32(g * 10)
			}
		})
		lane := w.LaneIDs()
		w.If(func(l int) bool { return lane[l]%4 == 0 }, func() {
			idx := w.VecI32()
			w.Apply(1, func(l int) { idx[l] = lane[l] / 4 })
			w.StoreI32(out, idx, vals)
		}, nil)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	for g, v := range out.Data() {
		if v != int32(g*10) {
			t.Fatalf("out[%d] = %d, want %d", g, v, g*10)
		}
	}
	if u, su := stats.UsefulUtilization(), stats.SIMDUtilization(); u >= su {
		t.Fatalf("useful utilization %.3f should be below SIMD utilization %.3f", u, su)
	}
}

func TestGroupReduceAdd(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 32)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		sums := w.VecI32()
		w.GroupReduceAddI32(8, lane, sums)
		w.StoreI32(out, lane, sums)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	// Group g spans lanes 8g..8g+7; sum = 8*8g + 28.
	for i, v := range out.Data() {
		g := i / 8
		want := int32(8*8*g + 28)
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestGroupReduceMinRespectsMask(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 32)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		// Only odd lanes active: min over odd lanes of each group of 4.
		w.If(func(l int) bool { return lane[l]%2 == 1 }, func() {
			mins := w.VecI32()
			w.GroupReduceMinI32(4, lane, mins)
			w.StoreI32(out, lane, mins)
		}, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 32; i += 2 {
		g := i / 4
		want := int32(g*4 + 1)
		if out.Data()[i] != want {
			t.Fatalf("out[%d] = %d, want %d", i, out.Data()[i], want)
		}
	}
}

func TestBallotAndBroadcast(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 2)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		mask := w.Ballot(func(l int) bool { return lane[l] < 3 })
		bc := w.BroadcastI32(lane, 5)
		w.If(func(l int) bool { return lane[l] == 0 }, func() {
			w.StoreI32(out, w.ConstI32(0), w.ConstI32(int32(mask)))
			w.StoreI32(out, w.ConstI32(1), w.ConstI32(bc))
		}, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	if got := out.Data()[0]; got != 0b111 {
		t.Fatalf("ballot = %#b, want 0b111", got)
	}
	if got := out.Data()[1]; got != 5 {
		t.Fatalf("broadcast = %d, want 5", got)
	}
}

func TestLatencyHiding(t *testing.T) {
	// Same total memory work, executed by 1 warp vs 8 warps per SM.
	// Oversubscription must hide DRAM latency and finish much sooner.
	cfg := testConfig()
	cfg.NumSMs = 1
	run := func(warps int) *LaunchStats {
		d := MustNewDevice(cfg)
		const loads = 16
		buf := d.AllocI32("buf", 32*8*loads)
		k := func(w *WarpCtx) {
			// Each warp does `loads` dependent scattered loads.
			idx := w.VecI32()
			lane := w.LaneIDs()
			v := w.VecI32()
			for i := 0; i < loads; i++ {
				w.Apply(1, func(l int) {
					idx[l] = (lane[l]*8 + int32(w.GlobalWarpID()) + int32(i)) % int32(buf.Len())
				})
				w.LoadI32(buf, idx, v)
			}
		}
		s, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, k)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	one := run(1)
	eight := run(8)
	// Eight warps do 8x the work; without latency hiding that is ~8x the
	// cycles. Require clearly better than 6x.
	ratio := float64(eight.Cycles) / float64(one.Cycles)
	if ratio > 6 {
		t.Fatalf("no latency hiding: 8 warps took %.1fx the cycles of 1 warp", ratio)
	}
	if one.StallCycles == 0 {
		t.Fatal("single warp should have recorded stall cycles")
	}
}

func TestWarpBusyImbalanceMetric(t *testing.T) {
	d := newTestDevice(t)
	work := d.AllocI32("work", 256)
	for i := range work.Data() {
		work.Data()[i] = 1
	}
	work.Data()[0] = 500 // one straggler vertex
	k := func(w *WarpCtx) {
		tid := w.GlobalThreadIDs()
		n := w.VecI32()
		w.LoadI32(work, tid, n)
		i := w.ConstI32(0)
		w.While(func(l int) bool { return i[l] < n[l] }, func() {
			w.Apply(1, func(l int) { i[l]++ })
		})
	}
	stats, err := d.Launch(Grid1D(256, 32), k)
	if err != nil {
		t.Fatal(err)
	}
	if cv := stats.WarpImbalanceCV(); cv < 0.5 {
		t.Fatalf("imbalance CV %.3f too low for straggler workload", cv)
	}
	if m := stats.WarpBusyMaxOverMean(); m < 2 {
		t.Fatalf("max/mean %.2f too low for straggler workload", m)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &LaunchStats{Cycles: 10, Instructions: 5, WarpWidth: 32, WarpBusy: []int64{1, 2}}
	b := &LaunchStats{Cycles: 7, Instructions: 3, WarpBusy: []int64{4}}
	a.Add(b)
	if a.Cycles != 17 || a.Instructions != 8 || len(a.WarpBusy) != 3 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestStatsStringAndTime(t *testing.T) {
	s := &LaunchStats{Cycles: 1_400_000, WarpWidth: 32, Instructions: 10, ActiveLaneOps: 160, UsefulLaneOps: 80}
	if ms := s.TimeMS(1.4); ms != 1.0 {
		t.Fatalf("TimeMS = %f, want 1.0", ms)
	}
	if s.SIMDUtilization() != 0.5 {
		t.Fatalf("SIMDUtilization = %f", s.SIMDUtilization())
	}
	if s.UsefulUtilization() != 0.25 {
		t.Fatalf("UsefulUtilization = %f", s.UsefulUtilization())
	}
	if !strings.Contains(s.String(), "cycles=1400000") {
		t.Fatalf("String: %s", s)
	}
}

func TestUploadAndFill(t *testing.T) {
	d := newTestDevice(t)
	b := d.UploadI32("b", []int32{1, 2, 3})
	if b.Len() != 3 || b.Data()[1] != 2 {
		t.Fatal("UploadI32 wrong")
	}
	b.Fill(9)
	if b.Data()[0] != 9 || b.Data()[2] != 9 {
		t.Fatal("Fill wrong")
	}
	f := d.UploadF32("f", []float32{1.5})
	if f.Len() != 1 || f.Data()[0] != 1.5 {
		t.Fatal("UploadF32 wrong")
	}
	f.Fill(2.5)
	if f.Data()[0] != 2.5 {
		t.Fatal("F32 Fill wrong")
	}
	if b.Name() != "b" || f.Name() != "f" {
		t.Fatal("names wrong")
	}
}

func TestUtilizationBounds(t *testing.T) {
	// Property: on arbitrary small kernels, utilizations stay in [0,1] and
	// useful <= active.
	d := newTestDevice(t)
	buf := d.AllocI32("buf", 64)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		w.If(func(l int) bool { return lane[l]%3 == 0 }, func() {
			v := w.VecI32()
			w.LoadI32(buf, lane, v)
			w.ApplyReplicated(2, 8, func(g int) {})
		}, func() {
			w.Apply(3, func(l int) {})
		})
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 2, ThreadsPerBlock: 48}, k)
	if err != nil {
		t.Fatal(err)
	}
	su, uu := stats.SIMDUtilization(), stats.UsefulUtilization()
	if su < 0 || su > 1 || uu < 0 || uu > 1 {
		t.Fatalf("utilization out of bounds: simd=%f useful=%f", su, uu)
	}
	if uu > su {
		t.Fatalf("useful %f > simd %f", uu, su)
	}
}

func TestBarrierWithExitedWarps(t *testing.T) {
	// Warp 1 returns before the barrier; warp 0 must still pass it.
	d := newTestDevice(t)
	out := d.AllocI32("out", 1)
	k := func(w *WarpCtx) {
		if w.WarpInBlock() == 1 {
			return
		}
		w.SyncThreads()
		w.If(func(l int) bool { return w.LaneIDs()[l] == 0 }, func() {
			w.StoreI32(out, w.ConstI32(0), w.ConstI32(1))
		}, nil)
	}
	done := make(chan error, 1)
	go func() {
		_, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 64}, k)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("barrier deadlocked with exited warp")
	}
	if out.Data()[0] != 1 {
		t.Fatal("warp 0 never ran past the barrier")
	}
}

func TestNilKernelRejected(t *testing.T) {
	d := newTestDevice(t)
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, nil); err == nil {
		t.Fatal("nil kernel accepted")
	}
}

func TestMoreBlocksThanResidency(t *testing.T) {
	// 64 blocks on 4 SMs x 4 blocks: forces retire-and-admit cycling.
	d := newTestDevice(t)
	const n = 64 * 32
	out := d.AllocI32("out", n)
	stats, err := d.Launch(LaunchConfig{Blocks: 64, ThreadsPerBlock: 32}, memsetKernel(out, n, 3))
	if err != nil {
		t.Fatal(err)
	}
	if stats.BlocksLaunched != 64 {
		t.Fatalf("BlocksLaunched = %d", stats.BlocksLaunched)
	}
	for i, v := range out.Data() {
		if v != 3 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestAtomicAddShared(t *testing.T) {
	d := newTestDevice(t)
	out := d.AllocI32("out", 4)
	k := func(w *WarpCtx) {
		sh := w.SharedI32("bins", 4)
		lane := w.LaneIDs()
		idx := w.VecI32()
		w.Apply(1, func(l int) { idx[l] = lane[l] % 4 })
		one := w.ConstI32(1)
		old := w.VecI32()
		w.AtomicAddSharedI32(sh, idx, one, old)
		w.SyncThreads()
		w.If(func(l int) bool { return lane[l] < 4 }, func() {
			v := w.VecI32()
			w.LoadSharedI32(sh, lane, v)
			w.StoreI32(out, lane, v)
		}, nil)
	}
	stats, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k)
	if err != nil {
		t.Fatal(err)
	}
	// 32 lanes over 4 bins: every bin gets exactly 8, no lost updates.
	for i, v := range out.Data() {
		if v != 8 {
			t.Fatalf("bin %d = %d, want 8", i, v)
		}
	}
	// Same-word serialization must be charged.
	if stats.SharedBankConflicts == 0 {
		t.Fatal("shared atomic contention not charged")
	}
}

func TestAtomicAddSharedOldValuesAreSerialOrder(t *testing.T) {
	d := newTestDevice(t)
	olds := d.AllocI32("olds", 32)
	k := func(w *WarpCtx) {
		sh := w.SharedI32("c", 1)
		zero := w.ConstI32(0)
		one := w.ConstI32(1)
		old := w.VecI32()
		w.AtomicAddSharedI32(sh, zero, one, old)
		w.StoreI32(olds, w.LaneIDs(), old)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, k); err != nil {
		t.Fatal(err)
	}
	for i, v := range olds.Data() {
		if v != int32(i) {
			t.Fatalf("olds[%d] = %d, want %d", i, v, i)
		}
	}
}
