package simt

import (
	"fmt"
	"math"

	"maxwarp/internal/xrand"
)

// FaultPlan describes a deterministic, seeded schedule of injected faults —
// the chaos-engineering hook that lets tests prove the stack degrades
// gracefully instead of hoping. Install with Device.SetFaultPlan.
//
// Faults come in two classes. Transient faults (bit-flips, kernel aborts)
// corrupt or kill a single launch; the launch reports a typed *KernelFault
// and a retry with restored buffers succeeds. The permanent fault (device
// loss) kills the launch in flight and poisons every later launch with
// ErrDeviceLost until Revive is called.
//
// All scheduling is derived from Seed, so a given plan over a given launch
// sequence injects exactly the same faults every run.
type FaultPlan struct {
	// Seed drives every pseudo-random choice (fault cycle, target buffer,
	// flipped bit).
	Seed uint64

	// BitFlipEvery injects a single-bit corruption into a tracked device
	// buffer on every Nth launch (launch numbers are 1-based, so the first
	// faulting launch is launch N). The corruption is detected ECC-style:
	// the launch aborts with a transient *KernelFault{Kind: FaultBitFlip}
	// naming the corrupted buffer. 0 disables.
	BitFlipEvery int
	// Buffers restricts bit-flip targets to buffers with these names
	// (empty = any allocated buffer).
	Buffers []string

	// AbortEvery aborts every Nth launch mid-flight with a transient
	// *KernelFault{Kind: FaultAbort} (a preempted kernel). When a launch
	// matches both BitFlipEvery and AbortEvery, the bit-flip wins.
	// 0 disables.
	AbortEvery int

	// DeviceLossAfterCycles permanently kills the device once its
	// cumulative simulated cycle count (across launches) crosses this
	// value: the in-flight launch aborts with ErrDeviceLost, and every
	// later launch fails immediately with ErrDeviceLost until Revive.
	// 0 disables.
	DeviceLossAfterCycles int64

	// MaxFaults bounds the total number of injected transient faults
	// (bit-flips plus aborts); 0 means unlimited. Device loss is not
	// counted — it is permanent, not a budget.
	MaxFaults int
}

// faultState is the device's mutable injection bookkeeping.
type faultState struct {
	plan     FaultPlan
	rng      *xrand.Rand
	launches int   // launches started since the plan was installed
	injected int   // transient faults injected so far
	cycles   int64 // cumulative simulated cycles across completed launches
}

// injection is one launch's pre-computed fault decision.
type injection struct {
	// abortAt is the within-launch cycle at which the launch aborts with
	// err; if the kernel drains first, the abort fires at drain time so an
	// injected fault is never silently swallowed.
	abortAt int64
	err     error
	// loseDevice marks the device lost when the abort fires.
	loseDevice bool
}

// SetFaultPlan installs (or, with nil, removes) a fault-injection plan.
// Installing a plan resets the injection state: launch numbering restarts
// at 1 and the random stream is re-seeded.
func (d *Device) SetFaultPlan(p *FaultPlan) {
	if p == nil {
		d.faults = nil
		return
	}
	plan := *p
	d.faults = &faultState{plan: plan, rng: xrand.New(plan.Seed)}
}

// Lost reports whether the device has failed permanently (an injected
// device loss fired). A lost device fails every launch with ErrDeviceLost.
func (d *Device) Lost() bool { return d.lost }

// Revive clears the lost state — the simulated analogue of a driver reset.
// Device memory contents survive (as they may or may not on real hardware;
// callers that care should re-upload).
func (d *Device) Revive() { d.lost = false }

// planInjection decides this launch's fault, consuming randomness only when
// a fault actually fires so unaffected launches stay bit-identical with and
// without surrounding faulty ones.
func (d *Device) planInjection() *injection {
	fs := d.faults
	if fs == nil {
		return nil
	}
	fs.launches++

	// Device loss is a cycle threshold, not a launch schedule: arm it
	// whenever the remaining budget could be crossed by this launch.
	if lossAt := fs.plan.DeviceLossAfterCycles; lossAt > 0 {
		remaining := lossAt - fs.cycles
		if remaining < 0 {
			remaining = 0
		}
		return &injection{
			abortAt:    remaining,
			err:        fmt.Errorf("simt: launch %d: %w", fs.launches, ErrDeviceLost),
			loseDevice: true,
		}
	}

	budgetLeft := fs.plan.MaxFaults == 0 || fs.injected < fs.plan.MaxFaults
	if !budgetLeft {
		return nil
	}
	if n := fs.plan.BitFlipEvery; n > 0 && fs.launches%n == 0 {
		if inj := d.injectBitFlip(fs); inj != nil {
			fs.injected++
			return inj
		}
	}
	if n := fs.plan.AbortEvery; n > 0 && fs.launches%n == 0 {
		fs.injected++
		return &injection{
			abortAt: 1 + int64(fs.rng.Uint64()%4096),
			err: &KernelFault{
				Kind:  FaultAbort,
				Index: -1, Block: -1, Warp: -1, Lane: -1,
				Detail: fmt.Sprintf("injected abort on launch %d", fs.launches),
			},
		}
	}
	return nil
}

// injectBitFlip corrupts one bit of one eligible tracked buffer and returns
// the matching transient fault, or nil when no buffer is eligible.
func (d *Device) injectBitFlip(fs *faultState) *injection {
	type target struct {
		name string
		i32  *BufI32
		f32  *BufF32
	}
	var targets []target
	eligible := func(name string) bool {
		if len(fs.plan.Buffers) == 0 {
			return true
		}
		for _, want := range fs.plan.Buffers {
			if name == want {
				return true
			}
		}
		return false
	}
	for _, b := range d.bufsI32 {
		if len(b.data) > 0 && eligible(b.name) {
			targets = append(targets, target{name: b.name, i32: b})
		}
	}
	for _, b := range d.bufsF32 {
		if len(b.data) > 0 && eligible(b.name) {
			targets = append(targets, target{name: b.name, f32: b})
		}
	}
	if len(targets) == 0 {
		return nil
	}
	t := targets[fs.rng.Uint64()%uint64(len(targets))]
	bit := uint(fs.rng.Uint64() % 32)
	var idx int64
	if t.i32 != nil {
		idx = int64(fs.rng.Uint64() % uint64(len(t.i32.data)))
		t.i32.data[idx] ^= 1 << bit
	} else {
		idx = int64(fs.rng.Uint64() % uint64(len(t.f32.data)))
		bits := math.Float32bits(t.f32.data[idx]) ^ 1<<bit
		t.f32.data[idx] = math.Float32frombits(bits)
	}
	return &injection{
		abortAt: 1 + int64(fs.rng.Uint64()%4096),
		err: &KernelFault{
			Kind:   FaultBitFlip,
			Buffer: t.name,
			Index:  idx,
			Block:  -1, Warp: -1, Lane: -1,
			Detail: fmt.Sprintf("injected bit %d flip on launch %d", bit, fs.launches),
		},
	}
}
