package simt

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// spinKernel burns roughly iters ALU instructions per lane.
func spinKernel(iters int32) Kernel {
	return func(w *WarpCtx) {
		i := w.ConstI32(0)
		w.While(func(lane int) bool { return i[lane] < iters }, func() {
			w.Apply(1, func(lane int) { i[lane]++ })
		})
	}
}

func oneWarp(cfg Config) LaunchConfig {
	return LaunchConfig{Blocks: 1, ThreadsPerBlock: cfg.WarpWidth}
}

func TestOOBLoadReturnsTypedFault(t *testing.T) {
	d := newTestDevice(t)
	buf := d.AllocI32("data", 8)
	_, err := d.Launch(oneWarp(d.Config()), func(w *WarpCtx) {
		dst := w.VecI32()
		w.LoadI32(buf, w.ConstI32(99), dst)
	})
	if err == nil {
		t.Fatal("OOB load succeeded")
	}
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("error is not a *KernelFault: %v", err)
	}
	if kf.Kind != FaultOOB {
		t.Fatalf("kind = %v, want out-of-bounds", kf.Kind)
	}
	if kf.Buffer != "data" || kf.Index != 99 {
		t.Fatalf("fault location: buffer %q index %d", kf.Buffer, kf.Index)
	}
	if kf.Block < 0 || kf.Warp < 0 || kf.Lane < 0 {
		t.Fatalf("fault not located in the grid: %+v", kf)
	}
	if IsTransient(err) {
		t.Fatal("OOB fault must not be transient")
	}
}

func TestOOBStoreNamesSharedBuffer(t *testing.T) {
	d := newTestDevice(t)
	_, err := d.Launch(oneWarp(d.Config()), func(w *WarpCtx) {
		s := w.SharedI32("scratch", 4)
		w.StoreSharedI32(s, w.ConstI32(77), w.ConstI32(1))
	})
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("error is not a *KernelFault: %v", err)
	}
	if kf.Kind != FaultOOB || !strings.Contains(kf.Buffer, "scratch") {
		t.Fatalf("fault = %+v", kf)
	}
}

func TestKernelPanicBecomesTypedFault(t *testing.T) {
	d := newTestDevice(t)
	_, err := d.Launch(oneWarp(d.Config()), func(w *WarpCtx) {
		panic("kernel bug")
	})
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("error is not a *KernelFault: %v", err)
	}
	if kf.Kind != FaultPanic {
		t.Fatalf("kind = %v, want kernel-panic", kf.Kind)
	}
	if !strings.Contains(kf.Detail, "kernel bug") {
		t.Fatalf("detail lost the panic value: %q", kf.Detail)
	}
	if kf.Stack == "" {
		t.Fatal("panic fault carries no stack")
	}
	if IsTransient(err) {
		t.Fatal("kernel panic must not be transient")
	}
}

func TestMaxCyclesReturnsTimeoutWithPartialStats(t *testing.T) {
	d := newTestDevice(t)
	stats, err := d.LaunchWith(oneWarp(d.Config()), LaunchOpts{MaxCycles: 200}, spinKernel(1<<20))
	if !errors.Is(err, ErrLaunchTimeout) {
		t.Fatalf("err = %v, want ErrLaunchTimeout", err)
	}
	if stats == nil || stats.Cycles == 0 {
		t.Fatalf("timeout must return the partial stats accumulated so far, got %+v", stats)
	}
	if stats.Cycles < 200 {
		t.Fatalf("partial stats stop before the deadline: %d cycles", stats.Cycles)
	}
}

func TestOnProgressCancelsLaunch(t *testing.T) {
	d := newTestDevice(t)
	cause := errors.New("caller gave up")
	calls := 0
	opts := LaunchOpts{
		ProgressEvery: 64,
		OnProgress: func(cycle int64) error {
			calls++
			if cycle > 300 {
				return cause
			}
			return nil
		},
	}
	stats, err := d.LaunchWith(oneWarp(d.Config()), opts, spinKernel(1<<20))
	if !errors.Is(err, ErrLaunchCancelled) {
		t.Fatalf("err = %v, want ErrLaunchCancelled", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("cancellation cause not in the chain: %v", err)
	}
	if calls < 2 {
		t.Fatalf("OnProgress called %d times, want periodic callbacks", calls)
	}
	if stats == nil {
		t.Fatal("cancelled launch must return partial stats")
	}
}

func TestLaunchWithRejectsNegativeOpts(t *testing.T) {
	d := newTestDevice(t)
	if _, err := d.LaunchWith(oneWarp(d.Config()), LaunchOpts{MaxCycles: -1}, spinKernel(4)); err == nil {
		t.Fatal("negative MaxCycles accepted")
	}
	if _, err := d.LaunchWith(oneWarp(d.Config()), LaunchOpts{ProgressEvery: -1}, spinKernel(4)); err == nil {
		t.Fatal("negative ProgressEvery accepted")
	}
}

func TestInjectedAbortIsTransientAndDeterministic(t *testing.T) {
	run := func() (string, error) {
		d := newTestDevice(t)
		d.SetFaultPlan(&FaultPlan{Seed: 7, AbortEvery: 1})
		_, err := d.Launch(oneWarp(d.Config()), spinKernel(1<<16))
		return fmt.Sprint(err), err
	}
	msg1, err1 := run()
	msg2, _ := run()
	if err1 == nil {
		t.Fatal("injected abort did not surface")
	}
	var kf *KernelFault
	if !errors.As(err1, &kf) || kf.Kind != FaultAbort {
		t.Fatalf("err = %v, want FaultAbort", err1)
	}
	if !IsTransient(err1) {
		t.Fatal("injected abort must be transient")
	}
	if msg1 != msg2 {
		t.Fatalf("same seed, different faults:\n%s\n%s", msg1, msg2)
	}
}

func TestInjectedBitFlipCorruptsNamedBuffer(t *testing.T) {
	d := newTestDevice(t)
	data := d.UploadI32("data", []int32{1, 2, 3, 4, 5, 6, 7, 8})
	d.AllocI32("other", 8) // eligible only if Buffers does not restrict
	orig := append([]int32(nil), data.Data()...)
	d.SetFaultPlan(&FaultPlan{Seed: 42, BitFlipEvery: 1, Buffers: []string{"data"}})
	_, err := d.Launch(oneWarp(d.Config()), spinKernel(1<<12))
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("bit-flip not reported: %v", err)
	}
	if kf.Kind != FaultBitFlip || kf.Buffer != "data" {
		t.Fatalf("fault = %+v", kf)
	}
	if !IsTransient(err) {
		t.Fatal("bit-flip must be transient")
	}
	if kf.Index < 0 || kf.Index >= int64(len(orig)) {
		t.Fatalf("corrupt index %d out of range", kf.Index)
	}
	if data.Data()[kf.Index] == orig[kf.Index] {
		t.Fatal("reported corruption did not happen")
	}
	for i, v := range data.Data() {
		if int64(i) != kf.Index && v != orig[i] {
			t.Fatalf("element %d corrupted but fault names index %d", i, kf.Index)
		}
	}
}

func TestBitFlipAlwaysReportedEvenIfKernelDrainsFirst(t *testing.T) {
	d := newTestDevice(t)
	d.UploadI32("data", make([]int32, 64))
	d.SetFaultPlan(&FaultPlan{Seed: 3, BitFlipEvery: 1})
	// A near-instant kernel: it will almost certainly finish before the
	// randomly chosen abort cycle, so the fault must fire at drain instead
	// of being silently swallowed.
	_, err := d.Launch(oneWarp(d.Config()), func(w *WarpCtx) {})
	var kf *KernelFault
	if !errors.As(err, &kf) || kf.Kind != FaultBitFlip {
		t.Fatalf("drained launch swallowed the bit-flip: %v", err)
	}
}

func TestMaxFaultsBoundsInjection(t *testing.T) {
	d := newTestDevice(t)
	d.SetFaultPlan(&FaultPlan{Seed: 1, AbortEvery: 1, MaxFaults: 2})
	lc := oneWarp(d.Config())
	for i := 0; i < 2; i++ {
		if _, err := d.Launch(lc, spinKernel(1<<12)); err == nil {
			t.Fatalf("launch %d: expected injected abort", i+1)
		}
	}
	if _, err := d.Launch(lc, spinKernel(1<<12)); err != nil {
		t.Fatalf("budget exhausted but launch 3 still faulted: %v", err)
	}
}

func TestDeviceLossPoisonsUntilRevive(t *testing.T) {
	d := newTestDevice(t)
	d.SetFaultPlan(&FaultPlan{Seed: 9, DeviceLossAfterCycles: 100})
	lc := oneWarp(d.Config())
	_, err := d.Launch(lc, spinKernel(1<<16))
	if !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("err = %v, want ErrDeviceLost", err)
	}
	if !d.Lost() {
		t.Fatal("device not marked lost")
	}
	// Every further launch fails fast with the same sentinel.
	if _, err := d.Launch(lc, spinKernel(4)); !errors.Is(err, ErrDeviceLost) {
		t.Fatalf("lost device accepted a launch: %v", err)
	}
	// Revive with the plan removed restores service.
	d.Revive()
	d.SetFaultPlan(nil)
	if _, err := d.Launch(lc, spinKernel(4)); err != nil {
		t.Fatalf("revived device failed: %v", err)
	}
}

func TestShortLaunchSurvivesUnderLossThreshold(t *testing.T) {
	d := newTestDevice(t)
	d.SetFaultPlan(&FaultPlan{Seed: 9, DeviceLossAfterCycles: 1 << 40})
	if _, err := d.Launch(oneWarp(d.Config()), spinKernel(64)); err != nil {
		t.Fatalf("launch far under the loss threshold failed: %v", err)
	}
	if d.Lost() {
		t.Fatal("device lost below threshold")
	}
}

func TestAbortUnwindsBarrierBlockedWarps(t *testing.T) {
	// Multiple blocks of multiple warps parked at a barrier when the abort
	// fires: every warp goroutine must unwind cleanly (no deadlock, no
	// escaped panic) and Launch must return the injected error.
	d := newTestDevice(t)
	d.SetFaultPlan(&FaultPlan{Seed: 5, AbortEvery: 1})
	cfg := d.Config()
	lc := LaunchConfig{Blocks: 4, ThreadsPerBlock: 2 * cfg.WarpWidth}
	_, err := d.Launch(lc, func(w *WarpCtx) {
		i := w.ConstI32(0)
		w.While(func(lane int) bool { return i[lane] < 1<<12 }, func() {
			w.Apply(1, func(lane int) { i[lane]++ })
			// The loop condition is uniform, so every warp reaches this
			// barrier in lockstep; the point is parking warps in it.
			w.SyncThreads() //kernelcheck:ignore barrier
		})
	})
	var kf *KernelFault
	if !errors.As(err, &kf) || kf.Kind != FaultAbort {
		t.Fatalf("err = %v, want injected FaultAbort", err)
	}
	// The device is healthy: an un-injected follow-up launch succeeds.
	d.SetFaultPlan(nil)
	if _, err := d.Launch(lc, spinKernel(16)); err != nil {
		t.Fatalf("device unusable after abort: %v", err)
	}
}

func TestFaultPlanResetRestartsSchedule(t *testing.T) {
	d := newTestDevice(t)
	d.SetFaultPlan(&FaultPlan{Seed: 11, AbortEvery: 2})
	lc := oneWarp(d.Config())
	if _, err := d.Launch(lc, spinKernel(256)); err != nil {
		t.Fatalf("launch 1 should not fault (AbortEvery=2): %v", err)
	}
	if _, err := d.Launch(lc, spinKernel(256)); err == nil {
		t.Fatal("launch 2 should fault")
	}
	// Reinstalling the plan restarts launch numbering at 1.
	d.SetFaultPlan(&FaultPlan{Seed: 11, AbortEvery: 2})
	if _, err := d.Launch(lc, spinKernel(256)); err != nil {
		t.Fatalf("launch numbering not reset: %v", err)
	}
}
