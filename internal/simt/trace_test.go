package simt

import "testing"

func tracedLaunch(t *testing.T, tracer Tracer) *LaunchStats {
	t.Helper()
	d := newTestDevice(t)
	d.SetTracer(tracer)
	buf := d.AllocI32("buf", 256)
	k := func(w *WarpCtx) {
		tid := w.GlobalThreadIDs()
		w.If(func(l int) bool { return tid[l] < 256 }, func() {
			w.StoreI32(buf, tid, tid)
			// The predicate holds for every launched thread, so the mask is
			// full here; the If exists to appear in the trace.
			w.SyncThreads() //kernelcheck:ignore barrier
			v := w.VecI32()
			w.LoadI32(buf, tid, v)
		}, nil)
	}
	stats, err := d.Launch(Grid1D(256, 64), k)
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestRingTracerCapturesLaunch(t *testing.T) {
	tr := &RingTracer{Cap: 1 << 14}
	stats := tracedLaunch(t, tr)
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	if events[0].Kind != TraceLaunchStart {
		t.Fatalf("first event %v, want launch-start", events[0].Kind)
	}
	last := events[len(events)-1]
	if last.Kind != TraceLaunchEnd {
		t.Fatalf("last event %v, want launch-end", last.Kind)
	}
	if last.Cycle != stats.Cycles {
		t.Fatalf("launch-end cycle %d != stats %d", last.Cycle, stats.Cycles)
	}
	var instr, blockStart, blockEnd, warpDone, barriers int64
	for _, e := range events {
		switch e.Kind {
		case TraceInstr:
			instr++
			if e.Class == "" || e.Warp < 0 {
				t.Fatalf("malformed instr event: %+v", e)
			}
		case TraceBlockStart:
			blockStart++
		case TraceBlockEnd:
			blockEnd++
		case TraceWarpDone:
			warpDone++
		case TraceBarrierRelease:
			barriers++
		}
	}
	// The barrier request itself is also traced as an instr with class
	// "barrier"; stats.Instructions excludes it.
	var barrierInstr int64
	for _, e := range events {
		if e.Kind == TraceInstr && e.Class == "barrier" {
			barrierInstr++
		}
	}
	if instr-barrierInstr != stats.Instructions {
		t.Fatalf("instr events %d (minus %d barrier) != stats.Instructions %d",
			instr, barrierInstr, stats.Instructions)
	}
	if blockStart != int64(stats.BlocksLaunched) || blockEnd != blockStart {
		t.Fatalf("block events %d/%d, want %d", blockStart, blockEnd, stats.BlocksLaunched)
	}
	if warpDone != int64(stats.WarpsLaunched) {
		t.Fatalf("warp-done events %d, want %d", warpDone, stats.WarpsLaunched)
	}
	if barriers != stats.Barriers {
		t.Fatalf("barrier events %d, want %d", barriers, stats.Barriers)
	}
}

func TestTraceCyclesMonotonePerSM(t *testing.T) {
	tr := &RingTracer{Cap: 1 << 14}
	tracedLaunch(t, tr)
	lastCycle := map[int]int64{}
	for _, e := range tr.Events() {
		if e.Kind != TraceInstr {
			continue
		}
		if e.Cycle < lastCycle[e.SM] {
			t.Fatalf("SM %d cycle went backwards: %d after %d", e.SM, e.Cycle, lastCycle[e.SM])
		}
		lastCycle[e.SM] = e.Cycle
	}
}

func TestRingTracerEviction(t *testing.T) {
	tr := &RingTracer{Cap: 8}
	for i := 0; i < 20; i++ {
		tr.Event(TraceEvent{Kind: TraceInstr, Cycle: int64(i)})
	}
	events := tr.Events()
	if len(events) != 8 {
		t.Fatalf("retained %d events, want 8", len(events))
	}
	if events[0].Cycle != 12 || events[7].Cycle != 19 {
		t.Fatalf("ring order wrong: first %d last %d", events[0].Cycle, events[7].Cycle)
	}
	if tr.Total() != 20 {
		t.Fatalf("Total = %d", tr.Total())
	}
	tr.Reset()
	if tr.Events() != nil || tr.Total() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestCountTracer(t *testing.T) {
	ct := &CountTracer{}
	stats := tracedLaunch(t, ct)
	if ct.Counts[TraceLaunchStart] != 1 || ct.Counts[TraceLaunchEnd] != 1 {
		t.Fatalf("launch events: %+v", ct.Counts)
	}
	if ct.Counts[TraceWarpDone] != int64(stats.WarpsLaunched) {
		t.Fatalf("warp-done count %d, want %d", ct.Counts[TraceWarpDone], stats.WarpsLaunched)
	}
}

func TestTracerDisabledByDefaultAndRemovable(t *testing.T) {
	d := newTestDevice(t)
	tr := &CountTracer{}
	d.SetTracer(tr)
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *WarpCtx) {
		w.Apply(1, func(l int) {})
	}); err != nil {
		t.Fatal(err)
	}
	seen := ct(tr)
	d.SetTracer(nil)
	if _, err := d.Launch(LaunchConfig{Blocks: 1, ThreadsPerBlock: 32}, func(w *WarpCtx) {
		w.Apply(1, func(l int) {})
	}); err != nil {
		t.Fatal(err)
	}
	if ct(tr) != seen {
		t.Fatal("removed tracer still received events")
	}
}

func ct(tr *CountTracer) int64 {
	var total int64
	for _, c := range tr.Counts {
		total += c
	}
	return total
}

func TestTraceKindString(t *testing.T) {
	names := map[TraceKind]string{
		TraceLaunchStart:    "launch-start",
		TraceLaunchEnd:      "launch-end",
		TraceBlockStart:     "block-start",
		TraceBlockEnd:       "block-end",
		TraceInstr:          "instr",
		TraceBarrierRelease: "barrier",
		TraceWarpDone:       "warp-done",
		TraceKind(99):       "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
