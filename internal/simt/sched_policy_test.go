package simt

import "testing"

func policyStats(t *testing.T, policy string) *LaunchStats {
	t.Helper()
	cfg := testConfig()
	cfg.SchedulerPolicy = policy
	d := MustNewDevice(cfg)
	buf := d.AllocI32("buf", 4096)
	k := func(w *WarpCtx) {
		lane := w.LaneIDs()
		idx := w.VecI32()
		v := w.VecI32()
		for i := 0; i < 8; i++ {
			w.Apply(1, func(l int) {
				idx[l] = (lane[l]*9 + int32(i*131) + int32(w.GlobalWarpID())*17) % 4096
			})
			w.LoadI32(buf, idx, v)
			w.Apply(2, func(l int) { v[l] = v[l]*3 + 1 })
			w.StoreI32(buf, idx, v)
		}
	}
	s, err := d.Launch(Grid1D(2048, 64), k)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerPolicies(t *testing.T) {
	gto := policyStats(t, "gto")
	lrr := policyStats(t, "lrr")
	def := policyStats(t, "")
	// Default is gto.
	if def.Cycles != gto.Cycles {
		t.Fatalf("default policy (%d cycles) differs from gto (%d)", def.Cycles, gto.Cycles)
	}
	// Both policies execute the same work.
	if gto.Instructions != lrr.Instructions || gto.MemTxns != lrr.MemTxns {
		t.Fatalf("policies did different work: gto %v lrr %v", gto, lrr)
	}
	// Timing may differ but must be in the same ballpark (same machine, same
	// work, only issue order changes).
	ratio := float64(lrr.Cycles) / float64(gto.Cycles)
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("policy cycle ratio %.2f out of plausible range", ratio)
	}
}

func TestSchedulerPolicyDeterministic(t *testing.T) {
	a := policyStats(t, "lrr")
	b := policyStats(t, "lrr")
	if a.Cycles != b.Cycles || a.StallCycles != b.StallCycles {
		t.Fatal("lrr scheduling not deterministic")
	}
}

func TestSchedulerPolicyValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SchedulerPolicy = "fifo"
	if err := cfg.Validate(); err == nil {
		t.Fatal("bogus policy accepted")
	}
}
