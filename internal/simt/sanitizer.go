package simt

// This file defines the device-side sanitizer hook: a compute-sanitizer-style
// observation interface that sees every global-memory access, shared-memory
// access, and barrier a launch executes, without charging a single simulated
// cycle. The checkers themselves (racecheck, memcheck, synccheck) live in
// internal/sanitize; simt only knows the event vocabulary, so the dependency
// points outward and the simulator core stays self-contained.
//
// A sanitized launch always runs on the sequential event loop (recorded as
// SequentialFallback="sanitizer"): the hook sees events in the canonical
// (step clock, SM id, program order) execution order, which makes its
// diagnostics deterministic and lets the implementation skip all locking.
// Because hooks never call charge, LaunchStats — including Cycles — are
// bit-identical with and without a sanitizer attached.

// AccessKind classifies a sanitized memory access.
type AccessKind uint8

const (
	// AccessLoad is a plain (non-atomic) read.
	AccessLoad AccessKind = iota
	// AccessStore is a plain (non-atomic) write.
	AccessStore
	// AccessAtomic is an atomic read-modify-write.
	AccessAtomic
)

// String names the kind for diagnostics.
func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessAtomic:
		return "atomic"
	default:
		return "unknown"
	}
}

// GlobalAccess describes one warp instruction touching a global device
// buffer. Exactly one of I32/F32 is non-nil. Mask and Idx are full
// warp-width vectors: only lanes with Mask[lane] true participate (inactive
// lanes may hold stale scratch indices). ValI32/ValF32 carry the stored
// per-lane values for AccessStore (nil otherwise). The struct and its slices
// are reused between calls; implementations must not retain them.
type GlobalAccess struct {
	Kind AccessKind
	I32  *BufI32
	F32  *BufF32

	// Block, Warp, SM locate the accessing warp (grid-wide warp id).
	Block, Warp, SM int

	Mask   []bool
	Idx    []int32
	ValI32 []int32
	ValF32 []float32
}

// SharedAccess describes one warp instruction touching a block-shared array.
// Epoch is the accessing warp's barrier interval: it starts at 0 and
// increments every time the warp passes a SyncThreads, so two same-block
// accesses with equal epochs are not ordered by any barrier. Reused between
// calls; implementations must not retain it.
type SharedAccess struct {
	Kind AccessKind
	// Key is the shared array's registration key; Len its element count.
	Key string
	Len int

	Block, Warp int
	Epoch       int

	Mask []bool
	Idx  []int32
	// Val carries stored per-lane values for AccessStore, and the per-lane
	// addends for the shared atomic add (nil for loads).
	Val []int32
}

// Sanitizer observes a launch's memory and synchronization behavior. All
// methods are called from the (sequential) simulation goroutine, in exact
// execution order; implementations need no locking and must not block.
type Sanitizer interface {
	// LaunchBegin opens a launch; launch-scoped tracking resets here.
	LaunchBegin(lc LaunchConfig)
	// GlobalAccess reports one warp instruction on a global buffer. It fires
	// before the access's bounds check, so out-of-range lanes are observed
	// even though the launch subsequently faults.
	GlobalAccess(a *GlobalAccess)
	// SharedAccess reports one warp instruction on a block-shared array,
	// likewise before the bounds check.
	SharedAccess(a *SharedAccess)
	// Barrier reports a warp arriving at SyncThreads. divergent is true when
	// the warp's active mask at the barrier differs from its kernel-entry
	// mask — i.e. the barrier sits inside a divergent If/While region.
	Barrier(block, warp int, divergent bool)
	// WarpDone reports a warp returning cleanly from the kernel with the
	// total number of barriers it passed. Warps torn down by a launch abort
	// do not report.
	WarpDone(block, warp, barriers int)
	// LaunchEnd closes the launch; err is the launch's failure (nil on
	// success). Whole-launch checks (e.g. mismatched barrier counts) run
	// here.
	LaunchEnd(err error)
}
