package simt

// Execution tracing: an optional per-launch event stream for debugging
// kernels and studying schedules. Tracing is off unless a Tracer is set on
// the device; the hot path pays one nil-check per instruction.

// TraceKind classifies trace events.
type TraceKind uint8

const (
	// TraceLaunchStart marks the beginning of a kernel launch.
	TraceLaunchStart TraceKind = iota
	// TraceLaunchEnd marks launch completion (Cycle = total cycles).
	TraceLaunchEnd
	// TraceBlockStart marks a block's admission to an SM.
	TraceBlockStart
	// TraceBlockEnd marks a block's retirement.
	TraceBlockEnd
	// TraceInstr marks one issued warp instruction.
	TraceInstr
	// TraceBarrierRelease marks a block barrier opening.
	TraceBarrierRelease
	// TraceWarpDone marks a warp's completion.
	TraceWarpDone
)

// String names the event kind.
func (k TraceKind) String() string {
	switch k {
	case TraceLaunchStart:
		return "launch-start"
	case TraceLaunchEnd:
		return "launch-end"
	case TraceBlockStart:
		return "block-start"
	case TraceBlockEnd:
		return "block-end"
	case TraceInstr:
		return "instr"
	case TraceBarrierRelease:
		return "barrier"
	case TraceWarpDone:
		return "warp-done"
	}
	return "unknown"
}

// TraceEvent is one scheduler observation.
type TraceEvent struct {
	Kind  TraceKind
	Cycle int64
	SM    int
	Block int
	// Warp is the grid-global warp id (-1 when not applicable).
	Warp int
	// Class describes the instruction for TraceInstr events:
	// "alu", "mem", "atomic", "shared", "barrier".
	Class string
	// Issue/Latency/Txns echo the instruction's cost for TraceInstr.
	Issue, Latency, Txns int64
}

// Tracer receives events during a launch. Implementations must not call
// back into the Device.
//
// A plain Tracer receives events from a single goroutine: attaching one to a
// ParallelSMs>1 device forces the launch onto the sequential event loop
// (recorded in LaunchStats.SequentialFallback). A tracer that additionally
// implements ParallelTracer and reports ParallelSafe() == true keeps the
// parallel fast path; its Event method is then called concurrently from one
// goroutine per SM and must shard its state by TraceEvent.SM (see
// obs.SamplingTracer).
type Tracer interface {
	Event(TraceEvent)
}

// ParallelTracer marks a Tracer whose Event method is safe to call
// concurrently from per-SM host goroutines. Per-SM event streams are
// bit-identical across host modes, so a sharding tracer can still produce
// deterministic output.
type ParallelTracer interface {
	Tracer
	// ParallelSafe reports whether this tracer instance may receive events
	// concurrently (one calling goroutine per SM).
	ParallelSafe() bool
}

// tracerParallelSafe reports whether t opts out of the sequential fallback.
func tracerParallelSafe(t Tracer) bool {
	p, ok := t.(ParallelTracer)
	return ok && p.ParallelSafe()
}

// SetTracer installs (or with nil removes) the device's tracer. It applies
// to subsequent launches.
func (d *Device) SetTracer(t Tracer) { d.tracer = t }

// RingTracer retains the most recent Cap events in memory.
type RingTracer struct {
	// Cap bounds retained events (default 1<<16 when zero).
	Cap int

	events []TraceEvent
	next   int
	filled bool
	total  int64
}

// Event implements Tracer.
func (r *RingTracer) Event(e TraceEvent) {
	if r.Cap <= 0 {
		r.Cap = 1 << 16
	}
	if r.events == nil {
		r.events = make([]TraceEvent, r.Cap)
	}
	r.events[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Total returns how many events were observed (including evicted ones).
func (r *RingTracer) Total() int64 { return r.total }

// Events returns the retained events in arrival order.
func (r *RingTracer) Events() []TraceEvent {
	if r.events == nil {
		return nil
	}
	if !r.filled {
		return append([]TraceEvent(nil), r.events[:r.next]...)
	}
	out := make([]TraceEvent, 0, len(r.events))
	out = append(out, r.events[r.next:]...)
	out = append(out, r.events[:r.next]...)
	return out
}

// Reset clears the buffer.
func (r *RingTracer) Reset() {
	r.events = nil
	r.next = 0
	r.filled = false
	r.total = 0
}

// CountTracer counts events by kind without retaining them.
type CountTracer struct {
	Counts [TraceWarpDone + 1]int64
}

// Event implements Tracer.
func (c *CountTracer) Event(e TraceEvent) {
	if int(e.Kind) < len(c.Counts) {
		c.Counts[e.Kind]++
	}
}

func classString(c opClass) string {
	switch c {
	case opALU:
		return "alu"
	case opMem:
		return "mem"
	case opAtomic:
		return "atomic"
	case opShared:
		return "shared"
	case opBarrier:
		return "barrier"
	}
	return "other"
}
