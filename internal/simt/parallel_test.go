package simt

import (
	"errors"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// mixedKernel is a deterministic workload that exercises every cross-SM
// mechanism at once: divergent control flow, plain loads/stores, I32 and F32
// atomics (with old-value readback), shared memory, and a block barrier.
func mixedKernel(data, hist, olds *BufI32, acc *BufF32) Kernel {
	return func(w *WarpCtx) {
		gtid := w.GlobalThreadIDs()
		n := int32(data.Len())
		idx := w.VecI32()
		w.Apply(1, func(l int) { idx[l] = gtid[l] % n })
		v := w.VecI32()
		w.LoadI32(data, idx, v)
		w.If(func(l int) bool { return v[l]%2 == 0 }, func() {
			w.Apply(1, func(l int) { v[l] = v[l]*3 + 1 })
		}, func() {
			w.Apply(1, func(l int) { v[l] = v[l] / 2 })
		})
		sh := w.SharedI32("scratch", w.BlockDim())
		tib := w.VecI32()
		w.Apply(1, func(l int) { tib[l] = int32(w.WarpInBlock()*w.Width() + l) })
		w.StoreSharedI32(sh, tib, v)
		w.SyncThreads()
		w.LoadSharedI32(sh, tib, v)
		bucket := w.VecI32()
		w.Apply(1, func(l int) { bucket[l] = ((v[l] % 16) + 16) % 16 })
		old := w.VecI32()
		w.AtomicAddI32(hist, bucket, w.ConstI32(1), old)
		w.StoreI32(olds, idx, old)
		fdelta := w.VecF32()
		w.Apply(1, func(l int) { fdelta[l] = float32(bucket[l]) * 0.5 })
		w.AtomicAddF32(acc, bucket, fdelta, nil)
		w.StoreI32(data, idx, v)
	}
}

// runMixed executes the mixed workload on a fresh device with the given host
// mode and returns the stats plus final buffer contents.
func runMixed(t *testing.T, parallelSMs int) (*LaunchStats, []int32, []int32, []int32, []float32) {
	t.Helper()
	cfg := testConfig()
	cfg.NumSMs = 8
	cfg.ParallelSMs = parallelSMs
	d := MustNewDevice(cfg)
	n := 4096
	init := make([]int32, n)
	for i := range init {
		init[i] = int32(i*2654435761) % 97
	}
	data := d.UploadI32("data", init)
	hist := d.AllocI32("hist", 16)
	olds := d.AllocI32("olds", n)
	acc := d.AllocF32("acc", 16)
	stats, err := d.Launch(Grid1D(n, 128), mixedKernel(data, hist, olds, acc))
	if err != nil {
		t.Fatal(err)
	}
	return stats,
		append([]int32(nil), data.Data()...),
		append([]int32(nil), hist.Data()...),
		append([]int32(nil), olds.Data()...),
		append([]float32(nil), acc.Data()...)
}

// TestParallelSequentialEquivalence is the tentpole guarantee: for every
// ParallelSMs setting the launch produces bit-identical memory contents and
// bit-identical merged LaunchStats.
func TestParallelSequentialEquivalence(t *testing.T) {
	refStats, refData, refHist, refOlds, refAcc := runMixed(t, 1)
	if refStats.ParallelSMs != 1 || refStats.SequentialFallback != "" {
		t.Fatalf("reference run: mode %d fallback %q", refStats.ParallelSMs, refStats.SequentialFallback)
	}
	for _, mode := range []int{2, 4, 8} {
		stats, data, hist, olds, acc := runMixed(t, mode)
		if stats.ParallelSMs != mode || stats.SequentialFallback != "" {
			t.Fatalf("ParallelSMs=%d run recorded mode %d fallback %q", mode, stats.ParallelSMs, stats.SequentialFallback)
		}
		// The recorded host mode is the one legitimate difference.
		norm := *stats
		norm.ParallelSMs = refStats.ParallelSMs
		if !reflect.DeepEqual(&norm, refStats) {
			t.Errorf("ParallelSMs=%d stats differ from sequential:\n seq: %+v\n par: %+v", mode, refStats, stats)
		}
		if !reflect.DeepEqual(data, refData) {
			t.Errorf("ParallelSMs=%d data buffer differs", mode)
		}
		if !reflect.DeepEqual(hist, refHist) {
			t.Errorf("ParallelSMs=%d histogram differs: seq %v par %v", mode, refHist, hist)
		}
		if !reflect.DeepEqual(olds, refOlds) {
			t.Errorf("ParallelSMs=%d atomic old values differ", mode)
		}
		if !reflect.DeepEqual(acc, refAcc) {
			t.Errorf("ParallelSMs=%d float accumulator differs: seq %v par %v", mode, refAcc, acc)
		}
	}
}

// TestParallelRunToRunDeterminism re-runs the parallel mode against itself:
// goroutine scheduling must not leak into results.
func TestParallelRunToRunDeterminism(t *testing.T) {
	aStats, aData, aHist, aOlds, aAcc := runMixed(t, 8)
	for i := 0; i < 3; i++ {
		bStats, bData, bHist, bOlds, bAcc := runMixed(t, 8)
		if !reflect.DeepEqual(aStats, bStats) {
			t.Fatalf("run %d: stats differ:\n a: %+v\n b: %+v", i, aStats, bStats)
		}
		if !reflect.DeepEqual(aData, bData) || !reflect.DeepEqual(aHist, bHist) ||
			!reflect.DeepEqual(aOlds, bOlds) || !reflect.DeepEqual(aAcc, bAcc) {
			t.Fatalf("run %d: memory contents differ", i)
		}
	}
}

// TestParallelFallbackReasons verifies that launches which attach
// sequential-only supervision run on the sequential loop and record why.
func TestParallelFallbackReasons(t *testing.T) {
	newDev := func() *Device {
		cfg := testConfig()
		cfg.ParallelSMs = 4
		return MustNewDevice(cfg)
	}
	k := func(w *WarpCtx) { w.Apply(1, func(l int) {}) }
	lc := LaunchConfig{Blocks: 4, ThreadsPerBlock: 64}

	d := newDev()
	d.SetTracer(&CountTracer{})
	stats, err := d.Launch(lc, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelSMs != 1 || stats.SequentialFallback != "tracer" {
		t.Errorf("tracer launch: mode %d fallback %q", stats.ParallelSMs, stats.SequentialFallback)
	}

	d = newDev()
	stats, err = d.LaunchWith(lc, LaunchOpts{OnProgress: func(int64) error { return nil }}, k)
	if err != nil {
		t.Fatal(err)
	}
	if stats.ParallelSMs != 1 || stats.SequentialFallback != "on-progress" {
		t.Errorf("progress launch: mode %d fallback %q", stats.ParallelSMs, stats.SequentialFallback)
	}

	d = newDev()
	d.SetFaultPlan(&FaultPlan{Seed: 7, AbortEvery: 1, MaxFaults: 1})
	stats, err = d.Launch(lc, k)
	if err == nil && stats.SequentialFallback != "fault-injection" {
		t.Errorf("injected launch: fallback %q", stats.SequentialFallback)
	}
	if stats != nil && stats.ParallelSMs != 1 {
		t.Errorf("injected launch: mode %d", stats.ParallelSMs)
	}
}

// TestWatchdogClampsTimeoutCycles pins the satellite bugfix: the watchdog
// only observes the clock at step granularity, so one long-latency op can
// overshoot MaxCycles by its whole latency. The reported cycles must be
// clamped to the budget in both host modes.
func TestWatchdogClampsTimeoutCycles(t *testing.T) {
	for _, mode := range []int{1, 4} {
		cfg := testConfig()
		cfg.DRAMLatency = 10_000_000
		cfg.MaxCycles = 1_000
		cfg.ParallelSMs = mode
		d := MustNewDevice(cfg)
		buf := d.AllocI32("buf", 64)
		k := func(w *WarpCtx) {
			v := w.VecI32()
			w.LoadI32(buf, w.LaneIDs(), v)
			w.Apply(1, func(l int) { v[l]++ })
		}
		stats, err := d.Launch(LaunchConfig{Blocks: 8, ThreadsPerBlock: 64}, k)
		if !errors.Is(err, ErrLaunchTimeout) {
			t.Fatalf("ParallelSMs=%d: err = %v, want ErrLaunchTimeout", mode, err)
		}
		if stats.Cycles > cfg.MaxCycles {
			t.Errorf("ParallelSMs=%d: reported Cycles=%d overshoots MaxCycles=%d", mode, stats.Cycles, cfg.MaxCycles)
		}
		for i, f := range stats.SMFinish {
			if f > cfg.MaxCycles {
				t.Errorf("ParallelSMs=%d: SMFinish[%d]=%d overshoots MaxCycles=%d", mode, i, f, cfg.MaxCycles)
			}
		}
	}
}

// TestParallelAbortDrainsWarps: a kernel fault under parallel execution must
// return a typed error and leave no warp or SM goroutines behind.
func TestParallelAbortDrainsWarps(t *testing.T) {
	before := runtime.NumGoroutine()
	cfg := testConfig()
	cfg.ParallelSMs = 4
	d := MustNewDevice(cfg)
	buf := d.AllocI32("buf", 8)
	k := func(w *WarpCtx) {
		idx := w.VecI32()
		if w.BlockID() == 5 {
			w.Apply(1, func(l int) { idx[l] = 1 << 20 }) // out of range
		}
		v := w.VecI32()
		w.LoadI32(buf, idx, v)
		w.AtomicAddI32(buf, idx, w.ConstI32(1), nil)
	}
	_, err := d.Launch(LaunchConfig{Blocks: 16, ThreadsPerBlock: 64}, k)
	var kf *KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("err = %v, want *KernelFault", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: before=%d after=%d", before, after)
	}
}

// TestStatsAddMismatchedWarpWidth pins the satellite bugfix: totaling stats
// from devices with different warp widths must not corrupt the utilization
// denominators by silently adopting one width for both.
func TestStatsAddMismatchedWarpWidth(t *testing.T) {
	// Two fully-utilized launches: 100 instructions at width 32, 100 at
	// width 16 (legacy stats without LaneSlots recorded).
	wide := &LaunchStats{WarpWidth: 32, Instructions: 100, ActiveLaneOps: 3200, UsefulLaneOps: 3200}
	narrow := &LaunchStats{WarpWidth: 16, Instructions: 100, ActiveLaneOps: 1600, UsefulLaneOps: 1600}
	wide.Add(narrow)
	if got := wide.SIMDUtilization(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("SIMDUtilization after mixed-width Add = %v, want 1.0", got)
	}
	if got := wide.UsefulUtilization(); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("UsefulUtilization after mixed-width Add = %v, want 1.0", got)
	}
	if wide.LaneSlots != 4800 {
		t.Errorf("LaneSlots = %d, want 4800", wide.LaneSlots)
	}
}

// TestWarpImbalanceCVLargeNearEqual pins the satellite bugfix: the old
// E[x^2]-E[x]^2 variance cancels catastrophically for large, nearly equal
// busy-cycle counts and reported zero (or NaN) spread.
func TestWarpImbalanceCVLargeNearEqual(t *testing.T) {
	const base = int64(1_000_000_000_000_000) // 1e15 cycles
	s := &LaunchStats{WarpWidth: 32, WarpBusy: []int64{base, base + 2, base - 2}}
	got := s.WarpImbalanceCV()
	want := math.Sqrt(8.0/3.0) / float64(base)
	if math.IsNaN(got) || got == 0 {
		t.Fatalf("CV = %v: catastrophic cancellation", got)
	}
	if rel := math.Abs(got-want) / want; rel > 1e-9 {
		t.Errorf("CV = %g, want %g (rel err %g)", got, want, rel)
	}
}

// TestLaneSlotsRecorded: launches record the exact utilization denominator.
func TestLaneSlotsRecorded(t *testing.T) {
	d := newTestDevice(t)
	stats, err := d.Launch(LaunchConfig{Blocks: 2, ThreadsPerBlock: 64},
		func(w *WarpCtx) { w.Apply(3, func(l int) {}) })
	if err != nil {
		t.Fatal(err)
	}
	if want := stats.Instructions * int64(stats.WarpWidth); stats.LaneSlots != want {
		t.Errorf("LaneSlots = %d, want Instructions*WarpWidth = %d", stats.LaneSlots, want)
	}
}
