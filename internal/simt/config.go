// Package simt is a deterministic discrete-event simulator of a CUDA-style
// SIMT GPU. It is the hardware substrate for this repository's reproduction
// of Hong et al., "Accelerating CUDA Graph Algorithms at Maximum Warp"
// (PPoPP 2011): the machine has streaming multiprocessors (SMs) that host
// resident thread blocks, each block is executed as lockstep warps of
// WarpWidth lanes, and the simulator models the first-order performance
// mechanisms the paper studies — branch divergence and intra-warp workload
// imbalance, global-memory coalescing, atomic serialization, shared-memory
// bank conflicts, block barriers, and latency hiding through warp
// oversubscription.
//
// Kernels are ordinary Go functions of a *WarpCtx. Per-lane values are plain
// slices of length WarpWidth; control flow uses structured primitives (If,
// While) that maintain the active-lane mask exactly like a SIMT
// reconvergence stack. Data manipulation runs natively (functionally exact);
// its cost is charged in instruction issues. Everything is deterministic:
// simulated effects execute in lexicographic (step key, SM id) order, so
// atomics have a reproducible global order. The sequential event loop
// realizes that order by always stepping the SM with the smallest clock;
// with Config.ParallelSMs > 1 each SM runs on its own host goroutine and
// synchronizes only at globally visible operations (global-memory atomics,
// block admission), reproducing the same order bit-for-bit.
package simt

import (
	"fmt"
	"runtime"
)

// Config describes the simulated GPU. The defaults are loosely modeled on
// the GTX 275-class hardware used in the paper (tens of SMs, 32-wide warps,
// ~400-cycle DRAM latency, 128-byte coalescing segments); exact magnitudes
// matter less than the ratios between ALU, DRAM, and atomic costs.
type Config struct {
	// NumSMs is the number of streaming multiprocessors.
	NumSMs int
	// WarpWidth is the SIMD width of a warp (CUDA: 32).
	WarpWidth int
	// MaxWarpsPerSM bounds resident warp contexts per SM; more resident
	// warps mean better memory-latency hiding.
	MaxWarpsPerSM int
	// MaxBlocksPerSM bounds resident thread blocks per SM.
	MaxBlocksPerSM int

	// ALULatency is the result latency of an arithmetic warp instruction.
	ALULatency int64
	// DRAMLatency is the latency of a global-memory access.
	DRAMLatency int64
	// MemPipeCyclesPerTxn is how long the SM's memory pipe is occupied per
	// 	coalesced transaction; it is what makes scattered accesses expensive
	// even when latency is hidden.
	MemPipeCyclesPerTxn int64
	// SegmentBytes is the memory coalescing granularity (CUDA: 128).
	SegmentBytes int
	// AtomicExtraLatency is the additional serialization latency charged per
	// extra atomic lane targeting the same address in one warp instruction.
	AtomicExtraLatency int64
	// SharedLatency is the latency of a shared-memory access.
	SharedLatency int64
	// SharedBanks is the number of shared-memory banks.
	SharedBanks int

	// CacheLines enables a per-SM read-only data cache of that many
	// SegmentBytes-sized lines (0 = disabled, the GT200-like default).
	// Only loads are cached; stores and atomics bypass and invalidate.
	CacheLines int
	// CacheWays is the cache associativity (default 4 when caching).
	CacheWays int
	// CacheHitLatency is the load latency on a cache hit (default 40).
	CacheHitLatency int64

	// SchedulerPolicy selects the per-SM warp scheduler: "gto" (default,
	// greedy-then-oldest: lowest ready-time first) or "lrr" (loose
	// round-robin: rotate through ready warps).
	SchedulerPolicy string

	// BlockSchedule selects the block distributor policy: "fifo" (default)
	// eagerly fills every SM to MaxBlocksPerSM resident blocks in global
	// block order, matching a static breadth-first distributor; "steal"
	// throttles each SM to at most StealDepth resident blocks, so the tail
	// of the grid stays in the central queue and is claimed by whichever SM
	// retires a block first — the paper's dynamic workload distribution
	// applied at the host block distributor. On imbalanced grids (power-law
	// per-block cost) "steal" keeps all SMs busy to the end instead of
	// letting an unlucky static stripe serialize the launch. The decision
	// reads only the requesting SM's own retirement progress at its own step
	// key, so for a fixed config results and stats are bit-identical across
	// all ParallelSMs settings — but "steal" and "fifo" are *different
	// simulated machines*: block→SM assignment, cycles, and stats differ
	// between the two policies.
	BlockSchedule string

	// StealDepth is the resident-block cap per SM under BlockSchedule =
	// "steal" (default 1, clamped to MaxBlocksPerSM). Depth 1 is pure
	// work-queue dispatch — maximal balance, and the measured wall-clock
	// winner on imbalanced RMAT grids; larger depths trade balance for
	// cross-block latency hiding in the simulated machine. Ignored under
	// "fifo".
	StealDepth int

	// ParallelSMs selects the host execution mode. 1 runs the sequential
	// direct-handoff loop (the warp holding the execution token applies its
	// own cost, picks the successor, and hands the token straight to it —
	// no supervisor round-trip per instruction); any value > 1 runs every
	// simulated SM's event loop on its own host goroutine, synchronizing
	// only at global-memory atomics and block admission. In parallel mode
	// the value is a *worker-slot budget*, not an SM partition: all SM
	// goroutines exist, but at most ParallelSMs of them execute
	// simultaneously, and slots migrate from gate-blocked or finished SMs
	// to SMs with ready work. Setting it above NumSMs is therefore
	// harmless, and a value below NumSMs still drives every SM. Zero
	// defaults to runtime.NumCPU(). Results and stats are bit-identical
	// across all settings; launches that attach a non-parallel-safe tracer
	// (see ParallelTracer), a fault-injection plan, or an OnProgress
	// callback fall back to the sequential loop (recorded in
	// LaunchStats.SequentialFallback).
	ParallelSMs int

	// Sanitize runs every launch under the attached sanitizer (see
	// Device.SetSanitizer): racecheck/memcheck/synccheck hooks observe each
	// memory access and barrier. Sanitized launches are forced onto the
	// sequential event loop (LaunchStats.SequentialFallback = "sanitizer");
	// simulated cycles and all other stats are unchanged. Without an
	// attached sanitizer the flag is inert. Per-launch opt-in is
	// LaunchOpts.Sanitize.
	Sanitize bool

	// MaxCycles aborts any single kernel launch whose simulated time exceeds
	// it, turning accidental livelocks (e.g. spin-polling kernels) into
	// errors instead of hangs. Zero means the default.
	MaxCycles int64

	// ClockGHz converts cycles to wall-clock milliseconds in reports.
	ClockGHz float64
}

// DefaultConfig returns a GTX 275-class configuration.
func DefaultConfig() Config {
	return Config{
		NumSMs:              16,
		WarpWidth:           32,
		MaxWarpsPerSM:       32,
		MaxBlocksPerSM:      8,
		ALULatency:          4,
		DRAMLatency:         400,
		MemPipeCyclesPerTxn: 4,
		SegmentBytes:        128,
		AtomicExtraLatency:  16,
		SharedLatency:       2,
		SharedBanks:         16,
		MaxCycles:           5_000_000_000,
		ClockGHz:            1.4,
	}
}

// Validate reports the first problem with the configuration.
func (c Config) Validate() error {
	switch {
	case c.NumSMs <= 0:
		return fmt.Errorf("simt: NumSMs = %d, need > 0", c.NumSMs)
	case c.WarpWidth <= 0 || c.WarpWidth > 64:
		return fmt.Errorf("simt: WarpWidth = %d, need in (0,64]", c.WarpWidth)
	case c.WarpWidth&(c.WarpWidth-1) != 0:
		return fmt.Errorf("simt: WarpWidth = %d, need a power of two", c.WarpWidth)
	case c.MaxWarpsPerSM <= 0:
		return fmt.Errorf("simt: MaxWarpsPerSM = %d, need > 0", c.MaxWarpsPerSM)
	case c.MaxBlocksPerSM <= 0:
		return fmt.Errorf("simt: MaxBlocksPerSM = %d, need > 0", c.MaxBlocksPerSM)
	case c.ALULatency < 0 || c.DRAMLatency < 0 || c.MemPipeCyclesPerTxn < 0:
		return fmt.Errorf("simt: negative latency in config")
	case c.AtomicExtraLatency < 0 || c.SharedLatency < 0:
		return fmt.Errorf("simt: negative latency in config")
	case c.SegmentBytes <= 0 || c.SegmentBytes&(c.SegmentBytes-1) != 0:
		return fmt.Errorf("simt: SegmentBytes = %d, need a positive power of two", c.SegmentBytes)
	case c.SharedBanks <= 0:
		return fmt.Errorf("simt: SharedBanks = %d, need > 0", c.SharedBanks)
	case c.CacheLines < 0 || c.CacheWays < 0 || c.CacheHitLatency < 0:
		return fmt.Errorf("simt: negative cache parameter in config")
	case c.SchedulerPolicy != "" && c.SchedulerPolicy != "gto" && c.SchedulerPolicy != "lrr":
		return fmt.Errorf("simt: unknown scheduler policy %q (want gto or lrr)", c.SchedulerPolicy)
	case c.BlockSchedule != "" && c.BlockSchedule != "fifo" && c.BlockSchedule != "steal":
		return fmt.Errorf("simt: unknown block schedule %q (want fifo or steal)", c.BlockSchedule)
	case c.StealDepth < 0:
		return fmt.Errorf("simt: StealDepth = %d, need >= 0 (0 = default)", c.StealDepth)
	case c.ParallelSMs < 0:
		return fmt.Errorf("simt: ParallelSMs = %d, need >= 0 (0 = NumCPU)", c.ParallelSMs)
	case c.ClockGHz <= 0:
		return fmt.Errorf("simt: ClockGHz = %f, need > 0", c.ClockGHz)
	}
	return nil
}

// withDefaults fills in zero-value knobs.
func (c Config) withDefaults() Config {
	if c.MaxCycles == 0 {
		c.MaxCycles = DefaultConfig().MaxCycles
	}
	if c.SchedulerPolicy == "" {
		c.SchedulerPolicy = "gto"
	}
	if c.BlockSchedule == "" {
		c.BlockSchedule = "fifo"
	}
	if c.BlockSchedule == "steal" && c.StealDepth == 0 {
		c.StealDepth = 1
	}
	if c.ParallelSMs == 0 {
		c.ParallelSMs = runtime.NumCPU()
	}
	if c.CacheLines > 0 {
		if c.CacheWays == 0 {
			c.CacheWays = 4
		}
		if c.CacheHitLatency == 0 {
			c.CacheHitLatency = 40
		}
	}
	return c
}

// LaunchConfig describes one kernel launch's grid.
type LaunchConfig struct {
	// Blocks is the number of thread blocks in the grid.
	Blocks int
	// ThreadsPerBlock is the block size; it need not be a multiple of the
	// warp width (the tail warp runs partially masked).
	ThreadsPerBlock int
}

// Validate reports the first problem with the launch shape.
func (lc LaunchConfig) Validate(cfg Config) error {
	if lc.Blocks <= 0 {
		return fmt.Errorf("simt: launch needs > 0 blocks, got %d", lc.Blocks)
	}
	if lc.ThreadsPerBlock <= 0 {
		return fmt.Errorf("simt: launch needs > 0 threads per block, got %d", lc.ThreadsPerBlock)
	}
	warpsPerBlock := (lc.ThreadsPerBlock + cfg.WarpWidth - 1) / cfg.WarpWidth
	if warpsPerBlock > cfg.MaxWarpsPerSM {
		return fmt.Errorf("simt: block needs %d warps but an SM only holds %d",
			warpsPerBlock, cfg.MaxWarpsPerSM)
	}
	return nil
}

// Grid1D returns a launch covering at least n threads with the given block
// size (the standard CUDA ceil-div launch shape).
func Grid1D(n, threadsPerBlock int) LaunchConfig {
	if threadsPerBlock <= 0 {
		threadsPerBlock = 128
	}
	blocks := (n + threadsPerBlock - 1) / threadsPerBlock
	if blocks == 0 {
		blocks = 1
	}
	return LaunchConfig{Blocks: blocks, ThreadsPerBlock: threadsPerBlock}
}
