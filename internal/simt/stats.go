package simt

import (
	"fmt"
	"math"
)

// LaunchStats aggregates everything measured during one kernel launch.
// These counters are the raw material for the paper's figures: SIMD lane
// utilization (ALU underutilization axis), per-warp busy-cycle spread
// (workload imbalance axis), memory transactions (coalescing), and total
// cycles (the headline speedups).
type LaunchStats struct {
	// Cycles is the simulated completion time: the max over SMs of their
	// final clock.
	Cycles int64
	// StallCycles sums, over SMs, the cycles where the SM had resident warps
	// but none ready to issue (unhidden latency).
	StallCycles int64

	// IssueSlots counts pipeline slots consumed by warp instructions
	// (a multi-transaction memory op consumes several).
	IssueSlots int64
	// Instructions counts warp instructions issued.
	Instructions int64
	// ActiveLaneOps sums active lanes over issued instructions; divided by
	// Instructions×WarpWidth it yields SIMD utilization.
	ActiveLaneOps int64
	// UsefulLaneOps is like ActiveLaneOps but counts replicated (SISD-phase)
	// lanes only once per virtual-warp group; it is the numerator of the
	// paper's "useful ALU utilization".
	UsefulLaneOps int64

	// MemOps / MemTxns / MemBytes describe global-memory traffic. MemTxns
	// per MemOps measures coalescing quality.
	MemOps   int64
	MemTxns  int64
	MemBytes int64

	// AtomicOps counts atomic warp instructions; AtomicSerial sums the
	// extra same-address serialization steps beyond the first.
	AtomicOps    int64
	AtomicSerial int64

	// CacheHits and CacheMisses count read-only-cache outcomes per load
	// transaction (both zero when Config.CacheLines == 0).
	CacheHits   int64
	CacheMisses int64

	// SharedOps and SharedBankConflicts describe shared-memory traffic.
	SharedOps           int64
	SharedBankConflicts int64

	// DivergentBranches counts If points where both paths had active lanes.
	DivergentBranches int64
	// Barriers counts block-wide barrier releases.
	Barriers int64

	// WarpsLaunched and BlocksLaunched describe the grid actually run.
	WarpsLaunched  int
	BlocksLaunched int

	// WarpBusy holds, per warp, the busy cycles charged to it (issue +
	// latency). The spread across warps is the workload-imbalance metric.
	WarpBusy []int64

	// SMFinish holds each SM's final clock.
	SMFinish []int64

	// WarpWidth records the machine width for utilization math.
	WarpWidth int
}

// SIMDUtilization returns active-lane occupancy in [0,1]: how full the SIMD
// lanes were across all issued instructions.
func (s *LaunchStats) SIMDUtilization() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.ActiveLaneOps) / float64(s.Instructions*int64(s.WarpWidth))
}

// UsefulUtilization returns the fraction of lane-ops doing non-redundant
// work (replicated SISD-phase execution counts once per virtual warp).
func (s *LaunchStats) UsefulUtilization() float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.UsefulLaneOps) / float64(s.Instructions*int64(s.WarpWidth))
}

// WarpImbalanceCV returns the coefficient of variation of per-warp busy
// cycles: 0 for perfectly balanced warps, large for skewed workloads.
func (s *LaunchStats) WarpImbalanceCV() float64 {
	n := len(s.WarpBusy)
	if n == 0 {
		return 0
	}
	var sum, sumsq float64
	for _, b := range s.WarpBusy {
		f := float64(b)
		sum += f
		sumsq += f * f
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}

// WarpBusyMaxOverMean returns max/mean of per-warp busy cycles, a second
// imbalance view (the straggler factor).
func (s *LaunchStats) WarpBusyMaxOverMean() float64 {
	n := len(s.WarpBusy)
	if n == 0 {
		return 0
	}
	var sum float64
	var maxB int64
	for _, b := range s.WarpBusy {
		sum += float64(b)
		if b > maxB {
			maxB = b
		}
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	return float64(maxB) / mean
}

// TxnsPerMemOp returns average transactions per global-memory instruction
// (1.0 = perfectly coalesced, WarpWidth = fully scattered).
func (s *LaunchStats) TxnsPerMemOp() float64 {
	if s.MemOps == 0 {
		return 0
	}
	return float64(s.MemTxns) / float64(s.MemOps)
}

// TimeMS converts simulated cycles to milliseconds at the given clock.
func (s *LaunchStats) TimeMS(clockGHz float64) float64 {
	return float64(s.Cycles) / (clockGHz * 1e6)
}

// Add accumulates other into s (used to total multi-launch algorithms such
// as level-synchronous BFS). Per-warp vectors are concatenated; Cycles adds
// because launches are sequential.
func (s *LaunchStats) Add(other *LaunchStats) {
	s.Cycles += other.Cycles
	s.StallCycles += other.StallCycles
	s.IssueSlots += other.IssueSlots
	s.Instructions += other.Instructions
	s.ActiveLaneOps += other.ActiveLaneOps
	s.UsefulLaneOps += other.UsefulLaneOps
	s.MemOps += other.MemOps
	s.MemTxns += other.MemTxns
	s.MemBytes += other.MemBytes
	s.AtomicOps += other.AtomicOps
	s.AtomicSerial += other.AtomicSerial
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.SharedOps += other.SharedOps
	s.SharedBankConflicts += other.SharedBankConflicts
	s.DivergentBranches += other.DivergentBranches
	s.Barriers += other.Barriers
	s.WarpsLaunched += other.WarpsLaunched
	s.BlocksLaunched += other.BlocksLaunched
	s.WarpBusy = append(s.WarpBusy, other.WarpBusy...)
	s.SMFinish = append(s.SMFinish, other.SMFinish...)
	if s.WarpWidth == 0 {
		s.WarpWidth = other.WarpWidth
	}
}

// String renders the headline counters on one line.
func (s *LaunchStats) String() string {
	return fmt.Sprintf(
		"cycles=%d stall=%d instr=%d simd=%.2f useful=%.2f memTxns=%d txns/op=%.2f atomics=%d(+%d) div=%d imbalCV=%.2f",
		s.Cycles, s.StallCycles, s.Instructions, s.SIMDUtilization(), s.UsefulUtilization(),
		s.MemTxns, s.TxnsPerMemOp(), s.AtomicOps, s.AtomicSerial, s.DivergentBranches, s.WarpImbalanceCV())
}
