package simt

import (
	"fmt"
	"math"
)

// LaunchStats aggregates everything measured during one kernel launch.
// These counters are the raw material for the paper's figures: SIMD lane
// utilization (ALU underutilization axis), per-warp busy-cycle spread
// (workload imbalance axis), memory transactions (coalescing), and total
// cycles (the headline speedups).
type LaunchStats struct {
	// Cycles is the simulated completion time: the max over SMs of their
	// final clock.
	Cycles int64
	// StallCycles sums, over SMs, the cycles where the SM had resident warps
	// but none ready to issue (unhidden latency).
	StallCycles int64

	// IssueSlots counts pipeline slots consumed by warp instructions
	// (a multi-transaction memory op consumes several).
	IssueSlots int64
	// Instructions counts warp instructions issued.
	Instructions int64
	// ActiveLaneOps sums active lanes over issued instructions; divided by
	// Instructions×WarpWidth it yields SIMD utilization.
	ActiveLaneOps int64
	// UsefulLaneOps is like ActiveLaneOps but counts replicated (SISD-phase)
	// lanes only once per virtual-warp group; it is the numerator of the
	// paper's "useful ALU utilization".
	UsefulLaneOps int64
	// LaneSlots counts the lane capacity offered by issued instructions
	// (Instructions x the warp width each instruction ran at). It is the
	// exact utilization denominator and, unlike Instructions*WarpWidth,
	// stays correct when stats from devices with different warp widths are
	// totaled with Add.
	LaneSlots int64

	// MemOps / MemTxns / MemBytes describe global-memory traffic. MemTxns
	// per MemOps measures coalescing quality.
	MemOps   int64
	MemTxns  int64
	MemBytes int64

	// AtomicOps counts atomic warp instructions; AtomicSerial sums the
	// extra same-address serialization steps beyond the first.
	AtomicOps    int64
	AtomicSerial int64

	// CacheHits and CacheMisses count read-only-cache outcomes per load
	// transaction (both zero when Config.CacheLines == 0).
	CacheHits   int64
	CacheMisses int64

	// SharedOps and SharedBankConflicts describe shared-memory traffic.
	SharedOps           int64
	SharedBankConflicts int64

	// FullMaskOps counts issued instructions whose active mask covered every
	// lane — the non-divergent common case the interpreter's full-mask fast
	// path batches. FullMaskOps/Instructions measures how often the fast
	// path applies; the counter is derived from the mask state (not the code
	// path taken), so it is identical whether the fast path is enabled or
	// disabled.
	FullMaskOps int64

	// DivergentBranches counts If points where both paths had active lanes.
	DivergentBranches int64
	// Barriers counts block-wide barrier releases.
	Barriers int64

	// WarpsLaunched and BlocksLaunched describe the grid actually run.
	WarpsLaunched  int
	BlocksLaunched int

	// WarpBusy holds, per warp, the busy cycles charged to it (issue +
	// latency). The spread across warps is the workload-imbalance metric.
	WarpBusy []int64

	// SMFinish holds each SM's final clock.
	SMFinish []int64

	// WarpWidth records the machine width for utilization math. After an Add
	// across devices with different widths it keeps the first width seen;
	// utilizations stay exact because they divide by LaneSlots.
	WarpWidth int

	// Profile holds the optional per-launch histograms (nil unless profiling
	// was enabled via Device.SetProfiling or LaunchOpts.Profile).
	Profile *LaunchProfile

	// ParallelSMs records the host execution mode the launch actually used
	// (1 = sequential event loop, >1 = per-SM goroutines). Informational;
	// Add adopts the first non-zero value, so multi-launch algorithm totals
	// report the mode their launches ran under.
	ParallelSMs int
	// SequentialFallback names the reason a ParallelSMs>1 launch was forced
	// onto the sequential loop ("tracer", "fault-injection", "on-progress"),
	// or is empty. Informational; Add adopts the first non-empty value.
	SequentialFallback string
}

// laneSlots returns the utilization denominator: the recorded LaneSlots, or
// the legacy Instructions*WarpWidth estimate for hand-built stats that never
// went through a launch.
func (s *LaunchStats) laneSlots() int64 {
	if s.LaneSlots > 0 {
		return s.LaneSlots
	}
	return s.Instructions * int64(s.WarpWidth)
}

// SIMDUtilization returns active-lane occupancy in [0,1]: how full the SIMD
// lanes were across all issued instructions.
func (s *LaunchStats) SIMDUtilization() float64 {
	slots := s.laneSlots()
	if slots == 0 {
		return 0
	}
	return float64(s.ActiveLaneOps) / float64(slots)
}

// UsefulUtilization returns the fraction of lane-ops doing non-redundant
// work (replicated SISD-phase execution counts once per virtual warp).
func (s *LaunchStats) UsefulUtilization() float64 {
	slots := s.laneSlots()
	if slots == 0 {
		return 0
	}
	return float64(s.UsefulLaneOps) / float64(slots)
}

// WarpImbalanceCV returns the coefficient of variation of per-warp busy
// cycles: 0 for perfectly balanced warps, large for skewed workloads.
// Variance uses the two-pass sum of squared deviations: the textbook
// E[x^2]-E[x]^2 shortcut cancels catastrophically when busy cycles are large
// and nearly equal, reporting 0 spread for warps that do differ.
func (s *LaunchStats) WarpImbalanceCV() float64 {
	n := len(s.WarpBusy)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, b := range s.WarpBusy {
		sum += float64(b)
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	var sqdev float64
	for _, b := range s.WarpBusy {
		d := float64(b) - mean
		sqdev += d * d
	}
	return math.Sqrt(sqdev/float64(n)) / mean
}

// WarpBusyMaxOverMean returns max/mean of per-warp busy cycles, a second
// imbalance view (the straggler factor).
func (s *LaunchStats) WarpBusyMaxOverMean() float64 {
	n := len(s.WarpBusy)
	if n == 0 {
		return 0
	}
	var sum float64
	var maxB int64
	for _, b := range s.WarpBusy {
		sum += float64(b)
		if b > maxB {
			maxB = b
		}
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	return float64(maxB) / mean
}

// SMFinishCV returns the coefficient of variation of per-SM finish clocks:
// 0 when every SM retires its last block at the same simulated cycle, large
// when an unlucky SM's block assignment serializes the launch tail. It is
// the block-distributor analogue of WarpImbalanceCV — the metric
// BlockSchedule = "steal" exists to drive down on imbalanced grids.
func (s *LaunchStats) SMFinishCV() float64 {
	n := len(s.SMFinish)
	if n == 0 {
		return 0
	}
	var sum float64
	for _, f := range s.SMFinish {
		sum += float64(f)
	}
	mean := sum / float64(n)
	if mean == 0 {
		return 0
	}
	var sqdev float64
	for _, f := range s.SMFinish {
		d := float64(f) - mean
		sqdev += d * d
	}
	return math.Sqrt(sqdev/float64(n)) / mean
}

// TxnsPerMemOp returns average transactions per global-memory instruction
// (1.0 = perfectly coalesced, WarpWidth = fully scattered).
func (s *LaunchStats) TxnsPerMemOp() float64 {
	if s.MemOps == 0 {
		return 0
	}
	return float64(s.MemTxns) / float64(s.MemOps)
}

// TimeMS converts simulated cycles to milliseconds at the given clock.
func (s *LaunchStats) TimeMS(clockGHz float64) float64 {
	return float64(s.Cycles) / (clockGHz * 1e6)
}

// Add accumulates other into s (used to total multi-launch algorithms such
// as level-synchronous BFS). Per-warp vectors are concatenated; Cycles adds
// because launches are sequential.
//
// Stats from devices with different warp widths merge safely: lane-op
// accounting is normalized through LaneSlots (backfilled from
// Instructions*WarpWidth for stats that predate the field), so the
// utilization ratios stay exact instead of silently adopting one width's
// denominator.
func (s *LaunchStats) Add(other *LaunchStats) {
	// Normalize lane-slot accounting before the widths can disagree.
	if s.LaneSlots == 0 && s.Instructions > 0 {
		w := s.WarpWidth
		if w == 0 {
			w = other.WarpWidth
		}
		s.LaneSlots = s.Instructions * int64(w)
	}
	otherSlots := other.LaneSlots
	if otherSlots == 0 && other.Instructions > 0 {
		w := other.WarpWidth
		if w == 0 {
			w = s.WarpWidth
		}
		otherSlots = other.Instructions * int64(w)
	}
	s.LaneSlots += otherSlots

	s.Cycles += other.Cycles
	s.StallCycles += other.StallCycles
	s.IssueSlots += other.IssueSlots
	s.Instructions += other.Instructions
	s.ActiveLaneOps += other.ActiveLaneOps
	s.UsefulLaneOps += other.UsefulLaneOps
	s.MemOps += other.MemOps
	s.MemTxns += other.MemTxns
	s.MemBytes += other.MemBytes
	s.AtomicOps += other.AtomicOps
	s.AtomicSerial += other.AtomicSerial
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.SharedOps += other.SharedOps
	s.SharedBankConflicts += other.SharedBankConflicts
	s.FullMaskOps += other.FullMaskOps
	s.DivergentBranches += other.DivergentBranches
	s.Barriers += other.Barriers
	s.WarpsLaunched += other.WarpsLaunched
	s.BlocksLaunched += other.BlocksLaunched
	s.WarpBusy = append(s.WarpBusy, other.WarpBusy...)
	s.SMFinish = append(s.SMFinish, other.SMFinish...)
	if s.WarpWidth == 0 {
		s.WarpWidth = other.WarpWidth
	}
	if s.ParallelSMs == 0 {
		s.ParallelSMs = other.ParallelSMs
	}
	if s.SequentialFallback == "" {
		s.SequentialFallback = other.SequentialFallback
	}
	s.mergeProfile(other.Profile)
}

// mergeProfile folds another launch's histograms into s, allocating the
// receiver's profile on first use so unprofiled launches stay nil.
func (s *LaunchStats) mergeProfile(o *LaunchProfile) {
	if o == nil {
		return
	}
	if s.Profile == nil {
		s.Profile = &LaunchProfile{}
	}
	s.Profile.add(o)
}

// addCounters folds a per-SM shard's counters into the merged launch stats.
// Cycles, WarpBusy, SMFinish, WarpWidth, and the execution-mode fields are
// owned by the scheduler's merge epilogue and are not touched here.
func (s *LaunchStats) addCounters(o *LaunchStats) {
	s.StallCycles += o.StallCycles
	s.IssueSlots += o.IssueSlots
	s.Instructions += o.Instructions
	s.ActiveLaneOps += o.ActiveLaneOps
	s.UsefulLaneOps += o.UsefulLaneOps
	s.LaneSlots += o.LaneSlots
	s.MemOps += o.MemOps
	s.MemTxns += o.MemTxns
	s.MemBytes += o.MemBytes
	s.AtomicOps += o.AtomicOps
	s.AtomicSerial += o.AtomicSerial
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.SharedOps += o.SharedOps
	s.SharedBankConflicts += o.SharedBankConflicts
	s.FullMaskOps += o.FullMaskOps
	s.DivergentBranches += o.DivergentBranches
	s.Barriers += o.Barriers
	s.WarpsLaunched += o.WarpsLaunched
	s.BlocksLaunched += o.BlocksLaunched
	s.mergeProfile(o.Profile)
}

// String renders the headline counters on one line.
func (s *LaunchStats) String() string {
	return fmt.Sprintf(
		"cycles=%d stall=%d instr=%d simd=%.2f useful=%.2f memTxns=%d txns/op=%.2f atomics=%d(+%d) div=%d imbalCV=%.2f",
		s.Cycles, s.StallCycles, s.Instructions, s.SIMDUtilization(), s.UsefulUtilization(),
		s.MemTxns, s.TxnsPerMemOp(), s.AtomicOps, s.AtomicSerial, s.DivergentBranches, s.WarpImbalanceCV())
}
