package simt

import "testing"

// Simulator meta-benchmarks: how many simulated warp instructions the
// engine executes per host second. Useful when sizing experiment scales.

func benchKernelALU(iters int) Kernel {
	return func(w *WarpCtx) {
		v := w.VecI32()
		for i := 0; i < iters; i++ {
			w.Apply(1, func(l int) { v[l]++ })
		}
	}
}

func BenchmarkSimulatorALUThroughput(b *testing.B) {
	cfg := DefaultConfig()
	const iters = 64
	const warps = 128
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		d := MustNewDevice(cfg)
		stats, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, benchKernelALU(iters))
		if err != nil {
			b.Fatal(err)
		}
		instr += stats.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkApplyUniform measures the steady-state cost of the hottest warp
// primitive — a fully-uniform Apply — on a persistent device, so warp
// runtimes, lane-state slabs, and kernel scratch are all recycled across
// launches and the interpret loop runs allocation-free. Memory per op is
// launch-scaffolding only (launch/smRT/blockRT), amortized over
// iters*warps*width lane-instructions; the reported lane-instrs/s is the
// headline number.
func BenchmarkApplyUniform(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	d := MustNewDevice(cfg)
	const iters = 512
	const warps = 16
	kernel := func(w *WarpCtx) {
		v := w.VecI32()
		for i := 0; i < iters; i++ {
			w.Apply(1, func(l int) { v[l]++ })
		}
	}
	// Warm once: first use of each warp context grows its register file.
	if _, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		stats, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel)
		if err != nil {
			b.Fatal(err)
		}
		instr += stats.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkApplyUniformBatch is BenchmarkApplyUniform with the per-lane
// closure replaced by the vectorized primitive (AddConstI32): the same
// simulated instruction stream, executed as a tight slab loop instead of
// width indirect calls. The ratio to BenchmarkApplyUniform is the batch
// execution win on the uniform-ALU interpret loop.
func BenchmarkApplyUniformBatch(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	d := MustNewDevice(cfg)
	const iters = 512
	const warps = 16
	kernel := func(w *WarpCtx) {
		v := w.VecI32()
		for i := 0; i < iters; i++ {
			w.AddConstI32(v, 1)
		}
	}
	if _, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		stats, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel)
		if err != nil {
			b.Fatal(err)
		}
		instr += stats.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

// BenchmarkApplyDivergent is the slow-path twin of BenchmarkApplyUniform:
// half the lanes are masked off by an If, so every Apply walks the masked
// per-lane path. The uniform/divergent ratio bounds the fast path's win.
func BenchmarkApplyDivergent(b *testing.B) {
	cfg := DefaultConfig()
	cfg.NumSMs = 4
	d := MustNewDevice(cfg)
	const iters = 512
	const warps = 16
	kernel := func(w *WarpCtx) {
		v := w.VecI32()
		lane := w.LaneIDs()
		w.If(func(l int) bool { return lane[l]%2 == 0 }, func() {
			for i := 0; i < iters; i++ {
				w.Apply(1, func(l int) { v[l]++ })
			}
		}, nil)
	}
	if _, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var instr int64
	for i := 0; i < b.N; i++ {
		stats, err := d.Launch(LaunchConfig{Blocks: warps, ThreadsPerBlock: 32}, kernel)
		if err != nil {
			b.Fatal(err)
		}
		instr += stats.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

func BenchmarkSimulatorMemThroughput(b *testing.B) {
	cfg := DefaultConfig()
	var instr int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := MustNewDevice(cfg)
		buf := d.AllocI32("buf", 1<<16)
		k := func(w *WarpCtx) {
			idx := w.VecI32()
			v := w.VecI32()
			lane := w.LaneIDs()
			for it := 0; it < 32; it++ {
				w.Apply(1, func(l int) {
					idx[l] = (lane[l]*97 + int32(it)*1031 + int32(w.GlobalWarpID())) & (1<<16 - 1)
				})
				w.LoadI32(buf, idx, v)
			}
		}
		stats, err := d.Launch(LaunchConfig{Blocks: 128, ThreadsPerBlock: 32}, k)
		if err != nil {
			b.Fatal(err)
		}
		instr += stats.Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "sim-instr/s")
}

func BenchmarkSimulatorAtomics(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := MustNewDevice(cfg)
		cnt := d.AllocI32("cnt", 64)
		k := func(w *WarpCtx) {
			lane := w.LaneIDs()
			idx := w.VecI32()
			w.Apply(1, func(l int) { idx[l] = lane[l] % 64 })
			one := w.ConstI32(1)
			for it := 0; it < 16; it++ {
				w.AtomicAddI32(cnt, idx, one, nil)
			}
		}
		if _, err := d.Launch(LaunchConfig{Blocks: 64, ThreadsPerBlock: 32}, k); err != nil {
			b.Fatal(err)
		}
	}
}
