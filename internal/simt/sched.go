package simt

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The simulation protocol: every warp runs its kernel on a dedicated
// goroutine, and within one SM exactly one goroutine (a warp or the SM's
// event loop) executes at any moment. A warp blocks inside charge() after
// sending a cost request; the SM loop picks the next warp to advance by
// simulated time and hands the execution token back over the warp's resume
// channel.
//
// With Config.ParallelSMs == 1 a single host goroutine multiplexes all SMs,
// always stepping the SM with the smallest clock (lowest id on ties). With
// ParallelSMs > 1 every SM's event loop runs on its own host goroutine and
// the SMs advance concurrently. Determinism is preserved by construction:
//
//   - Plain global-memory stores go to a per-SM write shadow and plain loads
//     read base-overridden-by-own-shadow (see mem.go), so no plain access
//     ever crosses between SMs mid-launch.
//   - Atomics and block admission — the only cross-SM effects — pass through
//     a global gate that releases them in the sequential loop's exact order:
//     lexicographic (step clock, SM id). Each SM publishes its current step
//     clock as a "horizon"; a gated op at key (k, i) waits until every other
//     SM j has horizon > k (or == k with j > i), which proves no effect
//     ordered before it can still be produced.
//   - Stats accumulate in per-SM shards and merge in ascending SM id at
//     launch end; Cycles = max over SMFinish.
//
// The result: identical memory contents and bit-identical LaunchStats for
// every ParallelSMs setting. The one caveat is aborts — which host goroutine
// trips a fault or timeout first is timing-dependent, so the partial stats of
// a FAILED parallel launch (and which of several concurrent errors is
// reported) may vary run to run. Successful launches are fully deterministic.

type opClass uint8

const (
	opALU opClass = iota
	opMem
	opAtomic
	opShared
	opBarrier
	opDone
)

// request is a warp's report of the instruction it is about to complete.
type request struct {
	class opClass
	// issue is pipeline occupancy in slots (ALU/shared ops).
	issue int64
	// latency is the delay until the warp may issue again.
	latency int64
	// txns is memory-pipe occupancy for mem/atomic ops.
	txns int64
	// err reports a kernel failure alongside opDone.
	err error
}

// errAborted is the sentinel panic used to unwind warp goroutines when a
// launch is cancelled; it never escapes the package.
var errAborted = errors.New("simt: launch aborted")

const neverReady = math.MaxInt64

// gateIdle marks an SM with no pending gated operation (and is the horizon
// published by an SM whose event loop has exited).
const gateIdle = int64(math.MaxInt64)

type warpRT struct {
	globalID    int
	blockID     int
	warpInBlock int

	readyAt   int64
	busy      int64
	started   bool
	done      bool
	inBarrier bool
	arrivedAt int64

	resume chan int64
	req    chan request
	ctx    *WarpCtx
	block  *blockRT
	sm     *smRT
}

type blockRT struct {
	id            int
	warps         []*warpRT
	liveWarps     int
	inBarrier     int
	barrierLatest int64
	shared        *sharedArena
}

type smRT struct {
	id            int
	clock         int64
	memPipeFree   int64
	blocks        []*blockRT
	warps         []*warpRT
	warpSlotsUsed int
	everUsed      bool
	cache         *smCache
	rrCursor      int

	// stepKey is the SM clock at the top of the current event-loop step —
	// the ordering key of every memory effect the step produces.
	stepKey int64
	// stats is this SM's shard of the launch counters; shards merge in
	// ascending SM id at launch end so totals are order-independent.
	stats LaunchStats
}

type launch struct {
	dev    *Device
	cfg    Config
	lc     LaunchConfig
	kernel Kernel
	stats  *LaunchStats
	opts   LaunchOpts
	inj    *injection
	san    Sanitizer

	sms           []*smRT
	warpsPerBlock int
	nextBlock     atomic.Int64
	totalBlocks   int

	// parallel selects per-SM host goroutines; when false the gate calls
	// below are no-ops and a single goroutine multiplexes the SMs.
	parallel bool

	aborted  atomic.Bool
	failMu   sync.Mutex
	abortErr error
	injFired bool

	// Atomic-gate state (parallel mode only). horizons[i] is SM i's current
	// step key (gateIdle once its loop exits); pending[i] is the key of SM
	// i's waiting gated op, gateIdle when none. minPending caches the least
	// pending key so horizon publishes can skip the broadcast when nobody
	// could be unblocked. gateMu is held for the duration of every gated
	// operation, making them mutually exclusive; the (horizon, id) ordering
	// rule makes them execute in the sequential loop's exact order.
	gateMu     sync.Mutex
	gateCond   *sync.Cond
	horizons   []atomic.Int64
	pending    []int64
	minPending atomic.Int64
}

func newLaunch(d *Device, lc LaunchConfig, kernel Kernel) *launch {
	warpsPerBlock := (lc.ThreadsPerBlock + d.cfg.WarpWidth - 1) / d.cfg.WarpWidth
	l := &launch{
		dev:           d,
		cfg:           d.cfg,
		lc:            lc,
		kernel:        kernel,
		warpsPerBlock: warpsPerBlock,
		totalBlocks:   lc.Blocks,
		stats: &LaunchStats{
			WarpWidth: d.cfg.WarpWidth,
			WarpBusy:  make([]int64, lc.Blocks*warpsPerBlock),
		},
	}
	l.sms = make([]*smRT, d.cfg.NumSMs)
	for i := range l.sms {
		sm := &smRT{id: i}
		if d.cfg.CacheLines > 0 {
			sm.cache = newSMCache(d.cfg.CacheLines, d.cfg.CacheWays)
		}
		l.sms[i] = sm
	}
	l.gateCond = sync.NewCond(&l.gateMu)
	l.horizons = make([]atomic.Int64, d.cfg.NumSMs)
	l.pending = make([]int64, d.cfg.NumSMs)
	for i := range l.pending {
		l.pending[i] = gateIdle
	}
	l.minPending.Store(gateIdle)
	return l
}

func (l *launch) trace(e TraceEvent) {
	if t := l.dev.tracer; t != nil {
		t.Event(e)
	}
}

// execMode resolves the host execution mode: the effective ParallelSMs value
// and, when a parallel request is forced sequential, the reason.
func (l *launch) execMode() (int, string) {
	n := l.cfg.ParallelSMs
	if n > l.cfg.NumSMs {
		n = l.cfg.NumSMs
	}
	if n <= 1 {
		return 1, ""
	}
	// These features observe mid-launch state in ways that are only
	// meaningful under the single sequential clock: a full-fidelity tracer
	// wants one globally ordered event stream, fault injection aborts at an
	// exact cycle, and OnProgress reports a single advancing clock. A tracer
	// that declares itself parallel-safe (ParallelTracer) shards its state by
	// SM and keeps the fast path.
	switch {
	case l.dev.tracer != nil && !tracerParallelSafe(l.dev.tracer):
		return 1, "tracer"
	case l.inj != nil:
		return 1, "fault-injection"
	case l.opts.OnProgress != nil:
		return 1, "on-progress"
	case l.san != nil:
		// The sanitizer keeps cross-warp shadow state; the sequential loop
		// hands it the canonical event order with no locking.
		return 1, "sanitizer"
	}
	return n, ""
}

// run drives the launch to completion. On failure the error is typed (a
// *KernelFault, or a wrap of ErrLaunchTimeout / ErrLaunchCancelled /
// ErrDeviceLost) and the returned stats hold everything accumulated up to
// the failure — partial, but honest.
func (l *launch) run() (*LaunchStats, error) {
	maxCycles := l.cfg.MaxCycles
	if l.opts.MaxCycles > 0 {
		maxCycles = l.opts.MaxCycles
	}
	mode, fallback := l.execMode()
	l.parallel = mode > 1
	l.stats.ParallelSMs = mode
	l.stats.SequentialFallback = fallback
	if fallback != "" {
		l.dev.warnSequentialFallback(fallback)
	}
	if l.dev.profiling || l.opts.Profile {
		for _, sm := range l.sms {
			sm.stats.Profile = &LaunchProfile{}
		}
	}
	l.initShadows()
	if l.san != nil {
		l.san.LaunchBegin(l.lc)
	}
	l.trace(TraceEvent{Kind: TraceLaunchStart, Warp: -1, Block: -1, SM: -1})
	if l.parallel {
		l.runParallel(maxCycles)
	} else {
		l.runSequential(maxCycles)
	}
	// A transient injection whose cycle the kernel outran still fires at
	// drain: a bit-flip already corrupted memory, so swallowing it would be
	// silent corruption. Device loss is a genuine cycle threshold — a launch
	// that finishes under it survives. (Injection forces sequential mode, so
	// this never races with SM goroutines.)
	if l.inj != nil && !l.injFired && !l.aborted.Load() && !l.inj.loseDevice {
		l.fireInjection()
	}
	l.mergeMemory()
	for _, sm := range l.sms {
		l.stats.addCounters(&sm.stats)
	}
	// The watchdog observes the clock at step granularity, so one
	// long-latency op can overshoot MaxCycles by its full latency; report
	// the budget, not the overshoot.
	timedOut := errors.Is(l.abortErr, ErrLaunchTimeout)
	for _, sm := range l.sms {
		if sm.everUsed {
			finish := sm.clock
			if timedOut && finish > maxCycles {
				finish = maxCycles
			}
			l.stats.SMFinish = append(l.stats.SMFinish, finish)
			if finish > l.stats.Cycles {
				l.stats.Cycles = finish
			}
		}
	}
	l.trace(TraceEvent{Kind: TraceLaunchEnd, Cycle: l.stats.Cycles, Warp: -1, Block: -1, SM: -1})
	if l.san != nil {
		l.san.LaunchEnd(l.abortErr)
	}
	if l.abortErr != nil {
		return l.stats, l.abortErr
	}
	return l.stats, nil
}

// runSequential is the classic event loop: one goroutine, always stepping
// the SM with the smallest clock.
func (l *launch) runSequential(maxCycles int64) {
	progressEvery := l.opts.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 65536
	}
	nextProgress := progressEvery
	for {
		sm := l.pickSM()
		if sm == nil {
			break
		}
		l.stepSM(sm)
		if l.aborted.Load() {
			continue
		}
		if l.inj != nil && !l.injFired && sm.clock >= l.inj.abortAt {
			l.fireInjection()
			continue
		}
		if sm.clock > maxCycles {
			l.fail(fmt.Errorf("simt: launch exceeded MaxCycles=%d (possible kernel livelock): %w",
				maxCycles, ErrLaunchTimeout))
			continue
		}
		if l.opts.OnProgress != nil && sm.clock >= nextProgress {
			for nextProgress <= sm.clock {
				nextProgress += progressEvery
			}
			if err := l.opts.OnProgress(sm.clock); err != nil {
				l.fail(fmt.Errorf("simt: launch cancelled at cycle %d: %w: %w",
					sm.clock, ErrLaunchCancelled, err))
				continue
			}
		}
	}
}

// runParallel runs every SM's event loop on its own host goroutine.
func (l *launch) runParallel(maxCycles int64) {
	var wg sync.WaitGroup
	for _, sm := range l.sms {
		wg.Add(1)
		go func(sm *smRT) {
			defer wg.Done()
			// Unblock any gated op still waiting on this SM's horizon.
			defer l.publishHorizon(sm.id, gateIdle)
			l.smLoop(sm, maxCycles)
		}(sm)
	}
	wg.Wait()
}

// smLoop is one SM's event loop in parallel mode. The horizon published at
// the top of each step is the ordering key of every memory effect the step
// can produce; it is monotone because the SM clock never decreases.
func (l *launch) smLoop(sm *smRT, maxCycles int64) {
	for {
		if l.aborted.Load() {
			l.drainSM(sm)
			return
		}
		if !l.smHasWork(sm) {
			return
		}
		l.publishHorizon(sm.id, sm.clock)
		l.stepSM(sm)
		if sm.clock > maxCycles && !l.aborted.Load() {
			l.fail(fmt.Errorf("simt: launch exceeded MaxCycles=%d (possible kernel livelock): %w",
				maxCycles, ErrLaunchTimeout))
		}
	}
}

// fireInjection triggers the launch's planned fault.
func (l *launch) fireInjection() {
	l.injFired = true
	if l.inj.loseDevice {
		l.dev.lost = true
	}
	l.fail(l.inj.err)
}

// pickSM returns the SM with work and the smallest clock, or nil when the
// launch has fully drained.
func (l *launch) pickSM() *smRT {
	var best *smRT
	for _, sm := range l.sms {
		if !l.smHasWork(sm) {
			continue
		}
		if best == nil || sm.clock < best.clock {
			best = sm
		}
	}
	return best
}

func (l *launch) smHasWork(sm *smRT) bool {
	for _, w := range sm.warps {
		if !w.done {
			return true
		}
	}
	return l.nextBlock.Load() < int64(l.totalBlocks) && l.canAdmit(sm)
}

func (l *launch) canAdmit(sm *smRT) bool {
	return len(sm.blocks) < l.cfg.MaxBlocksPerSM &&
		sm.warpSlotsUsed+l.warpsPerBlock <= l.cfg.MaxWarpsPerSM
}

// admitBlocks hands the SM at most one pending block per scheduling step.
// Because steps are ordered by (clock, SM id) — explicitly by pickSM in
// sequential mode, by the gate in parallel mode — this distributes blocks
// breadth-first across SMs, matching the hardware block distributor, and the
// block→SM assignment is identical in both modes.
//
// The unsynchronized pre-check is sound: nextBlock is monotone and, while
// this SM's horizon sits at the current step key, only operations ordered
// before this step can have advanced it. So a pre-check that reads
// "exhausted" proves the gated re-check would too.
func (l *launch) admitBlocks(sm *smRT) {
	if l.nextBlock.Load() >= int64(l.totalBlocks) || !l.canAdmit(sm) {
		return
	}
	if !l.gateEnter(sm) {
		return // aborted while waiting; the SM loop drains next
	}
	if l.nextBlock.Load() < int64(l.totalBlocks) && l.canAdmit(sm) {
		blockID := int(l.nextBlock.Add(1) - 1)
		b := &blockRT{
			id:     blockID,
			shared: newSharedArena(),
		}
		for wi := 0; wi < l.warpsPerBlock; wi++ {
			w := &warpRT{
				globalID:    blockID*l.warpsPerBlock + wi,
				blockID:     blockID,
				warpInBlock: wi,
				readyAt:     sm.clock,
				resume:      make(chan int64),
				req:         make(chan request),
				block:       b,
				sm:          sm,
			}
			w.ctx = newWarpCtx(l, w)
			b.warps = append(b.warps, w)
			go l.runWarp(w)
		}
		b.liveWarps = len(b.warps)
		sm.blocks = append(sm.blocks, b)
		sm.warps = append(sm.warps, b.warps...)
		sm.warpSlotsUsed += l.warpsPerBlock
		sm.everUsed = true
		sm.stats.BlocksLaunched++
		sm.stats.WarpsLaunched += len(b.warps)
		l.trace(TraceEvent{Kind: TraceBlockStart, Cycle: sm.clock, SM: sm.id, Block: blockID, Warp: -1})
	}
	l.gateExit(sm)
}

// runWarp is the warp goroutine body. Any panic escaping the kernel —
// including the typed *KernelFault panics raised by buffer bounds checks —
// is recovered here, located (block/warp/cycle), and reported through the
// opDone request so Launch returns it as a typed error.
func (l *launch) runWarp(w *warpRT) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *KernelFault:
				v.Block, v.Warp = w.blockID, w.globalID
				v.Cycle = w.sm.clock
				err = v
			case error:
				if !errors.Is(v, errAborted) {
					err = l.panicFault(w, r)
				}
			default:
				err = l.panicFault(w, r)
			}
		}
		w.req <- request{class: opDone, err: err}
	}()
	<-w.resume
	if l.aborted.Load() {
		panic(errAborted)
	}
	l.kernel(w.ctx)
}

// panicFault wraps an arbitrary kernel panic as a typed fault.
func (l *launch) panicFault(w *warpRT, r interface{}) *KernelFault {
	return &KernelFault{
		Kind:  FaultPanic,
		Index: -1,
		Block: w.blockID, Warp: w.globalID, Lane: -1,
		Cycle:  w.sm.clock,
		Detail: fmt.Sprint(r),
		Stack:  string(debug.Stack()),
	}
}

// stepSM advances one SM by one warp instruction.
func (l *launch) stepSM(sm *smRT) {
	sm.stepKey = sm.clock
	l.admitBlocks(sm)
	w := l.nextWarp(sm)
	if w == nil {
		return
	}
	hadOthers := false
	for _, other := range sm.warps {
		if other != w && !other.done {
			hadOthers = true
			break
		}
	}
	if w.readyAt > sm.clock {
		if hadOthers || w.started {
			sm.stats.StallCycles += w.readyAt - sm.clock
			if p := sm.stats.Profile; p != nil {
				p.StallWait.Observe(w.readyAt - sm.clock)
			}
		}
		sm.clock = w.readyAt
	}
	w.started = true
	w.resume <- sm.clock
	r := <-w.req
	l.apply(sm, w, r)
}

// nextWarp picks the next resident warp per the scheduler policy, skipping
// done and barrier-blocked warps.
//
// "gto" (default) issues the warp with the smallest ready time (FIFO by
// global id on ties) — greedy-then-oldest. "lrr" rotates a cursor through
// the warps already ready at the current clock, falling back to the soonest
// ready warp when none is.
func (l *launch) nextWarp(sm *smRT) *warpRT {
	var best *warpRT
	for _, w := range sm.warps {
		if w.done || w.inBarrier {
			continue
		}
		if best == nil || w.readyAt < best.readyAt ||
			(w.readyAt == best.readyAt && w.globalID < best.globalID) {
			best = w
		}
	}
	if best == nil || l.cfg.SchedulerPolicy != "lrr" {
		return best
	}
	n := len(sm.warps)
	for i := 1; i <= n; i++ {
		w := sm.warps[(sm.rrCursor+i)%n]
		if w.done || w.inBarrier || w.readyAt > sm.clock {
			continue
		}
		for j, ww := range sm.warps {
			if ww == w {
				sm.rrCursor = j
				break
			}
		}
		return w
	}
	return best
}

func (l *launch) apply(sm *smRT, w *warpRT, r request) {
	if l.dev.tracer != nil && r.class != opDone {
		l.trace(TraceEvent{
			Kind: TraceInstr, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID,
			Class: classString(r.class), Issue: r.issue, Latency: r.latency, Txns: r.txns,
		})
	}
	if p := sm.stats.Profile; p != nil && r.class != opDone {
		p.InstrLatency.Observe(r.latency)
		if r.class == opMem || r.class == opAtomic {
			p.MemTxns.Observe(r.txns)
		}
	}
	switch r.class {
	case opALU, opShared:
		sm.clock += r.issue
		w.readyAt = sm.clock + r.latency
		w.busy += r.issue + r.latency
	case opMem, opAtomic:
		// One compute-pipe slot to issue, then the memory pipe carries the
		// transactions; the warp waits out the full memory latency.
		sm.clock++
		start := sm.clock
		if sm.memPipeFree > start {
			start = sm.memPipeFree
		}
		sm.memPipeFree = start + r.txns*l.cfg.MemPipeCyclesPerTxn
		w.readyAt = sm.memPipeFree + r.latency
		w.busy += (sm.memPipeFree - sm.clock + 1) + r.latency
	case opBarrier:
		b := w.block
		w.inBarrier = true
		w.arrivedAt = sm.clock
		w.readyAt = neverReady
		b.inBarrier++
		if sm.clock > b.barrierLatest {
			b.barrierLatest = sm.clock
		}
		l.maybeReleaseBarrier(sm, b)
	case opDone:
		w.done = true
		w.readyAt = neverReady
		if l.san != nil && r.err == nil {
			l.san.WarpDone(w.blockID, w.globalID, w.ctx.barriers)
		}
		l.trace(TraceEvent{Kind: TraceWarpDone, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID})
		if p := sm.stats.Profile; p != nil {
			p.WarpBusy.Observe(w.busy)
		}
		l.stats.WarpBusy[w.globalID] = w.busy
		b := w.block
		b.liveWarps--
		if r.err != nil && !l.aborted.Load() {
			// A fault during a launch with a pending transient injection is
			// attributed to the injection: the corruption it planted is the
			// root cause of whatever the kernel tripped over, and reporting
			// it as transient keeps retry-with-restore sound.
			if l.inj != nil && !l.injFired && !l.inj.loseDevice {
				l.fireInjection()
			} else {
				l.fail(r.err)
			}
			return
		}
		if b.liveWarps == 0 {
			l.trace(TraceEvent{Kind: TraceBlockEnd, Cycle: sm.clock, SM: sm.id, Block: b.id, Warp: -1})
			l.retireBlock(sm, b)
		} else {
			// A warp exiting may satisfy an outstanding barrier.
			l.maybeReleaseBarrier(sm, b)
		}
	}
}

func (l *launch) maybeReleaseBarrier(sm *smRT, b *blockRT) {
	if b.inBarrier == 0 || b.inBarrier < b.liveWarps {
		return
	}
	for _, w := range b.warps {
		if w.inBarrier {
			w.inBarrier = false
			w.readyAt = b.barrierLatest + 1
		}
	}
	l.trace(TraceEvent{Kind: TraceBarrierRelease, Cycle: b.barrierLatest, SM: sm.id, Block: b.id, Warp: -1})
	b.inBarrier = 0
	b.barrierLatest = 0
	sm.stats.Barriers++
}

func (l *launch) retireBlock(sm *smRT, b *blockRT) {
	for i, bb := range sm.blocks {
		if bb == b {
			sm.blocks = append(sm.blocks[:i], sm.blocks[i+1:]...)
			break
		}
	}
	live := sm.warps[:0]
	for _, w := range sm.warps {
		if w.block != b {
			live = append(live, w)
		}
	}
	sm.warps = live
	sm.warpSlotsUsed -= l.warpsPerBlock
}

// fail cancels the launch; the first error wins. In sequential mode every
// live warp is synchronously woken, unwinds via the errAborted panic, and
// reports done. In parallel mode each SM loop notices the flag and drains
// its own warps; warps blocked in the atomic gate are woken by the
// broadcast and unwind the same way.
func (l *launch) fail(err error) {
	l.failMu.Lock()
	if l.abortErr == nil {
		l.abortErr = err
	}
	l.failMu.Unlock()
	l.aborted.Store(true)
	if l.parallel {
		l.gateMu.Lock()
		l.gateCond.Broadcast()
		l.gateMu.Unlock()
		return
	}
	for _, sm := range l.sms {
		l.drainSM(sm)
	}
}

// drainSM unwinds every live warp resident on sm. Must only be called from
// the goroutine driving sm's event loop (or the sequential loop).
func (l *launch) drainSM(sm *smRT) {
	for _, w := range sm.warps {
		for !w.done {
			w.resume <- 0
			r := <-w.req
			if r.class == opDone {
				w.done = true
				if w.block.liveWarps > 0 {
					w.block.liveWarps--
				}
			}
			// Any non-done request from an unwinding warp is impossible:
			// charge panics immediately after resume when aborted.
		}
	}
}

// --- the atomic gate -----------------------------------------------------
//
// Sequential-mode memory effects execute in lexicographic (step clock, SM
// id, program order) order. In parallel mode the cross-SM effects (overlay
// atomics, block admission) reproduce that order by waiting until no other
// SM can still produce an earlier-ordered effect: SM j cannot once its
// horizon — the clock of the step it is currently executing, monotone
// non-decreasing — has passed the waiter's key. The waiter then holds
// gateMu for the duration of the operation. Two gated ops can never be
// admitted concurrently (each one's clearance asserts it orders after the
// other — a contradiction), so the gate also provides mutual exclusion and
// the happens-before edges that publish overlay data between SMs.

// publishHorizon announces that every effect sm will produce from now on has
// ordering key >= key. Waiters are only woken when the new horizon could
// actually clear someone.
func (l *launch) publishHorizon(smID int, key int64) {
	if !l.parallel {
		return
	}
	l.horizons[smID].Store(key)
	if key >= l.minPending.Load() {
		l.gateMu.Lock()
		l.gateCond.Broadcast()
		l.gateMu.Unlock()
	}
}

// gateEnter blocks until every cross-SM effect ordered before sm's current
// step has executed, then returns true with the gate held (release with
// gateExit). It returns false — gate not held — if the launch aborted while
// waiting. Sequential mode: no-op, returns true.
func (l *launch) gateEnter(sm *smRT) bool {
	if !l.parallel {
		return true
	}
	key := sm.stepKey
	l.gateMu.Lock()
	l.pending[sm.id] = key
	if key < l.minPending.Load() {
		l.minPending.Store(key)
	}
	for {
		if l.aborted.Load() {
			l.pending[sm.id] = gateIdle
			l.refreshMinPending()
			l.gateMu.Unlock()
			return false
		}
		if l.gateClear(key, sm.id) {
			return true
		}
		l.gateCond.Wait()
	}
}

// gateExit releases the gate taken by gateEnter.
func (l *launch) gateExit(sm *smRT) {
	if !l.parallel {
		return
	}
	l.pending[sm.id] = gateIdle
	l.refreshMinPending()
	l.gateMu.Unlock()
}

// gateClear reports whether a gated op with ordering key (key, smID) may
// execute: every other SM must have moved past it.
func (l *launch) gateClear(key int64, smID int) bool {
	for j := range l.horizons {
		if j == smID {
			continue
		}
		h := l.horizons[j].Load()
		if h > key || (h == key && j > smID) {
			continue
		}
		return false
	}
	return true
}

// refreshMinPending recomputes the least pending gate key. Caller holds
// gateMu.
func (l *launch) refreshMinPending() {
	min := gateIdle
	for _, k := range l.pending {
		if k < min {
			min = k
		}
	}
	l.minPending.Store(min)
}

// --- launch-scoped memory shadows ----------------------------------------

// initShadows arms every device buffer's per-SM store shadows and atomic
// overlay for this launch (see the memory-model comment in mem.go).
func (l *launch) initShadows() {
	n := l.cfg.NumSMs
	for _, b := range l.dev.bufsI32 {
		b.sh = make([]*bufShadow[int32], n)
		b.ov = nil
	}
	for _, b := range l.dev.bufsF32 {
		b.sh = make([]*bufShadow[float32], n)
		b.ov = nil
	}
}

// mergeMemory folds every buffer's launch-scoped shadows back into its base
// array: per-SM store shadows in ascending SM id, then the atomic overlay
// last so final atomic values beat any stale same-cell plain store. A cell
// that mixes plain stores and atomics within one launch has no sequential
// analogue; the overlay-last rule makes the outcome deterministic.
func (l *launch) mergeMemory() {
	for _, b := range l.dev.bufsI32 {
		for _, sh := range b.sh {
			if sh != nil {
				sh.merge()
			}
		}
		if b.ov != nil {
			b.ov.merge()
		}
		b.sh, b.ov = nil, nil
	}
	for _, b := range l.dev.bufsF32 {
		for _, sh := range b.sh {
			if sh != nil {
				sh.merge()
			}
		}
		if b.ov != nil {
			b.ov.merge()
		}
		b.sh, b.ov = nil, nil
	}
}
