package simt

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// The simulation protocol: every warp runs its kernel on a dedicated
// goroutine, and within one SM exactly one goroutine (a warp or the SM's
// event loop) executes at any moment. A warp blocks inside charge() after
// sending a cost request; the SM loop picks the next warp to advance by
// simulated time and hands the execution token back over the warp's resume
// channel.
//
// With Config.ParallelSMs == 1 a single host goroutine multiplexes all SMs,
// always stepping the SM with the smallest clock (lowest id on ties). With
// ParallelSMs > 1 every SM's event loop runs on its own host goroutine and
// the SMs advance concurrently. Determinism is preserved by construction:
//
//   - Plain global-memory stores go to a per-SM write shadow and plain loads
//     read base-overridden-by-own-shadow (see mem.go), so no plain access
//     ever crosses between SMs mid-launch.
//   - Atomics and block admission — the only cross-SM effects — pass through
//     a global gate that releases them in the sequential loop's exact order:
//     lexicographic (step clock, SM id). Each SM publishes its current step
//     clock as a "horizon"; a gated op at key (k, i) waits until every other
//     SM j has horizon > k (or == k with j > i), which proves no effect
//     ordered before it can still be produced.
//   - Stats accumulate in per-SM shards and merge in ascending SM id at
//     launch end; Cycles = max over SMFinish.
//
// The result: identical memory contents and bit-identical LaunchStats for
// every ParallelSMs setting. The one caveat is aborts — which host goroutine
// trips a fault or timeout first is timing-dependent, so the partial stats of
// a FAILED parallel launch (and which of several concurrent errors is
// reported) may vary run to run. Successful launches are fully deterministic.

type opClass uint8

const (
	opALU opClass = iota
	opMem
	opAtomic
	opShared
	opBarrier
	opDone
)

// request is a warp's report of the instruction it is about to complete.
type request struct {
	class opClass
	// issue is pipeline occupancy in slots (ALU/shared ops).
	issue int64
	// latency is the delay until the warp may issue again.
	latency int64
	// txns is memory-pipe occupancy for mem/atomic ops.
	txns int64
	// err reports a kernel failure alongside opDone.
	err error
}

// errAborted is the sentinel panic used to unwind warp goroutines when a
// launch is cancelled; it never escapes the package.
var errAborted = errors.New("simt: launch aborted")

const neverReady = math.MaxInt64

// gateIdle marks an SM with no pending gated operation (and is the horizon
// published by an SM whose event loop has exited).
const gateIdle = int64(math.MaxInt64)

type warpRT struct {
	globalID    int
	blockID     int
	warpInBlock int

	// smIdx is this warp's index in its SM's warps/readyKey slices, kept in
	// sync by admission and block retirement.
	smIdx int

	readyAt   int64
	busy      int64
	started   bool
	done      bool
	inBarrier bool
	arrivedAt int64

	// seqSelfAbort marks a warp that initiated the launch abort from its own
	// charge (direct-handoff mode): every other warp was drained by fail()
	// while this one was still mid-kernel, so its unwind must account itself
	// the way drainSM would have.
	seqSelfAbort bool

	resume chan int64
	req    chan request
	ctx    *WarpCtx
	block  *blockRT
	sm     *smRT
}

type blockRT struct {
	id            int
	warps         []*warpRT
	liveWarps     int
	inBarrier     int
	barrierLatest int64
	shared        *sharedArena
}

type smRT struct {
	id            int
	clock         int64
	memPipeFree   int64
	blocks        []*blockRT
	warps         []*warpRT
	warpSlotsUsed int
	everUsed      bool
	cache         *smCache
	rrCursor      int

	// readyKey[i] is the GTO scheduling key of warps[i]: its readyAt when
	// issuable, neverReady while done or barrier-blocked. Keeping the keys in
	// a contiguous slab lets the per-instruction scheduler scan touch a few
	// cache lines instead of chasing every warpRT pointer. Every site that
	// mutates readyAt/done/inBarrier updates the key.
	readyKey []int64

	// liveWarps counts resident warps that have not reported done, so the
	// has-work check is O(1) instead of a scan over every resident warp per
	// scheduling step.
	liveWarps int

	// warpFree recycles warp runtimes (channels + lane-state slabs) retired
	// by this SM; admission reuses them before touching the device-level
	// pool. Only the goroutine driving this SM's event loop touches it.
	warpFree []*warpRT

	// slotHeld marks that this SM currently holds one of the launch's host
	// worker slots (parallel mode). It is accessed only by the goroutine
	// currently executing on behalf of this SM — the event loop or the warp
	// it has handed the token to — so it needs no synchronization.
	slotHeld bool

	// token is the warp currently holding this SM's execution token in
	// parallel direct-handoff mode; nil while the event loop holds it. Writes
	// are chained by the channel operations that transfer the token, so no
	// synchronization is needed.
	token *warpRT
	// loopResume wakes the SM event loop when the token chain ends (warp
	// finished with no successor, abort, or no runnable warp).
	loopResume chan struct{}

	// stepKey is the SM clock at the top of the current event-loop step —
	// the ordering key of every memory effect the step produces.
	stepKey int64
	// stats is this SM's shard of the launch counters; shards merge in
	// ascending SM id at launch end so totals are order-independent.
	stats LaunchStats
}

type launch struct {
	dev    *Device
	cfg    Config
	lc     LaunchConfig
	kernel Kernel
	stats  *LaunchStats
	opts   LaunchOpts
	inj    *injection
	san    Sanitizer

	sms           []*smRT
	warpsPerBlock int
	nextBlock     atomic.Int64
	totalBlocks   int

	// maxCycles is the launch's resolved cycle budget (config overridden by
	// LaunchOpts), read by both host modes' supervision checks.
	maxCycles int64

	// admitDepth caps resident blocks per SM at admission time. Under the
	// default "fifo" schedule it equals MaxBlocksPerSM — every SM eagerly
	// fills its static occupancy limit. Under "steal" it is the configured
	// StealDepth: each SM keeps at most that many blocks in flight, so the
	// tail of the grid stays in the central queue and is claimed by whichever
	// SM retires first — the paper's dynamic workload distribution applied at
	// the host block distributor. The check reads only the requester's own
	// resident count (admitted minus retired, i.e. its measured retirement
	// progress at its own step key), so the policy is identical across host
	// modes and bit-deterministic.
	admitDepth int

	// parallel selects per-SM host goroutines; when false the gate calls
	// below are no-ops and a single goroutine multiplexes the SMs.
	parallel bool

	// slots is the host worker-slot pool (parallel mode): ParallelSMs tokens
	// shared by all SM goroutines. An SM must hold a slot to execute its
	// event loop and releases it while blocked in the atomic gate, so host
	// workers migrate from stalled/finished SMs to SMs with ready work — the
	// paper's dynamic workload distribution applied at host level — without
	// perturbing the (stepKey, smID) effect order.
	slots chan struct{}

	aborted  atomic.Bool
	failMu   sync.Mutex
	abortErr error
	injFired bool

	// Direct-handoff state (sequential mode only). Exactly one goroutine — the
	// token holder — executes at any moment: it applies its own instruction
	// cost, runs the supervision checks, and picks the next runner itself, so
	// an instruction costs zero goroutine switches when the scheduler picks
	// the same warp again and one switch (down from two) otherwise. The
	// supervisor goroutine only starts the chain and parks on seqDone.
	seqLive          []*smRT       // SMs that may still have work (permanent-drop filter)
	seqDone          chan struct{} // closed by the token holder when no work remains
	seqTokenWarp     *warpRT       // current token holder, nil when the supervisor holds it
	seqProgressEvery int64
	seqNextProgress  int64
	// seqSecondClock/seqSecondID cache the best (clock, id) among live SMs
	// other than the one last picked. Other SMs' clocks and work sets are
	// frozen while the token stays on one SM (only its own warps execute and
	// only a full pick consumes the global block cursor), so as long as the
	// current SM still lexicographically precedes this cached runner-up, it
	// remains the full scan's choice and seqStep can skip the rescan.
	seqSecondClock int64
	seqSecondID    int

	// Atomic-gate state (parallel mode only). horizons[i] is SM i's current
	// step key (gateIdle once its loop exits); pending[i] is the key of SM
	// i's waiting gated op, gateIdle when none. minPending caches the least
	// pending key so horizon publishes can skip the broadcast when nobody
	// could be unblocked. gateMu is held for the duration of every gated
	// operation, making them mutually exclusive; the (horizon, id) ordering
	// rule makes them execute in the sequential loop's exact order.
	gateMu     sync.Mutex
	gateCond   *sync.Cond
	horizons   []atomic.Int64
	pending    []int64
	minPending atomic.Int64
}

func newLaunch(d *Device, lc LaunchConfig, kernel Kernel) *launch {
	warpsPerBlock := (lc.ThreadsPerBlock + d.cfg.WarpWidth - 1) / d.cfg.WarpWidth
	l := &launch{
		dev:           d,
		cfg:           d.cfg,
		lc:            lc,
		kernel:        kernel,
		warpsPerBlock: warpsPerBlock,
		totalBlocks:   lc.Blocks,
		stats: &LaunchStats{
			WarpWidth: d.cfg.WarpWidth,
			WarpBusy:  make([]int64, lc.Blocks*warpsPerBlock),
		},
	}
	l.admitDepth = d.cfg.MaxBlocksPerSM
	if d.cfg.BlockSchedule == "steal" && d.cfg.StealDepth < l.admitDepth {
		l.admitDepth = d.cfg.StealDepth
	}
	l.sms = make([]*smRT, d.cfg.NumSMs)
	for i := range l.sms {
		sm := &smRT{id: i}
		if d.cfg.CacheLines > 0 {
			sm.cache = newSMCache(d.cfg.CacheLines, d.cfg.CacheWays)
		}
		l.sms[i] = sm
	}
	l.gateCond = sync.NewCond(&l.gateMu)
	l.horizons = make([]atomic.Int64, d.cfg.NumSMs)
	l.pending = make([]int64, d.cfg.NumSMs)
	for i := range l.pending {
		l.pending[i] = gateIdle
	}
	l.minPending.Store(gateIdle)
	return l
}

func (l *launch) trace(e TraceEvent) {
	if t := l.dev.tracer; t != nil {
		t.Event(e)
	}
}

// execMode resolves the host execution mode: the effective ParallelSMs value
// and, when a parallel request is forced sequential, the reason.
func (l *launch) execMode() (int, string) {
	n := l.cfg.ParallelSMs
	if n > l.cfg.NumSMs {
		n = l.cfg.NumSMs
	}
	if n <= 1 {
		return 1, ""
	}
	// These features observe mid-launch state in ways that are only
	// meaningful under the single sequential clock: a full-fidelity tracer
	// wants one globally ordered event stream, fault injection aborts at an
	// exact cycle, and OnProgress reports a single advancing clock. A tracer
	// that declares itself parallel-safe (ParallelTracer) shards its state by
	// SM and keeps the fast path.
	switch {
	case l.dev.tracer != nil && !tracerParallelSafe(l.dev.tracer):
		return 1, "tracer"
	case l.inj != nil:
		return 1, "fault-injection"
	case l.opts.OnProgress != nil:
		return 1, "on-progress"
	case l.san != nil:
		// The sanitizer keeps cross-warp shadow state; the sequential loop
		// hands it the canonical event order with no locking.
		return 1, "sanitizer"
	}
	return n, ""
}

// run drives the launch to completion. On failure the error is typed (a
// *KernelFault, or a wrap of ErrLaunchTimeout / ErrLaunchCancelled /
// ErrDeviceLost) and the returned stats hold everything accumulated up to
// the failure — partial, but honest.
func (l *launch) run() (*LaunchStats, error) {
	maxCycles := l.cfg.MaxCycles
	if l.opts.MaxCycles > 0 {
		maxCycles = l.opts.MaxCycles
	}
	l.maxCycles = maxCycles
	mode, fallback := l.execMode()
	l.parallel = mode > 1
	l.stats.ParallelSMs = mode
	l.stats.SequentialFallback = fallback
	if fallback != "" {
		l.dev.warnSequentialFallback(fallback)
	}
	if l.dev.profiling || l.opts.Profile {
		for _, sm := range l.sms {
			sm.stats.Profile = &LaunchProfile{}
		}
	}
	l.initShadows()
	if l.san != nil {
		l.san.LaunchBegin(l.lc)
	}
	l.trace(TraceEvent{Kind: TraceLaunchStart, Warp: -1, Block: -1, SM: -1})
	if l.parallel {
		l.runParallel(maxCycles)
	} else {
		l.runSequential(maxCycles)
	}
	// A transient injection whose cycle the kernel outran still fires at
	// drain: a bit-flip already corrupted memory, so swallowing it would be
	// silent corruption. Device loss is a genuine cycle threshold — a launch
	// that finishes under it survives. (Injection forces sequential mode, so
	// this never races with SM goroutines.)
	if l.inj != nil && !l.injFired && !l.aborted.Load() && !l.inj.loseDevice {
		l.fireInjection()
	}
	l.mergeMemory()
	l.reclaimWarps()
	for _, sm := range l.sms {
		l.stats.addCounters(&sm.stats)
	}
	// The watchdog observes the clock at step granularity, so one
	// long-latency op can overshoot MaxCycles by its full latency; report
	// the budget, not the overshoot.
	timedOut := errors.Is(l.abortErr, ErrLaunchTimeout)
	for _, sm := range l.sms {
		if sm.everUsed {
			finish := sm.clock
			if timedOut && finish > maxCycles {
				finish = maxCycles
			}
			l.stats.SMFinish = append(l.stats.SMFinish, finish)
			if finish > l.stats.Cycles {
				l.stats.Cycles = finish
			}
		}
	}
	l.trace(TraceEvent{Kind: TraceLaunchEnd, Cycle: l.stats.Cycles, Warp: -1, Block: -1, SM: -1})
	if l.san != nil {
		l.san.LaunchEnd(l.abortErr)
	}
	if l.abortErr != nil {
		return l.stats, l.abortErr
	}
	return l.stats, nil
}

// runSequential drives the launch in direct-handoff mode: it performs the
// first scheduling pick, hands the execution token to that warp's goroutine,
// and parks until the token holders report completion. From then on every
// warp applies its own instruction cost and passes the token itself (see
// seqStep / seqFinish), which preserves the classic event loop's exact
// operation order — [pick, preamble, execute, apply, supervise] per step —
// while eliminating half (often all) of the per-instruction goroutine
// switches.
func (l *launch) runSequential(maxCycles int64) {
	l.seqProgressEvery = l.opts.ProgressEvery
	if l.seqProgressEvery == 0 {
		l.seqProgressEvery = 65536
	}
	l.seqNextProgress = l.seqProgressEvery
	// seqLive holds the SMs that may still have work. An SM whose has-work
	// check fails is dropped permanently: its resident warps are all done
	// (liveWarps is monotone down to 0 between admissions), and either no
	// blocks remain (nextBlock is monotone) or it cannot admit — and an SM
	// with zero resident blocks that cannot admit never can. The stable
	// in-place filter preserves ascending-id order, so the smallest-clock /
	// lowest-id tie-break matches the full scan exactly.
	l.seqLive = make([]*smRT, len(l.sms))
	copy(l.seqLive, l.sms)
	l.seqDone = make(chan struct{})
	first := l.seqPick()
	if first == nil {
		return
	}
	l.seqTokenWarp = first
	first.resume <- first.sm.clock
	<-l.seqDone
	l.seqTokenWarp = nil
}

// seqPick selects the next warp to execute: the smallest-clock SM with work
// (lowest id on ties), block admission, then that SM's scheduler policy. It
// also performs the pre-step bookkeeping the classic loop did in stepSM —
// stall accounting and the clock advance — so the returned warp is ready to
// run the moment it receives the token. Returns nil when no SM has work.
// Caller must hold the execution token (or be the supervisor before any warp
// has started).
func (l *launch) seqPick() *warpRT {
	for {
		var sm *smRT
		secondClock := int64(math.MaxInt64)
		secondID := math.MaxInt32
		n := 0
		for _, s := range l.seqLive {
			if !l.smHasWork(s) {
				continue
			}
			l.seqLive[n] = s
			n++
			switch {
			case sm == nil:
				sm = s
			case s.clock < sm.clock:
				// The scan runs in ascending SM id, so the displaced best is
				// the lexicographic runner-up so far.
				secondClock, secondID = sm.clock, sm.id
				sm = s
			case s.clock < secondClock:
				secondClock, secondID = s.clock, s.id
			}
		}
		l.seqLive = l.seqLive[:n]
		if sm == nil {
			return nil
		}
		l.seqSecondClock, l.seqSecondID = secondClock, secondID
		sm.stepKey = sm.clock
		l.admitBlocks(sm)
		w := l.nextWarp(sm)
		if w == nil {
			continue
		}
		l.seqPreamble(sm, w)
		return w
	}
}

// seqPreamble performs the pre-execution bookkeeping the classic loop did in
// stepSM after choosing a warp: stall accounting (suppressed for a lone
// not-yet-started warp, i.e. plain admission latency) and the clock advance
// to the warp's ready time.
func (l *launch) seqPreamble(sm *smRT, w *warpRT) {
	if w.readyAt > sm.clock {
		// liveWarps counts resident not-done warps and w is one of them, so
		// "another live warp exists" is exactly liveWarps > 1.
		if sm.liveWarps > 1 || w.started {
			sm.stats.StallCycles += w.readyAt - sm.clock
			if p := sm.stats.Profile; p != nil {
				p.StallWait.Observe(w.readyAt - sm.clock)
			}
		}
		sm.clock = w.readyAt
	}
	w.started = true
}

// seqSupervise runs the post-step checks (fault injection, MaxCycles,
// OnProgress) for the SM just stepped — the same checks, in the same order,
// the classic loop ran after every stepSM.
func (l *launch) seqSupervise(sm *smRT) {
	if l.aborted.Load() {
		return
	}
	if l.inj != nil && !l.injFired && sm.clock >= l.inj.abortAt {
		l.fireInjection()
		return
	}
	if sm.clock > l.maxCycles {
		l.fail(fmt.Errorf("simt: launch exceeded MaxCycles=%d (possible kernel livelock): %w",
			l.maxCycles, ErrLaunchTimeout))
		return
	}
	if l.opts.OnProgress != nil && sm.clock >= l.seqNextProgress {
		for l.seqNextProgress <= sm.clock {
			l.seqNextProgress += l.seqProgressEvery
		}
		if err := l.opts.OnProgress(sm.clock); err != nil {
			l.fail(fmt.Errorf("simt: launch cancelled at cycle %d: %w: %w",
				sm.clock, ErrLaunchCancelled, err))
		}
	}
}

// seqStep is charge's fast path in direct-handoff mode: the calling warp
// holds the token, applies its own instruction cost, supervises, and picks
// the next runner. If the scheduler picks this same warp it simply returns —
// zero goroutine switches; otherwise it hands the token straight to the next
// warp and parks.
func (l *launch) seqStep(w *warpRT, r request) {
	l.apply(w.sm, w, r)
	l.seqSupervise(w.sm)
	if l.aborted.Load() {
		// fail() drained every parked warp (drainSM skips the token holder);
		// unwind this one through the kernel stack. seqFinish accounts it.
		w.seqSelfAbort = true
		panic(errAborted)
	}
	var next *warpRT
	sm := w.sm
	if sm.clock < l.seqSecondClock || (sm.clock == l.seqSecondClock && sm.id < l.seqSecondID) {
		// Fast path: sm still precedes every other live SM, so the full scan
		// would pick it again — skip the scan and run the rest of the step
		// verbatim. admitBlocks stays: it admits at most one block per step
		// (the breadth-first distributor cadence), so skipping it here would
		// starve admission between warp completions. Its no-op pre-check is
		// O(1). (If every candidate is barrier-blocked, fall through to the
		// full pick.)
		sm.stepKey = sm.clock
		l.admitBlocks(sm)
		if next = l.nextWarp(sm); next != nil {
			l.seqPreamble(sm, next)
		}
	}
	if next == nil {
		next = l.seqPick()
	}
	if next == w {
		return
	}
	if next == nil {
		// Unreachable: this warp is live (and a barrier arrival that empties
		// the ready set releases its own barrier), so the pick set cannot be
		// empty. Fail loudly rather than deadlock.
		panic(fmt.Sprintf("simt: internal: no runnable warp while warp %d is live", w.globalID))
	}
	l.seqTokenWarp = next
	next.resume <- next.sm.clock
	<-w.resume
	if l.aborted.Load() {
		// Woken by drainSM, not by a token handoff: unwind; the deferred
		// opDone send below (runWarp) answers the drain loop.
		panic(errAborted)
	}
}

// seqFinish completes a warp in direct-handoff mode (the token holder's
// replacement for the final opDone request): account the finished warp, then
// pass the token on, or wake the supervisor when no work remains. Post-abort
// it keeps the classic loop's admission-drain behavior: remaining blocks are
// still admitted and immediately retired through apply, one victim handing
// the token to the next.
func (l *launch) seqFinish(w *warpRT, err error) {
	if l.aborted.Load() && w.seqSelfAbort {
		// This warp triggered the abort from its own charge; every other
		// resident warp was drained by fail(). Account it the way drainSM
		// accounts a drained warp.
		w.seqSelfAbort = false
		w.done = true
		w.sm.readyKey[w.smIdx] = neverReady
		w.sm.liveWarps--
		if w.block.liveWarps > 0 {
			w.block.liveWarps--
		}
	} else {
		l.apply(w.sm, w, request{class: opDone, err: err})
		l.seqSupervise(w.sm)
	}
	next := l.seqPick()
	l.seqTokenWarp = next
	if next == nil {
		close(l.seqDone)
		return
	}
	next.resume <- next.sm.clock
}

// runParallel runs every SM's event loop on its own host goroutine, with at
// most ParallelSMs of them executing at any moment: each goroutine must hold
// a slot from l.slots to step, and slots migrate from gate-blocked or
// finished SMs to SMs with ready work. Simulated behavior is independent of
// the slot count — slots only bound host-level concurrency.
func (l *launch) runParallel(maxCycles int64) {
	mode := l.stats.ParallelSMs
	l.slots = make(chan struct{}, mode)
	for i := 0; i < mode; i++ {
		l.slots <- struct{}{}
	}
	var wg sync.WaitGroup
	for _, sm := range l.sms {
		if sm.loopResume == nil {
			// Lazily armed here so sequential launches never pay for it.
			sm.loopResume = make(chan struct{})
		}
		wg.Add(1)
		go func(sm *smRT) {
			defer wg.Done()
			// Unblock any gated op still waiting on this SM's horizon.
			defer l.publishHorizon(sm.id, gateIdle)
			l.smLoop(sm, maxCycles)
		}(sm)
	}
	wg.Wait()
}

// acquireSlot blocks until the SM holds a host worker slot. No locks may be
// held by the caller. No-op in sequential mode or when already held.
func (l *launch) acquireSlot(sm *smRT) {
	if l.slots == nil || sm.slotHeld {
		return
	}
	<-l.slots
	sm.slotHeld = true
}

// releaseSlot returns the SM's worker slot to the pool. The send can never
// block (slot tokens outstanding never exceed the channel capacity), so it
// is safe to call while holding gateMu.
func (l *launch) releaseSlot(sm *smRT) {
	if l.slots == nil || !sm.slotHeld {
		return
	}
	sm.slotHeld = false
	l.slots <- struct{}{}
}

// smLoop is one SM's event loop in parallel mode, now in the same
// direct-handoff shape as the sequential supervisor: it performs a
// scheduling pick, hands the execution token to the chosen warp's goroutine,
// and parks until the token chain ends. From then on every warp applies its
// own instruction cost and passes the token itself (smStep / smFinish), so
// an instruction costs zero goroutine switches when the scheduler picks the
// same warp again and one switch (down from two) otherwise — the same
// per-step order as before: [publish horizon, admit, pick, preamble,
// execute, apply, supervise].
//
// The horizon published at the top of each step is the ordering key of every
// memory effect the step can produce; it is monotone because the SM clock
// never decreases.
func (l *launch) smLoop(sm *smRT, maxCycles int64) {
	l.acquireSlot(sm)
	defer l.releaseSlot(sm)
	for {
		if l.aborted.Load() {
			l.drainSM(sm)
			return
		}
		if !l.smHasWork(sm) {
			return
		}
		l.publishHorizon(sm.id, sm.clock)
		sm.stepKey = sm.clock
		l.admitBlocks(sm)
		w := l.nextWarp(sm)
		if w == nil {
			// Either admission lost the race for the last block (the next
			// has-work check returns false) or the launch aborted inside the
			// admission gate (the abort check drains). Never a livelock: a
			// live warp always yields a pick.
			continue
		}
		l.seqPreamble(sm, w)
		sm.token = w
		w.resume <- sm.clock
		<-sm.loopResume
		sm.token = nil
	}
}

// smStep is charge's fast path in parallel mode: the calling warp holds its
// SM's execution token, applies its own instruction cost, supervises, and
// picks the SM's next runner. If the scheduler picks this same warp it
// simply returns — zero goroutine switches; otherwise it hands the token
// straight to the next warp and parks. The per-step effect order — and with
// it the sequence of gated admission attempts, hence the block→SM
// assignment — is identical to the classic event loop's.
func (l *launch) smStep(w *warpRT, r request) {
	sm := w.sm
	l.apply(sm, w, r)
	if sm.clock > l.maxCycles && !l.aborted.Load() {
		l.fail(fmt.Errorf("simt: launch exceeded MaxCycles=%d (possible kernel livelock): %w",
			l.maxCycles, ErrLaunchTimeout))
	}
	if l.aborted.Load() {
		// Unwind through the kernel stack; smFinish accounts this warp the
		// way drainSM accounts the others, then wakes the loop to drain.
		w.seqSelfAbort = true
		panic(errAborted)
	}
	l.publishHorizon(sm.id, sm.clock)
	sm.stepKey = sm.clock
	l.admitBlocks(sm)
	if l.aborted.Load() {
		w.seqSelfAbort = true
		panic(errAborted)
	}
	next := l.nextWarp(sm)
	if next == nil {
		// No runnable warp this step (transient: admission raced away the
		// last block while this warp is mid-barrier, etc.) — give the token
		// back to the loop, which re-evaluates has-work. This warp parks
		// below like any other handoff.
		sm.token = nil
		sm.loopResume <- struct{}{}
	} else {
		l.seqPreamble(sm, next)
		if next == w {
			return
		}
		sm.token = next
		next.resume <- sm.clock
	}
	<-w.resume
	if l.aborted.Load() {
		// Woken by drainSM (token elsewhere: the deferred opDone send in
		// runWarp answers the drain loop) or handed a token concurrently
		// with an abort (smFinish self-accounts).
		w.seqSelfAbort = sm.token == w
		panic(errAborted)
	}
}

// smFinish completes a warp in parallel direct-handoff mode — the token
// holder's replacement for the final opDone send: account the finished
// warp, then pass the token to the SM's next runner, or wake the event loop
// when the chain ends (no runnable warp, or abort).
func (l *launch) smFinish(w *warpRT, err error) {
	sm := w.sm
	if l.aborted.Load() && w.seqSelfAbort {
		// This warp aborted out of its own charge or gate wait; every other
		// resident warp is drained by the loop. Account it the way drainSM
		// accounts a drained warp.
		w.seqSelfAbort = false
		w.done = true
		sm.readyKey[w.smIdx] = neverReady
		sm.liveWarps--
		if w.block.liveWarps > 0 {
			w.block.liveWarps--
		}
		sm.loopResume <- struct{}{}
		return
	}
	l.apply(sm, w, request{class: opDone, err: err})
	if l.aborted.Load() {
		sm.loopResume <- struct{}{}
		return
	}
	l.publishHorizon(sm.id, sm.clock)
	sm.stepKey = sm.clock
	l.admitBlocks(sm)
	if l.aborted.Load() {
		sm.loopResume <- struct{}{}
		return
	}
	next := l.nextWarp(sm)
	if next == nil {
		sm.loopResume <- struct{}{}
		return
	}
	l.seqPreamble(sm, next)
	sm.token = next
	next.resume <- sm.clock
}

// fireInjection triggers the launch's planned fault.
func (l *launch) fireInjection() {
	l.injFired = true
	if l.inj.loseDevice {
		l.dev.lost = true
	}
	l.fail(l.inj.err)
}

func (l *launch) smHasWork(sm *smRT) bool {
	return sm.liveWarps > 0 ||
		(l.nextBlock.Load() < int64(l.totalBlocks) && l.canAdmit(sm))
}

func (l *launch) canAdmit(sm *smRT) bool {
	return len(sm.blocks) < l.admitDepth &&
		sm.warpSlotsUsed+l.warpsPerBlock <= l.cfg.MaxWarpsPerSM
}

// admitBlocks hands the SM at most one pending block per scheduling step.
// Because steps are ordered by (clock, SM id) — explicitly by pickSM in
// sequential mode, by the gate in parallel mode — this distributes blocks
// breadth-first across SMs, matching the hardware block distributor, and the
// block→SM assignment is identical in both modes.
//
// The unsynchronized pre-check is sound: nextBlock is monotone and, while
// this SM's horizon sits at the current step key, only operations ordered
// before this step can have advanced it. So a pre-check that reads
// "exhausted" proves the gated re-check would too.
func (l *launch) admitBlocks(sm *smRT) {
	if l.nextBlock.Load() >= int64(l.totalBlocks) || !l.canAdmit(sm) {
		return
	}
	if !l.gateEnter(sm) {
		return // aborted while waiting; the SM loop drains next
	}
	if l.nextBlock.Load() < int64(l.totalBlocks) && l.canAdmit(sm) {
		blockID := int(l.nextBlock.Add(1) - 1)
		b := &blockRT{
			id:     blockID,
			shared: newSharedArena(),
		}
		for wi := 0; wi < l.warpsPerBlock; wi++ {
			w := l.takeWarp(sm)
			w.globalID = blockID*l.warpsPerBlock + wi
			w.blockID = blockID
			w.warpInBlock = wi
			w.readyAt = sm.clock
			w.busy = 0
			w.started = false
			w.done = false
			w.inBarrier = false
			w.arrivedAt = 0
			w.seqSelfAbort = false
			w.block = b
			w.sm = sm
			w.ctx.reset(l, w)
			b.warps = append(b.warps, w)
			go l.runWarp(w)
		}
		b.liveWarps = len(b.warps)
		sm.blocks = append(sm.blocks, b)
		sm.warps = append(sm.warps, b.warps...)
		for _, w := range b.warps {
			w.smIdx = len(sm.readyKey)
			sm.readyKey = append(sm.readyKey, w.readyAt)
		}
		sm.liveWarps += len(b.warps)
		sm.warpSlotsUsed += l.warpsPerBlock
		sm.everUsed = true
		sm.stats.BlocksLaunched++
		sm.stats.WarpsLaunched += len(b.warps)
		l.trace(TraceEvent{Kind: TraceBlockStart, Cycle: sm.clock, SM: sm.id, Block: blockID, Warp: -1})
	}
	l.gateExit(sm)
}

// takeWarp returns a warp runtime for admission: this SM's own retired warps
// first, then the device-level pool (accessed only under the admission gate,
// which is mutually exclusive across SMs), then a fresh allocation. A
// recycled warp's goroutine has fully exited — its final opDone send was
// received by this SM's event loop before the block retired — so its
// channels are quiescent and safe to reuse.
func (l *launch) takeWarp(sm *smRT) *warpRT {
	if n := len(sm.warpFree); n > 0 {
		w := sm.warpFree[n-1]
		sm.warpFree = sm.warpFree[:n-1]
		return w
	}
	if n := len(l.dev.warpPool); n > 0 {
		w := l.dev.warpPool[n-1]
		l.dev.warpPool = l.dev.warpPool[:n-1]
		return w
	}
	return &warpRT{
		resume: make(chan int64),
		req:    make(chan request),
		ctx:    newWarpCtx(l.cfg.WarpWidth),
	}
}

// warpPoolCap bounds the device-level warp pool so one huge launch doesn't
// pin its whole grid's worth of warp runtimes forever.
const warpPoolCap = 4096

// reclaimWarps moves the per-SM free lists into the device pool at launch
// end (single-threaded: every SM loop has joined). Warps of unretired blocks
// (failed launches) are simply dropped to the GC.
func (l *launch) reclaimWarps() {
	for _, sm := range l.sms {
		for _, w := range sm.warpFree {
			if len(l.dev.warpPool) >= warpPoolCap {
				break
			}
			w.block = nil
			w.sm = nil
			w.ctx.l = nil
			w.ctx.w = nil
			l.dev.warpPool = append(l.dev.warpPool, w)
		}
		sm.warpFree = nil
	}
}

// runWarp is the warp goroutine body. Any panic escaping the kernel —
// including the typed *KernelFault panics raised by buffer bounds checks —
// is recovered here, located (block/warp/cycle), and reported through the
// opDone request so Launch returns it as a typed error.
func (l *launch) runWarp(w *warpRT) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *KernelFault:
				v.Block, v.Warp = w.blockID, w.globalID
				v.Cycle = w.sm.clock
				err = v
			case error:
				if !errors.Is(v, errAborted) {
					err = l.panicFault(w, r)
				}
			default:
				err = l.panicFault(w, r)
			}
		}
		if !l.parallel && l.seqTokenWarp == w {
			// Direct-handoff mode and this goroutine holds the token:
			// account ourselves and pass the token on without a channel
			// round-trip. (A drained warp — woken by drainSM rather than a
			// handoff — is not the token holder and uses the send below,
			// which the drain loop is receiving.)
			l.seqFinish(w, err)
			return
		}
		if l.parallel && w.sm.token == w {
			// Same in parallel mode, per SM: we hold this SM's token.
			l.smFinish(w, err)
			return
		}
		w.req <- request{class: opDone, err: err}
	}()
	<-w.resume
	if l.aborted.Load() {
		panic(errAborted)
	}
	l.kernel(w.ctx)
}

// panicFault wraps an arbitrary kernel panic as a typed fault.
func (l *launch) panicFault(w *warpRT, r interface{}) *KernelFault {
	return &KernelFault{
		Kind:  FaultPanic,
		Index: -1,
		Block: w.blockID, Warp: w.globalID, Lane: -1,
		Cycle:  w.sm.clock,
		Detail: fmt.Sprint(r),
		Stack:  string(debug.Stack()),
	}
}

// nextWarp picks the next resident warp per the scheduler policy, skipping
// done and barrier-blocked warps.
//
// "gto" (default) issues the warp with the smallest ready time (FIFO by
// global id on ties) — greedy-then-oldest. "lrr" rotates a cursor through
// the warps already ready at the current clock, falling back to the soonest
// ready warp when none is.
func (l *launch) nextWarp(sm *smRT) *warpRT {
	// sm.warps stays sorted by ascending globalID (blocks are admitted in
	// increasing id order and retirement filters stably), so keeping the
	// first-encountered warp on readyAt ties IS the lowest-global-id
	// tie-break. Done and barrier-blocked warps carry neverReady keys and
	// lose every comparison.
	bestIdx := -1
	bestKey := int64(neverReady)
	for i, k := range sm.readyKey {
		if k < bestKey {
			bestKey, bestIdx = k, i
		}
	}
	if bestIdx < 0 {
		return nil
	}
	best := sm.warps[bestIdx]
	if l.cfg.SchedulerPolicy != "lrr" {
		return best
	}
	n := len(sm.warps)
	for i := 1; i <= n; i++ {
		w := sm.warps[(sm.rrCursor+i)%n]
		if w.done || w.inBarrier || w.readyAt > sm.clock {
			continue
		}
		for j, ww := range sm.warps {
			if ww == w {
				sm.rrCursor = j
				break
			}
		}
		return w
	}
	return best
}

func (l *launch) apply(sm *smRT, w *warpRT, r request) {
	if l.dev.tracer != nil && r.class != opDone {
		l.trace(TraceEvent{
			Kind: TraceInstr, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID,
			Class: classString(r.class), Issue: r.issue, Latency: r.latency, Txns: r.txns,
		})
	}
	if p := sm.stats.Profile; p != nil && r.class != opDone {
		p.InstrLatency.Observe(r.latency)
		if r.class == opMem || r.class == opAtomic {
			p.MemTxns.Observe(r.txns)
		}
	}
	switch r.class {
	case opALU, opShared:
		sm.clock += r.issue
		w.readyAt = sm.clock + r.latency
		sm.readyKey[w.smIdx] = w.readyAt
		w.busy += r.issue + r.latency
	case opMem, opAtomic:
		// One compute-pipe slot to issue, then the memory pipe carries the
		// transactions; the warp waits out the full memory latency.
		sm.clock++
		start := sm.clock
		if sm.memPipeFree > start {
			start = sm.memPipeFree
		}
		sm.memPipeFree = start + r.txns*l.cfg.MemPipeCyclesPerTxn
		w.readyAt = sm.memPipeFree + r.latency
		sm.readyKey[w.smIdx] = w.readyAt
		w.busy += (sm.memPipeFree - sm.clock + 1) + r.latency
	case opBarrier:
		b := w.block
		w.inBarrier = true
		w.arrivedAt = sm.clock
		w.readyAt = neverReady
		sm.readyKey[w.smIdx] = neverReady
		b.inBarrier++
		if sm.clock > b.barrierLatest {
			b.barrierLatest = sm.clock
		}
		l.maybeReleaseBarrier(sm, b)
	case opDone:
		w.done = true
		w.readyAt = neverReady
		sm.readyKey[w.smIdx] = neverReady
		sm.liveWarps--
		if l.san != nil && r.err == nil {
			l.san.WarpDone(w.blockID, w.globalID, w.ctx.barriers)
		}
		l.trace(TraceEvent{Kind: TraceWarpDone, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID})
		if p := sm.stats.Profile; p != nil {
			p.WarpBusy.Observe(w.busy)
		}
		l.stats.WarpBusy[w.globalID] = w.busy
		b := w.block
		b.liveWarps--
		if r.err != nil && !l.aborted.Load() {
			// A fault during a launch with a pending transient injection is
			// attributed to the injection: the corruption it planted is the
			// root cause of whatever the kernel tripped over, and reporting
			// it as transient keeps retry-with-restore sound.
			if l.inj != nil && !l.injFired && !l.inj.loseDevice {
				l.fireInjection()
			} else {
				l.fail(r.err)
			}
			return
		}
		if b.liveWarps == 0 {
			l.trace(TraceEvent{Kind: TraceBlockEnd, Cycle: sm.clock, SM: sm.id, Block: b.id, Warp: -1})
			l.retireBlock(sm, b)
		} else {
			// A warp exiting may satisfy an outstanding barrier.
			l.maybeReleaseBarrier(sm, b)
		}
	}
}

func (l *launch) maybeReleaseBarrier(sm *smRT, b *blockRT) {
	if b.inBarrier == 0 || b.inBarrier < b.liveWarps {
		return
	}
	for _, w := range b.warps {
		if w.inBarrier {
			w.inBarrier = false
			w.readyAt = b.barrierLatest + 1
			sm.readyKey[w.smIdx] = w.readyAt
		}
	}
	l.trace(TraceEvent{Kind: TraceBarrierRelease, Cycle: b.barrierLatest, SM: sm.id, Block: b.id, Warp: -1})
	b.inBarrier = 0
	b.barrierLatest = 0
	sm.stats.Barriers++
}

func (l *launch) retireBlock(sm *smRT, b *blockRT) {
	for i, bb := range sm.blocks {
		if bb == b {
			sm.blocks = append(sm.blocks[:i], sm.blocks[i+1:]...)
			break
		}
	}
	live := sm.warps[:0]
	keys := sm.readyKey[:0]
	for i, w := range sm.warps {
		if w.block != b {
			w.smIdx = len(live)
			live = append(live, w)
			keys = append(keys, sm.readyKey[i])
		}
	}
	sm.warps = live
	sm.readyKey = keys
	sm.warpSlotsUsed -= l.warpsPerBlock
	// Every warp of the block is done (its goroutine's final send was
	// received by this loop), so the runtimes can serve the next admission.
	sm.warpFree = append(sm.warpFree, b.warps...)
}

// fail cancels the launch; the first error wins. In sequential mode every
// live warp is synchronously woken, unwinds via the errAborted panic, and
// reports done. In parallel mode each SM loop notices the flag and drains
// its own warps; warps blocked in the atomic gate are woken by the
// broadcast and unwind the same way.
func (l *launch) fail(err error) {
	l.failMu.Lock()
	if l.abortErr == nil {
		l.abortErr = err
	}
	l.failMu.Unlock()
	l.aborted.Store(true)
	if l.parallel {
		l.gateMu.Lock()
		l.gateCond.Broadcast()
		l.gateMu.Unlock()
		return
	}
	for _, sm := range l.sms {
		l.drainSM(sm)
	}
}

// drainSM unwinds every live warp resident on sm. Must only be called from
// the goroutine driving sm's event loop (or the sequential loop).
func (l *launch) drainSM(sm *smRT) {
	for _, w := range sm.warps {
		if w == l.seqTokenWarp {
			// Direct-handoff mode: the token holder is the goroutine whose
			// charge initiated this abort — it unwinds itself after fail()
			// returns (seqFinish accounts it). Pinging it here would
			// deadlock. Always nil in parallel mode.
			continue
		}
		for !w.done {
			w.resume <- 0
			r := <-w.req
			if r.class == opDone {
				w.done = true
				sm.readyKey[w.smIdx] = neverReady
				sm.liveWarps--
				if w.block.liveWarps > 0 {
					w.block.liveWarps--
				}
			}
			// Any non-done request from an unwinding warp is impossible:
			// charge panics immediately after resume when aborted.
		}
	}
}

// --- the atomic gate -----------------------------------------------------
//
// Sequential-mode memory effects execute in lexicographic (step clock, SM
// id, program order) order. In parallel mode the cross-SM effects (overlay
// atomics, block admission) reproduce that order by waiting until no other
// SM can still produce an earlier-ordered effect: SM j cannot once its
// horizon — the clock of the step it is currently executing, monotone
// non-decreasing — has passed the waiter's key. The waiter then holds
// gateMu for the duration of the operation. Two gated ops can never be
// admitted concurrently (each one's clearance asserts it orders after the
// other — a contradiction), so the gate also provides mutual exclusion and
// the happens-before edges that publish overlay data between SMs.

// publishHorizon announces that every effect sm will produce from now on has
// ordering key >= key. Waiters are only woken when the new horizon could
// actually clear someone.
func (l *launch) publishHorizon(smID int, key int64) {
	if !l.parallel {
		return
	}
	l.horizons[smID].Store(key)
	if key >= l.minPending.Load() {
		l.gateMu.Lock()
		l.gateCond.Broadcast()
		l.gateMu.Unlock()
	}
}

// gateEnter blocks until every cross-SM effect ordered before sm's current
// step has executed, then returns true with the gate held (release with
// gateExit). It returns false — gate not held — if the launch aborted while
// waiting. Sequential mode: no-op, returns true.
func (l *launch) gateEnter(sm *smRT) bool {
	if !l.parallel {
		return true
	}
	key := sm.stepKey
	l.gateMu.Lock()
	l.pending[sm.id] = key
	if key < l.minPending.Load() {
		l.minPending.Store(key)
	}
	for {
		if l.aborted.Load() {
			l.pending[sm.id] = gateIdle
			l.refreshMinPending()
			l.gateMu.Unlock()
			return false
		}
		if l.gateClear(key, sm.id) {
			return true
		}
		// Hand the host worker slot to an SM that can actually run — this
		// SM is blocked until the others advance their horizons, and they
		// may be waiting for a slot to do exactly that. The send cannot
		// block (see releaseSlot), so holding gateMu here is fine; the slot
		// is reacquired in gateExit after gateMu is dropped.
		l.releaseSlot(sm)
		l.gateCond.Wait()
	}
}

// gateExit releases the gate taken by gateEnter, then reacquires the SM's
// host worker slot if gateEnter gave it away while waiting (a no-op when the
// wait never blocked). Acquisition happens strictly after gateMu is dropped,
// so no goroutine ever blocks on the slot pool while holding the gate.
func (l *launch) gateExit(sm *smRT) {
	if !l.parallel {
		return
	}
	l.pending[sm.id] = gateIdle
	l.refreshMinPending()
	l.gateMu.Unlock()
	l.acquireSlot(sm)
}

// gateClear reports whether a gated op with ordering key (key, smID) may
// execute: every other SM must have moved past it.
func (l *launch) gateClear(key int64, smID int) bool {
	for j := range l.horizons {
		if j == smID {
			continue
		}
		h := l.horizons[j].Load()
		if h > key || (h == key && j > smID) {
			continue
		}
		return false
	}
	return true
}

// refreshMinPending recomputes the least pending gate key. Caller holds
// gateMu.
func (l *launch) refreshMinPending() {
	min := gateIdle
	for _, k := range l.pending {
		if k < min {
			min = k
		}
	}
	l.minPending.Store(min)
}

// --- launch-scoped memory shadows ----------------------------------------

// initShadows arms every device buffer's per-SM store shadows and atomic
// overlay for this launch (see the memory-model comment in mem.go).
func (l *launch) initShadows() {
	n := l.cfg.NumSMs
	for _, b := range l.dev.bufsI32 {
		b.sh = make([]*bufShadow[int32], n)
		b.ov = nil
	}
	for _, b := range l.dev.bufsF32 {
		b.sh = make([]*bufShadow[float32], n)
		b.ov = nil
	}
}

// mergeMemory folds every buffer's launch-scoped shadows back into its base
// array: per-SM store shadows in ascending SM id, then the atomic overlay
// last so final atomic values beat any stale same-cell plain store. A cell
// that mixes plain stores and atomics within one launch has no sequential
// analogue; the overlay-last rule makes the outcome deterministic.
func (l *launch) mergeMemory() {
	for _, b := range l.dev.bufsI32 {
		for _, sh := range b.sh {
			if sh != nil {
				sh.merge()
			}
		}
		if b.ov != nil {
			b.ov.merge()
		}
		b.sh, b.ov = nil, nil
	}
	for _, b := range l.dev.bufsF32 {
		for _, sh := range b.sh {
			if sh != nil {
				sh.merge()
			}
		}
		if b.ov != nil {
			b.ov.merge()
		}
		b.sh, b.ov = nil, nil
	}
}
