package simt

import (
	"errors"
	"fmt"
	"math"
	"runtime/debug"
)

// The simulation protocol: every warp runs its kernel on a dedicated
// goroutine, but exactly one goroutine (warp or scheduler) executes at any
// moment. A warp blocks inside charge() after sending a cost request; the
// scheduler picks the next warp to advance by simulated time and hands the
// execution token back over the warp's resume channel. This makes the whole
// simulation sequential and deterministic while letting kernels be written
// as straight-line Go code.

type opClass uint8

const (
	opALU opClass = iota
	opMem
	opAtomic
	opShared
	opBarrier
	opDone
)

// request is a warp's report of the instruction it is about to complete.
type request struct {
	class opClass
	// issue is pipeline occupancy in slots (ALU/shared ops).
	issue int64
	// latency is the delay until the warp may issue again.
	latency int64
	// txns is memory-pipe occupancy for mem/atomic ops.
	txns int64
	// err reports a kernel failure alongside opDone.
	err error
}

// errAborted is the sentinel panic used to unwind warp goroutines when a
// launch is cancelled; it never escapes the package.
var errAborted = errors.New("simt: launch aborted")

const neverReady = math.MaxInt64

type warpRT struct {
	globalID    int
	blockID     int
	warpInBlock int

	readyAt   int64
	busy      int64
	started   bool
	done      bool
	inBarrier bool
	arrivedAt int64

	resume chan int64
	req    chan request
	ctx    *WarpCtx
	block  *blockRT
	sm     *smRT
}

type blockRT struct {
	id            int
	warps         []*warpRT
	liveWarps     int
	inBarrier     int
	barrierLatest int64
	shared        *sharedArena
}

type smRT struct {
	id            int
	clock         int64
	memPipeFree   int64
	blocks        []*blockRT
	warps         []*warpRT
	warpSlotsUsed int
	everUsed      bool
	cache         *smCache
	rrCursor      int
}

type launch struct {
	dev    *Device
	cfg    Config
	lc     LaunchConfig
	kernel Kernel
	stats  *LaunchStats
	opts   LaunchOpts
	inj    *injection

	sms           []*smRT
	warpsPerBlock int
	nextBlock     int
	totalBlocks   int

	aborted  bool
	abortErr error
	injFired bool
}

func newLaunch(d *Device, lc LaunchConfig, kernel Kernel) *launch {
	warpsPerBlock := (lc.ThreadsPerBlock + d.cfg.WarpWidth - 1) / d.cfg.WarpWidth
	l := &launch{
		dev:           d,
		cfg:           d.cfg,
		lc:            lc,
		kernel:        kernel,
		warpsPerBlock: warpsPerBlock,
		totalBlocks:   lc.Blocks,
		stats: &LaunchStats{
			WarpWidth: d.cfg.WarpWidth,
			WarpBusy:  make([]int64, lc.Blocks*warpsPerBlock),
		},
	}
	l.sms = make([]*smRT, d.cfg.NumSMs)
	for i := range l.sms {
		sm := &smRT{id: i}
		if d.cfg.CacheLines > 0 {
			sm.cache = newSMCache(d.cfg.CacheLines, d.cfg.CacheWays)
		}
		l.sms[i] = sm
	}
	return l
}

func (l *launch) trace(e TraceEvent) {
	if t := l.dev.tracer; t != nil {
		t.Event(e)
	}
}

// run drives the launch to completion. On failure the error is typed (a
// *KernelFault, or a wrap of ErrLaunchTimeout / ErrLaunchCancelled /
// ErrDeviceLost) and the returned stats hold everything accumulated up to
// the failure — partial, but honest.
func (l *launch) run() (*LaunchStats, error) {
	l.trace(TraceEvent{Kind: TraceLaunchStart, Warp: -1, Block: -1, SM: -1})
	maxCycles := l.cfg.MaxCycles
	if l.opts.MaxCycles > 0 {
		maxCycles = l.opts.MaxCycles
	}
	progressEvery := l.opts.ProgressEvery
	if progressEvery == 0 {
		progressEvery = 65536
	}
	nextProgress := progressEvery
	for {
		sm := l.pickSM()
		if sm == nil {
			break
		}
		l.stepSM(sm)
		if l.aborted {
			continue
		}
		if l.inj != nil && !l.injFired && sm.clock >= l.inj.abortAt {
			l.fireInjection()
			continue
		}
		if sm.clock > maxCycles {
			l.abort(fmt.Errorf("simt: launch exceeded MaxCycles=%d (possible kernel livelock): %w",
				maxCycles, ErrLaunchTimeout))
			continue
		}
		if l.opts.OnProgress != nil && sm.clock >= nextProgress {
			for nextProgress <= sm.clock {
				nextProgress += progressEvery
			}
			if err := l.opts.OnProgress(sm.clock); err != nil {
				l.abort(fmt.Errorf("simt: launch cancelled at cycle %d: %w: %w",
					sm.clock, ErrLaunchCancelled, err))
				continue
			}
		}
	}
	// A transient injection whose cycle the kernel outran still fires at
	// drain: a bit-flip already corrupted memory, so swallowing it would be
	// silent corruption. Device loss is a genuine cycle threshold — a launch
	// that finishes under it survives.
	if l.inj != nil && !l.injFired && !l.aborted && !l.inj.loseDevice {
		l.fireInjection()
	}
	for _, sm := range l.sms {
		if sm.everUsed {
			l.stats.SMFinish = append(l.stats.SMFinish, sm.clock)
			if sm.clock > l.stats.Cycles {
				l.stats.Cycles = sm.clock
			}
		}
	}
	l.trace(TraceEvent{Kind: TraceLaunchEnd, Cycle: l.stats.Cycles, Warp: -1, Block: -1, SM: -1})
	if l.abortErr != nil {
		return l.stats, l.abortErr
	}
	return l.stats, nil
}

// fireInjection triggers the launch's planned fault.
func (l *launch) fireInjection() {
	l.injFired = true
	if l.inj.loseDevice {
		l.dev.lost = true
	}
	l.abort(l.inj.err)
}

// pickSM returns the SM with work and the smallest clock, or nil when the
// launch has fully drained.
func (l *launch) pickSM() *smRT {
	var best *smRT
	for _, sm := range l.sms {
		if !l.smHasWork(sm) {
			continue
		}
		if best == nil || sm.clock < best.clock {
			best = sm
		}
	}
	return best
}

func (l *launch) smHasWork(sm *smRT) bool {
	for _, w := range sm.warps {
		if !w.done {
			return true
		}
	}
	return l.nextBlock < l.totalBlocks && l.canAdmit(sm)
}

func (l *launch) canAdmit(sm *smRT) bool {
	return len(sm.blocks) < l.cfg.MaxBlocksPerSM &&
		sm.warpSlotsUsed+l.warpsPerBlock <= l.cfg.MaxWarpsPerSM
}

// admitBlocks hands the SM at most one pending block per scheduling step.
// Because the event loop always steps the SM with the smallest clock, this
// distributes blocks breadth-first across SMs — matching the hardware block
// distributor — instead of piling the whole grid onto the first SM.
func (l *launch) admitBlocks(sm *smRT) {
	if l.nextBlock < l.totalBlocks && l.canAdmit(sm) {
		blockID := l.nextBlock
		l.nextBlock++
		b := &blockRT{
			id:     blockID,
			shared: newSharedArena(),
		}
		for wi := 0; wi < l.warpsPerBlock; wi++ {
			w := &warpRT{
				globalID:    blockID*l.warpsPerBlock + wi,
				blockID:     blockID,
				warpInBlock: wi,
				readyAt:     sm.clock,
				resume:      make(chan int64),
				req:         make(chan request),
				block:       b,
				sm:          sm,
			}
			w.ctx = newWarpCtx(l, w)
			b.warps = append(b.warps, w)
			go l.runWarp(w)
		}
		b.liveWarps = len(b.warps)
		sm.blocks = append(sm.blocks, b)
		sm.warps = append(sm.warps, b.warps...)
		sm.warpSlotsUsed += l.warpsPerBlock
		sm.everUsed = true
		l.stats.BlocksLaunched++
		l.stats.WarpsLaunched += len(b.warps)
		l.trace(TraceEvent{Kind: TraceBlockStart, Cycle: sm.clock, SM: sm.id, Block: blockID, Warp: -1})
	}
}

// runWarp is the warp goroutine body. Any panic escaping the kernel —
// including the typed *KernelFault panics raised by buffer bounds checks —
// is recovered here, located (block/warp/cycle), and reported through the
// opDone request so Launch returns it as a typed error.
func (l *launch) runWarp(w *warpRT) {
	defer func() {
		var err error
		if r := recover(); r != nil {
			switch v := r.(type) {
			case *KernelFault:
				v.Block, v.Warp = w.blockID, w.globalID
				v.Cycle = w.sm.clock
				err = v
			case error:
				if !errors.Is(v, errAborted) {
					err = l.panicFault(w, r)
				}
			default:
				err = l.panicFault(w, r)
			}
		}
		w.req <- request{class: opDone, err: err}
	}()
	<-w.resume
	if l.aborted {
		panic(errAborted)
	}
	l.kernel(w.ctx)
}

// panicFault wraps an arbitrary kernel panic as a typed fault.
func (l *launch) panicFault(w *warpRT, r interface{}) *KernelFault {
	return &KernelFault{
		Kind:  FaultPanic,
		Index: -1,
		Block: w.blockID, Warp: w.globalID, Lane: -1,
		Cycle:  w.sm.clock,
		Detail: fmt.Sprint(r),
		Stack:  string(debug.Stack()),
	}
}

// stepSM advances one SM by one warp instruction.
func (l *launch) stepSM(sm *smRT) {
	l.admitBlocks(sm)
	w := l.nextWarp(sm)
	if w == nil {
		return
	}
	hadOthers := false
	for _, other := range sm.warps {
		if other != w && !other.done {
			hadOthers = true
			break
		}
	}
	if w.readyAt > sm.clock {
		if hadOthers || w.started {
			l.stats.StallCycles += w.readyAt - sm.clock
		}
		sm.clock = w.readyAt
	}
	w.started = true
	w.resume <- sm.clock
	r := <-w.req
	l.apply(sm, w, r)
}

// nextWarp picks the next resident warp per the scheduler policy, skipping
// done and barrier-blocked warps.
//
// "gto" (default) issues the warp with the smallest ready time (FIFO by
// global id on ties) — greedy-then-oldest. "lrr" rotates a cursor through
// the warps already ready at the current clock, falling back to the soonest
// ready warp when none is.
func (l *launch) nextWarp(sm *smRT) *warpRT {
	var best *warpRT
	for _, w := range sm.warps {
		if w.done || w.inBarrier {
			continue
		}
		if best == nil || w.readyAt < best.readyAt ||
			(w.readyAt == best.readyAt && w.globalID < best.globalID) {
			best = w
		}
	}
	if best == nil || l.cfg.SchedulerPolicy != "lrr" {
		return best
	}
	n := len(sm.warps)
	for i := 1; i <= n; i++ {
		w := sm.warps[(sm.rrCursor+i)%n]
		if w.done || w.inBarrier || w.readyAt > sm.clock {
			continue
		}
		for j, ww := range sm.warps {
			if ww == w {
				sm.rrCursor = j
				break
			}
		}
		return w
	}
	return best
}

func (l *launch) apply(sm *smRT, w *warpRT, r request) {
	if l.dev.tracer != nil && r.class != opDone {
		l.trace(TraceEvent{
			Kind: TraceInstr, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID,
			Class: classString(r.class), Issue: r.issue, Latency: r.latency, Txns: r.txns,
		})
	}
	switch r.class {
	case opALU, opShared:
		sm.clock += r.issue
		w.readyAt = sm.clock + r.latency
		w.busy += r.issue + r.latency
	case opMem, opAtomic:
		// One compute-pipe slot to issue, then the memory pipe carries the
		// transactions; the warp waits out the full memory latency.
		sm.clock++
		start := sm.clock
		if sm.memPipeFree > start {
			start = sm.memPipeFree
		}
		sm.memPipeFree = start + r.txns*l.cfg.MemPipeCyclesPerTxn
		w.readyAt = sm.memPipeFree + r.latency
		w.busy += (sm.memPipeFree - sm.clock + 1) + r.latency
	case opBarrier:
		b := w.block
		w.inBarrier = true
		w.arrivedAt = sm.clock
		w.readyAt = neverReady
		b.inBarrier++
		if sm.clock > b.barrierLatest {
			b.barrierLatest = sm.clock
		}
		l.maybeReleaseBarrier(b)
	case opDone:
		w.done = true
		w.readyAt = neverReady
		l.trace(TraceEvent{Kind: TraceWarpDone, Cycle: sm.clock, SM: sm.id, Block: w.blockID, Warp: w.globalID})
		l.stats.WarpBusy[w.globalID] = w.busy
		b := w.block
		b.liveWarps--
		if r.err != nil && !l.aborted {
			// A fault during a launch with a pending transient injection is
			// attributed to the injection: the corruption it planted is the
			// root cause of whatever the kernel tripped over, and reporting
			// it as transient keeps retry-with-restore sound.
			if l.inj != nil && !l.injFired && !l.inj.loseDevice {
				l.fireInjection()
			} else {
				l.abort(r.err)
			}
			return
		}
		if b.liveWarps == 0 {
			l.trace(TraceEvent{Kind: TraceBlockEnd, Cycle: sm.clock, SM: sm.id, Block: b.id, Warp: -1})
			l.retireBlock(sm, b)
		} else {
			// A warp exiting may satisfy an outstanding barrier.
			l.maybeReleaseBarrier(b)
		}
	}
}

func (l *launch) maybeReleaseBarrier(b *blockRT) {
	if b.inBarrier == 0 || b.inBarrier < b.liveWarps {
		return
	}
	for _, w := range b.warps {
		if w.inBarrier {
			w.inBarrier = false
			w.readyAt = b.barrierLatest + 1
		}
	}
	l.trace(TraceEvent{Kind: TraceBarrierRelease, Cycle: b.barrierLatest, Block: b.id, Warp: -1})
	b.inBarrier = 0
	b.barrierLatest = 0
	l.stats.Barriers++
}

func (l *launch) retireBlock(sm *smRT, b *blockRT) {
	for i, bb := range sm.blocks {
		if bb == b {
			sm.blocks = append(sm.blocks[:i], sm.blocks[i+1:]...)
			break
		}
	}
	live := sm.warps[:0]
	for _, w := range sm.warps {
		if w.block != b {
			live = append(live, w)
		}
	}
	sm.warps = live
	sm.warpSlotsUsed -= l.warpsPerBlock
}

// abort cancels the launch: every live warp is woken, unwinds via the
// errAborted panic, and reports done. The first error wins.
func (l *launch) abort(err error) {
	l.aborted = true
	l.abortErr = err
	for _, sm := range l.sms {
		for _, w := range sm.warps {
			for !w.done {
				w.resume <- 0
				r := <-w.req
				if r.class == opDone {
					w.done = true
					if w.block.liveWarps > 0 {
						w.block.liveWarps--
					}
				}
				// Any non-done request from an unwinding warp is impossible:
				// charge panics immediately after resume when aborted.
			}
		}
	}
}
