package simt

import (
	"fmt"
	"log"
)

// Kernel is a GPU kernel: it is invoked once per warp and runs lockstep
// across the warp's lanes via the WarpCtx primitives.
type Kernel func(w *WarpCtx)

// Device is a simulated GPU: a configuration plus a global-memory space.
// Buffers persist across launches, so multi-pass algorithms (level-
// synchronous BFS, PageRank iterations) work exactly like their CUDA
// counterparts: allocate once, launch many times, read results back.
//
// A Device is not safe for concurrent use; a launch runs the simulation on
// the calling goroutine.
type Device struct {
	cfg    Config
	mem    *memory
	tracer Tracer
	san    Sanitizer

	// Allocation registry, so fault injection can target live buffers.
	bufsI32 []*BufI32
	bufsF32 []*BufF32

	// Fault-injection state (nil when no plan is installed).
	faults *faultState
	lost   bool

	// fallbackWarned dedupes the sequential-fallback log line per reason.
	fallbackWarned map[string]bool

	// profiling enables per-launch histograms (LaunchStats.Profile) on every
	// launch; see SetProfiling.
	profiling bool
	// totals accumulates device-lifetime counters across launches (counter
	// fields plus Cycles; the per-warp vectors are per-launch only).
	totals   LaunchStats
	launches int64

	// warpPool recycles warp runtimes (goroutine channels plus lane-state
	// slabs and register files) across launches, so steady-state repeated
	// launches — the level-synchronous traversal pattern — stop allocating
	// per-warp state. Launches on a Device serialize (a Device is not safe
	// for concurrent use), and mid-launch the pool is only touched under the
	// admission gate, so no locking is needed.
	warpPool []*warpRT
}

// warnSequentialFallback logs, once per reason per device, that a
// ParallelSMs>1 launch was forced onto the sequential event loop. The reason
// is also recorded in LaunchStats.SequentialFallback.
func (d *Device) warnSequentialFallback(reason string) {
	if d.fallbackWarned[reason] {
		return
	}
	if d.fallbackWarned == nil {
		d.fallbackWarned = make(map[string]bool)
	}
	d.fallbackWarned[reason] = true
	log.Printf("simt: ParallelSMs=%d requested but launch runs sequentially (%s)", d.cfg.ParallelSMs, reason)
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, mem: newMemory(cfg.SegmentBytes)}, nil
}

// MustNewDevice is NewDevice that panics on configuration errors; intended
// for tests and examples with static configs.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// SetSanitizer attaches (or, with nil, detaches) a sanitizer. Launches run
// under it when Config.Sanitize is set, or per-launch via
// LaunchOpts.Sanitize. Sanitized launches are forced onto the sequential
// event loop so the sanitizer observes the canonical execution order;
// simulated cycles are unaffected (hooks charge nothing).
func (d *Device) SetSanitizer(s Sanitizer) { d.san = s }

// SetProfiling enables (or disables) per-launch cycle/latency histograms for
// subsequent launches: their LaunchStats.Profile is populated, at the cost of
// a few histogram updates per instruction. Equivalent to passing
// LaunchOpts.Profile on every launch.
func (d *Device) SetProfiling(on bool) { d.profiling = on }

// Totals returns the device-lifetime accumulation of launch counters: every
// LaunchStats counter field plus Cycles summed across launches (successful or
// partial). The per-launch vectors (WarpBusy, SMFinish) are not accumulated.
func (d *Device) Totals() LaunchStats {
	t := d.totals
	if t.Profile != nil {
		t.Profile = t.Profile.Clone()
	}
	return t
}

// LaunchCount returns how many launches the device has executed.
func (d *Device) LaunchCount() int64 { return d.launches }

// noteLaunch folds one launch's stats into the device-lifetime totals.
func (d *Device) noteLaunch(stats *LaunchStats) {
	d.launches++
	d.totals.addCounters(stats)
	d.totals.Cycles += stats.Cycles
	if d.totals.WarpWidth == 0 {
		d.totals.WarpWidth = stats.WarpWidth
	}
}

// AllocI32 allocates a zeroed device buffer of n int32 elements.
func (d *Device) AllocI32(name string, n int) *BufI32 {
	if n < 0 {
		panic(fmt.Sprintf("simt: AllocI32(%q, %d): negative length", name, n))
	}
	b := &BufI32{name: name, base: d.mem.reserve(4 * n), data: make([]int32, n)}
	d.bufsI32 = append(d.bufsI32, b)
	return b
}

// UploadI32 allocates a device buffer holding a copy of data.
func (d *Device) UploadI32(name string, data []int32) *BufI32 {
	b := d.AllocI32(name, len(data))
	copy(b.data, data)
	b.hostInit = true
	return b
}

// AllocF32 allocates a zeroed device buffer of n float32 elements.
func (d *Device) AllocF32(name string, n int) *BufF32 {
	if n < 0 {
		panic(fmt.Sprintf("simt: AllocF32(%q, %d): negative length", name, n))
	}
	b := &BufF32{name: name, base: d.mem.reserve(4 * n), data: make([]float32, n)}
	d.bufsF32 = append(d.bufsF32, b)
	return b
}

// UploadF32 allocates a device buffer holding a copy of data.
func (d *Device) UploadF32(name string, data []float32) *BufF32 {
	b := d.AllocF32(name, len(data))
	copy(b.data, data)
	b.hostInit = true
	return b
}

// LaunchOpts tune one launch's supervision — a per-launch deadline and a
// progress hook with cancellation — without touching the device config.
type LaunchOpts struct {
	// MaxCycles overrides Config.MaxCycles for this launch (0 = use the
	// config value). Exceeding it aborts the launch with an error wrapping
	// ErrLaunchTimeout and returns the partial LaunchStats.
	MaxCycles int64
	// OnProgress, when non-nil, is invoked roughly every ProgressEvery
	// simulated cycles with the current clock. Returning a non-nil error
	// cancels the launch: the returned launch error wraps both
	// ErrLaunchCancelled and the callback's error.
	OnProgress func(cycle int64) error
	// ProgressEvery is the OnProgress period in cycles (default 65536).
	ProgressEvery int64
	// Profile enables the per-launch cycle/latency histograms for this launch
	// (LaunchStats.Profile); see also Device.SetProfiling.
	Profile bool
	// Sanitize runs this launch under the device's attached sanitizer even
	// when Config.Sanitize is off; see Device.SetSanitizer.
	Sanitize bool
}

// Launch runs kernel over the grid described by lc and returns the launch
// statistics. The call blocks until the simulated kernel completes. Any
// failure — a kernel panic, an out-of-range buffer access, an injected
// fault, exceeding Config.MaxCycles — is returned as a typed error (see
// KernelFault, ErrLaunchTimeout, ErrDeviceLost) together with the partial
// stats accumulated up to the failure. Launch never panics on kernel
// failures.
func (d *Device) Launch(lc LaunchConfig, kernel Kernel) (*LaunchStats, error) {
	return d.LaunchWith(lc, LaunchOpts{}, kernel)
}

// LaunchWith is Launch with per-launch supervision options.
func (d *Device) LaunchWith(lc LaunchConfig, opts LaunchOpts, kernel Kernel) (*LaunchStats, error) {
	if err := lc.Validate(d.cfg); err != nil {
		return nil, err
	}
	if kernel == nil {
		return nil, fmt.Errorf("simt: nil kernel")
	}
	if opts.MaxCycles < 0 || opts.ProgressEvery < 0 {
		return nil, fmt.Errorf("simt: negative LaunchOpts value")
	}
	if d.lost {
		return nil, fmt.Errorf("simt: %w (call Revive to reset)", ErrDeviceLost)
	}
	l := newLaunch(d, lc, kernel)
	l.opts = opts
	l.inj = d.planInjection()
	if d.san != nil && (d.cfg.Sanitize || opts.Sanitize) {
		l.san = d.san
	}
	stats, err := l.run()
	if d.faults != nil && stats != nil {
		d.faults.cycles += stats.Cycles
	}
	if stats != nil {
		d.noteLaunch(stats)
	}
	return stats, err
}
