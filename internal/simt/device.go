package simt

import "fmt"

// Kernel is a GPU kernel: it is invoked once per warp and runs lockstep
// across the warp's lanes via the WarpCtx primitives.
type Kernel func(w *WarpCtx)

// Device is a simulated GPU: a configuration plus a global-memory space.
// Buffers persist across launches, so multi-pass algorithms (level-
// synchronous BFS, PageRank iterations) work exactly like their CUDA
// counterparts: allocate once, launch many times, read results back.
//
// A Device is not safe for concurrent use; a launch runs the simulation on
// the calling goroutine.
type Device struct {
	cfg    Config
	mem    *memory
	tracer Tracer
}

// NewDevice creates a device with the given configuration.
func NewDevice(cfg Config) (*Device, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Device{cfg: cfg, mem: newMemory(cfg.SegmentBytes)}, nil
}

// MustNewDevice is NewDevice that panics on configuration errors; intended
// for tests and examples with static configs.
func MustNewDevice(cfg Config) *Device {
	d, err := NewDevice(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// AllocI32 allocates a zeroed device buffer of n int32 elements.
func (d *Device) AllocI32(name string, n int) *BufI32 {
	if n < 0 {
		panic(fmt.Sprintf("simt: AllocI32(%q, %d): negative length", name, n))
	}
	return &BufI32{name: name, base: d.mem.reserve(4 * n), data: make([]int32, n)}
}

// UploadI32 allocates a device buffer holding a copy of data.
func (d *Device) UploadI32(name string, data []int32) *BufI32 {
	b := d.AllocI32(name, len(data))
	copy(b.data, data)
	return b
}

// AllocF32 allocates a zeroed device buffer of n float32 elements.
func (d *Device) AllocF32(name string, n int) *BufF32 {
	if n < 0 {
		panic(fmt.Sprintf("simt: AllocF32(%q, %d): negative length", name, n))
	}
	return &BufF32{name: name, base: d.mem.reserve(4 * n), data: make([]float32, n)}
}

// UploadF32 allocates a device buffer holding a copy of data.
func (d *Device) UploadF32(name string, data []float32) *BufF32 {
	b := d.AllocF32(name, len(data))
	copy(b.data, data)
	return b
}

// Launch runs kernel over the grid described by lc and returns the launch
// statistics. The call blocks until the simulated kernel completes. A kernel
// panic (including out-of-range buffer access) aborts the launch and is
// returned as an error; exceeding Config.MaxCycles likewise.
func (d *Device) Launch(lc LaunchConfig, kernel Kernel) (*LaunchStats, error) {
	if err := lc.Validate(d.cfg); err != nil {
		return nil, err
	}
	if kernel == nil {
		return nil, fmt.Errorf("simt: nil kernel")
	}
	l := newLaunch(d, lc, kernel)
	return l.run()
}
