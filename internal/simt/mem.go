package simt

import "math/bits"

// memory is the simulated global-memory address space. Buffers receive
// disjoint, segment-aligned address ranges so the coalescing model can map
// any (buffer, element) pair to a byte address.
type memory struct {
	nextAddr uint64
	segBytes uint64
}

func newMemory(segBytes int) *memory {
	return &memory{
		// Leave address 0 unused so a zero address is always a bug.
		nextAddr: uint64(segBytes),
		segBytes: uint64(segBytes),
	}
}

func (m *memory) reserve(bytes int) uint64 {
	base := m.nextAddr
	span := (uint64(bytes) + m.segBytes - 1) / m.segBytes * m.segBytes
	if span == 0 {
		span = m.segBytes
	}
	m.nextAddr += span
	return base
}

// Launch-time memory model. While a launch is in flight the base data of
// every buffer is frozen: plain loads read it directly, plain stores land in
// a per-SM write shadow (visible to later loads from the same SM), and
// atomics read-modify-write a single globally-ordered overlay. At launch end
// everything folds back into the base array: per-SM shadows in ascending SM
// id, then the atomic overlay. Because no simulated memory effect ever
// crosses between SMs mid-launch except through the (deterministically
// ordered) atomic overlay, the simulation computes bit-identical results and
// stats whether the SMs run on one host goroutine or many.

const (
	shadowPageShift = 8 // 256 elements (1 KiB) per shadow page
	shadowPageSize  = 1 << shadowPageShift
	shadowPageMask  = shadowPageSize - 1

	// The page table is a flat two-level radix: a root slice of leaf
	// pointers, each leaf covering shadowLeafSize consecutive pages. Leaves
	// materialize on first store into their range, so creating a shadow
	// costs one allocation proportional to len(base)/16K instead of the two
	// len(base)/256-sized tables the flat layout needed — shadows are
	// created per (buffer, SM) per launch, so this is per-launch overhead.
	shadowLeafShift = 6 // 64 pages (16K elements) per leaf
	shadowLeafSize  = 1 << shadowLeafShift
	shadowLeafMask  = shadowLeafSize - 1

	// The lookup cache in front of the radix is direct-mapped by page
	// number, shadowCacheWays wide: stride loops and frontier scans touch a
	// couple of pages alternately, which a one-entry cache thrashes on.
	shadowCacheWays = 4
	shadowCacheMask = shadowCacheWays - 1
)

type shadowElem interface{ ~int32 | ~float32 }

// shadowLeaf holds one radix leaf's worth of copy-on-write pages and their
// dirty bitmaps. Page and dirty pointers live in fixed arrays so a leaf is a
// single allocation.
type shadowLeaf[T shadowElem] struct {
	pages [shadowLeafSize][]T
	dirty [shadowLeafSize][]uint64
}

// bufShadow overlays writes on a buffer whose base data is frozen for the
// duration of a launch. Pages are copied from base on first touch so loads
// are a plain index; dirty bits record which elements were actually written
// so the end-of-launch merge never clobbers another shard's elements with
// stale base copies.
//
// A shadow is only ever accessed by one goroutine at a time (per-SM shadows
// by their SM's token holder, the overlay under the atomic gate), so the
// cache mutation in load is safe. Only materialized pages enter the cache,
// so a hit can never mask a page created later; shadows are launch-scoped,
// so no cross-launch generation stamp is needed — fresh tags per shadow are
// the generation.
type bufShadow[T shadowElem] struct {
	base []T
	root []*shadowLeaf[T]

	cacheTag [shadowCacheWays]int32
	cachePg  [shadowCacheWays][]T
}

func newBufShadow[T shadowElem](base []T) *bufShadow[T] {
	pages := (len(base) + shadowPageMask) >> shadowPageShift
	leaves := (pages + shadowLeafMask) >> shadowLeafShift
	s := &bufShadow[T]{
		base: base,
		root: make([]*shadowLeaf[T], leaves),
	}
	for i := range s.cacheTag {
		s.cacheTag[i] = -1
	}
	return s
}

// page returns the materialized page holding element i, or nil.
func (s *bufShadow[T]) page(p int32) []T {
	leaf := s.root[p>>shadowLeafShift]
	if leaf == nil {
		return nil
	}
	return leaf.pages[p&shadowLeafMask]
}

func (s *bufShadow[T]) load(i int32) T {
	p := i >> shadowPageShift
	slot := p & shadowCacheMask
	if s.cacheTag[slot] == p {
		return s.cachePg[slot][i&shadowPageMask]
	}
	if pg := s.page(p); pg != nil {
		s.cacheTag[slot], s.cachePg[slot] = p, pg
		return pg[i&shadowPageMask]
	}
	return s.base[i]
}

// written reports whether element i was stored through this shadow.
func (s *bufShadow[T]) written(i int32) bool {
	p := i >> shadowPageShift
	leaf := s.root[p>>shadowLeafShift]
	if leaf == nil {
		return false
	}
	words := leaf.dirty[p&shadowLeafMask]
	if words == nil {
		return false
	}
	off := int(i) & shadowPageMask
	return words[off>>6]&(1<<uint(off&63)) != 0
}

// materialize returns (creating if needed) page p and its dirty bitmap.
func (s *bufShadow[T]) materialize(p int32) ([]T, []uint64) {
	li := p >> shadowLeafShift
	leaf := s.root[li]
	if leaf == nil {
		leaf = &shadowLeaf[T]{}
		s.root[li] = leaf
	}
	pi := p & shadowLeafMask
	pg := leaf.pages[pi]
	if pg == nil {
		lo := int(p) << shadowPageShift
		hi := lo + shadowPageSize
		if hi > len(s.base) {
			hi = len(s.base)
		}
		pg = make([]T, shadowPageSize)
		copy(pg, s.base[lo:hi])
		leaf.pages[pi] = pg
		leaf.dirty[pi] = make([]uint64, shadowPageSize/64)
	}
	slot := p & shadowCacheMask
	s.cacheTag[slot], s.cachePg[slot] = p, pg
	return pg, leaf.dirty[pi]
}

func (s *bufShadow[T]) store(i int32, v T) {
	pg, dirty := s.materialize(i >> shadowPageShift)
	off := int(i) & shadowPageMask
	pg[off] = v
	dirty[off>>6] |= 1 << uint(off&63)
}

// loadAll gathers dst[lane] = shadow[idx[lane]] for every lane — the
// full-mask data phase with the page-cache probe hoisted out of the method
// call boundary and a one-entry local in front of it (consecutive lanes
// overwhelmingly hit the same page).
func (s *bufShadow[T]) loadAll(idx []int32, dst []T) {
	curPage := int32(-1)
	var curPg []T
	for lane := range dst {
		i := idx[lane]
		if p := i >> shadowPageShift; p == curPage {
			dst[lane] = curPg[i&shadowPageMask]
		} else if slot := p & shadowCacheMask; s.cacheTag[slot] == p {
			curPage, curPg = p, s.cachePg[slot]
			dst[lane] = curPg[i&shadowPageMask]
		} else if pg := s.page(p); pg != nil {
			s.cacheTag[slot], s.cachePg[slot] = p, pg
			curPage, curPg = p, pg
			dst[lane] = pg[i&shadowPageMask]
		} else {
			dst[lane] = s.base[i]
		}
	}
}

// loadMasked is loadAll restricted to mask-active lanes.
func (s *bufShadow[T]) loadMasked(idx []int32, dst []T, mask []bool) {
	for lane := range dst {
		if mask[lane] {
			dst[lane] = s.load(idx[lane])
		}
	}
}

// storeAll scatters src[lane] into the shadow at idx[lane] for every lane,
// with a one-entry local page in front of materialize so runs of lanes
// sharing a page pay one radix walk.
func (s *bufShadow[T]) storeAll(idx []int32, src []T) {
	curPage := int32(-1)
	var curPg []T
	var curDirty []uint64
	for lane := range src {
		i := idx[lane]
		if p := i >> shadowPageShift; p != curPage {
			curPg, curDirty = s.materialize(p)
			curPage = p
		}
		off := int(i) & shadowPageMask
		curPg[off] = src[lane]
		curDirty[off>>6] |= 1 << uint(off&63)
	}
}

// storeMasked is storeAll restricted to mask-active lanes.
func (s *bufShadow[T]) storeMasked(idx []int32, src []T, mask []bool) {
	for lane := range src {
		if mask[lane] {
			s.store(idx[lane], src[lane])
		}
	}
}

// merge folds the dirty elements back into the base array.
func (s *bufShadow[T]) merge() {
	for li, leaf := range s.root {
		if leaf == nil {
			continue
		}
		for pi := range leaf.pages {
			words := leaf.dirty[pi]
			if words == nil {
				continue
			}
			elemBase := (li<<shadowLeafShift + pi) << shadowPageShift
			pg := leaf.pages[pi]
			for w, word := range words {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					word &^= 1 << uint(b)
					off := w*64 + b
					s.base[elemBase+off] = pg[off]
				}
			}
		}
	}
}

// BufI32 is a device-resident buffer of int32 elements.
type BufI32 struct {
	name string
	base uint64
	data []int32

	// hostInit records that the host plausibly initialized the buffer
	// (Upload, Fill, or any Data() call — Data hands out a writable alias,
	// so this is deliberately conservative). The sanitizer's memcheck uses
	// it: reads of a buffer that was never host-touched and never
	// kernel-written are reads of CUDA-uninitialized memory.
	hostInit bool

	// Launch-scoped write shadows: sh[smID] is that SM's private store
	// shadow, ov the globally-ordered atomic overlay. Created lazily during
	// a launch (launch.initShadows sizes sh) and folded back into data by
	// launch.mergeMemory; nil between launches.
	sh []*bufShadow[int32]
	ov *bufShadow[int32]
}

// shadowFor returns (creating on first use) the store shadow owned by smID.
// Only the owning SM's goroutine may call it.
func (b *BufI32) shadowFor(smID int) *bufShadow[int32] {
	if b.sh[smID] == nil {
		b.sh[smID] = newBufShadow(b.data)
	}
	return b.sh[smID]
}

// overlay returns (creating on first use) the atomic overlay. Callers must
// hold the launch's atomic gate.
func (b *BufI32) overlay() *bufShadow[int32] {
	if b.ov == nil {
		b.ov = newBufShadow(b.data)
	}
	return b.ov
}

// Name returns the buffer's debug name.
func (b *BufI32) Name() string { return b.name }

// Len returns the element count.
func (b *BufI32) Len() int { return len(b.data) }

// Data exposes the backing store for host-side reads and writes between
// launches (the analogue of cudaMemcpy). It must not be touched while a
// launch is in flight.
func (b *BufI32) Data() []int32 {
	b.hostInit = true
	return b.data
}

// Fill sets every element to v (host-side).
func (b *BufI32) Fill(v int32) {
	b.hostInit = true
	for i := range b.data {
		b.data[i] = v
	}
}

// HostInitialized reports whether the host ever uploaded, filled, or aliased
// (via Data) this buffer — i.e. whether its contents may legitimately
// predate any kernel write.
func (b *BufI32) HostInitialized() bool { return b.hostInit }

func (b *BufI32) addr(idx int32) uint64 { return b.base + 4*uint64(idx) }

// check panics with a typed *KernelFault on an out-of-range access; the
// launch recovers it at the warp boundary and returns it as an error.
func (b *BufI32) check(idx int32, lane int) {
	if idx < 0 || int(idx) >= len(b.data) {
		f := newFaultOOB(b.name, int64(idx), len(b.data))
		f.Lane = lane
		panic(f)
	}
}

// BufF32 is a device-resident buffer of float32 elements.
type BufF32 struct {
	name string
	base uint64
	data []float32

	// hostInit mirrors BufI32.hostInit; see there.
	hostInit bool

	// Launch-scoped write shadows; see BufI32.
	sh []*bufShadow[float32]
	ov *bufShadow[float32]
}

// shadowFor returns (creating on first use) the store shadow owned by smID.
// Only the owning SM's goroutine may call it.
func (b *BufF32) shadowFor(smID int) *bufShadow[float32] {
	if b.sh[smID] == nil {
		b.sh[smID] = newBufShadow(b.data)
	}
	return b.sh[smID]
}

// overlay returns (creating on first use) the atomic overlay. Callers must
// hold the launch's atomic gate.
func (b *BufF32) overlay() *bufShadow[float32] {
	if b.ov == nil {
		b.ov = newBufShadow(b.data)
	}
	return b.ov
}

// Name returns the buffer's debug name.
func (b *BufF32) Name() string { return b.name }

// Len returns the element count.
func (b *BufF32) Len() int { return len(b.data) }

// Data exposes the backing store for host-side access between launches.
func (b *BufF32) Data() []float32 {
	b.hostInit = true
	return b.data
}

// Fill sets every element to v (host-side).
func (b *BufF32) Fill(v float32) {
	b.hostInit = true
	for i := range b.data {
		b.data[i] = v
	}
}

// HostInitialized reports whether the host ever uploaded, filled, or aliased
// (via Data) this buffer; see BufI32.HostInitialized.
func (b *BufF32) HostInitialized() bool { return b.hostInit }

func (b *BufF32) addr(idx int32) uint64 { return b.base + 4*uint64(idx) }

// check panics with a typed *KernelFault on an out-of-range access; see
// BufI32.check.
func (b *BufF32) check(idx int32, lane int) {
	if idx < 0 || int(idx) >= len(b.data) {
		f := newFaultOOB(b.name, int64(idx), len(b.data))
		f.Lane = lane
		panic(f)
	}
}

// coalesceSegments appends the distinct SegmentBytes-sized segments covered
// by the given byte addresses to dst — one entry per global-memory
// transaction the warp instruction generates.
func coalesceSegments(addrs []uint64, segBytes uint64, dst []uint64) []uint64 {
	// Warp width is at most 64; a tiny open-coded set beats a map.
outer:
	for _, a := range addrs {
		s := a / segBytes
		for _, seen := range dst {
			if seen == s {
				continue outer
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// conflictGroups returns, for a set of atomic target addresses, the maximum
// number of lanes hitting any single address (hardware serializes these).
func conflictGroups(addrs []uint64) int {
	var uniq [64]uint64
	var count [64]int
	n := 0
	maxC := 0
outer:
	for _, a := range addrs {
		for i := 0; i < n; i++ {
			if uniq[i] == a {
				count[i]++
				if count[i] > maxC {
					maxC = count[i]
				}
				continue outer
			}
		}
		uniq[n] = a
		count[n] = 1
		if maxC == 0 {
			maxC = 1
		}
		n++
	}
	return maxC
}
