package simt

// memory is the simulated global-memory address space. Buffers receive
// disjoint, segment-aligned address ranges so the coalescing model can map
// any (buffer, element) pair to a byte address.
type memory struct {
	nextAddr uint64
	segBytes uint64
}

func newMemory(segBytes int) *memory {
	return &memory{
		// Leave address 0 unused so a zero address is always a bug.
		nextAddr: uint64(segBytes),
		segBytes: uint64(segBytes),
	}
}

func (m *memory) reserve(bytes int) uint64 {
	base := m.nextAddr
	span := (uint64(bytes) + m.segBytes - 1) / m.segBytes * m.segBytes
	if span == 0 {
		span = m.segBytes
	}
	m.nextAddr += span
	return base
}

// BufI32 is a device-resident buffer of int32 elements.
type BufI32 struct {
	name string
	base uint64
	data []int32
}

// Name returns the buffer's debug name.
func (b *BufI32) Name() string { return b.name }

// Len returns the element count.
func (b *BufI32) Len() int { return len(b.data) }

// Data exposes the backing store for host-side reads and writes between
// launches (the analogue of cudaMemcpy). It must not be touched while a
// launch is in flight.
func (b *BufI32) Data() []int32 { return b.data }

// Fill sets every element to v (host-side).
func (b *BufI32) Fill(v int32) {
	for i := range b.data {
		b.data[i] = v
	}
}

func (b *BufI32) addr(idx int32) uint64 { return b.base + 4*uint64(idx) }

// check panics with a typed *KernelFault on an out-of-range access; the
// launch recovers it at the warp boundary and returns it as an error.
func (b *BufI32) check(idx int32, lane int) {
	if idx < 0 || int(idx) >= len(b.data) {
		f := newFaultOOB(b.name, int64(idx), len(b.data))
		f.Lane = lane
		panic(f)
	}
}

// BufF32 is a device-resident buffer of float32 elements.
type BufF32 struct {
	name string
	base uint64
	data []float32
}

// Name returns the buffer's debug name.
func (b *BufF32) Name() string { return b.name }

// Len returns the element count.
func (b *BufF32) Len() int { return len(b.data) }

// Data exposes the backing store for host-side access between launches.
func (b *BufF32) Data() []float32 { return b.data }

// Fill sets every element to v (host-side).
func (b *BufF32) Fill(v float32) {
	for i := range b.data {
		b.data[i] = v
	}
}

func (b *BufF32) addr(idx int32) uint64 { return b.base + 4*uint64(idx) }

// check panics with a typed *KernelFault on an out-of-range access; see
// BufI32.check.
func (b *BufF32) check(idx int32, lane int) {
	if idx < 0 || int(idx) >= len(b.data) {
		f := newFaultOOB(b.name, int64(idx), len(b.data))
		f.Lane = lane
		panic(f)
	}
}

// coalesceSegments appends the distinct SegmentBytes-sized segments covered
// by the given byte addresses to dst — one entry per global-memory
// transaction the warp instruction generates.
func coalesceSegments(addrs []uint64, segBytes uint64, dst []uint64) []uint64 {
	// Warp width is at most 64; a tiny open-coded set beats a map.
outer:
	for _, a := range addrs {
		s := a / segBytes
		for _, seen := range dst {
			if seen == s {
				continue outer
			}
		}
		dst = append(dst, s)
	}
	return dst
}

// conflictGroups returns, for a set of atomic target addresses, the maximum
// number of lanes hitting any single address (hardware serializes these).
func conflictGroups(addrs []uint64) int {
	var uniq [64]uint64
	var count [64]int
	n := 0
	maxC := 0
outer:
	for _, a := range addrs {
		for i := 0; i < n; i++ {
			if uniq[i] == a {
				count[i]++
				if count[i] > maxC {
					maxC = count[i]
				}
				continue outer
			}
		}
		uniq[n] = a
		count[n] = 1
		if maxC == 0 {
			maxC = 1
		}
		n++
	}
	return maxC
}
