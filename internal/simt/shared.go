package simt

import "fmt"

// SharedI32 is a block-shared int32 array. All warps of a block observe the
// same storage; warps of other blocks never see it.
type SharedI32 struct {
	key  string
	data []int32
}

func (s *SharedI32) len() int { return len(s.data) }

// Len returns the element count.
func (s *SharedI32) Len() int { return len(s.data) }

// sharedArena is one block's shared-memory namespace. The simulation is
// sequential (one warp executes at a time), so no locking is needed.
type sharedArena struct {
	i32 map[string]*SharedI32
}

func newSharedArena() *sharedArena {
	return &sharedArena{i32: make(map[string]*SharedI32)}
}

func (a *sharedArena) getI32(key string, n int) *SharedI32 {
	if s, ok := a.i32[key]; ok {
		if len(s.data) != n {
			panic(fmt.Sprintf("simt: shared array %q re-declared with length %d (was %d)", key, n, len(s.data)))
		}
		return s
	}
	if n < 0 {
		panic(fmt.Sprintf("simt: shared array %q with negative length %d", key, n))
	}
	s := &SharedI32{key: key, data: make([]int32, n)}
	a.i32[key] = s
	return s
}
