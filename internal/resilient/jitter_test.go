package resilient

import (
	"reflect"
	"testing"
	"time"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/simt"
)

// The jitter suite: backoff sleeps must stay within the exponential
// envelope, be reproducible under an explicit seed, and — the point of the
// feature — desynchronize across retry loops so a pool of requests does not
// retry in lockstep against a recovering device.

func collectSleeps(t *testing.T, pol Policy) []time.Duration {
	t.Helper()
	var slept []time.Duration
	pol.Sleep = func(d time.Duration) { slept = append(slept, d) }
	transient := &simt.KernelFault{Kind: simt.FaultBitFlip, Index: -1, Block: -1, Warp: -1, Lane: -1}
	_, _, err := Run(pol, func(int) (int, error) { return 0, transient }, func() (int, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	return slept
}

func TestJitterStaysWithinBackoffEnvelope(t *testing.T) {
	pol := Policy{
		MaxRetries:  6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
		JitterSeed:  7,
	}
	slept := collectSleeps(t, pol)
	if len(slept) != 6 {
		t.Fatalf("got %d sleeps, want 6", len(slept))
	}
	ref := pol.withDefaults()
	for i, d := range slept {
		cap := ref.backoff(i + 1)
		if d < 0 || d > cap {
			t.Fatalf("sleep %d = %v outside [0, %v]", i, d, cap)
		}
	}
}

func TestJitterIsSeededAndReproducible(t *testing.T) {
	pol := Policy{MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 50 * time.Millisecond}

	pol.JitterSeed = 11
	a := collectSleeps(t, pol)
	b := collectSleeps(t, pol)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}

	pol.JitterSeed = 12
	c := collectSleeps(t, pol)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules: %v", a)
	}
}

func TestDefaultJitterDesynchronizesRetryLoops(t *testing.T) {
	// Two identical zero-seed policies model two concurrent requests
	// retrying against the same recovering device: their sleep schedules
	// must differ so the herd spreads out. With MaxBackoff large the odds
	// of a 5-draw collision are negligible.
	pol := Policy{MaxRetries: 5, BaseBackoff: time.Millisecond, MaxBackoff: 500 * time.Millisecond}
	a := collectSleeps(t, pol)
	b := collectSleeps(t, pol)
	if reflect.DeepEqual(a, b) {
		t.Fatalf("two zero-seed retry loops slept in lockstep: %v", a)
	}
}

// CC joins the chaos suite: the new resilient runner must survive transient
// aborts unchanged and degrade to the union-find oracle on device loss.

func TestCCSurvivesInjectedAborts(t *testing.T) {
	g := testGraph(t)
	sym, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	want := cpualgo.ConnectedComponents(sym)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 23, AbortEvery: 2})
	res, err := CC(d, sym, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("transient aborts should not degrade: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("fault plan injected nothing; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Labels, want) {
		t.Fatal("CC under transient aborts differs from fault-free oracle")
	}
}

func TestCCDegradesOnDeviceLoss(t *testing.T) {
	g := testGraph(t)
	sym, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	want := cpualgo.ConnectedComponents(sym)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 29, DeviceLossAfterCycles: 1500})
	res, err := CC(d, sym, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Degraded || res.GPU != nil {
		t.Fatalf("device loss should degrade to the oracle: %+v", res.Outcome)
	}
	if !reflect.DeepEqual(res.Labels, want) {
		t.Fatal("degraded CC differs from the union-find oracle")
	}
	if res.Components <= 0 || res.Components > g.NumVertices() {
		t.Fatalf("implausible component count %d", res.Components)
	}
}
