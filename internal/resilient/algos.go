package resilient

import (
	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// BFSResult is a fault-tolerant BFS answer: device levels when the run
// survived, oracle levels tagged Degraded when it did not.
type BFSResult struct {
	// Levels holds each vertex's hop distance from the source
	// (gpualgo.Unvisited if unreached), whichever engine produced it.
	Levels []int32
	// Depth is the deepest level assigned.
	Depth int32
	// Outcome records retries, faults, and whether the result is degraded.
	Outcome Outcome
	// GPU carries the device run's stats and output (nil when Degraded).
	GPU *gpualgo.BFSResult
}

// BFS uploads g and runs a fault-tolerant device BFS from src: transient
// kernel faults are retried per level from a checkpoint, and permanent
// faults (or an exhausted retry budget) degrade to the CPU oracle unless
// pol.NoFallback is set.
func BFS(d *simt.Device, g *graph.CSR, src graph.VertexID, opts gpualgo.Options, pol Policy) (*BFSResult, error) {
	pol = pol.withDefaults()
	dg, err := gpualgo.UploadChecked(d, g)
	if err != nil {
		return nil, err
	}
	run, err := gpualgo.NewBFSRun(d, dg, src, opts)
	if err != nil {
		return nil, err
	}
	run.Launch = pol.Launch
	out, derr := Drive(pol, run)
	if derr == nil {
		res := run.Result()
		return &BFSResult{Levels: res.Levels, Depth: res.Depth, Outcome: *out, GPU: res}, nil
	}
	if pol.NoFallback {
		return nil, derr
	}
	levels := cpualgo.BFSSequential(g, src)
	out.Degraded = true
	out.FallbackCause = derr
	var depth int32
	for _, l := range levels {
		if l > depth {
			depth = l
		}
	}
	return &BFSResult{Levels: levels, Depth: depth, Outcome: *out}, nil
}

// CCResult is a fault-tolerant connected-components answer.
type CCResult struct {
	// Labels maps each vertex to its component label (the minimum vertex id
	// in the component), whichever engine produced it.
	Labels []int32
	// Components is the number of distinct labels.
	Components int
	// Outcome records retries, faults, and whether the result is degraded.
	Outcome Outcome
	// GPU carries the device run's stats and output (nil when Degraded).
	GPU *gpualgo.CCResult
}

// CC uploads g and runs fault-tolerant min-label propagation: transient
// kernel faults are retried per round from a checkpoint, and permanent
// faults (or an exhausted retry budget) degrade to the CPU union-find
// oracle unless pol.NoFallback is set. For weakly-connected components on
// a directed graph pass the symmetrized graph, as with the device kernel.
func CC(d *simt.Device, g *graph.CSR, opts gpualgo.Options, pol Policy) (*CCResult, error) {
	pol = pol.withDefaults()
	dg, err := gpualgo.UploadChecked(d, g)
	if err != nil {
		return nil, err
	}
	run, err := gpualgo.NewCCRun(d, dg, opts)
	if err != nil {
		return nil, err
	}
	run.Launch = pol.Launch
	out, derr := Drive(pol, run)
	if derr == nil {
		res := run.Result()
		return &CCResult{Labels: res.Labels, Components: countLabels(res.Labels), Outcome: *out, GPU: res}, nil
	}
	if pol.NoFallback {
		return nil, derr
	}
	labels := cpualgo.ConnectedComponents(g)
	out.Degraded = true
	out.FallbackCause = derr
	return &CCResult{Labels: labels, Components: countLabels(labels), Outcome: *out}, nil
}

// countLabels counts the distinct component labels in a min-label vector.
func countLabels(labels []int32) int {
	n := 0
	for v, l := range labels {
		if int32(v) == l {
			n++
		}
	}
	return n
}

// SSSPResult is a fault-tolerant shortest-paths answer.
type SSSPResult struct {
	// Dist holds each vertex's distance from the source (cpualgo.InfDist
	// if unreachable), whichever engine produced it.
	Dist []int32
	// Outcome records retries, faults, and whether the result is degraded.
	Outcome Outcome
	// GPU carries the device run's stats and output (nil when Degraded).
	GPU *gpualgo.SSSPResult
}

// SSSP uploads g with weights and runs fault-tolerant Bellman-Ford from
// src, retrying transient faults per round and degrading to the CPU
// Bellman-Ford oracle on permanent failure.
func SSSP(d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID, opts gpualgo.Options, pol Policy) (*SSSPResult, error) {
	pol = pol.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	dg, err := gpualgo.UploadWeighted(d, g, weights)
	if err != nil {
		return nil, err
	}
	run, err := gpualgo.NewSSSPRun(d, dg, src, opts)
	if err != nil {
		return nil, err
	}
	run.Launch = pol.Launch
	out, derr := Drive(pol, run)
	if derr == nil {
		res := run.Result()
		return &SSSPResult{Dist: res.Dist, Outcome: *out, GPU: res}, nil
	}
	if pol.NoFallback {
		return nil, derr
	}
	dist := cpualgo.SSSPBellmanFord(g, weights, src, 0)
	out.Degraded = true
	out.FallbackCause = derr
	return &SSSPResult{Dist: dist, Outcome: *out}, nil
}

// PageRankResult is a fault-tolerant PageRank answer.
type PageRankResult struct {
	// Ranks is the final rank vector (sums to ~1), whichever engine
	// produced it.
	Ranks []float32
	// Outcome records retries, faults, and whether the result is degraded.
	Outcome Outcome
	// GPU carries the device run's stats and output (nil when Degraded).
	GPU *gpualgo.PageRankResult
}

// PageRank runs fault-tolerant power iteration, retrying transient faults
// per sweep (the rank/next swap only commits after a sweep's two launches
// both succeed) and degrading to the CPU oracle on permanent failure. The
// oracle runs the same damping for the same fixed iteration count.
func PageRank(d *simt.Device, g *graph.CSR, opts gpualgo.PageRankOptions, pol Policy) (*PageRankResult, error) {
	pol = pol.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	run, err := gpualgo.NewPageRankRun(d, g, opts)
	if err != nil {
		return nil, err
	}
	run.Launch = pol.Launch
	out, derr := Drive(pol, run)
	if derr == nil {
		res := run.Result()
		return &PageRankResult{Ranks: res.Ranks, Outcome: *out, GPU: res}, nil
	}
	if pol.NoFallback {
		return nil, derr
	}
	damping := opts.Damping
	if damping == 0 {
		damping = 0.85
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 20
	}
	ranks64, _ := cpualgo.PageRank(g, cpualgo.PageRankOptions{
		Damping:   float64(damping),
		MaxIters:  iters,
		Tolerance: 1e-300, // run the full fixed iteration count, as the device does
	})
	ranks := make([]float32, len(ranks64))
	for i, r := range ranks64 {
		ranks[i] = float32(r)
	}
	out.Degraded = true
	out.FallbackCause = derr
	return &PageRankResult{Ranks: ranks, Outcome: *out}, nil
}
