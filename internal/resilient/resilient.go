// Package resilient wraps the device graph algorithms with fault tolerance:
// bounded retry with exponential backoff on transient kernel faults,
// checkpoint/restore of device buffers between iterations of the iterative
// algorithms (BFS levels, Bellman-Ford rounds, PageRank sweeps), and
// graceful degradation to the matching CPU oracle once the retry budget is
// exhausted or the fault is permanent (device loss, deterministic kernel
// bugs). Degraded results are tagged so callers can tell a GPU answer from
// an oracle answer.
package resilient

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"maxwarp/internal/simt"
	"maxwarp/internal/xrand"
)

// Policy bounds how hard the runner tries before degrading to the CPU
// oracle.
type Policy struct {
	// MaxRetries is the per-step transient retry budget (default 3). A
	// successful step resets the counter: only consecutive failures of the
	// same step exhaust it.
	MaxRetries int
	// BaseBackoff is the sleep before the first retry (default 1ms); it
	// doubles per consecutive failure up to MaxBackoff (default 50ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Sleep is the backoff clock, injectable for tests (default
	// time.Sleep).
	Sleep func(time.Duration)
	// Launch supervises every kernel launch made under this policy
	// (per-launch deadline and progress callback).
	Launch simt.LaunchOpts
	// NoFallback disables CPU-oracle degradation: exhausting the retry
	// budget returns the last error instead of a Degraded result.
	NoFallback bool
	// JitterSeed seeds the full-jitter randomization of backoff sleeps:
	// each sleep is drawn uniformly from [0, backoff(try)] so that a pool
	// of retry loops hammering one recovering device desynchronizes
	// instead of retrying in lockstep (thundering herd). Zero derives a
	// distinct deterministic seed per retry loop from a process-wide
	// counter; set non-zero for a reproducible schedule in tests.
	JitterSeed uint64
	// NoJitter disables jitter: sleeps follow the exact exponential curve.
	NoJitter bool

	// rng drives the jitter; withDefaults seeds it lazily so Policy
	// literals keep working.
	rng *xrand.Rand
}

// jitterCounter derives distinct default jitter seeds for concurrent retry
// loops that left JitterSeed at zero.
var jitterCounter atomic.Uint64

func (p Policy) withDefaults() Policy {
	if p.MaxRetries == 0 {
		p.MaxRetries = 3
	}
	if p.BaseBackoff == 0 {
		p.BaseBackoff = time.Millisecond
	}
	if p.MaxBackoff == 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if !p.NoJitter && p.rng == nil {
		seed := p.JitterSeed
		if seed == 0 {
			// Offset so seed 0 never collides with an explicit JitterSeed.
			seed = 0x9e3779b97f4a7c15 ^ jitterCounter.Add(1)
		}
		p.rng = xrand.New(seed)
	}
	return p
}

// backoff returns the sleep before retry number try (1-based).
func (p Policy) backoff(try int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < try; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// sleepFor returns the actual sleep before retry number try (1-based):
// the exponential backoff cap with full jitter applied unless NoJitter.
// Call only after withDefaults.
func (p Policy) sleepFor(try int) time.Duration {
	d := p.backoff(try)
	if p.NoJitter || p.rng == nil || d <= 0 {
		return d
	}
	return time.Duration(p.rng.Uint64n(uint64(d) + 1))
}

// FaultRecord logs one fault the runner observed and recovered from (or gave
// up on).
type FaultRecord struct {
	// Iteration is the algorithm iteration (BFS level, PageRank sweep) the
	// fault interrupted.
	Iteration int
	// Attempt is the 1-based attempt number of that step.
	Attempt int
	// Err is the launch error, with the typed *simt.KernelFault (or
	// sentinel) in its chain.
	Err error
}

// Outcome describes how a resilient run completed.
type Outcome struct {
	// Degraded is true when the device computation was abandoned and the
	// result comes from the CPU oracle.
	Degraded bool
	// Retries is the total number of retried steps across the run.
	Retries int
	// Faults logs every fault observed, in order.
	Faults []FaultRecord
	// FallbackCause is the error that forced degradation (nil unless
	// Degraded).
	FallbackCause error
}

// permanent reports whether err cannot be cured by retrying the same step:
// device loss poisons every future launch, and a deterministic kernel fault
// (OOB, panic) will recur on identical inputs. Injected bit-flips and aborts
// are transient by construction.
func permanent(err error) bool {
	if errors.Is(err, simt.ErrDeviceLost) {
		return true
	}
	return !simt.IsTransient(err)
}

// Run executes attempt with the policy's retry loop and falls back once the
// budget is exhausted or the fault is permanent. attempt receives the
// 1-based attempt number and must be safe to call again after a failure
// (restore any state it mutates). fallback may be nil, in which case the
// last error is returned instead of degrading.
func Run[T any](pol Policy, attempt func(try int) (T, error), fallback func() (T, error)) (T, *Outcome, error) {
	pol = pol.withDefaults()
	out := &Outcome{}
	var zero T
	var lastErr error
	for try := 1; try <= 1+pol.MaxRetries; try++ {
		v, err := attempt(try)
		if err == nil {
			return v, out, nil
		}
		lastErr = err
		out.Faults = append(out.Faults, FaultRecord{Attempt: try, Err: err})
		if permanent(err) {
			break
		}
		if try <= pol.MaxRetries {
			out.Retries++
			pol.Sleep(pol.sleepFor(try))
		}
	}
	if fallback == nil || pol.NoFallback {
		return zero, out, lastErr
	}
	v, err := fallback()
	if err != nil {
		return zero, out, fmt.Errorf("resilient: fallback after %w: %v", lastErr, err)
	}
	out.Degraded = true
	out.FallbackCause = lastErr
	return v, out, nil
}
