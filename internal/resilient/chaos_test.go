package resilient

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// The chaos suite: run the resilient algorithms under seeded fault injection
// and assert that (a) transient faults never change the answer, (b)
// permanent faults degrade to the CPU oracle with Degraded set, and (c) no
// fault ever surfaces as a panic.

func testConfig() simt.Config {
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxWarpsPerSM = 8
	cfg.MaxBlocksPerSM = 4
	return cfg
}

func newTestDevice(t *testing.T) *simt.Device {
	t.Helper()
	d, err := simt.NewDevice(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testGraph(t *testing.T) *graph.CSR {
	t.Helper()
	g, err := gengraph.RMATSimple(7, 8, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// fastPolicy removes real sleeps from the retry loop.
func fastPolicy() Policy {
	return Policy{MaxRetries: 3, Sleep: func(time.Duration) {}}
}

func TestBFSSurvivesInjectedAborts(t *testing.T) {
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 17, AbortEvery: 3})
	res, err := BFS(d, g, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("transient aborts should not degrade: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("fault plan injected nothing; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("BFS under transient aborts differs from fault-free oracle")
	}
}

func TestBFSSurvivesBitFlipsInStateBuffers(t *testing.T) {
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{
		Seed:         5,
		BitFlipEvery: 2,
		Buffers:      []string{"bfs.levels", "bfs.changed"},
	})
	res, err := BFS(d, g, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("bit-flips should be retried, not degraded: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("no bit-flip was injected; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("BFS under bit-flips differs from fault-free oracle")
	}
	for _, f := range res.Outcome.Faults {
		if !simt.IsTransient(f.Err) {
			t.Fatalf("non-transient fault recovered from: %v", f.Err)
		}
	}
}

func TestBFSRestoresCorruptedGraphBuffers(t *testing.T) {
	// Flips restricted to the adjacency array itself: a corrupted column
	// index may send the kernel out of bounds mid-launch, which must still
	// be attributed to the (transient) injection, restored from checkpoint,
	// and retried to the right answer.
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{
		Seed:         23,
		BitFlipEvery: 2,
		Buffers:      []string{"graph.col"},
	})
	res, err := BFS(d, g, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("graph corruption should be restored and retried: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("no bit-flip was injected; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("BFS after graph-buffer restoration differs from oracle")
	}
}

func TestBFSDegradesOnDeviceLoss(t *testing.T) {
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 1, DeviceLossAfterCycles: 500})
	res, err := BFS(d, g, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Degraded {
		t.Fatal("device loss must degrade to the CPU oracle")
	}
	if !errors.Is(res.Outcome.FallbackCause, simt.ErrDeviceLost) {
		t.Fatalf("fallback cause = %v, want ErrDeviceLost", res.Outcome.FallbackCause)
	}
	if res.GPU != nil {
		t.Fatal("degraded result still claims GPU provenance")
	}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("degraded BFS differs from oracle")
	}
	if !d.Lost() {
		t.Fatal("device not marked lost")
	}
}

func TestBFSDegradesWhenRetryBudgetExhausted(t *testing.T) {
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 2, AbortEvery: 1}) // every launch dies
	pol := fastPolicy()
	pol.MaxRetries = 2
	res, err := BFS(d, g, 0, gpualgo.Options{K: 8}, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Degraded {
		t.Fatal("exhausted budget must degrade")
	}
	if res.Outcome.Retries != 2 {
		t.Fatalf("retries = %d, want exactly MaxRetries=2", res.Outcome.Retries)
	}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("degraded BFS differs from oracle")
	}
}

func TestBFSNoFallbackReturnsTypedError(t *testing.T) {
	g := testGraph(t)
	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 2, AbortEvery: 1})
	pol := fastPolicy()
	pol.MaxRetries = 1
	pol.NoFallback = true
	_, err := BFS(d, g, 0, gpualgo.Options{K: 8}, pol)
	if err == nil {
		t.Fatal("NoFallback must surface the error")
	}
	var kf *simt.KernelFault
	if !errors.As(err, &kf) {
		t.Fatalf("error is not typed: %v", err)
	}
}

func TestSSSPSurvivesTransientFaults(t *testing.T) {
	g := testGraph(t)
	weights := gengraph.EdgeWeights(g, 16, 7)
	want := cpualgo.SSSPBellmanFord(g, weights, 0, 1)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{
		Seed:         31,
		AbortEvery:   4,
		BitFlipEvery: 3,
		Buffers:      []string{"sssp.dist", "graph.col"},
	})
	res, err := SSSP(d, g, weights, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("transient faults should not degrade: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("no fault was injected; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Dist, want) {
		t.Fatal("SSSP under transient faults differs from oracle")
	}
}

func TestSSSPDegradesOnDeviceLoss(t *testing.T) {
	g := testGraph(t)
	weights := gengraph.EdgeWeights(g, 16, 7)
	want := cpualgo.SSSPBellmanFord(g, weights, 0, 1)

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 4, DeviceLossAfterCycles: 800})
	res, err := SSSP(d, g, weights, 0, gpualgo.Options{K: 8}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Degraded || !errors.Is(res.Outcome.FallbackCause, simt.ErrDeviceLost) {
		t.Fatalf("outcome = %+v, want device-loss degradation", res.Outcome)
	}
	if !reflect.DeepEqual(res.Dist, want) {
		t.Fatal("degraded SSSP differs from oracle")
	}
}

func TestPageRankSurvivesTransientFaults(t *testing.T) {
	g := testGraph(t)
	opts := gpualgo.PageRankOptions{Options: gpualgo.Options{K: 8}, Iterations: 5}

	// Fault-free device run is the reference: transient faults must not
	// perturb even the floating-point result (exact equality, since retries
	// replay identical launches from restored state).
	clean := newTestDevice(t)
	ref, err := gpualgo.PageRank(clean, g, opts)
	if err != nil {
		t.Fatal(err)
	}

	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{
		Seed:         13,
		AbortEvery:   3,
		BitFlipEvery: 4,
		Buffers:      []string{"pr.rank", "pr.next", "pr.contrib"},
	})
	// Two launches per sweep doubles the fault density, so give the retry
	// loop more headroom than the BFS tests need.
	pol := fastPolicy()
	pol.MaxRetries = 8
	res, err := PageRank(d, g, opts, pol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome.Degraded {
		t.Fatalf("transient faults should not degrade: faults=%v", res.Outcome.Faults)
	}
	if res.Outcome.Retries == 0 {
		t.Fatal("no fault was injected; the test is vacuous")
	}
	if !reflect.DeepEqual(res.Ranks, ref.Ranks) {
		t.Fatal("PageRank under transient faults differs from fault-free run")
	}
}

func TestPageRankDegradesOnDeviceLoss(t *testing.T) {
	g := testGraph(t)
	d := newTestDevice(t)
	d.SetFaultPlan(&simt.FaultPlan{Seed: 6, DeviceLossAfterCycles: 1000})
	res, err := PageRank(d, g, gpualgo.PageRankOptions{Options: gpualgo.Options{K: 8}, Iterations: 5}, fastPolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Outcome.Degraded || !errors.Is(res.Outcome.FallbackCause, simt.ErrDeviceLost) {
		t.Fatalf("outcome = %+v, want device-loss degradation", res.Outcome)
	}
	var sum float64
	for _, r := range res.Ranks {
		sum += float64(r)
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("oracle ranks do not sum to ~1: %f", sum)
	}
}

func TestRunRetriesTransientThenSucceeds(t *testing.T) {
	pol := fastPolicy()
	calls := 0
	v, out, err := Run(pol, func(try int) (int, error) {
		calls++
		if try < 3 {
			return 0, &simt.KernelFault{Kind: simt.FaultAbort, Index: -1, Block: -1, Warp: -1, Lane: -1}
		}
		return 42, nil
	}, nil)
	if err != nil || v != 42 {
		t.Fatalf("v=%d err=%v", v, err)
	}
	if calls != 3 || out.Retries != 2 || len(out.Faults) != 2 {
		t.Fatalf("calls=%d outcome=%+v", calls, out)
	}
}

func TestRunPermanentFaultSkipsRetries(t *testing.T) {
	pol := fastPolicy()
	calls := 0
	boom := &simt.KernelFault{Kind: simt.FaultOOB, Index: -1, Block: -1, Warp: -1, Lane: -1}
	v, out, err := Run(pol, func(try int) (string, error) {
		calls++
		return "", boom
	}, func() (string, error) {
		return "oracle", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("permanent fault retried %d times", calls-1)
	}
	if !out.Degraded || v != "oracle" || !errors.Is(out.FallbackCause, boom) {
		t.Fatalf("v=%q outcome=%+v", v, out)
	}
}

func TestRunBackoffGrowsExponentially(t *testing.T) {
	var slept []time.Duration
	pol := Policy{
		MaxRetries:  4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
		NoJitter:    true,
	}
	transient := &simt.KernelFault{Kind: simt.FaultBitFlip, Index: -1, Block: -1, Warp: -1, Lane: -1}
	_, _, err := Run(pol, func(try int) (int, error) { return 0, transient }, func() (int, error) { return 1, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("backoffs = %v, want %v", slept, want)
	}
}

func TestCheckpointRestoreUndoesCorruption(t *testing.T) {
	d := newTestDevice(t)
	bi := d.UploadI32("ints", []int32{1, 2, 3})
	bf := d.UploadF32("floats", []float32{0.5, 1.5})
	cp := NewCheckpoint(gpualgo.RunState{I32: []*simt.BufI32{bi}, F32: []*simt.BufF32{bf}})
	bi.Data()[1] = -7
	bf.Data()[0] = 99
	cp.Restore()
	if bi.Data()[1] != 2 || bf.Data()[0] != 0.5 {
		t.Fatalf("restore failed: %v %v", bi.Data(), bf.Data())
	}
	bi.Data()[0] = 10
	cp.Save()
	bi.Data()[0] = 0
	cp.Restore()
	if bi.Data()[0] != 10 {
		t.Fatal("save did not refresh the snapshot")
	}
}

func TestChaosSweepNeverPanicsAlwaysCorrect(t *testing.T) {
	// A seeded sweep across fault mixes: whatever is injected, the answer
	// must be the oracle answer (directly, or via degradation) and nothing
	// may panic across the API boundary.
	g := testGraph(t)
	want := cpualgo.BFSSequential(g, 0)
	plans := []simt.FaultPlan{
		{Seed: 100, AbortEvery: 2},
		{Seed: 101, BitFlipEvery: 1, Buffers: []string{"bfs.levels"}},
		{Seed: 102, AbortEvery: 1, MaxFaults: 3},
		{Seed: 103, DeviceLossAfterCycles: 2000},
		{Seed: 104, AbortEvery: 2, BitFlipEvery: 3, Buffers: []string{"graph.col", "bfs.levels"}},
	}
	for i, plan := range plans {
		p := plan
		d := newTestDevice(t)
		d.SetFaultPlan(&p)
		res, err := BFS(d, g, 0, gpualgo.Options{K: 4}, fastPolicy())
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		if !reflect.DeepEqual(res.Levels, want) {
			t.Fatalf("plan %d: wrong answer (degraded=%v)", i, res.Outcome.Degraded)
		}
	}
}
