package resilient

import (
	"maxwarp/internal/gpualgo"
)

// Stepper is an open-loop iterative device algorithm (gpualgo.BFSRun,
// SSSPRun, PageRankRun): Step advances one iteration and leaves host state
// untouched on failure, State lists the device buffers a step mutates.
type Stepper interface {
	Step() (done bool, err error)
	State() gpualgo.RunState
	Iterations() int
}

// Drive runs s to completion under pol: after every successful step it
// checkpoints the device state, and on a transient failure it restores the
// checkpoint and retries the same step with exponential backoff. It returns
// a non-nil error once a permanent fault strikes or a single step exhausts
// the retry budget; the caller decides whether to degrade to an oracle.
// The returned Outcome is always non-nil and logs every fault observed.
func Drive(pol Policy, s Stepper) (*Outcome, error) {
	pol = pol.withDefaults()
	out := &Outcome{}
	cp := NewCheckpoint(s.State())
	attempt := 1
	for {
		done, err := s.Step()
		if err == nil {
			cp.Save()
			attempt = 1
			if done {
				return out, nil
			}
			continue
		}
		out.Faults = append(out.Faults, FaultRecord{
			Iteration: s.Iterations(),
			Attempt:   attempt,
			Err:       err,
		})
		if permanent(err) || attempt > pol.MaxRetries {
			return out, err
		}
		cp.Restore()
		out.Retries++
		pol.Sleep(pol.sleepFor(attempt))
		attempt++
	}
}
