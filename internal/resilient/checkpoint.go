package resilient

import (
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/simt"
)

// Checkpoint holds host-side snapshots of a set of device buffers. Save
// copies device contents out; Restore copies the last snapshot back in,
// undoing any corruption a failed launch left behind (including injected
// bit-flips in the graph arrays themselves).
type Checkpoint struct {
	i32  []*simt.BufI32
	f32  []*simt.BufF32
	i32s [][]int32
	f32s [][]float32
}

// NewCheckpoint tracks every buffer in st and takes an initial snapshot.
func NewCheckpoint(st gpualgo.RunState) *Checkpoint {
	c := &Checkpoint{i32: st.I32, f32: st.F32}
	c.i32s = make([][]int32, len(c.i32))
	for i, b := range c.i32 {
		c.i32s[i] = make([]int32, b.Len())
	}
	c.f32s = make([][]float32, len(c.f32))
	for i, b := range c.f32 {
		c.f32s[i] = make([]float32, b.Len())
	}
	c.Save()
	return c
}

// Save snapshots the current contents of every tracked buffer.
func (c *Checkpoint) Save() {
	for i, b := range c.i32 {
		copy(c.i32s[i], b.Data())
	}
	for i, b := range c.f32 {
		copy(c.f32s[i], b.Data())
	}
}

// Restore writes the last snapshot back into every tracked buffer.
func (c *Checkpoint) Restore() {
	for i, b := range c.i32 {
		copy(b.Data(), c.i32s[i])
	}
	for i, b := range c.f32 {
		copy(b.Data(), c.f32s[i])
	}
}
