// warp.go implements the warp-efficiency analyzers on top of the CFG
// (cfg.go) and taint (taint.go) infrastructure, plus the per-kernel
// KernelVerdict summaries that `maxwarp lint` and TestWarplintPredictions
// consume.
//
// The three advisory analyzers map one-to-one onto the pathologies of the
// source paper (Hong et al., PPoPP 2011):
//
//   - divergence: warp-construct predicates and loop bounds that depend on
//     per-lane data. The paper's fix — defer outlier lanes to a queue and
//     process them in a second balanced pass — is what the messages suggest.
//   - coalesce: per-lane device-buffer index stride. Unit-stride indexes
//     coalesce into one transaction; data-dependent (irregular) indexes
//     fan out into one transaction per lane (TxnsPerMemOp in LaunchStats).
//   - atomicserial: atomics whose per-lane targets collide. A warp-uniform
//     target serializes all active lanes every time (the leader idiom or a
//     GroupReduce is the fix); data-dependent targets serialize under
//     contention, which the paper also routes through the outlier queue.
//
// The fourth — barrier — replaces the PR 4 lexical rule with a CFG
// control-dependence check: a SyncThreads is hazardous iff it is
// control-dependent on a guard that is not warp-uniform. That kills the
// lexical rule's false positives (barriers in uniform-predicate branches)
// and its false negatives (barriers reached through helper closures the
// lexical scan never entered).
//
// These analyzers are advisory by design: every interesting graph kernel
// diverges somewhere — that is the paper's subject, not a bug. They live in
// WarpAll rather than All, and the drivers gate them behind a committed
// findings baseline instead of failing on any finding.
package kernelcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// WarpAll is the advisory warp-efficiency analyzer set. The drivers run it
// separately from All and gate it on a findings baseline.
var WarpAll = []*Analyzer{DivergenceAnalyzer, CoalesceAnalyzer, AtomicSerialAnalyzer}

// DivergenceAnalyzer flags intra-warp divergence sources: warp-construct
// predicates and loop trip counts that depend on per-lane data.
var DivergenceAnalyzer = &Analyzer{
	Name: "divergence",
	Doc:  "flags warp branches/loops conditioned on lane-dependent data (the paper's divergence pathology)",
	Run:  func(p *Pass) { reportRule(p, "divergence") },
}

// CoalesceAnalyzer flags uncoalesced global memory access: plain (per-lane)
// loads and stores whose index vector is data-dependent, on a looping path.
var CoalesceAnalyzer = &Analyzer{
	Name: "coalesce",
	Doc:  "classifies per-lane device-buffer index stride and flags irregular plain accesses on hot paths",
	Run:  func(p *Pass) { reportRule(p, "coalesce") },
}

// AtomicSerialAnalyzer flags warp-serializing atomics: warp-uniform targets
// without a leader guard, and data-dependent targets on hot paths.
var AtomicSerialAnalyzer = &Analyzer{
	Name: "atomicserial",
	Doc:  "flags atomics that serialize the warp (uniform target without a leader guard, colliding data-dependent targets)",
	Run:  func(p *Pass) { reportRule(p, "atomicserial") },
}

// KernelVerdict is one kernel's static warp-efficiency summary. The string
// fields use small closed vocabularies so the expectations file diffs
// cleanly:
//
//	Divergence: none | laneid | data
//	Loops:      uniform | imbalanced
//	Coalesce:   none | uniform | unit | strided | irregular
//	Atomics:    none | leader | collide | serial
//	Barriers:   none | uniform | divergent
type KernelVerdict struct {
	Kernel string `json:"kernel"`
	File   string `json:"file"`
	Line   int    `json:"line"`

	Divergence string `json:"divergence"`
	Loops      string `json:"loops"`
	Coalesce   string `json:"coalesce"`
	Atomics    string `json:"atomics"`
	Barriers   string `json:"barriers"`

	// Findings counts this kernel's unsuppressed warp-rule findings.
	Findings int `json:"findings"`
}

// finding is a pre-Diagnostic carrying a token.Pos (Diagnostics carry
// resolved Positions; analyzers need the raw Pos for Reportf).
type finding struct {
	pos  token.Pos
	rule string
	msg  string
}

// cfgReport is one kernel CFG's full analysis result.
type cfgReport struct {
	cfg      *CFG
	verdict  KernelVerdict
	findings []finding
}

// reportRule replays the cached per-CFG findings for one rule through the
// pass, deduplicating across kernels (a shared helper closure is inlined
// into every calling kernel's CFG, but one source site is one finding).
func reportRule(p *Pass, rule string) {
	seen := make(map[token.Pos]bool)
	for _, r := range p.analysis().reports {
		for _, f := range r.findings {
			if f.rule != rule || seen[f.pos] {
				continue
			}
			seen[f.pos] = true
			p.Reportf(f.pos, "%s", f.msg)
		}
	}
}

// --- per-file analysis ------------------------------------------------------

// fileAnalysis caches the shared CFG/taint infrastructure for one file.
type fileAnalysis struct {
	binds   *bindings
	taint   *Taint
	reports []*cfgReport
}

// buildFileAnalysis discovers kernel roots, builds their CFGs, and runs the
// warp rules over each.
func buildFileAnalysis(fset *token.FileSet, file *ast.File) *fileAnalysis {
	fa := &fileAnalysis{
		binds: collectBindings(file),
		taint: ComputeTaint(file),
	}
	for _, d := range file.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !declDefinesKernel(fd) {
			continue
		}
		c := BuildCFG(fset, fd, fa.binds)
		if !cfgInteresting(c) {
			continue // scratch factories, pure host plumbing
		}
		fa.reports = append(fa.reports, analyzeCFG(fset, c, fa.taint))
	}
	return fa
}

// declDefinesKernel reports whether a top-level function is worth a CFG:
// it takes a *WarpCtx itself, or it contains a kernel function literal
// (factories returning kernels, hosts launching inline kernels).
func declDefinesKernel(fd *ast.FuncDecl) bool {
	if isKernelishFuncType(fd.Type) {
		return true
	}
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && isKernelishFuncType(fl.Type) {
			found = true
		}
		return !found
	})
	return found
}

// cfgInteresting filters out CFGs with no kernel substance: no primitive
// events and no warp guards (e.g. a scratch factory whose closures only
// execute from its callers' CFGs).
func cfgInteresting(c *CFG) bool {
	for _, b := range c.Blocks {
		if len(b.Events) > 0 {
			return true
		}
	}
	for _, g := range c.Guards {
		if g.Kind != GuardGoIf && g.Kind != GuardGoFor {
			return true
		}
	}
	return false
}

// --- the rules --------------------------------------------------------------

// inLoop reports whether any enclosing guard loops: the "hot path"
// criterion for the coalesce and atomic-collision rules.
func inLoop(b *Block) bool {
	for _, g := range b.Guards {
		if g.Loop {
			return true
		}
	}
	return false
}

// leaderGuarded reports whether the block runs under a lane-id-predicate
// warp If — the "if (lane == 0)" leader idiom.
func leaderGuarded(b *Block) bool {
	for _, g := range b.Guards {
		if g.Kind == GuardWarpIf && g.Class == PredLaneID {
			return true
		}
	}
	return false
}

// analyzeCFG runs all four warp rules over one kernel CFG and assembles
// its verdict.
func analyzeCFG(fset *token.FileSet, c *CFG, tt *Taint) *cfgReport {
	r := &cfgReport{cfg: c}
	for _, g := range c.Guards {
		if g.Kind != GuardDriver { // drivers are pre-classified PredData
			g.Class = tt.ClassifyGuard(g)
		}
	}
	seen := make(map[string]bool)
	add := func(pos token.Pos, rule, format string, args ...any) {
		f := finding{pos: pos, rule: rule, msg: fmt.Sprintf(format, args...)}
		k := fmt.Sprintf("%d/%s/%s", pos, rule, f.msg)
		if !seen[k] {
			seen[k] = true
			r.findings = append(r.findings, f)
		}
	}

	// divergence: warp guards on per-lane data. Drivers are exempt (round
	// imbalance is the distribution scheme's business, not the kernel's),
	// and plain Go guards are exempt (kernel Go code runs once per warp, so
	// a Go branch is warp-uniform by construction).
	divData, divLane, loopsImb := false, false, false
	for _, g := range c.Guards {
		switch g.Kind {
		case GuardWarpIf:
			if g.Class == PredData {
				divData = true
				add(g.Pos, "divergence",
					"%s predicate depends on per-lane data: lanes diverge inside the warp; consider deferring outlier lanes (vwarp.ForEachDeferred / Options.DeferThreshold) or regrouping the work", g.Desc)
			} else if g.Class == PredLaneID {
				divLane = true
			}
		case GuardWarpWhile:
			if g.Class == PredData {
				divData, loopsImb = true, true
				add(g.Pos, "divergence",
					"%s trip count is per-lane data-dependent: the whole warp runs to its slowest lane; consider outlier deferral for heavy lanes", g.Desc)
			} else if g.Class == PredLaneID {
				divLane = true
			}
		case GuardSIMDRange:
			if g.Class == PredData {
				divData, loopsImb = true, true
				add(g.Pos, "divergence",
					"%s bounds are per-task data (degree-dependent): intra-warp workload imbalance; route heavy tasks through the outlier queue", g.Desc)
			} else if g.Class == PredLaneID {
				divLane = true
			}
		}
	}

	// coalesce + atomicserial + barrier need per-block context.
	worstMem := StrideUniform
	sawMem := false
	sawAtomic, atomicSerial, atomicCollide := false, false, false
	sawBarrier, barrierDiv := false, false
	deps := c.ControlDeps()
	for _, b := range c.Blocks {
		for _, ev := range b.Events {
			switch ev.Kind {
			case EvLoad, EvStore:
				if ev.Shared {
					continue // shared memory has no coalescing cost here
				}
				s := tt.ClassifyIdx(ev.Idx)
				sawMem = true
				if s > worstMem {
					worstMem = s
				}
				if s == StrideIrregular && !ev.Grouped && inLoop(b) {
					add(ev.Call.Pos(), "coalesce",
						"%s index %q is data-dependent (irregular stride): uncoalesced global access on a hot path — one memory transaction per lane; sort/tile the indexes or use a grouped load", ev.Name, exprText(ev.Idx))
				}
			case EvAtomic:
				sawAtomic = true
				s := tt.ClassifyIdx(ev.Idx)
				switch {
				case s == StrideUniform && !ev.Grouped && !leaderGuarded(b):
					atomicSerial = true
					add(ev.Call.Pos(), "atomicserial",
						"every active lane runs %s against the same address %q: the warp serializes on every pass; elect a leader lane (w.If on LaneIDs()) or reduce first (GroupReduce*)", ev.Name, exprText(ev.Idx))
				case s >= StrideUnit:
					atomicCollide = true
					if s == StrideIrregular && inLoop(b) {
						add(ev.Call.Pos(), "atomicserial",
							"%s target %q is per-lane data-dependent: colliding lanes serialize under contention; the paper defers contended updates through the outlier queue", ev.Name, exprText(ev.Idx))
					}
				}
			case EvBarrier:
				sawBarrier = true
				if g := divergentController(b, deps); g != nil {
					barrierDiv = true
					add(ev.Call.Pos(), "barrier",
						"%s is control-dependent on divergent control flow (%s): lanes or warps can skip it, deadlocking the block; hoist the barrier to warp-uniform code", ev.Name, g.Desc)
				}
			}
		}
	}

	v := &r.verdict
	v.Kernel = c.Name
	pos := fset.Position(c.Pos)
	v.File = filepath.Base(pos.Filename)
	v.Line = pos.Line
	switch {
	case divData:
		v.Divergence = "data"
	case divLane:
		v.Divergence = "laneid"
	default:
		v.Divergence = "none"
	}
	if loopsImb {
		v.Loops = "imbalanced"
	} else {
		v.Loops = "uniform"
	}
	if sawMem {
		v.Coalesce = worstMem.String()
	} else {
		v.Coalesce = "none"
	}
	switch {
	case !sawAtomic:
		v.Atomics = "none"
	case atomicSerial:
		v.Atomics = "serial"
	case atomicCollide:
		v.Atomics = "collide"
	default:
		v.Atomics = "leader"
	}
	switch {
	case !sawBarrier:
		v.Barriers = "none"
	case barrierDiv:
		v.Barriers = "divergent"
	default:
		v.Barriers = "uniform"
	}
	v.Findings = len(r.findings)
	return r
}

// divergentController returns the first guard in the block's control-
// dependence set that makes a barrier hazardous, or nil when every
// controlling guard is warp-uniform. Warp constructs are hazardous under
// any non-uniform predicate (a restricted lane mask at a barrier is the
// synccheck violation); Go branches are hazardous when data-dependent
// (different warps take different sides and disagree on barrier counts);
// driver round loops are always hazardous (warps run different counts).
func divergentController(b *Block, deps [][]*Block) *Guard {
	for _, d := range deps[b.ID] {
		g := d.BranchGuard
		if g == nil {
			continue
		}
		switch g.Kind {
		case GuardWarpIf, GuardWarpWhile, GuardSIMDRange:
			if g.Class != PredUniform {
				return g
			}
		case GuardGoIf, GuardGoFor:
			if g.Class != PredUniform {
				return g
			}
		case GuardDriver:
			return g
		}
	}
	return nil
}

// --- verdict entry points ---------------------------------------------------

// FileVerdicts analyzes one parsed file and returns its kernel verdicts in
// source order.
func FileVerdicts(fset *token.FileSet, file *ast.File) []KernelVerdict {
	fa := buildFileAnalysis(fset, file)
	out := make([]KernelVerdict, 0, len(fa.reports))
	for _, r := range fa.reports {
		out = append(out, r.verdict)
	}
	return out
}

// DirVerdicts parses every .go file in dir (skipping _test.go files unless
// includeTests) and returns all kernel verdicts sorted by file then line.
func DirVerdicts(dir string, includeTests bool) ([]KernelVerdict, error) {
	var out []KernelVerdict
	err := walkDir(dir, includeTests, func(fset *token.FileSet, file *ast.File) {
		out = append(out, FileVerdicts(fset, file)...)
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// DirWarpFindings runs the advisory warp analyzer set over every file in
// dir and returns the unsuppressed findings in file order.
func DirWarpFindings(dir string, includeTests bool) ([]Diagnostic, error) {
	var out []Diagnostic
	err := walkDir(dir, includeTests, func(fset *token.FileSet, file *ast.File) {
		out = append(out, CheckFileWith(fset, file, WarpAll)...)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// walkDir parses each .go file in dir (non-recursive, matching the package
// layout) and hands it to fn.
func walkDir(dir string, includeTests bool, fn func(*token.FileSet, *ast.File)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		fn(fset, file)
	}
	return nil
}
