package kernelcheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseForTest(src string) (*token.FileSet, *ast.File, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", []byte(src), parser.ParseComments)
	return fset, file, err
}

// checkWarp runs the advisory warp analyzer set (plus barrier, which is
// CFG-based too) over one fixture file.
func checkWarp(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := CheckSourceWith("fixture.go", []byte(src), append([]*Analyzer{BarrierAnalyzer}, WarpAll...))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return diags
}

func countRule(diags []Diagnostic, rule string) int {
	n := 0
	for _, d := range diags {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

// --- divergence -------------------------------------------------------------

func TestDivergenceDataPredicate(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, dist *BufI32) {
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	w.If(func(lane int) bool { return mine[lane] > 0 }, func() {
		w.StoreI32(dist, w.LaneIDs(), mine)
	}, nil)
}
`)
	if countRule(diags, "divergence") != 1 {
		t.Errorf("want 1 divergence finding, got %v", diags)
	}
}

func TestDivergenceLaneIDNotFlagged(t *testing.T) {
	// The leader idiom: lane-id-only predicates are bounded structural
	// divergence, not the paper's data-divergence pathology.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, out *BufI32) {
	w.If(func(lane int) bool { return lane == 0 }, func() {
		w.StoreI32(out, w.ConstI32(0), w.ConstI32(1))
	}, nil)
}
`)
	if countRule(diags, "divergence") != 0 {
		t.Errorf("lane-id predicate must not be flagged, got %v", diags)
	}
}

func TestDivergenceUniformPredicateNotFlagged(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, out *BufI32, enabled bool) {
	w.If(func(lane int) bool { return enabled }, func() {
		w.StoreI32(out, w.LaneIDs(), w.ConstI32(1))
	}, nil)
}
`)
	if countRule(diags, "divergence") != 0 {
		t.Errorf("uniform predicate must not be flagged, got %v", diags)
	}
}

func TestDivergenceWhileOnLoadedData(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, deg *BufI32) {
	d := w.VecI32()
	w.LoadI32(deg, w.LaneIDs(), d)
	w.While(func(lane int) bool { return d[lane] > 0 }, func() {
		w.Apply(1, func(lane int) { d[lane]-- })
	})
}
`)
	if countRule(diags, "divergence") != 1 {
		t.Errorf("want 1 divergence finding for data-bounded While, got %v", diags)
	}
}

func TestDivergenceSIMDRangeDegreeBounds(t *testing.T) {
	// The canonical neighbor-expansion shape: SIMDRange over per-task row
	// bounds loaded from the CSR — the paper's workload-imbalance case.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, rowPtr *BufI32) func(ts *Tasks) {
	return func(ts *Tasks) {
		start := make([]int32, 4)
		end := make([]int32, 4)
		ts.LoadI32Grouped(rowPtr, ts.Task, start)
		ts.LoadI32Grouped(rowPtr, ts.Task, end)
		ts.SIMDRange(start, end, func(j []int32) {
			_ = j
		})
	}
}
`)
	if countRule(diags, "divergence") != 1 {
		t.Errorf("want 1 divergence finding for degree-bounded SIMDRange, got %v", diags)
	}
}

func TestDivergenceIgnoreDirective(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, dist *BufI32) {
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	//kernelcheck:ignore divergence
	w.If(func(lane int) bool { return mine[lane] > 0 }, func() {
		w.StoreI32(dist, w.LaneIDs(), mine)
	}, nil)
}
`)
	if countRule(diags, "divergence") != 0 {
		t.Errorf("ignore directive must suppress the divergence finding, got %v", diags)
	}
}

// --- coalesce ---------------------------------------------------------------

func TestCoalesceIrregularGatherInLoop(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, adj, dist *BufI32) {
	nbr := w.VecI32()
	d := w.VecI32()
	w.LoadI32(adj, w.LaneIDs(), nbr)
	w.While(func(lane int) bool { return nbr[lane] >= 0 }, func() {
		w.LoadI32(adj, nbr, nbr)
		w.LoadI32(dist, nbr, d)
	})
}
`)
	if countRule(diags, "coalesce") == 0 {
		t.Errorf("want coalesce findings for irregular gathers in a loop, got %v", diags)
	}
}

func TestCoalesceUnitStrideClean(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, in, out *BufI32) {
	v := w.VecI32()
	for i := 0; i < 4; i++ {
		w.LoadI32(in, w.GlobalThreadIDs(), v)
		w.StoreI32(out, w.GlobalThreadIDs(), v)
	}
}
`)
	if countRule(diags, "coalesce") != 0 {
		t.Errorf("unit-stride access must not be flagged, got %v", diags)
	}
}

func TestCoalesceIrregularOutsideLoopClean(t *testing.T) {
	// A one-shot gather is not a hot path; only looping irregular access
	// is flagged.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, tbl, out *BufI32) {
	idx := w.VecI32()
	w.LoadI32(tbl, w.LaneIDs(), idx)
	w.LoadI32(tbl, idx, idx)
}
`)
	if countRule(diags, "coalesce") != 0 {
		t.Errorf("one-shot gather must not be flagged, got %v", diags)
	}
}

func TestCoalesceIgnoreDirective(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, adj *BufI32) {
	nbr := w.VecI32()
	w.While(func(lane int) bool { return nbr[lane] >= 0 }, func() {
		w.LoadI32(adj, nbr, nbr) //kernelcheck:ignore coalesce
	})
}
`)
	if countRule(diags, "coalesce") != 0 {
		t.Errorf("ignore directive must suppress the coalesce finding, got %v", diags)
	}
}

// --- atomicserial -----------------------------------------------------------

func TestAtomicSerialUniformTarget(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, count *BufI32) {
	old := w.VecI32()
	w.AtomicAddI32(count, w.ConstI32(0), w.ConstI32(1), old)
}
`)
	if countRule(diags, "atomicserial") != 1 {
		t.Errorf("want 1 atomicserial finding for uniform unguarded atomic, got %v", diags)
	}
}

func TestAtomicSerialLeaderGuardClean(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, count *BufI32) {
	old := w.VecI32()
	w.If(func(lane int) bool { return lane == 0 }, func() {
		w.AtomicAddI32(count, w.ConstI32(0), w.ConstI32(1), old)
	}, nil)
}
`)
	if countRule(diags, "atomicserial") != 0 {
		t.Errorf("leader-guarded atomic must not be flagged, got %v", diags)
	}
}

func TestAtomicSerialDataTargetInLoop(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, labels *BufI32) {
	nbr := w.VecI32()
	mine := w.VecI32()
	old := w.VecI32()
	w.While(func(lane int) bool { return nbr[lane] >= 0 }, func() {
		w.LoadI32(labels, nbr, nbr)
		w.AtomicMinI32(labels, nbr, mine, old)
	})
}
`)
	if countRule(diags, "atomicserial") != 1 {
		t.Errorf("want 1 atomicserial finding for colliding data-dependent atomic, got %v", diags)
	}
}

func TestAtomicSerialIgnoreDirective(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, count *BufI32) {
	old := w.VecI32()
	//kernelcheck:ignore atomicserial
	w.AtomicAddI32(count, w.ConstI32(0), w.ConstI32(1), old)
}
`)
	if countRule(diags, "atomicserial") != 0 {
		t.Errorf("ignore directive must suppress the atomicserial finding, got %v", diags)
	}
}

// --- barrier: the CFG rewrite's negative and positive fixtures --------------

func TestBarrierInHelperClosureFlagged(t *testing.T) {
	// The lexical PR 4 rule missed this: the barrier lives in a bound
	// helper closure, called from inside a divergent branch. The CFG
	// resolves the binding and inlines the call.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, dist *BufI32) {
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	sync := func() {
		w.SyncThreads()
	}
	w.If(func(lane int) bool { return mine[lane] > 0 }, func() {
		sync()
	}, nil)
}
`)
	if countRule(diags, "barrier") != 1 {
		t.Errorf("want 1 barrier finding through the helper closure, got %v", diags)
	}
}

func TestBarrierInUniformBranchClean(t *testing.T) {
	// The lexical rule's false positive: a barrier inside a warp If whose
	// predicate is warp-uniform — every lane takes the same side, so the
	// barrier executes under a full (or empty) mask.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, out *BufI32, phase2 bool) {
	w.If(func(lane int) bool { return phase2 }, func() {
		w.SyncThreads()
		w.StoreI32(out, w.LaneIDs(), w.ConstI32(1))
	}, nil)
}
`)
	if countRule(diags, "barrier") != 0 {
		t.Errorf("uniform-predicate branch barrier must not be flagged, got %v", diags)
	}
}

func TestBarrierInUniformGoIfClean(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, out *BufI32, rounds int) {
	if rounds > 1 {
		w.SyncThreads()
	}
}
`)
	if countRule(diags, "barrier") != 0 {
		t.Errorf("uniform Go-if barrier must not be flagged, got %v", diags)
	}
}

func TestBarrierUnderDataGoIfFlagged(t *testing.T) {
	// A Go-level branch on loaded data: different warps take different
	// sides and disagree on barrier counts.
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, flags *BufI32) {
	f := w.VecI32()
	w.LoadI32(flags, w.LaneIDs(), f)
	if f[0] > 0 {
		w.SyncThreads()
	}
}
`)
	if countRule(diags, "barrier") != 1 {
		t.Errorf("want 1 barrier finding under data-dependent Go if, got %v", diags)
	}
}

func TestBarrierIgnoreDirective(t *testing.T) {
	diags := checkWarp(t, `package k

func kern(w *WarpCtx, dist *BufI32) {
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	w.If(func(lane int) bool { return mine[lane] > 0 }, func() {
		w.SyncThreads() //kernelcheck:ignore barrier
	}, nil)
}
`)
	if countRule(diags, "barrier") != 0 {
		t.Errorf("ignore directive must suppress the barrier finding, got %v", diags)
	}
}

// --- closure-binding resolution (the set-then-call idiom) -------------------

func TestSetThenCallBindingResolved(t *testing.T) {
	// The gpualgo scratch idiom: closures bound to struct fields in a
	// factory, invoked by field through a construct in the kernel proper.
	diags := checkWarp(t, `package k

type scratch struct {
	pred func(lane int) bool
	body func()
}

func scratchFor(w *WarpCtx, dist *BufI32) *scratch {
	s := &scratch{}
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	s.pred = func(lane int) bool { return mine[lane] > 0 }
	s.body = func() {
		w.StoreI32(dist, w.LaneIDs(), mine)
	}
	return s
}

func kern(dist *BufI32) func(w *WarpCtx) {
	return func(w *WarpCtx) {
		s := scratchFor(w, dist)
		w.If(s.pred, s.body, nil)
	}
}
`)
	if countRule(diags, "divergence") != 1 {
		t.Errorf("want 1 divergence finding through the bound predicate, got %v", diags)
	}
}

// --- verdicts ---------------------------------------------------------------

func TestFileVerdicts(t *testing.T) {
	vs, err := sourceVerdicts(`package k

func cleanKern(w *WarpCtx, in, out *BufI32) {
	v := w.VecI32()
	w.LoadI32(in, w.GlobalThreadIDs(), v)
	w.StoreI32(out, w.GlobalThreadIDs(), v)
}

func divergentKern(w *WarpCtx, dist *BufI32) {
	mine := w.VecI32()
	w.LoadI32(dist, w.LaneIDs(), mine)
	w.While(func(lane int) bool { return mine[lane] > 0 }, func() {
		w.LoadI32(dist, mine, mine)
		old := w.VecI32()
		w.AtomicMinI32(dist, mine, mine, old)
	})
}

func scratchFactory(w *WarpCtx) int { return 0 }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("want 2 verdicts (factory filtered), got %+v", vs)
	}
	clean, div := vs[0], vs[1]
	if clean.Kernel != "cleanKern" || div.Kernel != "divergentKern" {
		t.Fatalf("verdict order: %+v", vs)
	}
	if clean.Divergence != "none" || clean.Coalesce != "unit" || clean.Atomics != "none" {
		t.Errorf("clean verdict: %+v", clean)
	}
	if div.Divergence != "data" || div.Loops != "imbalanced" || div.Coalesce != "irregular" || div.Atomics != "collide" {
		t.Errorf("divergent verdict: %+v", div)
	}
	if div.Findings == 0 {
		t.Errorf("divergent kernel should carry findings: %+v", div)
	}
}

func sourceVerdicts(src string) ([]KernelVerdict, error) {
	fset, file, err := parseForTest(src)
	if err != nil {
		return nil, err
	}
	return FileVerdicts(fset, file), nil
}

// --- CFG structure ----------------------------------------------------------

func TestCFGDominanceStructure(t *testing.T) {
	fset, file, err := parseForTest(`package k

func kern(w *WarpCtx, out *BufI32, enabled bool) {
	w.If(func(lane int) bool { return enabled }, func() {
		w.StoreI32(out, w.LaneIDs(), w.ConstI32(1))
	}, nil)
	w.SyncThreads()
}
`)
	if err != nil {
		t.Fatal(err)
	}
	fa := buildFileAnalysis(fset, file)
	if len(fa.reports) != 1 {
		t.Fatalf("want 1 CFG, got %d", len(fa.reports))
	}
	c := fa.reports[0].cfg
	idom := c.Dominators()
	if idom[c.Entry.ID] != c.Entry.ID {
		t.Errorf("entry must dominate itself")
	}
	// The barrier's block (after the If join) must NOT be control-dependent
	// on the If branch: both paths reach it.
	deps := c.ControlDeps()
	for _, b := range c.Blocks {
		for _, ev := range b.Events {
			if ev.Kind == EvBarrier && len(deps[b.ID]) != 0 {
				t.Errorf("post-join barrier block is control-dependent on %d guards", len(deps[b.ID]))
			}
		}
	}
}

func TestTaintStrideLattice(t *testing.T) {
	for _, tc := range []struct {
		a, b, want Stride
	}{
		{StrideUniform, StrideUnit, StrideUnit},
		{StrideUnit, StrideIrregular, StrideIrregular},
		{StrideStrided, StrideUnit, StrideStrided},
	} {
		got := class{stride: tc.a}.join(class{stride: tc.b}).stride
		if got != tc.want {
			t.Errorf("join(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
	if !strings.Contains(StrideIrregular.String(), "irregular") {
		t.Errorf("Stride.String: %v", StrideIrregular)
	}
}
