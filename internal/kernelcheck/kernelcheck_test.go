package kernelcheck

import (
	"strings"
	"testing"
)

// check runs the full analyzer set over one fixture file.
func check(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := CheckSource("fixture.go", []byte(src))
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return diags
}

func rules(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Rule)
	}
	return out
}

func wantRule(t *testing.T, diags []Diagnostic, rule string) {
	t.Helper()
	for _, d := range diags {
		if d.Rule == rule {
			return
		}
	}
	t.Errorf("missing finding %q; got %v", rule, diags)
}

func wantNone(t *testing.T, diags []Diagnostic) {
	t.Helper()
	if len(diags) != 0 {
		t.Errorf("expected no findings, got %v", diags)
	}
}

func TestNondetermRand(t *testing.T) {
	diags := check(t, `package k

import "math/rand"

func kern(w *WarpCtx) {
	v := rand.Intn(10)
	_ = v
}

func host() int { return rand.Intn(10) } // host code: fine
`)
	wantRule(t, diags, "nondeterm")
	if len(diags) != 1 {
		t.Errorf("want exactly 1 finding (host rand is fine), got %v", diags)
	}
}

func TestNondetermTimeAndGo(t *testing.T) {
	diags := check(t, `package k

import (
	"time"

	"maxwarp/internal/simt"
)

func kern(w *simt.WarpCtx) {
	t0 := time.Now()
	_ = time.Since(t0)
	go func() {}()
}
`)
	got := rules(diags)
	if len(got) != 3 {
		t.Fatalf("want 3 nondeterm findings (Now, Since, go), got %v", diags)
	}
}

func TestNondetermMapRange(t *testing.T) {
	diags := check(t, `package k

func kern(w *WarpCtx) {
	seen := make(map[int32]bool)
	seen[1] = true
	for k := range seen {
		_ = k
	}
	list := []int32{1, 2}
	for _, v := range list { // slice iteration: fine
		_ = v
	}
}
`)
	wantRule(t, diags, "nondeterm")
	if len(diags) != 1 {
		t.Errorf("want exactly 1 finding, got %v", diags)
	}
}

func TestBarrierInsideIf(t *testing.T) {
	diags := check(t, `package k

func kern(w *WarpCtx) {
	w.If(func(lane int) bool { return lane < 2 }, func() {
		w.SyncThreads()
	}, nil)
	w.While(func(lane int) bool { return lane%2 == 0 }, func() {
		w.SyncThreads()
	})
	w.SyncThreads() // top level: fine
}
`)
	count := 0
	for _, d := range diags {
		if d.Rule == "barrier" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want 2 barrier findings, got %v", diags)
	}
}

func TestBufAliasDataInKernel(t *testing.T) {
	diags := check(t, `package k

func kern(levels *BufI32) func(w *WarpCtx) {
	return func(w *WarpCtx) {
		raw := levels.Data()
		raw[0] = 1
	}
}
`)
	wantRule(t, diags, "bufalias")
}

func TestBufAliasHostAliasUsedInKernel(t *testing.T) {
	diags := check(t, `package k

func host(d *Device, levels *BufI32) {
	raw := levels.Data()
	d.Launch(lc, func(w *WarpCtx) {
		raw[0] = 1
	})
	_ = raw // host-side use after launch: not flagged twice
}
`)
	wantRule(t, diags, "bufalias")
	count := 0
	for _, d := range diags {
		if d.Rule == "bufalias" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("want exactly 1 bufalias finding, got %v", diags)
	}
}

func TestBufAliasHostOnlyIsClean(t *testing.T) {
	wantNone(t, check(t, `package k

func host(levels *BufI32) int32 {
	raw := levels.Data() // between launches: the supported host path
	return raw[0]
}
`))
}

func TestLoopCaptureEscaping(t *testing.T) {
	diags := check(t, `package k

func build(srcs []int32) []func(w *WarpCtx) {
	var kernels []func(w *WarpCtx)
	for _, s := range srcs {
		kernels = append(kernels, func(w *WarpCtx) {
			use(s)
		})
	}
	return kernels
}
`)
	wantRule(t, diags, "loopcapture")
}

func TestLoopCaptureDirectCallExempt(t *testing.T) {
	wantNone(t, check(t, `package k

func run(d *Device, srcs []int32) {
	for _, s := range srcs {
		d.Launch(lc, func(w *WarpCtx) {
			use(s) // launched synchronously this iteration: fine
		})
	}
}
`))
}

func TestSuppression(t *testing.T) {
	// Same-line and line-above forms, rule-scoped and wildcard.
	diags := check(t, `package k

import "math/rand"

func kern(w *WarpCtx) {
	_ = rand.Intn(10) //kernelcheck:ignore nondeterm
	//kernelcheck:ignore
	_ = rand.Intn(20)
	_ = rand.Intn(30) //kernelcheck:ignore barrier
}
`)
	if len(diags) != 1 {
		t.Fatalf("want exactly the wrong-rule suppression to survive, got %v", diags)
	}
	if diags[0].Pos.Line != 9 {
		t.Errorf("surviving finding at line %d, want 9", diags[0].Pos.Line)
	}
}

func TestDiagnosticString(t *testing.T) {
	diags := check(t, `package k

import "math/rand"

func kern(w *WarpCtx) { _ = rand.Intn(10) }
`)
	if len(diags) != 1 {
		t.Fatalf("got %v", diags)
	}
	s := diags[0].String()
	if !strings.Contains(s, "fixture.go:5") || !strings.Contains(s, "[nondeterm]") {
		t.Errorf("String() = %q", s)
	}
}
