// cfg.go builds a control-flow graph per kernel over *WarpCtx kernel bodies.
//
// The CFG is the substrate the warp-efficiency analyzers (warp.go) and the
// dominance-based barrier analyzer run on. It models two layers of control
// flow at once:
//
//   - plain Go control flow (if/for/range/switch/return/break/continue), and
//   - the simulator's structured warp constructs — WarpCtx.If/IfGrouped/
//     While, vwarp's Tasks.Mask/SIMDRange/GroupLoop and the ForEach* drivers
//     — whose "branch targets" are function values.
//
// Because this repo's kernels follow the set-then-call closure-caching idiom
// (closures built once, stored in scratch structs, invoked by field name),
// the builder resolves function-valued arguments through a file-wide binding
// table: `s.body = func(...){...}` binds "s.body" (and the bare field name as
// a fallback), and a later `ts.Mask(s.maskPred, s.maskBody)` inlines the
// bound literals into the caller's CFG. Same-file top-level kernel-context
// functions (functions taking a *WarpCtx) are inlined at call sites the same
// way, so a kernel like bfsLevelKernel — whose actual lane work lives in
// closures built by bfsScratchFor — still gets a complete CFG.
//
// Everything is syntactic (stdlib go/ast only, no go/types): resolution is
// by name, recursion is cut by an inlining guard, and unresolvable calls are
// treated as opaque. The analyzers are linters, not verifiers — they accept
// this approximation and the validation harness (TestWarplintPredictions)
// cross-checks the verdicts against the simulator's measured counters.
package kernelcheck

import (
	"go/ast"
	"go/token"
)

// GuardKind classifies the branch/loop constructs a block can be governed by.
type GuardKind int

const (
	// GuardGoIf is a plain Go if or switch: the whole warp (host goroutine)
	// takes one side. Divergence hazard only when the condition is
	// lane-dependent (different warps branch differently).
	GuardGoIf GuardKind = iota
	// GuardGoFor is a plain Go for/range loop.
	GuardGoFor
	// GuardWarpIf is WarpCtx.If/IfGrouped or Tasks.Mask: the body runs under
	// a restricted lane mask.
	GuardWarpIf
	// GuardWarpWhile is WarpCtx.While: lanes drop out as their condition
	// fails — the paper's intra-warp workload-imbalance mechanism.
	GuardWarpWhile
	// GuardSIMDRange is Tasks.SIMDRange/GroupLoop: a masked lane-strided
	// loop over per-group [start, end) bounds.
	GuardSIMDRange
	// GuardDriver is a vwarp ForEach* round loop: warps run different round
	// counts (task availability varies per warp), so code under it is
	// never block-uniform even though no user predicate is involved.
	GuardDriver
)

// PredClass classifies a guard's condition by what it reads (see taint.go).
type PredClass int

const (
	// PredUniform reads only warp-uniform state: every lane (and every warp
	// seeing the same host values) takes the same side.
	PredUniform PredClass = iota
	// PredLaneID depends on the lane/group id but not on loaded data — the
	// structural "if (lane == 0)" leader idiom. Divergent within the warp,
	// but statically bounded and uniform across warps.
	PredLaneID
	// PredData depends on lane-dependent data (per-lane loads, atomics'
	// old values, per-group tasks): the paper's divergence pathology.
	PredData
)

func (p PredClass) String() string {
	switch p {
	case PredUniform:
		return "uniform"
	case PredLaneID:
		return "laneid"
	default:
		return "data"
	}
}

// Guard is one branch or loop construct governing a CFG region.
type Guard struct {
	Kind GuardKind
	// Pos is the construct's source position (the call or the if/for token).
	Pos token.Pos
	// Desc names the construct for messages: "w.If", "ts.SIMDRange", "if"...
	Desc string
	// Cond is the predicate closure (warp constructs) or condition
	// expression (Go constructs); nil for drivers and condition-less loops.
	Cond ast.Node
	// Bounds are the trip-count expressions of a SIMDRange/GroupLoop.
	Bounds []ast.Expr
	// Loop marks constructs whose body may execute more than once.
	Loop bool
	// Class is the condition's taint classification, filled by the taint
	// pass. Drivers are always PredData (round counts differ per warp).
	Class PredClass
}

// EventKind classifies the kernel-primitive calls recorded in blocks.
type EventKind int

const (
	// EvLoad is a plain global/shared load (LoadI32, LoadF32, ...).
	EvLoad EventKind = iota
	// EvStore is a plain global/shared store.
	EvStore
	// EvAtomic is an atomic RMW (AtomicAddI32, AtomicMinI32, ...).
	EvAtomic
	// EvBarrier is SyncThreads/Barrier.
	EvBarrier
)

// Event is one interesting primitive call, positioned in its block.
type Event struct {
	Kind EventKind
	Call *ast.CallExpr
	// Name is the method name ("LoadI32", "AtomicAddI32", "SyncThreads").
	Name string
	// Recv is the receiver expression text ("w", "ts", ...).
	Recv string
	// Idx is the index-vector argument of a memory/atomic op (nil for
	// barriers); Grouped marks the replicated per-group variants.
	Idx     ast.Expr
	Grouped bool
	// Shared marks shared-memory accesses (LoadSharedI32, AtomicAddSharedI32).
	Shared bool
}

// Block is one CFG basic block.
type Block struct {
	ID int
	// Events are the primitive calls executed in this block, in order.
	Events []Event
	// Succs are the control-flow successors.
	Succs []*Block
	// Guards is the construction-time stack of enclosing guards (outermost
	// first). For the structured CFGs this builder produces it coincides
	// with the control-dependence closure — ControlDeps computes the latter
	// from dominance frontiers, and the barrier analyzer consumes that.
	Guards []*Guard
	// BranchGuard is the guard this block branches on (it has >1 successor
	// because of it), nil otherwise.
	BranchGuard *Guard
}

// CFG is one kernel's control-flow graph.
type CFG struct {
	// Name is the root function's name (top-level FuncDecl).
	Name string
	// Pos is the root function's position.
	Pos token.Pos
	// Entry and Exit are the virtual boundary blocks.
	Entry, Exit *Block
	// Blocks lists every block, Entry first.
	Blocks []*Block
	// Guards lists every guard created while building, in source order of
	// first encounter (a guard inlined into two call sites appears once per
	// inlining).
	Guards []*Guard
	// Truncated is set when the inlining depth limit was hit somewhere —
	// the CFG is still usable but may be missing inlined regions.
	Truncated bool
}

// maxInlineDepth bounds closure/function inlining (recursion is cut by the
// active-set guard; the depth limit bounds pathological chains).
const maxInlineDepth = 12

// constructArity describes how a known warp construct consumes its args.
type construct struct {
	// pred is the index of the predicate/condition closure arg, -1 if none.
	pred int
	// bodies are the indices of body closure args.
	bodies []int
	// bounds are the indices of trip-count vector args (SIMDRange).
	bounds []int
	// kind/loop describe the guard to create; guarded=false means the
	// bodies are inlined straight-line (Apply, SISD, ...).
	kind    GuardKind
	loop    bool
	guarded bool
}

// constructs maps method names to their structural behavior. Receiver types
// are unknown (no go/types), so names are matched on any receiver — the
// names are specific enough in this codebase.
var constructs = map[string]construct{
	"If":        {pred: 0, bodies: []int{1, 2}, kind: GuardWarpIf, guarded: true},
	"IfGrouped": {pred: 1, bodies: []int{2, 3}, kind: GuardWarpIf, guarded: true},
	"While":     {pred: 0, bodies: []int{1}, kind: GuardWarpWhile, loop: true, guarded: true},
	"Mask":      {pred: 0, bodies: []int{1}, kind: GuardWarpIf, guarded: true},
	"SIMDRange": {pred: -1, bodies: []int{2}, bounds: []int{0, 1}, kind: GuardSIMDRange, loop: true, guarded: true},
	"GroupLoop": {pred: -1, bodies: []int{2}, bounds: []int{0, 1}, kind: GuardSIMDRange, loop: true, guarded: true},

	// Straight-line per-lane/per-group executors: bodies run under the
	// current mask, no new guard.
	"Apply":           {pred: -1, bodies: []int{1}},
	"ApplyReplicated": {pred: -1, bodies: []int{2}},
	"SISD":            {pred: -1, bodies: []int{1}},
	"Ballot":          {pred: -1, bodies: []int{0}},

	// vwarp drivers: body runs in a round loop whose trip count varies per
	// warp. The guard is "intrinsic": the divergence analyzer does not
	// blame the kernel for it, but barriers under it are real hazards.
	"ForEachStatic":        {pred: -1, bodies: []int{3}, kind: GuardDriver, loop: true, guarded: true},
	"ForEachStaticBlocked": {pred: -1, bodies: []int{3}, kind: GuardDriver, loop: true, guarded: true},
	"ForEachDynamic":       {pred: -1, bodies: []int{5}, kind: GuardDriver, loop: true, guarded: true},
	"ForEachDeferred":      {pred: -1, bodies: []int{4}, kind: GuardDriver, loop: true, guarded: true},
}

// memOps maps memory-primitive names to their event shape. idx is the
// index-vector argument position.
type memOp struct {
	kind    EventKind
	idx     int
	grouped bool
	shared  bool
}

var memOps = map[string]memOp{
	"LoadI32":           {kind: EvLoad, idx: 1},
	"LoadF32":           {kind: EvLoad, idx: 1},
	"StoreI32":          {kind: EvStore, idx: 1},
	"StoreF32":          {kind: EvStore, idx: 1},
	"LoadI32Replicated": {kind: EvLoad, idx: 2, grouped: true},
	"LoadI32Grouped":    {kind: EvLoad, idx: 1, grouped: true},
	"LoadF32Grouped":    {kind: EvLoad, idx: 1, grouped: true},
	"StoreI32Grouped":   {kind: EvStore, idx: 1, grouped: true},
	"StoreF32Grouped":   {kind: EvStore, idx: 1, grouped: true},
	"LoadSharedI32":     {kind: EvLoad, idx: 1, shared: true},
	"StoreSharedI32":    {kind: EvStore, idx: 1, shared: true},

	"AtomicAddI32":       {kind: EvAtomic, idx: 1},
	"AtomicMinI32":       {kind: EvAtomic, idx: 1},
	"AtomicCASI32":       {kind: EvAtomic, idx: 1},
	"AtomicOrI32":        {kind: EvAtomic, idx: 1},
	"AtomicExchI32":      {kind: EvAtomic, idx: 1},
	"AtomicAddF32":       {kind: EvAtomic, idx: 1},
	"AtomicAddGrouped":   {kind: EvAtomic, idx: 1, grouped: true},
	"AtomicAddSharedI32": {kind: EvAtomic, idx: 1, shared: true},
}

// bindings is the file-wide closure-binding table: "s.body" (and fallback
// "#body") or "name" -> bound function literal. Last binding wins.
type bindings struct {
	byKey map[string]*ast.FuncLit
	// decls maps top-level function names to their declarations.
	decls map[string]*ast.FuncDecl
}

// collectBindings walks the file once gathering closure bindings and
// top-level function declarations.
func collectBindings(file *ast.File) *bindings {
	b := &bindings{byKey: make(map[string]*ast.FuncLit), decls: make(map[string]*ast.FuncDecl)}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			b.decls[fd.Name.Name] = fd
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				fl, ok := n.Rhs[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				switch l := lhs.(type) {
				case *ast.Ident:
					b.byKey[l.Name] = fl
				case *ast.SelectorExpr:
					b.byKey[exprText(l)] = fl
					b.byKey["#"+l.Sel.Name] = fl
				}
			}
		case *ast.ValueSpec:
			for i, v := range n.Values {
				if fl, ok := v.(*ast.FuncLit); ok && i < len(n.Names) {
					b.byKey[n.Names[i].Name] = fl
				}
			}
		case *ast.KeyValueExpr:
			// struct literal fields: Field: func(...){...}
			if fl, ok := n.Value.(*ast.FuncLit); ok {
				if id, ok := n.Key.(*ast.Ident); ok {
					b.byKey["#"+id.Name] = fl
				}
			}
		}
		return true
	})
	return b
}

// resolveFn maps a function-valued argument to a literal: a FuncLit
// directly, or an Ident/Selector through the binding table. Returns nil for
// nil literals ("nil" else branches) and unresolvable expressions.
func (b *bindings) resolveFn(e ast.Expr) *ast.FuncLit {
	switch e := e.(type) {
	case *ast.FuncLit:
		return e
	case *ast.Ident:
		if e.Name == "nil" {
			return nil
		}
		return b.byKey[e.Name]
	case *ast.SelectorExpr:
		if fl, ok := b.byKey[exprText(e)]; ok {
			return fl
		}
		return b.byKey["#"+e.Sel.Name]
	}
	return nil
}

// cfgBuilder holds the state of one kernel CFG construction.
type cfgBuilder struct {
	fset  *token.FileSet
	binds *bindings
	cfg   *CFG
	cur   *Block
	// guards is the construction-time guard stack.
	guards []*Guard
	// active guards recursion during inlining (FuncLits and FuncDecls).
	active map[ast.Node]bool
	depth  int
	// loops tracks Go loop nesting for break/continue edges.
	loops []goLoop
}

type goLoop struct {
	header, exit *Block
	label        string
}

// BuildCFG constructs the CFG rooted at a top-level function declaration.
// binds must come from collectBindings on the same file.
func BuildCFG(fset *token.FileSet, fd *ast.FuncDecl, binds *bindings) *CFG {
	b := &cfgBuilder{
		fset:   fset,
		binds:  binds,
		cfg:    &CFG{Name: fd.Name.Name, Pos: fd.Pos()},
		active: map[ast.Node]bool{fd: true},
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = &Block{ID: -1}
	b.cur = b.cfg.Entry
	b.walkStmt(fd.Body)
	b.edge(b.cur, b.cfg.Exit)
	b.cfg.Exit.ID = len(b.cfg.Blocks)
	b.cfg.Blocks = append(b.cfg.Blocks, b.cfg.Exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{ID: len(b.cfg.Blocks)}
	bl.Guards = append([]*Guard(nil), b.guards...)
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// --- statement walk ---------------------------------------------------------

func (b *cfgBuilder) walkStmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.walkStmt(st)
		}
	case *ast.ExprStmt:
		b.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			b.walkExpr(r)
		}
		for _, l := range s.Lhs {
			b.walkExpr(l)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.walkExpr(v)
					}
				}
			}
		}
	case *ast.IfStmt:
		b.walkStmt(s.Init)
		b.walkExpr(s.Cond)
		g := &Guard{Kind: GuardGoIf, Pos: s.Pos(), Desc: "if", Cond: s.Cond}
		b.cfg.Guards = append(b.cfg.Guards, g)
		branch := b.cur
		branch.BranchGuard = g
		join := &Block{}
		b.guards = append(b.guards, g)
		// then
		thenEntry := b.newBlock()
		b.edge(branch, thenEntry)
		b.cur = thenEntry
		b.walkStmt(s.Body)
		thenEnd := b.cur
		// else
		var elseEnd *Block
		if s.Else != nil {
			elseEntry := b.newBlock()
			b.edge(branch, elseEntry)
			b.cur = elseEntry
			b.walkStmt(s.Else)
			elseEnd = b.cur
		}
		b.guards = b.guards[:len(b.guards)-1]
		j := b.newBlockAs(join)
		b.edge(thenEnd, j)
		if elseEnd != nil {
			b.edge(elseEnd, j)
		} else {
			b.edge(branch, j)
		}
		b.cur = j
	case *ast.ForStmt:
		b.walkStmt(s.Init)
		b.goLoopBody(s.Cond, "for", func() {
			b.walkStmt(s.Body)
			b.walkStmt(s.Post)
		}, labelOf(s))
	case *ast.RangeStmt:
		b.walkExpr(s.X)
		b.goLoopBody(nil, "range", func() { b.walkStmt(s.Body) }, labelOf(s))
	case *ast.SwitchStmt:
		b.walkStmt(s.Init)
		b.walkExpr(s.Tag)
		b.switchBody(s.Pos(), s.Tag, bodyLists(s.Body))
	case *ast.TypeSwitchStmt:
		b.walkStmt(s.Init)
		b.switchBody(s.Pos(), nil, bodyLists(s.Body))
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.walkExpr(r)
		}
		b.edge(b.cur, b.cfg.Exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.walkStmt(s.Stmt)
	case *ast.GoStmt:
		b.walkExpr(s.Call)
	case *ast.DeferStmt:
		b.walkExpr(s.Call)
	case *ast.SendStmt:
		b.walkExpr(s.Chan)
		b.walkExpr(s.Value)
	case *ast.IncDecStmt:
		b.walkExpr(s.X)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, st := range cc.Body {
					b.walkStmt(st)
				}
			}
		}
	}
}

// newBlockAs registers a pre-allocated block (used for join blocks created
// before their guard scope closes, so they carry the outer guard stack).
func (b *cfgBuilder) newBlockAs(bl *Block) *Block {
	bl.ID = len(b.cfg.Blocks)
	bl.Guards = append([]*Guard(nil), b.guards...)
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func labelOf(s ast.Stmt) string { return "" } // labels resolved approximately

// goLoopBody builds header -> body -> header / header -> exit for a Go loop.
func (b *cfgBuilder) goLoopBody(cond ast.Expr, desc string, body func(), label string) {
	g := &Guard{Kind: GuardGoFor, Pos: b.posOr(cond), Desc: desc, Cond: cond, Loop: true}
	b.cfg.Guards = append(b.cfg.Guards, g)
	header := b.newBlock()
	b.edge(b.cur, header)
	header.BranchGuard = g
	if cond != nil {
		b.cur = header
		b.walkExpr(cond)
	}
	exit := &Block{}
	b.loops = append(b.loops, goLoop{header: header, exit: exit, label: label})
	b.guards = append(b.guards, g)
	bodyEntry := b.newBlock()
	b.edge(header, bodyEntry)
	b.cur = bodyEntry
	body()
	b.edge(b.cur, header)
	b.guards = b.guards[:len(b.guards)-1]
	b.loops = b.loops[:len(b.loops)-1]
	e := b.newBlockAs(exit)
	b.edge(header, e)
	b.cur = e
}

func (b *cfgBuilder) posOr(e ast.Expr) token.Pos {
	if e != nil {
		return e.Pos()
	}
	return token.NoPos
}

func bodyLists(body *ast.BlockStmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			out = append(out, cc.Body)
		}
	}
	return out
}

func (b *cfgBuilder) switchBody(pos token.Pos, cond ast.Expr, cases [][]ast.Stmt) {
	g := &Guard{Kind: GuardGoIf, Pos: pos, Desc: "switch", Cond: cond}
	b.cfg.Guards = append(b.cfg.Guards, g)
	branch := b.cur
	branch.BranchGuard = g
	join := &Block{}
	b.guards = append(b.guards, g)
	for _, stmts := range cases {
		entry := b.newBlock()
		b.edge(branch, entry)
		b.cur = entry
		for _, st := range stmts {
			b.walkStmt(st)
		}
		b.edge(b.cur, join)
	}
	b.guards = b.guards[:len(b.guards)-1]
	j := b.newBlockAs(join)
	b.edge(branch, j) // default/no-match path
	b.cur = j
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	if len(b.loops) == 0 {
		return
	}
	top := b.loops[len(b.loops)-1]
	switch s.Tok {
	case token.BREAK:
		b.edge(b.cur, top.exit)
		b.cur = b.newBlock()
	case token.CONTINUE:
		b.edge(b.cur, top.header)
		b.cur = b.newBlock()
	}
}

// --- expression walk --------------------------------------------------------

// walkExpr descends into an expression, handling warp-construct calls
// structurally and recording primitive events.
func (b *cfgBuilder) walkExpr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		b.walkCall(e)
	case *ast.FuncLit:
		// A bare kernel literal in expression position (typically `return
		// func(w *WarpCtx) {...}` or a `func(t *Tasks)` driver body) IS
		// kernel code: inline it. Other literals are bindings — they
		// execute at their resolved call sites.
		if isKernelishFuncType(e.Type) {
			b.inline(e)
		}
	case *ast.ParenExpr:
		b.walkExpr(e.X)
	case *ast.UnaryExpr:
		b.walkExpr(e.X)
	case *ast.BinaryExpr:
		b.walkExpr(e.X)
		b.walkExpr(e.Y)
	case *ast.IndexExpr:
		b.walkExpr(e.X)
		b.walkExpr(e.Index)
	case *ast.SliceExpr:
		b.walkExpr(e.X)
	case *ast.SelectorExpr:
		b.walkExpr(e.X)
	case *ast.StarExpr:
		b.walkExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			b.walkExpr(el)
		}
	case *ast.KeyValueExpr:
		b.walkExpr(e.Value)
	case *ast.TypeAssertExpr:
		b.walkExpr(e.X)
	}
}

// walkCall dispatches one call expression: construct, primitive event,
// resolvable closure/function call, or opaque.
func (b *cfgBuilder) walkCall(call *ast.CallExpr) {
	name, recv := calleeName(call)

	// Known structured construct?
	if c, ok := constructs[name]; ok && b.looksLikeConstruct(call, c) {
		b.walkConstruct(call, name, recv, c)
		return
	}

	// Memory/atomic primitive?
	if m, ok := memOps[name]; ok && m.idx < len(call.Args) {
		for _, a := range call.Args {
			b.walkExpr(a)
		}
		b.cur.Events = append(b.cur.Events, Event{
			Kind: m.kind, Call: call, Name: name, Recv: recv,
			Idx: call.Args[m.idx], Grouped: m.grouped, Shared: m.shared,
		})
		return
	}

	// Barrier?
	if name == "SyncThreads" || name == "Barrier" {
		b.cur.Events = append(b.cur.Events, Event{Kind: EvBarrier, Call: call, Name: name, Recv: recv})
		return
	}

	// Walk arguments first (they evaluate before the call).
	for _, a := range call.Args {
		b.walkExpr(a)
	}

	// Direct call of a bound closure: s.expand(), relax(...)?
	if fl := b.binds.resolveFn(call.Fun); fl != nil {
		b.inline(fl)
		return
	}
	// Same-file top-level kernel-context function: bfsScratchFor(w).
	if id, ok := call.Fun.(*ast.Ident); ok {
		if fd, ok := b.binds.decls[id.Name]; ok && isKernelishFuncType(fd.Type) {
			b.inlineDecl(fd)
			return
		}
	}
	b.walkExpr(call.Fun)
}

// looksLikeConstruct sanity-checks arity so an unrelated method that happens
// to share a construct name is not misparsed.
func (b *cfgBuilder) looksLikeConstruct(call *ast.CallExpr, c construct) bool {
	max := c.pred
	for _, i := range c.bodies {
		if i > max {
			max = i
		}
	}
	for _, i := range c.bounds {
		if i > max {
			max = i
		}
	}
	return max < len(call.Args)
}

// walkConstruct builds the CFG region for one structured warp construct.
func (b *cfgBuilder) walkConstruct(call *ast.CallExpr, name, recv string, c construct) {
	// Evaluate non-body arguments (bounds vectors, counters, ...).
	bodySet := make(map[int]bool, len(c.bodies))
	for _, i := range c.bodies {
		bodySet[i] = true
	}
	for i, a := range call.Args {
		if !bodySet[i] && i != c.pred {
			b.walkExpr(a)
		}
	}

	// The predicate closure executes per lane under the current mask.
	var cond ast.Node
	if c.pred >= 0 && c.pred < len(call.Args) {
		if fl := b.binds.resolveFn(call.Args[c.pred]); fl != nil {
			cond = fl
			b.inlineStraight(fl)
		} else {
			cond = call.Args[c.pred]
		}
	}

	var bodies []*ast.FuncLit
	for _, i := range c.bodies {
		if i < len(call.Args) {
			bodies = append(bodies, b.binds.resolveFn(call.Args[i]))
		} else {
			bodies = append(bodies, nil)
		}
	}

	if !c.guarded {
		// Straight-line executor: inline bodies under the current guards.
		for _, fl := range bodies {
			if fl != nil {
				b.inline(fl)
			}
		}
		return
	}

	g := &Guard{
		Kind: c.kind, Pos: call.Pos(), Desc: recvDot(recv, name),
		Cond: cond, Loop: c.loop,
	}
	for _, i := range c.bounds {
		if i < len(call.Args) {
			g.Bounds = append(g.Bounds, call.Args[i])
		}
	}
	if c.kind == GuardDriver {
		g.Class = PredData // round counts vary per warp by construction
	}
	b.cfg.Guards = append(b.cfg.Guards, g)

	branch := b.cur
	branch.BranchGuard = g
	join := &Block{}
	b.guards = append(b.guards, g)
	anyBody := false
	for _, fl := range bodies {
		if fl == nil {
			continue
		}
		anyBody = true
		entry := b.newBlock()
		b.edge(branch, entry)
		b.cur = entry
		b.inline(fl)
		if c.loop {
			b.edge(b.cur, entry) // back edge: body may repeat
		}
		b.edge(b.cur, join)
	}
	b.guards = b.guards[:len(b.guards)-1]
	j := b.newBlockAs(join)
	// The skip path: no lane passes / no task this round.
	b.edge(branch, j)
	_ = anyBody
	b.cur = j
}

// inline walks a function literal's body into the current position.
func (b *cfgBuilder) inline(fl *ast.FuncLit) {
	if b.active[fl] || b.depth >= maxInlineDepth {
		if b.depth >= maxInlineDepth {
			b.cfg.Truncated = true
		}
		return
	}
	b.active[fl] = true
	b.depth++
	b.walkStmt(fl.Body)
	b.depth--
	delete(b.active, fl)
}

// inlineStraight walks a predicate closure: its body executes (per lane)
// but contributes no control structure of its own.
func (b *cfgBuilder) inlineStraight(fl *ast.FuncLit) { b.inline(fl) }

// inlineDecl inlines a same-file top-level function's body.
func (b *cfgBuilder) inlineDecl(fd *ast.FuncDecl) {
	if b.active[fd] || b.depth >= maxInlineDepth {
		if b.depth >= maxInlineDepth {
			b.cfg.Truncated = true
		}
		return
	}
	b.active[fd] = true
	b.depth++
	b.walkStmt(fd.Body)
	b.depth--
	delete(b.active, fd)
}

// isKernelishFuncType reports whether the signature marks kernel-context
// code: it takes a *WarpCtx (the PR 4 definition) or a *vwarp.Tasks (driver
// body closures — they only ever execute inside a launched kernel).
func isKernelishFuncType(ft *ast.FuncType) bool {
	if isKernelFuncType(ft) {
		return true
	}
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		star, ok := f.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		switch t := star.X.(type) {
		case *ast.Ident:
			if t.Name == "Tasks" {
				return true
			}
		case *ast.SelectorExpr:
			if t.Sel.Name == "Tasks" {
				return true
			}
		}
	}
	return false
}

// calleeName splits a call into (method name, receiver text). Plain calls
// return ("name", "").
func calleeName(call *ast.CallExpr) (string, string) {
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		return f.Sel.Name, exprText(f.X)
	case *ast.Ident:
		return f.Name, ""
	}
	return "", ""
}

func recvDot(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}

// --- dominance --------------------------------------------------------------

// Dominators computes the immediate-dominator relation of the CFG with the
// classic iterative dataflow (Cooper/Harvey/Kennedy shape, on block IDs).
// idom[Entry] = Entry; unreachable blocks get idom -1.
func (c *CFG) Dominators() []int {
	return dominators(c.Blocks, c.Entry, func(b *Block) []*Block { return b.Succs })
}

// PostDominators computes immediate post-dominators over the reversed CFG,
// rooted at Exit.
func (c *CFG) PostDominators() []int {
	preds := make([][]*Block, len(c.Blocks))
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			preds[s.ID] = append(preds[s.ID], b)
		}
	}
	return dominators(c.Blocks, c.Exit, func(b *Block) []*Block { return preds[b.ID] })
}

func dominators(blocks []*Block, root *Block, succs func(*Block) []*Block) []int {
	n := len(blocks)
	// Reverse postorder from root over succs.
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(*Block)
	var stack []*Block
	dfs = func(b *Block) {
		seen[b.ID] = true
		for _, s := range succs(b) {
			if !seen[s.ID] {
				dfs(s)
			}
		}
		stack = append(stack, b)
	}
	dfs(root)
	for i := len(stack) - 1; i >= 0; i-- {
		order = append(order, stack[i])
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b.ID] = i
	}
	preds := make([][]*Block, n)
	for _, b := range blocks {
		if !seen[b.ID] {
			continue
		}
		for _, s := range succs(b) {
			preds[s.ID] = append(preds[s.ID], b)
		}
	}
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[root.ID] = root.ID
	intersect := func(a, bb int) int {
		for a != bb {
			for rpoNum[a] > rpoNum[bb] {
				a = idom[a]
			}
			for rpoNum[bb] > rpoNum[a] {
				bb = idom[bb]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == root {
				continue
			}
			newIdom := -1
			for _, p := range preds[b.ID] {
				if idom[p.ID] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p.ID
				} else {
					newIdom = intersect(newIdom, p.ID)
				}
			}
			if newIdom != -1 && idom[b.ID] != newIdom {
				idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// ControlDeps returns, per block, the set of branch blocks the block is
// (transitively) control-dependent on, computed from the post-dominator
// relation: b is directly control-dependent on branch d when d has a
// successor from which b post-dominates the path but b does not post-
// dominate d itself (Ferrante-Ottenstein-Warren via post-dominance walk).
// The transitive closure folds in the dependences of the controlling
// branches, which for this builder's structured CFGs reproduces the
// construction-time guard stack — the barrier analyzer consumes this, not
// the stack, so the dominance machinery is what decides.
func (c *CFG) ControlDeps() [][]*Block {
	n := len(c.Blocks)
	pidom := c.PostDominators()
	direct := make([][]*Block, n)
	// postdominates reports whether a post-dominates b (walk b's pidom chain).
	postdominates := func(a, bID int) bool {
		for x := bID; ; {
			if x == a {
				return true
			}
			next := pidom[x]
			if next == -1 || next == x {
				return x == a
			}
			x = next
		}
	}
	for _, d := range c.Blocks {
		if len(d.Succs) < 2 {
			continue
		}
		for _, s := range d.Succs {
			// Walk the post-dominator chain from s up to (exclusive) d's
			// post-dominator: every node on it is control-dependent on d.
			stop := pidom[d.ID]
			for x := s.ID; x != -1 && x != stop; {
				if x != d.ID {
					direct[x] = append(direct[x], d)
				}
				next := pidom[x]
				if next == x {
					break
				}
				x = next
			}
		}
	}
	_ = postdominates
	// Transitive closure (small graphs; fixpoint is fine).
	out := make([][]*Block, n)
	for i := range out {
		seen := map[int]bool{}
		var add func(int)
		add = func(id int) {
			for _, d := range direct[id] {
				if !seen[d.ID] {
					seen[d.ID] = true
					out[i] = append(out[i], d)
					add(d.ID)
				}
			}
		}
		add(i)
	}
	return out
}
