package kernelcheck

import (
	"go/ast"
	"go/token"
	"strings"
)

// NondetermAnalyzer flags host nondeterminism inside kernel bodies: the
// simulator replays kernels under tracing, fault-injection retry, and the
// sanitizer, and differential tests compare runs bit-for-bit — a kernel that
// draws from math/rand, reads the clock, iterates a map, or spawns a
// goroutine breaks all of that.
var NondetermAnalyzer = &Analyzer{
	Name: "nondeterm",
	Doc:  "flags math/rand, time.Now/Since/Until, map iteration, and go statements in kernels",
	Run:  runNondeterm,
}

func runNondeterm(p *Pass) {
	randPkgs := make(map[string]bool)
	timePkgs := make(map[string]bool)
	for _, imp := range p.File.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		var name string
		switch path {
		case "math/rand", "math/rand/v2":
			name = "rand"
		case "time":
			name = "time"
		default:
			continue
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if path == "time" {
			timePkgs[name] = true
		} else {
			randPkgs[name] = true
		}
	}
	for _, body := range kernelBodies(p.File) {
		mapVars := collectMapVars(body)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				p.Reportf(n.Pos(), "kernel spawns a goroutine: kernels must stay single-goroutine deterministic code")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkg, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				if randPkgs[pkg.Name] {
					p.Reportf(n.Pos(), "kernel calls %s.%s: math/rand makes replayed launches diverge; precompute random data on the host and upload it", pkg.Name, sel.Sel.Name)
				}
				if timePkgs[pkg.Name] {
					switch sel.Sel.Name {
					case "Now", "Since", "Until":
						p.Reportf(n.Pos(), "kernel calls %s.%s: wall-clock reads make replayed launches diverge; use LaunchStats.Cycles for timing", pkg.Name, sel.Sel.Name)
					}
				}
			case *ast.RangeStmt:
				if id, ok := n.X.(*ast.Ident); ok && mapVars[id.Name] {
					p.Reportf(n.Pos(), "kernel ranges over map %q: map iteration order is nondeterministic; iterate a sorted slice instead", id.Name)
				}
			}
			return true
		})
	}
}

// collectMapVars gathers names that are locally, syntactically map-typed
// (make(map...), map literal, or var with a map type). A heuristic — without
// type checking we cannot see maps that arrive through calls or captures.
func collectMapVars(body ast.Node) map[string]bool {
	vars := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if ok && isMapExpr(n.Rhs[i]) {
					vars[id.Name] = true
				}
			}
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, id := range n.Names {
					vars[id.Name] = true
				}
			}
			for i, v := range n.Values {
				if i < len(n.Names) && isMapExpr(v) {
					vars[n.Names[i].Name] = true
				}
			}
		}
		return true
	})
	return vars
}

func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// BarrierAnalyzer flags SyncThreads/Barrier calls that are control-
// dependent on divergent control flow, computed on the kernel CFG (cfg.go):
// a barrier under a restricted or warp-varying mask is the classic
// synccheck hazard and can deadlock the block when whole warps skip it.
// Unlike the PR 4 lexical rule this sees through helper closures (the CFG
// inlines resolvable closure bindings and same-file kernel functions) and
// does not flag barriers in branches whose predicate is warp-uniform.
var BarrierAnalyzer = &Analyzer{
	Name: "barrier",
	Doc:  "flags SyncThreads/Barrier control-dependent on divergent control flow (CFG dominance analysis)",
	Run:  func(p *Pass) { reportRule(p, "barrier") },
}

// BufAliasAnalyzer flags raw access to a device buffer's backing slice from
// kernel code: Data() hands out the host-side array, which bypasses the
// launch memory model (frozen base, per-SM store shadows, atomic overlay)
// and charges no simulated cycles. Kernels must go through the WarpCtx
// Load/Store/Atomic primitives.
var BufAliasAnalyzer = &Analyzer{
	Name: "bufalias",
	Doc:  "flags Data() calls in kernels and kernel uses of host Data() aliases",
	Run:  runBufAlias,
}

func runBufAlias(p *Pass) {
	kernels := kernelBodies(p.File)
	inKernel := func(pos token.Pos) bool {
		for _, b := range kernels {
			if b.Pos() <= pos && pos <= b.End() {
				return true
			}
		}
		return false
	}

	for _, body := range kernels {
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if ok && sel.Sel.Name == "Data" && len(call.Args) == 0 {
				p.Reportf(call.Pos(), "kernel calls %s.Data(): raw backing-slice access bypasses the launch memory model; use the Load/Store/Atomic primitives", exprText(sel.X))
			}
			return true
		})
	}

	// Host code binding v := buf.Data() and a kernel literal in the same
	// function using v: the kernel reads/writes through a host alias.
	ast.Inspect(p.File, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			return true
		}
		aliases := make(map[string]bool)
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			as, ok := m.(*ast.AssignStmt)
			if !ok || inKernel(as.Pos()) {
				return true
			}
			for i, lhs := range as.Lhs {
				if i >= len(as.Rhs) {
					break
				}
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				call, ok := as.Rhs[i].(*ast.CallExpr)
				if !ok {
					continue
				}
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Data" && len(call.Args) == 0 {
					aliases[id.Name] = true
				}
			}
			return true
		})
		if len(aliases) == 0 {
			return true
		}
		for _, body := range kernels {
			if !(fd.Body.Pos() <= body.Pos() && body.End() <= fd.Body.End()) {
				continue
			}
			reported := make(map[string]bool)
			ast.Inspect(body, func(m ast.Node) bool {
				if sel, ok := m.(*ast.SelectorExpr); ok {
					// Only the receiver side can be an alias use.
					ast.Inspect(sel.X, func(k ast.Node) bool {
						if id, ok := k.(*ast.Ident); ok && aliases[id.Name] && !reported[id.Name] {
							reported[id.Name] = true
							p.Reportf(id.Pos(), "kernel uses %q, a host-side Data() alias: accesses bypass the launch memory model", id.Name)
						}
						return true
					})
					return false
				}
				if id, ok := m.(*ast.Ident); ok && aliases[id.Name] && !reported[id.Name] {
					reported[id.Name] = true
					p.Reportf(id.Pos(), "kernel uses %q, a host-side Data() alias: accesses bypass the launch memory model", id.Name)
				}
				return true
			})
		}
		return true
	})
}

// LoopCaptureAnalyzer flags kernel closures that escape the loop that
// creates them (stored, appended, returned, sent, or run via go/defer) while
// capturing a loop variable. Go 1.22 gives each iteration fresh variables,
// but an escaped kernel launches after the loop's host state has moved on —
// deferred-launch kernels must take their inputs from device buffers, not
// captured iteration state. Closures passed directly to a call (Apply,
// Launch, If bodies) run before the iteration advances and are exempt.
var LoopCaptureAnalyzer = &Analyzer{
	Name: "loopcapture",
	Doc:  "flags escaping kernel closures that capture loop variables",
	Run:  runLoopCapture,
}

func runLoopCapture(p *Pass) {
	parents := parentMap(p.File)
	ast.Inspect(p.File, func(n ast.Node) bool {
		var loopVars []string
		var body *ast.BlockStmt
		switch n := n.(type) {
		case *ast.ForStmt:
			if as, ok := n.Init.(*ast.AssignStmt); ok {
				for _, l := range as.Lhs {
					if id, ok := l.(*ast.Ident); ok && id.Name != "_" {
						loopVars = append(loopVars, id.Name)
					}
				}
			}
			body = n.Body
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					loopVars = append(loopVars, id.Name)
				}
			}
			body = n.Body
		default:
			return true
		}
		if len(loopVars) == 0 || body == nil {
			return true
		}
		ast.Inspect(body, func(m ast.Node) bool {
			fl, ok := m.(*ast.FuncLit)
			if !ok || !isKernelFuncType(fl.Type) || !escapes(fl, parents) {
				return true
			}
			for _, v := range loopVars {
				if usesIdent(fl.Body, v) {
					p.Reportf(fl.Pos(), "kernel closure escapes the loop and captures loop variable %q; a deferred launch will read host state the loop has since abandoned", v)
					break
				}
			}
			return true
		})
		return true
	})
}

// escapes classifies a function literal's immediate syntactic context:
// anything that lets it outlive the statement that creates it.
func escapes(fl *ast.FuncLit, parents map[ast.Node]ast.Node) bool {
	switch par := parents[fl].(type) {
	case *ast.CallExpr:
		if par.Fun == fl {
			// Immediately invoked — unless the invocation itself is deferred.
			switch parents[par].(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				return true
			}
			return false
		}
		// An argument: append stashes it, any other call consumes it now.
		if id, ok := par.Fun.(*ast.Ident); ok && id.Name == "append" {
			return true
		}
		return false
	case *ast.AssignStmt:
		// `=` targets a variable from an outer scope; `:=` stays loop-local.
		return par.Tok == token.ASSIGN
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.ReturnStmt, *ast.SendStmt:
		return true
	}
	return false
}
