// taint.go implements the lane-taint + stride-class dataflow the warp
// analyzers (warp.go) consume.
//
// The question the analysis answers, per value in a kernel file, is: "does
// this value differ across the lanes of a warp, and if so, how?" The answer
// is a two-axis class:
//
//   - Stride: uniform < unit < strided < irregular. Uniform values are
//     identical on every lane (host scalars, ConstI32, Ballot results).
//     Unit values are affine in the lane id with step 1 (LaneIDs,
//     GlobalThreadIDs, a SIMDRange position vector): consecutive lanes
//     touch consecutive addresses — the coalesced case. Strided values are
//     lane-derived with a non-unit step (lane*K, lane+lane). Irregular
//     values came from memory (per-lane loads, atomics' old values,
//     reductions): the paper's uncoalesced/divergent case.
//   - Data: whether the value was derived from loaded data (as opposed to
//     pure lane-id arithmetic). A branch on a lane-id-only value is the
//     bounded structural divergence of a leader idiom; a branch on data is
//     the unbounded divergence the paper's outlier deferral targets.
//
// The engine is deliberately coarse: one flat map keyed by identifier /
// "recv.field" text across the whole file, iterated to a fixpoint with a
// monotone join. There is no go/types, no SSA, no scoping — two closures
// that both name a local `i` share its class. That coarseness over-taints
// in the worst case and never under-taints lane-derived values that stay
// within the idioms this codebase uses; the TestWarplintPredictions harness
// pins the resulting verdicts against measured simulator counters, which is
// the real check on the approximation.
package kernelcheck

import (
	"go/ast"
	"go/token"
)

// Stride is the per-lane address/value pattern lattice: uniform < unit <
// strided < irregular.
type Stride int

const (
	StrideUniform Stride = iota
	StrideUnit
	StrideStrided
	StrideIrregular
)

func (s Stride) String() string {
	switch s {
	case StrideUniform:
		return "uniform"
	case StrideUnit:
		return "unit"
	case StrideStrided:
		return "strided"
	default:
		return "irregular"
	}
}

// class is one value's taint classification.
type class struct {
	stride Stride
	// data marks values derived from loaded memory (vs lane-id arithmetic).
	data bool
}

func (c class) join(o class) class {
	if o.stride > c.stride {
		c.stride = o.stride
	}
	c.data = c.data || o.data
	return c
}

var (
	clsUniform   = class{StrideUniform, false}
	clsLane      = class{StrideUnit, false}
	clsIrregular = class{StrideIrregular, true}
)

// uniformCalls return warp-uniform values regardless of arguments.
var uniformCalls = map[string]bool{
	"ConstI32": true, "ConstF32": true,
	"VecI32": true, "VecF32": true, "VecBool": true,
	"BroadcastI32": true, "Ballot": true,
	"Width": true, "BlockDim": true, "GridDim": true, "GridThreads": true,
	"ActiveCount": true, "AnyActive": true, "LaneActive": true,
	"BlockID": true, "SMID": true, "GlobalWarpID": true, "WarpInBlock": true,
	"KernelScratch": true, "SharedI32": true, "Valid": true,
	"len": true, "cap": true, "int": true, "int32": true, "int64": true,
	"float32": true, "float64": true, "min": true, "max": true,
}

// laneCalls return lane-id-derived (unit-stride, non-data) values.
var laneCalls = map[string]bool{
	"LaneIDs": true, "GlobalThreadIDs": true,
	"Group": true, "LaneInGroup": true,
}

// dataCalls return memory-derived values.
var dataCalls = map[string]bool{
	"CopyI32": true,
}

// outParam describes a primitive that writes a result through an argument.
type outParam struct {
	// idx is the index-vector argument governing the result's class, -1
	// when the output is unconditionally irregular data.
	idx int
	// out is the output argument position.
	out int
}

var outParams = map[string]outParam{
	"LoadI32":           {idx: 1, out: 2},
	"LoadF32":           {idx: 1, out: 2},
	"LoadI32Replicated": {idx: 2, out: 3},
	"LoadI32Grouped":    {idx: 1, out: 2},
	"LoadF32Grouped":    {idx: 1, out: 2},
	"LoadSharedI32":     {idx: 1, out: 2},

	"AtomicAddI32":       {idx: -1, out: 3},
	"AtomicMinI32":       {idx: -1, out: 3},
	"AtomicOrI32":        {idx: -1, out: 3},
	"AtomicExchI32":      {idx: -1, out: 3},
	"AtomicAddF32":       {idx: -1, out: 3},
	"AtomicCASI32":       {idx: -1, out: 4},
	"AtomicAddGrouped":   {idx: -1, out: 3},
	"AtomicAddSharedI32": {idx: -1, out: 3},

	"GroupReduceAddI32": {idx: -1, out: 2},
	"GroupReduceMinI32": {idx: -1, out: 2},
	"GroupReduceOrI32":  {idx: -1, out: 2},
	"GroupReduceAddF32": {idx: -1, out: 2},
}

// laneClosureMethods are the calls whose closure arguments receive lane or
// group indices / position vectors: their int and []int32 parameters are
// seeded as unit-stride lane values.
var laneClosureMethods = map[string]bool{
	"If": true, "IfGrouped": true, "While": true, "Ballot": true,
	"Apply": true, "ApplyReplicated": true,
	"Mask": true, "SISD": true, "SIMDRange": true, "GroupLoop": true,
	"StoreI32Grouped": true, "StoreF32Grouped": true, "AtomicAddGrouped": true,
}

// Taint is the fixpoint result for one file.
type Taint struct {
	classes map[string]class
}

// ComputeTaint runs the file-wide taint fixpoint.
func ComputeTaint(file *ast.File) *Taint {
	t := &Taint{classes: make(map[string]class)}
	t.seed(file)
	// Monotone join over a finite key set terminates; the cap is a guard
	// against a transfer-function bug, not a correctness knob.
	for i := 0; i < 32; i++ {
		if !t.sweep(file) {
			break
		}
	}
	return t
}

// key renders an lvalue expression to its map key, "" if untrackable.
func taintKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return ""
		}
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e)
	case *ast.IndexExpr:
		// Writing one element taints the whole vector.
		return taintKey(e.X)
	case *ast.ParenExpr:
		return taintKey(e.X)
	case *ast.StarExpr:
		return taintKey(e.X)
	}
	return ""
}

func (t *Taint) get(k string) class {
	if k == "" {
		return clsUniform
	}
	return t.classes[k]
}

// raise joins cls into key k, reporting whether anything changed.
func (t *Taint) raise(k string, cls class) bool {
	if k == "" {
		return false
	}
	old := t.classes[k]
	nw := old.join(cls)
	if nw != old {
		t.classes[k] = nw
		return true
	}
	return false
}

// seed marks lane-closure parameters and Tasks fields.
func (t *Taint) seed(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, _ := calleeName(call)
		if !laneClosureMethods[name] && !(constructs[name].guarded && constructs[name].kind == GuardDriver) {
			return true
		}
		for _, a := range call.Args {
			fl, ok := a.(*ast.FuncLit)
			if !ok || fl.Type.Params == nil {
				continue
			}
			for _, f := range fl.Type.Params.List {
				for _, nm := range f.Names {
					switch tp := f.Type.(type) {
					case *ast.Ident:
						if tp.Name == "int" {
							t.raise(nm.Name, clsLane)
						}
					case *ast.ArrayType:
						// SIMDRange/GroupLoop position vectors.
						t.raise(nm.Name, clsLane)
						_ = tp
					}
				}
			}
		}
		return true
	})
}

// sweep applies every transfer function once; reports whether the map grew.
func (t *Taint) sweep(file *ast.File) bool {
	changed := false
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				var rhs ast.Expr
				if len(n.Rhs) == len(n.Lhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				cls := t.Classify(rhs)
				if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
					// +=, -=, ... : join with the current lhs class too.
					cls = cls.join(t.get(taintKey(lhs)))
				}
				if t.raise(taintKey(lhs), cls) {
					changed = true
				}
			}
		case *ast.RangeStmt:
			// for i, v := range x: values take x's class.
			cls := t.Classify(n.X)
			if n.Value != nil && t.raise(taintKey(n.Value), cls) {
				changed = true
			}
		case *ast.CallExpr:
			name, _ := calleeName(n)
			op, ok := outParams[name]
			if !ok || op.out >= len(n.Args) {
				return true
			}
			outCls := clsIrregular
			if op.idx >= 0 && op.idx < len(n.Args) {
				if t.Classify(n.Args[op.idx]).stride == StrideUniform {
					// Every lane loads the same cell: the result is
					// warp-uniform (data origin notwithstanding).
					outCls = clsUniform
				}
			}
			if t.raise(taintKey(n.Args[op.out]), outCls) {
				changed = true
			}
		}
		return true
	})
	return changed
}

// Classify returns the class of an expression under the current fixpoint
// state. Unknown identifiers are optimistically uniform: host scalars and
// buffers dominate kernel code, and lane-derived values are caught by the
// seeds and transfer functions above.
func (t *Taint) Classify(e ast.Expr) class {
	switch e := e.(type) {
	case nil:
		return clsUniform
	case *ast.Ident:
		return t.get(e.Name)
	case *ast.BasicLit:
		return clsUniform
	case *ast.SelectorExpr:
		if e.Sel.Name == "Task" {
			// Tasks.Task: per-group task ids — lane-derived by
			// construction; static distribution hands out consecutive ids.
			return t.get(exprText(e)).join(clsLane)
		}
		return t.get(exprText(e))
	case *ast.ParenExpr:
		return t.Classify(e.X)
	case *ast.UnaryExpr:
		return t.Classify(e.X)
	case *ast.StarExpr:
		return t.Classify(e.X)
	case *ast.IndexExpr:
		// A per-lane view of a vector has the vector's class; an index
		// that is itself tainted contributes too (host-slice gather).
		return t.Classify(e.X).join(t.Classify(e.Index))
	case *ast.SliceExpr:
		return t.Classify(e.X)
	case *ast.BinaryExpr:
		x, y := t.Classify(e.X), t.Classify(e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			// Address arithmetic: uniform+unit stays unit; unit+unit is a
			// step-2 pattern; anything irregular stays irregular.
			c := class{data: x.data || y.data}
			switch {
			case x.stride == StrideIrregular || y.stride == StrideIrregular:
				c.stride = StrideIrregular
			case x.stride >= StrideUnit && y.stride >= StrideUnit:
				c.stride = StrideStrided
			case x.stride > y.stride:
				c.stride = x.stride
			default:
				c.stride = y.stride
			}
			return c
		case token.MUL, token.QUO, token.REM, token.SHL, token.SHR, token.AND_NOT, token.AND, token.OR, token.XOR:
			// Scaling a lane value breaks unit stride.
			c := x.join(y)
			if c.stride == StrideUnit {
				c.stride = StrideStrided
			}
			return c
		default:
			// Comparisons and logical ops: the stride of a bool is
			// meaningless, but lane/data dependence propagates.
			return x.join(y)
		}
	case *ast.CallExpr:
		name, recvTxt := calleeName(e)
		switch {
		case uniformCalls[name]:
			return clsUniform
		case laneCalls[name]:
			return clsLane
		case dataCalls[name]:
			return clsIrregular
		case name == "make" || name == "new" || name == "append":
			c := clsUniform
			for i, a := range e.Args {
				if name == "make" && i == 0 {
					continue // the type argument
				}
				c = c.join(t.Classify(a))
			}
			return c
		default:
			// Unknown call: the result is no better than its inputs.
			c := clsUniform
			_ = recvTxt
			for _, a := range e.Args {
				c = c.join(t.Classify(a))
			}
			return c
		}
	case *ast.FuncLit:
		return clsUniform
	case *ast.CompositeLit:
		c := clsUniform
		for _, el := range e.Elts {
			c = c.join(t.Classify(el))
		}
		return c
	case *ast.TypeAssertExpr:
		return t.Classify(e.X)
	}
	return clsUniform
}

// ClassifyPred classifies a guard condition — a predicate closure (the
// join of its return expressions) or a plain expression.
func (t *Taint) ClassifyPred(cond ast.Node) PredClass {
	if cond == nil {
		return PredUniform
	}
	c := clsUniform
	switch cond := cond.(type) {
	case *ast.FuncLit:
		ast.Inspect(cond.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok && n != ast.Node(cond) {
				return false
			}
			if r, ok := n.(*ast.ReturnStmt); ok {
				for _, e := range r.Results {
					c = c.join(t.Classify(e))
				}
			}
			return true
		})
	case ast.Expr:
		c = t.Classify(cond)
	}
	return predOf(c)
}

// ClassifyGuard resolves a guard's Class: predicate class for predicated
// constructs, bound class for counted loops (a loop whose trip count is
// lane/data-dependent runs different counts per lane — divergence), and
// PredData for drivers.
func (t *Taint) ClassifyGuard(g *Guard) PredClass {
	if g.Kind == GuardDriver {
		return PredData
	}
	cls := t.ClassifyPred(g.Cond)
	for _, b := range g.Bounds {
		p := predOf(t.Classify(b))
		if p > cls {
			cls = p
		}
	}
	return cls
}

func predOf(c class) PredClass {
	switch {
	case c.data:
		return PredData
	case c.stride > StrideUniform:
		return PredLaneID
	default:
		return PredUniform
	}
}

// ClassifyIdx returns the stride class of a memory-op index vector.
func (t *Taint) ClassifyIdx(e ast.Expr) Stride {
	return t.Classify(e).stride
}
