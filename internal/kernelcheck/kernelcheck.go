// Package kernelcheck statically checks kernel code for violations of the
// simulator's kernel discipline: kernels must be deterministic, barrier
// placement must be warp-uniform, and device buffers must be accessed
// through the WarpCtx primitives. It is shaped like golang.org/x/tools'
// go/analysis (Analyzer / Pass / Diagnostic) but is implemented on the
// standard library's go/ast alone, so the repo stays dependency-free; the
// cmd/kernelcheck driver stands in for `go vet -vettool`.
//
// Analysis is purely syntactic. "Kernel context" is any function or function
// literal with a parameter of type pointer-to-WarpCtx (any package
// qualifier); the analyzers look for hazard patterns inside those bodies.
// Findings are suppressed with a `//kernelcheck:ignore <rules>` comment on
// the same line or the line above (no rule list suppresses everything).
package kernelcheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
}

// String renders the finding in the familiar file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Rule)
}

// Analyzer is one named check, mirroring go/analysis.Analyzer.
type Analyzer struct {
	// Name is the rule identifier used in reports and ignore comments.
	Name string
	// Doc describes what the rule flags.
	Doc string
	// Run inspects pass.File and reports findings via pass.Reportf.
	Run func(pass *Pass)
}

// Pass carries one analyzer's run over one file, mirroring go/analysis.Pass.
type Pass struct {
	Fset *token.FileSet
	File *ast.File

	rule  string
	diags *[]Diagnostic
	// shared caches the CFG/taint analysis across the analyzers of one
	// CheckFileWith run; built lazily on first use (the syntactic
	// analyzers never pay for it).
	shared **fileAnalysis
}

// analysis returns the file's CFG/taint analysis, building it on first use.
func (p *Pass) analysis() *fileAnalysis {
	if p.shared == nil {
		var fa *fileAnalysis
		p.shared = &fa
	}
	if *p.shared == nil {
		*p.shared = buildFileAnalysis(p.Fset, p.File)
	}
	return *p.shared
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Rule:    p.rule,
		Message: fmt.Sprintf(format, args...),
	})
}

// All is the default analyzer set, in reporting order.
var All = []*Analyzer{NondetermAnalyzer, BarrierAnalyzer, BufAliasAnalyzer, LoopCaptureAnalyzer}

// CheckFile runs every analyzer in All over a parsed file (which must have
// been parsed with parser.ParseComments for suppression to work) and returns
// the unsuppressed findings in source order.
func CheckFile(fset *token.FileSet, file *ast.File) []Diagnostic {
	return CheckFileWith(fset, file, All)
}

// CheckFileWith runs a specific analyzer set over a parsed file, sharing
// the CFG/taint infrastructure across analyzers.
func CheckFileWith(fset *token.FileSet, file *ast.File, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var shared *fileAnalysis
	for _, a := range analyzers {
		a.Run(&Pass{Fset: fset, File: file, rule: a.Name, diags: &diags, shared: &shared})
	}
	diags = filterSuppressed(fset, file, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Rule < diags[j].Rule
	})
	return diags
}

// CheckSource parses src (named filename for positions) and checks it.
func CheckSource(filename string, src []byte) ([]Diagnostic, error) {
	return CheckSourceWith(filename, src, All)
}

// CheckSourceWith parses src and runs a specific analyzer set over it.
func CheckSourceWith(filename string, src []byte, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return CheckFileWith(fset, file, analyzers), nil
}

// ignoreDirective is the suppression comment prefix.
const ignoreDirective = "kernelcheck:ignore"

// filterSuppressed drops findings covered by a //kernelcheck:ignore comment
// on the finding's line or the line directly above it.
func filterSuppressed(fset *token.FileSet, file *ast.File, diags []Diagnostic) []Diagnostic {
	ignores := make(map[int][]string) // line -> rules ("*" = all)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, ignoreDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
			line := fset.Position(c.Pos()).Line
			if rest == "" {
				ignores[line] = append(ignores[line], "*")
				continue
			}
			for _, r := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
				ignores[line] = append(ignores[line], r)
			}
		}
	}
	if len(ignores) == 0 {
		return diags
	}
	matches := func(line int, rule string) bool {
		for _, r := range ignores[line] {
			if r == "*" || r == rule {
				return true
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if matches(d.Pos.Line, d.Rule) || matches(d.Pos.Line-1, d.Rule) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// isWarpCtxPtr reports whether e is *WarpCtx under any package qualifier.
func isWarpCtxPtr(e ast.Expr) bool {
	star, ok := e.(*ast.StarExpr)
	if !ok {
		return false
	}
	switch t := star.X.(type) {
	case *ast.Ident:
		return t.Name == "WarpCtx"
	case *ast.SelectorExpr:
		return t.Sel.Name == "WarpCtx"
	}
	return false
}

// isKernelFuncType reports whether the signature takes a *WarpCtx.
func isKernelFuncType(ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if isWarpCtxPtr(f.Type) {
			return true
		}
	}
	return false
}

// kernelBodies returns the outermost kernel function bodies in the file:
// bodies of FuncDecls and FuncLits whose signature takes a *WarpCtx, with
// bodies nested inside another kernel body dropped (the outer walk covers
// them).
func kernelBodies(file *ast.File) []*ast.BlockStmt {
	var all []*ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil && isKernelFuncType(fn.Type) {
				all = append(all, fn.Body)
			}
		case *ast.FuncLit:
			if isKernelFuncType(fn.Type) {
				all = append(all, fn.Body)
			}
		}
		return true
	})
	var out []*ast.BlockStmt
	for _, b := range all {
		nested := false
		for _, o := range all {
			if o != b && o.Pos() <= b.Pos() && b.End() <= o.End() {
				nested = true
				break
			}
		}
		if !nested {
			out = append(out, b)
		}
	}
	return out
}

// parentMap records each node's syntactic parent under root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// usesIdent reports whether node references name as a plain identifier
// (selector fields x.name do not count).
func usesIdent(node ast.Node, name string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok {
			// Visit only the receiver; Sel is a field/method name, not a use.
			if usesIdent(sel.X, name) {
				found = true
			}
			return false
		}
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// exprText renders a short identifier-ish description of e for messages.
func exprText(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprText(e.X) + "." + e.Sel.Name
	default:
		return "expr"
	}
}
