package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values computed from the canonical splitmix64.c with seed 0.
	r := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("splitmix64 output %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	b := a.Split()
	// The split stream must not equal the parent's continuation.
	equal := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			equal++
		}
	}
	if equal > 1 {
		t.Fatalf("split stream tracks parent: %d/100 equal", equal)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for _, n := range []int{1, 2, 3, 7, 10, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity: 10 buckets, 100k draws.
	r := New(99)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %f", b, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance %f, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("exponential draw negative: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %f, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 5, 64, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		r := New(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(77)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(1 << 16); v >= 1<<16 {
			t.Fatalf("power-of-two path out of range: %d", v)
		}
	}
}

func TestInt32n(t *testing.T) {
	r := New(21)
	for i := 0; i < 1000; i++ {
		v := r.Int32n(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Int32n out of range: %d", v)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
