// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the repository.
//
// All experiments in this repo must be exactly reproducible from a seed, on
// any platform, forever. math/rand's generator is stable too, but building on
// our own splitmix64/xoshiro256** keeps the generator explicitly under our
// control, documents the algorithm, and lets us derive independent streams
// for parallel generation.
package xrand

import "math"

// SplitMix64 is the seeding/stream-splitting generator recommended by the
// xoshiro authors. It is also a perfectly fine standalone 64-bit generator.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator: fast, 256-bit state, passes BigCrush.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, as recommended by
// the xoshiro reference implementation.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Uint64()
	}
	// An all-zero state would be absorbing; splitmix output makes this
	// astronomically unlikely, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split returns a new generator whose stream is independent of r's with
// overwhelming probability. It advances r.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Uint32 returns 32 random bits (the high half of Uint64).
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Int63 returns a non-negative random int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int32n returns a uniform value in [0, n) as int32. It panics if n <= 0.
func (r *Rand) Int32n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int32n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Classic modulo rejection, branch-poor variant; threshold is the
	// smallest multiple of n that fits, so remainders are unbiased.
	threshold := -n % n
	for {
		v := r.Uint64()
		if v >= threshold {
			return v % n
		}
	}
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements via swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
