package cpualgo

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func chain(t *testing.T, n int) *graph.CSR {
	t.Helper()
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i < n-1; i++ {
		edges = append(edges, graph.Edge{Src: int32(i), Dst: int32(i + 1)})
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBFSSequentialChain(t *testing.T) {
	g := chain(t, 5)
	levels := BFSSequential(g, 0)
	want := []int32{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("levels = %v, want %v", levels, want)
	}
	levels = BFSSequential(g, 2)
	want = []int32{Unreached, Unreached, 0, 1, 2}
	if !reflect.DeepEqual(levels, want) {
		t.Fatalf("levels from 2 = %v, want %v", levels, want)
	}
}

func TestBFSEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := BFSSequential(g, 0); len(got) != 0 {
		t.Fatalf("empty BFS = %v", got)
	}
	if got := BFSParallel(g, 0, 2); len(got) != 0 {
		t.Fatalf("empty parallel BFS = %v", got)
	}
}

func TestBFSParallelMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g, err := gengraph.RMAT(10, 8, gengraph.DefaultRMAT, seed)
		if err != nil {
			t.Fatal(err)
		}
		src := graph.LargestOutComponentSeed(g)
		seq := BFSSequential(g, src)
		for _, workers := range []int{1, 4, 8} {
			par := BFSParallel(g, src, workers)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("seed %d workers %d: parallel BFS differs", seed, workers)
			}
		}
	}
}

func TestBFSParallelDefaultWorkers(t *testing.T) {
	g := chain(t, 100)
	if got := BFSParallel(g, 0, 0); got[99] != 99 {
		t.Fatalf("default-worker BFS wrong: levels[99] = %d", got[99])
	}
}

func TestValidBFSLevels(t *testing.T) {
	g, err := gengraph.UniformRandom(200, 1200, 7)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	levels := BFSSequential(g, src)
	if !ValidBFSLevels(g, src, levels) {
		t.Fatal("correct BFS labeling rejected")
	}
	// Corruptions must be detected.
	bad := append([]int32(nil), levels...)
	bad[src] = 5
	if ValidBFSLevels(g, src, bad) {
		t.Fatal("wrong source level accepted")
	}
	bad = append([]int32(nil), levels...)
	for v, l := range bad {
		if l > 0 {
			bad[v] = l + 5 // vertex too deep: no predecessor at l+4
			if ValidBFSLevels(g, src, bad) {
				t.Fatal("inflated level accepted")
			}
			break
		}
	}
	if ValidBFSLevels(g, src, levels[:10]) {
		t.Fatal("truncated labeling accepted")
	}
}

func TestValidBFSLevelsCatchesUnreachedMarking(t *testing.T) {
	g := chain(t, 3)
	levels := BFSSequential(g, 0)
	levels[2] = Unreached // reachable vertex marked unreached: edge 1->2 dangles
	if ValidBFSLevels(g, 0, levels) {
		t.Fatal("missing reachable vertex accepted")
	}
}

func TestPropertyBFSParallelEqualsSequential(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%60 + 2
		m := int(mRaw) * 4
		g, err := gengraph.UniformRandom(n, m, seed)
		if err != nil {
			return false
		}
		src := graph.VertexID(int(seed) % n)
		if src < 0 {
			src = 0
		}
		seq := BFSSequential(g, src)
		par := BFSParallel(g, src, 4)
		return reflect.DeepEqual(seq, par) && ValidBFSLevels(g, src, seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSSSPDijkstraSmall(t *testing.T) {
	// 0 -(1)-> 1 -(1)-> 2, plus direct 0 -(5)-> 2: shortest is 2 via 1.
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// weights aligned with Col: edges of 0 are [1,2] in insertion order.
	weights := []int32{1, 5, 1}
	dist := SSSPDijkstra(g, weights, 0)
	want := []int32{0, 1, 2}
	if !reflect.DeepEqual(dist, want) {
		t.Fatalf("dist = %v, want %v", dist, want)
	}
}

func TestSSSPUnreachable(t *testing.T) {
	g, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	dist := SSSPDijkstra(g, []int32{2}, 0)
	if dist[2] != InfDist {
		t.Fatalf("unreachable vertex has dist %d", dist[2])
	}
}

func TestSSSPBellmanFordMatchesDijkstra(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g, err := gengraph.RMAT(9, 6, gengraph.DefaultRMAT, seed)
		if err != nil {
			t.Fatal(err)
		}
		weights := gengraph.EdgeWeights(g, 10, seed+1)
		src := graph.LargestOutComponentSeed(g)
		dj := SSSPDijkstra(g, weights, src)
		bf := SSSPBellmanFord(g, weights, src, 4)
		if !reflect.DeepEqual(dj, bf) {
			t.Fatalf("seed %d: Bellman-Ford differs from Dijkstra", seed)
		}
	}
}

func TestPropertySSSPTriangleInequality(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%40 + 2
		g, err := gengraph.UniformRandom(n, n*4, seed)
		if err != nil {
			return false
		}
		weights := gengraph.EdgeWeights(g, 9, seed)
		dist := SSSPDijkstra(g, weights, 0)
		if dist[0] != 0 {
			return false
		}
		// Relaxed fixed point: no edge improves any distance.
		for v := 0; v < n; v++ {
			if dist[v] >= InfDist {
				continue
			}
			row := g.RowPtr[v]
			for i, w := range g.Neighbors(graph.VertexID(v)) {
				if dist[v]+weights[int(row)+i] < dist[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankUniformOnCycle(t *testing.T) {
	// On a directed cycle every vertex must have rank 1/n.
	const n = 10
	edges := make([]graph.Edge, n)
	for i := 0; i < n; i++ {
		edges[i] = graph.Edge{Src: int32(i), Dst: int32((i + 1) % n)}
	}
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	rank, iters := PageRank(g, PageRankOptions{})
	if iters == 0 {
		t.Fatal("no iterations ran")
	}
	for v, r := range rank {
		if math.Abs(r-0.1) > 1e-4 {
			t.Fatalf("rank[%d] = %f, want 0.1", v, r)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g, err := gengraph.RMAT(9, 6, gengraph.DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	rank, _ := PageRank(g, PageRankOptions{})
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("ranks sum to %f", sum)
	}
}

func TestPageRankHubGetsMoreRank(t *testing.T) {
	// Star pointing INTO vertex 0: it must outrank the leaves.
	edges := make([]graph.Edge, 0, 20)
	for i := int32(1); i <= 20; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: 0})
	}
	g, err := graph.FromEdges(21, edges)
	if err != nil {
		t.Fatal(err)
	}
	rank, _ := PageRank(g, PageRankOptions{})
	if rank[0] <= rank[1]*5 {
		t.Fatalf("hub rank %f not well above leaf rank %f", rank[0], rank[1])
	}
}

func TestPageRankEmpty(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rank, _ := PageRank(g, PageRankOptions{}); rank != nil {
		t.Fatalf("empty PageRank = %v", rank)
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two components: {0,1,2} and {3,4}; 5 isolated.
	g, err := graph.FromEdges(6, []graph.Edge{{Src: 0, Dst: 1}, {Src: 2, Dst: 1}, {Src: 3, Dst: 4}})
	if err != nil {
		t.Fatal(err)
	}
	labels := ConnectedComponents(g)
	want := []int32{0, 0, 0, 3, 3, 5}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

func TestPropertyConnectedComponentsConsistent(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		g, err := gengraph.UniformRandom(n, n*2, seed)
		if err != nil {
			return false
		}
		labels := ConnectedComponents(g)
		// Every edge joins same-label endpoints; labels are canonical minima.
		for v := 0; v < n; v++ {
			if labels[v] > int32(v) {
				return false
			}
			for _, w := range g.Neighbors(graph.VertexID(v)) {
				if labels[v] != labels[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
