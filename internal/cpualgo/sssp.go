package cpualgo

import (
	"container/heap"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"maxwarp/internal/graph"
)

// InfDist marks unreachable vertices in SSSP results. It is far below
// MaxInt32 so one relaxation step cannot overflow.
const InfDist = int32(math.MaxInt32 / 2)

// SSSPDijkstra computes single-source shortest paths with a binary heap.
// weights is aligned with g.Col and must be non-negative.
func SSSPDijkstra(g *graph.CSR, weights []int32, src graph.VertexID) []int32 {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		row := g.RowPtr[item.v]
		for i, w := range g.Neighbors(item.v) {
			nd := item.d + weights[int(row)+i]
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distItem{v: w, d: nd})
			}
		}
	}
	return dist
}

type distItem struct {
	v graph.VertexID
	d int32
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// SSSPBellmanFord computes shortest paths by parallel edge relaxation until
// a fixed point — the same algorithm the GPU kernels run, useful both as a
// CPU series and to cross-check the Dijkstra oracle. workers <= 0 selects
// GOMAXPROCS.
func SSSPBellmanFord(g *graph.CSR, weights []int32, src graph.VertexID, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = InfDist
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	for iter := 0; iter < n; iter++ {
		var changed int32
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo := wk * chunk
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for v := lo; v < hi; v++ {
					dv := atomic.LoadInt32(&dist[v])
					if dv >= InfDist {
						continue
					}
					row := g.RowPtr[v]
					for i, w := range g.Neighbors(graph.VertexID(v)) {
						nd := dv + weights[int(row)+i]
						for {
							cur := atomic.LoadInt32(&dist[w])
							if nd >= cur {
								break
							}
							if atomic.CompareAndSwapInt32(&dist[w], cur, nd) {
								atomic.StoreInt32(&changed, 1)
								break
							}
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait()
		if changed == 0 {
			break
		}
	}
	return dist
}
