// Package cpualgo provides CPU implementations of the graph algorithms in
// this repository. They play two roles: correctness oracles for every GPU
// kernel, and the multicore-CPU comparison series the paper's evaluation
// includes.
package cpualgo

import (
	"runtime"
	"sync"
	"sync/atomic"

	"maxwarp/internal/graph"
)

// Unreached marks vertices BFS/SSSP never visited.
const Unreached = int32(-1)

// BFSSequential computes BFS levels from src using a classic FIFO queue.
// levels[v] = hop distance from src, or Unreached.
func BFSSequential(g *graph.CSR, src graph.VertexID) []int32 {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unreached
	}
	if n == 0 {
		return levels
	}
	levels[src] = 0
	queue := make([]graph.VertexID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		next := levels[v] + 1
		for _, w := range g.Neighbors(v) {
			if levels[w] == Unreached {
				levels[w] = next
				queue = append(queue, w)
			}
		}
	}
	return levels
}

// BFSParallel computes BFS levels level-synchronously with worker
// goroutines: each round, workers claim slices of the current frontier and
// publish discoveries with CAS, mirroring a multicore OpenMP implementation.
// workers <= 0 selects GOMAXPROCS.
func BFSParallel(g *graph.CSR, src graph.VertexID, workers int) []int32 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unreached
	}
	if n == 0 {
		return levels
	}
	levels[src] = 0
	frontier := []graph.VertexID{src}
	for depth := int32(0); len(frontier) > 0; depth++ {
		nexts := make([][]graph.VertexID, workers)
		var cursor int64
		var wg sync.WaitGroup
		const grain = 64
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				var local []graph.VertexID
				for {
					start := atomic.AddInt64(&cursor, grain) - grain
					if start >= int64(len(frontier)) {
						break
					}
					end := start + grain
					if end > int64(len(frontier)) {
						end = int64(len(frontier))
					}
					for _, v := range frontier[start:end] {
						for _, w := range g.Neighbors(v) {
							if atomic.CompareAndSwapInt32(&levels[w], Unreached, depth+1) {
								local = append(local, w)
							}
						}
					}
				}
				nexts[wk] = local
			}(wk)
		}
		wg.Wait()
		frontier = frontier[:0]
		for _, local := range nexts {
			frontier = append(frontier, local...)
		}
	}
	return levels
}

// ValidBFSLevels checks that levels is a correct BFS labeling of g from src:
// src at level 0; every reached vertex except src has a predecessor one
// level closer; no edge skips a level; reachability matches. Returns false
// on any violation. Used by property tests.
func ValidBFSLevels(g *graph.CSR, src graph.VertexID, levels []int32) bool {
	n := g.NumVertices()
	if len(levels) != n {
		return false
	}
	if n == 0 {
		return true
	}
	if levels[src] != 0 {
		return false
	}
	// No edge may decrease level by more than 1, and any edge from a reached
	// vertex must reach its head (head level <= tail level + 1).
	for v := 0; v < n; v++ {
		if levels[v] == Unreached {
			continue
		}
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if levels[w] == Unreached || levels[w] > levels[v]+1 {
				return false
			}
		}
	}
	// Every reached non-source vertex needs an in-neighbor one level up.
	// (Check via reverse graph to stay O(V+E).)
	rev := g.Reverse()
	for v := 0; v < n; v++ {
		if levels[v] <= 0 {
			continue
		}
		ok := false
		for _, u := range rev.Neighbors(graph.VertexID(v)) {
			if levels[u] == levels[v]-1 {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
