package cpualgo

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"maxwarp/internal/graph"
)

// PageRankParallel is the multicore counterpart of PageRank: the pull sweep
// is partitioned over worker goroutines per destination vertex, so no
// synchronization is needed on the rank vectors. Results match PageRank
// bit-for-bit up to float64 summation order within a vertex (identical: the
// per-vertex loop order is unchanged).
func PageRankParallel(g *graph.CSR, opts PageRankOptions, workers int) ([]float64, int) {
	opts = opts.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rev := g.Reverse()
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		outDeg[v] = float64(g.Degree(graph.VertexID(v)))
	}
	deltas := make([]float64, workers)
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		var wg sync.WaitGroup
		chunk := (n + workers - 1) / workers
		for wk := 0; wk < workers; wk++ {
			lo, hi := wk*chunk, (wk+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				deltas[wk] = 0
				continue
			}
			wg.Add(1)
			go func(wk, lo, hi int) {
				defer wg.Done()
				local := 0.0
				for v := lo; v < hi; v++ {
					sum := 0.0
					for _, u := range rev.Neighbors(graph.VertexID(v)) {
						sum += rank[u] / outDeg[u]
					}
					nv := base + opts.Damping*sum
					next[v] = nv
					local += math.Abs(nv - rank[v])
				}
				deltas[wk] = local
			}(wk, lo, hi)
		}
		wg.Wait()
		rank, next = next, rank
		total := 0.0
		for _, d := range deltas {
			total += d
		}
		if total < opts.Tolerance {
			iters++
			break
		}
	}
	return rank, iters
}

// TriangleCountParallel counts triangles {u,v,w}, u<v<w, attributed to u,
// with the per-u work distributed over goroutines (sorted-intersection, the
// same algorithm the sequential gpualgo oracle uses). The graph must be
// undirected, simple, with sorted adjacency.
func TriangleCountParallel(g *graph.CSR, workers int) ([]int32, int64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	per := make([]int32, n)
	totals := make([]int64, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var local int64
			// Strided assignment balances the skewed per-u costs.
			for u := wk; u < n; u += workers {
				nu := g.Neighbors(graph.VertexID(u))
				for _, v := range nu {
					if v <= graph.VertexID(u) {
						continue
					}
					nv := g.Neighbors(v)
					i := sort.Search(len(nu), func(i int) bool { return nu[i] > v })
					j := sort.Search(len(nv), func(j int) bool { return nv[j] > v })
					for i < len(nu) && j < len(nv) {
						switch {
						case nu[i] < nv[j]:
							i++
						case nu[i] > nv[j]:
							j++
						default:
							per[u]++
							local++
							i++
							j++
						}
					}
				}
			}
			totals[wk] = local
		}(wk)
	}
	wg.Wait()
	var total int64
	for _, t := range totals {
		total += t
	}
	return per, total
}
