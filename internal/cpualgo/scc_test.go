package cpualgo

import (
	"reflect"
	"testing"
	"testing/quick"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func TestSCCKnownGraphs(t *testing.T) {
	// Two 2-cycles bridged one-way, plus an isolated vertex:
	// 0<->1 -> 2<->3, 4.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 2, 2, 4}
	if got := SCC(g); !reflect.DeepEqual(got, want) {
		t.Fatalf("SCC = %v, want %v", got, want)
	}
	// A directed cycle is one component.
	cyc, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}, {Src: 3, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range SCC(cyc) {
		if l != 0 {
			t.Fatalf("cycle labels: %v", SCC(cyc))
		}
	}
	// A DAG is all singletons.
	dag, err := graph.FromEdges(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := SCC(dag); !reflect.DeepEqual(got, []int32{0, 1, 2, 3}) {
		t.Fatalf("DAG labels: %v", got)
	}
}

// sccBrute checks mutual reachability pairwise — O(V·(V+E)), test-size only.
func sccBrute(g *graph.CSR) []int32 {
	n := g.NumVertices()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = make([]bool, n)
		stack := []graph.VertexID{graph.VertexID(v)}
		reach[v][v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(u) {
				if !reach[v][w] {
					reach[v][w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = -1
	}
	for v := 0; v < n; v++ {
		if labels[v] != -1 {
			continue
		}
		labels[v] = int32(v)
		for u := v + 1; u < n; u++ {
			if reach[v][u] && reach[u][v] {
				labels[u] = int32(v)
			}
		}
	}
	return labels
}

func TestPropertySCCMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%25 + 2
		g, err := gengraph.UniformRandom(n, n*3, seed)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(SCC(g), sccBrute(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSCCLargeSkewedGraph(t *testing.T) {
	g, err := gengraph.RMAT(11, 8, gengraph.DefaultRMAT, 5)
	if err != nil {
		t.Fatal(err)
	}
	labels := SCC(g)
	// Sanity: labels are canonical minima and consistent under mutual
	// reachability spot checks via the brute method on a small sample is
	// covered by the property test; here check canonical-min property.
	for v, l := range labels {
		if l < 0 || int(l) > v {
			t.Fatalf("label[%d] = %d not a canonical minimum", v, l)
		}
		if labels[l] != l {
			t.Fatalf("representative %d not self-labeled", l)
		}
	}
}
