package cpualgo

import (
	"math"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func TestPageRankParallelMatchesSequential(t *testing.T) {
	g, err := gengraph.RMAT(10, 8, gengraph.DefaultRMAT, 4)
	if err != nil {
		t.Fatal(err)
	}
	opts := PageRankOptions{MaxIters: 25, Tolerance: 1e-12}
	seq, seqIters := PageRank(g, opts)
	for _, workers := range []int{1, 3, 8} {
		par, parIters := PageRankParallel(g, opts, workers)
		if parIters != seqIters {
			t.Fatalf("workers=%d: iterations %d vs %d", workers, parIters, seqIters)
		}
		for v := range seq {
			if math.Abs(par[v]-seq[v]) > 1e-12 {
				t.Fatalf("workers=%d: rank[%d] = %g vs %g", workers, v, par[v], seq[v])
			}
		}
	}
}

func TestPageRankParallelEmptyAndDefaults(t *testing.T) {
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := PageRankParallel(empty, PageRankOptions{}, 0); r != nil {
		t.Fatal("empty graph produced ranks")
	}
	g, err := gengraph.UniformRandom(100, 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r, _ := PageRankParallel(g, PageRankOptions{}, 0); len(r) != 100 {
		t.Fatal("default workers failed")
	}
}

func TestTriangleCountParallelMatchesSequential(t *testing.T) {
	raw, err := gengraph.RMATSimple(9, 8, gengraph.DefaultRMAT, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, err := raw.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	// Reference: simple cubic enumeration on a trimmed subgraph is too slow;
	// use an independent per-vertex mark-array counter instead.
	wantPer, wantTotal := triangleCountMarks(g)
	for _, workers := range []int{1, 4, 7} {
		per, total := TriangleCountParallel(g, workers)
		if total != wantTotal {
			t.Fatalf("workers=%d: total %d, want %d", workers, total, wantTotal)
		}
		for v := range wantPer {
			if per[v] != wantPer[v] {
				t.Fatalf("workers=%d: per[%d] = %d, want %d", workers, v, per[v], wantPer[v])
			}
		}
	}
	if _, total := TriangleCountParallel(g, 0); total != wantTotal {
		t.Fatal("default workers wrong")
	}
}

// triangleCountMarks is an independent oracle using a neighbor mark array.
func triangleCountMarks(g *graph.CSR) ([]int32, int64) {
	n := g.NumVertices()
	per := make([]int32, n)
	mark := make([]bool, n)
	var total int64
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if v > graph.VertexID(u) {
				mark[v] = true
			}
		}
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			if v <= graph.VertexID(u) {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && mark[w] {
					per[u]++
					total++
				}
			}
		}
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			mark[v] = false
		}
	}
	return per, total
}
