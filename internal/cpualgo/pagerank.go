package cpualgo

import (
	"math"

	"maxwarp/internal/graph"
)

// PageRankOptions configure the power iteration.
type PageRankOptions struct {
	// Damping is the damping factor (default 0.85).
	Damping float64
	// MaxIters bounds iterations (default 100).
	MaxIters int
	// Tolerance stops iteration when the L1 delta falls below it
	// (default 1e-6).
	Tolerance float64
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIters == 0 {
		o.MaxIters = 100
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// PageRank runs the standard power iteration on g (pull formulation over the
// reverse graph). Dangling-vertex mass is redistributed uniformly. Returns
// the rank vector and the iterations executed.
func PageRank(g *graph.CSR, opts PageRankOptions) ([]float64, int) {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil, 0
	}
	rev := g.Reverse()
	rank := make([]float64, n)
	next := make([]float64, n)
	inv := 1.0 / float64(n)
	for i := range rank {
		rank[i] = inv
	}
	outDeg := make([]float64, n)
	for v := 0; v < n; v++ {
		outDeg[v] = float64(g.Degree(graph.VertexID(v)))
	}
	iters := 0
	for ; iters < opts.MaxIters; iters++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank[v]
			}
		}
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		var delta float64
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range rev.Neighbors(graph.VertexID(v)) {
				sum += rank[u] / outDeg[u]
			}
			nv := base + opts.Damping*sum
			next[v] = nv
			delta += math.Abs(nv - rank[v])
		}
		rank, next = next, rank
		if delta < opts.Tolerance {
			iters++
			break
		}
	}
	return rank, iters
}

// ConnectedComponents labels the weakly connected components of g using
// union-find with path halving; the returned label of each vertex is the
// smallest vertex id in its component.
func ConnectedComponents(g *graph.CSR) []int32 {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			union(int32(v), w)
		}
	}
	labels := make([]int32, n)
	for v := range labels {
		labels[v] = find(int32(v))
	}
	return labels
}
