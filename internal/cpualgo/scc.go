package cpualgo

import "maxwarp/internal/graph"

// SCC computes strongly connected components with an iterative Tarjan
// algorithm. The returned label of each vertex is the smallest vertex id in
// its component (a canonical labeling, so results compare across
// implementations).
func SCC(g *graph.CSR) []int32 {
	n := g.NumVertices()
	const undef = int32(-1)
	index := make([]int32, n)
	lowlink := make([]int32, n)
	onStack := make([]bool, n)
	labels := make([]int32, n)
	for i := range index {
		index[i] = undef
		labels[i] = undef
	}
	var counter int32
	stack := make([]graph.VertexID, 0, n)

	// Explicit DFS frames to survive deep recursion on big graphs.
	type frame struct {
		v    graph.VertexID
		next int32 // cursor into v's adjacency
	}
	frames := make([]frame, 0, 64)

	for root := 0; root < n; root++ {
		if index[root] != undef {
			continue
		}
		frames = append(frames[:0], frame{v: graph.VertexID(root)})
		index[root] = counter
		lowlink[root] = counter
		counter++
		stack = append(stack, graph.VertexID(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			adj := g.Neighbors(f.v)
			advanced := false
			for int(f.next) < len(adj) {
				w := adj[f.next]
				f.next++
				if index[w] == undef {
					index[w] = counter
					lowlink[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// Post-order: pop the frame, fold lowlink into the parent.
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// v is an SCC root: pop its component and label with the
				// minimum member id.
				start := len(stack)
				for start > 0 {
					start--
					if stack[start] == v {
						break
					}
				}
				comp := stack[start:]
				minID := comp[0]
				for _, u := range comp {
					if u < minID {
						minID = u
					}
				}
				for _, u := range comp {
					labels[u] = int32(minID)
					onStack[u] = false
				}
				stack = stack[:start]
			}
		}
	}
	return labels
}
