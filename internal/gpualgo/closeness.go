package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/xrand"
)

// ClosenessResult is the output of sampled closeness centrality.
type ClosenessResult struct {
	Result
	// Scores[v] is the estimated closeness of v: (reached-1) / sum of
	// distances from v to the sampled sources' trees — computed from the
	// reverse direction, i.e. distances from sources to v on the reverse
	// graph equal distances v→source on the original. 0 for vertices that
	// reach no sample.
	Scores []float64
	// Sources is the sample actually used.
	Sources []graph.VertexID
}

// ClosenessCentrality estimates closeness centrality by sampling: distances
// from every vertex to `samples` random landmark vertices are obtained with
// ONE bit-parallel multi-source BFS batch per 31 landmarks on the reverse
// graph — the standard estimator that MS-BFS batching makes cheap. With
// samples >= |V| (clamped) the estimate is exact.
func ClosenessCentrality(d *simt.Device, g *graph.CSR, samples int, seed uint64, opts Options) (*ClosenessResult, error) {
	n := g.NumVertices()
	if samples <= 0 {
		return nil, fmt.Errorf("gpualgo: need a positive sample count, got %d", samples)
	}
	if samples > n {
		samples = n
	}
	// Distances v -> landmark = BFS distance landmark -> v on the reverse.
	rev := g.Reverse()
	dgRev := Upload(d, rev)
	r := xrand.New(seed)
	perm := r.Perm(n)
	sources := make([]graph.VertexID, samples)
	for i := range sources {
		sources[i] = graph.VertexID(perm[i])
	}
	res := &ClosenessResult{Sources: sources}
	res.Stats.WarpWidth = d.Config().WarpWidth
	sumDist := make([]int64, n)
	reached := make([]int64, n)
	for off := 0; off < samples; off += MaxMSBFSSources {
		end := off + MaxMSBFSSources
		if end > samples {
			end = samples
		}
		batch, err := MSBFS(d, dgRev, sources[off:end], opts)
		if err != nil {
			return nil, fmt.Errorf("gpualgo: closeness batch at %d: %w", off, err)
		}
		res.Stats.Add(&batch.Stats)
		res.Launches += batch.Launches
		res.Iterations++
		for _, levels := range batch.Levels {
			for v, l := range levels {
				if l > 0 {
					sumDist[v] += int64(l)
					reached[v]++
				}
			}
		}
	}
	res.Scores = make([]float64, n)
	for v := 0; v < n; v++ {
		if sumDist[v] > 0 {
			// Wasserman-Faust style normalization against the sample.
			res.Scores[v] = float64(reached[v]) / float64(sumDist[v])
		}
	}
	return res, nil
}

// ClosenessCentralityCPU is the host oracle over the same landmark sample.
func ClosenessCentralityCPU(g *graph.CSR, sources []graph.VertexID) []float64 {
	n := g.NumVertices()
	rev := g.Reverse()
	sumDist := make([]int64, n)
	reached := make([]int64, n)
	for _, src := range sources {
		levels := bfsLevelsCPU(rev, src)
		for v, l := range levels {
			if l > 0 {
				sumDist[v] += int64(l)
				reached[v]++
			}
		}
	}
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if sumDist[v] > 0 {
			out[v] = float64(reached[v]) / float64(sumDist[v])
		}
	}
	return out
}
