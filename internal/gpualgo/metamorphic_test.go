package gpualgo

import (
	"fmt"
	"math"
	"testing"

	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/xrand"
)

// Metamorphic tests: instead of comparing against an oracle, each test
// transforms the input in a way with a known effect on the output and checks
// the relation holds. Vertex relabeling must permute BFS levels and SSSP
// distances; PageRank must stay a probability distribution and survive a
// double edge reversal; and the obs traversal counters (frontier sizes,
// edges scanned) must be relabeling-invariant since they count structural
// events, not vertex ids.

// metamorphicPerms returns the permutations exercised per graph: the
// degree-sort reordering (adversarial for warp mapping — it moves every
// hub) and a seeded random shuffle.
func metamorphicPerms(g *graph.CSR, seed uint64) map[string][]graph.VertexID {
	n := g.NumVertices()
	random := make([]graph.VertexID, n)
	for i, v := range xrand.New(seed).Perm(n) {
		random[i] = graph.VertexID(v)
	}
	return map[string][]graph.VertexID{
		"degreesort": graph.DegreeSortPermutation(g),
		"random":     random,
	}
}

// endpointWeight derives an edge weight purely from the edge's endpoint ids
// in the ORIGINAL labeling, so original and relabeled graphs can be given
// structurally identical weights even though their CSR edge order differs.
func endpointWeight(u, v graph.VertexID) int32 {
	h := uint64(u)*0x9e3779b97f4a7c15 ^ uint64(v)*0xbf58476d1ce4e5b9
	h ^= h >> 31
	return int32(h%16) + 1
}

// endpointWeights materializes endpointWeight over g's edge array. inv maps
// g's vertex ids back to the original labeling (nil = identity).
func endpointWeights(g *graph.CSR, inv []graph.VertexID) []int32 {
	orig := func(v graph.VertexID) graph.VertexID {
		if inv == nil {
			return v
		}
		return inv[v]
	}
	w := make([]int32, 0, g.NumEdges())
	for u := 0; u < g.NumVertices(); u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			w = append(w, endpointWeight(orig(graph.VertexID(u)), orig(v)))
		}
	}
	return w
}

// invert turns an old→new permutation into new→old.
func invert(p []graph.VertexID) []graph.VertexID {
	inv := make([]graph.VertexID, len(p))
	for old, new := range p {
		inv[new] = graph.VertexID(old)
	}
	return inv
}

func metamorphicVariants() []diffVariant {
	return []diffVariant{
		{name: "K1", opts: Options{K: 1}},
		{name: "K8+defer", opts: Options{K: 8, DeferThreshold: 16}},
		{name: "K8+dynamic", opts: Options{K: 8, Dynamic: true}},
	}
}

// TestMetamorphicBFSRelabelInvariance checks that relabeling vertices
// permutes the BFS level array and leaves the obs traversal counters
// (frontier vertices, edges scanned) untouched: both count structural
// events of the traversal, which relabeling cannot change.
func TestMetamorphicBFSRelabelInvariance(t *testing.T) {
	graphs := diffGraphs(t)
	if testing.Short() {
		graphs = graphs[:1]
	}
	for _, gr := range graphs {
		src := graph.LargestOutComponentSeed(gr.g)
		for permName, perm := range metamorphicPerms(gr.g, 17) {
			rg, err := graph.Relabel(gr.g, perm)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range metamorphicVariants() {
				label := fmt.Sprintf("bfs/%s/%s/%s", gr.name, permName, v.name)

				run := func(g *graph.CSR, s graph.VertexID) ([]int32, map[string]int64) {
					d := parallelDevice(t, 0)
					m := obs.NewMetrics(d.Config().NumSMs)
					opts := v.opts
					opts.Metrics = m
					res, err := BFS(d, Upload(d, g), s, opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					return res.Levels, m.Values()
				}
				base, baseCounters := run(gr.g, src)
				rel, relCounters := run(rg, perm[src])

				for v0 := range base {
					if rel[perm[v0]] != base[v0] {
						t.Errorf("%s: level[%d]=%d but relabeled level[%d]=%d",
							label, v0, base[v0], perm[v0], rel[perm[v0]])
						break
					}
				}
				for _, name := range []string{MetricBFSFrontier, MetricBFSEdges} {
					if baseCounters[name] != relCounters[name] {
						t.Errorf("%s: counter %s changed under relabeling: %d -> %d",
							label, name, baseCounters[name], relCounters[name])
					}
				}
			}
		}
	}
}

// TestMetamorphicSSSPRelabelInvariance checks that relabeling vertices (with
// weights derived from original endpoint ids, so the weighted graph is
// isomorphic) permutes the distance array. Relaxation counts are NOT asserted:
// in-round propagation order legitimately differs between labelings, so the
// same fixed point can be reached with different work.
func TestMetamorphicSSSPRelabelInvariance(t *testing.T) {
	graphs := diffGraphs(t)
	if testing.Short() {
		graphs = graphs[:1]
	}
	for _, gr := range graphs {
		src := graph.LargestOutComponentSeed(gr.g)
		baseWeights := endpointWeights(gr.g, nil)
		for permName, perm := range metamorphicPerms(gr.g, 23) {
			rg, err := graph.Relabel(gr.g, perm)
			if err != nil {
				t.Fatal(err)
			}
			relWeights := endpointWeights(rg, invert(perm))
			for _, v := range metamorphicVariants() {
				label := fmt.Sprintf("sssp/%s/%s/%s", gr.name, permName, v.name)

				run := func(g *graph.CSR, w []int32, s graph.VertexID) []int32 {
					d := parallelDevice(t, 0)
					dg, err := UploadWeighted(d, g, w)
					if err != nil {
						t.Fatal(err)
					}
					res, err := SSSP(d, dg, s, v.opts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					return res.Dist
				}
				base := run(gr.g, baseWeights, src)
				rel := run(rg, relWeights, perm[src])

				for v0 := range base {
					if rel[perm[v0]] != base[v0] {
						t.Errorf("%s: dist[%d]=%d but relabeled dist[%d]=%d",
							label, v0, base[v0], perm[v0], rel[perm[v0]])
						break
					}
				}
			}
		}
	}
}

// TestMetamorphicPageRank checks two relations: the rank vector remains a
// probability distribution (sums to ~1) for every mapping variant, and
// reversing every edge twice — which rebuilds the CSR and reorders adjacency
// lists — leaves the ranks unchanged up to float summation tolerance.
func TestMetamorphicPageRank(t *testing.T) {
	const iters = 10
	graphs := diffGraphs(t)
	if testing.Short() {
		graphs = graphs[:1]
	}
	for _, gr := range graphs {
		rr := gr.g.Reverse().Reverse()
		for _, v := range metamorphicVariants() {
			label := fmt.Sprintf("pagerank/%s/%s", gr.name, v.name)

			run := func(g *graph.CSR) []float32 {
				d := parallelDevice(t, 0)
				res, err := PageRank(d, g, PageRankOptions{Options: v.opts, Iterations: iters})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res.Ranks
			}
			base := run(gr.g)

			var sum float64
			for _, r := range base {
				sum += float64(r)
			}
			if math.Abs(sum-1) > 1e-2 {
				t.Errorf("%s: ranks sum to %g, want ~1", label, sum)
			}

			rev := run(rr)
			for v0 := range base {
				if diff := math.Abs(float64(rev[v0]) - float64(base[v0])); diff > 1e-4 {
					t.Errorf("%s: rank[%d] changed under double reversal: %g -> %g",
						label, v0, base[v0], rev[v0])
					break
				}
			}
		}
	}
}
