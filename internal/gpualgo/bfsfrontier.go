package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// BFSFrontier runs queue-based (frontier) BFS: instead of scanning every
// vertex each level (the paper's quadratic formulation, implemented by BFS),
// each level processes only the current frontier array and builds the next
// frontier with atomic appends. Work per level is O(frontier + its edges),
// at the price of atomic enqueue traffic and indirection — the classic
// alternative the paper discusses. The virtual warp-centric mapping applies
// to the expansion exactly as in BFS.
//
// Discovery uses atomicCAS on the level array so each vertex is enqueued
// exactly once (plain stores would duplicate frontier entries).
func BFSFrontier(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*BFSResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: BFS source %d out of range [0,%d)", src, dg.NumVertices)
	}
	n := dg.NumVertices
	levels := d.AllocI32("bfsf.levels", n)
	levels.Fill(Unvisited)
	levels.Data()[src] = 0
	frontier := d.AllocI32("bfsf.frontier", n)
	next := d.AllocI32("bfsf.next", n)
	nextCount := d.AllocI32("bfsf.nextcount", 1)
	frontier.Data()[0] = int32(src)
	frontierLen := 1

	res := &BFSResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	for cur := int32(0); int(cur) < maxIter && frontierLen > 0; cur++ {
		nextCount.Data()[0] = 0
		kernel := bfsFrontierKernel(dg, levels, frontier, next, nextCount, int32(frontierLen), cur, opts)
		stats, err := d.Launch(opts.grid(d, frontierLen), kernel)
		if err != nil {
			return nil, fmt.Errorf("gpualgo: frontier BFS level %d: %w", cur, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		frontierLen = int(nextCount.Data()[0])
		if frontierLen > n {
			return nil, fmt.Errorf("gpualgo: frontier BFS overflow: %d entries for %d vertices", frontierLen, n)
		}
		frontier, next = next, frontier
	}
	res.Levels = append([]int32(nil), levels.Data()...)
	for _, l := range res.Levels {
		if l > res.Depth {
			res.Depth = l
		}
	}
	return res, nil
}

func bfsFrontierKernel(dg *DeviceGraph, levels, frontier, next, nextCount *simt.BufI32, frontierLen, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, frontierLen, func(ts *vwarp.Tasks) {
			g := ts.Groups
			// Indirect through the frontier: the task id is a queue slot.
			ts.LoadI32Grouped(frontier, ts.Task, ts.Task)
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			nbr := w.VecI32()
			seen := w.VecI32()
			slot := w.VecI32()
			unvisited := w.ConstI32(Unvisited)
			lvlNext := w.ConstI32(cur + 1)
			zero := w.ConstI32(0)
			one := w.ConstI32(1)
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dg.Col, j, nbr)
				// Winner-takes-ownership discovery.
				w.AtomicCASI32(levels, nbr, unvisited, lvlNext, seen)
				w.If(func(lane int) bool { return seen[lane] == Unvisited }, func() {
					w.AtomicAddI32(nextCount, zero, one, slot)
					w.StoreI32(next, slot, nbr)
				}, nil)
			})
		})
	}
}
