package gpualgo

import (
	"math"
	"testing"

	"maxwarp/internal/graph"
)

func TestClosenessMatchesCPUOracle(t *testing.T) {
	g := testGraphs(t)["rmat"]
	for _, samples := range []int{5, 40} { // 40 spans two MS-BFS batches
		d := testDevice(t)
		res, err := ClosenessCentrality(d, g, samples, 7, Options{K: 16})
		if err != nil {
			t.Fatalf("samples=%d: %v", samples, err)
		}
		if len(res.Sources) != samples {
			t.Fatalf("samples=%d: got %d sources", samples, len(res.Sources))
		}
		want := ClosenessCentralityCPU(g, res.Sources)
		for v := range want {
			if math.Abs(res.Scores[v]-want[v]) > 1e-12 {
				t.Fatalf("samples=%d: score[%d] = %g, oracle %g", samples, v, res.Scores[v], want[v])
			}
		}
	}
}

func TestClosenessRanksCenterOfPath(t *testing.T) {
	// Undirected path 0-1-2-3-4: the middle vertex is closest to everything.
	var edges []graph.Edge
	for i := int32(0); i < 4; i++ {
		edges = append(edges, graph.Edge{Src: i, Dst: i + 1}, graph.Edge{Src: i + 1, Dst: i})
	}
	g, err := graph.FromEdges(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	res, err := ClosenessCentrality(d, g, 5, 1, Options{K: 4}) // exact: all vertices sampled
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if v != 2 && res.Scores[2] <= res.Scores[v] {
			t.Fatalf("center score %g not above vertex %d score %g", res.Scores[2], v, res.Scores[v])
		}
	}
}

func TestClosenessValidation(t *testing.T) {
	g := testGraphs(t)["uni"]
	d := testDevice(t)
	if _, err := ClosenessCentrality(d, g, 0, 1, Options{K: 1}); err == nil {
		t.Error("zero samples accepted")
	}
	// samples beyond |V| clamps.
	res, err := ClosenessCentrality(d, g, g.NumVertices()+100, 1, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sources) != g.NumVertices() {
		t.Fatalf("clamping failed: %d sources", len(res.Sources))
	}
}
