package gpualgo

import (
	"fmt"
	"sort"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// TuneResult records an auto-tuning sweep over virtual warp widths.
type TuneResult struct {
	// BestK is the width with the fewest simulated cycles.
	BestK int
	// Cycles maps each candidate K to its measured cycles.
	Cycles map[int]int64
	// Speedup is baseline (K=1) cycles over BestK cycles (1 if K=1 wins or
	// was not measured).
	Speedup float64
}

// AutoTune measures each candidate K with the supplied function (returning
// simulated cycles) and picks the best. Candidates that fail to divide the
// warp width should be excluded by the caller; measurement errors abort.
func AutoTune(ks []int, measure func(k int) (int64, error)) (*TuneResult, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("gpualgo: no candidate widths to tune over")
	}
	res := &TuneResult{Cycles: make(map[int]int64, len(ks))}
	sorted := append([]int(nil), ks...)
	sort.Ints(sorted)
	var best int64 = -1
	for _, k := range sorted {
		if _, dup := res.Cycles[k]; dup {
			continue
		}
		c, err := measure(k)
		if err != nil {
			return nil, fmt.Errorf("gpualgo: tuning K=%d: %w", k, err)
		}
		res.Cycles[k] = c
		if best < 0 || c < best {
			best, res.BestK = c, k
		}
	}
	res.Speedup = 1
	if base, ok := res.Cycles[1]; ok && best > 0 {
		res.Speedup = float64(base) / float64(best)
	}
	return res, nil
}

// CandidateKs returns the power-of-two widths valid for the device
// (1, 2, ..., warp width).
func CandidateKs(d *simt.Device) []int {
	var ks []int
	for k := 1; k <= d.Config().WarpWidth; k *= 2 {
		ks = append(ks, k)
	}
	return ks
}

// AutoTuneBFS sweeps BFS over the device's candidate widths on g and
// returns the tuning record. Each measurement runs on a fresh device with
// the given base configuration so runs do not share state.
func AutoTuneBFS(cfg simt.Config, g *graph.CSR, src graph.VertexID, opts Options) (*TuneResult, error) {
	probe, err := simt.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	return AutoTune(CandidateKs(probe), func(k int) (int64, error) {
		d, err := simt.NewDevice(cfg)
		if err != nil {
			return 0, err
		}
		o := opts
		o.K = k
		res, err := BFS(d, Upload(d, g), src, o)
		if err != nil {
			return 0, err
		}
		return res.Stats.Cycles, nil
	})
}

// AutoTuneNeighborSum sweeps the gather microkernel — a cheap proxy probe
// whose best K usually transfers to the full algorithms on the same graph.
func AutoTuneNeighborSum(cfg simt.Config, g *graph.CSR, opts Options) (*TuneResult, error) {
	probe, err := simt.NewDevice(cfg)
	if err != nil {
		return nil, err
	}
	values := make([]int32, g.NumVertices())
	return AutoTune(CandidateKs(probe), func(k int) (int64, error) {
		d, err := simt.NewDevice(cfg)
		if err != nil {
			return 0, err
		}
		o := opts
		o.K = k
		res, err := NeighborSum(d, Upload(d, g), values, o)
		if err != nil {
			return 0, err
		}
		return res.Stats.Cycles, nil
	})
}
