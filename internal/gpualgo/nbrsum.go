package gpualgo

import (
	"fmt"

	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// NeighborSumResult is the output of the neighbor-sum microkernel.
type NeighborSumResult struct {
	Result
	// Sums[v] is the sum of values[u] over v's out-neighbors u.
	Sums []int32
}

// NeighborSum computes, for every vertex, the sum of a per-vertex value over
// its out-neighbors — the minimal irregular gather kernel. It is the
// coalescing microbenchmark (experiment E10): a single pass whose
// memory-transaction count isolates the baseline's scattered adjacency reads
// from the warp-centric mapping's coalesced ones, with no algorithmic
// iteration effects mixed in.
func NeighborSum(d *simt.Device, dg *DeviceGraph, values []int32, opts Options) (*NeighborSumResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if len(values) != dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: %d values for %d vertices", len(values), dg.NumVertices)
	}
	n := dg.NumVertices
	dVals := d.UploadI32("nbrsum.values", values)
	out := d.AllocI32("nbrsum.out", n)
	var counter *simt.BufI32
	if opts.Dynamic {
		counter = d.AllocI32("nbrsum.counter", 1)
	}
	res := &NeighborSumResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	kernel := func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			acc := w.VecI32()
			w.FillI32(acc, 0)
			nbr := w.VecI32()
			val := w.VecI32()
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dg.Col, j, nbr)
				w.LoadI32(dVals, nbr, val)
				w.AddI32(acc, acc, val)
			})
			sums := make([]int32, g)
			ts.ReduceAddI32(acc, sums)
			ts.StoreI32Grouped(out, ts.Task, sums, nil)
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(n), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(n), body)
		}
	}
	stats, err := d.Launch(opts.grid(d, n), kernel)
	if err != nil {
		return nil, fmt.Errorf("gpualgo: neighbor sum: %w", err)
	}
	res.Stats.Add(stats)
	res.Launches = 1
	res.Iterations = 1
	res.Sums = append([]int32(nil), out.Data()...)
	return res, nil
}

// NeighborSumCPU is the host oracle for NeighborSum.
func NeighborSumCPU(rowPtr []int32, col []int32, values []int32) []int32 {
	n := len(rowPtr) - 1
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		var sum int32
		for _, u := range col[rowPtr[v]:rowPtr[v+1]] {
			sum += values[u]
		}
		out[v] = sum
	}
	return out
}
