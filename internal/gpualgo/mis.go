package gpualgo

import (
	"fmt"
	"sort"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
	"maxwarp/internal/xrand"
)

// MIS status codes in the device status array.
const (
	misUndecided = int32(0)
	misIn        = int32(1)
	misOut       = int32(2)
)

// MISResult is the output of maximal-independent-set computation.
type MISResult struct {
	Result
	// InSet[v] reports whether v is in the maximal independent set.
	InSet []bool
	// Size is the set cardinality.
	Size int
}

// MIS computes a maximal independent set of an undirected graph with the
// deterministic-priority variant of Luby's algorithm: every round, each
// undecided vertex whose (hashed) priority exceeds that of all its undecided
// neighbors joins the set and knocks its neighbors out. With fixed
// priorities the fixpoint is unique — identical to sequential greedy MIS in
// priority order, which is the CPU oracle. Upload the symmetrized graph.
func MIS(d *simt.Device, dg *DeviceGraph, seed uint64, opts Options) (*MISResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := dg.NumVertices
	prio := d.UploadI32("mis.prio", misPriorities(n, seed))
	status := d.AllocI32("mis.status", n)
	// Every round reads status; 0 = undecided is the starting state, so
	// initialize it explicitly rather than leaning on zeroed allocation.
	status.Fill(0)
	changed := d.AllocI32("mis.changed", 1)
	res := &MISResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for iter := 0; iter < maxIter; iter++ {
		changed.Data()[0] = 0
		stats, err := d.Launch(lc, misRoundKernel(dg, prio, status, changed, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: MIS round %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.InSet = make([]bool, n)
	for v := 0; v < n; v++ {
		if status.Data()[v] == misIn {
			res.InSet[v] = true
			res.Size++
		}
	}
	return res, nil
}

// misRoundKernel runs one round: join if locally max-priority among
// undecided neighbors, then mark all neighbors out.
func misRoundKernel(dg *DeviceGraph, prio, status, changed *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			st := make([]int32, g)
			ts.LoadI32Grouped(status, ts.Task, st)
			ts.Mask(func(gi int) bool { return st[gi] == misUndecided }, func() {
				myPrio := make([]int32, g)
				ts.LoadI32Grouped(prio, ts.Task, myPrio)
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)

				// blocked[lane] = 1 if some undecided neighbor dominates.
				blocked := w.VecI32()
				w.Apply(1, func(lane int) { blocked[lane] = 0 })
				nbr := w.VecI32()
				nst := w.VecI32()
				nprio := w.VecI32()
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(status, nbr, nst)
					w.LoadI32(prio, nbr, nprio)
					w.Apply(2, func(lane int) {
						gi := ts.Group(lane)
						if nst[lane] != misOut {
							if nprio[lane] > myPrio[gi] ||
								(nprio[lane] == myPrio[gi] && nbr[lane] > ts.Task[gi]) {
								blocked[lane] = 1
							}
						}
					})
				})
				anyBlocked := make([]int32, g)
				ts.ReduceAddI32(blocked, anyBlocked)
				ts.Mask(func(gi int) bool { return anyBlocked[gi] == 0 }, func() {
					ins := make([]int32, g)
					for gi := range ins {
						ins[gi] = misIn
					}
					ts.StoreI32Grouped(status, ts.Task, ins, nil)
					one := w.ConstI32(1)
					w.StoreI32(changed, w.ConstI32(0), one)
					outVal := w.ConstI32(misOut)
					ts.SIMDRange(start, end, func(j []int32) {
						w.LoadI32(dg.Col, j, nbr)
						w.StoreI32(status, nbr, outVal)
					})
				})
			})
		})
	}
}

// misPriorities hashes vertex ids to non-negative int32 priorities.
func misPriorities(n int, seed uint64) []int32 {
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		sm := xrand.NewSplitMix64(seed + uint64(v)*0x9e3779b97f4a7c15)
		out[v] = int32(sm.Uint64() >> 33) // non-negative
	}
	return out
}

// MISCPU is the host oracle: greedy MIS in decreasing (priority, id) order,
// the unique fixpoint of the deterministic Luby rounds.
func MISCPU(g *graph.CSR, seed uint64) ([]bool, int) {
	n := g.NumVertices()
	prio := misPriorities(n, seed)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if prio[va] != prio[vb] {
			return prio[va] > prio[vb]
		}
		return va > vb
	})
	inSet := make([]bool, n)
	excluded := make([]bool, n)
	size := 0
	for _, v := range order {
		if excluded[v] {
			continue
		}
		inSet[v] = true
		size++
		excluded[v] = true
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			excluded[u] = true
		}
	}
	return inSet, size
}
