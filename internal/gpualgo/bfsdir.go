package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// Direction selects a BFS traversal direction per level.
type Direction int

const (
	// DirPush is top-down: frontier vertices scan out-edges (the paper's
	// formulation).
	DirPush Direction = iota
	// DirPull is bottom-up: unvisited vertices scan in-edges looking for a
	// frontier parent, with early exit on the first hit.
	DirPull
)

// DirOptions tune the hybrid direction heuristic (Beamer-style, simplified
// to vertex counts): switch to pull when the frontier exceeds |V|/Alpha,
// back to push when it falls below |V|/Beta.
type DirOptions struct {
	Options
	// Alpha controls the push→pull switch (default 4).
	Alpha int
	// Beta controls the pull→push switch (default 24).
	Beta int
	// Force pins every level to one direction (nil = hybrid heuristic).
	Force *Direction
}

// BFSDirResult extends BFSResult with the per-level direction schedule.
type BFSDirResult struct {
	BFSResult
	// Schedule records the direction used at each level.
	Schedule []Direction
}

// BFSDirectionOpt runs direction-optimizing BFS: per level the host picks
// top-down (push) or bottom-up (pull). Pull is the technique the authors
// developed next (Hong et al., PACT 2011 / Beamer et al.): on low-diameter
// skewed graphs the frontier quickly covers most of the graph, and checking
// each unvisited vertex for *any* frontier parent (with early exit) touches
// far fewer edges than expanding the whole frontier. Both kernels use the
// virtual warp-centric mapping.
func BFSDirectionOpt(d *simt.Device, g *graph.CSR, src graph.VertexID, opts DirOptions) (*BFSDirResult, error) {
	opts.Options = opts.Options.withDefaults(d)
	if err := opts.Options.validate(d); err != nil {
		return nil, err
	}
	if opts.Alpha <= 0 {
		opts.Alpha = 4
	}
	if opts.Beta <= 0 {
		opts.Beta = 24
	}
	n := g.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("gpualgo: BFS source %d out of range [0,%d)", src, n)
	}
	dg := Upload(d, g)
	dgRev := Upload(d, g.Reverse())
	levels := d.AllocI32("bfsd.levels", n)
	levels.Fill(Unvisited)
	levels.Data()[src] = 0
	discovered := d.AllocI32("bfsd.discovered", 1)

	res := &BFSDirResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	frontier := 1
	lc := opts.grid(d, n)
	for cur := int32(0); int(cur) < maxIter; cur++ {
		dir := DirPush
		switch {
		case opts.Force != nil:
			dir = *opts.Force
		case frontier > n/opts.Alpha:
			dir = DirPull
		case frontier < n/opts.Beta:
			dir = DirPush
		default:
			dir = DirPull
		}
		discovered.Data()[0] = 0
		var kernel simt.Kernel
		if dir == DirPush {
			kernel = bfsPushCountKernel(dg, levels, discovered, cur, opts.Options)
		} else {
			kernel = bfsPullKernel(dgRev, levels, discovered, cur, opts.Options)
		}
		stats, err := d.Launch(lc, kernel)
		if err != nil {
			return nil, fmt.Errorf("gpualgo: direction-opt BFS level %d: %w", cur, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		res.Schedule = append(res.Schedule, dir)
		frontier = int(discovered.Data()[0])
		if frontier == 0 {
			break
		}
	}
	res.Levels = append([]int32(nil), levels.Data()...)
	for _, l := range res.Levels {
		if l > res.Depth {
			res.Depth = l
		}
	}
	return res, nil
}

// bfsPushCountKernel is the top-down expansion with CAS discovery so the
// new-frontier size can be counted exactly (the hybrid heuristic needs it).
func bfsPushCountKernel(dg *DeviceGraph, levels, discovered *simt.BufI32, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			lvl := make([]int32, g)
			ts.LoadI32Grouped(levels, ts.Task, lvl)
			ts.Mask(func(gi int) bool { return lvl[gi] == cur }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				old := w.VecI32()
				unvisited := w.ConstI32(Unvisited)
				next := w.ConstI32(cur + 1)
				zero := w.ConstI32(0)
				one := w.ConstI32(1)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.AtomicCASI32(levels, nbr, unvisited, next, old)
					w.If(func(lane int) bool { return old[lane] == Unvisited }, func() {
						w.AtomicAddI32(discovered, zero, one, nil)
					}, nil)
				})
			})
		})
	}
}

// bfsPullKernel is the bottom-up check: every unvisited vertex scans its
// in-neighbors for one at the current level, stopping at the first hit
// (a warp-vote early exit, like CUDA's __any).
func bfsPullKernel(dgRev *DeviceGraph, levels, discovered *simt.BufI32, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dgRev.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			lvl := make([]int32, g)
			ts.LoadI32Grouped(levels, ts.Task, lvl)
			ts.Mask(func(gi int) bool { return lvl[gi] == Unvisited }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dgRev.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dgRev.RowPtr, taskP1, end)

				done := make([]bool, g)
				j := w.VecI32()
				w.Apply(1, func(lane int) {
					j[lane] = start[ts.Group(lane)] + int32(ts.LaneInGroup(lane))
				})
				nbr := w.VecI32()
				nl := w.VecI32()
				found := w.VecI32()
				w.Apply(1, func(lane int) { found[lane] = 0 })
				anyFound := w.VecI32()
				w.While(func(lane int) bool {
					gi := ts.Group(lane)
					return !done[gi] && j[lane] < end[gi]
				}, func() {
					w.LoadI32(dgRev.Col, j, nbr)
					w.LoadI32(levels, nbr, nl)
					w.Apply(1, func(lane int) {
						if nl[lane] == cur {
							found[lane] = 1
						}
					})
					// Warp-vote early exit per virtual warp.
					w.GroupReduceAddI32(ts.K, found, anyFound)
					w.Apply(1, func(lane int) {
						gi := ts.Group(lane)
						if anyFound[lane] > 0 {
							done[gi] = true
						}
						j[lane] += int32(ts.K)
					})
				})
				ts.Mask(func(gi int) bool { return done[gi] }, func() {
					vals := make([]int32, g)
					for gi := range vals {
						vals[gi] = cur + 1
					}
					ts.StoreI32Grouped(levels, ts.Task, vals, nil)
					zeros := make([]int32, g)
					ones := make([]int32, g)
					for gi := range ones {
						ones[gi] = 1
					}
					ts.AtomicAddGrouped(discovered, zeros, ones, nil, nil)
				})
			})
		})
	}
}
