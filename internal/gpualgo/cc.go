package gpualgo

import (
	"fmt"

	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// CCResult is the output of a device connected-components run.
type CCResult struct {
	Result
	// Labels maps each vertex to its component label: the minimum vertex id
	// in the component.
	Labels []int32
}

// ConnectedComponents runs min-label propagation on the device: labels start
// as vertex ids; every round each vertex pushes its label to its neighbors
// with atomicMin, until a round changes nothing. For weakly-connected
// components on a directed graph, upload the symmetrized graph.
func ConnectedComponents(d *simt.Device, dg *DeviceGraph, opts Options) (*CCResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := dg.NumVertices
	labels := d.AllocI32("cc.labels", n)
	for i := range labels.Data() {
		labels.Data()[i] = int32(i)
	}
	changed := d.AllocI32("cc.changed", 1)
	var counter *simt.BufI32
	if opts.Dynamic {
		counter = d.AllocI32("cc.counter", 1)
	}
	res := &CCResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for iter := 0; iter < maxIter; iter++ {
		changed.Data()[0] = 0
		if counter != nil {
			counter.Data()[0] = 0
		}
		stats, err := d.Launch(lc, ccPropagateKernel(dg, labels, changed, counter, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: CC round %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.Labels = append([]int32(nil), labels.Data()...)
	return res, nil
}

func ccPropagateKernel(dg *DeviceGraph, labels, changed, counter *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			lbl := make([]int32, g)
			ts.LoadI32Grouped(labels, ts.Task, lbl)
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			nbr := w.VecI32()
			mine := w.VecI32()
			old := w.VecI32()
			zero := w.ConstI32(0)
			one := w.ConstI32(1)
			w.Apply(1, func(lane int) { mine[lane] = lbl[ts.Group(lane)] })
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dg.Col, j, nbr)
				w.AtomicMinI32(labels, nbr, mine, old)
				w.If(func(lane int) bool { return mine[lane] < old[lane] }, func() {
					w.StoreI32(changed, zero, one)
				}, nil)
			})
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), body)
		}
	}
}
