package gpualgo

import (
	"fmt"

	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// CCResult is the output of a device connected-components run.
type CCResult struct {
	Result
	// Labels maps each vertex to its component label: the minimum vertex id
	// in the component.
	Labels []int32
}

// CCRun is an open-loop min-label propagation run: each Step is one
// propagation round. Host-side progress advances only when a step succeeds,
// so a supervisor can restore State after a failure and retry the same
// round (see internal/resilient).
type CCRun struct {
	// Launch supervises every kernel launch of the run.
	Launch simt.LaunchOpts

	d       *simt.Device
	dg      *DeviceGraph
	opts    Options
	labels  *simt.BufI32
	changed *simt.BufI32
	counter *simt.BufI32
	lc      simt.LaunchConfig
	maxIter int
	res     *CCResult
	done    bool
}

// NewCCRun validates the inputs and allocates device state for a
// connected-components run, without launching anything yet.
func NewCCRun(d *simt.Device, dg *DeviceGraph, opts Options) (*CCRun, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := dg.NumVertices
	r := &CCRun{d: d, dg: dg, opts: opts, res: &CCResult{}}
	r.labels = d.AllocI32("cc.labels", n)
	for i := range r.labels.Data() {
		r.labels.Data()[i] = int32(i)
	}
	r.changed = d.AllocI32("cc.changed", 1)
	if opts.Dynamic {
		r.counter = d.AllocI32("cc.counter", 1)
	}
	r.res.Stats.WarpWidth = d.Config().WarpWidth
	r.maxIter = opts.MaxIterations
	if r.maxIter == 0 {
		r.maxIter = n + 1
	}
	r.lc = opts.grid(d, n)
	return r, nil
}

// Step runs one propagation round. It returns done=true once a round
// changes no label or the iteration cap is hit. On error no host state
// advances: the same round can be retried after restoring State.
func (r *CCRun) Step() (bool, error) {
	if r.done {
		return true, nil
	}
	r.changed.Data()[0] = 0
	if r.counter != nil {
		r.counter.Data()[0] = 0
	}
	kernel := ccPropagateKernel(r.dg, r.labels, r.changed, r.counter, r.opts)
	stats, err := r.d.LaunchWith(r.lc, r.Launch, kernel)
	if err != nil {
		return false, fmt.Errorf("gpualgo: CC round %d: %w", r.res.Iterations, err)
	}
	r.res.Stats.Add(stats)
	r.res.Launches++
	r.res.Iterations++
	if r.changed.Data()[0] == 0 || r.res.Iterations >= r.maxIter {
		r.done = true
	}
	return r.done, nil
}

// State returns the device buffers a supervisor must snapshot to make Step
// retryable (CC state plus the uploaded graph).
func (r *CCRun) State() RunState {
	st := RunState{I32: []*simt.BufI32{r.labels, r.changed}}
	if r.counter != nil {
		st.I32 = append(st.I32, r.counter)
	}
	graphState(&st, r.dg)
	return st
}

// Iterations returns the number of completed propagation rounds.
func (r *CCRun) Iterations() int { return r.res.Iterations }

// Result finalizes and returns the run's output. Call it after Step reports
// done (calling earlier returns the labels converged so far).
func (r *CCRun) Result() *CCResult {
	r.res.Labels = append([]int32(nil), r.labels.Data()...)
	return r.res
}

// ConnectedComponents runs min-label propagation on the device: labels start
// as vertex ids; every round each vertex pushes its label to its neighbors
// with atomicMin, until a round changes nothing. For weakly-connected
// components on a directed graph, upload the symmetrized graph.
func ConnectedComponents(d *simt.Device, dg *DeviceGraph, opts Options) (*CCResult, error) {
	r, err := NewCCRun(d, dg, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := r.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return r.Result(), nil
		}
	}
}

func ccPropagateKernel(dg *DeviceGraph, labels, changed, counter *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			lbl := make([]int32, g)
			ts.LoadI32Grouped(labels, ts.Task, lbl)
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			nbr := w.VecI32()
			mine := w.VecI32()
			old := w.VecI32()
			zero := w.ConstI32(0)
			one := w.ConstI32(1)
			w.Apply(1, func(lane int) { mine[lane] = lbl[ts.Group(lane)] })
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dg.Col, j, nbr)
				w.AtomicMinI32(labels, nbr, mine, old)
				w.If(func(lane int) bool { return mine[lane] < old[lane] }, func() {
					w.StoreI32(changed, zero, one)
				}, nil)
			})
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), body)
		}
	}
}
