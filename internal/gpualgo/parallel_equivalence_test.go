package gpualgo

import (
	"fmt"
	"reflect"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
)

// parallelDevice is testDevice with an explicit host execution mode.
func parallelDevice(t testing.TB, parallelSMs int) *simt.Device {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 16
	cfg.MaxBlocksPerSM = 4
	cfg.MaxCycles = 50_000_000
	cfg.ParallelSMs = parallelSMs
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// equivalenceGraph is a seeded Chung-Lu power-law workload, the paper's
// skewed-degree regime where atomics and imbalance are busiest.
func equivalenceGraph(t testing.TB) *graph.CSR {
	t.Helper()
	g, err := gengraph.ChungLu(1500, 8, 2.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// checkStatsEqual compares two accumulated launch-stat totals, ignoring only
// the recorded host mode.
func checkStatsEqual(t *testing.T, name string, seq, par simt.LaunchStats) {
	t.Helper()
	par.ParallelSMs = seq.ParallelSMs
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("%s: merged LaunchStats differ between host modes\n seq: %+v\n par: %+v", name, seq, par)
	}
}

// TestAlgorithmsParallelEquivalence is the ISSUE's satellite coverage: for
// seeded BFS, SSSP, and PageRank on a Chung-Lu preset, ParallelSMs=1 and
// ParallelSMs=N must produce identical algorithm results and identical
// merged LaunchStats (run under -race via make race / make check).
func TestAlgorithmsParallelEquivalence(t *testing.T) {
	g := equivalenceGraph(t)
	src := graph.LargestOutComponentSeed(g)
	weights := gengraph.EdgeWeights(g, 12, 17)
	opts := Options{K: 8}

	type run struct {
		levels []int32
		dist   []int32
		ranks  []float32
		bfs    simt.LaunchStats
		sssp   simt.LaunchStats
		pr     simt.LaunchStats
	}
	exec := func(mode int) run {
		var r run

		d := parallelDevice(t, mode)
		bfs, err := BFS(d, Upload(d, g), src, opts)
		if err != nil {
			t.Fatalf("BFS (ParallelSMs=%d): %v", mode, err)
		}
		r.levels, r.bfs = bfs.Levels, bfs.Stats

		d = parallelDevice(t, mode)
		dg, err := UploadWeighted(d, g, weights)
		if err != nil {
			t.Fatalf("UploadWeighted: %v", err)
		}
		sssp, err := SSSP(d, dg, src, opts)
		if err != nil {
			t.Fatalf("SSSP (ParallelSMs=%d): %v", mode, err)
		}
		r.dist, r.sssp = sssp.Dist, sssp.Stats

		d = parallelDevice(t, mode)
		pr, err := PageRank(d, g, PageRankOptions{Options: opts, Iterations: 8})
		if err != nil {
			t.Fatalf("PageRank (ParallelSMs=%d): %v", mode, err)
		}
		r.ranks, r.pr = pr.Ranks, pr.Stats
		return r
	}

	seq := exec(1)
	for _, mode := range []int{2, 4} {
		par := exec(mode)
		if !reflect.DeepEqual(seq.levels, par.levels) {
			t.Errorf("BFS levels differ between ParallelSMs=1 and %d", mode)
		}
		if !reflect.DeepEqual(seq.dist, par.dist) {
			t.Errorf("SSSP distances differ between ParallelSMs=1 and %d", mode)
		}
		if !reflect.DeepEqual(seq.ranks, par.ranks) {
			t.Errorf("PageRank ranks differ between ParallelSMs=1 and %d", mode)
		}
		checkStatsEqual(t, "BFS", seq.bfs, par.bfs)
		checkStatsEqual(t, "SSSP", seq.sssp, par.sssp)
		checkStatsEqual(t, "PageRank", seq.pr, par.pr)
	}
}

// TestTracedLaunchParallelEquivalence extends the equivalence coverage to
// traced launches: with the parallel-safe sampling tracer attached, a
// ParallelSMs>1 launch must keep the fast path (no SequentialFallback), and
// its algorithm results, merged stats, and merged trace must match the
// sequential loop's bit for bit.
func TestTracedLaunchParallelEquivalence(t *testing.T) {
	g := equivalenceGraph(t)
	src := graph.LargestOutComponentSeed(g)
	weights := gengraph.EdgeWeights(g, 12, 17)
	opts := Options{K: 8}

	type run struct {
		levels    []int32
		dist      []int32
		bfs, sssp simt.LaunchStats
		bfsTrace  []simt.TraceEvent
		ssspTrace []simt.TraceEvent
	}
	exec := func(mode int) run {
		var r run

		d := parallelDevice(t, mode)
		tr := obs.NewSamplingTracer(d.Config().NumSMs, 16, 1024)
		d.SetTracer(tr)
		bfs, err := BFS(d, Upload(d, g), src, opts)
		if err != nil {
			t.Fatalf("BFS (ParallelSMs=%d): %v", mode, err)
		}
		if mode > 1 && bfs.Stats.SequentialFallback != "" {
			t.Fatalf("BFS (ParallelSMs=%d): sampling tracer forced fallback %q",
				mode, bfs.Stats.SequentialFallback)
		}
		r.levels, r.bfs, r.bfsTrace = bfs.Levels, bfs.Stats, tr.Events()

		d = parallelDevice(t, mode)
		tr = obs.NewSamplingTracer(d.Config().NumSMs, 16, 1024)
		d.SetTracer(tr)
		dg, err := UploadWeighted(d, g, weights)
		if err != nil {
			t.Fatalf("UploadWeighted: %v", err)
		}
		sssp, err := SSSP(d, dg, src, opts)
		if err != nil {
			t.Fatalf("SSSP (ParallelSMs=%d): %v", mode, err)
		}
		if mode > 1 && sssp.Stats.SequentialFallback != "" {
			t.Fatalf("SSSP (ParallelSMs=%d): sampling tracer forced fallback %q",
				mode, sssp.Stats.SequentialFallback)
		}
		r.dist, r.sssp, r.ssspTrace = sssp.Dist, sssp.Stats, tr.Events()
		return r
	}

	seq := exec(1)
	if len(seq.bfsTrace) == 0 || len(seq.ssspTrace) == 0 {
		t.Fatal("sequential reference retained no trace events")
	}
	for _, mode := range []int{2, 4} {
		par := exec(mode)
		if !reflect.DeepEqual(seq.levels, par.levels) {
			t.Errorf("BFS levels differ between ParallelSMs=1 and %d", mode)
		}
		if !reflect.DeepEqual(seq.dist, par.dist) {
			t.Errorf("SSSP distances differ between ParallelSMs=1 and %d", mode)
		}
		checkStatsEqual(t, "BFS traced", seq.bfs, par.bfs)
		checkStatsEqual(t, "SSSP traced", seq.sssp, par.sssp)
		if !reflect.DeepEqual(seq.bfsTrace, par.bfsTrace) {
			t.Errorf("BFS sampled trace differs between ParallelSMs=1 and %d", mode)
		}
		if !reflect.DeepEqual(seq.ssspTrace, par.ssspTrace) {
			t.Errorf("SSSP sampled trace differs between ParallelSMs=1 and %d", mode)
		}
	}
}

// BenchmarkBFSHostParallelism measures wall-clock for an E9/E10-class BFS
// workload across host execution modes. ParallelSMs=1 is the classic
// sequential event loop; higher modes shard SMs across host goroutines.
// Results are only meaningful relative to GOMAXPROCS — see EXPERIMENTS.md
// for recorded numbers and the reproduction command.
func BenchmarkBFSHostParallelism(b *testing.B) {
	g, err := gengraph.ChungLu(1<<14, 16, 2.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	for _, mode := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("ParallelSMs=%d", mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := simt.DefaultConfig()
				cfg.ParallelSMs = mode
				cfg.MaxCycles = 500_000_000
				d, err := simt.NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := BFS(d, Upload(d, g), src, Options{K: 32}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
