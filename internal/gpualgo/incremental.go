package gpualgo

import (
	"fmt"
	"sort"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// RepairInfo summarizes the work an incremental run did — the quantities
// EXPERIMENTS.md compares against full recompute.
type RepairInfo struct {
	// Invalidated counts vertices whose previous value was discarded by the
	// host-side invalidation phase (BFS/SSSP: support lost after deletions;
	// CC: members of affected components reset to self-labels).
	Invalidated int
	// Seeds is the initial repair frontier size.
	Seeds int
	// Rounds is the number of device relaxation rounds (kernel launches for
	// the frontier loop; PageRank: power iterations).
	Rounds int
}

// --- BFS / SSSP repair ------------------------------------------------------
//
// Incremental shortest paths runs in two phases, following the classic
// Ramalingam-Reps shape recast onto the device frontier machinery:
//
// Phase 1 (host): invalidation. After deletions, stale values are
// UNDER-estimates (a shorter path may no longer exist), and monotone
// atomicMin relaxation can never raise them — so every vertex whose value
// can no longer be justified must be reset to infinity first. A vertex v is
// supported when some live in-neighbor x has val[x] + w(x,v) == val[v].
// Deleted-edge heads seed a worklist; when a vertex loses all support it is
// invalidated and its out-children that it was supporting are re-checked.
// By induction on the old values, every stale-low vertex lies on a cascade
// from a deleted edge, so invalidation is complete: afterwards every value
// is >= its true distance in the mutated graph.
//
// Phase 2 (device): decrease-only frontier relaxation over the overlay
// (base minus deletion marks plus extension edges), seeded from inserted
// edges' tails and from live in-neighbors of invalidated vertices. Monotone
// relaxation from over-estimates converges to the exact fixpoint, and a
// first-wrong-vertex argument shows the seed set reaches every vertex whose
// value must change — so the repaired result is bit-identical to a full
// recompute on the compacted graph.

// invalidateStale is phase 1. val uses the cpualgo.InfDist convention and is
// rewritten in place; unit forces every edge weight to 1 (BFS hop counts).
// It returns the invalidated vertices in invalidation order.
func invalidateStale(dl *graph.Delta, src graph.VertexID, val []int32, applied []graph.AppliedMutation, unit bool) []graph.VertexID {
	var work []graph.VertexID
	for _, m := range applied {
		if m.Del {
			work = append(work, m.Dst)
		}
	}
	var invalidated []graph.VertexID
	for len(work) > 0 {
		v := work[0]
		work = work[1:]
		if v == src || val[v] >= cpualgo.InfDist {
			continue
		}
		supported := false
		dl.InNeighborsLive(v, func(x graph.VertexID, w int32) bool {
			if unit {
				w = 1
			}
			if val[x] < cpualgo.InfDist && val[x]+w == val[v] {
				supported = true
				return false
			}
			return true
		})
		if supported {
			continue
		}
		old := val[v]
		val[v] = cpualgo.InfDist
		invalidated = append(invalidated, v)
		dl.OutNeighborsLive(v, func(y graph.VertexID, w int32) bool {
			if unit {
				w = 1
			}
			if val[y] == old+w {
				work = append(work, y)
			}
			return true
		})
	}
	return invalidated
}

// repairSeeds builds the phase-2 frontier: tails of inserted edges plus live
// in-neighbors of invalidated vertices, finite-valued only, deduplicated and
// sorted for a deterministic frontier layout.
func repairSeeds(dl *graph.Delta, val []int32, applied []graph.AppliedMutation, invalidated []graph.VertexID) []int32 {
	seen := make(map[graph.VertexID]bool)
	var seeds []int32
	add := func(v graph.VertexID) {
		if !seen[v] && val[v] < cpualgo.InfDist {
			seen[v] = true
			seeds = append(seeds, int32(v))
		}
	}
	for _, m := range applied {
		if !m.Del {
			add(m.Src)
		}
	}
	for _, v := range invalidated {
		dl.InNeighborsLive(v, func(x graph.VertexID, _ int32) bool {
			add(x)
			return true
		})
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds
}

// repairFrontier is the phase-2 device loop: rounds of decrease-only
// relaxation over the overlay until the frontier drains. Per-round
// deduplication uses a claim buffer driven by atomicMin on the negated round
// number (the machine has no atomicMax), so each vertex enters the next
// frontier once per round. Returns the round count.
func repairFrontier(d *simt.Device, ddg *DeviceDeltaGraph, val *simt.BufI32, seeds []int32, weighted bool, opts Options, res *Result) (int, error) {
	n := ddg.NumVertices
	if len(seeds) == 0 {
		return 0, nil
	}
	frontier := d.AllocI32("repair.frontier", n)
	next := d.AllocI32("repair.next", n)
	nextCount := d.AllocI32("repair.nextcount", 1)
	claim := d.AllocI32("repair.claim", n)
	copy(frontier.Data(), seeds)
	frontierLen := len(seeds)

	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	rounds := 0
	for rounds < maxIter && frontierLen > 0 {
		rounds++
		nextCount.Data()[0] = 0
		kernel := repairRelaxKernel(ddg, val, frontier, next, nextCount, claim, int32(frontierLen), int32(-rounds), weighted, opts)
		stats, err := d.Launch(opts.grid(d, frontierLen), kernel)
		if err != nil {
			return rounds, fmt.Errorf("gpualgo: repair round %d: %w", rounds, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		frontierLen = int(nextCount.Data()[0])
		if frontierLen > n {
			return rounds, fmt.Errorf("gpualgo: repair frontier overflow: %d entries for %d vertices", frontierLen, n)
		}
		frontier, next = next, frontier
	}
	if frontierLen > 0 {
		return rounds, fmt.Errorf("gpualgo: repair did not converge in %d rounds", rounds)
	}
	return rounds, nil
}

// incScratchKey is the incScratch cache slot on a WarpCtx's KernelScratch.
const incScratchKey = "gpualgo.incremental"

// incScratch holds the per-warp working vectors and closures of the three
// incremental-repair kernels (repairRelax, ccRepair, dprPull). Like
// bfsScratch, it is cached on the warp context and survives kernel
// invocations and launches: the repair loops relaunch once per round, so in
// steady state the kernels allocate nothing — each bind* method rewrites
// the launch parameters and every closure reads them through the struct.
type incScratch struct {
	w *simt.WarpCtx

	// Per-invocation parameters, rewritten by the bind* methods. val is the
	// value buffer being repaired (distances for relax, labels for CC).
	ddg                            *DeviceDeltaGraph
	val, frontier, next, nextCount *simt.BufI32
	claim                          *simt.BufI32
	weighted                       bool
	negRound                       int32
	neutral                        int32
	contrib, nextF                 *simt.BufF32
	base, damping                  float32
	colB, wtB, delB                *simt.BufI32 // current SIMDRange pass's buffers

	ts *vwarp.Tasks // current invocation's task view (set by the bodies)

	// Per-group vectors, sized for the widest possible grouping (K=1).
	dv, start, end, extStart, extEnd, taskP1, lbl []int32
	sums, vals                                    []float32
	// Per-lane vectors.
	nbr, dm, wt, cand, old, cold, slot, vidx, mine []int32
	negR, zero, one                                []int32
	acc, cf                                        []float32

	incSisdP1 func(gi int)
	improved  func(lane int) bool
	enqueue   func()
	claimWon  func(lane int) bool
	pushNext  func()

	relaxBody func(ts *vwarp.Tasks)
	relaxSIMD func(j []int32)
	relaxCand func(lane int)

	ccBody       func(ts *vwarp.Tasks)
	ccPullSIMD   func(j []int32)
	ccPushSIMD   func(j []int32)
	ccVidx       func(lane int)
	ccMine       func(lane int)
	ccNeutralize func(lane int)
	ccCandDel    func(lane int)
	ccCandLive   func(lane int)

	dprBody     func(ts *vwarp.Tasks)
	dprBaseSIMD func(j []int32)
	dprExtSIMD  func(j []int32)
	dprZero     func(lane int)
	dprAccLive  func(lane int)
	dprAccAll   func(lane int)
	dprFinish   func(gi int)
}

// incScratchFor returns the context's cached scratch, building it on first
// use of this warp context by an incremental kernel.
func incScratchFor(w *simt.WarpCtx) *incScratch {
	if s, ok := w.KernelScratch(incScratchKey).(*incScratch); ok {
		return s
	}
	width := w.Width()
	s := &incScratch{
		w:        w,
		dv:       make([]int32, width),
		start:    make([]int32, width),
		end:      make([]int32, width),
		extStart: make([]int32, width),
		extEnd:   make([]int32, width),
		taskP1:   make([]int32, width),
		lbl:      make([]int32, width),
		sums:     make([]float32, width),
		vals:     make([]float32, width),
		nbr:      make([]int32, width),
		dm:       make([]int32, width),
		wt:       make([]int32, width),
		cand:     make([]int32, width),
		old:      make([]int32, width),
		cold:     make([]int32, width),
		slot:     make([]int32, width),
		vidx:     make([]int32, width),
		mine:     make([]int32, width),
		negR:     make([]int32, width),
		zero:     make([]int32, width),
		one:      make([]int32, width),
		acc:      make([]float32, width),
		cf:       make([]float32, width),
	}
	for i := range s.one {
		s.one[i] = 1
	}
	s.incSisdP1 = func(gi int) { s.taskP1[gi] = s.ts.Task[gi] + 1 }
	s.improved = func(lane int) bool { return s.cand[lane] < s.old[lane] }
	s.claimWon = func(lane int) bool { return s.cold[lane] > s.negRound }
	s.pushNext = func() {
		s.w.AtomicAddI32(s.nextCount, s.zero, s.one, s.slot)
		s.w.StoreI32(s.next, s.slot, s.nbr)
	}
	s.enqueue = func() {
		// First claimant this round enqueues the vertex.
		s.w.AtomicMinI32(s.claim, s.nbr, s.negR, s.cold)
		s.w.If(s.claimWon, s.pushNext, nil)
	}

	s.relaxCand = func(lane int) {
		c := s.dv[s.ts.Group(lane)] + 1
		if s.wtB != nil {
			c = s.dv[s.ts.Group(lane)] + s.wt[lane]
		}
		if s.delB != nil && s.dm[lane] != 0 {
			c = cpualgo.InfDist
		}
		s.cand[lane] = c
	}
	s.relaxSIMD = func(j []int32) {
		s.w.LoadI32(s.colB, j, s.nbr)
		if s.delB != nil {
			s.w.LoadI32(s.delB, j, s.dm)
		}
		if s.wtB != nil {
			s.w.LoadI32(s.wtB, j, s.wt)
		}
		s.w.Apply(1, s.relaxCand)
		s.w.AtomicMinI32(s.val, s.nbr, s.cand, s.old)
		s.w.If(s.improved, s.enqueue, nil)
	}
	s.relaxBody = func(ts *vwarp.Tasks) {
		s.ts = ts
		// Indirect through the frontier: the task id is a queue slot.
		ts.LoadI32Grouped(s.frontier, ts.Task, ts.Task)
		ts.LoadI32Grouped(s.val, ts.Task, s.dv)
		ts.SISD(1, s.incSisdP1)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, ts.Task, s.start)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, s.taskP1, s.end)
		s.colB, s.delB = s.ddg.Base.Col, s.ddg.Del
		s.wtB = nil
		if s.weighted {
			s.wtB = s.ddg.Base.Weights
		}
		ts.SIMDRange(s.start, s.end, s.relaxSIMD)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, ts.Task, s.start)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, s.taskP1, s.end)
		s.colB, s.delB = s.ddg.ExtCol, nil
		if s.weighted {
			s.wtB = s.ddg.ExtWeights
		}
		ts.SIMDRange(s.start, s.end, s.relaxSIMD)
	}

	s.ccVidx = func(lane int) { s.vidx[lane] = s.ts.Task[s.ts.Group(lane)] }
	s.ccMine = func(lane int) { s.mine[lane] = s.lbl[s.ts.Group(lane)] }
	s.ccNeutralize = func(lane int) {
		if s.dm[lane] != 0 {
			s.their()[lane] = s.neutral
		}
	}
	s.ccCandDel = func(lane int) {
		if s.dm[lane] != 0 {
			s.cand[lane] = s.neutral
		} else {
			s.cand[lane] = s.mine[lane]
		}
	}
	s.ccCandLive = func(lane int) { s.cand[lane] = s.mine[lane] }
	s.ccPullSIMD = func(j []int32) {
		s.w.LoadI32(s.colB, j, s.nbr)
		if s.delB != nil {
			s.w.LoadI32(s.delB, j, s.dm)
		}
		s.w.LoadI32(s.val, s.nbr, s.their())
		if s.delB != nil {
			s.w.Apply(1, s.ccNeutralize)
		}
		s.w.AtomicMinI32(s.val, s.vidx, s.their(), s.old)
	}
	s.ccPushSIMD = func(j []int32) {
		s.w.LoadI32(s.colB, j, s.nbr)
		if s.delB != nil {
			s.w.LoadI32(s.delB, j, s.dm)
			s.w.Apply(1, s.ccCandDel)
		} else {
			s.w.Apply(1, s.ccCandLive)
		}
		s.w.AtomicMinI32(s.val, s.nbr, s.cand, s.old)
		s.w.If(s.improved, s.enqueue, nil)
	}
	s.ccBody = func(ts *vwarp.Tasks) {
		s.ts = ts
		ts.LoadI32Grouped(s.frontier, ts.Task, ts.Task)
		ts.SISD(1, s.incSisdP1)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, ts.Task, s.start)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, s.taskP1, s.end)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, ts.Task, s.extStart)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, s.taskP1, s.extEnd)
		s.w.Apply(1, s.ccVidx)
		s.colB, s.delB = s.ddg.Base.Col, s.ddg.Del
		ts.SIMDRange(s.start, s.end, s.ccPullSIMD)
		s.colB, s.delB = s.ddg.ExtCol, nil
		ts.SIMDRange(s.extStart, s.extEnd, s.ccPullSIMD)
		// Re-read the refreshed label, then push it outward.
		ts.LoadI32Grouped(s.val, ts.Task, s.lbl)
		s.w.Apply(1, s.ccMine)
		s.colB, s.delB = s.ddg.Base.Col, s.ddg.Del
		ts.SIMDRange(s.start, s.end, s.ccPushSIMD)
		s.colB, s.delB = s.ddg.ExtCol, nil
		ts.SIMDRange(s.extStart, s.extEnd, s.ccPushSIMD)
	}

	s.dprZero = func(lane int) { s.acc[lane] = 0 }
	s.dprAccLive = func(lane int) {
		if s.dm[lane] == 0 {
			s.acc[lane] += s.cf[lane]
		}
	}
	s.dprAccAll = func(lane int) { s.acc[lane] += s.cf[lane] }
	s.dprFinish = func(gi int) { s.vals[gi] = s.base + s.damping*s.sums[gi] }
	s.dprBaseSIMD = func(j []int32) {
		s.w.LoadI32(s.ddg.Base.Col, j, s.nbr)
		s.w.LoadI32(s.ddg.Del, j, s.dm)
		s.w.LoadF32(s.contrib, s.nbr, s.cf)
		s.w.Apply(1, s.dprAccLive)
	}
	s.dprExtSIMD = func(j []int32) {
		s.w.LoadI32(s.ddg.ExtCol, j, s.nbr)
		s.w.LoadF32(s.contrib, s.nbr, s.cf)
		s.w.Apply(1, s.dprAccAll)
	}
	s.dprBody = func(ts *vwarp.Tasks) {
		s.ts = ts
		ts.SISD(1, s.incSisdP1)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, ts.Task, s.start)
		ts.LoadI32Grouped(s.ddg.Base.RowPtr, s.taskP1, s.end)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, ts.Task, s.extStart)
		ts.LoadI32Grouped(s.ddg.ExtRowPtr, s.taskP1, s.extEnd)
		s.w.Apply(1, s.dprZero)
		ts.SIMDRange(s.start, s.end, s.dprBaseSIMD)
		ts.SIMDRange(s.extStart, s.extEnd, s.dprExtSIMD)
		ts.ReduceAddF32(s.acc, s.sums)
		ts.SISD(1, s.dprFinish)
		ts.StoreF32Grouped(s.nextF, ts.Task, s.vals, nil)
	}

	w.SetKernelScratch(incScratchKey, s)
	return s
}

// their aliases the wt vector for the CC kernel's neighbor-label pass (the
// two kernels never run in the same invocation, so the lanes never clash).
func (s *incScratch) their() []int32 { return s.wt }

// bindRelax rewrites the scratch for one repairRelaxKernel invocation.
func (s *incScratch) bindRelax(ddg *DeviceDeltaGraph, val, frontier, next, nextCount, claim *simt.BufI32, negRound int32, weighted bool) {
	s.ddg, s.val, s.frontier, s.next, s.nextCount, s.claim = ddg, val, frontier, next, nextCount, claim
	s.negRound, s.weighted = negRound, weighted
	for i := range s.negR {
		s.negR[i] = negRound
	}
}

// bindCC rewrites the scratch for one ccRepairKernel invocation.
func (s *incScratch) bindCC(ddg *DeviceDeltaGraph, labels, frontier, next, nextCount, claim *simt.BufI32, negRound, neutral int32) {
	s.ddg, s.val, s.frontier, s.next, s.nextCount, s.claim = ddg, labels, frontier, next, nextCount, claim
	s.negRound, s.neutral = negRound, neutral
	for i := range s.negR {
		s.negR[i] = negRound
	}
}

// bindDPR rewrites the scratch for one dprPullKernel invocation.
func (s *incScratch) bindDPR(ddg *DeviceDeltaGraph, contrib, next *simt.BufF32, base, damping float32) {
	s.ddg, s.contrib, s.nextF, s.base, s.damping = ddg, contrib, next, base, damping
}

// repairRelaxKernel relaxes the out-edges of one frontier's vertices over
// the overlay: the masked base pass first, then the extension pass. Deleted
// base lanes relax with an InfDist candidate (a no-op on the min), which
// keeps the warp convergent instead of branching around dead edges.
func repairRelaxKernel(ddg *DeviceDeltaGraph, val, frontier, next, nextCount, claim *simt.BufI32, frontierLen, negRound int32, weighted bool, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		s := incScratchFor(w)
		s.bindRelax(ddg, val, frontier, next, nextCount, claim, negRound, weighted)
		vwarp.ForEachStatic(w, opts.K, frontierLen, s.relaxBody)
	}
}

// IncrementalBFS repairs prevLevels (a BFS result for the pre-batch graph
// from the same source, Unvisited convention) after the mutation batches
// whose effective changes are applied, yielding levels bit-identical to a
// full BFS on the compacted graph. ddg must be the forward upload of dl at
// its current epoch (nil uploads one).
func IncrementalBFS(d *simt.Device, dl *graph.Delta, ddg *DeviceDeltaGraph, src graph.VertexID, prevLevels []int32, applied []graph.AppliedMutation, opts Options) (*BFSResult, RepairInfo, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, RepairInfo{}, err
	}
	n := dl.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: BFS source %d out of range [0,%d)", src, n)
	}
	if len(prevLevels) != n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: %d previous levels for %d vertices", len(prevLevels), n)
	}
	if ddg == nil {
		var err error
		if ddg, err = UploadDelta(d, dl); err != nil {
			return nil, RepairInfo{}, err
		}
	}
	if err := checkDeltaEpoch(ddg, dl); err != nil {
		return nil, RepairInfo{}, err
	}
	val := make([]int32, n)
	for i, l := range prevLevels {
		if l == Unvisited {
			val[i] = cpualgo.InfDist
		} else {
			val[i] = l
		}
	}
	invalidated := invalidateStale(dl, src, val, applied, true)
	seeds := repairSeeds(dl, val, applied, invalidated)

	res := &BFSResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	dval := d.AllocI32("ibfs.val", n)
	copy(dval.Data(), val)
	rounds, err := repairFrontier(d, ddg, dval, seeds, false, opts, &res.Result)
	if err != nil {
		return nil, RepairInfo{}, err
	}
	res.Levels = make([]int32, n)
	for i, v := range dval.Data() {
		if v >= cpualgo.InfDist {
			res.Levels[i] = Unvisited
		} else {
			res.Levels[i] = v
			if v > res.Depth {
				res.Depth = v
			}
		}
	}
	return res, RepairInfo{Invalidated: len(invalidated), Seeds: len(seeds), Rounds: rounds}, nil
}

// IncrementalSSSP repairs prevDist (an SSSP result for the pre-batch graph
// from the same source, cpualgo.InfDist convention) after the mutation
// batches whose effective changes are applied, yielding distances
// bit-identical to a full SSSP on the compacted graph. The delta must be
// weighted; ddg must be the forward upload of dl at its current epoch (nil
// uploads one).
func IncrementalSSSP(d *simt.Device, dl *graph.Delta, ddg *DeviceDeltaGraph, src graph.VertexID, prevDist []int32, applied []graph.AppliedMutation, opts Options) (*SSSPResult, RepairInfo, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, RepairInfo{}, err
	}
	if !dl.Weighted() {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: incremental SSSP requires a weighted delta")
	}
	n := dl.NumVertices()
	if src < 0 || int(src) >= n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: SSSP source %d out of range [0,%d)", src, n)
	}
	if len(prevDist) != n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: %d previous distances for %d vertices", len(prevDist), n)
	}
	if ddg == nil {
		var err error
		if ddg, err = UploadDelta(d, dl); err != nil {
			return nil, RepairInfo{}, err
		}
	}
	if err := checkDeltaEpoch(ddg, dl); err != nil {
		return nil, RepairInfo{}, err
	}
	val := append([]int32(nil), prevDist...)
	invalidated := invalidateStale(dl, src, val, applied, false)
	seeds := repairSeeds(dl, val, applied, invalidated)

	res := &SSSPResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	dval := d.AllocI32("isssp.val", n)
	copy(dval.Data(), val)
	rounds, err := repairFrontier(d, ddg, dval, seeds, true, opts, &res.Result)
	if err != nil {
		return nil, RepairInfo{}, err
	}
	res.Dist = append([]int32(nil), dval.Data()...)
	return res, RepairInfo{Invalidated: len(invalidated), Seeds: len(seeds), Rounds: rounds}, nil
}

// --- Connected components repair -------------------------------------------

// IncrementalCC repairs prevLabels (min-vertex-id component labels for the
// pre-batch graph) after mutation batches on a SYMMETRIC delta (every
// mutation applied in both directions, as ConnectedComponents expects a
// symmetrized upload). Inserts union components; deletions reset every
// vertex of an affected component to its own id and recompute those
// components by min-label propagation — seeded from the reset vertices and
// inserted edges' endpoints, pulling before pushing so a reset vertex
// re-adopts a surviving neighbor label even when that neighbor is not
// seeded. The result is bit-identical to a full recompute on the compacted
// graph. ddg must be the forward upload of dl at its current epoch (nil
// uploads one).
func IncrementalCC(d *simt.Device, dl *graph.Delta, ddg *DeviceDeltaGraph, prevLabels []int32, applied []graph.AppliedMutation, opts Options) (*CCResult, RepairInfo, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, RepairInfo{}, err
	}
	n := dl.NumVertices()
	if len(prevLabels) != n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: %d previous labels for %d vertices", len(prevLabels), n)
	}
	if ddg == nil {
		var err error
		if ddg, err = UploadDelta(d, dl); err != nil {
			return nil, RepairInfo{}, err
		}
	}
	if err := checkDeltaEpoch(ddg, dl); err != nil {
		return nil, RepairInfo{}, err
	}
	labels := append([]int32(nil), prevLabels...)
	// Deletions may split a component: reset every member of a component
	// touched by a deletion. (Label propagation cannot raise labels, so a
	// split's new sub-component must restart from self-labels.)
	affected := make(map[int32]bool)
	for _, m := range applied {
		if m.Del {
			affected[labels[m.Src]] = true
			affected[labels[m.Dst]] = true
		}
	}
	seen := make(map[int32]bool)
	var seeds []int32
	invalidated := 0
	for v := 0; v < n; v++ {
		if affected[prevLabels[v]] {
			labels[v] = int32(v)
			invalidated++
			if !seen[int32(v)] {
				seen[int32(v)] = true
				seeds = append(seeds, int32(v))
			}
		}
	}
	for _, m := range applied {
		if !m.Del {
			for _, v := range [2]graph.VertexID{m.Src, m.Dst} {
				if !seen[int32(v)] {
					seen[int32(v)] = true
					seeds = append(seeds, int32(v))
				}
			}
		}
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })

	res := &CCResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	dlabels := d.AllocI32("icc.labels", n)
	copy(dlabels.Data(), labels)
	rounds, err := ccRepairLoop(d, ddg, dlabels, seeds, opts, &res.Result)
	if err != nil {
		return nil, RepairInfo{}, err
	}
	res.Labels = append([]int32(nil), dlabels.Data()...)
	return res, RepairInfo{Invalidated: invalidated, Seeds: len(seeds), Rounds: rounds}, nil
}

// ccRepairLoop drains a min-label frontier with the pull-then-push kernel.
func ccRepairLoop(d *simt.Device, ddg *DeviceDeltaGraph, labels *simt.BufI32, seeds []int32, opts Options, res *Result) (int, error) {
	n := ddg.NumVertices
	if len(seeds) == 0 {
		return 0, nil
	}
	frontier := d.AllocI32("icc.frontier", n)
	next := d.AllocI32("icc.next", n)
	nextCount := d.AllocI32("icc.nextcount", 1)
	claim := d.AllocI32("icc.claim", n)
	copy(frontier.Data(), seeds)
	frontierLen := len(seeds)
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	rounds := 0
	for rounds < maxIter && frontierLen > 0 {
		rounds++
		nextCount.Data()[0] = 0
		kernel := ccRepairKernel(ddg, labels, frontier, next, nextCount, claim, int32(frontierLen), int32(-rounds), opts)
		stats, err := d.Launch(opts.grid(d, frontierLen), kernel)
		if err != nil {
			return rounds, fmt.Errorf("gpualgo: CC repair round %d: %w", rounds, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		frontierLen = int(nextCount.Data()[0])
		if frontierLen > n {
			return rounds, fmt.Errorf("gpualgo: CC repair frontier overflow: %d entries for %d vertices", frontierLen, n)
		}
		frontier, next = next, frontier
	}
	if frontierLen > 0 {
		return rounds, fmt.Errorf("gpualgo: CC repair did not converge in %d rounds", rounds)
	}
	return rounds, nil
}

// ccRepairKernel processes one frontier: each vertex first PULLS the minimum
// label over its live neighbors onto itself (a reset vertex re-adopts a
// surviving component label even when no neighbor is in the frontier), then
// PUSHES its refreshed label outward, enqueueing neighbors whose label
// dropped. Deleted base lanes participate with a neutral candidate (>= any
// live label) so the warp stays convergent.
func ccRepairKernel(ddg *DeviceDeltaGraph, labels, frontier, next, nextCount, claim *simt.BufI32, frontierLen, negRound int32, opts Options) simt.Kernel {
	neutral := int32(ddg.NumVertices) // labels are vertex ids < n
	return func(w *simt.WarpCtx) {
		s := incScratchFor(w)
		s.bindCC(ddg, labels, frontier, next, nextCount, claim, negRound, neutral)
		vwarp.ForEachStatic(w, opts.K, frontierLen, s.ccBody)
	}
}

// --- Delta PageRank ---------------------------------------------------------

// DeltaPageRank re-converges PageRank after mutations, warm-started from the
// previous rank vector: pull-based power iteration over the REVERSE overlay
// (rddg, from UploadDeltaReverse) with live out-degrees, stopping when the
// L1 step delta falls below opts.Tolerance (default 1e-6) or the iteration
// cap is hit. For small batches the warm start re-converges in a few
// iterations where a cold run pays the full budget — the cycle saving
// EXPERIMENTS.md quantifies. prev must have one rank per vertex (nil cold
// starts at 1/n). Results match a converged full recompute to within the
// tolerance, not bit-exactly: float accumulation order differs from the
// non-overlay pull kernel.
func DeltaPageRank(d *simt.Device, dl *graph.Delta, rddg *DeviceDeltaGraph, prev []float32, opts PageRankOptions) (*PageRankResult, RepairInfo, error) {
	opts.Options = opts.Options.withDefaults(d)
	if err := opts.Options.validate(d); err != nil {
		return nil, RepairInfo{}, err
	}
	if opts.Damping == 0 {
		opts.Damping = 0.85
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: damping %f outside [0,1)", opts.Damping)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 50
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = 1e-6
	}
	n := dl.NumVertices()
	res := &PageRankResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	if n == 0 {
		return res, RepairInfo{}, nil
	}
	if prev != nil && len(prev) != n {
		return nil, RepairInfo{}, fmt.Errorf("gpualgo: %d previous ranks for %d vertices", len(prev), n)
	}
	if rddg == nil {
		var err error
		if rddg, err = UploadDeltaReverse(d, dl); err != nil {
			return nil, RepairInfo{}, err
		}
	}
	if err := checkDeltaEpoch(rddg, dl); err != nil {
		return nil, RepairInfo{}, err
	}
	outDeg := dl.LiveOutDegrees()
	dOutDeg := d.UploadI32("dpr.outdeg", outDeg)
	rank := d.AllocF32("dpr.rank", n)
	contrib := d.AllocF32("dpr.contrib", n)
	next := d.AllocF32("dpr.next", n)
	if prev != nil {
		copy(rank.Data(), prev)
	} else {
		rank.Fill(1 / float32(n))
	}
	lc := opts.grid(d, n)
	rounds := 0
	for rounds < opts.Iterations {
		var dangling float32
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank.Data()[v]
			}
		}
		base := (1-opts.Damping)/float32(n) + opts.Damping*dangling/float32(n)
		stats, err := d.Launch(lc, prContribKernel(n, rank, contrib, dOutDeg))
		if err != nil {
			return nil, RepairInfo{}, fmt.Errorf("gpualgo: delta PageRank contrib iter %d: %w", rounds, err)
		}
		pstats, err := d.Launch(lc, dprPullKernel(rddg, contrib, next, base, opts))
		if err != nil {
			return nil, RepairInfo{}, fmt.Errorf("gpualgo: delta PageRank pull iter %d: %w", rounds, err)
		}
		stats.Add(pstats)
		res.Stats.Add(stats)
		res.Launches += 2
		res.Iterations++
		rounds++
		var l1 float32
		for v := 0; v < n; v++ {
			diff := next.Data()[v] - rank.Data()[v]
			if diff < 0 {
				diff = -diff
			}
			l1 += diff
		}
		rank, next = next, rank
		if l1 < opts.Tolerance {
			break
		}
	}
	res.Ranks = append([]float32(nil), rank.Data()...)
	return res, RepairInfo{Rounds: rounds}, nil
}

// dprPullKernel computes next[v] = base + d * sum over live in-neighbors of
// contrib[u], over the reverse overlay (masked reverse base, then reverse
// extension). Deleted lanes contribute zero instead of diverging.
func dprPullKernel(rddg *DeviceDeltaGraph, contrib, next *simt.BufF32, base float32, opts PageRankOptions) simt.Kernel {
	return func(w *simt.WarpCtx) {
		s := incScratchFor(w)
		s.bindDPR(rddg, contrib, next, base, opts.Damping)
		vwarp.ForEachStatic(w, opts.K, int32(rddg.NumVertices), s.dprBody)
	}
}
