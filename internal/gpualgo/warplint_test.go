package gpualgo

import (
	"encoding/json"
	"flag"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/kernelcheck"
	"maxwarp/internal/simt"
)

// TestWarplintPredictions is the static/dynamic cross-validation harness:
// internal/kernelcheck's CFG + lane-taint verdicts on one side, the
// simulator's measured LaunchStats counters on the other. Both sides are
// pinned in testdata/warplint_expectations.json (regenerate with
// `go test ./internal/gpualgo -run TestWarplintPredictions -update-warplint`
// and review the diff), and a set of correlation assertions checks that the
// predictions actually track the machine:
//
//	divergence=data   ->  FullMaskOps/Instructions materially below 1
//	divergence=none   ->  FullMaskOps == Instructions (every op full-mask)
//	coalesce=irregular -> MemTxns/MemOps above the unit-stride floor
//	atomics=serial    ->  AtomicSerial/AtomicOps near warpWidth-1
//
// The fixture kernels below are the controlled ends of each axis; the real
// gpualgo algorithms ride along so a kernel rewrite that shifts a verdict
// or a counter shows up as an expectations diff in review.

var updateWarplint = flag.Bool("update-warplint", false,
	"rewrite testdata/warplint_expectations.json from the current static verdicts and measured counters")

const warplintExpectationsPath = "testdata/warplint_expectations.json"

// --- fixture kernels --------------------------------------------------------
//
// Each fixture isolates one warp-efficiency axis with a known static verdict
// and a predictable dynamic signature. They are top-level factory functions
// so DirVerdicts-style analysis sees them exactly like production kernels.

// warplintFillKernel is the all-clean fixture: uniform value, unit-stride
// store, no branches. Statically divergence=none/coalesce=unit; dynamically
// every issued instruction carries a full mask.
func warplintFillKernel(dst *simt.BufI32, val int32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		v := w.ConstI32(val)
		w.StoreI32(dst, w.GlobalThreadIDs(), v)
	}
}

// warplintStridedKernel indexes at a uniform multiple of the thread id:
// statically coalesce=strided, dynamically several transactions per memory
// op (lanes span stride x warpWidth x 4 bytes).
func warplintStridedKernel(src, dst *simt.BufI32, stride int32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		s := w.ConstI32(stride)
		idx := w.VecI32()
		w.Apply(1, func(lane int) { idx[lane] = w.GlobalThreadIDs()[lane] * s[lane] })
		v := w.VecI32()
		w.LoadI32(src, idx, v)
		w.StoreI32(dst, idx, v)
	}
}

// warplintGatherKernel loads its indexes from memory and gathers through
// them: statically coalesce=irregular, dynamically near one transaction per
// lane when the index buffer is a scrambled permutation.
func warplintGatherKernel(idx, src, dst *simt.BufI32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		g := w.VecI32()
		w.LoadI32(idx, w.GlobalThreadIDs(), g)
		v := w.VecI32()
		w.LoadI32(src, g, v)
		w.StoreI32(dst, w.GlobalThreadIDs(), v)
	}
}

// warplintDataBranchKernel branches on loaded values: statically
// divergence=data, dynamically DivergentBranches > 0 and a full-mask ratio
// below 1 whenever a warp sees mixed parities.
func warplintDataBranchKernel(src, dst *simt.BufI32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		v := w.VecI32()
		w.LoadI32(src, w.GlobalThreadIDs(), v)
		out := w.VecI32()
		w.If(func(lane int) bool { return v[lane]%2 == 0 },
			func() { w.Apply(1, func(lane int) { out[lane] = v[lane] * 2 }) },
			func() { w.Apply(1, func(lane int) { out[lane] = v[lane] + 1 }) })
		w.StoreI32(dst, w.GlobalThreadIDs(), out)
	}
}

// warplintAtomicHotspotKernel has every lane hammer one counter: statically
// atomics=serial, dynamically warpWidth-1 extra serialization steps per op.
//
//kernelcheck:ignore atomicserial — the hotspot is this fixture's entire point
func warplintAtomicHotspotKernel(counter *simt.BufI32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		zero := w.ConstI32(0)
		one := w.ConstI32(1)
		old := w.VecI32()
		w.AtomicAddI32(counter, zero, one, old)
	}
}

// warplintAtomicScatterKernel has each lane update its own cell. The static
// verdict is the conservative atomics=collide (per-lane targets *may*
// collide); the measured counter shows the unit-stride case never does
// (AtomicSerial == 0) — the gap between the sound verdict and the machine.
func warplintAtomicScatterKernel(cells *simt.BufI32) func(*simt.WarpCtx) {
	return func(w *simt.WarpCtx) {
		one := w.ConstI32(1)
		old := w.VecI32()
		w.AtomicAddI32(cells, w.GlobalThreadIDs(), one, old)
	}
}

// --- expectations file shape ------------------------------------------------

type warplintKernelExp struct {
	Kernel     string `json:"kernel"`
	File       string `json:"file"`
	Divergence string `json:"divergence"`
	Loops      string `json:"loops"`
	Coalesce   string `json:"coalesce"`
	Atomics    string `json:"atomics"`
	Barriers   string `json:"barriers"`
	Findings   int    `json:"findings"`
}

// warplintCounters is the deterministic dynamic fingerprint of one run: raw
// integer counters only (the simulator is bit-deterministic in sequential
// mode, so these compare exactly; ratios are derived at assertion time).
type warplintCounters struct {
	Instructions      int64 `json:"instructions"`
	FullMaskOps       int64 `json:"fullmask_ops"`
	MemOps            int64 `json:"mem_ops"`
	MemTxns           int64 `json:"mem_txns"`
	AtomicOps         int64 `json:"atomic_ops"`
	AtomicSerial      int64 `json:"atomic_serial"`
	DivergentBranches int64 `json:"divergent_branches"`
}

type warplintDynExp struct {
	Name string `json:"name"`
	// Files lists the source files whose kernel verdicts this run exercises;
	// the correlation assertions join static verdicts to measured counters
	// through this mapping.
	Files    []string         `json:"files"`
	Counters warplintCounters `json:"counters"`
}

type warplintExpectations struct {
	Kernels []warplintKernelExp `json:"kernels"`
	Dynamic []warplintDynExp    `json:"dynamic"`
}

func countersOf(s simt.LaunchStats) warplintCounters {
	return warplintCounters{
		Instructions:      s.Instructions,
		FullMaskOps:       s.FullMaskOps,
		MemOps:            s.MemOps,
		MemTxns:           s.MemTxns,
		AtomicOps:         s.AtomicOps,
		AtomicSerial:      s.AtomicSerial,
		DivergentBranches: s.DivergentBranches,
	}
}

// --- static side ------------------------------------------------------------

// warplintStaticVerdicts returns the verdicts for every production kernel in
// this package plus the fixture kernels in this file (other _test.go files
// are excluded so unrelated test helpers don't churn the expectations).
func warplintStaticVerdicts(t *testing.T) []warplintKernelExp {
	t.Helper()
	vs, err := kernelcheck.DirVerdicts(".", false)
	if err != nil {
		t.Fatalf("static analysis: %v", err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "warplint_test.go", nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixtures: %v", err)
	}
	vs = append(vs, kernelcheck.FileVerdicts(fset, f)...)
	out := make([]warplintKernelExp, 0, len(vs))
	for _, v := range vs {
		out = append(out, warplintKernelExp{
			Kernel: v.Kernel, File: v.File,
			Divergence: v.Divergence, Loops: v.Loops, Coalesce: v.Coalesce,
			Atomics: v.Atomics, Barriers: v.Barriers, Findings: v.Findings,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Kernel < out[j].Kernel
	})
	return out
}

// --- dynamic side -----------------------------------------------------------

// warplintRun is one measured workload: fixture launches and full algorithm
// runs share the same counter fingerprint.
type warplintRun struct {
	name  string
	files []string
	// kernels, when set, narrows the static-verdict join to specific kernel
	// names: fixture launches run exactly one kernel, so correlating them
	// against every kernel in this file would cross the axes.
	kernels []string
	run     func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) simt.LaunchStats
}

const warplintN = 256 // exact multiple of the warp width: no bounds guard needed

// warplintFixtureRuns launches each fixture kernel on full warps with
// deterministic host-side inputs.
func warplintFixtureRuns() []warplintRun {
	lc := simt.Grid1D(warplintN, 64)
	launch := func(t *testing.T, d *simt.Device, k func(*simt.WarpCtx)) simt.LaunchStats {
		t.Helper()
		stats, err := d.Launch(lc, k)
		if err != nil {
			t.Fatalf("fixture launch: %v", err)
		}
		return *stats
	}
	iota32 := func(n, stride int32) []int32 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i) % stride
		}
		return out
	}
	return []warplintRun{
		{name: "fixture-fill", files: []string{"warplint_test.go"}, kernels: []string{"warplintFillKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			dst := d.AllocI32("wl.fill", warplintN)
			return launch(t, d, warplintFillKernel(dst, 7))
		}},
		{name: "fixture-strided", files: []string{"warplint_test.go"}, kernels: []string{"warplintStridedKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			src := d.UploadI32("wl.ssrc", iota32(warplintN*4, 13))
			dst := d.AllocI32("wl.sdst", warplintN*4)
			return launch(t, d, warplintStridedKernel(src, dst, 4))
		}},
		{name: "fixture-gather", files: []string{"warplint_test.go"}, kernels: []string{"warplintGatherKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			perm := make([]int32, warplintN)
			for i := range perm {
				perm[i] = int32((i*97 + 31) % warplintN) // 97 coprime to 256: a permutation
			}
			idx := d.UploadI32("wl.gidx", perm)
			src := d.UploadI32("wl.gsrc", iota32(warplintN, 11))
			dst := d.AllocI32("wl.gdst", warplintN)
			return launch(t, d, warplintGatherKernel(idx, src, dst))
		}},
		{name: "fixture-databranch", files: []string{"warplint_test.go"}, kernels: []string{"warplintDataBranchKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			vals := make([]int32, warplintN)
			for i := range vals {
				vals[i] = int32((i*37 + 13) % 97) // mixed parities inside every warp
			}
			src := d.UploadI32("wl.bsrc", vals)
			dst := d.AllocI32("wl.bdst", warplintN)
			return launch(t, d, warplintDataBranchKernel(src, dst))
		}},
		{name: "fixture-atomic-hotspot", files: []string{"warplint_test.go"}, kernels: []string{"warplintAtomicHotspotKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			counter := d.AllocI32("wl.hot", 1)
			return launch(t, d, warplintAtomicHotspotKernel(counter))
		}},
		{name: "fixture-atomic-scatter", files: []string{"warplint_test.go"}, kernels: []string{"warplintAtomicScatterKernel"}, run: func(t *testing.T, d *simt.Device, _ *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			cells := d.AllocI32("wl.cells", warplintN)
			return launch(t, d, warplintAtomicScatterKernel(cells))
		}},
	}
}

// warplintAlgoRuns mirrors the sanitizer sweep's dispatch: every gpualgo
// algorithm once, K=4, on the shared seeded RMAT graph.
func warplintAlgoRuns() []warplintRun {
	opts := Options{K: 4}
	return []warplintRun{
		{name: "bfs", files: []string{"bfs.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) simt.LaunchStats {
			res, err := BFS(d, Upload(d, g), src, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "bfsfrontier", files: []string{"bfsfrontier.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) simt.LaunchStats {
			res, err := BFSFrontier(d, Upload(d, g), src, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "bfsdir", files: []string{"bfsdir.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) simt.LaunchStats {
			res, err := BFSDirectionOpt(d, g, src, DirOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "sssp", files: []string{"sssp.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) simt.LaunchStats {
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				t.Fatal(err)
			}
			res, err := SSSP(d, dg, src, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "deltastep", files: []string{"deltastep.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) simt.LaunchStats {
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DeltaStepping(d, dg, src, DeltaSteppingOptions{Options: opts})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "pagerank", files: []string{"pagerank.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			res, err := PageRank(d, g, PageRankOptions{Options: opts, Iterations: 5})
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "cc", files: []string{"cc.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			res, err := ConnectedComponents(d, Upload(d, g), opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "scc", files: []string{"scc.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			res, err := SCC(d, g, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "nbrsum", files: []string{"nbrsum.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			vals := make([]int32, g.NumVertices())
			for i := range vals {
				vals[i] = int32(i%7 + 1)
			}
			res, err := NeighborSum(d, Upload(d, g), vals, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "spmv", files: []string{"spmv.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			vals := make([]float32, g.NumEdges())
			for i := range vals {
				vals[i] = float32(i%5+1) * 0.5
			}
			x := make([]float32, g.NumVertices())
			for i := range x {
				x[i] = float32(i%3 + 1)
			}
			res, err := SpMV(d, Upload(d, g), vals, x, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "triangles", files: []string{"triangles.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			sym, err := g.Symmetrize()
			if err != nil {
				t.Fatal(err)
			}
			res, err := TriangleCount(d, sym, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "kcore", files: []string{"kcore.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			sym, err := g.Symmetrize()
			if err != nil {
				t.Fatal(err)
			}
			res, err := KCore(d, Upload(d, sym), 2, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "mis", files: []string{"mis.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			sym, err := g.Symmetrize()
			if err != nil {
				t.Fatal(err)
			}
			res, err := MIS(d, Upload(d, sym), 42, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "coloring", files: []string{"coloring.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			sym, err := g.Symmetrize()
			if err != nil {
				t.Fatal(err)
			}
			res, err := GraphColoring(d, Upload(d, sym), 42, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "bc", files: []string{"betweenness.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) simt.LaunchStats {
			res, err := BetweennessCentrality(d, g, []graph.VertexID{src}, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "msbfs", files: []string{"msbfs.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) simt.LaunchStats {
			res, err := MSBFS(d, Upload(d, g), []graph.VertexID{src, 0}, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
		{name: "closeness", files: []string{"closeness.go", "msbfs.go"}, run: func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) simt.LaunchStats {
			res, err := ClosenessCentrality(d, g, 2, 7, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res.Stats
		}},
	}
}

// --- the harness ------------------------------------------------------------

func TestWarplintPredictions(t *testing.T) {
	kernels := warplintStaticVerdicts(t)
	byFile := make(map[string][]warplintKernelExp)
	for _, k := range kernels {
		byFile[k.File] = append(byFile[k.File], k)
	}

	g, err := gengraph.RMAT(8, 8, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	weights := gengraph.EdgeWeights(g, 10, 5)

	runs := append(warplintFixtureRuns(), warplintAlgoRuns()...)
	dynamic := make([]warplintDynExp, 0, len(runs))
	measured := make(map[string]warplintCounters, len(runs))
	warpWidth := 0
	for _, r := range runs {
		d := parallelDevice(t, 1) // sequential: bit-deterministic counters
		warpWidth = d.Config().WarpWidth
		c := countersOf(r.run(t, d, g, weights, src))
		measured[r.name] = c
		dynamic = append(dynamic, warplintDynExp{Name: r.name, Files: r.files, Counters: c})
	}

	if *updateWarplint {
		exp := warplintExpectations{Kernels: kernels, Dynamic: dynamic}
		data, err := json.MarshalIndent(exp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(warplintExpectationsPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(warplintExpectationsPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d kernel verdicts and %d dynamic fingerprints to %s",
			len(kernels), len(dynamic), warplintExpectationsPath)
		return
	}

	// 1. Pin the static verdicts against the committed expectations: any
	// verdict change — new kernel, removed kernel, shifted classification —
	// must come with a reviewed regeneration.
	data, err := os.ReadFile(warplintExpectationsPath)
	if err != nil {
		t.Fatalf("missing expectations (%v); regenerate with -update-warplint and commit the file", err)
	}
	var want warplintExpectations
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("bad expectations file: %v", err)
	}
	key := func(k warplintKernelExp) string { return k.File + "/" + k.Kernel }
	wantKernels := make(map[string]warplintKernelExp, len(want.Kernels))
	for _, k := range want.Kernels {
		wantKernels[key(k)] = k
	}
	for _, got := range kernels {
		exp, ok := wantKernels[key(got)]
		if !ok {
			t.Errorf("kernel %s has no committed expectation; regenerate with -update-warplint", key(got))
			continue
		}
		if got != exp {
			t.Errorf("static verdict drift for %s:\n  got  %+v\n  want %+v\nregenerate with -update-warplint if intended", key(got), got, exp)
		}
		delete(wantKernels, key(got))
	}
	for k := range wantKernels {
		t.Errorf("expectations list kernel %s which no longer exists; regenerate with -update-warplint", k)
	}

	// 2. Pin the measured counters: the sequential simulator is
	// deterministic, so raw integers compare exactly.
	wantDyn := make(map[string]warplintCounters, len(want.Dynamic))
	for _, d := range want.Dynamic {
		wantDyn[d.Name] = d.Counters
	}
	for _, d := range dynamic {
		exp, ok := wantDyn[d.Name]
		if !ok {
			t.Errorf("run %q has no committed dynamic fingerprint; regenerate with -update-warplint", d.Name)
			continue
		}
		if d.Counters != exp {
			t.Errorf("dynamic counter drift for %q:\n  got  %+v\n  want %+v\nregenerate with -update-warplint if intended", d.Name, d.Counters, exp)
		}
		delete(wantDyn, d.Name)
	}
	for name := range wantDyn {
		t.Errorf("expectations list run %q which no longer exists; regenerate with -update-warplint", name)
	}

	// 3. The point of the exercise: static verdicts must correlate with the
	// measured counters, run by run, through the files mapping.
	fullmask := func(c warplintCounters) float64 {
		return float64(c.FullMaskOps) / float64(c.Instructions)
	}
	txns := func(c warplintCounters) float64 {
		if c.MemOps == 0 {
			return 0
		}
		return float64(c.MemTxns) / float64(c.MemOps)
	}
	for _, r := range runs {
		c := measured[r.name]
		narrowed := make(map[string]bool, len(r.kernels))
		for _, name := range r.kernels {
			narrowed[name] = true
		}
		var ks []warplintKernelExp
		for _, f := range r.files {
			for _, k := range byFile[f] {
				if len(narrowed) == 0 || narrowed[k.Kernel] {
					ks = append(ks, k)
				}
			}
		}
		if len(ks) == 0 {
			t.Errorf("%s: no static verdicts found for files %v kernels %v", r.name, r.files, r.kernels)
			continue
		}
		divData, allCleanDiv, serial := false, true, false
		for _, k := range ks {
			switch k.Divergence {
			case "data":
				divData = true
				allCleanDiv = false
			case "laneid":
				allCleanDiv = false
			}
			if k.Atomics == "serial" {
				serial = true
			}
		}
		if divData && fullmask(c) >= 0.99 {
			t.Errorf("%s: statically data-divergent but measured full-mask ratio %.4f — the prediction missed", r.name, fullmask(c))
		}
		if allCleanDiv && c.FullMaskOps != c.Instructions {
			t.Errorf("%s: statically divergence-free but %d/%d ops ran under a partial mask", r.name, c.Instructions-c.FullMaskOps, c.Instructions)
		}
		if allCleanDiv && c.DivergentBranches != 0 {
			t.Errorf("%s: statically divergence-free but measured %d divergent branches", r.name, c.DivergentBranches)
		}
		// Multi-kernel algorithm totals dilute any one kernel's
		// serialization, so the aggregate assertion is existence; the
		// near-warpWidth bound is checked on the single-kernel hotspot
		// fixture below.
		if serial && c.AtomicOps > 0 && c.AtomicSerial == 0 {
			t.Errorf("%s: statically atomics=serial but measured zero serialization steps over %d atomic ops",
				r.name, c.AtomicOps)
		}
	}

	// Fixture-level contrasts: each axis's dirty end must measure strictly
	// worse than its clean end.
	fill, gather, strided := measured["fixture-fill"], measured["fixture-gather"], measured["fixture-strided"]
	branch, hotspot, scatter := measured["fixture-databranch"], measured["fixture-atomic-hotspot"], measured["fixture-atomic-scatter"]
	if txns(gather) < txns(fill)+0.5 {
		t.Errorf("irregular gather coalesces like unit stride: %.2f vs %.2f txns/op", txns(gather), txns(fill))
	}
	if txns(strided) < txns(fill)+0.5 {
		t.Errorf("strided access coalesces like unit stride: %.2f vs %.2f txns/op", txns(strided), txns(fill))
	}
	if branch.DivergentBranches == 0 {
		t.Error("data-branch fixture measured no divergent branches")
	}
	if fullmask(branch) >= fullmask(fill) {
		t.Errorf("data-branch full-mask ratio %.4f not below clean fill's %.4f", fullmask(branch), fullmask(fill))
	}
	if hotspot.AtomicOps == 0 || hotspot.AtomicSerial < hotspot.AtomicOps*int64(warpWidth-1) {
		t.Errorf("atomic hotspot: %d serialization steps over %d ops, want %d per op (warp width %d)",
			hotspot.AtomicSerial, hotspot.AtomicOps, warpWidth-1, warpWidth)
	}
	if scatter.AtomicSerial != 0 {
		t.Errorf("atomic scatter: unit-stride targets measured %d serialization steps, want 0", scatter.AtomicSerial)
	}
}
