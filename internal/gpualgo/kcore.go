package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// KCoreResult is the output of k-core computation.
type KCoreResult struct {
	Result
	// InCore[v] reports whether v survives k-core peeling.
	InCore []bool
	// Remaining is the k-core size.
	Remaining int
}

// KCore computes the k-core of an undirected graph by parallel peeling:
// every round, each live vertex whose live degree has fallen below k removes
// itself and decrements its neighbors' degrees with atomics, until a round
// removes nothing. Upload the symmetrized graph.
func KCore(d *simt.Device, dg *DeviceGraph, k int32, opts Options) (*KCoreResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if k < 0 {
		return nil, fmt.Errorf("gpualgo: negative k %d", k)
	}
	n := dg.NumVertices
	deg := d.AllocI32("kcore.deg", n)
	alive := d.AllocI32("kcore.alive", n)
	for v := 0; v < n; v++ {
		deg.Data()[v] = dg.RowPtr.Data()[v+1] - dg.RowPtr.Data()[v]
		alive.Data()[v] = 1
	}
	changed := d.AllocI32("kcore.changed", 1)
	res := &KCoreResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for iter := 0; iter < maxIter; iter++ {
		changed.Data()[0] = 0
		stats, err := d.Launch(lc, kcorePeelKernel(dg, deg, alive, changed, k, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: k-core round %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.InCore = make([]bool, n)
	for v := 0; v < n; v++ {
		if alive.Data()[v] == 1 {
			res.InCore[v] = true
			res.Remaining++
		}
	}
	return res, nil
}

func kcorePeelKernel(dg *DeviceGraph, deg, alive, changed *simt.BufI32, k int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			isAlive := make([]int32, g)
			myDeg := make([]int32, g)
			ts.LoadI32Grouped(alive, ts.Task, isAlive)
			ts.LoadI32Grouped(deg, ts.Task, myDeg)
			ts.Mask(func(gi int) bool { return isAlive[gi] == 1 && myDeg[gi] < k }, func() {
				zeros := make([]int32, g)
				ts.StoreI32Grouped(alive, ts.Task, zeros, nil)
				one := ts.W.ConstI32(1)
				ts.W.StoreI32(changed, ts.W.ConstI32(0), one)
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := ts.W.VecI32()
				minusOne := ts.W.ConstI32(-1)
				ts.SIMDRange(start, end, func(j []int32) {
					ts.W.LoadI32(dg.Col, j, nbr)
					ts.W.AtomicAddI32(deg, nbr, minusOne, nil)
				})
			})
		})
	}
}

// KCoreCPU is the host oracle: sequential peeling with a worklist.
func KCoreCPU(g *graph.CSR, k int32) ([]bool, int) {
	n := g.NumVertices()
	deg := make([]int32, n)
	inCore := make([]bool, n)
	var queue []graph.VertexID
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.VertexID(v))
		inCore[v] = true
		if deg[v] < k {
			queue = append(queue, graph.VertexID(v))
			inCore[v] = false
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, u := range g.Neighbors(v) {
			if !inCore[u] {
				continue
			}
			deg[u]--
			if deg[u] < k {
				inCore[u] = false
				queue = append(queue, u)
			}
		}
	}
	remaining := 0
	for _, in := range inCore {
		if in {
			remaining++
		}
	}
	return inCore, remaining
}
