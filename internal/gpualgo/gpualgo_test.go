package gpualgo

import (
	"math"
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

func testDevice(t testing.TB) *simt.Device {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 16
	cfg.MaxBlocksPerSM = 4
	// Catch kernel livelocks in seconds rather than letting a test hang.
	cfg.MaxCycles = 50_000_000
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testGraphs(t testing.TB) map[string]*graph.CSR {
	t.Helper()
	rmat, err := gengraph.RMAT(9, 8, gengraph.DefaultRMAT, 1)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := gengraph.UniformRandom(400, 3200, 2)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := gengraph.Mesh2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	star, err := gengraph.StarBurst(300, 3, 120, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.CSR{
		"rmat": rmat,
		"uni":  uni,
		"mesh": mesh,
		"star": star,
	}
}

func TestBFSMatchesCPUAllMappings(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := graph.LargestOutComponentSeed(g)
		want := cpualgo.BFSSequential(g, src)
		for _, opts := range []Options{
			{K: 1},
			{K: 2},
			{K: 8},
			{K: 32},
			{K: 8, Dynamic: true},
			{K: 8, Dynamic: true, Chunk: 3},
			{K: 8, DeferThreshold: 16},
			{K: 1, DeferThreshold: 8, Dynamic: true},
			{K: 4, Blocked: true},
			{K: 4, Blocked: true, GridBlocksCap: 2},
		} {
			d := testDevice(t)
			dg := Upload(d, g)
			res, err := BFS(d, dg, src, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(res.Levels, want) {
				t.Fatalf("%s %+v: BFS levels differ from CPU oracle", name, opts)
			}
			if !cpualgo.ValidBFSLevels(g, src, res.Levels) {
				t.Fatalf("%s %+v: invalid BFS labeling", name, opts)
			}
			if res.Launches < res.Iterations {
				t.Fatalf("%s %+v: launches %d < iterations %d", name, opts, res.Launches, res.Iterations)
			}
		}
	}
}

func TestBFSDeferredCountsOutliers(t *testing.T) {
	g, err := gengraph.StarBurst(300, 3, 120, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := BFS(d, dg, src, Options{K: 4, DeferThreshold: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deferred == 0 {
		t.Fatal("no outliers deferred on a hub-heavy graph")
	}
	want := cpualgo.BFSSequential(g, src)
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatal("deferred BFS wrong")
	}
}

func TestBFSDepthAndStats(t *testing.T) {
	g, err := gengraph.Mesh2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := BFS(d, dg, 0, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Mesh corner-to-corner distance is (8-1)+(8-1) = 14.
	if res.Depth != 14 {
		t.Fatalf("mesh BFS depth = %d, want 14", res.Depth)
	}
	if res.Stats.Cycles <= 0 || res.Stats.MemTxns <= 0 {
		t.Fatalf("stats not accumulated: %+v", res.Stats)
	}
	if res.TEPS(g.NumEdges(), 1.4) <= 0 {
		t.Fatal("TEPS not positive")
	}
}

func TestBFSErrors(t *testing.T) {
	g, err := gengraph.UniformRandom(32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	if _, err := BFS(d, dg, -1, Options{K: 1}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := BFS(d, dg, 32, Options{K: 1}); err == nil {
		t.Error("out-of-range source accepted")
	}
	if _, err := BFS(d, dg, 0, Options{K: 3}); err == nil {
		t.Error("non-divisor K accepted")
	}
	if _, err := BFS(d, dg, 0, Options{K: 64}); err == nil {
		t.Error("K beyond warp width accepted")
	}
	if _, err := BFS(d, dg, 0, Options{K: 4, Dynamic: true, Blocked: true}); err == nil {
		t.Error("conflicting schedules accepted")
	}
}

func TestWarpCentricBeatsBaselineOnSkewedGraph(t *testing.T) {
	// The paper's headline claim, at unit-test scale: on a hub-heavy graph,
	// warp-centric (K=32) BFS takes far fewer cycles than thread-per-vertex.
	g, err := gengraph.StarBurst(512, 4, 400, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	run := func(k int) int64 {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := BFS(d, dg, src, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	base := run(1)
	warp := run(32)
	if warp*2 >= base {
		t.Fatalf("warp-centric %d cycles vs baseline %d: expected >2x speedup on skewed graph", warp, base)
	}
}

func TestBaselineCompetitiveOnRegularGraph(t *testing.T) {
	// On a regular low-degree mesh, full-warp mapping wastes lanes; the
	// baseline (or small K) should win or at least not lose badly.
	g, err := gengraph.Torus2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	run := func(k int) int64 {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := BFS(d, dg, 0, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	small := run(2)
	full := run(32)
	if small > full {
		t.Fatalf("K=2 (%d cycles) should not lose to K=32 (%d) on a 4-regular torus", small, full)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	for name, g := range testGraphs(t) {
		weights := gengraph.EdgeWeights(g, 10, 42)
		src := graph.LargestOutComponentSeed(g)
		want := cpualgo.SSSPDijkstra(g, weights, src)
		for _, opts := range []Options{{K: 1}, {K: 8}, {K: 32, Dynamic: true}} {
			d := testDevice(t)
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				t.Fatal(err)
			}
			res, err := SSSP(d, dg, src, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(res.Dist, want) {
				t.Fatalf("%s %+v: SSSP distances differ from Dijkstra", name, opts)
			}
		}
	}
}

func TestSSSPRequiresWeights(t *testing.T) {
	g, err := gengraph.UniformRandom(32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	if _, err := SSSP(d, dg, 0, Options{K: 1}); err == nil {
		t.Fatal("unweighted SSSP accepted")
	}
	if _, err := UploadWeighted(d, g, []int32{1}); err == nil {
		t.Fatal("mismatched weight count accepted")
	}
}

func TestPageRankMatchesCPU(t *testing.T) {
	for _, name := range []string{"rmat", "uni"} {
		g := testGraphs(t)[name]
		const iters = 15
		want, _ := cpualgo.PageRank(g, cpualgo.PageRankOptions{MaxIters: iters, Tolerance: 1e-30})
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			res, err := PageRank(d, g, PageRankOptions{Options: Options{K: k}, Iterations: iters})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			if len(res.Ranks) != len(want) {
				t.Fatalf("%s K=%d: rank length", name, k)
			}
			var sum float64
			for v := range want {
				sum += float64(res.Ranks[v])
				if diff := math.Abs(float64(res.Ranks[v]) - want[v]); diff > 1e-3*(want[v]+1e-9)+1e-5 {
					t.Fatalf("%s K=%d: rank[%d] = %g, oracle %g", name, k, v, res.Ranks[v], want[v])
				}
			}
			if math.Abs(sum-1) > 1e-2 {
				t.Fatalf("%s K=%d: ranks sum to %f", name, k, sum)
			}
		}
	}
}

func TestPageRankValidation(t *testing.T) {
	g, err := gengraph.UniformRandom(32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	if _, err := PageRank(d, g, PageRankOptions{Options: Options{K: 1}, Damping: 1.5}); err == nil {
		t.Fatal("bad damping accepted")
	}
	empty, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := PageRank(d, empty, PageRankOptions{Options: Options{K: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 0 {
		t.Fatal("empty graph produced ranks")
	}
}

func TestConnectedComponentsMatchesCPU(t *testing.T) {
	for name, g := range testGraphs(t) {
		sym, err := g.Symmetrize()
		if err != nil {
			t.Fatal(err)
		}
		want := cpualgo.ConnectedComponents(sym)
		for _, opts := range []Options{{K: 1}, {K: 16}, {K: 8, Dynamic: true}} {
			d := testDevice(t)
			dg := Upload(d, sym)
			res, err := ConnectedComponents(d, dg, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(res.Labels, want) {
				t.Fatalf("%s %+v: CC labels differ from union-find oracle", name, opts)
			}
		}
	}
}

func TestNeighborSumMatchesCPU(t *testing.T) {
	g := testGraphs(t)["rmat"]
	values := make([]int32, g.NumVertices())
	for i := range values {
		values[i] = int32(i%13 + 1)
	}
	want := NeighborSumCPU(g.RowPtr, g.Col, values)
	for _, opts := range []Options{{K: 1}, {K: 4}, {K: 32}, {K: 8, Dynamic: true}} {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := NeighborSum(d, dg, values, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !reflect.DeepEqual(res.Sums, want) {
			t.Fatalf("%+v: neighbor sums differ from CPU", opts)
		}
	}
	d := testDevice(t)
	dg := Upload(d, g)
	if _, err := NeighborSum(d, dg, values[:3], Options{K: 1}); err == nil {
		t.Fatal("short values accepted")
	}
}

func TestWarpCentricImprovesCoalescing(t *testing.T) {
	// E10's mechanism at unit scale: transactions per memory op must drop
	// when moving from K=1 to K=32 on a skewed graph.
	g := testGraphs(t)["rmat"]
	values := make([]int32, g.NumVertices())
	run := func(k int) float64 {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := NeighborSum(d, dg, values, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.TxnsPerMemOp()
	}
	base := run(1)
	warp := run(32)
	if warp >= base {
		t.Fatalf("txns/op did not improve: K=1 %.2f vs K=32 %.2f", base, warp)
	}
}

func TestOptionsDefaultsAndGrid(t *testing.T) {
	d := testDevice(t)
	o := Options{}.withDefaults(d)
	if o.K != 1 || o.BlockSize != 128 || o.Chunk < 1 || o.GridBlocksCap < 1 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	lc := o.grid(d, 0)
	if lc.Blocks < 1 {
		t.Fatalf("empty grid: %+v", lc)
	}
	big := Options{K: 32, BlockSize: 64}.withDefaults(d)
	lc = big.grid(d, 1<<20)
	if lc.Blocks > big.GridBlocksCap {
		t.Fatalf("grid cap not applied: %+v", lc)
	}
}
