package gpualgo

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/sanitize"
	"maxwarp/internal/simt"
)

// The differential harness: every kernel variant runs against its cpualgo
// oracle on seeded graphs from the paper's three degree regimes, under both
// host execution modes (ParallelSMs=1 sequential, 0=one goroutine per CPU).
// Each run also attaches an obs.Metrics registry, asserting that metrics
// never force the sequential fallback and that the counter totals are
// bit-identical across host modes.
//
// New mapping variants and algorithms are enrolled by appending to
// diffVariants / diffAlgos — the matrix is generated, not copy-pasted.

// diffVariant is one kernel mapping configuration.
type diffVariant struct {
	name string
	opts Options
	// quick marks the variants kept under -short.
	quick bool
}

// diffVariants is the mapping sweep: the thread-per-vertex baseline, the
// warp-centric widths K∈{2..32}, and the paper's refinements (outlier
// deferral, dynamic distribution, blocked schedule).
func diffVariants() []diffVariant {
	var vs []diffVariant
	for _, k := range []int{1, 2, 4, 8, 16, 32} {
		vs = append(vs, diffVariant{
			name:  fmt.Sprintf("K%d", k),
			opts:  Options{K: k},
			quick: k == 1 || k == 32,
		})
	}
	vs = append(vs,
		diffVariant{name: "K8+defer", opts: Options{K: 8, DeferThreshold: 16}, quick: true},
		diffVariant{name: "K8+dynamic", opts: Options{K: 8, Dynamic: true}, quick: true},
		diffVariant{name: "K4+blocked", opts: Options{K: 4, Blocked: true}},
	)
	return vs
}

// diffAlgo is one algorithm paired with its CPU oracle.
type diffAlgo struct {
	name string
	// heavy algorithms restrict the variant sweep to the quick subset.
	heavy bool
	// run executes the GPU side and compares against the oracle's output.
	run func(t *testing.T, label string, mode int, g *graph.CSR, weights []int32, src graph.VertexID, opts Options)
}

func diffAlgos() []diffAlgo {
	return []diffAlgo{
		{
			name: "bfs",
			run: func(t *testing.T, label string, mode int, g *graph.CSR, weights []int32, src graph.VertexID, opts Options) {
				want := cpualgo.BFSSequential(g, src)
				d := parallelDevice(t, mode)
				res, err := BFS(d, Upload(d, g), src, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !reflect.DeepEqual(res.Levels, want) {
					t.Errorf("%s: BFS levels differ from CPU oracle", label)
				}
				checkNoFallback(t, label, mode, res.Stats.SequentialFallback)
			},
		},
		{
			name: "sssp",
			run: func(t *testing.T, label string, mode int, g *graph.CSR, weights []int32, src graph.VertexID, opts Options) {
				want := cpualgo.SSSPDijkstra(g, weights, src)
				d := parallelDevice(t, mode)
				dg, err := UploadWeighted(d, g, weights)
				if err != nil {
					t.Fatal(err)
				}
				res, err := SSSP(d, dg, src, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if !reflect.DeepEqual(res.Dist, want) {
					t.Errorf("%s: SSSP distances differ from Dijkstra", label)
				}
				checkNoFallback(t, label, mode, res.Stats.SequentialFallback)
			},
		},
		{
			name:  "pagerank",
			heavy: true,
			run: func(t *testing.T, label string, mode int, g *graph.CSR, weights []int32, src graph.VertexID, opts Options) {
				const iters = 10
				want, _ := cpualgo.PageRank(g, cpualgo.PageRankOptions{MaxIters: iters, Tolerance: 1e-30})
				d := parallelDevice(t, mode)
				res, err := PageRank(d, g, PageRankOptions{Options: opts, Iterations: iters})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				for v := range want {
					if diff := math.Abs(float64(res.Ranks[v]) - want[v]); diff > 1e-3*(want[v]+1e-9)+1e-5 {
						t.Errorf("%s: rank[%d] = %g, oracle %g", label, v, res.Ranks[v], want[v])
						break
					}
				}
				checkNoFallback(t, label, mode, res.Stats.SequentialFallback)
			},
		},
	}
}

// checkNoFallback asserts a metrics-instrumented launch kept the parallel
// fast path (the tentpole's acceptance criterion).
func checkNoFallback(t *testing.T, label string, mode int, fallback string) {
	t.Helper()
	if mode != 1 && fallback != "" {
		t.Errorf("%s: metrics forced SequentialFallback=%q", label, fallback)
	}
}

// diffGraphs is the seeded three-regime workload set: power-law (Chung-Lu),
// hierarchically skewed (RMAT), and regular (mesh).
func diffGraphs(t testing.TB) []struct {
	name string
	g    *graph.CSR
} {
	t.Helper()
	cl, err := gengraph.ChungLu(1000, 6, 2.2, 11)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := gengraph.RMAT(8, 8, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := gengraph.Mesh2D(16, 16)
	if err != nil {
		t.Fatal(err)
	}
	return []struct {
		name string
		g    *graph.CSR
	}{
		{"chunglu", cl},
		{"rmat", rm},
		{"mesh", mesh},
	}
}

// TestDifferentialKernelVariants is the full matrix: algorithms × variants ×
// graphs × host modes, each compared against its oracle, with obs counters
// attached and cross-mode counter totals required to match bit-for-bit.
// -short trims to the quick variant subset, one graph, and the parallel mode.
func TestDifferentialKernelVariants(t *testing.T) {
	graphs := diffGraphs(t)
	variants := diffVariants()
	// 0 = one host goroutine per CPU (the ISSUE's headline mode) and 4 =
	// explicitly parallel even on a single-core host, so the cross-mode
	// comparison is never vacuous.
	modes := []int{1, 0, 4}
	if testing.Short() {
		graphs = graphs[:1]
		modes = []int{0}
		var quick []diffVariant
		for _, v := range variants {
			if v.quick {
				quick = append(quick, v)
			}
		}
		variants = quick
	}
	for _, alg := range diffAlgos() {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			t.Parallel()
			for _, gr := range graphs {
				src := graph.LargestOutComponentSeed(gr.g)
				weights := gengraph.EdgeWeights(gr.g, 10, 5)
				for _, v := range variants {
					if alg.heavy && !v.quick {
						continue
					}
					perMode := make(map[int]map[string]int64)
					for _, mode := range modes {
						label := fmt.Sprintf("%s/%s/%s/ParallelSMs=%d", alg.name, gr.name, v.name, mode)
						m := obs.NewMetrics(parallelDevice(t, mode).Config().NumSMs)
						opts := v.opts
						opts.Metrics = m
						alg.run(t, label, mode, gr.g, weights, src, opts)
						perMode[mode] = m.Values()
					}
					for _, mode := range modes[1:] {
						if !reflect.DeepEqual(perMode[modes[0]], perMode[mode]) {
							t.Errorf("%s/%s/%s: obs counters differ between ParallelSMs=%d and %d\n %v\n %v",
								alg.name, gr.name, v.name, modes[0], mode, perMode[modes[0]], perMode[mode])
						}
					}
				}
			}
		})
	}
}

// --- sanitizer sweep -------------------------------------------------------

// sanitizedDevice is a sequential-mode device with the kernel sanitizer
// attached: the dynamic racecheck/memcheck/synccheck side of the harness.
func sanitizedDevice(t testing.TB) (*simt.Device, *sanitize.Sanitizer) {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 16
	cfg.MaxBlocksPerSM = 4
	cfg.MaxCycles = 50_000_000
	cfg.ParallelSMs = 1
	cfg.Sanitize = true
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := sanitize.NewSanitizer()
	d.SetSanitizer(s)
	return d, s
}

// TestSanitizerKernelSweep runs every gpualgo algorithm — the full kernel
// set, mirroring cmd/maxwarp's dispatch — under the sanitizer on small
// graphs and requires zero Error-severity diagnostics. Benign Info findings
// (the BFS same-value frontier race, frozen-snapshot stale reads) are
// allowed; conflicting-value races, plain/atomic mixes, shared-memory
// races, OOB lanes, uninitialized reads, and barrier hazards are not.
func TestSanitizerKernelSweep(t *testing.T) {
	rm, err := gengraph.RMAT(6, 8, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := gengraph.Mesh2D(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	graphs := []struct {
		name string
		g    *graph.CSR
	}{{"rmat", rm}, {"mesh", mesh}}
	opts := Options{K: 4}
	algos := []struct {
		name string
		run  func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) error
	}{
		{"bfs", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			_, err := BFS(d, Upload(d, g), src, opts)
			return err
		}},
		{"bfsfrontier", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			_, err := BFSFrontier(d, Upload(d, g), src, opts)
			return err
		}},
		{"bfsdir", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			_, err := BFSDirectionOpt(d, g, src, DirOptions{Options: opts})
			return err
		}},
		{"sssp", func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) error {
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				return err
			}
			_, err = SSSP(d, dg, src, opts)
			return err
		}},
		{"deltastep", func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) error {
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				return err
			}
			_, err = DeltaStepping(d, dg, src, DeltaSteppingOptions{Options: opts})
			return err
		}},
		{"pagerank", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			_, err := PageRank(d, g, PageRankOptions{Options: opts, Iterations: 5})
			return err
		}},
		{"cc", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			_, err := ConnectedComponents(d, Upload(d, g), opts)
			return err
		}},
		{"scc", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			_, err := SCC(d, g, opts)
			return err
		}},
		{"nbrsum", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			vals := make([]int32, g.NumVertices())
			for i := range vals {
				vals[i] = int32(i%7 + 1)
			}
			_, err := NeighborSum(d, Upload(d, g), vals, opts)
			return err
		}},
		{"spmv", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			vals := make([]float32, g.NumEdges())
			for i := range vals {
				vals[i] = float32(i%5+1) * 0.5
			}
			x := make([]float32, g.NumVertices())
			for i := range x {
				x[i] = float32(i%3 + 1)
			}
			_, err := SpMV(d, Upload(d, g), vals, x, opts)
			return err
		}},
		// Triangles, k-core, MIS, and coloring require the undirected simple
		// closure, exactly as cmd/maxwarp prepares it.
		{"triangles", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			sym, err := g.Symmetrize()
			if err != nil {
				return err
			}
			_, err = TriangleCount(d, sym, opts)
			return err
		}},
		{"kcore", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			sym, err := g.Symmetrize()
			if err != nil {
				return err
			}
			_, err = KCore(d, Upload(d, sym), 2, opts)
			return err
		}},
		{"mis", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			sym, err := g.Symmetrize()
			if err != nil {
				return err
			}
			_, err = MIS(d, Upload(d, sym), 42, opts)
			return err
		}},
		{"coloring", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			sym, err := g.Symmetrize()
			if err != nil {
				return err
			}
			_, err = GraphColoring(d, Upload(d, sym), 42, opts)
			return err
		}},
		{"bc", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			_, err := BetweennessCentrality(d, g, []graph.VertexID{src}, opts)
			return err
		}},
		{"msbfs", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			_, err := MSBFS(d, Upload(d, g), []graph.VertexID{src, 0}, opts)
			return err
		}},
		{"closeness", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			_, err := ClosenessCentrality(d, g, 2, 7, opts)
			return err
		}},
		// The PR 8 streaming kernels: one mutate→repair cycle per incremental
		// algorithm, so the overlay-aware repair kernels stay in the sweep.
		{"incbfs", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, src graph.VertexID) error {
			dl, err := graph.NewDelta(g, nil)
			if err != nil {
				return err
			}
			prev := cpualgo.BFSSequential(g, src)
			applied, _, err := dl.Apply(randomMutationBatch(rand.New(rand.NewSource(7)), dl, 10, false))
			if err != nil {
				return err
			}
			_, _, err = IncrementalBFS(d, dl, nil, src, prev, applied, opts)
			return err
		}},
		{"incsssp", func(t *testing.T, d *simt.Device, g *graph.CSR, weights []int32, src graph.VertexID) error {
			dl, err := graph.NewDelta(g, weights)
			if err != nil {
				return err
			}
			prev := cpualgo.SSSPDijkstra(g, weights, src)
			applied, _, err := dl.Apply(randomMutationBatch(rand.New(rand.NewSource(7)), dl, 10, false))
			if err != nil {
				return err
			}
			_, _, err = IncrementalSSSP(d, dl, nil, src, prev, applied, opts)
			return err
		}},
		{"inccc", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			sym, err := g.Symmetrize()
			if err != nil {
				return err
			}
			dl, err := graph.NewDelta(sym, nil)
			if err != nil {
				return err
			}
			prev := cpualgo.ConnectedComponents(sym)
			applied, _, err := dl.Apply(randomMutationBatch(rand.New(rand.NewSource(7)), dl, 10, true))
			if err != nil {
				return err
			}
			_, _, err = IncrementalCC(d, dl, nil, prev, applied, opts)
			return err
		}},
		{"deltapagerank", func(t *testing.T, d *simt.Device, g *graph.CSR, _ []int32, _ graph.VertexID) error {
			dl, err := graph.NewDelta(g, nil)
			if err != nil {
				return err
			}
			popts := PageRankOptions{Options: opts, Iterations: 30}
			res, _, err := DeltaPageRank(d, dl, nil, nil, popts)
			if err != nil {
				return err
			}
			if _, _, err := dl.Apply(randomMutationBatch(rand.New(rand.NewSource(7)), dl, 10, false)); err != nil {
				return err
			}
			_, _, err = DeltaPageRank(d, dl, nil, res.Ranks, popts)
			return err
		}},
	}
	for _, alg := range algos {
		alg := alg
		t.Run(alg.name, func(t *testing.T) {
			t.Parallel()
			for _, gr := range graphs {
				d, s := sanitizedDevice(t)
				src := graph.LargestOutComponentSeed(gr.g)
				weights := gengraph.EdgeWeights(gr.g, 10, 5)
				if err := alg.run(t, d, gr.g, weights, src); err != nil {
					t.Fatalf("%s/%s: %v", alg.name, gr.name, err)
				}
				if errs := s.Errors(); len(errs) != 0 {
					t.Errorf("%s/%s: sanitizer found %d Error diagnostic(s):\n%s",
						alg.name, gr.name, len(errs), s.Text())
				}
			}
		})
	}
}
