package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
)

func TestBFSDirectionOptMatchesCPU(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := graph.LargestOutComponentSeed(g)
		want := cpualgo.BFSSequential(g, src)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			res, err := BFSDirectionOpt(d, g, src, DirOptions{Options: Options{K: k}})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			if !reflect.DeepEqual(res.Levels, want) {
				t.Fatalf("%s K=%d: hybrid BFS differs from CPU oracle", name, k)
			}
			if len(res.Schedule) != res.Iterations {
				t.Fatalf("%s K=%d: schedule length %d != iterations %d",
					name, k, len(res.Schedule), res.Iterations)
			}
		}
	}
}

func TestBFSForcedDirectionsMatchCPU(t *testing.T) {
	g := testGraphs(t)["rmat"]
	src := graph.LargestOutComponentSeed(g)
	want := cpualgo.BFSSequential(g, src)
	for _, dir := range []Direction{DirPush, DirPull} {
		d := testDevice(t)
		dirCopy := dir
		res, err := BFSDirectionOpt(d, g, src, DirOptions{Options: Options{K: 8}, Force: &dirCopy})
		if err != nil {
			t.Fatalf("dir %d: %v", dir, err)
		}
		if !reflect.DeepEqual(res.Levels, want) {
			t.Fatalf("dir %d: levels differ from oracle", dir)
		}
		for _, d2 := range res.Schedule {
			if d2 != dir {
				t.Fatalf("forced schedule violated: %v", res.Schedule)
			}
		}
	}
}

func TestHybridUsesPullOnBigFrontiers(t *testing.T) {
	// On a skewed small-diameter graph the middle levels cover most of the
	// graph: the heuristic must pick pull at least once.
	g := testGraphs(t)["rmat"]
	src := graph.LargestOutComponentSeed(g)
	d := testDevice(t)
	res, err := BFSDirectionOpt(d, g, src, DirOptions{Options: Options{K: 32}})
	if err != nil {
		t.Fatal(err)
	}
	sawPull := false
	for _, dir := range res.Schedule {
		if dir == DirPull {
			sawPull = true
		}
	}
	if !sawPull {
		t.Fatalf("hybrid never pulled on a skewed graph: %v", res.Schedule)
	}
}

func TestPullBeatsPushOnLowDiameterSkewedGraph(t *testing.T) {
	// Bottom-up early exit pays off when the frontier is most of the graph.
	g := testGraphs(t)["rmat"]
	src := graph.LargestOutComponentSeed(g)
	run := func(dir Direction) int64 {
		d := testDevice(t)
		res, err := BFSDirectionOpt(d, g, src, DirOptions{Options: Options{K: 32}, Force: &dir})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	// The hybrid should be no worse than the better pure strategy by much.
	push := run(DirPush)
	pull := run(DirPull)
	d := testDevice(t)
	hybrid, err := BFSDirectionOpt(d, g, src, DirOptions{Options: Options{K: 32}})
	if err != nil {
		t.Fatal(err)
	}
	best := push
	if pull < best {
		best = pull
	}
	if float64(hybrid.Stats.Cycles) > 1.6*float64(best) {
		t.Fatalf("hybrid (%d) much worse than best pure direction (%d)", hybrid.Stats.Cycles, best)
	}
}

func TestBFSDirectionOptValidation(t *testing.T) {
	g := testGraphs(t)["uni"]
	d := testDevice(t)
	if _, err := BFSDirectionOpt(d, g, -1, DirOptions{Options: Options{K: 1}}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := BFSDirectionOpt(d, g, 0, DirOptions{Options: Options{K: 3}}); err == nil {
		t.Error("bad K accepted")
	}
}
