package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func undirected(t *testing.T, g *graph.CSR) *graph.CSR {
	t.Helper()
	sym, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	return sym
}

func TestTriangleCountCPUKnownGraphs(t *testing.T) {
	// Complete graph K4: C(4,3) = 4 triangles.
	var edges []graph.Edge
	for i := int32(0); i < 4; i++ {
		for j := int32(0); j < 4; j++ {
			if i != j {
				edges = append(edges, graph.Edge{Src: i, Dst: j})
			}
		}
	}
	k4, err := graph.FromEdgesSimple(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if _, total := TriangleCountCPU(k4); total != 4 {
		t.Fatalf("K4 triangles = %d, want 4", total)
	}
	// A 4-cycle has none.
	c4, err := graph.FromEdgesSimple(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2}, {Src: 3, Dst: 0}, {Src: 0, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, total := TriangleCountCPU(c4); total != 0 {
		t.Fatalf("C4 triangles = %d, want 0", total)
	}
}

func TestTriangleCountMatchesCPU(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.CSR
	}{
		{"rmat", mustRMATSimple(t, 8, 6, 1)},
		{"uniform", mustUniformSimple(t, 300, 1800, 2)},
	} {
		sym := undirected(t, tc.g)
		wantPer, wantTotal := TriangleCountCPU(sym)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			res, err := TriangleCount(d, sym, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", tc.name, k, err)
			}
			if res.Total != wantTotal {
				t.Fatalf("%s K=%d: total %d, want %d", tc.name, k, res.Total, wantTotal)
			}
			if !reflect.DeepEqual(res.PerVertex, wantPer) {
				t.Fatalf("%s K=%d: per-vertex counts differ", tc.name, k)
			}
		}
	}
}

func mustRMATSimple(t *testing.T, scale, ef int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gengraph.RMATSimple(scale, ef, gengraph.DefaultRMAT, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mustUniformSimple(t *testing.T, n, m int, seed uint64) *graph.CSR {
	t.Helper()
	g, err := gengraph.UniformRandom(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := graph.FromEdgesSimple(n, g.Edges())
	if err != nil {
		t.Fatal(err)
	}
	return gs
}

func TestTriangleCountRejectsBadInput(t *testing.T) {
	d := testDevice(t)
	withLoop, err := graph.FromEdges(2, []graph.Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TriangleCount(d, withLoop, Options{K: 1}); err == nil {
		t.Error("self loop accepted")
	}
	unsorted, err := graph.FromEdges(3, []graph.Edge{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := TriangleCount(d, unsorted, Options{K: 1}); err == nil {
		t.Error("unsorted adjacency accepted")
	}
}

func TestKCoreCPUKnown(t *testing.T) {
	// Triangle + pendant vertex: 2-core = the triangle.
	g, err := graph.FromEdgesSimple(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 0}, {Src: 0, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	inCore, remaining := KCoreCPU(g, 2)
	if remaining != 3 || !inCore[0] || !inCore[1] || !inCore[2] || inCore[3] {
		t.Fatalf("2-core wrong: %v (%d)", inCore, remaining)
	}
	// 3-core of the same graph is empty (triangle vertices have degree 2).
	if _, remaining := KCoreCPU(g, 3); remaining != 0 {
		t.Fatalf("3-core size %d, want 0", remaining)
	}
	// 0-core keeps everything.
	if _, remaining := KCoreCPU(g, 0); remaining != 4 {
		t.Fatalf("0-core size %d, want 4", remaining)
	}
}

func TestKCoreMatchesCPU(t *testing.T) {
	sym := undirected(t, mustRMATSimple(t, 8, 6, 7))
	for _, k := range []int32{1, 2, 3, 5, 8} {
		want, wantRemaining := KCoreCPU(sym, k)
		for _, K := range []int{1, 8, 32} {
			d := testDevice(t)
			dg := Upload(d, sym)
			res, err := KCore(d, dg, k, Options{K: K})
			if err != nil {
				t.Fatalf("k=%d K=%d: %v", k, K, err)
			}
			if res.Remaining != wantRemaining {
				t.Fatalf("k=%d K=%d: remaining %d, want %d", k, K, res.Remaining, wantRemaining)
			}
			if !reflect.DeepEqual(res.InCore, want) {
				t.Fatalf("k=%d K=%d: membership differs", k, K)
			}
		}
	}
}

func TestKCoreValidation(t *testing.T) {
	d := testDevice(t)
	g := undirected(t, mustUniformSimple(t, 20, 60, 1))
	dg := Upload(d, g)
	if _, err := KCore(d, dg, -1, Options{K: 1}); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := KCore(d, dg, 2, Options{K: 7}); err == nil {
		t.Error("bad K accepted")
	}
}

func TestKCoreDegenerate(t *testing.T) {
	// Graph with no edges: k>=1 core is empty.
	g, err := graph.FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := KCore(d, dg, 1, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remaining != 0 {
		t.Fatalf("edgeless 1-core size %d", res.Remaining)
	}
}
