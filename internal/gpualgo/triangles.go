package gpualgo

import (
	"fmt"
	"sort"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// TriangleResult is the output of triangle counting.
type TriangleResult struct {
	Result
	// PerVertex[u] counts triangles {u,v,w} with u < v < w (so each triangle
	// is attributed to its minimum vertex exactly once).
	PerVertex []int32
	// Total is the triangle count of the graph.
	Total int64
}

// TriangleCount counts triangles on the device. The graph must be
// undirected, simple, with sorted adjacency lists (graph.CSR.Symmetrize or
// FromEdgesSimple produce this form); Validate-style requirements are
// checked up front.
//
// The kernel is a three-level nest that exercises every vwarp phase: each
// virtual warp owns a vertex u (task), loops its neighbors v sequentially
// (GroupLoop, replicated phase), and for each oriented edge (u,v) the K
// lanes stride over N(v) (SIMD phase), binary-searching each candidate w in
// the sorted N(u) — the classic GPU intersection formulation.
func TriangleCount(d *simt.Device, g *graph.CSR, opts Options) (*TriangleResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if err := requireSortedSimple(g); err != nil {
		return nil, err
	}
	dg := Upload(d, g)
	n := dg.NumVertices
	out := d.AllocI32("tri.out", n)
	res := &TriangleResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth

	kernel := func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(n), func(ts *vwarp.Tasks) {
			gn := ts.Groups
			startU := make([]int32, gn)
			endU := make([]int32, gn)
			taskP1 := make([]int32, gn)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, startU)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, endU)

			count := w.VecI32()
			w.Apply(1, func(lane int) { count[lane] = 0 })

			v := make([]int32, gn)
			vP1 := make([]int32, gn)
			startV := make([]int32, gn)
			endV := make([]int32, gn)
			ts.GroupLoop(startU, endU, func(pos []int32) {
				ts.LoadI32Grouped(dg.Col, pos, v)
				ts.Mask(func(gi int) bool { return v[gi] > ts.Task[gi] }, func() {
					ts.LoadI32Grouped(dg.RowPtr, v, startV)
					ts.SISD(1, func(gi int) { vP1[gi] = v[gi] + 1 })
					ts.LoadI32Grouped(dg.RowPtr, vP1, endV)
					wv := w.VecI32()
					ts.SIMDRange(startV, endV, func(j []int32) {
						w.LoadI32(dg.Col, j, wv)
						w.If(func(lane int) bool { return wv[lane] > v[ts.Group(lane)] }, func() {
							found := binarySearchLanes(ts, dg.Col, startU, endU, wv)
							w.Apply(1, func(lane int) {
								if found[lane] {
									count[lane]++
								}
							})
						}, nil)
					})
				})
			})
			sums := make([]int32, gn)
			ts.ReduceAddI32(count, sums)
			ts.StoreI32Grouped(out, ts.Task, sums, nil)
		})
	}
	stats, err := d.Launch(opts.grid(d, n), kernel)
	if err != nil {
		return nil, fmt.Errorf("gpualgo: triangle count: %w", err)
	}
	res.Stats.Add(stats)
	res.Launches = 1
	res.Iterations = 1
	res.PerVertex = append([]int32(nil), out.Data()...)
	for _, c := range res.PerVertex {
		res.Total += int64(c)
	}
	return res, nil
}

// binarySearchLanes searches target[lane] in the sorted slice
// col[start[g]:end[g]] of the lane's group, per active lane, returning a
// per-lane found flag. Cost: a divergent While of ~log(deg) iterations, each
// one gather + compare — exactly what the CUDA kernel pays.
func binarySearchLanes(ts *vwarp.Tasks, col *simt.BufI32, start, end []int32, target []int32) []bool {
	w := ts.W
	lo := w.VecI32()
	hi := w.VecI32()
	w.Apply(1, func(lane int) {
		g := ts.Group(lane)
		lo[lane] = start[g]
		hi[lane] = end[g]
	})
	probe := w.VecI32()
	mid := w.VecI32()
	w.While(func(lane int) bool { return lo[lane] < hi[lane] }, func() {
		w.Apply(1, func(lane int) { mid[lane] = lo[lane] + (hi[lane]-lo[lane])/2 })
		w.LoadI32(col, mid, probe)
		w.Apply(1, func(lane int) {
			if probe[lane] < target[lane] {
				lo[lane] = mid[lane] + 1
			} else {
				hi[lane] = mid[lane]
			}
		})
	})
	found := make([]bool, w.Width())
	// Final membership probe: one gather at the insertion point.
	inRange := w.VecI32()
	w.Apply(1, func(lane int) {
		g := ts.Group(lane)
		if lo[lane] < end[g] {
			inRange[lane] = 1
		} else {
			inRange[lane] = 0
			lo[lane] = start[g] // safe index for the masked gather below
		}
	})
	w.If(func(lane int) bool { return inRange[lane] == 1 }, func() {
		w.LoadI32(col, lo, probe)
		w.Apply(1, func(lane int) { found[lane] = probe[lane] == target[lane] })
	}, nil)
	return found
}

// requireSortedSimple verifies the preconditions for intersection kernels.
func requireSortedSimple(g *graph.CSR) error {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		adj := g.Neighbors(graph.VertexID(v))
		for i, u := range adj {
			if u == graph.VertexID(v) {
				return fmt.Errorf("gpualgo: self loop at vertex %d; need a simple graph", v)
			}
			if i > 0 && adj[i-1] >= u {
				return fmt.Errorf("gpualgo: adjacency of vertex %d unsorted or duplicated", v)
			}
		}
	}
	return nil
}

// TriangleCountCPU is the host oracle: per-vertex counts of triangles
// {u,v,w}, u<v<w, attributed to u, via sorted-list intersection.
func TriangleCountCPU(g *graph.CSR) ([]int32, int64) {
	n := g.NumVertices()
	per := make([]int32, n)
	var total int64
	for u := 0; u < n; u++ {
		nu := g.Neighbors(graph.VertexID(u))
		for _, v := range nu {
			if v <= graph.VertexID(u) {
				continue
			}
			nv := g.Neighbors(v)
			// Two-pointer intersection counting w > v.
			i := sort.Search(len(nu), func(i int) bool { return nu[i] > v })
			j := sort.Search(len(nv), func(j int) bool { return nv[j] > v })
			for i < len(nu) && j < len(nv) {
				switch {
				case nu[i] < nv[j]:
					i++
				case nu[i] > nv[j]:
					j++
				default:
					per[u]++
					total++
					i++
					j++
				}
			}
		}
	}
	return per, total
}
