package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// PageRankResult is the output of a device PageRank run.
type PageRankResult struct {
	Result
	// Ranks is the final rank vector (sums to ~1).
	Ranks []float32
}

// PageRankOptions extends Options with the power-iteration parameters.
type PageRankOptions struct {
	Options
	// Damping factor (default 0.85).
	Damping float32
	// Iterations of power iteration to run (default 20, as in GPU
	// benchmarking practice: fixed-iteration comparison).
	Iterations int
	// Tolerance stops DeltaPageRank early when the L1 step delta falls
	// below it (default 1e-6 there). PageRank ignores it: the full run
	// keeps the fixed-iteration contract.
	Tolerance float32
}

// PageRankRun is an open-loop power-iteration run: each Step performs one
// full iteration (contribution kernel then pull kernel). The rank/next swap
// happens only after both launches succeed, so a supervisor can restore
// State after a failure and retry the same iteration.
type PageRankRun struct {
	// Launch supervises every kernel launch of the run.
	Launch simt.LaunchOpts

	d       *simt.Device
	opts    PageRankOptions
	dgRev   *DeviceGraph
	outDeg  []int32
	dOutDeg *simt.BufI32
	rank    *simt.BufF32
	contrib *simt.BufF32
	next    *simt.BufF32
	n       int
	lc      simt.LaunchConfig
	res     *PageRankResult
	done    bool
}

// NewPageRankRun validates the inputs, builds the reverse graph, and
// allocates device state, without launching anything yet.
func NewPageRankRun(d *simt.Device, g *graph.CSR, opts PageRankOptions) (*PageRankRun, error) {
	opts.Options = opts.Options.withDefaults(d)
	if err := opts.Options.validate(d); err != nil {
		return nil, err
	}
	if opts.Damping == 0 {
		opts.Damping = 0.85
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("gpualgo: damping %f outside [0,1)", opts.Damping)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	n := g.NumVertices()
	r := &PageRankRun{d: d, opts: opts, n: n, res: &PageRankResult{}}
	r.res.Stats.WarpWidth = d.Config().WarpWidth
	if n == 0 {
		r.done = true
		return r, nil
	}
	rev := g.Reverse()
	r.dgRev = Upload(d, rev)
	r.outDeg = make([]int32, n)
	for v := 0; v < n; v++ {
		r.outDeg[v] = g.Degree(graph.VertexID(v))
	}
	r.dOutDeg = d.UploadI32("pr.outdeg", r.outDeg)
	r.rank = d.AllocF32("pr.rank", n)
	r.contrib = d.AllocF32("pr.contrib", n)
	r.next = d.AllocF32("pr.next", n)
	r.rank.Fill(1 / float32(n))
	r.lc = opts.grid(d, n)
	return r, nil
}

// Step runs one power iteration (two kernel launches). On error no host
// state advances and the rank/next buffers are not swapped, so the same
// iteration can be retried after restoring State.
func (r *PageRankRun) Step() (bool, error) {
	if r.done {
		return true, nil
	}
	// Host-side dangling-mass reduction (stand-in for the standard tiny
	// reduction kernel; not counted in device cycles, matching how CUDA
	// codes usually exclude it or find it negligible).
	var dangling float32
	for v := 0; v < r.n; v++ {
		if r.outDeg[v] == 0 {
			dangling += r.rank.Data()[v]
		}
	}
	base := (1-r.opts.Damping)/float32(r.n) + r.opts.Damping*dangling/float32(r.n)

	iter := r.res.Iterations
	stats, err := r.d.LaunchWith(r.lc, r.Launch, prContribKernel(r.n, r.rank, r.contrib, r.dOutDeg))
	if err != nil {
		return false, fmt.Errorf("gpualgo: PageRank contrib iter %d: %w", iter, err)
	}
	pstats, err := r.d.LaunchWith(r.lc, r.Launch, prPullKernel(r.dgRev, r.contrib, r.next, base, r.opts))
	if err != nil {
		return false, fmt.Errorf("gpualgo: PageRank pull iter %d: %w", iter, err)
	}
	stats.Add(pstats)
	r.res.Stats.Add(stats)
	r.res.Launches += 2
	r.res.Iterations++
	r.rank, r.next = r.next, r.rank
	if r.res.Iterations >= r.opts.Iterations {
		r.done = true
	}
	return r.done, nil
}

// State returns the device buffers a supervisor must snapshot to make Step
// retryable (rank vectors, out-degrees, and the reverse graph).
func (r *PageRankRun) State() RunState {
	if r.n == 0 {
		return RunState{}
	}
	st := RunState{
		I32: []*simt.BufI32{r.dOutDeg},
		F32: []*simt.BufF32{r.rank, r.contrib, r.next},
	}
	graphState(&st, r.dgRev)
	return st
}

// Iterations returns the number of completed power iterations.
func (r *PageRankRun) Iterations() int { return r.res.Iterations }

// Result finalizes and returns the run's output.
func (r *PageRankRun) Result() *PageRankResult {
	if r.n > 0 {
		r.res.Ranks = append([]float32(nil), r.rank.Data()...)
	}
	return r.res
}

// PageRank runs pull-based power iteration on the device. Each vertex pulls
// contributions rank[u]/outdeg[u] from its in-neighbors (the reverse graph's
// adjacency list), so the virtual warp-centric trade-off applies to the
// in-degree distribution. Two kernels alternate per iteration: a contribution
// kernel (contrib[u] = rank[u]/outdeg[u], perfectly regular) and the pull
// kernel (irregular — where the paper's method matters). Dangling mass is
// folded in host-side between iterations, as CUDA implementations do with a
// small reduction kernel.
func PageRank(d *simt.Device, g *graph.CSR, opts PageRankOptions) (*PageRankResult, error) {
	r, err := NewPageRankRun(d, g, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := r.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return r.Result(), nil
		}
	}
}

// prContribKernel computes contrib[v] = rank[v]/outdeg[v] (0 for dangling
// vertices) — a perfectly coalesced elementwise kernel.
func prContribKernel(n int, rank, contrib *simt.BufF32, outDeg *simt.BufI32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			r := w.VecF32()
			d := w.VecI32()
			c := w.VecF32()
			w.LoadF32(rank, idx, r)
			w.LoadI32(outDeg, idx, d)
			w.Apply(1, func(lane int) {
				if d[lane] > 0 {
					c[lane] = r[lane] / float32(d[lane])
				} else {
					c[lane] = 0
				}
			})
			w.StoreF32(contrib, idx, c)
			w.AddConstI32(idx, stride)
		})
	}
}

// prPullKernel computes next[v] = base + d * sum_{u in in(v)} contrib[u]
// with one virtual warp per vertex.
func prPullKernel(dgRev *DeviceGraph, contrib, next *simt.BufF32, base float32, opts PageRankOptions) simt.Kernel {
	var cEdges *obs.Counter
	if m := opts.Metrics; m != nil {
		cEdges = m.Counter(MetricPREdges, "PageRank in-edges pulled.")
	}
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dgRev.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dgRev.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dgRev.RowPtr, taskP1, end)
			if cEdges != nil {
				var eg int64
				for gi := 0; gi < g; gi++ {
					if ts.Valid(gi) {
						eg += int64(end[gi] - start[gi])
					}
				}
				if eg > 0 {
					cEdges.Add(w.SMID(), eg)
				}
			}
			acc := w.VecF32()
			w.FillF32(acc, 0)
			nbr := w.VecI32()
			c := w.VecF32()
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dgRev.Col, j, nbr)
				w.LoadF32(contrib, nbr, c)
				w.AddF32(acc, acc, c)
			})
			sums := make([]float32, g)
			ts.ReduceAddF32(acc, sums)
			vals := make([]float32, g)
			ts.SISD(1, func(gi int) { vals[gi] = base + opts.Damping*sums[gi] })
			ts.StoreF32Grouped(next, ts.Task, vals, nil)
		})
	}
}
