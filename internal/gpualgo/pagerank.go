package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// PageRankResult is the output of a device PageRank run.
type PageRankResult struct {
	Result
	// Ranks is the final rank vector (sums to ~1).
	Ranks []float32
}

// PageRankOptions extends Options with the power-iteration parameters.
type PageRankOptions struct {
	Options
	// Damping factor (default 0.85).
	Damping float32
	// Iterations of power iteration to run (default 20, as in GPU
	// benchmarking practice: fixed-iteration comparison).
	Iterations int
}

// PageRank runs pull-based power iteration on the device. Each vertex pulls
// contributions rank[u]/outdeg[u] from its in-neighbors (the reverse graph's
// adjacency list), so the virtual warp-centric trade-off applies to the
// in-degree distribution. Two kernels alternate per iteration: a contribution
// kernel (contrib[u] = rank[u]/outdeg[u], perfectly regular) and the pull
// kernel (irregular — where the paper's method matters). Dangling mass is
// folded in host-side between iterations, as CUDA implementations do with a
// small reduction kernel.
func PageRank(d *simt.Device, g *graph.CSR, opts PageRankOptions) (*PageRankResult, error) {
	opts.Options = opts.Options.withDefaults(d)
	if err := opts.Options.validate(d); err != nil {
		return nil, err
	}
	if opts.Damping == 0 {
		opts.Damping = 0.85
	}
	if opts.Damping < 0 || opts.Damping >= 1 {
		return nil, fmt.Errorf("gpualgo: damping %f outside [0,1)", opts.Damping)
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	n := g.NumVertices()
	res := &PageRankResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	if n == 0 {
		return res, nil
	}

	rev := g.Reverse()
	dgRev := Upload(d, rev)
	outDeg := make([]int32, n)
	for v := 0; v < n; v++ {
		outDeg[v] = g.Degree(graph.VertexID(v))
	}
	dOutDeg := d.UploadI32("pr.outdeg", outDeg)
	rank := d.AllocF32("pr.rank", n)
	contrib := d.AllocF32("pr.contrib", n)
	next := d.AllocF32("pr.next", n)
	rank.Fill(1 / float32(n))

	lc := opts.grid(d, n)
	for iter := 0; iter < opts.Iterations; iter++ {
		// Host-side dangling-mass reduction (stand-in for the standard tiny
		// reduction kernel; not counted in device cycles, matching how CUDA
		// codes usually exclude it or find it negligible).
		var dangling float32
		for v := 0; v < n; v++ {
			if outDeg[v] == 0 {
				dangling += rank.Data()[v]
			}
		}
		base := (1-opts.Damping)/float32(n) + opts.Damping*dangling/float32(n)

		stats, err := d.Launch(lc, prContribKernel(n, rank, contrib, dOutDeg))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: PageRank contrib iter %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++

		stats, err = d.Launch(lc, prPullKernel(dgRev, contrib, next, base, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: PageRank pull iter %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		rank, next = next, rank
	}
	res.Ranks = append([]float32(nil), rank.Data()...)
	return res, nil
}

// prContribKernel computes contrib[v] = rank[v]/outdeg[v] (0 for dangling
// vertices) — a perfectly coalesced elementwise kernel.
func prContribKernel(n int, rank, contrib *simt.BufF32, outDeg *simt.BufI32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			r := w.VecF32()
			d := w.VecI32()
			c := w.VecF32()
			w.LoadF32(rank, idx, r)
			w.LoadI32(outDeg, idx, d)
			w.Apply(1, func(lane int) {
				if d[lane] > 0 {
					c[lane] = r[lane] / float32(d[lane])
				} else {
					c[lane] = 0
				}
			})
			w.StoreF32(contrib, idx, c)
			w.Apply(1, func(lane int) { idx[lane] += stride })
		})
	}
}

// prPullKernel computes next[v] = base + d * sum_{u in in(v)} contrib[u]
// with one virtual warp per vertex.
func prPullKernel(dgRev *DeviceGraph, contrib, next *simt.BufF32, base float32, opts PageRankOptions) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dgRev.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dgRev.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dgRev.RowPtr, taskP1, end)
			acc := w.VecF32()
			w.Apply(1, func(lane int) { acc[lane] = 0 })
			nbr := w.VecI32()
			c := w.VecF32()
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dgRev.Col, j, nbr)
				w.LoadF32(contrib, nbr, c)
				w.Apply(1, func(lane int) { acc[lane] += c[lane] })
			})
			sums := make([]float32, g)
			ts.ReduceAddF32(acc, sums)
			vals := make([]float32, g)
			ts.SISD(1, func(gi int) { vals[gi] = base + opts.Damping*sums[gi] })
			ts.StoreF32Grouped(next, ts.Task, vals, nil)
		})
	}
}
