package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// SpMVResult is the output of a sparse matrix-vector multiply.
type SpMVResult struct {
	Result
	// Y is the product vector (one entry per matrix row / graph vertex).
	Y []float32
}

// SpMV computes y = A·x for the CSR matrix whose sparsity pattern is dg and
// whose nonzero values are vals (aligned with dg.Col). This is the kernel
// family the paper generalizes: Options.K = 1 reproduces scalar CSR SpMV
// (one thread per row, Bell & Garland's "CSR (scalar)"), K = warp width the
// vector CSR kernel ("CSR (vector)": a warp cooperatively reduces one row),
// and intermediate K interpolates between them — exactly the virtual-warp
// spectrum.
func SpMV(d *simt.Device, dg *DeviceGraph, vals []float32, x []float32, opts Options) (*SpMVResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if len(vals) != dg.NumEdges {
		return nil, fmt.Errorf("gpualgo: %d values for %d nonzeros", len(vals), dg.NumEdges)
	}
	if len(x) != dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: x has %d entries for %d rows", len(x), dg.NumVertices)
	}
	n := dg.NumVertices
	dVals := d.UploadF32("spmv.vals", vals)
	dX := d.UploadF32("spmv.x", x)
	dY := d.AllocF32("spmv.y", n)
	var counter *simt.BufI32
	if opts.Dynamic {
		counter = d.AllocI32("spmv.counter", 1)
	}
	res := &SpMVResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	kernel := func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			acc := w.VecF32()
			w.FillF32(acc, 0)
			col := w.VecI32()
			av := w.VecF32()
			xv := w.VecF32()
			ts.SIMDRange(start, end, func(j []int32) {
				w.LoadI32(dg.Col, j, col)
				w.LoadF32(dVals, j, av)
				w.LoadF32(dX, col, xv)
				w.MulAddF32(acc, av, xv)
			})
			sums := make([]float32, g)
			ts.ReduceAddF32(acc, sums)
			ts.StoreF32Grouped(dY, ts.Task, sums, nil)
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(n), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(n), body)
		}
	}
	stats, err := d.Launch(opts.grid(d, n), kernel)
	if err != nil {
		return nil, fmt.Errorf("gpualgo: SpMV: %w", err)
	}
	res.Stats.Add(stats)
	res.Launches = 1
	res.Iterations = 1
	res.Y = append([]float32(nil), dY.Data()...)
	return res, nil
}

// SpMVCPU is the host oracle for SpMV. Note the device reduces each row in
// strided-lane order while this sums in index order, so float32 results can
// differ in the last ulps; compare with a tolerance.
func SpMVCPU(g *graph.CSR, vals []float32, x []float32) []float32 {
	n := g.NumVertices()
	y := make([]float32, n)
	for v := 0; v < n; v++ {
		var sum float32
		row := g.RowPtr[v]
		for i, c := range g.Neighbors(graph.VertexID(v)) {
			sum += vals[int(row)+i] * x[c]
		}
		y[v] = sum
	}
	return y
}
