package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/graph"
)

func TestGreedyColoringCPU(t *testing.T) {
	// Triangle needs exactly 3 colors; bipartite square needs 2.
	tri, err := graph.FromEdgesSimple(3, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2},
		{Src: 2, Dst: 1}, {Src: 2, Dst: 0}, {Src: 0, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	colors, palette := GreedyColoringCPU(tri)
	if palette != 3 {
		t.Fatalf("triangle palette %d, want 3", palette)
	}
	if err := ValidColoring(tri, colors); err != nil {
		t.Fatal(err)
	}
	square, err := graph.FromEdgesSimple(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0}, {Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2}, {Src: 3, Dst: 0}, {Src: 0, Dst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, palette := GreedyColoringCPU(square); palette != 2 {
		t.Fatalf("square palette %d, want 2", palette)
	}
}

func TestValidColoringCatchesViolations(t *testing.T) {
	g, err := graph.FromEdgesSimple(3, []graph.Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidColoring(g, []int32{0, 0, 1}); err == nil {
		t.Error("conflicting colors accepted")
	}
	if err := ValidColoring(g, []int32{0, -1, 1}); err == nil {
		t.Error("uncolored vertex accepted")
	}
	if err := ValidColoring(g, []int32{0, 1}); err == nil {
		t.Error("short color array accepted")
	}
	if err := ValidColoring(g, []int32{0, 1, 0}); err != nil {
		t.Errorf("proper coloring rejected: %v", err)
	}
}

func TestGraphColoringProperAcrossGraphsAndK(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.CSR
	}{
		{"rmat", undirected(t, mustRMATSimple(t, 8, 6, 2))},
		{"uniform", undirected(t, mustUniformSimple(t, 200, 1200, 3))},
	} {
		maxDeg := graph.Stats(tc.g).MaxDegree
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			dg := Upload(d, tc.g)
			res, err := GraphColoring(d, dg, 13, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", tc.name, k, err)
			}
			if err := ValidColoring(tc.g, res.Colors); err != nil {
				t.Fatalf("%s K=%d: %v", tc.name, k, err)
			}
			if res.NumColors > maxDeg+1 {
				t.Fatalf("%s K=%d: palette %d exceeds maxdeg+1 = %d",
					tc.name, k, res.NumColors, maxDeg+1)
			}
		}
	}
}

func TestGraphColoringDeterministic(t *testing.T) {
	g := undirected(t, mustUniformSimple(t, 150, 900, 5))
	run := func() []int32 {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := GraphColoring(d, dg, 21, Options{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Colors
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("coloring not deterministic")
	}
}

func TestGraphColoringPaletteNearGreedy(t *testing.T) {
	g := undirected(t, mustRMATSimple(t, 8, 8, 9))
	_, greedy := GreedyColoringCPU(g)
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := GraphColoring(d, dg, 4, Options{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	// JP with random priorities typically lands within ~2x of greedy.
	if res.NumColors > 2*greedy+2 {
		t.Fatalf("palette %d far above greedy %d", res.NumColors, greedy)
	}
}

func TestGraphColoringEdgeless(t *testing.T) {
	g, err := graph.FromEdges(6, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := GraphColoring(d, dg, 1, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 1 {
		t.Fatalf("edgeless palette %d, want 1", res.NumColors)
	}
}

func TestGraphColoringHighDegreeHub(t *testing.T) {
	// A star with 100 leaves: hub + leaves need exactly 2 colors, and the
	// windowed mex must handle the hub's 100-neighbor scan.
	var edges []graph.Edge
	for i := int32(1); i <= 100; i++ {
		edges = append(edges, graph.Edge{Src: 0, Dst: i}, graph.Edge{Src: i, Dst: 0})
	}
	g, err := graph.FromEdgesSimple(101, edges)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := GraphColoring(d, dg, 3, Options{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidColoring(g, res.Colors); err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 2 {
		t.Fatalf("star palette %d, want 2", res.NumColors)
	}
}
