package gpualgo

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// The dynamic-graph differential harness: random mutation batches stream
// into a graph.Delta, and after every batch each incremental algorithm's
// repaired result is compared against a full recompute by the CPU oracle on
// the Compact()-ed graph — chained, so each repair's output is the next
// batch's warm start. The sweep covers the three seeded graph regimes, host
// modes ParallelSMs ∈ {1, 0, 4} (results must also be bit-identical across
// modes), and a sanitizer-enabled configuration.

// randomMutationBatch builds size mutations against dl's current live edge
// set: half deletions of live edges, half random insertions (which may hit
// live edges — duplicate-insert no-ops are part of the contract). symmetric
// emits both directions of every mutation (for CC). Weights range 1..9.
func randomMutationBatch(rng *rand.Rand, dl *graph.Delta, size int, symmetric bool) []graph.EdgeMutation {
	type edge struct{ u, v graph.VertexID }
	var live []edge
	n := dl.NumVertices()
	for v := 0; v < n; v++ {
		dl.OutNeighborsLive(graph.VertexID(v), func(u graph.VertexID, _ int32) bool {
			live = append(live, edge{graph.VertexID(v), u})
			return true
		})
	}
	var batch []graph.EdgeMutation
	add := func(m graph.EdgeMutation) {
		batch = append(batch, m)
		if symmetric {
			batch = append(batch, graph.EdgeMutation{Src: m.Dst, Dst: m.Src, Weight: m.Weight, Del: m.Del})
		}
	}
	for i := 0; i < size; i++ {
		if len(live) > 0 && rng.Intn(2) == 0 {
			e := live[rng.Intn(len(live))]
			add(graph.EdgeMutation{Src: e.u, Dst: e.v, Del: true})
		} else {
			add(graph.EdgeMutation{
				Src:    graph.VertexID(rng.Intn(n)),
				Dst:    graph.VertexID(rng.Intn(n)),
				Weight: int32(rng.Intn(9) + 1),
			})
		}
	}
	return batch
}

// incDiffCase runs one algorithm's chained mutate→repair→compare loop on one
// device. prevFn recomputes nothing: the repaired output of batch i is the
// warm start of batch i+1.
type incDiffCase struct {
	name      string
	symmetric bool
	weighted  bool
	// run repairs after one batch and returns the repaired vector to chain
	// (int32 algorithms) — PageRank chains float32 via its own closure state.
	run func(t *testing.T, label string, d *simt.Device, dl *graph.Delta, prev []int32, applied []graph.AppliedMutation, opts Options) []int32
	// oracle computes the full-recompute answer on the compacted graph.
	oracle func(t *testing.T, g *graph.CSR, w []int32, src graph.VertexID) []int32
}

func incDiffCases(src graph.VertexID) []incDiffCase {
	return []incDiffCase{
		{
			name: "bfs",
			run: func(t *testing.T, label string, d *simt.Device, dl *graph.Delta, prev []int32, applied []graph.AppliedMutation, opts Options) []int32 {
				res, info, err := IncrementalBFS(d, dl, nil, src, prev, applied, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if info.Rounds > 0 && res.Launches != info.Rounds {
					t.Errorf("%s: %d launches for %d rounds", label, res.Launches, info.Rounds)
				}
				return res.Levels
			},
			oracle: func(t *testing.T, g *graph.CSR, _ []int32, src graph.VertexID) []int32 {
				return cpualgo.BFSSequential(g, src)
			},
		},
		{
			name:     "sssp",
			weighted: true,
			run: func(t *testing.T, label string, d *simt.Device, dl *graph.Delta, prev []int32, applied []graph.AppliedMutation, opts Options) []int32 {
				res, _, err := IncrementalSSSP(d, dl, nil, src, prev, applied, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res.Dist
			},
			oracle: func(t *testing.T, g *graph.CSR, w []int32, src graph.VertexID) []int32 {
				return cpualgo.SSSPDijkstra(g, w, src)
			},
		},
		{
			name:      "cc",
			symmetric: true,
			run: func(t *testing.T, label string, d *simt.Device, dl *graph.Delta, prev []int32, applied []graph.AppliedMutation, opts Options) []int32 {
				res, _, err := IncrementalCC(d, dl, nil, prev, applied, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				return res.Labels
			},
			oracle: func(t *testing.T, g *graph.CSR, _ []int32, _ graph.VertexID) []int32 {
				return cpualgo.ConnectedComponents(g)
			},
		},
	}
}

// incDiffStart prepares the per-case starting state: the (possibly
// symmetrized) base graph, its delta, and the exact pre-mutation result.
func incDiffStart(t *testing.T, c incDiffCase, g0 *graph.CSR, src graph.VertexID) (*graph.Delta, []int32) {
	t.Helper()
	g := g0
	if c.symmetric {
		var err error
		if g, err = g0.Symmetrize(); err != nil {
			t.Fatal(err)
		}
	}
	var weights []int32
	if c.weighted {
		weights = gengraph.EdgeWeights(g, 10, 5)
	}
	dl, err := graph.NewDelta(g, weights)
	if err != nil {
		t.Fatal(err)
	}
	var prev []int32
	switch c.name {
	case "bfs":
		prev = cpualgo.BFSSequential(g, src)
	case "sssp":
		prev = cpualgo.SSSPDijkstra(g, weights, src)
	case "cc":
		prev = cpualgo.ConnectedComponents(g)
	}
	return dl, prev
}

// TestDifferentialIncremental streams mutation batches and pins every
// repaired result bit-identical to the CPU oracle's full recompute on the
// compacted graph, chained across batches, for each host mode — and then
// requires the per-mode result streams to match each other bit-for-bit.
func TestDifferentialIncremental(t *testing.T) {
	graphs := diffGraphs(t)
	modes := []int{1, 0, 4}
	variants := []struct {
		name string
		opts Options
	}{
		{"K1", Options{K: 1}},
		{"K8", Options{K: 8}},
	}
	const batches = 3
	const batchSize = 10
	if testing.Short() {
		graphs = graphs[:1]
		modes = []int{0}
	}
	for _, c := range incDiffCases(0) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			for _, gr := range graphs {
				src := graph.LargestOutComponentSeed(gr.g)
				for _, v := range variants {
					// results[mode][batch] chains and cross-checks.
					perMode := make(map[int][][]int32)
					for _, mode := range modes {
						cases := incDiffCases(src)
						var cc incDiffCase
						for _, x := range cases {
							if x.name == c.name {
								cc = x
							}
						}
						d := parallelDevice(t, mode)
						dl, prev := incDiffStart(t, cc, gr.g, src)
						rng := rand.New(rand.NewSource(42))
						var stream [][]int32
						for b := 0; b < batches; b++ {
							label := fmt.Sprintf("%s/%s/%s/ParallelSMs=%d/batch%d", c.name, gr.name, v.name, mode, b)
							batch := randomMutationBatch(rng, dl, batchSize, cc.symmetric)
							applied, _, err := dl.Apply(batch)
							if err != nil {
								t.Fatalf("%s: Apply: %v", label, err)
							}
							got := cc.run(t, label, d, dl, prev, applied, v.opts)
							cg, cw, err := dl.Compact()
							if err != nil {
								t.Fatalf("%s: Compact: %v", label, err)
							}
							want := cc.oracle(t, cg, cw, src)
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("%s: incremental result differs from full recompute on compacted graph", label)
							}
							stream = append(stream, got)
							prev = got
						}
						perMode[mode] = stream
					}
					for _, mode := range modes[1:] {
						if !reflect.DeepEqual(perMode[modes[0]], perMode[mode]) {
							t.Errorf("%s/%s/%s: repaired results differ between ParallelSMs=%d and %d",
								c.name, gr.name, v.name, modes[0], mode)
						}
					}
				}
			}
		})
	}
}

// TestDifferentialDeltaPageRank chains warm-started delta PageRank across
// mutation batches: after each batch the re-converged ranks must match the
// CPU oracle's converged ranks on the compacted graph within tolerance, and
// the float32 rank streams must be bit-identical across host modes.
func TestDifferentialDeltaPageRank(t *testing.T) {
	graphs := diffGraphs(t)
	modes := []int{1, 0, 4}
	if testing.Short() {
		graphs = graphs[:1]
		modes = []int{0}
	}
	const batches = 3
	popts := PageRankOptions{Options: Options{K: 8}, Iterations: 200, Tolerance: 5e-7}
	for _, gr := range graphs {
		gr := gr
		t.Run(gr.name, func(t *testing.T) {
			t.Parallel()
			perMode := make(map[int][][]float32)
			for _, mode := range modes {
				d := parallelDevice(t, mode)
				dl, err := graph.NewDelta(gr.g, nil)
				if err != nil {
					t.Fatal(err)
				}
				// Cold start on the unmutated delta = the initial full run.
				res, _, err := DeltaPageRank(d, dl, nil, nil, popts)
				if err != nil {
					t.Fatal(err)
				}
				prev := res.Ranks
				rng := rand.New(rand.NewSource(99))
				var stream [][]float32
				for b := 0; b < batches; b++ {
					label := fmt.Sprintf("pagerank/%s/ParallelSMs=%d/batch%d", gr.name, mode, b)
					batch := randomMutationBatch(rng, dl, 8, false)
					if _, _, err := dl.Apply(batch); err != nil {
						t.Fatalf("%s: Apply: %v", label, err)
					}
					res, info, err := DeltaPageRank(d, dl, nil, prev, popts)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if info.Rounds == 0 {
						t.Errorf("%s: warm restart ran zero iterations", label)
					}
					cg, _, err := dl.Compact()
					if err != nil {
						t.Fatalf("%s: Compact: %v", label, err)
					}
					want, _ := cpualgo.PageRank(cg, cpualgo.PageRankOptions{MaxIters: 500, Tolerance: 1e-10})
					for v := range want {
						if diff := math.Abs(float64(res.Ranks[v]) - want[v]); diff > 1e-3*(want[v]+1e-9)+1e-5 {
							t.Errorf("%s: rank[%d] = %g, oracle %g", label, v, res.Ranks[v], want[v])
							break
						}
					}
					stream = append(stream, res.Ranks)
					prev = res.Ranks
				}
				perMode[mode] = stream
			}
			for _, mode := range modes[1:] {
				if !reflect.DeepEqual(perMode[modes[0]], perMode[mode]) {
					t.Errorf("pagerank/%s: rank streams differ between ParallelSMs=%d and %d", gr.name, modes[0], mode)
				}
			}
		})
	}
}

// TestIncrementalSanitized runs one full mutate→repair cycle per algorithm
// under the kernel sanitizer and requires zero Error-severity diagnostics
// from the overlay-aware repair kernels.
func TestIncrementalSanitized(t *testing.T) {
	rm, err := gengraph.RMAT(6, 8, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(rm)
	opts := Options{K: 4}
	for _, c := range incDiffCases(src) {
		c := c
		t.Run(c.name, func(t *testing.T) {
			d, s := sanitizedDevice(t)
			dl, prev := incDiffStart(t, c, rm, src)
			rng := rand.New(rand.NewSource(7))
			batch := randomMutationBatch(rng, dl, 10, c.symmetric)
			applied, _, err := dl.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			got := c.run(t, c.name, d, dl, prev, applied, opts)
			cg, cw, err := dl.Compact()
			if err != nil {
				t.Fatal(err)
			}
			want := c.oracle(t, cg, cw, src)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: sanitized incremental result differs from oracle", c.name)
			}
			if errs := s.Errors(); len(errs) != 0 {
				t.Errorf("%s: sanitizer found %d Error diagnostic(s):\n%s", c.name, len(errs), s.Text())
			}
		})
	}
	t.Run("pagerank", func(t *testing.T) {
		d, s := sanitizedDevice(t)
		dl, err := graph.NewDelta(rm, nil)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := DeltaPageRank(d, dl, nil, nil, PageRankOptions{Options: opts, Iterations: 30})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(7))
		batch := randomMutationBatch(rng, dl, 10, false)
		if _, _, err := dl.Apply(batch); err != nil {
			t.Fatal(err)
		}
		if _, _, err := DeltaPageRank(d, dl, nil, res.Ranks, PageRankOptions{Options: opts, Iterations: 30}); err != nil {
			t.Fatal(err)
		}
		if errs := s.Errors(); len(errs) != 0 {
			t.Errorf("pagerank: sanitizer found %d Error diagnostic(s):\n%s", len(errs), s.Text())
		}
	})
}
