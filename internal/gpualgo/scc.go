package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// SCCResult is the output of strongly-connected-component decomposition.
type SCCResult struct {
	Result
	// Labels maps each vertex to the smallest vertex id in its SCC (the
	// same canonical labeling as cpualgo.SCC).
	Labels []int32
	// Components is the number of SCCs found.
	Components int
	// Trimmed counts vertices resolved by the trim phases (trivial SCCs).
	Trimmed int
}

// SCC decomposes a directed graph into strongly connected components on the
// device with the Forward-Backward-Trim algorithm (the approach this
// research group scaled up in their SC'13 follow-up): iterated *trim* passes
// peel vertices with no in- or out-neighbor inside their region (trivial
// SCCs — the bulk of skewed real-world graphs), then a pivot's forward and
// backward reachable sets are computed with masked BFS kernels; their
// intersection is one SCC and the three remainders recurse as new regions.
// All passes are virtual warp-centric kernels.
//
// Worst-case region count is O(V) (e.g. long DAG chains), each costing a
// full-vertex scan; the algorithm shines on small-world graphs where trim
// plus a few FB rounds resolve everything.
func SCC(d *simt.Device, g *graph.CSR, opts Options) (*SCCResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	res := &SCCResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	if n == 0 {
		return res, nil
	}
	dg := Upload(d, g)
	dgRev := Upload(d, g.Reverse())
	region := d.AllocI32("scc.region", n) // current partition; -1 = resolved
	// Kernels read region from the first iteration; partition 0 is the
	// initial state, so write it explicitly.
	region.Fill(0)
	scc := d.AllocI32("scc.labels", n)
	scc.Fill(-1)
	fwd := d.AllocI32("scc.fwd", n)
	bwd := d.AllocI32("scc.bwd", n)
	hasOut := d.AllocI32("scc.hasout", n)
	hasIn := d.AllocI32("scc.hasin", n)
	counts := d.AllocI32("scc.counts", 4)
	changed := d.AllocI32("scc.changed", 1)

	lc := opts.grid(d, n)
	launch := func(k simt.Kernel, what string) error {
		stats, err := d.Launch(lc, k)
		if err != nil {
			return fmt.Errorf("gpualgo: SCC %s: %w", what, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		return nil
	}

	worklist := []int32{0}
	nextRegion := int32(1)
	guard := 0
	for len(worklist) > 0 {
		guard++
		if guard > 4*n+16 {
			return nil, fmt.Errorf("gpualgo: SCC exceeded %d region iterations", guard)
		}
		r := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		res.Iterations++

		// Trim loop: peel trivially strongly-connected vertices.
		for {
			if err := launch(sccScanKernel(dg, region, hasOut, r, opts), "out-scan"); err != nil {
				return nil, err
			}
			if err := launch(sccScanKernel(dgRev, region, hasIn, r, opts), "in-scan"); err != nil {
				return nil, err
			}
			changed.Data()[0] = 0
			if err := launch(sccTrimKernel(n, region, hasOut, hasIn, scc, changed, r), "trim"); err != nil {
				return nil, err
			}
			trimmed := int(changed.Data()[0])
			res.Trimmed += trimmed
			if trimmed == 0 {
				break
			}
		}
		// Pivot: first surviving vertex of the region (host scan — the
		// stand-in for a tiny argmax kernel).
		pivot := int32(-1)
		for v := 0; v < n; v++ {
			if region.Data()[v] == r {
				pivot = int32(v)
				break
			}
		}
		if pivot < 0 {
			continue
		}
		// Reset masks for this region, seed the pivot, and compute the
		// forward/backward closures with masked BFS.
		if err := launch(sccResetKernel(n, region, fwd, bwd, r), "reset"); err != nil {
			return nil, err
		}
		fwd.Data()[pivot] = 1
		bwd.Data()[pivot] = 1
		for _, dir := range []struct {
			g    *DeviceGraph
			mask *simt.BufI32
			what string
		}{{dg, fwd, "forward"}, {dgRev, bwd, "backward"}} {
			for {
				changed.Data()[0] = 0
				if err := launch(sccClosureKernel(dir.g, region, dir.mask, changed, r, opts), dir.what); err != nil {
					return nil, err
				}
				if changed.Data()[0] == 0 {
					break
				}
			}
		}
		// Split: SCC = fwd ∩ bwd; the three remainders become new regions.
		idFwd, idBwd, idRest := nextRegion, nextRegion+1, nextRegion+2
		nextRegion += 3
		for i := range counts.Data() {
			counts.Data()[i] = 0
		}
		if err := launch(sccAssignKernel(n, region, fwd, bwd, scc, counts, r, pivot, idFwd, idBwd, idRest), "assign"); err != nil {
			return nil, err
		}
		if counts.Data()[1] > 0 {
			worklist = append(worklist, idFwd)
		}
		if counts.Data()[2] > 0 {
			worklist = append(worklist, idBwd)
		}
		if counts.Data()[3] > 0 {
			worklist = append(worklist, idRest)
		}
	}

	// Canonicalize labels to the minimum vertex id per component, matching
	// the CPU oracle's labeling.
	raw := scc.Data()
	minOf := map[int32]int32{}
	for v := 0; v < n; v++ {
		l := raw[v]
		if cur, ok := minOf[l]; !ok || int32(v) < cur {
			minOf[l] = int32(v)
		}
	}
	res.Labels = make([]int32, n)
	for v := 0; v < n; v++ {
		res.Labels[v] = minOf[raw[v]]
	}
	res.Components = len(minOf)
	return res, nil
}

// sccScanKernel sets flag[v] = 1 iff v (in region r) has a neighbor still in
// region r along the given graph direction.
func sccScanKernel(dg *DeviceGraph, region, flag *simt.BufI32, r int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			reg := make([]int32, g)
			ts.LoadI32Grouped(region, ts.Task, reg)
			ts.Mask(func(gi int) bool { return reg[gi] == r }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				found := w.VecI32()
				w.Apply(1, func(lane int) { found[lane] = 0 })
				nbr := w.VecI32()
				nreg := w.VecI32()
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(region, nbr, nreg)
					w.Apply(1, func(lane int) {
						if nreg[lane] == r {
							found[lane] = 1
						}
					})
				})
				any := make([]int32, g)
				ts.ReduceAddI32(found, any)
				val := make([]int32, g)
				ts.SISD(1, func(gi int) {
					if any[gi] > 0 {
						val[gi] = 1
					}
				})
				ts.StoreI32Grouped(flag, ts.Task, val, nil)
			})
		})
	}
}

// sccTrimKernel resolves region-r vertices with no in- or out-neighbor in
// the region as singleton SCCs, counting removals in changed[0].
func sccTrimKernel(n int, region, hasOut, hasIn, scc, changed *simt.BufI32, r int32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			reg := w.VecI32()
			w.LoadI32(region, idx, reg)
			w.If(func(lane int) bool { return reg[lane] == r }, func() {
				ho := w.VecI32()
				hi := w.VecI32()
				w.LoadI32(hasOut, idx, ho)
				w.LoadI32(hasIn, idx, hi)
				w.If(func(lane int) bool { return ho[lane] == 0 || hi[lane] == 0 }, func() {
					w.StoreI32(scc, idx, idx)
					minusOne := w.ConstI32(-1)
					w.StoreI32(region, idx, minusOne)
					one := w.ConstI32(1)
					w.AtomicAddI32(changed, w.ConstI32(0), one, nil)
				}, nil)
			}, nil)
			w.AddConstI32(idx, stride)
		})
	}
}

// sccResetKernel zeroes the closure masks for region r.
func sccResetKernel(n int, region, fwd, bwd *simt.BufI32, r int32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		zero := w.ConstI32(0)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			reg := w.VecI32()
			w.LoadI32(region, idx, reg)
			w.If(func(lane int) bool { return reg[lane] == r }, func() {
				w.StoreI32(fwd, idx, zero)
				w.StoreI32(bwd, idx, zero)
			}, nil)
			w.AddConstI32(idx, stride)
		})
	}
}

// sccClosureKernel expands the mask one step: frontier vertices (mask == 1)
// mark their unvisited region-r neighbors and settle to mask == 2.
func sccClosureKernel(dg *DeviceGraph, region, mask, changed *simt.BufI32, r int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			reg := make([]int32, g)
			mk := make([]int32, g)
			ts.LoadI32Grouped(region, ts.Task, reg)
			ts.LoadI32Grouped(mask, ts.Task, mk)
			ts.Mask(func(gi int) bool { return reg[gi] == r && mk[gi] == 1 }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				nreg := w.VecI32()
				nmk := w.VecI32()
				one := w.ConstI32(1)
				zero := w.ConstI32(0)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(region, nbr, nreg)
					w.LoadI32(mask, nbr, nmk)
					w.If(func(lane int) bool {
						return nreg[lane] == r && nmk[lane] == 0
					}, func() {
						w.StoreI32(mask, nbr, one)
						w.StoreI32(changed, zero, one)
					}, nil)
				})
				two := make([]int32, g)
				for gi := range two {
					two[gi] = 2
				}
				ts.StoreI32Grouped(mask, ts.Task, two, nil)
			})
		})
	}
}

// sccAssignKernel labels the fwd∩bwd intersection with the pivot and deals
// the three remainders into fresh regions, counting each class.
func sccAssignKernel(n int, region, fwd, bwd, scc, counts *simt.BufI32, r, pivot, idFwd, idBwd, idRest int32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		one := w.ConstI32(1)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			reg := w.VecI32()
			w.LoadI32(region, idx, reg)
			w.If(func(lane int) bool { return reg[lane] == r }, func() {
				f := w.VecI32()
				b := w.VecI32()
				w.LoadI32(fwd, idx, f)
				w.LoadI32(bwd, idx, b)
				class := w.VecI32()
				newReg := w.VecI32()
				w.Apply(2, func(lane int) {
					inF, inB := f[lane] > 0, b[lane] > 0
					switch {
					case inF && inB:
						class[lane] = 0
						newReg[lane] = -1
					case inF:
						class[lane] = 1
						newReg[lane] = idFwd
					case inB:
						class[lane] = 2
						newReg[lane] = idBwd
					default:
						class[lane] = 3
						newReg[lane] = idRest
					}
				})
				w.If(func(lane int) bool { return class[lane] == 0 }, func() {
					pv := w.ConstI32(pivot)
					w.StoreI32(scc, idx, pv)
				}, nil)
				w.StoreI32(region, idx, newReg)
				w.AtomicAddI32(counts, class, one, nil)
			}, nil)
			w.AddConstI32(idx, stride)
		})
	}
}
