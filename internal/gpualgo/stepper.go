package gpualgo

import "maxwarp/internal/simt"

// RunState lists the device buffers that make up a run's replayable state:
// everything a kernel step reads or writes, including the uploaded graph
// (fault injection may flip bits in any registered buffer). A supervisor can
// snapshot these between steps and restore them to retry a failed step.
type RunState struct {
	I32 []*simt.BufI32
	F32 []*simt.BufF32
}

// stepper is the common shape of the open-loop algorithm runs (BFSRun,
// SSSPRun, PageRankRun): repeated Step calls until done, with host-side
// progress advancing only on success so a failed step can be retried after
// restoring State.
type stepper interface {
	Step() (done bool, err error)
	State() RunState
	Iterations() int
}

var (
	_ stepper = (*BFSRun)(nil)
	_ stepper = (*SSSPRun)(nil)
	_ stepper = (*PageRankRun)(nil)
	_ stepper = (*CCRun)(nil)
)

func graphState(st *RunState, dg *DeviceGraph) {
	st.I32 = append(st.I32, dg.RowPtr, dg.Col)
	if dg.Weights != nil {
		st.I32 = append(st.I32, dg.Weights)
	}
}
