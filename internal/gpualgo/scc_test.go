package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func TestSCCKnownGraph(t *testing.T) {
	// 0<->1 -> 2<->3, isolated 4.
	g, err := graph.FromEdges(5, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	res, err := SCC(d, g, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, 0, 2, 2, 4}
	if !reflect.DeepEqual(res.Labels, want) {
		t.Fatalf("labels = %v, want %v", res.Labels, want)
	}
	if res.Components != 3 {
		t.Fatalf("components = %d, want 3", res.Components)
	}
}

func TestSCCMatchesTarjan(t *testing.T) {
	for name, g := range testGraphs(t) {
		want := cpualgo.SCC(g)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			res, err := SCC(d, g, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			if !reflect.DeepEqual(res.Labels, want) {
				t.Fatalf("%s K=%d: labels differ from Tarjan", name, k)
			}
		}
	}
}

func TestSCCCycleAndDAG(t *testing.T) {
	cyc, err := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 4, Dst: 5}, {Src: 5, Dst: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	res, err := SCC(d, cyc, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 1 {
		t.Fatalf("cycle components = %d", res.Components)
	}
	dag, err := graph.FromEdges(8, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 0, Dst: 3},
		{Src: 3, Dst: 4}, {Src: 2, Dst: 5}, {Src: 4, Dst: 5},
		{Src: 5, Dst: 6}, {Src: 6, Dst: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	d2 := testDevice(t)
	res, err = SCC(d2, dag, Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 8 || res.Trimmed != 8 {
		t.Fatalf("DAG: components=%d trimmed=%d, want all 8 trimmed", res.Components, res.Trimmed)
	}
}

func TestSCCTrimHandlesSkewedGraphs(t *testing.T) {
	// RMAT graphs are mostly trivial SCCs plus a core: trim should resolve
	// the bulk without FB recursion exploding.
	g, err := gengraph.RMAT(9, 8, gengraph.DefaultRMAT, 21)
	if err != nil {
		t.Fatal(err)
	}
	want := cpualgo.SCC(g)
	d := testDevice(t)
	res, err := SCC(d, g, Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Labels, want) {
		t.Fatal("labels differ from Tarjan")
	}
	if res.Trimmed == 0 {
		t.Fatal("trim resolved nothing on a skewed graph (suspicious)")
	}
}

func TestSCCEmpty(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	res, err := SCC(d, g, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Components != 0 || len(res.Labels) != 0 {
		t.Fatalf("empty SCC: %+v", res)
	}
}
