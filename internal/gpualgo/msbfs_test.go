package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/graph"
)

func TestMSBFSMatchesCPU(t *testing.T) {
	for name, g := range testGraphs(t) {
		n := g.NumVertices()
		sources := []graph.VertexID{0, graph.VertexID(n / 3), graph.VertexID(n / 2), graph.VertexID(n - 1)}
		want := MSBFSCPU(g, sources)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			dg := Upload(d, g)
			res, err := MSBFS(d, dg, sources, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			if len(res.Levels) != len(sources) {
				t.Fatalf("%s K=%d: %d level arrays", name, k, len(res.Levels))
			}
			for s := range sources {
				if !reflect.DeepEqual(res.Levels[s], want[s]) {
					t.Fatalf("%s K=%d: source %d levels differ from CPU", name, k, s)
				}
			}
		}
	}
}

func TestMSBFSFullBatch(t *testing.T) {
	g := testGraphs(t)["rmat"]
	sources := make([]graph.VertexID, MaxMSBFSSources)
	for i := range sources {
		sources[i] = graph.VertexID(i * 7 % g.NumVertices())
	}
	// Duplicate sources are legal: each bit runs its own search.
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := MSBFS(d, dg, sources, Options{K: 16})
	if err != nil {
		t.Fatal(err)
	}
	want := MSBFSCPU(g, sources)
	for s := range sources {
		if !reflect.DeepEqual(res.Levels[s], want[s]) {
			t.Fatalf("source %d differs", s)
		}
	}
}

func TestMSBFSSharesWork(t *testing.T) {
	// A batch of 16 sources must cost far less than 16 independent runs.
	g := testGraphs(t)["rmat"]
	sources := make([]graph.VertexID, 16)
	for i := range sources {
		sources[i] = graph.VertexID(i * 13 % g.NumVertices())
	}
	d := testDevice(t)
	dg := Upload(d, g)
	batch, err := MSBFS(d, dg, sources, Options{K: 32})
	if err != nil {
		t.Fatal(err)
	}
	var individual int64
	for _, src := range sources {
		d2 := testDevice(t)
		dg2 := Upload(d2, g)
		r, err := BFS(d2, dg2, src, Options{K: 32})
		if err != nil {
			t.Fatal(err)
		}
		individual += r.Stats.Cycles
	}
	if batch.Stats.Cycles*2 >= individual {
		t.Fatalf("MS-BFS batch (%d cycles) not clearly cheaper than %d independent runs (%d)",
			batch.Stats.Cycles, len(sources), individual)
	}
}

func TestMSBFSValidation(t *testing.T) {
	g := testGraphs(t)["uni"]
	d := testDevice(t)
	dg := Upload(d, g)
	if _, err := MSBFS(d, dg, []graph.VertexID{-1}, Options{K: 1}); err == nil {
		t.Error("negative source accepted")
	}
	too := make([]graph.VertexID, MaxMSBFSSources+1)
	if _, err := MSBFS(d, dg, too, Options{K: 1}); err == nil {
		t.Error("oversized batch accepted")
	}
	res, err := MSBFS(d, dg, nil, Options{K: 1})
	if err != nil || len(res.Levels) != 0 {
		t.Error("empty batch mishandled")
	}
}
