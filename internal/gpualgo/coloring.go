package gpualgo

import (
	"fmt"
	"math/bits"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// ColoringResult is the output of greedy graph coloring.
type ColoringResult struct {
	Result
	// Colors assigns each vertex a color in [0, NumColors).
	Colors []int32
	// NumColors is the palette size used.
	NumColors int32
}

// GraphColoring computes a proper vertex coloring of an undirected graph
// with Jones–Plassmann rounds: every round, each uncolored vertex whose
// hashed priority beats all its uncolored neighbors colors itself with the
// smallest color absent from its (already colored) neighborhood. The mex
// search scans the neighborhood in 32-color windows with a warp-vote OR
// reduction — a pure SIMD-phase pattern.
//
// The coloring is proper and deterministic for a given seed; the exact
// colors depend on the engine's in-round progress order, so tests validate
// properness and palette bounds rather than comparing colors to a CPU run.
func GraphColoring(d *simt.Device, dg *DeviceGraph, seed uint64, opts Options) (*ColoringResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := dg.NumVertices
	prio := d.UploadI32("color.prio", misPriorities(n, seed))
	colors := d.AllocI32("color.colors", n)
	colors.Fill(-1)
	changed := d.AllocI32("color.changed", 1)
	res := &ColoringResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for iter := 0; iter < maxIter; iter++ {
		changed.Data()[0] = 0
		stats, err := d.Launch(lc, coloringRoundKernel(dg, prio, colors, changed, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: coloring round %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.Colors = append([]int32(nil), colors.Data()...)
	for _, c := range res.Colors {
		if c < 0 {
			return nil, fmt.Errorf("gpualgo: coloring left a vertex uncolored")
		}
		if c+1 > res.NumColors {
			res.NumColors = c + 1
		}
	}
	return res, nil
}

func coloringRoundKernel(dg *DeviceGraph, prio, colors, changed *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			myColor := make([]int32, g)
			ts.LoadI32Grouped(colors, ts.Task, myColor)
			ts.Mask(func(gi int) bool { return myColor[gi] < 0 }, func() {
				myPrio := make([]int32, g)
				ts.LoadI32Grouped(prio, ts.Task, myPrio)
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)

				// Phase 1: eligibility — no uncolored neighbor dominates.
				blocked := w.VecI32()
				w.Apply(1, func(lane int) { blocked[lane] = 0 })
				nbr := w.VecI32()
				ncol := w.VecI32()
				nprio := w.VecI32()
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(colors, nbr, ncol)
					w.LoadI32(prio, nbr, nprio)
					w.Apply(2, func(lane int) {
						gi := ts.Group(lane)
						if ncol[lane] < 0 {
							if nprio[lane] > myPrio[gi] ||
								(nprio[lane] == myPrio[gi] && nbr[lane] > ts.Task[gi]) {
								blocked[lane] = 1
							}
						}
					})
				})
				anyBlocked := make([]int32, g)
				ts.ReduceAddI32(blocked, anyBlocked)

				// Phase 2: eligible groups search the smallest free color in
				// 32-color windows.
				ts.Mask(func(gi int) bool { return anyBlocked[gi] == 0 }, func() {
					chosen := make([]int32, g)
					// Only groups actually active in this masked scope
					// search; everything else counts as done, or the window
					// loop below would spin forever on their behalf.
					done := make([]bool, g)
					for gi := range done {
						done[gi] = true
					}
					ts.SISD(1, func(gi int) { done[gi] = false })
					window := make([]int32, g) // per-group window base
					used := w.VecI32()
					usedAll := w.VecI32()
					for {
						// Uniform loop: all groups still searching scan once
						// per window round; finished groups are masked.
						anySearching := false
						for gi := 0; gi < g; gi++ {
							if ts.Valid(gi) && !done[gi] {
								anySearching = true
							}
						}
						if !anySearching {
							break
						}
						ts.Mask(func(gi int) bool { return !done[gi] }, func() {
							w.Apply(1, func(lane int) { used[lane] = 0 })
							ts.SIMDRange(start, end, func(j []int32) {
								w.LoadI32(dg.Col, j, nbr)
								w.LoadI32(colors, nbr, ncol)
								w.Apply(2, func(lane int) {
									gi := ts.Group(lane)
									rel := ncol[lane] - window[gi]
									if ncol[lane] >= 0 && rel >= 0 && rel < 31 {
										used[lane] |= 1 << uint(rel)
									}
								})
							})
							w.GroupReduceOrI32(ts.K, used, usedAll)
							ts.SISD(2, func(gi int) {
								free := ^usedAll[gi*ts.K] & 0x7fffffff
								if free != 0 {
									chosen[gi] = window[gi] + int32(bits.TrailingZeros32(uint32(free)))
									done[gi] = true
								} else {
									window[gi] += 31
								}
							})
						})
					}
					ts.StoreI32Grouped(colors, ts.Task, chosen, nil)
					one := w.ConstI32(1)
					w.StoreI32(changed, w.ConstI32(0), one)
				})
			})
		})
	}
}

// ValidColoring checks colors is a proper coloring of g using at most
// maxDegree+1 colors beyond what the structure forces. Returns an error
// describing the first violation.
func ValidColoring(g *graph.CSR, colors []int32) error {
	n := g.NumVertices()
	if len(colors) != n {
		return fmt.Errorf("gpualgo: %d colors for %d vertices", len(colors), n)
	}
	for v := 0; v < n; v++ {
		if colors[v] < 0 {
			return fmt.Errorf("gpualgo: vertex %d uncolored", v)
		}
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if u != graph.VertexID(v) && colors[u] == colors[v] {
				return fmt.Errorf("gpualgo: adjacent vertices %d and %d share color %d", v, u, colors[v])
			}
		}
	}
	return nil
}

// GreedyColoringCPU is the sequential reference: greedy mex in vertex
// order. Its palette size is the usual comparison point for parallel
// colorings.
func GreedyColoringCPU(g *graph.CSR) ([]int32, int32) {
	n := g.NumVertices()
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = -1
	}
	var palette int32
	used := map[int32]bool{}
	for v := 0; v < n; v++ {
		for k := range used {
			delete(used, k)
		}
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := int32(0)
		for used[c] {
			c++
		}
		colors[v] = c
		if c+1 > palette {
			palette = c + 1
		}
	}
	return colors, palette
}
