package gpualgo

import (
	"fmt"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// SSSPResult is the output of a device shortest-paths run.
type SSSPResult struct {
	Result
	// Dist holds each vertex's distance from the source
	// (cpualgo.InfDist if unreachable).
	Dist []int32
}

// SSSPRun is an open-loop Bellman-Ford run: each Step relaxes every finite
// vertex's out-edges once. Host-side progress advances only when a step
// succeeds, so a supervisor can restore State after a failure and retry the
// same round.
type SSSPRun struct {
	// Launch supervises every kernel launch of the run.
	Launch simt.LaunchOpts

	d       *simt.Device
	dg      *DeviceGraph
	opts    Options
	dist    *simt.BufI32
	changed *simt.BufI32
	counter *simt.BufI32
	lc      simt.LaunchConfig
	maxIter int
	res     *SSSPResult
	done    bool
}

// NewSSSPRun validates the inputs and allocates device state for a
// Bellman-Ford run from src, without launching anything yet.
func NewSSSPRun(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*SSSPRun, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("gpualgo: SSSP requires a weighted graph (UploadWeighted)")
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: SSSP source %d out of range [0,%d)", src, dg.NumVertices)
	}
	n := dg.NumVertices
	r := &SSSPRun{d: d, dg: dg, opts: opts, res: &SSSPResult{}}
	r.dist = d.AllocI32("sssp.dist", n)
	r.dist.Fill(cpualgo.InfDist)
	r.dist.Data()[src] = 0
	r.changed = d.AllocI32("sssp.changed", 1)
	if opts.Dynamic {
		r.counter = d.AllocI32("sssp.counter", 1)
	}
	r.res.Stats.WarpWidth = d.Config().WarpWidth
	r.maxIter = opts.MaxIterations
	if r.maxIter == 0 {
		r.maxIter = n + 1
	}
	r.lc = opts.grid(d, n)
	return r, nil
}

// Step runs one relaxation round. It returns done=true at fixpoint or when
// the iteration cap is hit; on error no host state advances.
func (r *SSSPRun) Step() (bool, error) {
	if r.done {
		return true, nil
	}
	r.changed.Data()[0] = 0
	if r.counter != nil {
		r.counter.Data()[0] = 0
	}
	stats, err := r.d.LaunchWith(r.lc, r.Launch, ssspRelaxKernel(r.dg, r.dist, r.changed, r.counter, r.opts))
	if err != nil {
		return false, fmt.Errorf("gpualgo: SSSP round %d: %w", r.res.Iterations, err)
	}
	r.res.Stats.Add(stats)
	r.res.Launches++
	r.res.Iterations++
	if r.changed.Data()[0] == 0 || r.res.Iterations >= r.maxIter {
		r.done = true
	}
	return r.done, nil
}

// State returns the device buffers a supervisor must snapshot to make Step
// retryable (distances plus the uploaded weighted graph).
func (r *SSSPRun) State() RunState {
	st := RunState{I32: []*simt.BufI32{r.dist, r.changed}}
	if r.counter != nil {
		st.I32 = append(st.I32, r.counter)
	}
	graphState(&st, r.dg)
	return st
}

// Iterations returns the number of completed relaxation rounds.
func (r *SSSPRun) Iterations() int { return r.res.Iterations }

// Result finalizes and returns the run's output.
func (r *SSSPRun) Result() *SSSPResult {
	r.res.Dist = append([]int32(nil), r.dist.Data()...)
	return r.res
}

// SSSP runs Bellman-Ford-style iterative relaxation on the device: every
// round, each vertex with a finite distance relaxes its out-edges with
// atomicMin, until a round changes nothing. The virtual warp-centric mapping
// applies exactly as in BFS: the SISD phase reads the vertex's distance and
// row pointers, the SIMD phase strides the edge list.
func SSSP(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*SSSPResult, error) {
	r, err := NewSSSPRun(d, dg, src, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := r.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return r.Result(), nil
		}
	}
}

func ssspRelaxKernel(dg *DeviceGraph, dist, changed, counter *simt.BufI32, opts Options) simt.Kernel {
	var cEdges *obs.Counter
	if m := opts.Metrics; m != nil {
		cEdges = m.Counter(MetricSSSPEdges, "SSSP edges relaxed.")
	}
	return func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			dv := make([]int32, g)
			ts.LoadI32Grouped(dist, ts.Task, dv)
			ts.Mask(func(gi int) bool { return dv[gi] < cpualgo.InfDist }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				if cEdges != nil {
					var eg int64
					for gi := 0; gi < g; gi++ {
						if ts.Valid(gi) && dv[gi] < cpualgo.InfDist {
							eg += int64(end[gi] - start[gi])
						}
					}
					if eg > 0 {
						cEdges.Add(w.SMID(), eg)
					}
				}
				nbr := w.VecI32()
				wt := w.VecI32()
				cand := w.VecI32()
				old := w.VecI32()
				zero := w.ConstI32(0)
				one := w.ConstI32(1)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(dg.Weights, j, wt)
					w.Apply(1, func(lane int) { cand[lane] = dv[ts.Group(lane)] + wt[lane] })
					w.AtomicMinI32(dist, nbr, cand, old)
					w.If(func(lane int) bool { return cand[lane] < old[lane] }, func() {
						w.StoreI32(changed, zero, one)
					}, nil)
				})
			})
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), body)
		}
	}
}
