package gpualgo

import (
	"fmt"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// SSSPResult is the output of a device shortest-paths run.
type SSSPResult struct {
	Result
	// Dist holds each vertex's distance from the source
	// (cpualgo.InfDist if unreachable).
	Dist []int32
}

// SSSP runs Bellman-Ford-style iterative relaxation on the device: every
// round, each vertex with a finite distance relaxes its out-edges with
// atomicMin, until a round changes nothing. The virtual warp-centric mapping
// applies exactly as in BFS: the SISD phase reads the vertex's distance and
// row pointers, the SIMD phase strides the edge list.
func SSSP(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*SSSPResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("gpualgo: SSSP requires a weighted graph (UploadWeighted)")
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: SSSP source %d out of range [0,%d)", src, dg.NumVertices)
	}
	n := dg.NumVertices
	dist := d.AllocI32("sssp.dist", n)
	dist.Fill(cpualgo.InfDist)
	dist.Data()[src] = 0
	changed := d.AllocI32("sssp.changed", 1)
	var counter *simt.BufI32
	if opts.Dynamic {
		counter = d.AllocI32("sssp.counter", 1)
	}

	res := &SSSPResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for iter := 0; iter < maxIter; iter++ {
		changed.Data()[0] = 0
		if counter != nil {
			counter.Data()[0] = 0
		}
		stats, err := d.Launch(lc, ssspRelaxKernel(dg, dist, changed, counter, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: SSSP round %d: %w", iter, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.Dist = append([]int32(nil), dist.Data()...)
	return res, nil
}

func ssspRelaxKernel(dg *DeviceGraph, dist, changed, counter *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			dv := make([]int32, g)
			ts.LoadI32Grouped(dist, ts.Task, dv)
			ts.Mask(func(gi int) bool { return dv[gi] < cpualgo.InfDist }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				wt := w.VecI32()
				cand := w.VecI32()
				old := w.VecI32()
				zero := w.ConstI32(0)
				one := w.ConstI32(1)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(dg.Weights, j, wt)
					w.Apply(1, func(lane int) { cand[lane] = dv[ts.Group(lane)] + wt[lane] })
					w.AtomicMinI32(dist, nbr, cand, old)
					w.If(func(lane int) bool { return cand[lane] < old[lane] }, func() {
						w.StoreI32(changed, zero, one)
					}, nil)
				})
			})
		}
		if counter != nil {
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, body)
		} else {
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), body)
		}
	}
}
