package gpualgo

import (
	"errors"
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

func tuneConfig() simt.Config {
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 4
	cfg.MaxWarpsPerSM = 16
	cfg.MaxCycles = 50_000_000
	return cfg
}

func TestAutoTunePicksMin(t *testing.T) {
	res, err := AutoTune([]int{1, 2, 4}, func(k int) (int64, error) {
		return int64(100 / k), nil // monotone: 4 wins
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestK != 4 {
		t.Fatalf("BestK = %d, want 4", res.BestK)
	}
	if res.Speedup != 4 {
		t.Fatalf("Speedup = %f, want 4", res.Speedup)
	}
	if len(res.Cycles) != 3 {
		t.Fatalf("Cycles map %v", res.Cycles)
	}
}

func TestAutoTuneErrors(t *testing.T) {
	if _, err := AutoTune(nil, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	boom := errors.New("boom")
	if _, err := AutoTune([]int{1}, func(int) (int64, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("measurement error lost: %v", err)
	}
	// Duplicates measured once.
	calls := 0
	if _, err := AutoTune([]int{2, 2, 2}, func(int) (int64, error) {
		calls++
		return 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("duplicate candidates measured %d times", calls)
	}
}

func TestCandidateKs(t *testing.T) {
	d, err := simt.NewDevice(tuneConfig())
	if err != nil {
		t.Fatal(err)
	}
	ks := CandidateKs(d)
	want := []int{1, 2, 4, 8, 16, 32}
	if len(ks) != len(want) {
		t.Fatalf("ks = %v", ks)
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Fatalf("ks = %v", ks)
		}
	}
}

func TestAutoTuneBFSFindsLargeKOnSkewedGraph(t *testing.T) {
	g, err := gengraph.RMAT(9, 12, gengraph.DefaultRMAT, 11)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	res, err := AutoTuneBFS(tuneConfig(), g, src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestK < 8 {
		t.Fatalf("skewed graph tuned to K=%d; expected a wide virtual warp (cycles: %v)",
			res.BestK, res.Cycles)
	}
	if res.Speedup < 2 {
		t.Fatalf("tuning speedup %.2f too small on skewed graph", res.Speedup)
	}
}

func TestAutoTuneNeighborSumFindsSmallKOnMesh(t *testing.T) {
	g, err := gengraph.Torus2D(24, 24)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AutoTuneNeighborSum(tuneConfig(), g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestK > 8 {
		t.Fatalf("4-regular torus tuned to K=%d; expected a narrow virtual warp (cycles: %v)",
			res.BestK, res.Cycles)
	}
}
