package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// Unvisited marks undiscovered vertices in the device levels array.
const Unvisited = int32(-1)

// BFSResult is the output of a device BFS run.
type BFSResult struct {
	Result
	// Levels holds each vertex's hop distance from the source (Unvisited if
	// unreached).
	Levels []int32
	// Depth is the deepest level assigned.
	Depth int32
	// Deferred counts vertices routed through the outlier queue across all
	// levels (0 unless Options.DeferThreshold > 0).
	Deferred int
}

// BFS runs level-synchronous breadth-first search on the device, one kernel
// launch per level (plus one per level for deferred outliers when enabled),
// exactly mirroring the paper's implementation structure: a levels array, a
// global "changed" flag, and re-launch until fixpoint.
func BFS(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*BFSResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: BFS source %d out of range [0,%d)", src, dg.NumVertices)
	}
	n := dg.NumVertices
	levels := d.AllocI32("bfs.levels", n)
	levels.Fill(Unvisited)
	levels.Data()[src] = 0
	changed := d.AllocI32("bfs.changed", 1)
	var counter *simt.BufI32
	if opts.Dynamic {
		counter = d.AllocI32("bfs.counter", 1)
	}
	var q *vwarp.OutlierQueue
	if opts.DeferThreshold > 0 {
		q = vwarp.NewOutlierQueue(d, "bfs.outliers", n)
	}

	res := &BFSResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for cur := int32(0); int(cur) < maxIter; cur++ {
		changed.Data()[0] = 0
		if counter != nil {
			counter.Data()[0] = 0
		}
		if q != nil {
			q.Reset()
		}
		kernel := bfsLevelKernel(dg, levels, changed, counter, q, cur, opts)
		stats, err := d.Launch(lc, kernel)
		if err != nil {
			return nil, fmt.Errorf("gpualgo: BFS level %d: %w", cur, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		if q != nil && q.Len() > 0 {
			res.Deferred += q.Len()
			dk := bfsDeferredKernel(dg, levels, changed, q, int32(q.Len()), cur, opts)
			dlc := opts.grid(d, q.Len()*d.Config().WarpWidth/opts.K)
			dstats, err := d.Launch(dlc, dk)
			if err != nil {
				return nil, fmt.Errorf("gpualgo: BFS deferred pass level %d: %w", cur, err)
			}
			res.Stats.Add(dstats)
			res.Launches++
		}
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
	}
	res.Levels = append([]int32(nil), levels.Data()...)
	for _, l := range res.Levels {
		if l > res.Depth {
			res.Depth = l
		}
	}
	return res, nil
}

// bfsLevelKernel expands the frontier at level cur. Discovery writes are
// plain stores (a benign race, as in the paper: any winner writes the same
// level value).
func bfsLevelKernel(dg *DeviceGraph, levels, changed, counter *simt.BufI32, q *vwarp.OutlierQueue, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		body := func(ts *vwarp.Tasks) {
			g := ts.Groups
			lvl := make([]int32, g)
			ts.LoadI32Grouped(levels, ts.Task, lvl)
			ts.Mask(func(gi int) bool { return lvl[gi] == cur }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				expand := func() {
					bfsExpand(ts, dg, levels, changed, start, end, cur)
				}
				if q != nil {
					heavy := func(gi int) bool { return end[gi]-start[gi] > opts.DeferThreshold }
					ts.Defer(q, heavy)
					ts.Mask(func(gi int) bool { return !heavy(gi) }, expand)
				} else {
					expand()
				}
			})
		}
		switch {
		case counter != nil:
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, body)
		case opts.Blocked:
			vwarp.ForEachStaticBlocked(w, opts.K, int32(dg.NumVertices), body)
		default:
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), body)
		}
	}
}

// bfsDeferredKernel processes outlier vertices with one full physical warp
// per vertex, the paper's maximum-parallelism follow-up pass.
func bfsDeferredKernel(dg *DeviceGraph, levels, changed *simt.BufI32, q *vwarp.OutlierQueue, numDeferred, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachDeferred(w, w.Width(), q, numDeferred, func(ts *vwarp.Tasks) {
			g := ts.Groups
			start := make([]int32, g)
			end := make([]int32, g)
			taskP1 := make([]int32, g)
			ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
			ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
			ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
			bfsExpand(ts, dg, levels, changed, start, end, cur)
		})
	}
}

// bfsExpand is the SIMD phase shared by the main and deferred kernels: the
// group's lanes stride the adjacency list, discovering unvisited neighbors.
func bfsExpand(ts *vwarp.Tasks, dg *DeviceGraph, levels, changed *simt.BufI32, start, end []int32, cur int32) {
	w := ts.W
	next := w.ConstI32(cur + 1)
	zero := w.ConstI32(0)
	one := w.ConstI32(1)
	nbr := w.VecI32()
	nl := w.VecI32()
	ts.SIMDRange(start, end, func(j []int32) {
		w.LoadI32(dg.Col, j, nbr)
		w.LoadI32(levels, nbr, nl)
		w.If(func(lane int) bool { return nl[lane] == Unvisited }, func() {
			w.StoreI32(levels, nbr, next)
			w.StoreI32(changed, zero, one)
		}, nil)
	})
}
