package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// Unvisited marks undiscovered vertices in the device levels array.
const Unvisited = int32(-1)

// BFSResult is the output of a device BFS run.
type BFSResult struct {
	Result
	// Levels holds each vertex's hop distance from the source (Unvisited if
	// unreached).
	Levels []int32
	// Depth is the deepest level assigned.
	Depth int32
	// Deferred counts vertices routed through the outlier queue across all
	// levels (0 unless Options.DeferThreshold > 0).
	Deferred int
}

// BFSRun is an open-loop level-synchronous BFS: NewBFSRun allocates the
// device state, each Step expands one frontier level, and Result collects
// the output once Step reports done. Host-side progress (the current level)
// advances only when a step fully succeeds, so a supervisor can restore
// State after a failed step and call Step again to retry the same level.
type BFSRun struct {
	// Launch supervises every kernel launch of the run (deadline, progress
	// callback). Zero value means unsupervised.
	Launch simt.LaunchOpts

	d       *simt.Device
	dg      *DeviceGraph
	opts    Options
	levels  *simt.BufI32
	changed *simt.BufI32
	counter *simt.BufI32
	q       *vwarp.OutlierQueue
	lc      simt.LaunchConfig
	maxIter int
	cur     int32
	res     *BFSResult
	done    bool
}

// NewBFSRun validates the inputs and allocates device state for a BFS from
// src, without launching anything yet.
func NewBFSRun(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*BFSRun, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: BFS source %d out of range [0,%d)", src, dg.NumVertices)
	}
	n := dg.NumVertices
	r := &BFSRun{d: d, dg: dg, opts: opts, res: &BFSResult{}}
	r.levels = d.AllocI32("bfs.levels", n)
	r.levels.Fill(Unvisited)
	r.levels.Data()[src] = 0
	r.changed = d.AllocI32("bfs.changed", 1)
	if opts.Dynamic {
		r.counter = d.AllocI32("bfs.counter", 1)
	}
	if opts.DeferThreshold > 0 {
		r.q = vwarp.NewOutlierQueue(d, "bfs.outliers", n)
	}
	r.res.Stats.WarpWidth = d.Config().WarpWidth
	r.maxIter = opts.MaxIterations
	if r.maxIter == 0 {
		r.maxIter = n + 1
	}
	r.lc = opts.grid(d, n)
	return r, nil
}

// Step expands the current frontier level (one kernel launch, plus one for
// deferred outliers when enabled). It returns done=true when the frontier is
// exhausted or the iteration cap is hit. On error no host state advances:
// the same level can be retried after restoring State.
func (r *BFSRun) Step() (bool, error) {
	if r.done {
		return true, nil
	}
	r.changed.Data()[0] = 0
	if r.counter != nil {
		r.counter.Data()[0] = 0
	}
	if r.q != nil {
		r.q.Reset()
	}
	kernel := bfsLevelKernel(r.dg, r.levels, r.changed, r.counter, r.q, r.cur, r.opts)
	stats, err := r.d.LaunchWith(r.lc, r.Launch, kernel)
	if err != nil {
		return false, fmt.Errorf("gpualgo: BFS level %d: %w", r.cur, err)
	}
	deferred := 0
	launches := 1
	if r.q != nil && r.q.Len() > 0 {
		deferred = r.q.Len()
		dk := bfsDeferredKernel(r.dg, r.levels, r.changed, r.q, int32(deferred), r.cur, r.opts)
		dlc := r.opts.grid(r.d, deferred*r.d.Config().WarpWidth/r.opts.K)
		dstats, err := r.d.LaunchWith(dlc, r.Launch, dk)
		if err != nil {
			return false, fmt.Errorf("gpualgo: BFS deferred pass level %d: %w", r.cur, err)
		}
		stats.Add(dstats)
		launches++
	}
	r.res.Stats.Add(stats)
	r.res.Launches += launches
	r.res.Deferred += deferred
	r.res.Iterations++
	r.cur++
	if r.changed.Data()[0] == 0 || int(r.cur) >= r.maxIter {
		r.done = true
	}
	return r.done, nil
}

// State returns the device buffers a supervisor must snapshot to make Step
// retryable (BFS state plus the uploaded graph).
func (r *BFSRun) State() RunState {
	st := RunState{I32: []*simt.BufI32{r.levels, r.changed}}
	if r.counter != nil {
		st.I32 = append(st.I32, r.counter)
	}
	if r.q != nil {
		st.I32 = append(st.I32, r.q.Items, r.q.Count)
	}
	graphState(&st, r.dg)
	return st
}

// Iterations returns the number of completed levels.
func (r *BFSRun) Iterations() int { return r.res.Iterations }

// Result finalizes and returns the run's output. Call it after Step reports
// done (calling earlier returns the levels discovered so far).
func (r *BFSRun) Result() *BFSResult {
	r.res.Levels = append([]int32(nil), r.levels.Data()...)
	r.res.Depth = 0
	for _, l := range r.res.Levels {
		if l > r.res.Depth {
			r.res.Depth = l
		}
	}
	return r.res
}

// BFS runs level-synchronous breadth-first search on the device, one kernel
// launch per level (plus one per level for deferred outliers when enabled),
// exactly mirroring the paper's implementation structure: a levels array, a
// global "changed" flag, and re-launch until fixpoint.
func BFS(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts Options) (*BFSResult, error) {
	r, err := NewBFSRun(d, dg, src, opts)
	if err != nil {
		return nil, err
	}
	for {
		done, err := r.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return r.Result(), nil
		}
	}
}

// bfsScratchKey is the bfsScratch cache slot on a WarpCtx's KernelScratch.
const bfsScratchKey = "gpualgo.bfs"

// bfsScratch holds the per-warp working vectors and closures of the BFS
// kernels. It is cached on the warp context (KernelScratch) and survives
// kernel invocations and launches, so on the level-synchronous relaunch path
// the kernels allocate nothing in steady state: bind rewrites the launch
// parameters each invocation, and every closure reads them through the
// struct.
type bfsScratch struct {
	w *simt.WarpCtx

	// Per-invocation parameters, rewritten by bind.
	dg                *DeviceGraph
	levels, changed   *simt.BufI32
	q                 *vwarp.OutlierQueue
	cur               int32
	deferThreshold    int32
	cFrontier, cEdges *obs.Counter

	ts *vwarp.Tasks // current round's task view (set by body)

	// Per-group vectors, sized for the widest possible grouping (K=1).
	lvl, start, end, taskP1 []int32
	// Per-lane vectors.
	next, nbr, nl []int32
	zero, one     []int32

	body, deferredBody func(ts *vwarp.Tasks)
	maskPred           func(gi int) bool
	maskBody           func()
	sisdP1             func(gi int)
	heavy, light       func(gi int) bool
	expand             func()
	simdBody           func(j []int32)
	unvisited          func(lane int) bool
	discover           func()
}

// bfsScratchFor returns the context's cached scratch, building it on first
// use of this warp context by a BFS kernel.
func bfsScratchFor(w *simt.WarpCtx) *bfsScratch {
	if s, ok := w.KernelScratch(bfsScratchKey).(*bfsScratch); ok {
		return s
	}
	width := w.Width()
	s := &bfsScratch{
		w:      w,
		lvl:    make([]int32, width),
		start:  make([]int32, width),
		end:    make([]int32, width),
		taskP1: make([]int32, width),
		next:   make([]int32, width),
		nbr:    make([]int32, width),
		nl:     make([]int32, width),
		zero:   make([]int32, width),
		one:    make([]int32, width),
	}
	for i := range s.one {
		s.one[i] = 1
	}
	s.maskPred = func(gi int) bool { return s.lvl[gi] == s.cur }
	s.sisdP1 = func(gi int) { s.taskP1[gi] = s.ts.Task[gi] + 1 }
	s.heavy = func(gi int) bool { return s.end[gi]-s.start[gi] > s.deferThreshold }
	s.light = func(gi int) bool { return !s.heavy(gi) }
	s.unvisited = func(lane int) bool { return s.nl[lane] == Unvisited }
	s.discover = func() {
		s.w.StoreI32(s.levels, s.nbr, s.next)
		s.w.StoreI32(s.changed, s.zero, s.one)
	}
	s.simdBody = func(j []int32) {
		s.w.LoadI32(s.dg.Col, j, s.nbr)
		s.w.LoadI32(s.levels, s.nbr, s.nl)
		s.w.If(s.unvisited, s.discover, nil)
	}
	s.expand = func() { s.ts.SIMDRange(s.start, s.end, s.simdBody) }
	s.maskBody = func() {
		ts := s.ts
		ts.LoadI32Grouped(s.dg.RowPtr, ts.Task, s.start)
		ts.SISD(1, s.sisdP1)
		ts.LoadI32Grouped(s.dg.RowPtr, s.taskP1, s.end)
		if s.cEdges != nil {
			// Heavy vertices are deferred below; their edges are counted by
			// the deferred pass.
			var eg int64
			for gi := 0; gi < ts.Groups; gi++ {
				if ts.Valid(gi) && s.lvl[gi] == s.cur &&
					(s.q == nil || s.end[gi]-s.start[gi] <= s.deferThreshold) {
					eg += int64(s.end[gi] - s.start[gi])
				}
			}
			if eg > 0 {
				s.cEdges.Add(s.w.SMID(), eg)
			}
		}
		if s.q != nil {
			ts.Defer(s.q, s.heavy)
			ts.Mask(s.light, s.expand)
		} else {
			s.expand()
		}
	}
	s.body = func(ts *vwarp.Tasks) {
		s.ts = ts
		ts.LoadI32Grouped(s.levels, ts.Task, s.lvl)
		if s.cFrontier != nil {
			var fr int64
			for gi := 0; gi < ts.Groups; gi++ {
				if ts.Valid(gi) && s.lvl[gi] == s.cur {
					fr++
				}
			}
			if fr > 0 {
				s.cFrontier.Add(s.w.SMID(), fr)
			}
		}
		ts.Mask(s.maskPred, s.maskBody)
	}
	s.deferredBody = func(ts *vwarp.Tasks) {
		s.ts = ts
		ts.LoadI32Grouped(s.dg.RowPtr, ts.Task, s.start)
		ts.SISD(1, s.sisdP1)
		ts.LoadI32Grouped(s.dg.RowPtr, s.taskP1, s.end)
		if s.cEdges != nil {
			var eg int64
			for gi := 0; gi < ts.Groups; gi++ {
				if ts.Valid(gi) {
					eg += int64(s.end[gi] - s.start[gi])
				}
			}
			if eg > 0 {
				s.cEdges.Add(s.w.SMID(), eg)
			}
		}
		s.expand()
	}
	w.SetKernelScratch(bfsScratchKey, s)
	return s
}

// bind rewrites the scratch's launch parameters for one kernel invocation.
func (s *bfsScratch) bind(dg *DeviceGraph, levels, changed *simt.BufI32, q *vwarp.OutlierQueue, cur, deferThreshold int32, cFrontier, cEdges *obs.Counter) {
	s.dg, s.levels, s.changed, s.q = dg, levels, changed, q
	s.cur, s.deferThreshold = cur, deferThreshold
	s.cFrontier, s.cEdges = cFrontier, cEdges
	for i := range s.next {
		s.next[i] = cur + 1
	}
}

// bfsLevelKernel expands the frontier at level cur. Discovery writes are
// plain stores (a benign race, as in the paper: any winner writes the same
// level value).
func bfsLevelKernel(dg *DeviceGraph, levels, changed, counter *simt.BufI32, q *vwarp.OutlierQueue, cur int32, opts Options) simt.Kernel {
	var cFrontier, cEdges *obs.Counter
	if m := opts.Metrics; m != nil {
		cFrontier = m.Counter(MetricBFSFrontier, "BFS frontier vertices expanded.")
		cEdges = m.Counter(MetricBFSEdges, "BFS adjacency entries scanned.")
	}
	return func(w *simt.WarpCtx) {
		s := bfsScratchFor(w)
		s.bind(dg, levels, changed, q, cur, opts.DeferThreshold, cFrontier, cEdges)
		switch {
		case counter != nil:
			vwarp.ForEachDynamic(w, opts.K, int32(dg.NumVertices), counter, opts.Chunk, s.body)
		case opts.Blocked:
			vwarp.ForEachStaticBlocked(w, opts.K, int32(dg.NumVertices), s.body)
		default:
			vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), s.body)
		}
	}
}

// bfsDeferredKernel processes outlier vertices with one full physical warp
// per vertex, the paper's maximum-parallelism follow-up pass.
func bfsDeferredKernel(dg *DeviceGraph, levels, changed *simt.BufI32, q *vwarp.OutlierQueue, numDeferred, cur int32, opts Options) simt.Kernel {
	var cEdges *obs.Counter
	if m := opts.Metrics; m != nil {
		cEdges = m.Counter(MetricBFSEdges, "BFS adjacency entries scanned.")
	}
	return func(w *simt.WarpCtx) {
		s := bfsScratchFor(w)
		s.bind(dg, levels, changed, nil, cur, 0, nil, cEdges)
		vwarp.ForEachDeferred(w, w.Width(), q, numDeferred, s.deferredBody)
	}
}
