package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// MaxMSBFSSources bounds one multi-source BFS batch: one bit per source in
// an int32 word (the sign bit stays clear).
const MaxMSBFSSources = 31

// MSBFSResult is the output of a multi-source BFS batch.
type MSBFSResult struct {
	Result
	// Levels[s][v] is the hop distance from sources[s] to v (Unvisited if
	// unreached).
	Levels [][]int32
}

// MSBFS runs up to 31 breadth-first searches simultaneously with
// bit-parallel frontiers (the MS-BFS technique from this research group's
// follow-up work): visited and frontier sets are per-vertex bitmasks, so one
// adjacency-list scan advances every search at once — the sharing that makes
// batched BFS (e.g. for betweenness or closeness sampling) far cheaper than
// independent runs. Kernels use the virtual warp-centric mapping throughout.
func MSBFS(d *simt.Device, dg *DeviceGraph, sources []graph.VertexID, opts Options) (*MSBFSResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return &MSBFSResult{}, nil
	}
	if len(sources) > MaxMSBFSSources {
		return nil, fmt.Errorf("gpualgo: %d sources exceed the %d-bit batch limit", len(sources), MaxMSBFSSources)
	}
	n := dg.NumVertices
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("gpualgo: MS-BFS source %d out of range [0,%d)", s, n)
		}
	}
	visited := d.AllocI32("msbfs.visited", n)   // all bits seen so far
	frontier := d.AllocI32("msbfs.frontier", n) // bits active this level
	next := d.AllocI32("msbfs.next", n)         // bits discovered this level
	// The update kernel reads every next cell, including ones no lane ORed
	// this level — zero them explicitly (cudaMemset, not cudaMalloc luck).
	next.Fill(0)
	levelOf := d.AllocI32("msbfs.levels", n*len(sources))
	levelOf.Fill(Unvisited)
	for s, src := range sources {
		frontier.Data()[src] |= 1 << uint(s)
		visited.Data()[src] |= 1 << uint(s)
		levelOf.Data()[s*n+int(src)] = 0
	}
	changed := d.AllocI32("msbfs.changed", 1)

	res := &MSBFSResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = n + 1
	}
	lc := opts.grid(d, n)
	for cur := int32(0); int(cur) < maxIter; cur++ {
		changed.Data()[0] = 0
		stats, err := d.Launch(lc, msbfsExpandKernel(dg, frontier, visited, next, changed, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: MS-BFS expand level %d: %w", cur, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		if changed.Data()[0] == 0 {
			break
		}
		stats, err = d.Launch(lc, msbfsCommitKernel(n, len(sources), frontier, visited, next, levelOf, cur+1, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: MS-BFS commit level %d: %w", cur, err)
		}
		res.Stats.Add(stats)
		res.Launches++
	}
	res.Levels = make([][]int32, len(sources))
	for s := range sources {
		res.Levels[s] = append([]int32(nil), levelOf.Data()[s*n:(s+1)*n]...)
	}
	return res, nil
}

// msbfsExpandKernel pushes each frontier vertex's bitmask to its neighbors:
// next[nbr] |= frontier[v] &^ visited[nbr].
func msbfsExpandKernel(dg *DeviceGraph, frontier, visited, next, changed *simt.BufI32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			fbits := make([]int32, g)
			ts.LoadI32Grouped(frontier, ts.Task, fbits)
			ts.Mask(func(gi int) bool { return fbits[gi] != 0 }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				nvis := w.VecI32()
				push := w.VecI32()
				old := w.VecI32()
				zero := w.ConstI32(0)
				one := w.ConstI32(1)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(visited, nbr, nvis)
					w.Apply(1, func(lane int) {
						push[lane] = fbits[ts.Group(lane)] &^ nvis[lane]
					})
					w.If(func(lane int) bool { return push[lane] != 0 }, func() {
						w.AtomicOrI32(next, nbr, push, old)
						w.If(func(lane int) bool { return push[lane]&^old[lane] != 0 }, func() {
							w.StoreI32(changed, zero, one)
						}, nil)
					}, nil)
				})
			})
		})
	}
}

// msbfsCommitKernel folds the discovered bits into visited, records levels
// for the newly set bits, and swaps next into frontier (clearing next) —
// all in one elementwise pass over vertices.
func msbfsCommitKernel(n, numSources int, frontier, visited, next, levelOf *simt.BufI32, level int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			nx := w.VecI32()
			vis := w.VecI32()
			w.LoadI32(next, idx, nx)
			w.LoadI32(visited, idx, vis)
			fresh := w.VecI32()
			w.AndNotI32(fresh, nx, vis)
			w.If(func(lane int) bool { return fresh[lane] != 0 }, func() {
				w.OrI32(vis, vis, fresh)
				w.StoreI32(visited, idx, vis)
				// Record the level for each newly reached source bit. The
				// bit loop is uniform (numSources is a launch constant), so
				// this is a short unrolled scalar sequence per vertex.
				lvlIdx := w.VecI32()
				lvl := w.ConstI32(level)
				for s := 0; s < numSources; s++ {
					bit := int32(1) << uint(s)
					w.If(func(lane int) bool { return fresh[lane]&bit != 0 }, func() {
						w.Apply(1, func(lane int) { lvlIdx[lane] = int32(s)*int32(n) + idx[lane] })
						w.StoreI32(levelOf, lvlIdx, lvl)
					}, nil)
				}
			}, nil)
			w.StoreI32(frontier, idx, fresh)
			zero := w.ConstI32(0)
			w.StoreI32(next, idx, zero)
			w.AddConstI32(idx, stride)
		})
	}
}

// MSBFSCPU is the host oracle: independent sequential BFS per source.
func MSBFSCPU(g *graph.CSR, sources []graph.VertexID) [][]int32 {
	out := make([][]int32, len(sources))
	for s, src := range sources {
		out[s] = bfsLevelsCPU(g, src)
	}
	return out
}

func bfsLevelsCPU(g *graph.CSR, src graph.VertexID) []int32 {
	n := g.NumVertices()
	levels := make([]int32, n)
	for i := range levels {
		levels[i] = Unvisited
	}
	levels[src] = 0
	queue := []graph.VertexID{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(v) {
			if levels[u] == Unvisited {
				levels[u] = levels[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return levels
}
