package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
)

// DeviceDeltaGraph is a graph.Delta resident in simulated device memory: the
// frozen base CSR plus a 0/1 deletion mask aligned with its edge array and
// the packed extension adjacency. Kernels iterate live neighbors as (base
// minus masked edges) followed by the extension list — the overlay-aware
// traversal incremental algorithms run on, without re-uploading the base per
// batch.
//
// The same struct describes either direction: UploadDelta packs the forward
// (out-neighbor) view, UploadDeltaReverse the reverse (in-neighbor) view
// with the deletion marks and weights permuted into reverse edge order, so
// push- and pull-style kernels share one traversal shape.
type DeviceDeltaGraph struct {
	// Base holds the frozen CSR (RowPtr/Col and, for weighted deltas,
	// Weights).
	Base *DeviceGraph
	// Del is the deletion mask aligned with Base.Col: 1 marks a dead edge.
	Del *simt.BufI32
	// ExtRowPtr/ExtCol are the packed extension adjacency (inserted edges).
	ExtRowPtr *simt.BufI32
	ExtCol    *simt.BufI32
	// ExtWeights aligns with ExtCol (nil for unweighted deltas).
	ExtWeights *simt.BufI32

	NumVertices int
	// LiveEdges is the live edge count at upload time.
	LiveEdges int
	// Epoch is the delta's batch counter at upload time; stale uploads are
	// detectable by comparing against Delta.Epoch().
	Epoch int64
}

// uploadDeltaView packs one direction of dl into device memory.
func uploadDeltaView(d *simt.Device, dl *graph.Delta, base *graph.CSR, baseW []int32, del []int32, ext *graph.CSR, extW []int32, prefix string) *DeviceDeltaGraph {
	dg := &DeviceGraph{
		RowPtr:      d.UploadI32(prefix+".rowptr", base.RowPtr),
		Col:         d.UploadI32(prefix+".col", base.Col),
		NumVertices: base.NumVertices(),
		NumEdges:    base.NumEdges(),
	}
	if baseW != nil {
		dg.Weights = d.UploadI32(prefix+".weights", baseW)
	}
	ddg := &DeviceDeltaGraph{
		Base:        dg,
		Del:         d.UploadI32(prefix+".del", del),
		ExtRowPtr:   d.UploadI32(prefix+".ext.rowptr", ext.RowPtr),
		ExtCol:      d.UploadI32(prefix+".ext.col", ext.Col),
		NumVertices: dl.NumVertices(),
		LiveEdges:   dl.NumEdges(),
		Epoch:       dl.Epoch(),
	}
	if extW != nil && dl.Weighted() {
		ddg.ExtWeights = d.UploadI32(prefix+".ext.weights", extW)
	}
	return ddg
}

// UploadDelta copies the forward (out-neighbor) view of dl into device
// memory. The host-side overlay stays authoritative; re-upload after further
// Apply calls (the Epoch field records which batch the upload reflects).
func UploadDelta(d *simt.Device, dl *graph.Delta) (*DeviceDeltaGraph, error) {
	if err := dl.Validate(); err != nil {
		return nil, err
	}
	del := make([]int32, dl.Base().NumEdges())
	for i, m := range dl.DelMarks() {
		if m {
			del[i] = 1
		}
	}
	ext, extW := dl.ExtCSR()
	return uploadDeltaView(d, dl, dl.Base(), dl.BaseWeights(), del, ext, extW, "delta"), nil
}

// UploadDeltaReverse copies the reverse (in-neighbor) view of dl into device
// memory for pull-style kernels: the transpose of the base with the shared
// deletion marks and weights permuted into reverse edge order, plus the
// reverse extension adjacency.
func UploadDeltaReverse(d *simt.Device, dl *graph.Delta) (*DeviceDeltaGraph, error) {
	if err := dl.Validate(); err != nil {
		return nil, err
	}
	rev := dl.ReverseBase()
	r2f := dl.ReverseToForward()
	marks := dl.DelMarks()
	del := make([]int32, rev.NumEdges())
	var revW []int32
	if dl.Weighted() {
		revW = make([]int32, rev.NumEdges())
	}
	for p := range del {
		fp := r2f[p]
		if marks[fp] {
			del[p] = 1
		}
		if revW != nil {
			revW[p] = dl.BaseWeights()[fp]
		}
	}
	ext, extW := dl.ReverseExtCSR()
	return uploadDeltaView(d, dl, rev, revW, del, ext, extW, "rdelta"), nil
}

// checkDeltaEpoch guards incremental entry points against running on a stale
// upload.
func checkDeltaEpoch(ddg *DeviceDeltaGraph, dl *graph.Delta) error {
	if ddg.Epoch != dl.Epoch() {
		return fmt.Errorf("gpualgo: device delta at epoch %d, host delta at %d (re-upload required)", ddg.Epoch, dl.Epoch())
	}
	return nil
}
