package gpualgo

import (
	"math"
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/xrand"
)

func spmvInputs(g *graph.CSR, seed uint64) (vals, x []float32) {
	r := xrand.New(seed)
	vals = make([]float32, g.NumEdges())
	for i := range vals {
		vals[i] = float32(r.Float64()*2 - 1)
	}
	x = make([]float32, g.NumVertices())
	for i := range x {
		x[i] = float32(r.Float64())
	}
	return vals, x
}

func TestSpMVMatchesCPU(t *testing.T) {
	for name, g := range testGraphs(t) {
		vals, x := spmvInputs(g, 5)
		want := SpMVCPU(g, vals, x)
		for _, opts := range []Options{{K: 1}, {K: 4}, {K: 32}, {K: 8, Dynamic: true}} {
			d := testDevice(t)
			dg := Upload(d, g)
			res, err := SpMV(d, dg, vals, x, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			for v := range want {
				diff := math.Abs(float64(res.Y[v] - want[v]))
				scale := math.Abs(float64(want[v])) + 1
				if diff > 1e-4*scale {
					t.Fatalf("%s %+v: y[%d] = %g, oracle %g", name, opts, v, res.Y[v], want[v])
				}
			}
		}
	}
}

func TestSpMVValidation(t *testing.T) {
	g, err := gengraph.UniformRandom(16, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	vals, x := spmvInputs(g, 1)
	if _, err := SpMV(d, dg, vals[:3], x, Options{K: 1}); err == nil {
		t.Error("short vals accepted")
	}
	if _, err := SpMV(d, dg, vals, x[:3], Options{K: 1}); err == nil {
		t.Error("short x accepted")
	}
	if _, err := SpMV(d, dg, vals, x, Options{K: 5}); err == nil {
		t.Error("bad K accepted")
	}
}

func TestSpMVVectorBeatsScalarOnSkewedMatrix(t *testing.T) {
	// Bell & Garland's observation, which the paper generalizes: vector CSR
	// (warp per row) beats scalar CSR (thread per row) when row lengths vary.
	g, err := gengraph.RMAT(10, 16, gengraph.DefaultRMAT, 3)
	if err != nil {
		t.Fatal(err)
	}
	vals, x := spmvInputs(g, 2)
	run := func(k int) int64 {
		d := testDevice(t)
		dg := Upload(d, g)
		res, err := SpMV(d, dg, vals, x, Options{K: k})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.Cycles
	}
	scalar := run(1)
	vector := run(32)
	if vector*2 >= scalar {
		t.Fatalf("vector CSR (%d cycles) should clearly beat scalar (%d) on a skewed matrix", vector, scalar)
	}
}

func TestBFSFrontierMatchesCPU(t *testing.T) {
	for name, g := range testGraphs(t) {
		src := graph.LargestOutComponentSeed(g)
		want := cpualgo.BFSSequential(g, src)
		for _, opts := range []Options{{K: 1}, {K: 4}, {K: 32}} {
			d := testDevice(t)
			dg := Upload(d, g)
			res, err := BFSFrontier(d, dg, src, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(res.Levels, want) {
				t.Fatalf("%s %+v: frontier BFS differs from CPU oracle", name, opts)
			}
		}
	}
}

func TestBFSFrontierAgreesWithQuadratic(t *testing.T) {
	g, err := gengraph.RMAT(9, 8, gengraph.DefaultRMAT, 13)
	if err != nil {
		t.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)
	d := testDevice(t)
	dg := Upload(d, g)
	quad, err := BFS(d, dg, src, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	d2 := testDevice(t)
	dg2 := Upload(d2, g)
	front, err := BFSFrontier(d2, dg2, src, Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(quad.Levels, front.Levels) {
		t.Fatal("frontier and quadratic BFS disagree")
	}
	if front.Depth != quad.Depth {
		t.Fatalf("depths differ: %d vs %d", front.Depth, quad.Depth)
	}
}

func TestBFSFrontierWinsOnHighDiameterGraph(t *testing.T) {
	// On a mesh the quadratic formulation rescans all |V| vertices for each
	// of the ~O(sqrt(V)) levels; the frontier version only touches the
	// (small) frontier. This is the trade-off the paper discusses.
	g, err := gengraph.Mesh2D(24, 24)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	quad, err := BFS(d, dg, 0, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	d2 := testDevice(t)
	dg2 := Upload(d2, g)
	front, err := BFSFrontier(d2, dg2, 0, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if front.Stats.Cycles >= quad.Stats.Cycles {
		t.Fatalf("frontier BFS (%d cycles) should beat quadratic (%d) on a high-diameter mesh",
			front.Stats.Cycles, quad.Stats.Cycles)
	}
}

func TestBFSFrontierSourceValidation(t *testing.T) {
	g, err := gengraph.UniformRandom(16, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	if _, err := BFSFrontier(d, dg, -1, Options{K: 1}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := BFSFrontier(d, dg, 16, Options{K: 1}); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestBFSFrontierIsolatedSource(t *testing.T) {
	g, err := graph.FromEdges(4, []graph.Edge{{Src: 1, Dst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := BFSFrontier(d, dg, 0, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int32{0, Unvisited, Unvisited, Unvisited}
	if !reflect.DeepEqual(res.Levels, want) {
		t.Fatalf("levels = %v", res.Levels)
	}
}
