package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/graph"
)

func TestMISCPUProperties(t *testing.T) {
	g := undirected(t, mustUniformSimple(t, 200, 1200, 3))
	inSet, size := MISCPU(g, 42)
	if size == 0 {
		t.Fatal("empty MIS on non-empty graph")
	}
	checkMIS(t, g, inSet)
}

// checkMIS verifies independence and maximality.
func checkMIS(t *testing.T, g *graph.CSR, inSet []bool) {
	t.Helper()
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		hasInNeighbor := false
		for _, u := range g.Neighbors(graph.VertexID(v)) {
			if inSet[u] {
				hasInNeighbor = true
				if inSet[v] {
					t.Fatalf("not independent: %d and %d both in set", v, u)
				}
			}
		}
		if !inSet[v] && !hasInNeighbor {
			t.Fatalf("not maximal: %d could join", v)
		}
	}
}

func TestMISMatchesCPU(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.CSR
	}{
		{"rmat", undirected(t, mustRMATSimple(t, 8, 6, 5))},
		{"uniform", undirected(t, mustUniformSimple(t, 250, 1000, 6))},
	} {
		want, wantSize := MISCPU(tc.g, 99)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			dg := Upload(d, tc.g)
			res, err := MIS(d, dg, 99, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", tc.name, k, err)
			}
			if res.Size != wantSize {
				t.Fatalf("%s K=%d: size %d, want %d", tc.name, k, res.Size, wantSize)
			}
			if !reflect.DeepEqual(res.InSet, want) {
				t.Fatalf("%s K=%d: membership differs from greedy oracle", tc.name, k)
			}
			checkMIS(t, tc.g, res.InSet)
		}
	}
}

func TestMISEdgeless(t *testing.T) {
	g, err := graph.FromEdges(7, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dg := Upload(d, g)
	res, err := MIS(d, dg, 1, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != 7 {
		t.Fatalf("edgeless MIS size %d, want 7 (all vertices)", res.Size)
	}
}

func TestMISDifferentSeedsDifferentSets(t *testing.T) {
	g := undirected(t, mustUniformSimple(t, 150, 900, 8))
	a, _ := MISCPU(g, 1)
	b, _ := MISCPU(g, 2)
	if reflect.DeepEqual(a, b) {
		t.Fatal("different priority seeds produced identical sets (suspicious)")
	}
}
