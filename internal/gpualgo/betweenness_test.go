package gpualgo

import (
	"math"
	"testing"

	"maxwarp/internal/graph"
)

func TestBetweennessCPUKnownValues(t *testing.T) {
	// Undirected path 0-1-2-3 (both edge directions), all sources:
	// standard BC: inner vertices 1,2 have score 4 (pairs (0,2),(0,3),(2,0),
	// (3,0) pass through 1, etc.), endpoints 0.
	edges := []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 0},
		{Src: 1, Dst: 2}, {Src: 2, Dst: 1},
		{Src: 2, Dst: 3}, {Src: 3, Dst: 2},
	}
	g, err := graph.FromEdges(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	all := []graph.VertexID{0, 1, 2, 3}
	bc := BetweennessCentralityCPU(g, all)
	want := []float64{0, 4, 4, 0}
	for v := range want {
		if math.Abs(bc[v]-want[v]) > 1e-9 {
			t.Fatalf("bc[%d] = %f, want %f (all: %v)", v, bc[v], want[v], bc)
		}
	}
	// Star: center 4 connected to 0..3. Center carries all pairs:
	// 4*3 = 12 ordered pairs through the center.
	var star []graph.Edge
	for i := int32(0); i < 4; i++ {
		star = append(star, graph.Edge{Src: 4, Dst: i}, graph.Edge{Src: i, Dst: 4})
	}
	sg, err := graph.FromEdges(5, star)
	if err != nil {
		t.Fatal(err)
	}
	sbc := BetweennessCentralityCPU(sg, []graph.VertexID{0, 1, 2, 3, 4})
	if math.Abs(sbc[4]-12) > 1e-9 {
		t.Fatalf("star center bc = %f, want 12", sbc[4])
	}
	for v := 0; v < 4; v++ {
		if sbc[v] != 0 {
			t.Fatalf("star leaf %d bc = %f, want 0", v, sbc[v])
		}
	}
}

func TestBetweennessMatchesCPU(t *testing.T) {
	for name, g := range map[string]*graph.CSR{
		"rmat":    mustRMATSimple(t, 7, 6, 3),
		"uniform": mustUniformSimple(t, 150, 900, 4),
		"mesh":    undirected(t, mustUniformSimple(t, 1, 0, 1)), // replaced below
	} {
		if name == "mesh" {
			var err error
			g, err = meshGraph(8, 8)
			if err != nil {
				t.Fatal(err)
			}
		}
		sources := []graph.VertexID{0, graph.VertexID(g.NumVertices() / 2), graph.VertexID(g.NumVertices() - 1)}
		want := BetweennessCentralityCPU(g, sources)
		for _, k := range []int{1, 8, 32} {
			d := testDevice(t)
			res, err := BetweennessCentrality(d, g, sources, Options{K: k})
			if err != nil {
				t.Fatalf("%s K=%d: %v", name, k, err)
			}
			for v := range want {
				got := float64(res.Scores[v])
				tol := 1e-2*math.Abs(want[v]) + 1e-3
				if math.Abs(got-want[v]) > tol {
					t.Fatalf("%s K=%d: bc[%d] = %g, oracle %g", name, k, v, got, want[v])
				}
			}
			if res.Iterations != len(sources) {
				t.Fatalf("%s K=%d: iterations %d, want %d", name, k, res.Iterations, len(sources))
			}
		}
	}
}

func meshGraph(rows, cols int) (*graph.CSR, error) {
	var edges []graph.Edge
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if r+1 < rows {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r+1, c)}, graph.Edge{Src: id(r+1, c), Dst: id(r, c)})
			}
			if c+1 < cols {
				edges = append(edges, graph.Edge{Src: id(r, c), Dst: id(r, c+1)}, graph.Edge{Src: id(r, c+1), Dst: id(r, c)})
			}
		}
	}
	return graph.FromEdges(rows*cols, edges)
}

func TestBetweennessValidation(t *testing.T) {
	g := mustUniformSimple(t, 20, 60, 1)
	d := testDevice(t)
	if _, err := BetweennessCentrality(d, g, []graph.VertexID{-1}, Options{K: 1}); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := BetweennessCentrality(d, g, []graph.VertexID{99}, Options{K: 1}); err == nil {
		t.Error("out-of-range source accepted")
	}
	// Empty sources: zero scores, no work.
	res, err := BetweennessCentrality(d, g, nil, Options{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scores {
		if s != 0 {
			t.Fatal("nonzero score with no sources")
		}
	}
}
