package gpualgo

import (
	"math/rand"
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
)

// Metamorphic extensions for the dynamic-graph layer: mutation streams with
// known-identity effects (insert-then-delete), compaction transparency
// (Rebase must not change any incremental result), and relabel invariance
// of repaired results — extending the PR-3 suite to the overlay.

// freshEdges picks count edges absent from dl (and non-self-loop), as
// insert mutations.
func freshEdges(rng *rand.Rand, dl *graph.Delta, count int) []graph.EdgeMutation {
	n := dl.NumVertices()
	var muts []graph.EdgeMutation
	for len(muts) < count {
		u := graph.VertexID(rng.Intn(n))
		v := graph.VertexID(rng.Intn(n))
		if u == v || dl.HasEdge(u, v) {
			continue
		}
		muts = append(muts, graph.EdgeMutation{Src: u, Dst: v, Weight: int32(rng.Intn(9) + 1)})
	}
	return muts
}

// TestMetamorphicInsertThenDeleteIdentity applies a batch of fresh inserts
// and then deletes the same edges: the logical graph must round-trip exactly
// (Compact bit-identical to the untouched base), the epoch must still
// advance by two, and an incremental BFS chained through both batches must
// land back on the original levels.
func TestMetamorphicInsertThenDeleteIdentity(t *testing.T) {
	for _, gr := range diffGraphs(t) {
		gr := gr
		t.Run(gr.name, func(t *testing.T) {
			t.Parallel()
			src := graph.LargestOutComponentSeed(gr.g)
			dl, err := graph.NewDelta(gr.g, nil)
			if err != nil {
				t.Fatal(err)
			}
			base, _, err := dl.Compact()
			if err != nil {
				t.Fatal(err)
			}
			prev := cpualgo.BFSSequential(gr.g, src)
			rng := rand.New(rand.NewSource(5))
			inserts := freshEdges(rng, dl, 12)
			deletes := make([]graph.EdgeMutation, len(inserts))
			for i, m := range inserts {
				deletes[i] = graph.EdgeMutation{Src: m.Src, Dst: m.Dst, Del: true}
			}
			d := parallelDevice(t, 0)

			applied1, _, err := dl.Apply(inserts)
			if err != nil {
				t.Fatal(err)
			}
			mid, _, err := IncrementalBFS(d, dl, nil, src, prev, applied1, Options{K: 8})
			if err != nil {
				t.Fatal(err)
			}
			applied2, _, err := dl.Apply(deletes)
			if err != nil {
				t.Fatal(err)
			}
			back, _, err := IncrementalBFS(d, dl, nil, src, mid.Levels, applied2, Options{K: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(back.Levels, prev) {
				t.Errorf("insert-then-delete did not restore the original BFS levels")
			}
			if dl.Epoch() != 2 {
				t.Errorf("epoch = %d after two batches, want 2", dl.Epoch())
			}
			roundTrip, _, err := dl.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(roundTrip, base) {
				t.Errorf("insert-then-delete did not round-trip the compacted CSR")
			}
			if dl.PendingOps() != 0 {
				t.Errorf("PendingOps = %d after inverse batch, want 0", dl.PendingOps())
			}
		})
	}
}

// TestMetamorphicCompactionTransparency pins two equivalences: applying a
// batch then compacting equals compacting first (an identity Rebase) then
// applying the same batch; and Rebase between mutation and repair must not
// change the repaired result — the physical layout is invisible to the
// incremental algorithms.
func TestMetamorphicCompactionTransparency(t *testing.T) {
	for _, gr := range diffGraphs(t) {
		gr := gr
		t.Run(gr.name, func(t *testing.T) {
			t.Parallel()
			src := graph.LargestOutComponentSeed(gr.g)
			rng := rand.New(rand.NewSource(17))

			// Path A: apply then compact.
			dlA, err := graph.NewDelta(gr.g, nil)
			if err != nil {
				t.Fatal(err)
			}
			batch := randomMutationBatch(rng, dlA, 12, false)
			appliedA, _, err := dlA.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			cA, _, err := dlA.Compact()
			if err != nil {
				t.Fatal(err)
			}

			// Path B: compact first (identity Rebase), then the same batch.
			dlB, err := graph.NewDelta(gr.g, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := dlB.Rebase(); err != nil {
				t.Fatal(err)
			}
			appliedB, _, err := dlB.Apply(batch)
			if err != nil {
				t.Fatal(err)
			}
			cB, _, err := dlB.Compact()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cA, cB) {
				t.Fatalf("apply-then-compact != compact-then-apply")
			}
			if len(appliedA) != len(appliedB) {
				t.Fatalf("effective changes differ: %d vs %d", len(appliedA), len(appliedB))
			}

			// Repair on the overlay vs repair after Rebase: same result.
			prev := cpualgo.BFSSequential(gr.g, src)
			d := parallelDevice(t, 0)
			resOverlay, _, err := IncrementalBFS(d, dlA, nil, src, prev, appliedA, Options{K: 8})
			if err != nil {
				t.Fatal(err)
			}
			if err := dlA.Rebase(); err != nil {
				t.Fatal(err)
			}
			if dlA.Rebases() != 1 {
				t.Errorf("Rebases = %d, want 1", dlA.Rebases())
			}
			resRebased, _, err := IncrementalBFS(d, dlA, nil, src, prev, appliedA, Options{K: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(resOverlay.Levels, resRebased.Levels) {
				t.Errorf("Rebase changed the incremental BFS result")
			}
		})
	}
}

// relabelMutations maps a batch through an old→new vertex permutation.
func relabelMutations(batch []graph.EdgeMutation, p []graph.VertexID) []graph.EdgeMutation {
	out := make([]graph.EdgeMutation, len(batch))
	for i, m := range batch {
		out[i] = graph.EdgeMutation{Src: p[m.Src], Dst: p[m.Dst], Weight: m.Weight, Del: m.Del}
	}
	return out
}

// permuteI32 returns out with out[p[v]] = vals[v].
func permuteI32(vals []int32, p []graph.VertexID) []int32 {
	out := make([]int32, len(vals))
	for v, x := range vals {
		out[p[v]] = x
	}
	return out
}

// TestMetamorphicIncrementalRelabelInvariance relabels the graph, the
// mutation batch, and the warm-start vector through the same permutation
// and requires the repaired BFS levels and SSSP distances to be the
// permutation of the original repair; CC labels are compared through the
// induced min-id mapping (component identity is relabel-invariant even
// though the representative id is not).
func TestMetamorphicIncrementalRelabelInvariance(t *testing.T) {
	gr := diffGraphs(t)[0].g
	src := graph.LargestOutComponentSeed(gr)
	sym, err := gr.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	for permName, p := range metamorphicPerms(gr, 23) {
		p := p
		t.Run(permName, func(t *testing.T) {
			t.Parallel()
			inv := invert(p)
			d := parallelDevice(t, 0)
			opts := Options{K: 8}

			t.Run("bfs", func(t *testing.T) {
				rg, err := graph.Relabel(gr, p)
				if err != nil {
					t.Fatal(err)
				}
				dl, _ := graph.NewDelta(gr, nil)
				rdl, _ := graph.NewDelta(rg, nil)
				rng := rand.New(rand.NewSource(31))
				batch := randomMutationBatch(rng, dl, 12, false)
				applied, _, err := dl.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				rapplied, _, err := rdl.Apply(relabelMutations(batch, p))
				if err != nil {
					t.Fatal(err)
				}
				if len(applied) != len(rapplied) {
					t.Fatalf("effective changes differ under relabeling: %d vs %d", len(applied), len(rapplied))
				}
				prev := cpualgo.BFSSequential(gr, src)
				res, _, err := IncrementalBFS(d, dl, nil, src, prev, applied, opts)
				if err != nil {
					t.Fatal(err)
				}
				rres, _, err := IncrementalBFS(d, rdl, nil, p[src], permuteI32(prev, p), rapplied, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rres.Levels, permuteI32(res.Levels, p)) {
					t.Errorf("incremental BFS levels are not relabel-invariant")
				}
			})

			t.Run("sssp", func(t *testing.T) {
				rg, err := graph.Relabel(gr, p)
				if err != nil {
					t.Fatal(err)
				}
				w := endpointWeights(gr, nil)
				rw := endpointWeights(rg, inv)
				dl, err := graph.NewDelta(gr, w)
				if err != nil {
					t.Fatal(err)
				}
				rdl, err := graph.NewDelta(rg, rw)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(37))
				batch := randomMutationBatch(rng, dl, 12, false)
				// Structural weights so both labelings insert identically.
				for i := range batch {
					if !batch[i].Del {
						batch[i].Weight = endpointWeight(batch[i].Src, batch[i].Dst)
					}
				}
				applied, _, err := dl.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				rapplied, _, err := rdl.Apply(relabelMutations(batch, p))
				if err != nil {
					t.Fatal(err)
				}
				if len(applied) != len(rapplied) {
					t.Fatalf("effective changes differ under relabeling: %d vs %d", len(applied), len(rapplied))
				}
				prev := cpualgo.SSSPDijkstra(gr, w, src)
				res, _, err := IncrementalSSSP(d, dl, nil, src, prev, applied, opts)
				if err != nil {
					t.Fatal(err)
				}
				rres, _, err := IncrementalSSSP(d, rdl, nil, p[src], permuteI32(prev, p), rapplied, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(rres.Dist, permuteI32(res.Dist, p)) {
					t.Errorf("incremental SSSP distances are not relabel-invariant")
				}
			})

			t.Run("cc", func(t *testing.T) {
				rsym, err := graph.Relabel(sym, p)
				if err != nil {
					t.Fatal(err)
				}
				dl, _ := graph.NewDelta(sym, nil)
				rdl, _ := graph.NewDelta(rsym, nil)
				rng := rand.New(rand.NewSource(41))
				batch := randomMutationBatch(rng, dl, 10, true)
				applied, _, err := dl.Apply(batch)
				if err != nil {
					t.Fatal(err)
				}
				rapplied, _, err := rdl.Apply(relabelMutations(batch, p))
				if err != nil {
					t.Fatal(err)
				}
				prev := cpualgo.ConnectedComponents(sym)
				res, _, err := IncrementalCC(d, dl, nil, prev, applied, opts)
				if err != nil {
					t.Fatal(err)
				}
				rres, _, err := IncrementalCC(d, rdl, nil, permuteCCLabels(prev, p), rapplied, opts)
				if err != nil {
					t.Fatal(err)
				}
				// Component representatives are min ids, so relabeling maps
				// label l to min over p of l's members.
				if !reflect.DeepEqual(rres.Labels, permuteCCLabels(res.Labels, p)) {
					t.Errorf("incremental CC components are not relabel-invariant")
				}
			})
		})
	}
}

// permuteCCLabels maps min-id component labels through an old→new vertex
// permutation: vertex p[v] gets the minimum new id among v's old component.
func permuteCCLabels(labels []int32, p []graph.VertexID) []int32 {
	minNew := make(map[int32]int32)
	for v, l := range labels {
		nv := int32(p[v])
		if cur, ok := minNew[l]; !ok || nv < cur {
			minNew[l] = nv
		}
	}
	out := make([]int32, len(labels))
	for v, l := range labels {
		out[p[v]] = minNew[l]
	}
	return out
}

// TestMetamorphicEpochAdvance pins the epoch semantics the serve layer keys
// caches on: every Apply bumps the epoch exactly once (even an all-no-op
// batch), Rebase never does, and a failed Apply never does.
func TestMetamorphicEpochAdvance(t *testing.T) {
	g := diffGraphs(t)[0].g
	dl, err := graph.NewDelta(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := dl.Apply([]graph.EdgeMutation{{Src: 0, Dst: 0}}); err != nil {
			t.Fatal(err)
		}
		if dl.Epoch() != int64(i) {
			t.Fatalf("epoch = %d after %d no-op batches", dl.Epoch(), i)
		}
	}
	if err := dl.Rebase(); err != nil {
		t.Fatal(err)
	}
	if dl.Epoch() != 3 {
		t.Errorf("Rebase changed the epoch to %d", dl.Epoch())
	}
	if _, _, err := dl.Apply([]graph.EdgeMutation{{Src: 0, Dst: -1}}); err == nil {
		t.Fatal("out-of-range Apply succeeded")
	}
	if dl.Epoch() != 3 {
		t.Errorf("failed Apply changed the epoch to %d", dl.Epoch())
	}
}
