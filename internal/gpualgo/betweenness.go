package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// BCResult is the output of betweenness centrality.
type BCResult struct {
	Result
	// Scores holds the (possibly sampled) betweenness centrality per vertex:
	// the sum of pair-dependencies over the given sources.
	Scores []float32
}

// BetweennessCentrality runs Brandes' algorithm on the device for the given
// sources (pass all vertices for exact BC, a sample for the standard
// approximation). Per source it performs a forward level-synchronous phase
// that counts shortest paths (sigma) and a backward dependency-accumulation
// sweep over levels — both as virtual warp-centric kernels over adjacency
// lists, making BC the most kernel-intensive application in the suite.
func BetweennessCentrality(d *simt.Device, g *graph.CSR, sources []graph.VertexID, opts Options) (*BCResult, error) {
	opts = opts.withDefaults(d)
	if err := opts.validate(d); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("gpualgo: BC source %d out of range [0,%d)", s, n)
		}
	}
	dg := Upload(d, g)
	levels := d.AllocI32("bc.levels", n)
	sigma := d.AllocF32("bc.sigma", n)
	delta := d.AllocF32("bc.delta", n)
	bc := d.AllocF32("bc.scores", n)
	// The backward pass accumulates bc[v] += delta[v] from the first source
	// on — the initial zeros are load-bearing, so set them explicitly.
	bc.Fill(0)
	discovered := d.AllocI32("bc.discovered", 1)

	res := &BCResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	lc := opts.grid(d, n)
	for _, src := range sources {
		levels.Fill(Unvisited)
		sigma.Fill(0)
		delta.Fill(0)
		levels.Data()[src] = 0
		sigma.Data()[src] = 1

		// Forward: levels and path counts.
		depth := int32(0)
		for {
			discovered.Data()[0] = 0
			stats, err := d.Launch(lc, bcForwardKernel(dg, levels, sigma, discovered, depth, opts))
			if err != nil {
				return nil, fmt.Errorf("gpualgo: BC forward (src %d, level %d): %w", src, depth, err)
			}
			res.Stats.Add(stats)
			res.Launches++
			if discovered.Data()[0] == 0 {
				break
			}
			depth++
			if int(depth) > n {
				return nil, fmt.Errorf("gpualgo: BC forward did not terminate")
			}
		}
		// Backward: dependency accumulation from the deepest level down.
		for dep := depth - 1; dep >= 0; dep-- {
			stats, err := d.Launch(lc, bcBackwardKernel(dg, levels, sigma, delta, dep, opts))
			if err != nil {
				return nil, fmt.Errorf("gpualgo: BC backward (src %d, level %d): %w", src, dep, err)
			}
			res.Stats.Add(stats)
			res.Launches++
		}
		// Accumulate: bc[v] += delta[v] for v != src.
		stats, err := d.Launch(lc, bcAccumulateKernel(n, int32(src), delta, bc))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: BC accumulate (src %d): %w", src, err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
	}
	res.Scores = append([]float32(nil), bc.Data()...)
	return res, nil
}

// bcForwardKernel expands level cur, counting shortest paths: every edge
// from the frontier into level cur+1 adds the tail's sigma to the head's.
func bcForwardKernel(dg *DeviceGraph, levels *simt.BufI32, sigma *simt.BufF32, discovered *simt.BufI32, cur int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			lvl := make([]int32, g)
			ts.LoadI32Grouped(levels, ts.Task, lvl)
			ts.Mask(func(gi int) bool { return lvl[gi] == cur }, func() {
				mySigma := make([]float32, g)
				ts.LoadF32Grouped(sigma, ts.Task, mySigma)
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				old := w.VecI32()
				sig := w.VecF32()
				unvisited := w.ConstI32(Unvisited)
				next := w.ConstI32(cur + 1)
				zero := w.ConstI32(0)
				one := w.ConstI32(1)
				w.Apply(1, func(lane int) { sig[lane] = mySigma[ts.Group(lane)] })
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.AtomicCASI32(levels, nbr, unvisited, next, old)
					w.If(func(lane int) bool { return old[lane] == Unvisited }, func() {
						w.AtomicAddI32(discovered, zero, one, nil)
					}, nil)
					// Edge contributes iff the head sits exactly one level
					// deeper (old holds the head's level, or Unvisited if we
					// just discovered it).
					w.If(func(lane int) bool {
						return old[lane] == Unvisited || old[lane] == cur+1
					}, func() {
						w.AtomicAddF32(sigma, nbr, sig, nil)
					}, nil)
				})
			})
		})
	}
}

// bcBackwardKernel accumulates dependencies for vertices at level dep:
// delta[v] = sum over successors w at dep+1 of sigma[v]/sigma[w]*(1+delta[w]).
// delta[v] is owned by v's virtual warp, so no atomics are needed.
func bcBackwardKernel(dg *DeviceGraph, levels *simt.BufI32, sigma, delta *simt.BufF32, dep int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, int32(dg.NumVertices), func(ts *vwarp.Tasks) {
			g := ts.Groups
			lvl := make([]int32, g)
			ts.LoadI32Grouped(levels, ts.Task, lvl)
			ts.Mask(func(gi int) bool { return lvl[gi] == dep }, func() {
				mySigma := make([]float32, g)
				ts.LoadF32Grouped(sigma, ts.Task, mySigma)
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				acc := w.VecF32()
				w.Apply(1, func(lane int) { acc[lane] = 0 })
				nbr := w.VecI32()
				nl := w.VecI32()
				nsig := w.VecF32()
				ndel := w.VecF32()
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(levels, nbr, nl)
					w.If(func(lane int) bool { return nl[lane] == dep+1 }, func() {
						w.LoadF32(sigma, nbr, nsig)
						w.LoadF32(delta, nbr, ndel)
						w.Apply(2, func(lane int) {
							if nsig[lane] > 0 {
								acc[lane] += mySigma[ts.Group(lane)] / nsig[lane] * (1 + ndel[lane])
							}
						})
					}, nil)
				})
				sums := make([]float32, g)
				ts.ReduceAddF32(acc, sums)
				ts.StoreF32Grouped(delta, ts.Task, sums, nil)
			})
		})
	}
}

// bcAccumulateKernel folds the per-source dependencies into the running BC
// scores (skipping the source itself).
func bcAccumulateKernel(n int, src int32, delta, bc *simt.BufF32) simt.Kernel {
	return func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		stride := int32(w.GridThreads())
		idx := w.CopyI32(tid)
		w.While(func(lane int) bool { return idx[lane] < int32(n) }, func() {
			w.If(func(lane int) bool { return idx[lane] != src }, func() {
				dv := w.VecF32()
				cur := w.VecF32()
				w.LoadF32(delta, idx, dv)
				w.LoadF32(bc, idx, cur)
				w.Apply(1, func(lane int) { cur[lane] += dv[lane] })
				w.StoreF32(bc, idx, cur)
			}, nil)
			w.Apply(1, func(lane int) { idx[lane] += stride })
		})
	}
}

// BetweennessCentralityCPU is the host Brandes oracle for the same sources,
// in float64 for a tight reference.
func BetweennessCentralityCPU(g *graph.CSR, sources []graph.VertexID) []float64 {
	n := g.NumVertices()
	bc := make([]float64, n)
	dist := make([]int32, n)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	queue := make([]graph.VertexID, 0, n)
	stack := make([]graph.VertexID, 0, n)
	for _, s := range sources {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		dist[s] = 0
		sigma[s] = 1
		queue = queue[:0]
		stack = stack[:0]
		queue = append(queue, s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			stack = append(stack, v)
			for _, w := range g.Neighbors(v) {
				if dist[w] < 0 {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
				if dist[w] == dist[v]+1 {
					sigma[w] += sigma[v]
				}
			}
		}
		for i := len(stack) - 1; i >= 0; i-- {
			v := stack[i]
			for _, w := range g.Neighbors(v) {
				if dist[w] == dist[v]+1 && sigma[w] > 0 {
					delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
				}
			}
			if v != s {
				bc[v] += delta[v]
			}
		}
	}
	return bc
}
