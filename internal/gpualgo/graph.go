// Package gpualgo implements the paper's graph algorithms as kernels for
// the simt device, each in two mappings: the classic thread-per-vertex
// baseline (virtual warp width K=1) and the paper's virtual warp-centric
// mapping (K>1), with optional dynamic workload distribution and outlier
// deferral. CPU implementations in cpualgo serve as correctness oracles.
package gpualgo

import (
	"fmt"

	"maxwarp/internal/graph"
	"maxwarp/internal/obs"
	"maxwarp/internal/simt"
)

// DeviceGraph is a CSR graph resident in simulated device memory.
type DeviceGraph struct {
	// RowPtr and Col mirror graph.CSR's arrays.
	RowPtr *simt.BufI32
	Col    *simt.BufI32
	// Weights is optional (nil unless uploaded), aligned with Col.
	Weights *simt.BufI32

	NumVertices int
	NumEdges    int
}

// Upload copies g into device memory. It trusts the caller to hand it a
// well-formed CSR (internal call sites construct graphs through validated
// constructors); boundary code should prefer UploadChecked.
func Upload(d *simt.Device, g *graph.CSR) *DeviceGraph {
	return &DeviceGraph{
		RowPtr:      d.UploadI32("graph.rowptr", g.RowPtr),
		Col:         d.UploadI32("graph.col", g.Col),
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
	}
}

// UploadChecked validates g's CSR invariants before uploading, so malformed
// graphs are rejected at the host API boundary instead of surfacing later as
// out-of-bounds kernel faults mid-launch.
func UploadChecked(d *simt.Device, g *graph.CSR) (*DeviceGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return Upload(d, g), nil
}

// UploadWeighted copies g and its edge weights into device memory.
func UploadWeighted(d *simt.Device, g *graph.CSR, weights []int32) (*DeviceGraph, error) {
	if len(weights) != g.NumEdges() {
		return nil, fmt.Errorf("gpualgo: %d weights for %d edges", len(weights), g.NumEdges())
	}
	dg := Upload(d, g)
	dg.Weights = d.UploadI32("graph.weights", weights)
	return dg, nil
}

// Options configure how a kernel maps work onto the machine — the knobs the
// paper's evaluation sweeps.
type Options struct {
	// K is the virtual warp width: 1 reproduces the thread-per-vertex
	// baseline, larger powers of two up to the warp width give the paper's
	// warp-centric mapping. Zero defaults to 1 (baseline).
	K int
	// Dynamic enables dynamic workload distribution: warps claim task chunks
	// from a global counter instead of a static stride schedule.
	Dynamic bool
	// Blocked selects the paper-era blocked static schedule (contiguous task
	// ranges per virtual warp) instead of the default stride schedule.
	// Mutually exclusive with Dynamic. Supported by BFS.
	Blocked bool
	// Chunk is the dynamic fetch size in tasks (default: 4 * warp width / K).
	Chunk int32
	// DeferThreshold, when > 0, defers vertices with degree above it to a
	// global outlier queue processed by full warps in a follow-up pass.
	DeferThreshold int32
	// BlockSize is threads per block (default 128).
	BlockSize int
	// GridBlocksCap bounds the launched grid; work beyond it is covered by
	// the stride/dynamic schedule (default: enough blocks to fill the
	// machine 4x).
	GridBlocksCap int
	// MaxIterations bounds iterative algorithms (default: |V|+1 for BFS and
	// SSSP-like loops).
	MaxIterations int
	// Metrics, when non-nil, receives algorithm-level event counters
	// (frontier sizes, edges traversed — see the Metric* names). Counting is
	// host-side accounting sharded by SM: it charges no simulated cycles, so
	// LaunchStats are unchanged, and the totals are bit-identical across
	// ParallelSMs settings.
	Metrics *obs.Metrics
}

// Counter names registered on Options.Metrics by the instrumented kernels.
const (
	// MetricBFSFrontier counts frontier vertices expanded across BFS levels.
	MetricBFSFrontier = "maxwarp_bfs_frontier_vertices_total"
	// MetricBFSEdges counts adjacency entries scanned by BFS expansion
	// (main and deferred passes).
	MetricBFSEdges = "maxwarp_bfs_edges_scanned_total"
	// MetricSSSPEdges counts edges relaxed across Bellman-Ford rounds.
	MetricSSSPEdges = "maxwarp_sssp_edges_relaxed_total"
	// MetricPREdges counts in-edges pulled across PageRank iterations.
	MetricPREdges = "maxwarp_pagerank_edges_pulled_total"
)

func (o Options) withDefaults(d *simt.Device) Options {
	if o.K == 0 {
		o.K = 1
	}
	if o.BlockSize == 0 {
		o.BlockSize = 128
	}
	cfg := d.Config()
	if o.Chunk == 0 {
		c := int32(4 * cfg.WarpWidth / o.K)
		if c < 1 {
			c = 1
		}
		o.Chunk = c
	}
	if o.GridBlocksCap == 0 {
		o.GridBlocksCap = 4 * cfg.NumSMs * cfg.MaxBlocksPerSM
	}
	return o
}

func (o Options) validate(d *simt.Device) error {
	w := d.Config().WarpWidth
	if o.K < 1 || o.K > w || w%o.K != 0 {
		return fmt.Errorf("gpualgo: K=%d must divide the warp width %d", o.K, w)
	}
	if o.Chunk < 1 {
		return fmt.Errorf("gpualgo: chunk %d must be >= 1", o.Chunk)
	}
	if o.BlockSize < 1 {
		return fmt.Errorf("gpualgo: block size %d must be >= 1", o.BlockSize)
	}
	if o.Dynamic && o.Blocked {
		return fmt.Errorf("gpualgo: Dynamic and Blocked schedules are mutually exclusive")
	}
	return nil
}

// grid returns a launch shape with roughly one K-wide virtual warp per task,
// capped at GridBlocksCap blocks (the schedulers stride over the excess).
func (o Options) grid(d *simt.Device, numTasks int) simt.LaunchConfig {
	threadsWanted := numTasks * o.K
	if threadsWanted < 1 {
		threadsWanted = 1
	}
	lc := simt.Grid1D(threadsWanted, o.BlockSize)
	if lc.Blocks > o.GridBlocksCap {
		lc.Blocks = o.GridBlocksCap
	}
	return lc
}

// Result carries an algorithm's output-independent execution record.
type Result struct {
	// Stats accumulates simulator counters over every launch of the run.
	Stats simt.LaunchStats
	// Launches is the number of kernel launches (BFS: ~2 per level when
	// deferring).
	Launches int
	// Iterations is the number of algorithm-level iterations (BFS levels,
	// Bellman-Ford rounds, PageRank iterations).
	Iterations int
}

// TEPS returns traversed edges per simulated second for an edge total m at
// the device clock.
func (r *Result) TEPS(m int, clockGHz float64) float64 {
	secs := float64(r.Stats.Cycles) / (clockGHz * 1e9)
	if secs <= 0 {
		return 0
	}
	return float64(m) / secs
}
