package gpualgo

import (
	"reflect"
	"testing"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

func TestDeltaSteppingMatchesDijkstra(t *testing.T) {
	for name, g := range testGraphs(t) {
		weights := gengraph.EdgeWeights(g, 12, 17)
		src := graph.LargestOutComponentSeed(g)
		want := cpualgo.SSSPDijkstra(g, weights, src)
		for _, opts := range []DeltaSteppingOptions{
			{Options: Options{K: 1}},
			{Options: Options{K: 8}},
			{Options: Options{K: 32}},
			{Options: Options{K: 8}, Delta: 1},
			{Options: Options{K: 8}, Delta: 64},
		} {
			d := testDevice(t)
			dg, err := UploadWeighted(d, g, weights)
			if err != nil {
				t.Fatal(err)
			}
			res, err := DeltaStepping(d, dg, src, opts)
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !reflect.DeepEqual(res.Dist, want) {
				t.Fatalf("%s delta=%d K=%d: distances differ from Dijkstra", name, opts.Delta, opts.K)
			}
		}
	}
}

func TestDeltaSteppingValidation(t *testing.T) {
	g, err := gengraph.UniformRandom(32, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := testDevice(t)
	dgu := Upload(d, g)
	if _, err := DeltaStepping(d, dgu, 0, DeltaSteppingOptions{Options: Options{K: 1}}); err == nil {
		t.Error("unweighted graph accepted")
	}
	weights := gengraph.EdgeWeights(g, 4, 1)
	dg, err := UploadWeighted(d, g, weights)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DeltaStepping(d, dg, -1, DeltaSteppingOptions{Options: Options{K: 1}}); err == nil {
		t.Error("bad source accepted")
	}
	if _, err := DeltaStepping(d, dg, 0, DeltaSteppingOptions{Options: Options{K: 1}, Delta: -5}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestDeltaSteppingTouchesLessWorkThanBellmanFordOnMesh(t *testing.T) {
	// On a high-diameter weighted mesh, Bellman-Ford rescans all vertices
	// every round; delta-stepping processes only active buckets. Compare
	// total instructions (cycle counts also favor delta-stepping but are
	// noisier at this scale).
	g, err := gengraph.Mesh2D(24, 24)
	if err != nil {
		t.Fatal(err)
	}
	weights := gengraph.EdgeWeights(g, 12, 5)
	d := testDevice(t)
	dg, err := UploadWeighted(d, g, weights)
	if err != nil {
		t.Fatal(err)
	}
	bf, err := SSSP(d, dg, 0, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	d2 := testDevice(t)
	dg2, err := UploadWeighted(d2, g, weights)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := DeltaStepping(d2, dg2, 0, DeltaSteppingOptions{Options: Options{K: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bf.Dist, ds.Dist) {
		t.Fatal("algorithms disagree")
	}
	if ds.Stats.Instructions >= bf.Stats.Instructions {
		t.Fatalf("delta-stepping instructions %d not below Bellman-Ford %d",
			ds.Stats.Instructions, bf.Stats.Instructions)
	}
}
