package gpualgo

import (
	"fmt"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/simt"
	"maxwarp/internal/vwarp"
)

// DeltaSteppingOptions tune the bucketed SSSP.
type DeltaSteppingOptions struct {
	Options
	// Delta is the bucket width (default: average edge weight, estimated
	// from the uploaded weights).
	Delta int32
}

// DeltaStepping runs the near-far variant of delta-stepping SSSP on the
// device (Davidson et al.'s GPU formulation): a near worklist holds vertices
// whose tentative distance falls under the current threshold and is relaxed
// repeatedly; improvements beyond the threshold pile into a far list that is
// re-filtered each time the threshold advances by Delta. Compared with the
// Bellman-Ford kernel (SSSP), it touches only active vertices instead of
// scanning all |V| every round — the classic work-efficiency trade against
// extra queue atomics.
func DeltaStepping(d *simt.Device, dg *DeviceGraph, src graph.VertexID, opts DeltaSteppingOptions) (*SSSPResult, error) {
	opts.Options = opts.Options.withDefaults(d)
	if err := opts.Options.validate(d); err != nil {
		return nil, err
	}
	if dg.Weights == nil {
		return nil, fmt.Errorf("gpualgo: delta-stepping requires a weighted graph (UploadWeighted)")
	}
	if src < 0 || int(src) >= dg.NumVertices {
		return nil, fmt.Errorf("gpualgo: delta-stepping source %d out of range [0,%d)", src, dg.NumVertices)
	}
	if opts.Delta == 0 {
		var sum int64
		for _, w := range dg.Weights.Data() {
			sum += int64(w)
		}
		if m := int64(dg.NumEdges); m > 0 {
			opts.Delta = int32(sum/m) + 1
		} else {
			opts.Delta = 1
		}
	}
	if opts.Delta < 1 {
		return nil, fmt.Errorf("gpualgo: delta %d must be >= 1", opts.Delta)
	}

	n := dg.NumVertices
	capQueue := 4*dg.NumEdges + n + 64
	dist := d.AllocI32("ds.dist", n)
	dist.Fill(cpualgo.InfDist)
	dist.Data()[src] = 0
	near := d.AllocI32("ds.near", capQueue)
	nearNext := d.AllocI32("ds.nearNext", capQueue)
	far := d.AllocI32("ds.far", capQueue)
	farNext := d.AllocI32("ds.farNext", capQueue)
	counts := d.AllocI32("ds.counts", 3) // 0: nearNext, 1: farNext, 2: unused

	near.Data()[0] = int32(src)
	nearLen, farLen := 1, 0
	threshold := opts.Delta

	res := &SSSPResult{}
	res.Stats.WarpWidth = d.Config().WarpWidth
	maxIter := opts.MaxIterations
	if maxIter == 0 {
		maxIter = 64 * (n + 2)
	}
	for iter := 0; ; iter++ {
		if iter >= maxIter {
			return nil, fmt.Errorf("gpualgo: delta-stepping exceeded %d phases", maxIter)
		}
		if nearLen == 0 && farLen == 0 {
			break
		}
		if nearLen == 0 {
			// Advance the threshold and re-filter the far pile.
			threshold += opts.Delta
			counts.Data()[0] = 0
			counts.Data()[1] = 0
			stats, err := d.Launch(opts.grid(d, farLen),
				dsFilterKernel(dist, far, nearNext, farNext, counts, int32(farLen), threshold, opts.Options))
			if err != nil {
				return nil, fmt.Errorf("gpualgo: delta-stepping filter: %w", err)
			}
			res.Stats.Add(stats)
			res.Launches++
			nearLen = int(counts.Data()[0])
			farLen = int(counts.Data()[1])
			if nearLen > capQueue || farLen > capQueue {
				return nil, fmt.Errorf("gpualgo: delta-stepping queue overflow")
			}
			near, nearNext = nearNext, near
			far, farNext = farNext, far
			res.Iterations++
			continue
		}
		counts.Data()[0] = 0
		counts.Data()[1] = 0
		stats, err := d.Launch(opts.grid(d, nearLen),
			dsRelaxKernel(dg, dist, near, nearNext, far, counts, int32(nearLen), int32(farLen), threshold, opts))
		if err != nil {
			return nil, fmt.Errorf("gpualgo: delta-stepping relax: %w", err)
		}
		res.Stats.Add(stats)
		res.Launches++
		res.Iterations++
		nearLen = int(counts.Data()[0])
		farLen += int(counts.Data()[1])
		if nearLen > capQueue || farLen > capQueue {
			return nil, fmt.Errorf("gpualgo: delta-stepping queue overflow")
		}
		near, nearNext = nearNext, near
	}
	res.Dist = append([]int32(nil), dist.Data()...)
	return res, nil
}

// dsRelaxKernel processes the near worklist: each entry still under the
// threshold relaxes its out-edges; improvements land in nearNext (under
// threshold) or are appended to the far pile (beyond it).
func dsRelaxKernel(dg *DeviceGraph, dist, near, nearNext, far, counts *simt.BufI32, nearLen, farBase, threshold int32, opts DeltaSteppingOptions) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, nearLen, func(ts *vwarp.Tasks) {
			g := ts.Groups
			// Indirect through the worklist; stale entries (already settled
			// under an earlier threshold or re-improved) still relax
			// correctly — relaxation is idempotent — but entries at or past
			// the threshold wait for a later phase.
			ts.LoadI32Grouped(near, ts.Task, ts.Task)
			dv := make([]int32, g)
			ts.LoadI32Grouped(dist, ts.Task, dv)
			ts.Mask(func(gi int) bool { return dv[gi] < threshold }, func() {
				start := make([]int32, g)
				end := make([]int32, g)
				taskP1 := make([]int32, g)
				ts.LoadI32Grouped(dg.RowPtr, ts.Task, start)
				ts.SISD(1, func(gi int) { taskP1[gi] = ts.Task[gi] + 1 })
				ts.LoadI32Grouped(dg.RowPtr, taskP1, end)
				nbr := w.VecI32()
				wt := w.VecI32()
				cand := w.VecI32()
				old := w.VecI32()
				slot := w.VecI32()
				zero := w.ConstI32(0)
				oneIdx := w.ConstI32(1)
				one := w.ConstI32(1)
				ts.SIMDRange(start, end, func(j []int32) {
					w.LoadI32(dg.Col, j, nbr)
					w.LoadI32(dg.Weights, j, wt)
					w.Apply(1, func(lane int) { cand[lane] = dv[ts.Group(lane)] + wt[lane] })
					w.AtomicMinI32(dist, nbr, cand, old)
					w.If(func(lane int) bool { return cand[lane] < old[lane] }, func() {
						w.If(func(lane int) bool { return cand[lane] < threshold }, func() {
							w.AtomicAddI32(counts, zero, one, slot)
							w.StoreI32(nearNext, slot, nbr)
						}, func() {
							w.AtomicAddI32(counts, oneIdx, one, slot)
							w.Apply(1, func(lane int) { slot[lane] += farBase })
							w.StoreI32(far, slot, nbr)
						})
					}, nil)
				})
			})
		})
	}
}

// dsFilterKernel re-buckets the far pile after a threshold advance: entries
// now under the threshold move to the near list, the rest stay far.
func dsFilterKernel(dist, far, nearNext, farNext, counts *simt.BufI32, farLen, threshold int32, opts Options) simt.Kernel {
	return func(w *simt.WarpCtx) {
		vwarp.ForEachStatic(w, opts.K, farLen, func(ts *vwarp.Tasks) {
			g := ts.Groups
			ts.LoadI32Grouped(far, ts.Task, ts.Task)
			dv := make([]int32, g)
			ts.LoadI32Grouped(dist, ts.Task, dv)
			zeros := make([]int32, g)
			ones := make([]int32, g)
			oneIdx := make([]int32, g)
			for gi := range ones {
				ones[gi] = 1
				oneIdx[gi] = 1
			}
			slot := make([]int32, g)
			ts.Mask(func(gi int) bool { return dv[gi] < threshold }, func() {
				ts.AtomicAddGrouped(counts, zeros, ones, slot, nil)
				ts.StoreI32Grouped(nearNext, slot, ts.Task, nil)
			})
			ts.Mask(func(gi int) bool { return dv[gi] >= threshold && dv[gi] < cpualgo.InfDist }, func() {
				ts.AtomicAddGrouped(counts, oneIdx, ones, slot, nil)
				ts.StoreI32Grouped(farNext, slot, ts.Task, nil)
			})
		})
	}
}
