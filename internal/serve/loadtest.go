package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"maxwarp/internal/report"
	"maxwarp/internal/xrand"
)

// MixItem is one entry of a synthetic query mix: an algorithm on a named
// graph, drawn with the given weight.
type MixItem struct {
	Algo   string `json:"algo"`
	Graph  string `json:"graph"`
	Weight int    `json:"weight"`
}

// ParseMix parses "bfs@wiki=3,pagerank@road" (weight defaults to 1).
func ParseMix(spec string) ([]MixItem, error) {
	var mix []MixItem
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		item := MixItem{Weight: 1}
		if at := strings.IndexByte(part, '='); at >= 0 {
			if _, err := fmt.Sscanf(part[at+1:], "%d", &item.Weight); err != nil || item.Weight < 1 {
				return nil, fmt.Errorf("serve: mix %q: bad weight", part)
			}
			part = part[:at]
		}
		algo, g, ok := strings.Cut(part, "@")
		if !ok || algo == "" || g == "" {
			return nil, fmt.Errorf("serve: mix entry %q: want algo@graph[=weight]", part)
		}
		item.Algo, item.Graph = algo, g
		mix = append(mix, item)
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("serve: empty mix %q", spec)
	}
	return mix, nil
}

// LoadOptions drives a synthetic load run against a serve daemon.
type LoadOptions struct {
	// URL is the server base URL (e.g. "http://127.0.0.1:8080").
	URL string
	// Mix is the weighted query mix.
	Mix []MixItem
	// Duration bounds the run (default 5s).
	Duration time.Duration
	// QPS is the target offered rate (default 50).
	QPS float64
	// Concurrency is the sender pool size (default 8).
	Concurrency int
	// Tenants spreads requests across that many synthetic tenants
	// (default 1).
	Tenants int
	// DeadlineMin/Max bound the per-request deadline spread; zero means the
	// server default (no deadline_ms sent).
	DeadlineMin, DeadlineMax time.Duration
	// NoCacheFraction is the fraction of requests sent with no_cache
	// (default 0: let the cache work).
	NoCacheFraction float64
	// Seed makes the mix draw and deadline spread reproducible (default 1).
	Seed uint64
	// Client overrides the HTTP client (default: 1-minute timeout).
	Client *http.Client
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Duration == 0 {
		o.Duration = 5 * time.Second
	}
	if o.QPS == 0 {
		o.QPS = 50
	}
	if o.Concurrency == 0 {
		o.Concurrency = 8
	}
	if o.Tenants == 0 {
		o.Tenants = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: time.Minute}
	}
	return o
}

// LoadReport summarizes one load run. All latencies are milliseconds.
type LoadReport struct {
	Requests  int64            `json:"requests"`
	Errors    int64            `json:"transport_errors"`
	ByCode    map[string]int64 `json:"by_code"`
	ShedBy    map[string]int64 `json:"shed_by_reason"`
	Server5xx int64            `json:"server_5xx"`
	Degraded  int64            `json:"degraded"`
	Cached    int64            `json:"cached"`

	DurationSec float64 `json:"duration_sec"`
	OfferedQPS  float64 `json:"offered_qps"`
	AchievedQPS float64 `json:"achieved_qps"`

	P50Millis float64 `json:"p50_ms"`
	P95Millis float64 `json:"p95_ms"`
	P99Millis float64 `json:"p99_ms"`
	MaxMillis float64 `json:"max_ms"`
}

// Load runs a paced synthetic workload against the server and aggregates
// the outcome. It never fails on HTTP-level responses (those are the data);
// it returns an error only when the run cannot execute at all.
func Load(ctx context.Context, opts LoadOptions) (*LoadReport, error) {
	opts = opts.withDefaults()
	if len(opts.Mix) == 0 {
		return nil, fmt.Errorf("serve: load test needs a mix")
	}
	totalWeight := 0
	for _, m := range opts.Mix {
		totalWeight += m.Weight
	}

	rep := &LoadReport{
		ByCode:     make(map[string]int64),
		ShedBy:     make(map[string]int64),
		OfferedQPS: opts.QPS,
	}
	var mu sync.Mutex
	var lats []float64

	ctx, cancel := context.WithTimeout(ctx, opts.Duration)
	defer cancel()

	// Open-loop pacing: requests are stamped with their intended send time
	// and queued without ever blocking the pacer, so the offered rate stays
	// at QPS even when the server is slow, and latency is measured from the
	// moment the request *should* have been sent (any wait for a free sender
	// is server-induced queueing and belongs in the number). A closed loop —
	// pacer blocking on a free sender — would silently degrade the offered
	// rate to the server's throughput and hide the queueing delay entirely
	// (coordinated omission).
	type job struct {
		q   QueryRequest
		due time.Time
	}
	expected := int(opts.QPS*opts.Duration.Seconds()) + 1
	jobs := make(chan job, 2*expected)
	var wg sync.WaitGroup
	for i := 0; i < opts.Concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				body, _ := json.Marshal(j.q)
				req, err := http.NewRequestWithContext(ctx, http.MethodPost, opts.URL+"/v1/query", bytes.NewReader(body))
				if err != nil {
					continue
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := opts.Client.Do(req)
				lat := float64(time.Since(j.due)) / float64(time.Millisecond)
				mu.Lock()
				rep.Requests++
				if err != nil {
					if ctx.Err() == nil {
						rep.Errors++
					}
					mu.Unlock()
					continue
				}
				rep.ByCode[fmt.Sprint(resp.StatusCode)]++
				if resp.StatusCode >= 500 && resp.StatusCode != http.StatusServiceUnavailable {
					rep.Server5xx++
				}
				if reason := resp.Header.Get("X-Maxwarp-Reason"); reason != "" {
					rep.ShedBy[reason]++
				}
				if resp.StatusCode == http.StatusOK {
					var qr QueryResponse
					if derr := json.NewDecoder(resp.Body).Decode(&qr); derr == nil {
						if qr.Degraded {
							rep.Degraded++
						}
						if qr.Cached {
							rep.Cached++
						}
					}
					lats = append(lats, lat)
				}
				mu.Unlock()
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	// Fire at the ideal tick times start + i*interval. Sleeping to an
	// absolute schedule (rather than a ticker) cannot lose ticks under GC
	// pauses or scheduler hiccups: a late wake just fires every tick that
	// has come due. The enqueue never blocks — the buffer holds the whole
	// run — so a slow server cannot throttle the offered rate.
	rng := xrand.New(opts.Seed)
	interval := time.Duration(float64(time.Second) / opts.QPS)
	start := time.Now()
pace:
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if wait := time.Until(due); wait > 0 {
			select {
			case <-ctx.Done():
				break pace
			case <-time.After(wait):
			}
		} else if ctx.Err() != nil {
			break pace
		}
		select {
		case jobs <- job{q: drawQuery(rng, opts, totalWeight), due: due}:
		default:
			// Queue full: the run is hopelessly oversubscribed; count the
			// intended request as a transport error rather than stalling.
			mu.Lock()
			rep.Requests++
			rep.Errors++
			mu.Unlock()
		}
	}
	close(jobs)
	wg.Wait()

	rep.DurationSec = time.Since(start).Seconds()
	if rep.DurationSec > 0 {
		rep.AchievedQPS = float64(rep.Requests) / rep.DurationSec
	}
	sort.Float64s(lats)
	rep.P50Millis = percentile(lats, 0.50)
	rep.P95Millis = percentile(lats, 0.95)
	rep.P99Millis = percentile(lats, 0.99)
	if len(lats) > 0 {
		rep.MaxMillis = lats[len(lats)-1]
	}
	return rep, nil
}

func drawQuery(rng *xrand.Rand, opts LoadOptions, totalWeight int) QueryRequest {
	pick := int(rng.Uint64n(uint64(totalWeight)))
	var item MixItem
	for _, m := range opts.Mix {
		pick -= m.Weight
		if pick < 0 {
			item = m
			break
		}
	}
	q := QueryRequest{
		Algo:   item.Algo,
		Graph:  item.Graph,
		Tenant: fmt.Sprintf("tenant-%d", rng.Uint64n(uint64(opts.Tenants))),
	}
	if opts.DeadlineMax > opts.DeadlineMin && opts.DeadlineMin >= 0 {
		spread := uint64(opts.DeadlineMax - opts.DeadlineMin)
		q.DeadlineMillis = int64((opts.DeadlineMin + time.Duration(rng.Uint64n(spread))) / time.Millisecond)
		if q.DeadlineMillis < 1 {
			q.DeadlineMillis = 1
		}
	}
	if opts.NoCacheFraction > 0 && rng.Float64() < opts.NoCacheFraction {
		q.NoCache = true
	}
	return q
}

// percentile returns the nearest-rank percentile of an ascending-sorted
// sample: the smallest value v such that at least q of the sample is <= v
// (rank ceil(q*n), 1-based). Truncating instead of rounding the rank up
// would systematically understate tail percentiles — e.g. p95 of 10 samples
// would read the 9th value instead of the 10th.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

// WaitReady polls /readyz until the server answers 200 or the timeout
// expires.
func WaitReady(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("readyz: %s", resp.Status)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("serve: server not ready after %v: %w", timeout, lastErr)
}

// ScrapeMetrics fetches and parses the server's /metrics exposition.
func ScrapeMetrics(url string) ([]report.MetricFamily, error) {
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	text, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: /metrics: %s", resp.Status)
	}
	return report.ParsePromText(string(text))
}
