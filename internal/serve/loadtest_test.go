package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestPercentileNearestRank(t *testing.T) {
	ten := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", []float64{7}, 0.50, 7},
		{"single p99", []float64{7}, 0.99, 7},
		{"two p50", []float64{1, 2}, 0.50, 1},
		{"two p99", []float64{1, 2}, 0.99, 2},
		// Nearest rank over 10 samples: rank = ceil(q*10).
		{"ten p50", ten, 0.50, 5},
		{"ten p90", ten, 0.90, 9},
		// p95 of 10 samples is rank ceil(9.5) = 10 — the truncating
		// implementation read rank 9 and understated the tail.
		{"ten p95", ten, 0.95, 10},
		{"ten p99", ten, 0.99, 10},
		{"ten p100", ten, 1.00, 10},
		{"ten p0 clamps to first", ten, 0.0, 1},
		// 100 samples: exact-multiple ranks must not round further up.
		{"hundred p95", seqFloats(100), 0.95, 95},
		{"hundred p99", seqFloats(100), 0.99, 99},
		{"hundred p50", seqFloats(100), 0.50, 50},
	}
	for _, tc := range cases {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(n=%d, q=%v) = %v, want %v",
				tc.name, len(tc.sorted), tc.q, got, tc.want)
		}
	}
}

func seqFloats(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestLoadOpenLoopPacing pins the open-loop property the closed-loop pacer
// violated: a server far slower than the offered rate must not throttle the
// number of requests fired. With 50ms of server latency per request and 4
// senders, a closed loop would degrade to ~80 QPS; the open loop must still
// offer ~200 QPS for the full duration.
func TestLoadOpenLoopPacing(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		time.Sleep(50 * time.Millisecond)
		json.NewEncoder(w).Encode(QueryResponse{})
	}))
	defer srv.Close()

	const (
		qps = 200.0
		dur = time.Second
	)
	rep, err := Load(context.Background(), LoadOptions{
		URL:         srv.URL,
		Mix:         []MixItem{{Algo: "bfs", Graph: "g", Weight: 1}},
		Duration:    dur,
		QPS:         qps,
		Concurrency: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := qps * dur.Seconds()
	if float64(rep.Requests) < 0.75*want {
		t.Fatalf("open-loop pacer offered only %d of ~%.0f intended requests (achieved %.1f QPS)",
			rep.Requests, want, rep.AchievedQPS)
	}
}
