package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/resilient"
	"maxwarp/internal/simt"
)

// dgVariant distinguishes the uploaded forms of a graph a worker caches:
// plain CSR (BFS, PageRank pulls its own), weighted (SSSP), symmetrized
// (CC).
type dgVariant int

const (
	dgPlain dgVariant = iota
	dgWeighted
	dgSym
)

type dgKey struct {
	name    string
	epoch   int64
	variant dgVariant
}

// deviceWorker owns one simulated device: it pulls requests from the shared
// admission queue whenever its breaker allows, executes them with the
// resilient retry driver, and recreates the device after a loss or on the
// periodic recycle schedule (the simulator's buffer registry is append-only,
// so a long-lived daemon must swap devices to bound growth).
type deviceWorker struct {
	s     *Server
	id    int
	idStr string
	brk   *breaker
	plan  *simt.FaultPlan

	// dev and dgs belong to the worker goroutine (plus pre-Start setup).
	dev *simt.Device
	dgs map[dgKey]*gpualgo.DeviceGraph

	served   atomic.Int64
	recycled atomic.Int64
	lost     atomic.Bool
}

func (s *Server) newWorker(id int) (*deviceWorker, error) {
	w := &deviceWorker{s: s, id: id, idStr: strconv.Itoa(id)}
	if p, ok := s.cfg.FaultPlans[id]; ok {
		w.plan = p
	} else if p, ok := s.cfg.FaultPlans[-1]; ok {
		w.plan = p
	}
	w.brk = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown, s.cfg.now, func(from, to breakerState) {
		s.met.breakerTransitions.With(w.idStr, to.String()).Inc()
		s.cfg.Logf("serve: device %d breaker %s -> %s", id, from, to)
	})
	s.met.breakerState.Register(func() float64 { return float64(w.brk.State()) }, w.idStr)
	if err := w.freshDevice(); err != nil {
		return nil, err
	}
	return w, nil
}

// freshDevice replaces the worker's device with a new one and re-installs
// the fault plan. A fresh device also resets the plan's cumulative
// device-loss cycle budget, which is what lets a half-open probe succeed
// after an injected loss instead of dying again on the first launch.
func (w *deviceWorker) freshDevice() error {
	dev, err := simt.NewDevice(*w.s.cfg.DeviceConfig)
	if err != nil {
		return fmt.Errorf("serve: device %d: %w", w.id, err)
	}
	if w.plan != nil {
		plan := *w.plan
		dev.SetFaultPlan(&plan)
	}
	w.dev = dev
	w.dgs = make(map[dgKey]*gpualgo.DeviceGraph)
	w.lost.Store(false)
	return nil
}

// verdict is serveOne's report to the breaker.
type verdict int

const (
	verdictSuccess verdict = iota
	verdictFailure
	verdictPermanentFailure
	verdictNeutral // request expired before touching the device
)

func (w *deviceWorker) loop() {
	defer w.s.wg.Done()
	for {
		if !w.brk.Allow() {
			select {
			case <-w.s.stop:
				return
			case <-time.After(w.s.cfg.BreakerCooldown / 8):
			}
			continue
		}
		// Entering service (possibly as a half-open probe): a lost device
		// can never serve again, so swap it first.
		if w.dev.Lost() {
			if err := w.freshDevice(); err != nil {
				w.s.cfg.Logf("serve: device %d: recreate failed: %v", w.id, err)
				w.brk.Failure(true)
				continue
			}
			w.recycled.Add(1)
			w.s.met.recycles.Inc()
		}
		select {
		case <-w.s.stop:
			return
		case rq := <-w.s.queue:
			switch w.serveOne(rq) {
			case verdictSuccess:
				w.brk.Success()
			case verdictFailure:
				w.brk.Failure(false)
			case verdictPermanentFailure:
				w.brk.Failure(true)
			default:
				w.brk.CancelProbe()
			}
		}
	}
}

// serveOne executes one admitted request on this worker's device, falling
// back to the CPU oracle when the device run fails permanently, and always
// sends exactly one reply.
func (w *deviceWorker) serveOne(rq *request) verdict {
	met := w.s.met
	wait := w.s.cfg.now().Sub(rq.enqueued)
	met.queueWait.Observe(wait.Microseconds())

	if rq.ctx.Err() != nil {
		// Expired while queued: cancelled before any launch.
		rq.reply <- &reply{status: http.StatusTooManyRequests, reason: ReasonDeadline, retryAfter: 1}
		return verdictNeutral
	}

	t0 := w.s.cfg.now()
	payload, out, err := w.execute(rq)
	exec := w.s.cfg.now().Sub(t0)
	if out != nil {
		met.retries.Add(int64(out.Retries))
		for _, f := range out.Faults {
			met.faults.With(faultClass(f.Err)).Inc()
		}
	}
	w.served.Add(1)
	if w.dev.Lost() {
		w.lost.Store(true)
	}

	if err == nil {
		met.simCycles.With(w.idStr).Add(payload.SimCycles)
		resp := &QueryResponse{
			Algo: rq.algo, Graph: rq.graph.Name, Epoch: rq.graph.Epoch,
			Engine: "gpu", Device: w.id,
			Retries:         outRetries(out),
			Faults:          faultStrings(out),
			QueueWaitMillis: float64(wait) / float64(time.Millisecond),
			ExecMillis:      float64(exec) / float64(time.Millisecond),
			Result:          *payload,
		}
		rq.reply <- &reply{status: http.StatusOK, resp: resp}
		if rq.cacheKey != "" {
			w.s.cache.Put(rq.cacheKey, cachedResult{payload: payload, engine: "gpu"})
		}
		w.maybeRecycle()
		return verdictSuccess
	}

	// The deadline expiring mid-run is the request's fault, not the
	// device's: shed it without a breaker verdict. Every request carries a
	// deadline, so a launch-timeout here means the MaxCycles clamp fired.
	if rq.ctx.Err() != nil || errors.Is(err, simt.ErrLaunchCancelled) || errors.Is(err, simt.ErrLaunchTimeout) {
		rq.reply <- &reply{status: http.StatusTooManyRequests, reason: ReasonDeadline, retryAfter: 1}
		return verdictNeutral
	}

	// Device fault: degrade this request to the CPU oracle.
	w.s.cfg.Logf("serve: device %d: %s on %q failed: %v (degrading to oracle)", w.id, rq.algo, rq.graph.Name, err)
	permanent := errors.Is(err, simt.ErrDeviceLost) || !simt.IsTransient(err)
	v := verdictFailure
	if permanent {
		v = verdictPermanentFailure
	}
	// oracleExecute only fails when the request context expired.
	payload, oerr := oracleExecute(rq)
	if oerr != nil {
		rq.reply <- &reply{status: http.StatusTooManyRequests, reason: ReasonDeadline, retryAfter: 1}
		return v
	}
	met.degraded.With("fault").Inc()
	resp := &QueryResponse{
		Algo: rq.algo, Graph: rq.graph.Name, Epoch: rq.graph.Epoch,
		Engine: "oracle", Degraded: true, Device: w.id,
		Retries:         outRetries(out),
		Faults:          faultStrings(out),
		QueueWaitMillis: float64(wait) / float64(time.Millisecond),
		ExecMillis:      float64(w.s.cfg.now().Sub(t0)) / float64(time.Millisecond),
		Result:          *payload,
	}
	rq.reply <- &reply{status: http.StatusOK, resp: resp}
	return v
}

// maybeRecycle swaps in a fresh device after RecycleEvery served requests,
// bounding the append-only buffer registry of a long-lived device.
func (w *deviceWorker) maybeRecycle() {
	every := w.s.cfg.RecycleEvery
	if every <= 0 {
		return
	}
	if w.served.Load()%every == 0 {
		if err := w.freshDevice(); err != nil {
			w.s.cfg.Logf("serve: device %d: recycle failed: %v", w.id, err)
			return
		}
		w.recycled.Add(1)
		w.s.met.recycles.Inc()
	}
}

func outRetries(out *resilient.Outcome) int {
	if out == nil {
		return 0
	}
	return out.Retries
}

func faultStrings(out *resilient.Outcome) []string {
	if out == nil || len(out.Faults) == 0 {
		return nil
	}
	fs := make([]string, 0, len(out.Faults))
	for _, f := range out.Faults {
		fs = append(fs, faultClass(f.Err))
	}
	return fs
}

// deviceGraph returns the uploaded form of the request's graph, uploading
// on first use per (graph, epoch, variant) and reusing it until the device
// is recycled.
func (w *deviceWorker) deviceGraph(ng *NamedGraph, variant dgVariant) (*gpualgo.DeviceGraph, error) {
	key := dgKey{name: ng.Name, epoch: ng.Epoch, variant: variant}
	if dg, ok := w.dgs[key]; ok {
		return dg, nil
	}
	var dg *gpualgo.DeviceGraph
	var err error
	switch variant {
	case dgWeighted:
		dg, err = gpualgo.UploadWeighted(w.dev, ng.G, ng.Weights)
	case dgSym:
		sym, serr := ng.Sym()
		if serr != nil {
			return nil, serr
		}
		dg, err = gpualgo.UploadChecked(w.dev, sym)
	default:
		dg, err = gpualgo.UploadChecked(w.dev, ng.G)
	}
	if err != nil {
		return nil, err
	}
	w.dgs[key] = dg
	return dg, nil
}

// execute runs the request's algorithm on this worker's device under the
// resilient retry driver, with the request deadline propagated into every
// launch.
func (w *deviceWorker) execute(rq *request) (*ResultPayload, *resilient.Outcome, error) {
	pol := w.s.cfg.Retry
	pol.Launch = w.s.launchOpts(rq.ctx)
	opts := gpualgo.Options{K: rq.k}

	switch rq.algo {
	case "bfs":
		dg, err := w.deviceGraph(rq.graph, dgPlain)
		if err != nil {
			return nil, nil, err
		}
		run, err := gpualgo.NewBFSRun(w.dev, dg, rq.src, opts)
		if err != nil {
			return nil, nil, err
		}
		run.Launch = pol.Launch
		out, err := resilient.Drive(pol, run)
		if err != nil {
			return nil, out, err
		}
		res := run.Result()
		p := bfsPayload(res.Levels, res.Iterations, rq.full)
		p.SimCycles = res.Stats.Cycles
		return p, out, nil

	case "sssp":
		dg, err := w.deviceGraph(rq.graph, dgWeighted)
		if err != nil {
			return nil, nil, err
		}
		run, err := gpualgo.NewSSSPRun(w.dev, dg, rq.src, opts)
		if err != nil {
			return nil, nil, err
		}
		run.Launch = pol.Launch
		out, err := resilient.Drive(pol, run)
		if err != nil {
			return nil, out, err
		}
		res := run.Result()
		p := ssspPayload(res.Dist, res.Iterations, rq.full)
		p.SimCycles = res.Stats.Cycles
		return p, out, nil

	case "pagerank":
		run, err := gpualgo.NewPageRankRun(w.dev, rq.graph.G, gpualgo.PageRankOptions{
			Options: opts, Damping: float32(rq.damping), Iterations: rq.iters,
		})
		if err != nil {
			return nil, nil, err
		}
		run.Launch = pol.Launch
		out, err := resilient.Drive(pol, run)
		if err != nil {
			return nil, out, err
		}
		res := run.Result()
		p := pagerankPayload(res.Ranks, res.Iterations, rq.full)
		p.SimCycles = res.Stats.Cycles
		return p, out, nil

	case "cc":
		dg, err := w.deviceGraph(rq.graph, dgSym)
		if err != nil {
			return nil, nil, err
		}
		run, err := gpualgo.NewCCRun(w.dev, dg, opts)
		if err != nil {
			return nil, nil, err
		}
		run.Launch = pol.Launch
		out, err := resilient.Drive(pol, run)
		if err != nil {
			return nil, out, err
		}
		res := run.Result()
		p := ccPayload(res.Labels, res.Iterations, rq.full)
		p.SimCycles = res.Stats.Cycles
		return p, out, nil
	}
	return nil, nil, fmt.Errorf("serve: unknown algo %q", rq.algo)
}

// degradeLoop is the oracle of last resort: while every device breaker is
// open it pulls from the admission queue and answers on the CPU, so a fully
// sick pool degrades instead of queueing to the deadline.
func (s *Server) degradeLoop() {
	defer s.wg.Done()
	tick := s.cfg.BreakerCooldown / 4
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	for {
		if s.healthyDevices() > 0 {
			select {
			case <-s.stop:
				return
			case <-time.After(tick):
			}
			continue
		}
		select {
		case <-s.stop:
			return
		case <-time.After(tick):
		case rq := <-s.queue:
			s.serveOracle(rq)
		}
	}
}

// serveOracle answers one request on the CPU because no device was
// available.
func (s *Server) serveOracle(rq *request) {
	wait := s.cfg.now().Sub(rq.enqueued)
	s.met.queueWait.Observe(wait.Microseconds())
	if rq.ctx.Err() != nil {
		rq.reply <- &reply{status: http.StatusTooManyRequests, reason: ReasonDeadline, retryAfter: 1}
		return
	}
	t0 := s.cfg.now()
	payload, err := oracleExecute(rq)
	if err != nil {
		rq.reply <- &reply{status: http.StatusTooManyRequests, reason: ReasonDeadline, retryAfter: 1}
		return
	}
	s.met.degraded.With("pool").Inc()
	rq.reply <- &reply{status: http.StatusOK, resp: &QueryResponse{
		Algo: rq.algo, Graph: rq.graph.Name, Epoch: rq.graph.Epoch,
		Engine: "oracle", Degraded: true, Device: -1,
		QueueWaitMillis: float64(wait) / float64(time.Millisecond),
		ExecMillis:      float64(s.cfg.now().Sub(t0)) / float64(time.Millisecond),
		Result:          *payload,
	}}
}

// oracleExecute answers the request with the CPU reference implementation.
func oracleExecute(rq *request) (*ResultPayload, error) {
	if err := rq.ctx.Err(); err != nil {
		return nil, err
	}
	g := rq.graph.G
	switch rq.algo {
	case "bfs":
		return bfsPayload(cpualgo.BFSSequential(g, rq.src), 0, rq.full), nil
	case "sssp":
		return ssspPayload(cpualgo.SSSPDijkstra(g, rq.graph.Weights, rq.src), 0, rq.full), nil
	case "pagerank":
		ranks64, iters := cpualgo.PageRank(g, cpualgo.PageRankOptions{
			Damping:   rq.damping,
			MaxIters:  rq.iters,
			Tolerance: 1e-300, // fixed iteration count, matching the device
		})
		ranks := make([]float32, len(ranks64))
		for i, r := range ranks64 {
			ranks[i] = float32(r)
		}
		return pagerankPayload(ranks, iters, rq.full), nil
	case "cc":
		sym, err := rq.graph.Sym()
		if err != nil {
			return nil, err
		}
		return ccPayload(cpualgo.ConnectedComponents(sym), 0, rq.full), nil
	}
	return nil, fmt.Errorf("serve: unknown algo %q", rq.algo)
}

func bfsPayload(levels []int32, iters int, full bool) *ResultPayload {
	p := &ResultPayload{Iterations: iters}
	for _, l := range levels {
		if l >= 0 {
			p.Reached++
			if l > p.Depth {
				p.Depth = l
			}
		}
	}
	if full {
		p.Levels = levels
	}
	return p
}

func ssspPayload(dist []int32, iters int, full bool) *ResultPayload {
	p := &ResultPayload{Iterations: iters}
	for _, d := range dist {
		if d < cpualgo.InfDist {
			p.Reached++
			if d > p.MaxFiniteDist {
				p.MaxFiniteDist = d
			}
		}
	}
	if full {
		p.Dist = dist
	}
	return p
}

func pagerankPayload(ranks []float32, iters int, full bool) *ResultPayload {
	p := &ResultPayload{Iterations: iters}
	var sum float64
	var top int32
	for v, r := range ranks {
		sum += float64(r)
		if r > ranks[top] {
			top = int32(v)
		}
	}
	p.RankSum = sum
	p.TopVertex = top
	if full {
		p.Ranks = ranks
	}
	return p
}

func ccPayload(labels []int32, iters int, full bool) *ResultPayload {
	p := &ResultPayload{Iterations: iters}
	for v, l := range labels {
		if int32(v) == l {
			p.Components++
		}
	}
	if full {
		p.Labels = labels
	}
	return p
}
