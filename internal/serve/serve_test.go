package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"maxwarp/internal/report"
	"maxwarp/internal/resilient"
	"maxwarp/internal/simt"
)

// testConfig is a tiny server: small device, small graph, fast breaker.
func testConfig() Config {
	dev := simt.DefaultConfig()
	dev.NumSMs = 2
	dev.MaxWarpsPerSM = 8
	dev.MaxBlocksPerSM = 4
	dev.ParallelSMs = 1
	return Config{
		Graphs:          []GraphSpec{{Name: "wiki", Preset: "WikiTalk-like", Scale: 7, Seed: 3}},
		Devices:         2,
		DeviceConfig:    &dev,
		QueueDepth:      16,
		DefaultDeadline: 5 * time.Second,
		BreakerCooldown: 40 * time.Millisecond,
		Retry:           resilient.Policy{Sleep: func(time.Duration) {}},
		Logf:            func(string, ...any) {},
	}
}

// startTestServer builds, starts, and mounts a server, and registers
// cleanup that asserts a clean drain.
func startTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postQuery(t *testing.T, url string, q QueryRequest) (*http.Response, *QueryResponse) {
	t.Helper()
	body, _ := json.Marshal(q)
	resp, err := http.Post(url+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		t.Logf("query %+v -> %d (%s %s)", q, resp.StatusCode, eb.Reason, eb.Error)
		return resp, nil
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	return resp, &qr
}

func TestQueryAllAlgorithmsOnGPU(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	for _, algo := range []string{"bfs", "sssp", "pagerank", "cc"} {
		resp, qr := postQuery(t, ts.URL, QueryRequest{Algo: algo, Graph: "wiki", NoCache: true})
		if resp.StatusCode != http.StatusOK || qr == nil {
			t.Fatalf("%s: status %d", algo, resp.StatusCode)
		}
		if qr.Engine != "gpu" || qr.Degraded {
			t.Fatalf("%s: engine=%s degraded=%v, want clean gpu", algo, qr.Engine, qr.Degraded)
		}
		if qr.Result.SimCycles <= 0 {
			t.Fatalf("%s: no simulated cycles accounted", algo)
		}
		switch algo {
		case "bfs", "sssp":
			if qr.Result.Reached < 2 {
				t.Fatalf("%s reached %d vertices; default source should cover the main component", algo, qr.Result.Reached)
			}
		case "cc":
			if qr.Result.Components < 1 {
				t.Fatalf("cc found %d components", qr.Result.Components)
			}
		case "pagerank":
			if qr.Result.RankSum < 0.9 || qr.Result.RankSum > 1.1 {
				t.Fatalf("pagerank sum %v, want ~1", qr.Result.RankSum)
			}
		}
	}
}

func TestGPUAnswersMatchOracle(t *testing.T) {
	s, ts := startTestServer(t, testConfig())
	ng, _ := s.graphs.Get("wiki")
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		_, qr := postQuery(t, ts.URL, QueryRequest{Algo: algo, Graph: "wiki", Full: true, NoCache: true})
		if qr == nil || qr.Engine != "gpu" {
			t.Fatalf("%s: wanted a gpu answer", algo)
		}
		rq := &request{ctx: context.Background(), algo: algo, graph: ng, src: ng.DefaultSource(), iters: 20, damping: 0.85, full: true}
		want, err := oracleExecute(rq)
		if err != nil {
			t.Fatal(err)
		}
		var got, exp []int32
		switch algo {
		case "bfs":
			got, exp = qr.Result.Levels, want.Levels
		case "sssp":
			got, exp = qr.Result.Dist, want.Dist
		case "cc":
			got, exp = qr.Result.Labels, want.Labels
		}
		if len(got) != len(exp) {
			t.Fatalf("%s: vector length %d vs oracle %d", algo, len(got), len(exp))
		}
		for i := range got {
			if got[i] != exp[i] {
				t.Fatalf("%s: vertex %d: gpu %d vs oracle %d", algo, i, got[i], exp[i])
			}
		}
	}
}

func TestResultCacheHitsAndEpochInvalidation(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	q := QueryRequest{Algo: "bfs", Graph: "wiki"}
	_, first := postQuery(t, ts.URL, q)
	if first == nil || first.Cached {
		t.Fatalf("first query should miss the cache: %+v", first)
	}
	_, second := postQuery(t, ts.URL, q)
	if second == nil || !second.Cached || second.Engine != "cache" {
		t.Fatalf("second identical query should hit the cache: %+v", second)
	}
	if second.Result.Reached != first.Result.Reached || second.Result.Depth != first.Result.Depth {
		t.Fatal("cache returned a different result")
	}

	// Reload bumps the epoch; the same query must recompute.
	resp, err := http.Post(ts.URL+"/v1/graphs/wiki/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload: %d", resp.StatusCode)
	}
	_, third := postQuery(t, ts.URL, q)
	if third == nil || third.Cached {
		t.Fatalf("post-reload query must not be served from the stale epoch: %+v", third)
	}
	if third.Epoch != first.Epoch+1 {
		t.Fatalf("epoch %d, want %d", third.Epoch, first.Epoch+1)
	}
}

func TestQuotaShedsWithRetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.Quota = QuotaConfig{Default: TenantQuota{RatePerSec: 1, Burst: 2}}
	_, ts := startTestServer(t, cfg)

	codes := map[int]int{}
	for i := 0; i < 6; i++ {
		resp, _ := postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki", Tenant: "greedy"})
		codes[resp.StatusCode]++
		if resp.StatusCode == http.StatusTooManyRequests {
			if resp.Header.Get("X-Maxwarp-Reason") != ReasonQuota {
				t.Fatalf("quota shed lacks reason header: %v", resp.Header)
			}
			// At 1 token/sec the wait to the next token is always in (0, 1s],
			// so the ceil-to-whole-seconds hint must be exactly 1 — never the
			// invalid 0 a truncation would produce, and never 2 from an
			// off-by-one "truncate then add one".
			if got := resp.Header.Get("Retry-After"); got != "1" {
				t.Fatalf("Retry-After = %q, want \"1\" for a sub-second quota wait", got)
			}
		}
	}
	if codes[http.StatusTooManyRequests] == 0 {
		t.Fatalf("burst of 6 at burst-capacity 2 never hit the quota: %v", codes)
	}
	if codes[http.StatusOK] == 0 {
		t.Fatalf("quota starved the tenant entirely: %v", codes)
	}
}

func TestValidationRejections(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	src := int32(1 << 30)
	cases := []struct {
		q    QueryRequest
		want int
	}{
		{QueryRequest{Algo: "nope", Graph: "wiki"}, http.StatusBadRequest},
		{QueryRequest{Algo: "bfs", Graph: "missing"}, http.StatusNotFound},
		{QueryRequest{Algo: "bfs", Graph: "wiki", K: 3}, http.StatusBadRequest},
		{QueryRequest{Algo: "bfs", Graph: "wiki", Source: &src}, http.StatusBadRequest},
		{QueryRequest{Algo: "pagerank", Graph: "wiki", Damping: 1.5}, http.StatusBadRequest},
		{QueryRequest{Algo: "pagerank", Graph: "wiki", Iterations: 100000}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postQuery(t, ts.URL, c.q)
		if resp.StatusCode != c.want {
			t.Errorf("%+v: status %d, want %d", c.q, resp.StatusCode, c.want)
		}
	}
}

func TestTinyDeadlineIsShedNotServed(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	// A 1ms budget cannot cover a device BFS; the server must shed with
	// 429/deadline (before launch or clamped mid-flight), never hang.
	resp, qr := postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki", DeadlineMillis: 1, NoCache: true})
	if qr != nil {
		t.Skip("machine fast enough to finish inside 1ms; nothing to assert")
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("X-Maxwarp-Reason") != ReasonDeadline {
		t.Fatalf("reason %q, want %q", resp.Header.Get("X-Maxwarp-Reason"), ReasonDeadline)
	}
}

func TestHealthMetricsAndTraceEndpoints(t *testing.T) {
	_, ts := startTestServer(t, testConfig())
	postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki"})
	postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki"})

	for _, path := range []string{"/healthz", "/readyz", "/v1/graphs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d", path, resp.StatusCode)
		}
	}

	fams, err := ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_requests_total",
		report.Label{Name: "algo", Value: "bfs"}, report.Label{Name: "code", Value: "200"}); !ok || v < 2 {
		t.Fatalf("requests_total{bfs,200} = %v, %v", v, ok)
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_cache_hits_total"); !ok || v < 1 {
		t.Fatalf("cache_hits_total = %v, %v", v, ok)
	}
	if f := report.FamilyByName(fams, "maxwarp_serve_latency_us"); f == nil {
		t.Fatal("latency histogram missing from /metrics")
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_breaker_state", report.Label{Name: "device", Value: "0"}); !ok || v != 0 {
		t.Fatalf("breaker_state{device=0} = %v, %v; want closed (0)", v, ok)
	}

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("/debug/trace is not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) == 0 {
		t.Fatal("/debug/trace has no events after served queries")
	}
}

func TestDrainRefusesNewAndFinishesInflight(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Seed a request so drain has something in flight.
	done := make(chan int, 1)
	go func() {
		body, _ := json.Marshal(QueryRequest{Algo: "pagerank", Graph: "wiki", NoCache: true})
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- -1
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- s.Shutdown(ctx) }()

	// New queries during/after drain are refused with 503.
	time.Sleep(10 * time.Millisecond)
	body, _ := json.Marshal(QueryRequest{Algo: "bfs", Graph: "wiki"})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("query during drain: %d, want 503", resp.StatusCode)
		}
	}

	if code := <-done; code != http.StatusOK && code != http.StatusServiceUnavailable && code != http.StatusTooManyRequests {
		t.Fatalf("in-flight request resolved to %d", code)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func TestParseGraphSpecAndMix(t *testing.T) {
	spec, err := ParseGraphSpec("lj=LiveJournal-like:8:99")
	if err != nil || spec.Name != "lj" || spec.Preset != "LiveJournal-like" || spec.Scale != 8 || spec.Seed != 99 {
		t.Fatalf("ParseGraphSpec: %+v, %v", spec, err)
	}
	if _, err := ParseGraphSpec("bad"); err == nil {
		t.Fatal("ParseGraphSpec accepted junk")
	}
	if _, err := ParseGraphSpec("g=Preset"); err == nil {
		t.Fatal("ParseGraphSpec accepted a spec without scale")
	}
	mix, err := ParseMix("bfs@wiki=3, pagerank@road")
	if err != nil || len(mix) != 2 || mix[0].Weight != 3 || mix[1].Weight != 1 {
		t.Fatalf("ParseMix: %+v, %v", mix, err)
	}
	if _, err := ParseMix("nope"); err == nil {
		t.Fatal("ParseMix accepted junk")
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	var transitions []string
	b := newBreaker(2, time.Second, clock, func(from, to breakerState) {
		transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
	})

	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Failure(false)
	if b.State() != breakerClosed {
		t.Fatal("one transient failure below threshold must not trip")
	}
	b.Failure(false)
	if b.State() != breakerOpen {
		t.Fatal("threshold consecutive failures must trip")
	}
	if b.Allow() {
		t.Fatal("open breaker inside cooldown must refuse")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed: must admit a probe")
	}
	if b.State() != breakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be refused")
	}
	b.Failure(false)
	if b.State() != breakerOpen {
		t.Fatal("failed probe must re-open")
	}
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe window")
	}
	b.Success()
	if b.State() != breakerClosed {
		t.Fatal("successful probe must close")
	}
	// Permanent faults trip from closed in one hit.
	b.Failure(true)
	if b.State() != breakerOpen {
		t.Fatal("permanent fault must trip immediately")
	}
	want := "closed->open open->half-open half-open->open open->half-open half-open->closed closed->open"
	if got := fmt.Sprint(transitions); got != "["+want+"]" {
		t.Fatalf("transitions %v, want %s", got, want)
	}
}

func TestQuotaBucketRefills(t *testing.T) {
	now := time.Unix(0, 0)
	q := newQuotas(QuotaConfig{Default: TenantQuota{RatePerSec: 2, Burst: 1}}, func() time.Time { return now })
	if ok, _ := q.Admit("t"); !ok {
		t.Fatal("first request must pass")
	}
	ok, wait := q.Admit("t")
	if ok {
		t.Fatal("burst 1 must refuse the second immediate request")
	}
	if wait <= 0 || wait > time.Second {
		t.Fatalf("retry hint %v, want (0, 1s]", wait)
	}
	now = now.Add(time.Second)
	if ok, _ := q.Admit("t"); !ok {
		t.Fatal("bucket must refill over time")
	}
	// Unlimited default.
	q2 := newQuotas(QuotaConfig{}, func() time.Time { return now })
	for i := 0; i < 100; i++ {
		if ok, _ := q2.Admit("t"); !ok {
			t.Fatal("zero-rate quota must be unlimited")
		}
	}
}

func TestResultCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	p := &ResultPayload{Reached: 1}
	c.Put("a", cachedResult{payload: p, engine: "gpu"})
	c.Put("b", cachedResult{payload: p, engine: "gpu"})
	c.Get("a") // refresh a
	c.Put("c", cachedResult{payload: p, engine: "gpu"})
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a was refreshed and must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c was just inserted and must survive")
	}
	// Disabled cache never stores.
	d := newResultCache(-1)
	d.Put("x", cachedResult{payload: p})
	if _, ok := d.Get("x"); ok {
		t.Fatal("disabled cache returned a hit")
	}
}
