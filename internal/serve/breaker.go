package serve

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit breaker state.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerHalfOpen
	breakerOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// breaker guards one device. Closed passes everything; Threshold
// consecutive failures (or one permanent fault) trip it open; after
// Cooldown it lets exactly one probe request through (half-open) and closes
// again only if the probe succeeds. A worker whose breaker is open does not
// pull from the admission queue, so traffic routes to healthy devices.
type breaker struct {
	threshold    int
	cooldown     time.Duration
	now          func() time.Time
	onTransition func(from, to breakerState)

	mu       sync.Mutex
	state    breakerState
	consec   int
	openedAt time.Time
	probing  bool
}

func newBreaker(threshold int, cooldown time.Duration, now func() time.Time, onTransition func(from, to breakerState)) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now, onTransition: onTransition}
}

func (b *breaker) transition(to breakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// Allow reports whether the guarded device may take a request now. In the
// open state it flips to half-open once the cooldown has elapsed and admits
// a single probe.
func (b *breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.transition(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a served request and closes the breaker.
func (b *breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec = 0
	b.probing = false
	b.transition(breakerClosed)
}

// Failure records a device fault. A permanent fault (device loss,
// deterministic kernel bug) trips immediately; transient faults trip after
// threshold consecutive occurrences. A failed half-open probe re-opens.
func (b *breaker) Failure(permanent bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	b.probing = false
	if b.state == breakerHalfOpen || permanent || b.consec >= b.threshold {
		b.openedAt = b.now()
		b.transition(breakerOpen)
	}
}

// CancelProbe releases the half-open probe slot without a verdict (the
// probe request expired before touching the device); the next Allow probes
// again.
func (b *breaker) CancelProbe() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// State returns the current state.
func (b *breaker) State() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
