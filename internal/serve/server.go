package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"maxwarp/internal/graph"
	"maxwarp/internal/resilient"
	"maxwarp/internal/simt"
)

// Shed reasons (the "reason" label on maxwarp_serve_shed_total and the
// X-Maxwarp-Reason response header).
const (
	ReasonQueueFull = "queue_full"
	ReasonQuota     = "quota"
	ReasonDeadline  = "deadline"
	ReasonDraining  = "draining"
)

// Config configures the analytics server.
type Config struct {
	// Graphs are the named graphs to pre-load. Required.
	Graphs []GraphSpec
	// Devices is the simulated-device pool size (default 2).
	Devices int
	// DeviceConfig configures each simulated device. Nil uses
	// simt.DefaultConfig with the sequential event loop (every launch the
	// server makes attaches an OnProgress cancellation hook, which forces
	// the sequential loop anyway — defaulting avoids a fallback warning per
	// request).
	DeviceConfig *simt.Config
	// FaultPlans installs a fault-injection plan per device slot (chaos
	// testing); the key -1 applies to every device without its own entry.
	FaultPlans map[int]*simt.FaultPlan

	// QueueDepth bounds the admission queue; a full queue sheds with 429
	// (default 64).
	QueueDepth int
	// DefaultDeadline applies when a request does not set deadline_ms
	// (default 2s); MaxDeadline caps client-requested deadlines (default
	// 30s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// CyclesPerSecond converts wall-clock deadline budget into a per-launch
	// simt.LaunchOpts.MaxCycles clamp (default 25e6: a deliberately slow
	// "service clock" so second-scale deadlines map to meaningful cycle
	// budgets on the simulator).
	CyclesPerSecond int64
	// DefaultK is the virtual-warp width used when a query does not pick
	// one (default 32, the paper's sweet spot for skewed graphs).
	DefaultK int

	// MutateMaxBatch bounds one POST /v1/graphs/{name}/mutate batch
	// (default 4096; negative removes the bound).
	MutateMaxBatch int
	// MutateRebaseThreshold is the streaming-mutation auto-compaction
	// trigger: once a graph's overlay holds more pending operations, it is
	// rebased onto the compacted snapshot (default 1024; negative disables
	// auto-rebase).
	MutateRebaseThreshold int

	// Quota is the per-tenant admission quota table (zero Default.RatePerSec
	// = unlimited).
	Quota QuotaConfig
	// CacheEntries bounds the result cache (default 256; negative disables).
	CacheEntries int
	// BreakerThreshold is the consecutive-failure count that trips a device
	// breaker (default 3; permanent faults trip immediately).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped breaker stays open before
	// half-open probing (default 250ms).
	BreakerCooldown time.Duration
	// RecycleEvery recreates a device after that many served requests,
	// bounding simulator buffer-registry growth in a long-lived daemon
	// (default 512; negative disables).
	RecycleEvery int64
	// Retry is the per-request device retry policy (resilient defaults
	// apply; Launch is overwritten per request with the deadline clamp).
	Retry resilient.Policy
	// TraceSpans bounds the /debug/trace ring (default 2048).
	TraceSpans int
	// Logf receives operational log lines (default log.Printf).
	Logf func(format string, args ...any)

	// now is the clock, injectable for tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Devices == 0 {
		c.Devices = 2
	}
	if c.DeviceConfig == nil {
		cfg := simt.DefaultConfig()
		cfg.ParallelSMs = 1
		c.DeviceConfig = &cfg
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.DefaultDeadline == 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.MaxDeadline == 0 {
		c.MaxDeadline = 30 * time.Second
	}
	if c.CyclesPerSecond == 0 {
		c.CyclesPerSecond = 25_000_000
	}
	if c.DefaultK == 0 {
		c.DefaultK = 32
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MutateMaxBatch == 0 {
		c.MutateMaxBatch = 4096
	}
	if c.MutateRebaseThreshold == 0 {
		c.MutateRebaseThreshold = 1024
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = 250 * time.Millisecond
	}
	if c.RecycleEvery == 0 {
		c.RecycleEvery = 512
	}
	if c.TraceSpans == 0 {
		c.TraceSpans = 2048
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Server is the graph-analytics daemon: a pool of simulated devices behind
// a bounded admission queue, with per-device circuit breakers and a CPU
// oracle of last resort. Create with New, start the pool with Start, mount
// Handler on an http.Server, and stop with Shutdown.
type Server struct {
	cfg     Config
	graphs  *Registry
	met     *serverMetrics
	cache   *resultCache
	quotas  *quotas
	ring    *spanRing
	queue   chan *request
	workers []*deviceWorker

	stop     chan struct{}
	wg       sync.WaitGroup // worker + degrade goroutines
	gate     *drainGate     // tracks requests between admission and reply
	started  atomic.Bool
	draining atomic.Bool
	start    time.Time
}

// drainGate counts in-flight requests and supports a race-free drain: once
// closed, Enter refuses, and the idle channel closes when the last request
// leaves. (A sync.WaitGroup cannot do this: Add concurrent with Wait at
// counter zero is a data race by contract.)
type drainGate struct {
	mu     sync.Mutex
	n      int
	closed bool
	idle   chan struct{}
}

func newDrainGate() *drainGate { return &drainGate{idle: make(chan struct{})} }

// Enter registers one request; false means the gate is closed (draining).
func (g *drainGate) Enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.n++
	return true
}

// Leave unregisters one request.
func (g *drainGate) Leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.closed && g.n == 0 {
		close(g.idle)
	}
}

// Close refuses future Enters and returns a channel that closes once every
// registered request has left.
func (g *drainGate) Close() <-chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed {
		g.closed = true
		if g.n == 0 {
			close(g.idle)
		}
	}
	return g.idle
}

// New builds the server: loads every configured graph and creates the
// device pool. The pool is idle until Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg, err := LoadGraphs(cfg.Graphs)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		graphs: reg,
		quotas: newQuotas(cfg.Quota, cfg.now),
		cache:  newResultCache(cfg.CacheEntries),
		queue:  make(chan *request, cfg.QueueDepth),
		stop:   make(chan struct{}),
		gate:   newDrainGate(),
		start:  cfg.now(),
	}
	s.ring = newSpanRing(cfg.TraceSpans, s.start)
	s.met = newServerMetrics(s)
	for id := 0; id < cfg.Devices; id++ {
		w, err := s.newWorker(id)
		if err != nil {
			return nil, err
		}
		s.workers = append(s.workers, w)
	}
	return s, nil
}

// Start launches the device workers and the oracle-of-last-resort loop.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	for _, w := range s.workers {
		s.wg.Add(1)
		go w.loop()
	}
	s.wg.Add(1)
	go s.degradeLoop()
}

// Shutdown drains gracefully: new requests are refused with 503, admitted
// requests are served to completion, then the pool stops. If ctx expires
// first, still-queued requests are answered 503 and the pool is stopped
// anyway; ctx's error is returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	idle := s.gate.Close()
	if !s.started.Load() {
		return nil
	}
	var err error
	select {
	case <-idle:
	case <-ctx.Done():
		err = ctx.Err()
	}
	close(s.stop)
	// On a forced stop, answer whatever is still queued so no handler
	// blocks forever.
	for {
		select {
		case rq := <-s.queue:
			rq.reply <- &reply{status: http.StatusServiceUnavailable, reason: ReasonDraining, retryAfter: 1}
		default:
			s.wg.Wait()
			return err
		}
	}
}

// healthyDevices counts devices whose breaker is closed.
func (s *Server) healthyDevices() int {
	n := 0
	for _, w := range s.workers {
		if w.brk.State() == breakerClosed {
			n++
		}
	}
	return n
}

// request is one admitted query traveling from handler to worker.
type request struct {
	ctx      context.Context
	algo     string
	graph    *NamedGraph
	src      graph.VertexID
	k        int
	iters    int
	damping  float64
	full     bool
	tenant   string
	cacheKey string // "" = uncacheable
	enqueued time.Time
	reply    chan *reply
}

// reply is the worker's answer. Exactly one reply is sent per admitted
// request (the channel is buffered so workers never block on it).
type reply struct {
	status     int
	resp       *QueryResponse
	reason     string
	retryAfter int // seconds; 0 = no header
}

// QueryRequest is the POST /v1/query body.
type QueryRequest struct {
	// Algo is one of "bfs", "sssp", "pagerank", "cc".
	Algo string `json:"algo"`
	// Graph names a pre-loaded graph.
	Graph string `json:"graph"`
	// Tenant is the quota accounting key (default "anon").
	Tenant string `json:"tenant,omitempty"`
	// Source is the BFS/SSSP source vertex; omitted picks a seed in the
	// graph's largest out-component.
	Source *int32 `json:"source,omitempty"`
	// K is the virtual-warp width (power of two up to the warp width;
	// omitted uses the server default).
	K int `json:"k,omitempty"`
	// Iterations bounds PageRank power iteration (default 20).
	Iterations int `json:"iterations,omitempty"`
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64 `json:"damping,omitempty"`
	// DeadlineMillis is the client's end-to-end budget; the server clamps
	// it to MaxDeadline and propagates it into kernel launch budgets.
	DeadlineMillis int64 `json:"deadline_ms,omitempty"`
	// Full includes the per-vertex output vector in the response.
	Full bool `json:"full,omitempty"`
	// NoCache bypasses the result cache.
	NoCache bool `json:"no_cache,omitempty"`
}

// QueryResponse is the 200 body.
type QueryResponse struct {
	Algo  string `json:"algo"`
	Graph string `json:"graph"`
	Epoch int64  `json:"epoch"`
	// Engine is "gpu", "oracle", or "cache".
	Engine string `json:"engine"`
	// Degraded is true when the device computation failed and the answer
	// came from the CPU oracle.
	Degraded bool `json:"degraded"`
	Cached   bool `json:"cached"`
	// Device is the pool slot that served the query (-1 for oracle/cache).
	Device  int      `json:"device"`
	Retries int      `json:"retries,omitempty"`
	Faults  []string `json:"faults,omitempty"`

	QueueWaitMillis float64 `json:"queue_wait_ms"`
	ExecMillis      float64 `json:"exec_ms"`

	Result ResultPayload `json:"result"`
}

// ResultPayload is the algorithm output. Scalar summaries are always
// present for the relevant algorithm; the per-vertex vector appears only
// with Full.
type ResultPayload struct {
	Iterations int `json:"iterations,omitempty"`
	// BFS
	Depth   int32 `json:"depth,omitempty"`
	Reached int   `json:"reached,omitempty"`
	// SSSP
	MaxFiniteDist int32 `json:"max_finite_dist,omitempty"`
	// CC
	Components int `json:"components,omitempty"`
	// PageRank
	RankSum   float64 `json:"rank_sum,omitempty"`
	TopVertex int32   `json:"top_vertex,omitempty"`
	// SimCycles totals simulated device cycles (0 for oracle answers).
	SimCycles int64 `json:"sim_cycles,omitempty"`

	Levels []int32   `json:"levels,omitempty"`
	Dist   []int32   `json:"dist,omitempty"`
	Labels []int32   `json:"labels,omitempty"`
	Ranks  []float32 `json:"ranks,omitempty"`
}

// MutationSpec is one edge insert or delete in a mutate request. Weight is
// used by inserts only (0 means weight 1); Del selects deletion.
type MutationSpec struct {
	Src    int32 `json:"src"`
	Dst    int32 `json:"dst"`
	Weight int32 `json:"weight,omitempty"`
	Del    bool  `json:"del,omitempty"`
}

// MutateRequest is the POST /v1/graphs/{name}/mutate body.
type MutateRequest struct {
	Mutations []MutationSpec `json:"mutations"`
}

// MutateResponse is the mutate 200 body: the new epoch plus what the batch
// did. Duplicate inserts, deletes of absent edges, and self-loops are
// counted no-ops, not errors (simple-graph semantics); an out-of-range
// endpoint rejects the whole batch with 400 and changes nothing.
type MutateResponse struct {
	Graph    string `json:"graph"`
	Epoch    int64  `json:"epoch"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`

	Inserted      int `json:"inserted"`
	Deleted       int `json:"deleted"`
	DupInserts    int `json:"dup_inserts,omitempty"`
	AbsentDeletes int `json:"absent_deletes,omitempty"`
	SelfLoops     int `json:"self_loops,omitempty"`

	// PendingOps is the overlay size after this batch; Rebased reports that
	// the auto-compaction threshold folded it back into a fresh base.
	PendingOps int  `json:"pending_ops"`
	Rebased    bool `json:"rebased,omitempty"`
	// CacheInvalidated counts the result-cache entries this mutation dropped.
	CacheInvalidated int `json:"cache_invalidated"`
}

// Handler returns the server's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/graphs", s.handleGraphs)
	mux.HandleFunc("POST /v1/graphs/{name}/reload", s.handleReload)
	mux.HandleFunc("POST /v1/graphs/{name}/mutate", s.handleMutate)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /debug/trace", s.handleTrace)
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "maxwarp serve: POST /v1/query, POST /v1/graphs/{name}/mutate, GET /v1/graphs, /healthz, /readyz, /metrics, /debug/trace\n")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

// shed refuses a request with a typed reason, a Retry-After hint, and a
// shed-counter increment.
func (s *Server) shed(w http.ResponseWriter, algo string, status int, reason string, retryAfter int, msg string) {
	s.met.shed.With(reason).Inc()
	s.met.requests.With(orUnknown(algo), strconv.Itoa(status)).Inc()
	w.Header().Set("X-Maxwarp-Reason", reason)
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	writeJSON(w, status, errorBody{Error: msg, Reason: reason})
}

func orUnknown(algo string) string {
	if algo == "" {
		return "unknown"
	}
	return algo
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := s.cfg.now()
	var q QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if !s.started.Load() || !s.gate.Enter() {
		s.shed(w, q.Algo, http.StatusServiceUnavailable, ReasonDraining, 1, "server is draining")
		return
	}
	defer s.gate.Leave()
	rq, status, err := s.admit(&q)
	if err != nil {
		s.met.requests.With(orUnknown(q.Algo), strconv.Itoa(status)).Inc()
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}

	// Quota gate.
	if ok, wait := s.quotas.Admit(rq.tenant); !ok {
		// Ceil to whole seconds, never below 1: Retry-After carries integer
		// seconds, so a sub-second wait must round up to 1 (0 is invalid and
		// clients treat it as "retry immediately", which defeats the quota),
		// while an exact multiple must not gain a spurious extra second.
		after := int((wait + time.Second - 1) / time.Second)
		if after < 1 {
			after = 1
		}
		s.shed(w, q.Algo, http.StatusTooManyRequests, ReasonQuota, after, fmt.Sprintf("tenant %q over quota", rq.tenant))
		return
	}

	// Deadline.
	deadline := s.cfg.DefaultDeadline
	if q.DeadlineMillis > 0 {
		deadline = time.Duration(q.DeadlineMillis) * time.Millisecond
		if deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()
	rq.ctx = ctx

	// Result cache.
	if rq.cacheKey != "" {
		if hit, ok := s.cache.Get(rq.cacheKey); ok {
			s.met.cacheHits.Inc()
			resp := &QueryResponse{
				Algo: rq.algo, Graph: rq.graph.Name, Epoch: rq.graph.Epoch,
				Engine: "cache", Cached: true, Device: -1,
				Result: *hit.payload,
			}
			s.finish(w, rq, t0, &reply{status: http.StatusOK, resp: resp})
			return
		}
		s.met.cacheMisses.Inc()
	}

	// Bounded admission queue: full = shed, never block the handler.
	rq.enqueued = s.cfg.now()
	select {
	case s.queue <- rq:
	default:
		s.shed(w, rq.algo, http.StatusTooManyRequests, ReasonQueueFull, 1, "admission queue full")
		return
	}
	rep := <-rq.reply
	s.finish(w, rq, t0, rep)
}

// admit validates the query and resolves it against the graph registry.
func (s *Server) admit(q *QueryRequest) (*request, int, error) {
	switch q.Algo {
	case "bfs", "sssp", "pagerank", "cc":
	default:
		return nil, http.StatusBadRequest, fmt.Errorf("unknown algo %q (want bfs|sssp|pagerank|cc)", q.Algo)
	}
	ng, ok := s.graphs.Get(q.Graph)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown graph %q", q.Graph)
	}
	rq := &request{
		algo:    q.Algo,
		graph:   ng,
		k:       q.K,
		iters:   q.Iterations,
		damping: q.Damping,
		full:    q.Full,
		tenant:  q.Tenant,
		reply:   make(chan *reply, 1),
	}
	if rq.tenant == "" {
		rq.tenant = "anon"
	}
	if rq.k == 0 {
		rq.k = s.cfg.DefaultK
	}
	if rq.k < 1 || rq.k&(rq.k-1) != 0 || rq.k > s.cfg.DeviceConfig.WarpWidth {
		return nil, http.StatusBadRequest, fmt.Errorf("k=%d: want a power of two in [1,%d]", rq.k, s.cfg.DeviceConfig.WarpWidth)
	}
	if rq.iters == 0 {
		rq.iters = 20
	}
	if rq.iters < 1 || rq.iters > 1000 {
		return nil, http.StatusBadRequest, fmt.Errorf("iterations=%d: want [1,1000]", rq.iters)
	}
	if rq.damping == 0 {
		rq.damping = 0.85
	}
	if rq.damping <= 0 || rq.damping >= 1 {
		return nil, http.StatusBadRequest, fmt.Errorf("damping=%g: want (0,1)", rq.damping)
	}
	if q.Source != nil {
		src := *q.Source
		if src < 0 || int(src) >= ng.G.NumVertices() {
			return nil, http.StatusBadRequest, fmt.Errorf("source=%d out of range [0,%d)", src, ng.G.NumVertices())
		}
		rq.src = src
	} else {
		rq.src = ng.DefaultSource()
	}
	if !q.NoCache {
		rq.cacheKey = fmt.Sprintf("%s|%d|%s|src=%d|k=%d|it=%d|d=%g|full=%v",
			ng.Name, ng.Epoch, rq.algo, rq.src, rq.k, rq.iters, rq.damping, rq.full)
	}
	return rq, http.StatusOK, nil
}

// finish writes the worker's reply and records metrics and a trace span.
func (s *Server) finish(w http.ResponseWriter, rq *request, t0 time.Time, rep *reply) {
	now := s.cfg.now()
	code := rep.status
	s.met.requests.With(rq.algo, strconv.Itoa(code)).Inc()
	span := Span{
		Algo: rq.algo, Graph: rq.graph.Name, Tenant: rq.tenant,
		Code: code, Device: -1, Start: t0,
	}
	if rep.resp != nil {
		rep.resp.QueueWaitMillis = roundMs(rep.resp.QueueWaitMillis)
		span.Engine = rep.resp.Engine
		span.Device = rep.resp.Device
		span.QueueWait = time.Duration(rep.resp.QueueWaitMillis * float64(time.Millisecond))
		span.Start = now.Add(-time.Duration(rep.resp.ExecMillis * float64(time.Millisecond)))
		span.Exec = now.Sub(span.Start)
		s.met.latency.With(rq.algo).Observe(now.Sub(t0).Microseconds())
		if rep.resp.Degraded {
			w.Header().Set("X-Maxwarp-Degraded", "true")
		}
		writeJSON(w, code, rep.resp)
	} else {
		s.met.shed.With(rep.reason).Inc()
		w.Header().Set("X-Maxwarp-Reason", rep.reason)
		if rep.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(rep.retryAfter))
		}
		writeJSON(w, code, errorBody{Error: "request shed", Reason: rep.reason})
	}
	s.ring.Add(span)
}

func roundMs(ms float64) float64 { return float64(int64(ms*1000)) / 1000 }

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	type graphInfo struct {
		Name     string `json:"name"`
		Epoch    int64  `json:"epoch"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}
	var out []graphInfo
	for _, name := range s.graphs.Names() {
		ng, _ := s.graphs.Get(name)
		out = append(out, graphInfo{Name: ng.Name, Epoch: ng.Epoch, Vertices: ng.G.NumVertices(), Edges: ng.G.NumEdges()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	ng, err := s.graphs.Reload(name)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	s.cfg.Logf("serve: reloaded graph %q (epoch %d, |V|=%d, |E|=%d)", name, ng.Epoch, ng.G.NumVertices(), ng.G.NumEdges())
	writeJSON(w, http.StatusOK, map[string]any{"name": ng.Name, "epoch": ng.Epoch})
}

// handleMutate applies one batch of streaming edge mutations to a named
// graph: the batch lands in the graph's overlay, the overlay is compacted
// into a fresh immutable snapshot at the next epoch, and exactly that
// graph's result-cache entries are dropped. Mutations respect the drain
// gate (503/draining is the only 5xx) but bypass the admission queue — they
// touch no device, only the registry lock.
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var mq MutateRequest
	if err := json.NewDecoder(r.Body).Decode(&mq); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad request body: " + err.Error()})
		return
	}
	if !s.started.Load() || !s.gate.Enter() {
		s.shed(w, "mutate", http.StatusServiceUnavailable, ReasonDraining, 1, "server is draining")
		return
	}
	defer s.gate.Leave()
	if len(mq.Mutations) == 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "mutate: empty mutation batch"})
		return
	}
	if s.cfg.MutateMaxBatch > 0 && len(mq.Mutations) > s.cfg.MutateMaxBatch {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error: fmt.Sprintf("mutate: batch of %d exceeds limit %d", len(mq.Mutations), s.cfg.MutateMaxBatch),
		})
		return
	}
	batch := make([]graph.EdgeMutation, len(mq.Mutations))
	for i, m := range mq.Mutations {
		batch[i] = graph.EdgeMutation{Src: m.Src, Dst: m.Dst, Weight: m.Weight, Del: m.Del}
	}
	res, err := s.graphs.Mutate(name, batch, s.cfg.MutateRebaseThreshold)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	invalidated := s.cache.InvalidatePrefix(name + "|")
	s.met.mutations.With(name).Inc()
	s.met.mutatedEdges.Add(int64(res.Stats.Inserted + res.Stats.Deleted))
	s.met.cacheInvalidated.Add(int64(invalidated))
	s.cfg.Logf("serve: mutated graph %q: +%d/-%d edges (epoch %d, |E|=%d, pending %d, rebased=%v, %d cache entries dropped)",
		name, res.Stats.Inserted, res.Stats.Deleted, res.Graph.Epoch, res.Graph.G.NumEdges(), res.PendingOps, res.Rebased, invalidated)
	writeJSON(w, http.StatusOK, MutateResponse{
		Graph:    name,
		Epoch:    res.Graph.Epoch,
		Vertices: res.Graph.G.NumVertices(),
		Edges:    res.Graph.G.NumEdges(),

		Inserted:      res.Stats.Inserted,
		Deleted:       res.Stats.Deleted,
		DupInserts:    res.Stats.DupInserts,
		AbsentDeletes: res.Stats.AbsentDeletes,
		SelfLoops:     res.Stats.SelfLoops,

		PendingOps:       res.PendingOps,
		Rebased:          res.Rebased,
		CacheInvalidated: invalidated,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type devHealth struct {
		Device   int    `json:"device"`
		Breaker  string `json:"breaker"`
		Lost     bool   `json:"lost"`
		Served   int64  `json:"served"`
		Recycles int64  `json:"recycles"`
	}
	devs := make([]devHealth, 0, len(s.workers))
	for _, wk := range s.workers {
		devs = append(devs, devHealth{
			Device: wk.id, Breaker: wk.brk.State().String(),
			Lost: wk.lost.Load(), Served: wk.served.Load(), Recycles: wk.recycled.Load(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"uptime_s":  s.cfg.now().Sub(s.start).Seconds(),
		"draining":  s.draining.Load(),
		"queue":     len(s.queue),
		"devices":   devs,
		"healthy":   s.healthyDevices(),
		"cache_len": s.cache.Len(),
	})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() || !s.started.Load() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": ReasonDraining})
		return
	}
	mode := "full"
	if s.healthyDevices() == 0 {
		// Still ready: the oracle-of-last-resort loop answers queries.
		mode = "degraded-oracle-only"
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "mode": mode, "healthy_devices": s.healthyDevices()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	text, err := s.met.reg.PromText()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, text)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	data, err := s.ring.ChromeTraceJSON()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(data)
}

// launchOpts converts the request's remaining deadline into per-launch
// supervision: MaxCycles clamps a single launch to the wall-clock budget at
// the configured service clock, and OnProgress cancels mid-flight once the
// context expires.
func (s *Server) launchOpts(ctx context.Context) simt.LaunchOpts {
	lo := simt.LaunchOpts{OnProgress: func(int64) error { return ctx.Err() }}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		mc := int64(float64(s.cfg.CyclesPerSecond) * rem.Seconds())
		if mc < 4096 {
			// Floor so a nearly expired deadline still maps to a valid
			// budget; OnProgress fires the actual cancellation.
			mc = 4096
		}
		lo.MaxCycles = mc
	}
	return lo
}

// faultClass buckets a launch error for the faults_total metric.
func faultClass(err error) string {
	var kf *simt.KernelFault
	switch {
	case errors.As(err, &kf):
		return kf.Kind.String()
	case errors.Is(err, simt.ErrDeviceLost):
		return "device_lost"
	case errors.Is(err, simt.ErrLaunchTimeout):
		return "timeout"
	case errors.Is(err, simt.ErrLaunchCancelled):
		return "cancelled"
	default:
		return "other"
	}
}
