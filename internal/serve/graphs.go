// Package serve is the fault-tolerant graph-analytics service layer: a
// stdlib net/http daemon that owns a pool of simulated devices and
// multiplexes concurrent BFS/SSSP/PageRank/CC queries over named pre-loaded
// graphs. Robustness is the point — the package layers a bounded admission
// queue with load shedding, per-tenant token-bucket quotas, request
// deadlines propagated into kernel launch budgets, per-device circuit
// breakers that route around sick devices (degrading to the CPU oracle when
// the whole pool is unhealthy), a result cache keyed by graph epoch, and
// graceful drain on shutdown. See docs/SERVICE.md.
package serve

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
)

// ErrUnknownGraph reports a reload or mutation against a name the registry
// does not hold (the handler maps it to 404, unlike mutation-content errors
// which are the client's fault and map to 400).
var ErrUnknownGraph = errors.New("serve: unknown graph")

// GraphSpec names one graph the server pre-loads at startup: either a
// synthetic preset at a scale, or a DIMACS file.
type GraphSpec struct {
	// Name is the handle queries use.
	Name string
	// Preset is a gengraph preset name ("LiveJournal-like", …); exclusive
	// with File.
	Preset string
	// Scale is the preset size exponent (|V| ≈ 2^Scale).
	Scale int
	// Seed seeds the generator (and the edge-weight synthesis). Zero picks
	// a fixed default so specs stay reproducible.
	Seed uint64
	// File is a DIMACS .gr path to load instead of generating.
	File string
}

// ParseGraphSpec parses the CLI form "name=Preset:scale[:seed]" or
// "name=@file.gr".
func ParseGraphSpec(arg string) (GraphSpec, error) {
	name, rest, ok := strings.Cut(arg, "=")
	if !ok || name == "" || rest == "" {
		return GraphSpec{}, fmt.Errorf("serve: graph spec %q: want name=Preset:scale or name=@file", arg)
	}
	spec := GraphSpec{Name: name}
	if strings.HasPrefix(rest, "@") {
		spec.File = strings.TrimPrefix(rest, "@")
		return spec, nil
	}
	parts := strings.Split(rest, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return GraphSpec{}, fmt.Errorf("serve: graph spec %q: want name=Preset:scale[:seed]", arg)
	}
	spec.Preset = parts[0]
	scale, err := strconv.Atoi(parts[1])
	if err != nil || scale < 1 || scale > 24 {
		return GraphSpec{}, fmt.Errorf("serve: graph spec %q: bad scale %q", arg, parts[1])
	}
	spec.Scale = scale
	if len(parts) == 3 {
		seed, err := strconv.ParseUint(parts[2], 10, 64)
		if err != nil {
			return GraphSpec{}, fmt.Errorf("serve: graph spec %q: bad seed %q", arg, parts[2])
		}
		spec.Seed = seed
	}
	return spec, nil
}

// build materializes the spec. epoch perturbs the seed so Reload produces a
// fresh instance of the same regime.
func (s GraphSpec) build(epoch int64) (*NamedGraph, error) {
	seed := s.Seed
	if seed == 0 {
		seed = 42
	}
	seed += uint64(epoch) * 0x9e3779b9

	var g *graph.CSR
	var weights []int32
	switch {
	case s.File != "":
		f, err := os.Open(s.File)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", s.Name, err)
		}
		defer f.Close()
		g, weights, err = graph.ReadDIMACS(f)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", s.Name, err)
		}
	case s.Preset != "":
		p, err := gengraph.PresetByName(s.Preset)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", s.Name, err)
		}
		g, err = p.Build(s.Scale, seed)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", s.Name, err)
		}
	default:
		return nil, fmt.Errorf("serve: graph %q: spec has neither Preset nor File", s.Name)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("serve: graph %q: %w", s.Name, err)
	}
	if weights == nil {
		weights = gengraph.EdgeWeights(g, 16, seed^0x5bf03635)
	}
	return &NamedGraph{Name: s.Name, Epoch: epoch, G: g, Weights: weights}, nil
}

// NamedGraph is one immutable loaded graph. Reload swaps the whole value,
// so the lazily derived views (default source, symmetrized copy) are
// computed at most once per epoch and never race.
type NamedGraph struct {
	// Name is the registry handle.
	Name string
	// Epoch counts reloads; it is part of every cache key, so a reload
	// implicitly invalidates stale cached results.
	Epoch int64
	// G is the graph in CSR form.
	G *graph.CSR
	// Weights are per-edge weights for SSSP (generated when the source had
	// none).
	Weights []int32

	srcOnce sync.Once
	src     graph.VertexID
	symOnce sync.Once
	sym     *graph.CSR
	symErr  error
}

// DefaultSource returns the query source used when the client does not pick
// one: a seed inside the largest out-component, so BFS/SSSP reach a
// meaningful fraction of the graph.
func (ng *NamedGraph) DefaultSource() graph.VertexID {
	ng.srcOnce.Do(func() { ng.src = graph.LargestOutComponentSeed(ng.G) })
	return ng.src
}

// Sym returns the symmetrized view used by connected components, computed
// once per epoch.
func (ng *NamedGraph) Sym() (*graph.CSR, error) {
	ng.symOnce.Do(func() { ng.sym, ng.symErr = ng.G.Symmetrize() })
	return ng.sym, ng.symErr
}

// Registry holds the server's named graphs.
type Registry struct {
	mu     sync.RWMutex
	specs  map[string]GraphSpec
	byName map[string]*NamedGraph
	order  []string
	// deltas holds the streaming-mutation overlay per graph, created lazily
	// on the first Mutate and discarded on Reload. The overlay accumulates
	// batches; each batch is compacted into a fresh immutable NamedGraph so
	// queries never see a half-applied state.
	deltas map[string]*graph.Delta
}

// LoadGraphs builds every spec eagerly so a bad spec fails startup, not the
// first query.
func LoadGraphs(specs []GraphSpec) (*Registry, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no graphs configured")
	}
	r := &Registry{
		specs:  make(map[string]GraphSpec, len(specs)),
		byName: make(map[string]*NamedGraph, len(specs)),
		deltas: make(map[string]*graph.Delta),
	}
	for _, spec := range specs {
		if _, dup := r.specs[spec.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate graph name %q", spec.Name)
		}
		ng, err := spec.build(0)
		if err != nil {
			return nil, err
		}
		r.specs[spec.Name] = spec
		r.byName[spec.Name] = ng
		r.order = append(r.order, spec.Name)
	}
	return r, nil
}

// Get returns the current epoch of the named graph.
func (r *Registry) Get(name string) (*NamedGraph, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ng, ok := r.byName[name]
	return ng, ok
}

// Names lists the registered graphs in declaration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// Reload rebuilds the named graph with a perturbed seed and bumps its
// epoch. In-flight queries keep the epoch they resolved; new queries (and
// the result cache, which keys on epoch) see the fresh graph.
func (r *Registry) Reload(name string) (*NamedGraph, error) {
	r.mu.Lock()
	spec, ok := r.specs[name]
	old := r.byName[name]
	r.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	ng, err := spec.build(old.Epoch + 1)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.byName[name] = ng
	// The reloaded instance is a fresh graph; accumulated mutations do not
	// carry over, so the next Mutate starts a new overlay from it.
	delete(r.deltas, name)
	r.mu.Unlock()
	return ng, nil
}

// MutateResult reports one applied mutation batch: the new immutable graph
// snapshot plus what the batch actually did to the overlay.
type MutateResult struct {
	// Graph is the fresh NamedGraph the registry now serves (epoch bumped).
	Graph *NamedGraph
	// Stats classifies the batch (effective inserts/deletes and no-ops).
	Stats graph.ApplyStats
	// Applied lists only the effective mutations, in batch order.
	Applied []graph.AppliedMutation
	// PendingOps is the overlay size after the batch (0 if it was rebased).
	PendingOps int
	// Rebased is true when the overlay exceeded the auto-compaction
	// threshold and was folded back into a fresh frozen base.
	Rebased bool
	// DeltaEpoch counts applied batches since the overlay was created.
	DeltaEpoch int64
}

// Mutate applies one batch of edge mutations to the named graph's overlay,
// compacts it into a fresh immutable NamedGraph at the next epoch, and swaps
// it in. Whole-batch validation happens first, so a bad mutation leaves both
// the overlay and the served graph untouched. When the overlay's pending-op
// count exceeds rebaseThreshold (>0), it is rebased onto the compacted
// snapshot so per-vertex extension lists stay short under sustained streams.
//
// In-flight queries keep the snapshot they resolved; the caller is
// responsible for dropping that graph's result-cache entries.
func (r *Registry) Mutate(name string, batch []graph.EdgeMutation, rebaseThreshold int) (*MutateResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownGraph, name)
	}
	dl, ok := r.deltas[name]
	if !ok {
		var err error
		dl, err = graph.NewDelta(old.G, old.Weights)
		if err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", name, err)
		}
		r.deltas[name] = dl
	}
	applied, stats, err := dl.Apply(batch)
	if err != nil {
		return nil, fmt.Errorf("serve: graph %q: %w", name, err)
	}
	g, w, err := dl.Compact()
	if err != nil {
		return nil, fmt.Errorf("serve: graph %q: %w", name, err)
	}
	rebased := false
	if rebaseThreshold > 0 && dl.PendingOps() > rebaseThreshold {
		if err := dl.Rebase(); err != nil {
			return nil, fmt.Errorf("serve: graph %q: %w", name, err)
		}
		rebased = true
	}
	ng := &NamedGraph{Name: name, Epoch: old.Epoch + 1, G: g, Weights: w}
	r.byName[name] = ng
	return &MutateResult{
		Graph:      ng,
		Stats:      stats,
		Applied:    applied,
		PendingOps: dl.PendingOps(),
		Rebased:    rebased,
		DeltaEpoch: dl.Epoch(),
	}, nil
}
