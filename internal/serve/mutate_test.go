package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/graph"
)

func postMutate(t *testing.T, url, name string, ms []MutationSpec) (*http.Response, *MutateResponse) {
	t.Helper()
	body, _ := json.Marshal(MutateRequest{Mutations: ms})
	resp, err := http.Post(url+"/v1/graphs/"+name+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		_ = json.NewDecoder(resp.Body).Decode(&eb)
		t.Logf("mutate %s -> %d (%s)", name, resp.StatusCode, eb.Error)
		return resp, nil
	}
	var mr MutateResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	return resp, &mr
}

func csrHasEdge(g *graph.CSR, u, v int32) bool {
	for p := g.RowPtr[u]; p < g.RowPtr[u+1]; p++ {
		if g.Col[p] == v {
			return true
		}
	}
	return false
}

// freshMutations finds count absent non-loop edges to insert.
func freshMutations(t *testing.T, g *graph.CSR, count int) []MutationSpec {
	t.Helper()
	n := int32(g.NumVertices())
	var out []MutationSpec
	for u := int32(0); u < n && len(out) < count; u++ {
		for v := int32(0); v < n && len(out) < count; v++ {
			if u != v && !csrHasEdge(g, u, v) {
				out = append(out, MutationSpec{Src: u, Dst: v, Weight: 3})
			}
		}
	}
	if len(out) < count {
		t.Fatalf("graph too dense to find %d fresh edges", count)
	}
	return out
}

// waitForCacheLen polls until the result cache reaches want entries (worker
// goroutines publish the reply before the cache Put lands).
func waitForCacheLen(t *testing.T, s *Server, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.cache.Len() != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.cache.Len(); got != want {
		t.Fatalf("cache length %d, want %d", got, want)
	}
}

func TestMutateBumpsEpochAndServesNewSnapshot(t *testing.T) {
	cfg := testConfig()
	cfg.MutateRebaseThreshold = 2
	s, ts := startTestServer(t, cfg)
	ng0, _ := s.graphs.Get("wiki")
	edges0 := ng0.G.NumEdges()

	ins := freshMutations(t, ng0.G, 3)
	resp, mr := postMutate(t, ts.URL, "wiki", ins)
	if mr == nil {
		t.Fatalf("mutate: %d", resp.StatusCode)
	}
	if mr.Epoch != ng0.Epoch+1 || mr.Inserted != 3 || mr.Edges != edges0+3 {
		t.Fatalf("insert batch: %+v, want epoch %d, 3 inserted, %d edges", mr, ng0.Epoch+1, edges0+3)
	}
	if !mr.Rebased || mr.PendingOps != 0 {
		t.Fatalf("3 pending ops over threshold 2 must auto-rebase: %+v", mr)
	}

	ng1, _ := s.graphs.Get("wiki")
	if ng1.Epoch != ng0.Epoch+1 {
		t.Fatalf("registry epoch %d, want %d", ng1.Epoch, ng0.Epoch+1)
	}
	for _, m := range ins {
		if !csrHasEdge(ng1.G, m.Src, m.Dst) {
			t.Fatalf("inserted edge %d->%d missing from the new snapshot", m.Src, m.Dst)
		}
	}
	if err := ng1.G.Validate(); err != nil {
		t.Fatalf("mutated snapshot invalid: %v", err)
	}

	// Queries run on the new snapshot and agree with the CPU oracle on it.
	_, qr := postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki", Full: true, NoCache: true})
	if qr == nil || qr.Epoch != ng1.Epoch {
		t.Fatalf("post-mutate query: %+v, want epoch %d", qr, ng1.Epoch)
	}
	want := cpualgo.BFSSequential(ng1.G, ng1.DefaultSource())
	for v := range want {
		if qr.Result.Levels[v] != want[v] {
			t.Fatalf("vertex %d: level %d, oracle %d", v, qr.Result.Levels[v], want[v])
		}
	}

	// Deleting the inserted edges restores the original edge count.
	dels := make([]MutationSpec, len(ins))
	for i, m := range ins {
		dels[i] = MutationSpec{Src: m.Src, Dst: m.Dst, Del: true}
	}
	_, mr = postMutate(t, ts.URL, "wiki", dels)
	if mr == nil || mr.Deleted != 3 || mr.Edges != edges0 || mr.Epoch != ng0.Epoch+2 {
		t.Fatalf("delete batch: %+v, want 3 deleted, %d edges, epoch %d", mr, edges0, ng0.Epoch+2)
	}

	// No-op batches still bump the epoch but classify every mutation.
	u, v := ins[0].Src, ins[0].Dst // deleted above, so absent now
	var existing MutationSpec
	for src := int32(0); src < int32(ng0.G.NumVertices()); src++ {
		if ng0.G.RowPtr[src+1] > ng0.G.RowPtr[src] {
			existing = MutationSpec{Src: src, Dst: ng0.G.Col[ng0.G.RowPtr[src]]}
			break
		}
	}
	_, mr = postMutate(t, ts.URL, "wiki", []MutationSpec{
		existing,                    // duplicate insert
		{Src: u, Dst: v, Del: true}, // delete of an absent edge
		{Src: u, Dst: u},            // self-loop
	})
	if mr == nil || mr.Inserted != 0 || mr.Deleted != 0 ||
		mr.DupInserts != 1 || mr.AbsentDeletes != 1 || mr.SelfLoops != 1 {
		t.Fatalf("no-op batch misclassified: %+v", mr)
	}
	if mr.Epoch != ng0.Epoch+3 || mr.Edges != edges0 {
		t.Fatalf("no-op batch: epoch %d edges %d, want %d/%d", mr.Epoch, mr.Edges, ng0.Epoch+3, edges0)
	}
}

func TestMutateInvalidatesOnlyMutatedGraphCacheEntries(t *testing.T) {
	cfg := testConfig()
	cfg.Graphs = append(cfg.Graphs, GraphSpec{Name: "wiki2", Preset: "WikiTalk-like", Scale: 6, Seed: 5})
	s, ts := startTestServer(t, cfg)

	for _, name := range []string{"wiki", "wiki2"} {
		q := QueryRequest{Algo: "bfs", Graph: name}
		postQuery(t, ts.URL, q)
	}
	waitForCacheLen(t, s, 2)

	ng, _ := s.graphs.Get("wiki")
	_, mr := postMutate(t, ts.URL, "wiki", freshMutations(t, ng.G, 1))
	if mr == nil || mr.CacheInvalidated != 1 {
		t.Fatalf("mutate should drop exactly wiki's cache entry: %+v", mr)
	}
	waitForCacheLen(t, s, 1)

	// The untouched graph's entry survives and still serves from cache.
	_, qr := postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki2"})
	if qr == nil || !qr.Cached || qr.Engine != "cache" {
		t.Fatalf("wiki2 entry should have survived the wiki mutation: %+v", qr)
	}
	// The mutated graph recomputes at the new epoch.
	_, qr = postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki"})
	if qr == nil || qr.Cached || qr.Epoch != mr.Epoch {
		t.Fatalf("wiki must recompute at epoch %d: %+v", mr.Epoch, qr)
	}
}

func TestMutateValidation(t *testing.T) {
	cfg := testConfig()
	cfg.MutateMaxBatch = 2
	s, ts := startTestServer(t, cfg)
	ng0, _ := s.graphs.Get("wiki")

	cases := []struct {
		name  string
		graph string
		ms    []MutationSpec
		want  int
	}{
		{"unknown graph", "missing", []MutationSpec{{Src: 0, Dst: 1}}, http.StatusNotFound},
		{"empty batch", "wiki", nil, http.StatusBadRequest},
		{"out of range", "wiki", []MutationSpec{{Src: 0, Dst: 1 << 20}}, http.StatusBadRequest},
		{"negative vertex", "wiki", []MutationSpec{{Src: -1, Dst: 0}}, http.StatusBadRequest},
		{"over batch limit", "wiki", []MutationSpec{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 3}}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postMutate(t, ts.URL, c.graph, c.ms)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// Rejected batches are atomic: nothing changed, no epoch bump.
	ng, _ := s.graphs.Get("wiki")
	if ng.Epoch != ng0.Epoch || ng.G.NumEdges() != ng0.G.NumEdges() {
		t.Fatalf("rejected mutations leaked: epoch %d->%d, edges %d->%d",
			ng0.Epoch, ng.Epoch, ng0.G.NumEdges(), ng.G.NumEdges())
	}

	resp, err := http.Post(ts.URL+"/v1/graphs/wiki/mutate", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON body: %d, want 400", resp.StatusCode)
	}
}

// TestConcurrentMutateAndQueryContract hammers queries and mutations in
// parallel (run under -race): every response must be 200 or 429 while the
// server is live, the only 5xx is 503/draining after shutdown starts, and
// the final snapshot is a valid CSR whose epoch counts the applied batches.
func TestConcurrentMutateAndQueryContract(t *testing.T) {
	cfg := testConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ng0, _ := s.graphs.Get("wiki")
	n := int32(ng0.G.NumVertices())

	type outcome struct {
		kind string
		code int
	}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		results []outcome
	)
	record := func(kind string, code int) {
		mu.Lock()
		results = append(results, outcome{kind, code})
		mu.Unlock()
	}

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			algos := []string{"bfs", "cc", "sssp"}
			for i := 0; i < 5; i++ {
				body, _ := json.Marshal(QueryRequest{Algo: algos[rng.Intn(len(algos))], Graph: "wiki"})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				record("query", resp.StatusCode)
			}
		}(int64(w + 1))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := 0; i < 4; i++ {
				ms := make([]MutationSpec, 5)
				for j := range ms {
					ms[j] = MutationSpec{
						Src: rng.Int31n(n), Dst: rng.Int31n(n),
						Weight: 1 + rng.Int31n(8), Del: rng.Intn(2) == 0,
					}
				}
				body, _ := json.Marshal(MutateRequest{Mutations: ms})
				resp, err := http.Post(ts.URL+"/v1/graphs/wiki/mutate", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				record("mutate", resp.StatusCode)
			}
		}(int64(w))
	}
	wg.Wait()

	mutated := 0
	for _, r := range results {
		switch r.code {
		case http.StatusOK:
			if r.kind == "mutate" {
				mutated++
			}
		case http.StatusTooManyRequests:
			// Shed under load: allowed for queries. In-range mutations never
			// shed — they bypass the admission queue.
			if r.kind == "mutate" {
				t.Errorf("mutate shed with 429")
			}
		default:
			t.Errorf("%s answered %d; want only 200 or 429 while live", r.kind, r.code)
		}
	}
	if mutated != 8 {
		t.Fatalf("%d mutation batches succeeded, want all 8", mutated)
	}

	ng, _ := s.graphs.Get("wiki")
	if err := ng.G.Validate(); err != nil {
		t.Fatalf("final snapshot invalid after concurrent mutations: %v", err)
	}
	if ng.Epoch != ng0.Epoch+int64(mutated) {
		t.Fatalf("epoch %d, want %d (one bump per applied batch)", ng.Epoch, ng0.Epoch+int64(mutated))
	}

	// Draining: mutate and query both refuse with 503/draining — the only
	// 5xx the service ever emits.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, post := range []struct {
		kind, path string
		body       any
	}{
		{"query", "/v1/query", QueryRequest{Algo: "bfs", Graph: "wiki"}},
		{"mutate", "/v1/graphs/wiki/mutate", MutateRequest{Mutations: []MutationSpec{{Src: 0, Dst: 1}}}},
	} {
		body, _ := json.Marshal(post.body)
		resp, err := http.Post(ts.URL+post.path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain: %d, want 503", post.kind, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Maxwarp-Reason"); got != ReasonDraining {
			t.Fatalf("%s drain reason %q, want %q", post.kind, got, ReasonDraining)
		}
	}
}

func TestResultCacheInvalidatePrefix(t *testing.T) {
	c := newResultCache(8)
	p := &ResultPayload{Reached: 1}
	for _, k := range []string{"a|1|bfs", "a|1|cc", "ab|1|bfs", "b|1|bfs"} {
		c.Put(k, cachedResult{payload: p, engine: "gpu"})
	}
	// "a|" must not catch "ab|..." — the separator is part of the prefix.
	if n := c.InvalidatePrefix("a|"); n != 2 {
		t.Fatalf("InvalidatePrefix(a|) removed %d, want 2", n)
	}
	if _, ok := c.Get("ab|1|bfs"); !ok {
		t.Fatal("ab| entry must survive invalidating a|")
	}
	if _, ok := c.Get("b|1|bfs"); !ok {
		t.Fatal("b| entry must survive invalidating a|")
	}
	if _, ok := c.Get("a|1|bfs"); ok {
		t.Fatal("a| entry survived invalidation")
	}
	if c.Len() != 2 {
		t.Fatalf("cache length %d, want 2", c.Len())
	}
	// LRU list and map stay consistent after removal: fill and evict.
	for _, k := range []string{"c", "d", "e", "f", "g", "h", "i", "j"} {
		c.Put(k, cachedResult{payload: p})
	}
	if c.Len() != 8 {
		t.Fatalf("cache length %d after refill, want cap 8", c.Len())
	}
	if n := c.InvalidatePrefix(""); n != 0 {
		t.Fatalf("empty prefix must invalidate nothing, removed %d", n)
	}
}
