package serve

import (
	"math"
	"sync"
	"time"
)

// TenantQuota is a token-bucket rate limit. A zero RatePerSec means
// unlimited.
type TenantQuota struct {
	// RatePerSec is the sustained request rate.
	RatePerSec float64
	// Burst is the bucket capacity (defaults to RatePerSec when zero).
	Burst float64
}

// QuotaConfig assigns token buckets per tenant.
type QuotaConfig struct {
	// Default applies to tenants without an explicit entry.
	Default TenantQuota
	// PerTenant overrides the default for specific tenants.
	PerTenant map[string]TenantQuota
}

// quotas is the admission-control quota table: one lazily created token
// bucket per tenant, refilled continuously.
type quotas struct {
	cfg QuotaConfig
	now func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newQuotas(cfg QuotaConfig, now func() time.Time) *quotas {
	return &quotas{cfg: cfg, now: now, buckets: make(map[string]*tokenBucket)}
}

// Admit spends one token from tenant's bucket. When the bucket is empty it
// returns false plus the wait until the next token accrues, suitable for a
// Retry-After header.
func (q *quotas) Admit(tenant string) (bool, time.Duration) {
	tq, ok := q.cfg.PerTenant[tenant]
	if !ok {
		tq = q.cfg.Default
	}
	if tq.RatePerSec <= 0 {
		return true, 0
	}
	if tq.Burst <= 0 {
		tq.Burst = tq.RatePerSec
	}
	now := q.now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.buckets[tenant]
	if !ok {
		b = &tokenBucket{rate: tq.RatePerSec, burst: tq.Burst, tokens: tq.Burst, last: now}
		q.buckets[tenant] = b
	}
	b.tokens = math.Min(b.burst, b.tokens+now.Sub(b.last).Seconds()*b.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	return false, wait
}
