package serve

import (
	"encoding/json"
	"sync"
	"time"
)

// Span records one served request for /debug/trace: which device (or the
// oracle) ran it, how long it queued, and how long it executed.
type Span struct {
	// Seq is a monotonically increasing sequence number.
	Seq int64
	// Algo, Graph, Tenant identify the request.
	Algo, Graph, Tenant string
	// Code is the HTTP status the request resolved to.
	Code int
	// Engine is "gpu", "oracle", or "cache".
	Engine string
	// Device is the pool slot that served it (-1 for oracle/cache/shed).
	Device int
	// Start is when the span's execution began.
	Start time.Time
	// QueueWait is time spent in the admission queue.
	QueueWait time.Duration
	// Exec is execution time (zero for sheds and cache hits).
	Exec time.Duration
}

// spanRing is a fixed-size ring of the most recent request spans, safe for
// concurrent append from every handler and worker.
type spanRing struct {
	epoch time.Time

	mu   sync.Mutex
	buf  []Span
	next int
	n    int
	seq  int64
}

func newSpanRing(capacity int, epoch time.Time) *spanRing {
	if capacity <= 0 {
		capacity = 1024
	}
	return &spanRing{buf: make([]Span, capacity), epoch: epoch}
}

func (r *spanRing) Add(s Span) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	s.Seq = r.seq
	r.buf[r.next] = s
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// Snapshot returns the retained spans, oldest first.
func (r *spanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Span, 0, r.n)
	start := r.next - r.n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// chromeEvent is one Chrome trace-viewer complete event ("ph":"X").
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// ChromeTraceJSON renders the retained spans in the Chrome trace-event
// format (load via chrome://tracing or Perfetto). Each device is a track
// (tid = device+1); the oracle and cache share track 0. Queue wait is shown
// as a separate event preceding the execution span on the same track.
func (r *spanRing) ChromeTraceJSON() ([]byte, error) {
	spans := r.Snapshot()
	tr := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, 2*len(spans)),
		DisplayTimeUnit: "ms",
		Metadata:        map[string]any{"source": "maxwarp serve /debug/trace"},
	}
	for _, s := range spans {
		tid := s.Device + 1
		if tid < 0 {
			tid = 0
		}
		args := map[string]any{
			"graph":  s.Graph,
			"tenant": s.Tenant,
			"code":   s.Code,
			"engine": s.Engine,
		}
		execStart := s.Start.Sub(r.epoch).Microseconds()
		if s.QueueWait > 0 {
			tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
				Name: s.Algo + " (queued)", Ph: "X",
				Ts:  execStart - s.QueueWait.Microseconds(),
				Dur: s.QueueWait.Microseconds(),
				Pid: 1, Tid: tid,
			})
		}
		tr.TraceEvents = append(tr.TraceEvents, chromeEvent{
			Name: s.Algo, Ph: "X",
			Ts:  execStart,
			Dur: s.Exec.Microseconds(),
			Pid: 1, Tid: tid,
			Args: args,
		})
	}
	return json.Marshal(tr)
}
