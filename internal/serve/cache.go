package serve

import (
	"container/list"
	"strings"
	"sync"
)

// cachedResult is what the result cache stores: the computed payload plus
// which engine produced it. Only clean (non-degraded) results are cached.
type cachedResult struct {
	payload *ResultPayload
	engine  string
}

// resultCache is a small LRU keyed by (graph name, epoch, algo, params).
// Keying on the graph epoch makes reloads self-invalidating: a reload bumps
// the epoch, so every stale entry simply stops being addressable and ages
// out of the LRU.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheItem struct {
	key string
	val cachedResult
}

// newResultCache returns a cache bounded to capacity entries; capacity <= 0
// disables caching (Get always misses, Put drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *resultCache) Get(key string) (cachedResult, bool) {
	if c.cap <= 0 || key == "" {
		return cachedResult{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return cachedResult{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).val, true
}

func (c *resultCache) Put(key string, val cachedResult) {
	if c.cap <= 0 || key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheItem).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
	}
}

// InvalidatePrefix drops every entry whose key starts with prefix and
// returns how many were removed. Mutations call it with "name|": the epoch
// in the key already makes stale results unaddressable, so this is purely
// about reclaiming their LRU slots immediately instead of letting dead
// entries crowd out live ones until they age off the back.
func (c *resultCache) InvalidatePrefix(prefix string) int {
	if c.cap <= 0 || prefix == "" {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
			n++
		}
	}
	return n
}

// Len returns the current entry count.
func (c *resultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
