package serve

import (
	"maxwarp/internal/obs"
)

// serverMetrics is every counter, gauge, and histogram the daemon exposes
// at /metrics. All of them are obs host-side metrics: safe for concurrent
// handlers and workers, rendered through the same report pipeline as the
// simulator's kernel metrics.
type serverMetrics struct {
	reg *obs.HostMetrics

	// requests counts completed requests by algo and HTTP status code.
	requests *obs.HostCounterVec
	// shed counts load-shed requests by reason (queue_full, quota,
	// deadline, draining).
	shed *obs.HostCounterVec
	// degraded counts requests answered by the CPU oracle, by reason
	// ("fault" = this request's device run failed permanently, "pool" =
	// every device breaker was open).
	degraded *obs.HostCounterVec
	// retries totals transient-fault retries across all device runs.
	retries *obs.HostCounter
	// faults counts observed kernel faults by class.
	faults *obs.HostCounterVec
	// cacheHits / cacheMisses drive the cache hit-rate gauge.
	cacheHits, cacheMisses *obs.HostCounter
	// mutations counts applied streaming-mutation batches by graph.
	mutations *obs.HostCounterVec
	// mutatedEdges totals effective edge inserts and deletes applied.
	mutatedEdges *obs.HostCounter
	// cacheInvalidated totals result-cache entries dropped by mutations.
	cacheInvalidated *obs.HostCounter
	// breakerTransitions counts breaker state changes by device and target
	// state.
	breakerTransitions *obs.HostCounterVec
	// breakerState is a per-device gauge: 0 closed, 1 half-open, 2 open.
	breakerState *obs.HostGaugeVec
	// latency is end-to-end request latency in microseconds, by algo.
	latency *obs.HostHistVec
	// queueWait is admission-queue wait in microseconds.
	queueWait *obs.HostHist
	// simCycles totals simulated device cycles by device.
	simCycles *obs.HostCounterVec
	// recycles counts device recreations (periodic recycling plus breaker
	// probes replacing a lost device).
	recycles *obs.HostCounter
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewHostMetrics()
	m := &serverMetrics{
		reg:      reg,
		requests: reg.CounterVec("maxwarp_serve_requests_total", "completed requests by algorithm and HTTP status", "algo", "code"),
		shed:     reg.CounterVec("maxwarp_serve_shed_total", "load-shed requests by reason", "reason"),
		degraded: reg.CounterVec("maxwarp_serve_degraded_total", "requests answered by the CPU oracle, by reason", "reason"),
		retries:  reg.Counter("maxwarp_serve_retries_total", "transient-fault retries across device runs"),
		faults:   reg.CounterVec("maxwarp_serve_faults_total", "kernel faults observed by device runs, by class", "kind"),

		cacheHits:   reg.Counter("maxwarp_serve_cache_hits_total", "result-cache hits"),
		cacheMisses: reg.Counter("maxwarp_serve_cache_misses_total", "result-cache misses"),

		mutations:        reg.CounterVec("maxwarp_serve_mutations_total", "applied streaming-mutation batches by graph", "graph"),
		mutatedEdges:     reg.Counter("maxwarp_serve_mutated_edges_total", "effective edge inserts and deletes applied"),
		cacheInvalidated: reg.Counter("maxwarp_serve_cache_invalidated_total", "result-cache entries dropped by graph mutations"),

		breakerTransitions: reg.CounterVec("maxwarp_serve_breaker_transitions_total", "circuit-breaker state changes", "device", "to"),
		breakerState:       reg.GaugeVec("maxwarp_serve_breaker_state", "per-device breaker state: 0 closed, 1 half-open, 2 open", "device"),

		latency:   reg.HistogramVec("maxwarp_serve_latency_us", "end-to-end request latency (microseconds)", "algo"),
		queueWait: reg.Histogram("maxwarp_serve_queue_wait_us", "admission-queue wait (microseconds)"),
		simCycles: reg.CounterVec("maxwarp_serve_sim_cycles_total", "simulated device cycles by device", "device"),
		recycles:  reg.Counter("maxwarp_serve_device_recycles_total", "device recreations (recycling and post-loss probes)"),
	}
	reg.Gauge("maxwarp_serve_queue_depth", "requests waiting in the admission queue", func() float64 {
		return float64(len(s.queue))
	})
	reg.Gauge("maxwarp_serve_healthy_devices", "devices whose breaker is closed", func() float64 {
		return float64(s.healthyDevices())
	})
	reg.Gauge("maxwarp_serve_cache_hit_ratio", "result-cache hit ratio since start", func() float64 {
		hits, misses := float64(m.cacheHits.Value()), float64(m.cacheMisses.Value())
		if hits+misses == 0 {
			return 0
		}
		return hits / (hits + misses)
	})
	reg.Gauge("maxwarp_serve_draining", "1 while the server is draining", func() float64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	return m
}
