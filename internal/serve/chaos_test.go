package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"maxwarp/internal/report"
	"maxwarp/internal/simt"
)

// The chaos suite: the server under injected device faults and saturation
// must keep its contract — every response is 200 (possibly degraded), 429
// with a reason, or 503 while draining; no panics, no goroutine leaks, and
// 200s stay correct against the CPU oracle.

func TestServerSurvivesDeviceLossAndAborts(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 2
	cfg.FaultPlans = map[int]*simt.FaultPlan{
		// Device 0 dies mid-request, repeatedly (each fresh device gets the
		// plan re-installed, so it keeps dying after every probe/recycle).
		0: {Seed: 11, DeviceLossAfterCycles: 4000},
		// Device 1 throws transient aborts that retries should absorb.
		1: {Seed: 13, AbortEvery: 3},
	}
	cfg.BreakerCooldown = 30 * time.Millisecond
	s, ts := startTestServer(t, cfg)

	// Oracle references for correctness checks.
	ng, _ := s.graphs.Get("wiki")
	oracle := map[string]*ResultPayload{}
	for _, algo := range []string{"bfs", "sssp", "cc"} {
		rq := &request{ctx: context.Background(), algo: algo, graph: ng, src: ng.DefaultSource(), iters: 20, damping: 0.85, full: true}
		p, err := oracleExecute(rq)
		if err != nil {
			t.Fatal(err)
		}
		oracle[algo] = p
	}

	algos := []string{"bfs", "sssp", "cc", "pagerank"}
	const clients, perClient = 6, 5
	var (
		mu        sync.Mutex
		codes     = map[int]int{}
		degraded  int
		badVector string
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				algo := algos[(c+i)%len(algos)]
				body, _ := json.Marshal(QueryRequest{Algo: algo, Graph: "wiki", Full: true, NoCache: true})
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				func() {
					defer resp.Body.Close()
					mu.Lock()
					defer mu.Unlock()
					codes[resp.StatusCode]++
					if resp.StatusCode != http.StatusOK {
						return
					}
					var qr QueryResponse
					if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
						badVector = "200 with undecodable body: " + err.Error()
						return
					}
					if qr.Degraded {
						degraded++
					}
					want := oracle[algo]
					if want == nil {
						return // pagerank: float comparison is covered elsewhere
					}
					var got, exp []int32
					switch algo {
					case "bfs":
						got, exp = qr.Result.Levels, want.Levels
					case "sssp":
						got, exp = qr.Result.Dist, want.Dist
					case "cc":
						got, exp = qr.Result.Labels, want.Labels
					}
					for i := range got {
						if got[i] != exp[i] {
							badVector = algo + ": served result diverges from oracle"
							return
						}
					}
				}()
			}
		}(c)
	}
	wg.Wait()

	if badVector != "" {
		t.Fatal(badVector)
	}
	for code := range codes {
		if code != http.StatusOK && code != http.StatusTooManyRequests {
			t.Fatalf("unexpected status under chaos: %v", codes)
		}
	}
	if codes[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded under chaos: %v", codes)
	}
	if degraded == 0 {
		t.Fatal("device 0 keeps dying: some requests should have degraded to the oracle")
	}

	// The breaker must have visibly tripped for the dying device.
	fams, err := ScrapeMetrics(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_breaker_transitions_total",
		report.Label{Name: "device", Value: "0"}, report.Label{Name: "to", Value: "open"}); !ok || v < 1 {
		t.Fatalf("breaker_transitions{device=0,to=open} = %v, %v; want >= 1", v, ok)
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_degraded_total",
		report.Label{Name: "reason", Value: "fault"}); !ok || v < 1 {
		t.Fatalf("degraded_total{fault} = %v, %v; want >= 1", v, ok)
	}
	if v, ok := report.SampleValue(fams, "maxwarp_serve_device_recycles_total"); !ok || v < 1 {
		t.Fatalf("recycles = %v, %v; lost devices must be replaced", v, ok)
	}
}

func TestWholePoolDownDegradesToOracleLoop(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 1
	// Die almost immediately and on every successor device.
	cfg.FaultPlans = map[int]*simt.FaultPlan{-1: {Seed: 7, DeviceLossAfterCycles: 500}}
	cfg.BreakerCooldown = 200 * time.Millisecond
	_, ts := startTestServer(t, cfg)

	sawPoolDegrade := false
	for i := 0; i < 8; i++ {
		resp, qr := postQuery(t, ts.URL, QueryRequest{Algo: "bfs", Graph: "wiki", NoCache: true})
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d under total pool loss", resp.StatusCode)
		}
		if qr != nil && qr.Degraded && qr.Device == -1 {
			sawPoolDegrade = true
		}
	}
	if !sawPoolDegrade {
		t.Fatal("with every device dying, the oracle-of-last-resort loop should have served something")
	}
	// readyz stays 200 but reports degraded mode once the breaker is open.
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz %d; a degraded pool is still ready", resp.StatusCode)
	}
}

func TestQueueSaturationShedsInsteadOfCollapsing(t *testing.T) {
	cfg := testConfig()
	cfg.Devices = 1
	cfg.QueueDepth = 2
	_, ts := startTestServer(t, cfg)

	const n = 16
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(QueryRequest{Algo: "pagerank", Graph: "wiki", NoCache: true})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}
	wg.Wait()
	close(codes)
	counts := map[int]int{}
	for c := range codes {
		counts[c]++
	}
	if counts[-2] > 0 {
		t.Fatal("429 responses must carry Retry-After")
	}
	if counts[http.StatusOK] == 0 {
		t.Fatalf("saturation starved everyone: %v", counts)
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Fatalf("16 concurrent requests against queue depth 2 never shed: %v", counts)
	}
	for c := range counts {
		if c != http.StatusOK && c != http.StatusTooManyRequests && c != -1 {
			t.Fatalf("unexpected status under saturation: %v", counts)
		}
	}
}

// TestChaosDrainLeavesNoGoroutines serves chaotic traffic, drains, and
// checks the goroutine count returns to its baseline — the leak check for
// workers, the degrade loop, and blocked handlers.
func TestChaosDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	cfg := testConfig()
	cfg.FaultPlans = map[int]*simt.FaultPlan{0: {Seed: 3, DeviceLossAfterCycles: 2000}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			algo := []string{"bfs", "cc", "sssp", "pagerank"}[i%4]
			body, _ := json.Marshal(QueryRequest{Algo: algo, Graph: "wiki", NoCache: true})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}(i)
	}
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	ts.Close()

	// Goroutine counts settle asynchronously (http keep-alives, timers).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines: %d before, %d after drain\n%s", before, runtime.NumGoroutine(), buf[:n])
}
