package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Binary format: magic, version, |V|, |E|, then RowPtr and Col as
// little-endian int32. Compact, mmap-friendly, and versioned so future layout
// changes fail loudly instead of silently misreading.
const (
	binaryMagic   = 0x43535247 // "GRSC" little-endian-ish tag
	binaryVersion = 1
)

// WriteBinary serializes g to w in the repo's binary CSR format.
func WriteBinary(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	hdr := []uint32{binaryMagic, binaryVersion, uint32(g.NumVertices()), uint32(g.NumEdges())}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return fmt.Errorf("graph: writing header: %w", err)
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.RowPtr); err != nil {
		return fmt.Errorf("graph: writing row pointers: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Col); err != nil {
		return fmt.Errorf("graph: writing columns: %w", err)
	}
	return bw.Flush()
}

// ReadBinary deserializes a CSR written by WriteBinary and validates it.
func ReadBinary(r io.Reader) (*CSR, error) {
	br := bufio.NewReader(r)
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(br, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("graph: reading header: %w", err)
		}
	}
	if hdr[0] != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %#x", hdr[0])
	}
	if hdr[1] != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported version %d", hdr[1])
	}
	numV, numE := int(hdr[2]), int(hdr[3])
	g := &CSR{
		RowPtr: make([]int32, numV+1),
		Col:    make([]VertexID, numE),
	}
	if err := binary.Read(br, binary.LittleEndian, &g.RowPtr); err != nil {
		return nil, fmt.Errorf("graph: reading row pointers: %w", err)
	}
	if err := binary.Read(br, binary.LittleEndian, &g.Col); err != nil {
		return nil, fmt.Errorf("graph: reading columns: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: loaded graph invalid: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes g as one "src dst" pair per line, the common exchange
// format for SNAP-style datasets. A leading comment records |V| so the file
// round-trips isolated vertices.
func WriteEdgeList(w io.Writer, g *CSR) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# vertices %d edges %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return err
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(VertexID(v)) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a whitespace-separated edge list. Lines starting with
// '#' or '%' are comments; a "# vertices N ..." comment fixes |V|, otherwise
// |V| is max endpoint + 1.
func ReadEdgeList(r io.Reader) (*CSR, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges []Edge
	numV := -1
	maxID := VertexID(-1)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line[0] == '#' || line[0] == '%' {
			fields := strings.Fields(line)
			for i := 0; i+1 < len(fields); i++ {
				if fields[i] == "vertices" {
					if n, err := strconv.Atoi(fields[i+1]); err == nil {
						numV = n
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 'src dst', got %q", lineNo, line)
		}
		s, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source: %w", lineNo, err)
		}
		d, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad destination: %w", lineNo, err)
		}
		if s < 0 || d < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		e := Edge{VertexID(s), VertexID(d)}
		if e.Src > maxID {
			maxID = e.Src
		}
		if e.Dst > maxID {
			maxID = e.Dst
		}
		edges = append(edges, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: scanning edge list: %w", err)
	}
	if numV < 0 {
		numV = int(maxID) + 1
	}
	if int(maxID) >= numV {
		return nil, fmt.Errorf("graph: edge endpoint %d exceeds declared vertex count %d", maxID, numV)
	}
	if numV < 0 {
		return nil, errors.New("graph: empty edge list with no vertex count")
	}
	return FromEdges(numV, edges)
}
