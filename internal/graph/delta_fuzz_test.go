package graph

import (
	"testing"
)

// FuzzDeltaApply drives a Delta with an arbitrary mutation stream (duplicate
// inserts, self-loops, deletes of absent edges, interleaved insert/delete of
// the same edge, occasional out-of-range vertices, interleaved Rebase calls)
// and checks it against a trivial map-based reference model: the live edge
// sets and weights must always agree, overlay invariants must hold
// (Delta.Validate), and Compact must emit a CSR passing graph.Validate with
// canonically sorted adjacency.
func FuzzDeltaApply(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x81, 0x12, 0x23, 0x00})
	f.Add([]byte{0x02, 0x34, 0x84, 0x21, 0xff, 0x40, 0x13})
	f.Add([]byte{})
	f.Add([]byte{0x81, 0x01, 0x01, 0x01, 0x81, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 6
		base, err := FromEdgesSimple(n, []Edge{
			{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 0}, {4, 5}, {5, 1},
		})
		if err != nil {
			t.Fatalf("FromEdgesSimple: %v", err)
		}
		baseW := []int32{3, 1, 4, 1, 5, 9, 2}
		d, err := NewDelta(base, baseW)
		if err != nil {
			t.Fatalf("NewDelta: %v", err)
		}

		// Reference model: live edge -> weight.
		type edge struct{ u, v VertexID }
		model := map[edge]int32{}
		for u := 0; u < n; u++ {
			for p := base.RowPtr[u]; p < base.RowPtr[u+1]; p++ {
				model[edge{VertexID(u), base.Col[p]}] = baseW[p]
			}
		}

		check := func(when string) {
			if err := d.Validate(); err != nil {
				t.Fatalf("%s: Validate: %v", when, err)
			}
			if d.NumEdges() != len(model) {
				t.Fatalf("%s: NumEdges = %d, model has %d", when, d.NumEdges(), len(model))
			}
			got := map[edge]int32{}
			for v := 0; v < n; v++ {
				d.OutNeighborsLive(VertexID(v), func(u VertexID, w int32) bool {
					got[edge{VertexID(v), u}] = w
					return true
				})
			}
			if len(got) != len(model) {
				t.Fatalf("%s: iterated %d edges, model has %d", when, len(got), len(model))
			}
			for e, w := range model {
				if gw, ok := got[e]; !ok || gw != w {
					t.Fatalf("%s: edge %v model weight %d, delta %d,%v", when, e, w, gw, ok)
				}
				if !d.HasEdge(e.u, e.v) {
					t.Fatalf("%s: HasEdge(%d,%d) = false, model says live", when, e.u, e.v)
				}
			}
			g, w, err := d.Compact()
			if err != nil {
				t.Fatalf("%s: Compact: %v", when, err)
			}
			if err := g.Validate(); err != nil {
				t.Fatalf("%s: compacted CSR invalid: %v", when, err)
			}
			if g.NumEdges() != len(model) || len(w) != len(model) {
				t.Fatalf("%s: compacted %d edges / %d weights, model %d", when, g.NumEdges(), len(w), len(model))
			}
			for v := 0; v < n; v++ {
				for p := g.RowPtr[v] + 1; p < g.RowPtr[v+1]; p++ {
					if g.Col[p-1] >= g.Col[p] {
						t.Fatalf("%s: compacted adjacency of %d not strictly sorted", when, v)
					}
				}
				for p := g.RowPtr[v]; p < g.RowPtr[v+1]; p++ {
					mw, ok := model[edge{VertexID(v), g.Col[p]}]
					if !ok || mw != w[p] {
						t.Fatalf("%s: compacted edge (%d,%d) weight %d, model %d,%v", when, v, g.Col[p], w[p], mw, ok)
					}
				}
			}
		}

		// Decode the byte stream into batches of mutations. Each op byte:
		// bit 7 = delete, low bits pick src/dst; a 0xF0-prefixed byte forces
		// an out-of-range vertex (whole-batch rejection path); a batch closes
		// every 4 ops; every third batch boundary also exercises Rebase.
		var batch []EdgeMutation
		var wantErr bool
		batches := 0
		epoch := d.Epoch()
		flush := func() {
			if len(batch) == 0 {
				return
			}
			snapshot := append([]EdgeMutation(nil), batch...)
			applied, stats, err := d.Apply(snapshot)
			if wantErr {
				if err == nil {
					t.Fatalf("Apply with out-of-range vertex succeeded: %v", snapshot)
				}
				if d.Epoch() != epoch {
					t.Fatalf("failed Apply bumped epoch %d -> %d", epoch, d.Epoch())
				}
			} else {
				if err != nil {
					t.Fatalf("Apply(%v): %v", snapshot, err)
				}
				epoch++
				if d.Epoch() != epoch {
					t.Fatalf("epoch = %d, want %d", d.Epoch(), epoch)
				}
				// Replay into the model and cross-check stats/applied.
				effective := 0
				for _, m := range snapshot {
					if m.Src == m.Dst {
						continue
					}
					e := edge{m.Src, m.Dst}
					_, live := model[e]
					if m.Del {
						if live {
							delete(model, e)
							effective++
						}
					} else if !live {
						w := m.Weight
						if w == 0 {
							w = 1
						}
						model[e] = w
						effective++
					}
				}
				if len(applied) != effective {
					t.Fatalf("applied %d changes, model says %d: %v", len(applied), effective, snapshot)
				}
				if stats.Inserted+stats.Deleted != effective {
					t.Fatalf("stats %+v, model says %d effective", stats, effective)
				}
			}
			batch = batch[:0]
			wantErr = false
			batches++
			check("after batch")
			if batches%3 == 0 {
				if err := d.Rebase(); err != nil {
					t.Fatalf("Rebase: %v", err)
				}
				if d.Epoch() != epoch {
					t.Fatalf("Rebase changed epoch to %d, want %d", d.Epoch(), epoch)
				}
				check("after rebase")
			}
		}
		for i := 0; i+1 < len(data); i += 2 {
			op, pick := data[i], data[i+1]
			m := EdgeMutation{
				Src:    VertexID(int(pick>>4) % n),
				Dst:    VertexID(int(pick&0x0f) % n),
				Weight: int32(op&0x3f) + 1,
				Del:    op&0x80 != 0,
			}
			if op&0x7f == 0x70 { // rare: force an out-of-range vertex
				m.Dst = VertexID(n + int(pick&0x0f))
				wantErr = true
			}
			batch = append(batch, m)
			if len(batch) == 4 {
				flush()
			}
		}
		flush()
		check("final")
	})
}
