package graph

import "sort"

// Relabel returns a copy of g with vertex ids permuted: newID[v] is the new
// id of old vertex v. The permutation must be a bijection on [0, |V|).
// Adjacency lists of the result are sorted.
func Relabel(g *CSR, newID []VertexID) (*CSR, error) {
	n := g.NumVertices()
	if err := checkPermutation(newID, n); err != nil {
		return nil, err
	}
	edges := make([]Edge, 0, g.NumEdges())
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			edges = append(edges, Edge{Src: newID[v], Dst: newID[w]})
		}
	}
	out, err := FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	out.SortNeighbors()
	return out, nil
}

func checkPermutation(p []VertexID, n int) error {
	if len(p) != n {
		return errPermutation(len(p), n)
	}
	seen := make([]bool, n)
	for _, id := range p {
		if id < 0 || int(id) >= n || seen[id] {
			return errPermutation(len(p), n)
		}
		seen[id] = true
	}
	return nil
}

type permError struct{ got, want int }

func errPermutation(got, want int) error { return permError{got, want} }

func (e permError) Error() string {
	return "graph: relabeling is not a permutation of the vertex set"
}

// DegreeSortPermutation returns the permutation that relabels vertices in
// descending out-degree order (ties by original id), as old→new ids.
// Grouping similar-degree vertices into consecutive ids gives each warp of a
// thread-per-vertex kernel near-uniform work — a classic preprocessing
// counterpart to the paper's runtime techniques.
func DegreeSortPermutation(g *CSR) []VertexID {
	n := g.NumVertices()
	order := make([]VertexID, n)
	for i := range order {
		order[i] = VertexID(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	newID := make([]VertexID, n)
	for rank, old := range order {
		newID[old] = VertexID(rank)
	}
	return newID
}

// SortByDegree relabels g in descending-degree order, returning the new
// graph and the old→new permutation (so results can be mapped back). A
// malformed input graph is reported as an error, never a panic.
func SortByDegree(g *CSR) (*CSR, []VertexID, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	perm := DegreeSortPermutation(g)
	out, err := Relabel(g, perm)
	if err != nil {
		return nil, nil, err
	}
	return out, perm, nil
}
