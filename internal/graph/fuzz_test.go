package graph

import (
	"bytes"
	"strings"
	"testing"
)

// The fuzz targets pin the package's no-panic contract: arbitrary untrusted
// input to the parsers and constructors must come back as an error (or a
// Validate-clean graph), never as a panic. Under plain `go test` these run
// over the seed corpus; `go test -fuzz FuzzReadDIMACS ./internal/graph`
// explores further.

func FuzzReadDIMACS(f *testing.F) {
	f.Add("")
	f.Add("c comment only\n")
	f.Add("p sp 3 2\na 1 2 5\na 2 3 7\n")
	f.Add("p sp 3 2\na 1 2 5\n")        // fewer arcs than declared
	f.Add("p sp 3 2\na 1 9 5\na 0 1 1") // endpoints out of range
	f.Add("p sp -1 -1\n")
	f.Add("p sp 99999999999999999999 1\n") // overflows int
	f.Add("a 1 2 3\np sp 2 1\n")           // arc before header
	f.Add("p sp 2 1\na 1 2\n")             // missing weight
	f.Add("p sp 2 1\na one two three\n")
	f.Add("p sp 2 2\na 1 2 1\na 1 2 1\n") // duplicate arcs
	f.Add("p sp 1 0\n\n\nc\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, weights, err := ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		if g == nil {
			t.Fatal("nil graph with nil error")
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails Validate: %v", verr)
		}
		if len(weights) != g.NumEdges() {
			t.Fatalf("%d weights for %d edges", len(weights), g.NumEdges())
		}
		// A parsed graph must survive a write/re-read round trip.
		var buf bytes.Buffer
		if werr := WriteDIMACS(&buf, g, weights); werr != nil {
			t.Fatalf("re-serialize: %v", werr)
		}
		if _, _, rerr := ReadDIMACS(&buf); rerr != nil {
			t.Fatalf("round trip: %v", rerr)
		}
	})
}

func FuzzFromEdges(f *testing.F) {
	f.Add(3, []byte{0, 1, 1, 2})
	f.Add(0, []byte{})
	f.Add(1, []byte{0, 0})
	f.Add(2, []byte{0, 255, 7, 1}) // out-of-range endpoints
	f.Add(-1, []byte{1, 2})
	f.Add(256, []byte{5, 5, 5, 5, 3})
	f.Fuzz(func(t *testing.T, numVertices int, raw []byte) {
		if numVertices > 1<<16 {
			numVertices %= 1 << 16
		}
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			// Bias endpoints so some land in range and some out.
			edges = append(edges, Edge{
				Src: VertexID(int(raw[i]) - 8),
				Dst: VertexID(int(raw[i+1]) - 8),
			})
		}
		g, err := FromEdges(numVertices, edges)
		if err == nil {
			if verr := g.Validate(); verr != nil {
				t.Fatalf("accepted graph fails Validate: %v", verr)
			}
			if g.NumEdges() != len(edges) {
				t.Fatalf("%d edges in, %d out", len(edges), g.NumEdges())
			}
		}
		gs, err := FromEdgesSimple(numVertices, edges)
		if err == nil {
			if verr := gs.Validate(); verr != nil {
				t.Fatalf("accepted simple graph fails Validate: %v", verr)
			}
		}
	})
}
