package graph

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"maxwarp/internal/xrand"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := randomGraph(4, 60, 400)
	r := xrand.New(9)
	weights := make([]int32, g.NumEdges())
	for i := range weights {
		weights[i] = 1 + r.Int32n(100)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, weights); err != nil {
		t.Fatal(err)
	}
	g2, w2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g2.RowPtr, g.RowPtr) || !reflect.DeepEqual(g2.Col, g.Col) {
		t.Fatal("graph changed in round trip")
	}
	if !reflect.DeepEqual(w2, weights) {
		t.Fatal("weights changed in round trip")
	}
}

func TestWriteDIMACSValidation(t *testing.T) {
	g := randomGraph(1, 5, 10)
	if err := WriteDIMACS(&bytes.Buffer{}, g, []int32{1}); err == nil {
		t.Fatal("short weights accepted")
	}
}

func TestReadDIMACSParsing(t *testing.T) {
	good := `c a comment
p sp 3 2
a 1 2 5
a 2 3 7
`
	g, w, err := ReadDIMACS(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if w[0] != 5 || w[1] != 7 {
		t.Fatalf("weights %v", w)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges wrong")
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"a 1 2 3\n",                     // arc before header
		"p sp 2\n",                      // short header
		"p tw 2 1\na 1 2 3\n",           // wrong problem type
		"p sp 2 1\np sp 2 1\na 1 2 3\n", // duplicate header
		"p sp 2 1\na 0 2 3\n",           // 0-based endpoint
		"p sp 2 1\na 1 3 3\n",           // endpoint beyond V
		"p sp 2 2\na 1 2 3\n",           // arc count mismatch
		"p sp 2 1\na 1 2\n",             // short arc
		"p sp 2 1\na x 2 3\n",           // non-numeric
		"p sp 2 1\nz 1 2 3\n",           // unknown record
		"",                              // empty
	}
	for _, in := range cases {
		if _, _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
