package graph

import (
	"fmt"
	"sort"
)

// InducedSubgraph returns the subgraph induced by the given vertex set
// (edges with both endpoints in the set), with vertices renumbered densely
// in the order given, plus the old→new id map (-1 = dropped).
func InducedSubgraph(g *CSR, vertices []VertexID) (*CSR, []VertexID, error) {
	n := g.NumVertices()
	newID := make([]VertexID, n)
	for i := range newID {
		newID[i] = -1
	}
	for rank, v := range vertices {
		if v < 0 || int(v) >= n {
			return nil, nil, fmt.Errorf("graph: induced vertex %d out of range [0,%d)", v, n)
		}
		if newID[v] != -1 {
			return nil, nil, fmt.Errorf("graph: induced vertex %d listed twice", v)
		}
		newID[v] = VertexID(rank)
	}
	edges := make([]Edge, 0)
	for _, v := range vertices {
		sv := newID[v]
		for _, w := range g.Neighbors(v) {
			if newID[w] != -1 {
				edges = append(edges, Edge{Src: sv, Dst: newID[w]})
			}
		}
	}
	sub, err := FromEdges(len(vertices), edges)
	if err != nil {
		return nil, nil, err
	}
	return sub, newID, nil
}

// LargestWCC returns the vertex set of g's largest weakly connected
// component (smallest-id order). Handy for trimming generated workloads to
// a single component before traversal experiments.
func LargestWCC(g *CSR) ([]VertexID, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, nil
	}
	sym, err := g.Symmetrize()
	if err != nil {
		return nil, err
	}
	visited := make([]bool, n)
	var best []VertexID
	stack := make([]VertexID, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		var comp []VertexID
		visited[s] = true
		stack = append(stack[:0], VertexID(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range sym.Neighbors(v) {
				if !visited[w] {
					visited[w] = true
					stack = append(stack, w)
				}
			}
		}
		if len(comp) > len(best) {
			best = comp
		}
	}
	// Deterministic order.
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	return best, nil
}

// ExtractLargestWCC is LargestWCC + InducedSubgraph in one call.
func ExtractLargestWCC(g *CSR) (*CSR, []VertexID, error) {
	comp, err := LargestWCC(g)
	if err != nil {
		return nil, nil, err
	}
	return InducedSubgraph(g, comp)
}
