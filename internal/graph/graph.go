// Package graph provides the compressed-sparse-row (CSR) graph substrate used
// by every algorithm in this repository.
//
// The CSR layout is the one assumed throughout Hong et al. (PPoPP 2011):
// a row-pointer array R of length |V|+1 and a column-index array C of length
// |E|; the out-neighbors of vertex v are C[R[v]:R[v+1]]. All GPU kernels
// consume exactly these two arrays, so memory-coalescing behaviour in the
// simulator mirrors the paper's.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// VertexID identifies a vertex; 32-bit, matching the paper's GPU kernels.
type VertexID = int32

// Edge is a directed edge in an edge list.
type Edge struct {
	Src, Dst VertexID
}

// CSR is a directed graph in compressed-sparse-row form.
//
// Invariants (checked by Validate):
//   - len(RowPtr) == NumVertices+1
//   - RowPtr[0] == 0, RowPtr is non-decreasing, RowPtr[NumVertices] == len(Col)
//   - every Col value is in [0, NumVertices)
type CSR struct {
	// RowPtr[v] is the offset into Col where v's adjacency list begins.
	RowPtr []int32
	// Col holds the concatenated adjacency lists.
	Col []VertexID
}

// NumVertices returns |V|.
func (g *CSR) NumVertices() int { return len(g.RowPtr) - 1 }

// NumEdges returns |E| (directed edge count).
func (g *CSR) NumEdges() int { return len(g.Col) }

// Degree returns the out-degree of v.
func (g *CSR) Degree(v VertexID) int32 { return g.RowPtr[v+1] - g.RowPtr[v] }

// Neighbors returns the adjacency list of v as a sub-slice of Col.
// The caller must not modify it.
func (g *CSR) Neighbors(v VertexID) []VertexID {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// Validate checks the CSR invariants, returning a descriptive error on the
// first violation.
func (g *CSR) Validate() error {
	if len(g.RowPtr) == 0 {
		return errors.New("graph: empty RowPtr; need at least [0]")
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if g.RowPtr[v+1] < g.RowPtr[v] {
			return fmt.Errorf("graph: RowPtr decreases at %d: %d -> %d", v, g.RowPtr[v], g.RowPtr[v+1])
		}
	}
	if int(g.RowPtr[n]) != len(g.Col) {
		return fmt.Errorf("graph: RowPtr[n] = %d, want len(Col) = %d", g.RowPtr[n], len(g.Col))
	}
	for i, c := range g.Col {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("graph: Col[%d] = %d out of range [0,%d)", i, c, n)
		}
	}
	return nil
}

// FromEdges builds a CSR with numVertices vertices from an arbitrary directed
// edge list. Edges are grouped by source using counting sort, so construction
// is O(V+E). Duplicate edges and self-loops are kept as-is (callers that want
// a simple graph should use FromEdgesSimple).
func FromEdges(numVertices int, edges []Edge) (*CSR, error) {
	if numVertices < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", numVertices)
	}
	if numVertices > math.MaxInt32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds int32", numVertices)
	}
	rowPtr := make([]int32, numVertices+1)
	for _, e := range edges {
		if e.Src < 0 || int(e.Src) >= numVertices {
			return nil, fmt.Errorf("graph: edge source %d out of range [0,%d)", e.Src, numVertices)
		}
		if e.Dst < 0 || int(e.Dst) >= numVertices {
			return nil, fmt.Errorf("graph: edge destination %d out of range [0,%d)", e.Dst, numVertices)
		}
		rowPtr[e.Src+1]++
	}
	for v := 0; v < numVertices; v++ {
		rowPtr[v+1] += rowPtr[v]
	}
	col := make([]VertexID, len(edges))
	cursor := make([]int32, numVertices)
	for _, e := range edges {
		col[rowPtr[e.Src]+cursor[e.Src]] = e.Dst
		cursor[e.Src]++
	}
	g := &CSR{RowPtr: rowPtr, Col: col}
	if err := g.Validate(); err != nil {
		// Construction guarantees the invariants; this is a cheap O(V+E)
		// belt-and-braces check so a bug here can never hand kernels a
		// malformed graph.
		return nil, err
	}
	return g, nil
}

// FromEdgesSimple is FromEdges followed by per-vertex neighbor sorting,
// duplicate removal, and self-loop removal, yielding a simple directed graph.
func FromEdgesSimple(numVertices int, edges []Edge) (*CSR, error) {
	g, err := FromEdges(numVertices, edges)
	if err != nil {
		return nil, err
	}
	g.SortNeighbors()
	return g.removeDupsAndLoops(), nil
}

// SortNeighbors sorts each adjacency list ascending, in place.
func (g *CSR) SortNeighbors() {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		adj := g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
}

// removeDupsAndLoops rebuilds the graph without duplicate edges or self-loops.
// Requires sorted adjacency lists.
func (g *CSR) removeDupsAndLoops() *CSR {
	n := g.NumVertices()
	rowPtr := make([]int32, n+1)
	col := make([]VertexID, 0, len(g.Col))
	for v := 0; v < n; v++ {
		prev := VertexID(-1)
		for _, w := range g.Neighbors(VertexID(v)) {
			if w == VertexID(v) || w == prev {
				continue
			}
			col = append(col, w)
			prev = w
		}
		rowPtr[v+1] = int32(len(col))
	}
	return &CSR{RowPtr: rowPtr, Col: col}
}

// Reverse returns the transpose graph (every edge reversed).
func (g *CSR) Reverse() *CSR {
	n := g.NumVertices()
	rowPtr := make([]int32, n+1)
	for _, w := range g.Col {
		rowPtr[w+1]++
	}
	for v := 0; v < n; v++ {
		rowPtr[v+1] += rowPtr[v]
	}
	col := make([]VertexID, len(g.Col))
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			col[rowPtr[w]+cursor[w]] = VertexID(v)
			cursor[w]++
		}
	}
	return &CSR{RowPtr: rowPtr, Col: col}
}

// Symmetrize returns the undirected closure: for every edge (u,v) both (u,v)
// and (v,u) are present, with duplicates and self-loops removed. A malformed
// input graph (e.g. out-of-range Col entries) is reported as an error, never
// a panic.
func (g *CSR) Symmetrize() (*CSR, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	edges := make([]Edge, 0, 2*len(g.Col))
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			edges = append(edges, Edge{VertexID(v), w}, Edge{w, VertexID(v)})
		}
	}
	return FromEdgesSimple(n, edges)
}

// Clone returns a deep copy of g.
func (g *CSR) Clone() *CSR {
	return &CSR{
		RowPtr: append([]int32(nil), g.RowPtr...),
		Col:    append([]VertexID(nil), g.Col...),
	}
}

// Edges materializes the directed edge list (src-major order).
func (g *CSR) Edges() []Edge {
	out := make([]Edge, 0, len(g.Col))
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(VertexID(v)) {
			out = append(out, Edge{VertexID(v), w})
		}
	}
	return out
}

// HasEdge reports whether the edge (u,v) exists. O(deg(u)) unless neighbors
// are sorted, in which case binary search is used when deg(u) is large.
func (g *CSR) HasEdge(u, v VertexID) bool {
	adj := g.Neighbors(u)
	if len(adj) >= 16 && sort.SliceIsSorted(adj, func(i, j int) bool { return adj[i] < adj[j] }) {
		i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
		return i < len(adj) && adj[i] == v
	}
	for _, w := range adj {
		if w == v {
			return true
		}
	}
	return false
}

// MaxDegreeVertex returns the vertex with the largest out-degree (lowest id
// wins ties) and that degree. For an empty graph it returns (0, 0).
func (g *CSR) MaxDegreeVertex() (VertexID, int32) {
	var best VertexID
	var bestDeg int32 = -1
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		if d := g.Degree(VertexID(v)); d > bestDeg {
			best, bestDeg = VertexID(v), d
		}
	}
	if bestDeg < 0 {
		return 0, 0
	}
	return best, bestDeg
}
