package graph

import (
	"fmt"
	"math"
	"sort"
)

// DegreeStats summarizes a graph's out-degree distribution. The skew captured
// here (CV, Gini, max/avg ratio) is the property that drives every result in
// the paper: warps stall on the heaviest vertex they contain.
type DegreeStats struct {
	NumVertices int
	NumEdges    int
	MinDegree   int32
	MaxDegree   int32
	AvgDegree   float64
	// StdDev is the population standard deviation of out-degrees.
	StdDev float64
	// CV is the coefficient of variation (StdDev/AvgDegree); ~0 for regular
	// graphs, >1 for heavily skewed (power-law) graphs.
	CV float64
	// Gini is the Gini coefficient of the degree distribution in [0,1);
	// 0 means perfectly regular.
	Gini float64
	// P50/P90/P99 are degree percentiles.
	P50, P90, P99 int32
	// ZeroDegree counts vertices with no out-edges.
	ZeroDegree int
}

// Stats computes DegreeStats for g.
func Stats(g *CSR) DegreeStats {
	n := g.NumVertices()
	s := DegreeStats{
		NumVertices: n,
		NumEdges:    g.NumEdges(),
	}
	if n == 0 {
		return s
	}
	degs := make([]int32, n)
	var sum, sumsq float64
	s.MinDegree = math.MaxInt32
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		degs[v] = d
		fd := float64(d)
		sum += fd
		sumsq += fd * fd
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.ZeroDegree++
		}
	}
	s.AvgDegree = sum / float64(n)
	variance := sumsq/float64(n) - s.AvgDegree*s.AvgDegree
	if variance < 0 {
		variance = 0
	}
	s.StdDev = math.Sqrt(variance)
	if s.AvgDegree > 0 {
		s.CV = s.StdDev / s.AvgDegree
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i] < degs[j] })
	pct := func(p float64) int32 {
		i := int(p * float64(n-1))
		return degs[i]
	}
	s.P50, s.P90, s.P99 = pct(0.50), pct(0.90), pct(0.99)
	// Gini over the sorted degrees: G = (2*sum(i*d_i))/(n*sum(d)) - (n+1)/n,
	// with 1-based i.
	if sum > 0 {
		var weighted float64
		for i, d := range degs {
			weighted += float64(i+1) * float64(d)
		}
		s.Gini = 2*weighted/(float64(n)*sum) - float64(n+1)/float64(n)
		if s.Gini < 0 {
			s.Gini = 0
		}
	}
	return s
}

// String renders the stats as a single human-readable line.
func (s DegreeStats) String() string {
	return fmt.Sprintf("V=%d E=%d deg[min=%d avg=%.2f max=%d] cv=%.2f gini=%.2f p99=%d",
		s.NumVertices, s.NumEdges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.CV, s.Gini, s.P99)
}

// DegreeHistogram returns log2-bucketed out-degree counts: bucket i counts
// vertices with degree in [2^i, 2^(i+1)), and bucket -0 (index 0 of the
// returned zero count) is reported separately.
func DegreeHistogram(g *CSR) (zero int, buckets []int) {
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		d := g.Degree(VertexID(v))
		if d == 0 {
			zero++
			continue
		}
		b := 0
		for x := d; x > 1; x >>= 1 {
			b++
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return zero, buckets
}

// ConnectedFrom returns how many vertices are reachable from src (including
// src itself) following directed edges. Used to sanity-check generated
// workloads before timing them.
func ConnectedFrom(g *CSR, src VertexID) int {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	visited := make([]bool, n)
	stack := []VertexID{src}
	visited[src] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !visited[w] {
				visited[w] = true
				stack = append(stack, w)
			}
		}
	}
	return count
}

// LargestOutComponentSeed returns a vertex from which many vertices are
// reachable: it samples a handful of candidate seeds (deterministically) and
// returns the best. Experiments use this so BFS timings exercise most of the
// graph rather than a tiny island.
func LargestOutComponentSeed(g *CSR) VertexID {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	best, bestCount := VertexID(0), -1
	// Candidates: the max-degree vertex plus a deterministic stride sample.
	cands := []VertexID{}
	mv, _ := g.MaxDegreeVertex()
	cands = append(cands, mv)
	step := n/8 + 1
	for v := 0; v < n; v += step {
		cands = append(cands, VertexID(v))
	}
	for _, c := range cands {
		if cnt := ConnectedFrom(g, c); cnt > bestCount {
			best, bestCount = c, cnt
		}
	}
	return best
}
