package graph

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*CSR{
		mustFromEdges(t, 0, nil),
		mustFromEdges(t, 5, []Edge{{0, 1}, {1, 2}, {4, 0}}),
		randomGraph(3, 200, 1500),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("ReadBinary: %v", err)
		}
		if !reflect.DeepEqual(got.RowPtr, g.RowPtr) || !reflect.DeepEqual(got.Col, g.Col) {
			t.Fatal("binary round trip changed graph")
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph file")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid magic, wrong version.
	var buf bytes.Buffer
	g := mustFromEdges(t, 2, []Edge{{0, 1}})
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[4] = 0xFF // clobber version
	if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
		t.Fatal("wrong version accepted")
	}
	// Truncated payload.
	buf.Reset()
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes()[:buf.Len()-2])); err == nil {
		t.Fatal("truncated file accepted")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(5, 50, 300)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() {
		t.Fatalf("vertex count: got %d want %d", got.NumVertices(), g.NumVertices())
	}
	if !reflect.DeepEqual(got.Edges(), g.Edges()) {
		t.Fatal("edge list round trip changed edges")
	}
}

func TestEdgeListRoundTripKeepsIsolatedVertices(t *testing.T) {
	g := mustFromEdges(t, 10, []Edge{{0, 1}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 10 {
		t.Fatalf("isolated vertices lost: V=%d", got.NumVertices())
	}
}

func TestReadEdgeListParsing(t *testing.T) {
	in := `
# a comment
% another comment style
0 1
1 2   extra tokens ignored? no: only first two used
2 0
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("parsed V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0",                 // too few fields
		"a b",               // non-numeric
		"0 x",               // non-numeric dst
		"-1 0",              // negative id
		"# vertices 2\n0 5", // endpoint beyond declared count
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}

func TestReadEdgeListEmpty(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# vertices 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 7 || g.NumEdges() != 0 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errWriteFailed
	}
	n := len(p)
	if n > f.after {
		n = f.after
	}
	f.after -= n
	if n < len(p) {
		return n, errWriteFailed
	}
	return n, nil
}

var errWriteFailed = errors.New("synthetic write failure")

func TestWriteBinaryPropagatesWriteErrors(t *testing.T) {
	g := randomGraph(1, 100, 800)
	for _, budget := range []int{0, 3, 20, 600} {
		if err := WriteBinary(&failingWriter{after: budget}, g); err == nil {
			t.Errorf("budget %d: write failure not reported", budget)
		}
	}
}

func TestWriteEdgeListPropagatesWriteErrors(t *testing.T) {
	g := randomGraph(2, 100, 800)
	if err := WriteEdgeList(&failingWriter{after: 10}, g); err == nil {
		t.Error("edge list write failure not reported")
	}
}
