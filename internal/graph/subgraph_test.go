package graph

import (
	"reflect"
	"testing"
)

func TestInducedSubgraph(t *testing.T) {
	// 0->1->2->3 plus 3->0; induce {1,2,3}: keeps 1->2, 2->3; drops 3->0.
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	sub, newID, err := InducedSubgraph(g, []VertexID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub V=%d E=%d", sub.NumVertices(), sub.NumEdges())
	}
	if newID[0] != -1 || newID[1] != 0 || newID[3] != 2 {
		t.Fatalf("newID = %v", newID)
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("induced edges wrong")
	}
	if sub.HasEdge(2, 0) {
		t.Fatal("dropped edge survived")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}})
	if _, _, err := InducedSubgraph(g, []VertexID{0, 5}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
	if _, _, err := InducedSubgraph(g, []VertexID{0, 0}); err == nil {
		t.Error("duplicate vertex accepted")
	}
	sub, _, err := InducedSubgraph(g, nil)
	if err != nil || sub.NumVertices() != 0 {
		t.Error("empty induced set should yield empty graph")
	}
}

func TestLargestWCC(t *testing.T) {
	// Components: {0,1,2} (directed chain counts weakly), {3,4}, {5}.
	g := mustFromEdges(t, 6, []Edge{{0, 1}, {2, 1}, {3, 4}})
	comp, err := LargestWCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(comp, []VertexID{0, 1, 2}) {
		t.Fatalf("largest WCC = %v", comp)
	}
	empty := mustFromEdges(t, 0, nil)
	if comp, err := LargestWCC(empty); err != nil || comp != nil {
		t.Fatal("empty graph has a component")
	}
}

func TestExtractLargestWCC(t *testing.T) {
	g := mustFromEdges(t, 7, []Edge{{0, 1}, {1, 2}, {2, 0}, {4, 5}})
	sub, newID, err := ExtractLargestWCC(g)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("extracted V=%d E=%d", sub.NumVertices(), sub.NumEdges())
	}
	// Vertices 3..6 dropped except the pair component; 0-2 kept.
	for v := 0; v < 3; v++ {
		if newID[v] == -1 {
			t.Fatalf("kept vertex %d unmapped", v)
		}
	}
	if newID[6] != -1 {
		t.Fatal("isolated vertex mapped")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}
