package graph

import (
	"fmt"
	"sort"
)

// EdgeMutation is one directed edge change in a batch: an insert (Del false)
// or a delete (Del true). Weight rides along for inserts into weighted
// graphs and is ignored for deletes.
type EdgeMutation struct {
	Src, Dst VertexID
	Weight   int32
	Del      bool
}

// AppliedMutation is one *effective* change Apply made: no-op mutations
// (duplicate inserts, deletes of absent edges, self-loops) are filtered out,
// so incremental algorithms can seed their repair frontiers from exactly the
// edges that changed. For a delete, Weight is the weight the edge had.
type AppliedMutation struct {
	Src, Dst VertexID
	Weight   int32
	Del      bool
}

// ApplyStats summarizes one Apply call.
type ApplyStats struct {
	// Inserted and Deleted count effective changes.
	Inserted, Deleted int
	// DupInserts counts inserts of already-live edges (no-ops).
	DupInserts int
	// AbsentDeletes counts deletes of edges that were not live (no-ops).
	AbsentDeletes int
	// SelfLoops counts dropped self-loop mutations (no-ops: the delta
	// maintains a simple directed graph, matching FromEdgesSimple).
	SelfLoops int
}

// extEdge is one inserted edge in a vertex's extension adjacency list.
type extEdge struct {
	dst VertexID
	w   int32
}

// Delta is a batched-mutation overlay over a frozen CSR: edge deletions are
// marks over the base edge array, edge insertions live in per-vertex
// extension adjacency lists, and Compact folds both back into a fresh
// canonical CSR. The overlay keeps the base arrays immutable, so device
// uploads of the base stay valid across batches and incremental algorithms
// can iterate "live" neighbors as (base minus deletion marks) plus
// extension.
//
// The delta maintains a simple directed graph view: inserting an edge that
// is already live is a no-op, deleting an absent edge is a no-op, and
// self-loops are dropped (ApplyStats reports each case). A reverse view
// (in-neighbor iteration) is maintained alongside for pull-style incremental
// algorithms (PageRank, BFS/SSSP orphan detection after deletions).
//
// Delta is not safe for concurrent use; callers serialize Apply/Compact
// against readers (the serve layer snapshots per epoch).
type Delta struct {
	base  *CSR
	baseW []int32 // nil for unweighted graphs

	// del marks deleted base edge positions (indexed like base.Col).
	del []bool
	// delByVertex counts deleted base edges per source vertex, so live
	// out-degrees are O(1).
	delByVertex []int32
	// ext and revExt are the per-vertex insertion adjacency, forward and
	// reverse.
	ext    [][]extEdge
	revExt [][]extEdge
	// extEdges counts live extension edges (both directions agree).
	extEdges int
	// delEdges counts deletion marks set.
	delEdges int

	// revBase is the transpose of base; rev2fwd maps each reverse edge
	// position to its forward position, so deletion marks are shared.
	revBase *CSR
	rev2fwd []int32

	// epoch counts applied batches since NewDelta (Rebase preserves it).
	epoch int64
	// rebases counts Rebase calls (the compaction generation).
	rebases int64
}

// NewDelta wraps base (and optional per-edge weights aligned with base.Col)
// in an empty overlay. The base is validated and must not be mutated by the
// caller afterwards; the weights are copied (re-inserting a deleted base
// edge rewrites its weight slot in place). Construction is O(V+E) (it
// builds the reverse view).
func NewDelta(base *CSR, weights []int32) (*Delta, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if weights != nil && len(weights) != base.NumEdges() {
		return nil, fmt.Errorf("graph: delta weights length %d, want %d edges", len(weights), base.NumEdges())
	}
	n := base.NumVertices()
	d := &Delta{
		base:        base,
		baseW:       append([]int32(nil), weights...),
		del:         make([]bool, base.NumEdges()),
		delByVertex: make([]int32, n),
		ext:         make([][]extEdge, n),
		revExt:      make([][]extEdge, n),
	}
	d.buildReverse()
	return d, nil
}

// buildReverse constructs the transpose of base plus the reverse→forward
// position map that lets both directions share one deletion-mark array.
func (d *Delta) buildReverse() {
	n := d.base.NumVertices()
	rowPtr := make([]int32, n+1)
	for _, w := range d.base.Col {
		rowPtr[w+1]++
	}
	for v := 0; v < n; v++ {
		rowPtr[v+1] += rowPtr[v]
	}
	col := make([]VertexID, len(d.base.Col))
	r2f := make([]int32, len(d.base.Col))
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		for p := d.base.RowPtr[v]; p < d.base.RowPtr[v+1]; p++ {
			w := d.base.Col[p]
			slot := rowPtr[w] + cursor[w]
			col[slot] = VertexID(v)
			r2f[slot] = p
			cursor[w]++
		}
	}
	d.revBase = &CSR{RowPtr: rowPtr, Col: col}
	d.rev2fwd = r2f
}

// NumVertices returns |V| (mutations never change the vertex set).
func (d *Delta) NumVertices() int { return d.base.NumVertices() }

// NumEdges returns the live directed edge count: base edges minus deletion
// marks plus extension edges.
func (d *Delta) NumEdges() int { return d.base.NumEdges() - d.delEdges + d.extEdges }

// Epoch returns the number of batches applied since NewDelta. Rebase keeps
// it, so the epoch identifies the logical graph version, not the physical
// layout.
func (d *Delta) Epoch() int64 { return d.epoch }

// Rebases returns how many times the overlay has been folded into a fresh
// base.
func (d *Delta) Rebases() int64 { return d.rebases }

// PendingOps returns the overlay size: deletion marks plus extension edges.
// Compaction policy keys off this (overlay lookups slow down neighbor
// iteration linearly in the extension length).
func (d *Delta) PendingOps() int { return d.delEdges + d.extEdges }

// Base returns the frozen base CSR. Callers must not mutate it.
func (d *Delta) Base() *CSR { return d.base }

// BaseWeights returns the base per-edge weights (nil for unweighted).
func (d *Delta) BaseWeights() []int32 { return d.baseW }

// Weighted reports whether the delta carries edge weights.
func (d *Delta) Weighted() bool { return d.baseW != nil }

// DelMarks returns the deletion-mark array indexed like base.Col. Callers
// must not mutate it.
func (d *Delta) DelMarks() []bool { return d.del }

// ReverseBase returns the transpose of the base. Callers must not mutate it.
func (d *Delta) ReverseBase() *CSR { return d.revBase }

// ReverseToForward maps each reverse-base edge position to its forward
// position (for sharing deletion marks). Callers must not mutate it.
func (d *Delta) ReverseToForward() []int32 { return d.rev2fwd }

// basePos returns the base.Col position of live edge (u,v), or -1.
func (d *Delta) basePos(u, v VertexID) int32 {
	for p := d.base.RowPtr[u]; p < d.base.RowPtr[u+1]; p++ {
		if d.base.Col[p] == v && !d.del[p] {
			return p
		}
	}
	return -1
}

// deletedBasePos returns the base.Col position of a deleted (u,v) mark, or
// -1.
func (d *Delta) deletedBasePos(u, v VertexID) int32 {
	for p := d.base.RowPtr[u]; p < d.base.RowPtr[u+1]; p++ {
		if d.base.Col[p] == v && d.del[p] {
			return p
		}
	}
	return -1
}

// extPos returns the index of v in u's extension list, or -1.
func (d *Delta) extPos(u, v VertexID) int {
	for i, e := range d.ext[u] {
		if e.dst == v {
			return i
		}
	}
	return -1
}

// HasEdge reports whether directed edge (u,v) is live in the overlay view.
func (d *Delta) HasEdge(u, v VertexID) bool {
	return d.basePos(u, v) >= 0 || d.extPos(u, v) >= 0
}

// EdgeWeight returns the live edge's weight (0 and false if absent or the
// delta is unweighted with no such edge; unweighted live edges report 1).
func (d *Delta) EdgeWeight(u, v VertexID) (int32, bool) {
	if p := d.basePos(u, v); p >= 0 {
		if d.baseW != nil {
			return d.baseW[p], true
		}
		return 1, true
	}
	if i := d.extPos(u, v); i >= 0 {
		return d.ext[u][i].w, true
	}
	return 0, false
}

// LiveOutDegree returns v's live out-degree in O(1).
func (d *Delta) LiveOutDegree(v VertexID) int32 {
	return d.base.Degree(v) - d.delByVertex[v] + int32(len(d.ext[v]))
}

// LiveOutDegrees materializes every vertex's live out-degree.
func (d *Delta) LiveOutDegrees() []int32 {
	n := d.NumVertices()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		out[v] = d.LiveOutDegree(VertexID(v))
	}
	return out
}

// OutNeighborsLive calls f for every live out-neighbor of u (base order
// first, then insertion order); returning false stops early. w is the edge
// weight (1 for unweighted deltas).
func (d *Delta) OutNeighborsLive(u VertexID, f func(v VertexID, w int32) bool) {
	for p := d.base.RowPtr[u]; p < d.base.RowPtr[u+1]; p++ {
		if d.del[p] {
			continue
		}
		wt := int32(1)
		if d.baseW != nil {
			wt = d.baseW[p]
		}
		if !f(d.base.Col[p], wt) {
			return
		}
	}
	for _, e := range d.ext[u] {
		if !f(e.dst, e.w) {
			return
		}
	}
}

// InNeighborsLive calls f for every live in-neighbor of v, via the reverse
// view; returning false stops early.
func (d *Delta) InNeighborsLive(v VertexID, f func(u VertexID, w int32) bool) {
	for p := d.revBase.RowPtr[v]; p < d.revBase.RowPtr[v+1]; p++ {
		fp := d.rev2fwd[p]
		if d.del[fp] {
			continue
		}
		wt := int32(1)
		if d.baseW != nil {
			wt = d.baseW[fp]
		}
		if !f(d.revBase.Col[p], wt) {
			return
		}
	}
	for _, e := range d.revExt[v] {
		if !f(e.dst, e.w) {
			return
		}
	}
}

// ExtCSR materializes the forward extension adjacency as a CSR (plus
// weights), for device upload. O(extension edges + V).
func (d *Delta) ExtCSR() (*CSR, []int32) {
	return packExt(d.ext)
}

// ReverseExtCSR materializes the reverse extension adjacency as a CSR (plus
// weights), for pull-style device kernels.
func (d *Delta) ReverseExtCSR() (*CSR, []int32) {
	return packExt(d.revExt)
}

func packExt(ext [][]extEdge) (*CSR, []int32) {
	n := len(ext)
	rowPtr := make([]int32, n+1)
	total := 0
	for v := 0; v < n; v++ {
		total += len(ext[v])
		rowPtr[v+1] = int32(total)
	}
	col := make([]VertexID, 0, total)
	w := make([]int32, 0, total)
	for v := 0; v < n; v++ {
		for _, e := range ext[v] {
			col = append(col, e.dst)
			w = append(w, e.w)
		}
	}
	return &CSR{RowPtr: rowPtr, Col: col}, w
}

// Apply applies one mutation batch in order and bumps the epoch. Mutations
// referencing out-of-range vertices fail the whole batch before any change
// is made (the overlay is never left half-applied). Unweighted deltas
// force every insert weight to 1, so weight bookkeeping stays consistent.
// The returned AppliedMutation list holds only the effective changes, in
// application order — the repair seeds for incremental algorithms.
func (d *Delta) Apply(batch []EdgeMutation) ([]AppliedMutation, ApplyStats, error) {
	n := d.NumVertices()
	for i, m := range batch {
		if m.Src < 0 || int(m.Src) >= n || m.Dst < 0 || int(m.Dst) >= n {
			return nil, ApplyStats{}, fmt.Errorf("graph: delta mutation %d: edge (%d,%d) out of range [0,%d)", i, m.Src, m.Dst, n)
		}
	}
	var stats ApplyStats
	var applied []AppliedMutation
	for _, m := range batch {
		if m.Src == m.Dst {
			stats.SelfLoops++
			continue
		}
		if m.Del {
			ok, w := d.deleteEdge(m.Src, m.Dst)
			if !ok {
				stats.AbsentDeletes++
				continue
			}
			stats.Deleted++
			applied = append(applied, AppliedMutation{Src: m.Src, Dst: m.Dst, Weight: w, Del: true})
			continue
		}
		w := m.Weight
		if d.baseW == nil || w == 0 {
			w = 1
		}
		if !d.insertEdge(m.Src, m.Dst, w) {
			stats.DupInserts++
			continue
		}
		stats.Inserted++
		applied = append(applied, AppliedMutation{Src: m.Src, Dst: m.Dst, Weight: w})
	}
	d.epoch++
	return applied, stats, nil
}

// insertEdge makes (u,v) live; false if it already was.
func (d *Delta) insertEdge(u, v VertexID, w int32) bool {
	if d.HasEdge(u, v) {
		return false
	}
	// Undelete rather than extend when the base already holds the edge, so
	// interleaved delete/insert of the same edge keeps the overlay small.
	if p := d.deletedBasePos(u, v); p >= 0 {
		d.del[p] = false
		d.delByVertex[u]--
		d.delEdges--
		if d.baseW != nil {
			d.baseW[p] = w
		}
		return true
	}
	d.ext[u] = append(d.ext[u], extEdge{dst: v, w: w})
	d.revExt[v] = append(d.revExt[v], extEdge{dst: u, w: w})
	d.extEdges++
	return true
}

// deleteEdge removes live edge (u,v); false if it was not live. Returns the
// removed weight.
func (d *Delta) deleteEdge(u, v VertexID) (bool, int32) {
	if p := d.basePos(u, v); p >= 0 {
		d.del[p] = true
		d.delByVertex[u]++
		d.delEdges++
		w := int32(1)
		if d.baseW != nil {
			w = d.baseW[p]
		}
		return true, w
	}
	if i := d.extPos(u, v); i >= 0 {
		w := d.ext[u][i].w
		d.ext[u] = append(d.ext[u][:i], d.ext[u][i+1:]...)
		for j, e := range d.revExt[v] {
			if e.dst == u {
				d.revExt[v] = append(d.revExt[v][:j], d.revExt[v][j+1:]...)
				break
			}
		}
		d.extEdges--
		return true, w
	}
	return false, 0
}

// Compact folds the overlay into a fresh canonical CSR (each adjacency list
// sorted ascending) plus aligned weights (nil for unweighted deltas). The
// result depends only on the live edge set, so any two deltas describing
// the same logical graph compact identically — the anchor for the
// differential and metamorphic test harnesses. The delta itself is
// unchanged; use Rebase to also reset the overlay.
func (d *Delta) Compact() (*CSR, []int32, error) {
	n := d.NumVertices()
	rowPtr := make([]int32, n+1)
	col := make([]VertexID, 0, d.NumEdges())
	var weights []int32
	if d.baseW != nil {
		weights = make([]int32, 0, d.NumEdges())
	}
	type adjEntry struct {
		dst VertexID
		w   int32
	}
	var scratch []adjEntry
	for v := 0; v < n; v++ {
		scratch = scratch[:0]
		d.OutNeighborsLive(VertexID(v), func(u VertexID, w int32) bool {
			scratch = append(scratch, adjEntry{dst: u, w: w})
			return true
		})
		sort.Slice(scratch, func(i, j int) bool { return scratch[i].dst < scratch[j].dst })
		for _, e := range scratch {
			col = append(col, e.dst)
			if weights != nil {
				weights = append(weights, e.w)
			}
		}
		rowPtr[v+1] = int32(len(col))
	}
	g := &CSR{RowPtr: rowPtr, Col: col}
	if err := g.Validate(); err != nil {
		return nil, nil, err
	}
	return g, weights, nil
}

// Rebase compacts the overlay into a fresh base and resets the deletion
// marks and extension lists, preserving the epoch. After Rebase the
// physical layout changes (neighbor order is canonicalized), but the
// logical graph is identical — incremental results must not change, which
// the metamorphic suite pins.
func (d *Delta) Rebase() error {
	g, w, err := d.Compact()
	if err != nil {
		return err
	}
	n := g.NumVertices()
	d.base = g
	d.baseW = w
	d.del = make([]bool, g.NumEdges())
	d.delByVertex = make([]int32, n)
	d.ext = make([][]extEdge, n)
	d.revExt = make([][]extEdge, n)
	d.extEdges = 0
	d.delEdges = 0
	d.buildReverse()
	d.rebases++
	return nil
}

// Validate checks the overlay invariants: mark/extension counters match the
// arrays, extension edges are in range, free of duplicates and self-loops,
// never shadow a live base edge, and the forward and reverse extension
// views agree.
func (d *Delta) Validate() error {
	if err := d.base.Validate(); err != nil {
		return fmt.Errorf("graph: delta base: %w", err)
	}
	if len(d.del) != d.base.NumEdges() {
		return fmt.Errorf("graph: delta del marks %d, want %d", len(d.del), d.base.NumEdges())
	}
	n := d.NumVertices()
	delCount := 0
	for v := 0; v < n; v++ {
		perV := int32(0)
		for p := d.base.RowPtr[v]; p < d.base.RowPtr[v+1]; p++ {
			if d.del[p] {
				perV++
				delCount++
			}
		}
		if perV != d.delByVertex[v] {
			return fmt.Errorf("graph: delta delByVertex[%d] = %d, marks say %d", v, d.delByVertex[v], perV)
		}
	}
	if delCount != d.delEdges {
		return fmt.Errorf("graph: delta delEdges = %d, marks say %d", d.delEdges, delCount)
	}
	extCount := 0
	revCount := 0
	for v := 0; v < n; v++ {
		seen := make(map[VertexID]bool, len(d.ext[v]))
		for _, e := range d.ext[v] {
			extCount++
			if e.dst < 0 || int(e.dst) >= n {
				return fmt.Errorf("graph: delta ext[%d] edge to %d out of range", v, e.dst)
			}
			if e.dst == VertexID(v) {
				return fmt.Errorf("graph: delta ext[%d] holds a self-loop", v)
			}
			if seen[e.dst] {
				return fmt.Errorf("graph: delta ext[%d] holds duplicate edge to %d", v, e.dst)
			}
			seen[e.dst] = true
			if d.basePos(VertexID(v), e.dst) >= 0 {
				return fmt.Errorf("graph: delta ext[%d] shadows live base edge to %d", v, e.dst)
			}
			// Forward/reverse agreement.
			found := false
			for _, r := range d.revExt[e.dst] {
				if r.dst == VertexID(v) && r.w == e.w {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: delta ext edge (%d,%d) missing from reverse view", v, e.dst)
			}
		}
		revCount += len(d.revExt[v])
	}
	if extCount != d.extEdges {
		return fmt.Errorf("graph: delta extEdges = %d, lists say %d", d.extEdges, extCount)
	}
	if revCount != extCount {
		return fmt.Errorf("graph: delta reverse ext holds %d edges, forward %d", revCount, extCount)
	}
	return nil
}
