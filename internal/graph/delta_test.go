package graph

import (
	"math/rand"
	"testing"
)

// deltaTestBase builds a small fixed simple digraph:
//
//	0 -> 1, 2
//	1 -> 2
//	2 -> 0, 3
//	3 -> (none)
//	4 -> 0
func deltaTestBase(t *testing.T) *CSR {
	t.Helper()
	g, err := FromEdgesSimple(5, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 0}, {2, 3}, {4, 0},
	})
	if err != nil {
		t.Fatalf("FromEdgesSimple: %v", err)
	}
	return g
}

func sameCSR(a, b *CSR) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for i := range a.RowPtr {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			return false
		}
	}
	return true
}

func sameWeights(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDeltaApplyBasics(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if d.NumEdges() != 6 || d.Epoch() != 0 || d.PendingOps() != 0 {
		t.Fatalf("fresh delta: edges=%d epoch=%d pending=%d", d.NumEdges(), d.Epoch(), d.PendingOps())
	}

	applied, stats, err := d.Apply([]EdgeMutation{
		{Src: 3, Dst: 4},            // new insert
		{Src: 0, Dst: 1},            // duplicate of base edge
		{Src: 3, Dst: 4},            // duplicate of just-inserted edge
		{Src: 2, Dst: 2},            // self-loop, dropped
		{Src: 2, Dst: 3, Del: true}, // live base edge delete
		{Src: 1, Dst: 3, Del: true}, // absent delete
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	want := ApplyStats{Inserted: 1, Deleted: 1, DupInserts: 2, AbsentDeletes: 1, SelfLoops: 1}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	if len(applied) != 2 {
		t.Fatalf("applied = %v, want 2 effective changes", applied)
	}
	if applied[0] != (AppliedMutation{Src: 3, Dst: 4, Weight: 1}) {
		t.Errorf("applied[0] = %+v", applied[0])
	}
	if applied[1] != (AppliedMutation{Src: 2, Dst: 3, Weight: 1, Del: true}) {
		t.Errorf("applied[1] = %+v", applied[1])
	}
	if d.Epoch() != 1 {
		t.Errorf("epoch = %d, want 1", d.Epoch())
	}
	if d.NumEdges() != 6 { // +1 insert, -1 delete
		t.Errorf("live edges = %d, want 6", d.NumEdges())
	}
	if !d.HasEdge(3, 4) || d.HasEdge(2, 3) || d.HasEdge(2, 2) {
		t.Errorf("edge membership wrong after batch")
	}
	if got := d.LiveOutDegree(2); got != 1 {
		t.Errorf("LiveOutDegree(2) = %d, want 1", got)
	}
	if got := d.LiveOutDegree(3); got != 1 {
		t.Errorf("LiveOutDegree(3) = %d, want 1", got)
	}
	if w, ok := d.EdgeWeight(3, 4); !ok || w != 1 {
		t.Errorf("EdgeWeight(3,4) = %d,%v", w, ok)
	}
	if _, ok := d.EdgeWeight(2, 3); ok {
		t.Errorf("EdgeWeight(2,3) should be absent")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDeltaUndeleteKeepsOverlaySmall(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if _, _, err := d.Apply([]EdgeMutation{{Src: 0, Dst: 1, Del: true}}); err != nil {
		t.Fatalf("Apply delete: %v", err)
	}
	if d.PendingOps() != 1 || d.HasEdge(0, 1) {
		t.Fatalf("after delete: pending=%d has=%v", d.PendingOps(), d.HasEdge(0, 1))
	}
	// Re-inserting a deleted base edge must clear the mark, not grow ext.
	if _, _, err := d.Apply([]EdgeMutation{{Src: 0, Dst: 1}}); err != nil {
		t.Fatalf("Apply insert: %v", err)
	}
	if d.PendingOps() != 0 {
		t.Fatalf("after undelete: pending = %d, want 0", d.PendingOps())
	}
	if !d.HasEdge(0, 1) || d.NumEdges() != 6 {
		t.Fatalf("after undelete: has=%v edges=%d", d.HasEdge(0, 1), d.NumEdges())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDeltaInsertThenDeleteExtEdge(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if _, _, err := d.Apply([]EdgeMutation{{Src: 3, Dst: 0}, {Src: 3, Dst: 0, Del: true}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if d.PendingOps() != 0 || d.HasEdge(3, 0) {
		t.Fatalf("insert-then-delete left pending=%d has=%v", d.PendingOps(), d.HasEdge(3, 0))
	}
	g, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !sameCSR(g, d.Base()) {
		t.Fatalf("insert-then-delete is not an identity under Compact")
	}
}

func TestDeltaApplyOutOfRangeAtomic(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	before, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Valid first mutation, invalid second: nothing may be applied.
	_, _, err = d.Apply([]EdgeMutation{{Src: 3, Dst: 0}, {Src: 1, Dst: 99}})
	if err == nil {
		t.Fatalf("Apply with out-of-range vertex succeeded")
	}
	if d.Epoch() != 0 || d.PendingOps() != 0 {
		t.Fatalf("failed Apply mutated state: epoch=%d pending=%d", d.Epoch(), d.PendingOps())
	}
	after, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !sameCSR(before, after) {
		t.Fatalf("failed Apply changed the live edge set")
	}
}

func TestDeltaWeighted(t *testing.T) {
	base := deltaTestBase(t)
	weights := []int32{10, 20, 30, 40, 50, 60}
	callerCopy := append([]int32(nil), weights...)
	d, err := NewDelta(base, weights)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if !d.Weighted() {
		t.Fatalf("Weighted() = false")
	}
	if w, ok := d.EdgeWeight(0, 2); !ok || w != 20 {
		t.Fatalf("EdgeWeight(0,2) = %d,%v want 20", w, ok)
	}
	applied, _, err := d.Apply([]EdgeMutation{
		{Src: 3, Dst: 1, Weight: 7},
		{Src: 0, Dst: 1, Del: true},
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if applied[1].Weight != 10 {
		t.Errorf("delete of (0,1) reported weight %d, want 10", applied[1].Weight)
	}
	if w, ok := d.EdgeWeight(3, 1); !ok || w != 7 {
		t.Errorf("EdgeWeight(3,1) = %d,%v want 7", w, ok)
	}
	// Undelete with a new weight rewrites the slot — in the delta's copy,
	// not the caller's slice.
	if _, _, err := d.Apply([]EdgeMutation{{Src: 0, Dst: 1, Weight: 99}}); err != nil {
		t.Fatalf("Apply undelete: %v", err)
	}
	if w, ok := d.EdgeWeight(0, 1); !ok || w != 99 {
		t.Errorf("EdgeWeight(0,1) after undelete = %d,%v want 99", w, ok)
	}
	if !sameWeights(weights, callerCopy) {
		t.Errorf("delta mutated the caller's weights slice: %v", weights)
	}
	g, gw, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if g.NumEdges() != len(gw) {
		t.Fatalf("compacted weights len %d, edges %d", len(gw), g.NumEdges())
	}
	// Compact must carry the rewritten and the inserted weights.
	dc, err := NewDelta(g, gw)
	if err != nil {
		t.Fatalf("NewDelta(compacted): %v", err)
	}
	if w, _ := dc.EdgeWeight(0, 1); w != 99 {
		t.Errorf("compacted weight(0,1) = %d, want 99", w)
	}
	if w, _ := dc.EdgeWeight(3, 1); w != 7 {
		t.Errorf("compacted weight(3,1) = %d, want 7", w)
	}
}

func TestDeltaCompactCanonical(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if _, _, err := d.Apply([]EdgeMutation{
		{Src: 3, Dst: 2}, {Src: 3, Dst: 0}, {Src: 0, Dst: 2, Del: true},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	g, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// Oracle: rebuild from the live edge list via the canonical constructor.
	var edges []Edge
	for v := 0; v < d.NumVertices(); v++ {
		d.OutNeighborsLive(VertexID(v), func(u VertexID, _ int32) bool {
			edges = append(edges, Edge{Src: VertexID(v), Dst: u})
			return true
		})
	}
	oracle, err := FromEdgesSimple(d.NumVertices(), edges)
	if err != nil {
		t.Fatalf("FromEdgesSimple: %v", err)
	}
	if !sameCSR(g, oracle) {
		t.Fatalf("Compact() != FromEdgesSimple(live edges)\n got %v %v\nwant %v %v", g.RowPtr, g.Col, oracle.RowPtr, oracle.Col)
	}
}

func TestDeltaRebasePreservesGraphAndEpoch(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if _, _, err := d.Apply([]EdgeMutation{
		{Src: 3, Dst: 2}, {Src: 0, Dst: 1, Del: true}, {Src: 4, Dst: 3},
	}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	before, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	epoch := d.Epoch()
	if err := d.Rebase(); err != nil {
		t.Fatalf("Rebase: %v", err)
	}
	if d.Epoch() != epoch {
		t.Errorf("Rebase changed epoch %d -> %d", epoch, d.Epoch())
	}
	if d.Rebases() != 1 {
		t.Errorf("Rebases() = %d, want 1", d.Rebases())
	}
	if d.PendingOps() != 0 {
		t.Errorf("PendingOps after Rebase = %d", d.PendingOps())
	}
	after, _, err := d.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !sameCSR(before, after) {
		t.Fatalf("Rebase changed the logical graph")
	}
	if !sameCSR(d.Base(), before) {
		t.Fatalf("Rebase base != pre-rebase Compact")
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate after Rebase: %v", err)
	}
}

func TestDeltaReverseViewAgrees(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	n := d.NumVertices()
	for batch := 0; batch < 8; batch++ {
		muts := make([]EdgeMutation, 0, 6)
		for i := 0; i < 6; i++ {
			muts = append(muts, EdgeMutation{
				Src: VertexID(rng.Intn(n)),
				Dst: VertexID(rng.Intn(n)),
				Del: rng.Intn(2) == 0,
			})
		}
		if _, _, err := d.Apply(muts); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("Validate: %v", err)
		}
		// Forward and reverse live iteration must describe the same edge set.
		type edge struct{ u, v VertexID }
		fwd := map[edge]int32{}
		rev := map[edge]int32{}
		fwdCount, revCount := 0, 0
		for v := 0; v < n; v++ {
			d.OutNeighborsLive(VertexID(v), func(u VertexID, w int32) bool {
				fwd[edge{VertexID(v), u}] = w
				fwdCount++
				return true
			})
			d.InNeighborsLive(VertexID(v), func(u VertexID, w int32) bool {
				rev[edge{u, VertexID(v)}] = w
				revCount++
				return true
			})
		}
		if fwdCount != d.NumEdges() || revCount != d.NumEdges() {
			t.Fatalf("batch %d: fwd=%d rev=%d live=%d", batch, fwdCount, revCount, d.NumEdges())
		}
		for e, w := range fwd {
			if rw, ok := rev[e]; !ok || rw != w {
				t.Fatalf("batch %d: edge %v fwd weight %d rev %d,%v", batch, e, w, rw, ok)
			}
		}
		// O(1) degrees must match iteration.
		for v := 0; v < n; v++ {
			cnt := int32(0)
			d.OutNeighborsLive(VertexID(v), func(VertexID, int32) bool { cnt++; return true })
			if got := d.LiveOutDegree(VertexID(v)); got != cnt {
				t.Fatalf("batch %d: LiveOutDegree(%d) = %d, iterated %d", batch, v, got, cnt)
			}
		}
	}
}

func TestDeltaEarlyStopIteration(t *testing.T) {
	d, err := NewDelta(deltaTestBase(t), nil)
	if err != nil {
		t.Fatalf("NewDelta: %v", err)
	}
	if _, _, err := d.Apply([]EdgeMutation{{Src: 0, Dst: 3}, {Src: 0, Dst: 4}}); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	seen := 0
	d.OutNeighborsLive(0, func(VertexID, int32) bool { seen++; return seen < 2 })
	if seen != 2 {
		t.Fatalf("early stop visited %d neighbors, want 2", seen)
	}
}
