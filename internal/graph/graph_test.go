package graph

import (
	"reflect"
	"testing"
	"testing/quick"

	"maxwarp/internal/xrand"
)

func mustFromEdges(t *testing.T, n int, edges []Edge) *CSR {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 0}, {0, 3}})
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := g.Degree(0); d != 3 {
		t.Fatalf("Degree(0) = %d, want 3", d)
	}
	if d := g.Degree(2); d != 0 {
		t.Fatalf("Degree(2) = %d, want 0", d)
	}
	g.SortNeighbors()
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1, 2, 3}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
}

func TestFromEdgesPreservesOrderWithinSource(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{1, 2}, {1, 0}, {1, 2}})
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []VertexID{2, 0, 2}) {
		t.Fatalf("Neighbors(1) = %v, want insertion order [2 0 2]", got)
	}
}

func TestFromEdgesRejectsOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 2}}); err == nil {
		t.Fatal("destination out of range accepted")
	}
	if _, err := FromEdges(2, []Edge{{-1, 0}}); err == nil {
		t.Fatal("negative source accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Fatal("negative vertex count accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := mustFromEdges(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph reports V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	v, d := g.MaxDegreeVertex()
	if v != 0 || d != 0 {
		t.Fatalf("MaxDegreeVertex on empty graph: %d, %d", v, d)
	}
}

func TestFromEdgesSimple(t *testing.T) {
	g, err := FromEdgesSimple(3, []Edge{{0, 1}, {0, 1}, {0, 0}, {1, 2}, {1, 2}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Neighbors(0); !reflect.DeepEqual(got, []VertexID{1}) {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if got := g.Neighbors(1); !reflect.DeepEqual(got, []VertexID{0, 2}) {
		t.Fatalf("Neighbors(1) = %v", got)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestReverse(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {3, 2}})
	r := g.Reverse()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	r.SortNeighbors()
	if got := r.Neighbors(2); !reflect.DeepEqual(got, []VertexID{0, 1, 3}) {
		t.Fatalf("reverse Neighbors(2) = %v", got)
	}
	if got := r.Neighbors(0); len(got) != 0 {
		t.Fatalf("reverse Neighbors(0) = %v, want empty", got)
	}
	// Reversing twice restores the edge multiset.
	rr := r.Reverse()
	rr.SortNeighbors()
	gs := g.Clone()
	gs.SortNeighbors()
	if !reflect.DeepEqual(rr.Edges(), gs.Edges()) {
		t.Fatal("double reverse changed the edge multiset")
	}
}

func TestSymmetrize(t *testing.T) {
	g := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 2}})
	s, err := g.Symmetrize()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, e := range s.Edges() {
		if !s.HasEdge(e.Dst, e.Src) {
			t.Fatalf("missing mirror of %v", e)
		}
		if e.Src == e.Dst {
			t.Fatalf("self loop survived symmetrize: %v", e)
		}
	}
	if s.HasEdge(0, 2) {
		t.Fatal("phantom edge 0->2")
	}
}

func TestHasEdgeLongSortedList(t *testing.T) {
	// Degree >= 16 with sorted neighbors exercises the binary-search path.
	edges := make([]Edge, 0, 40)
	for i := int32(1); i <= 40; i++ {
		edges = append(edges, Edge{0, i})
	}
	g := mustFromEdges(t, 41, edges)
	g.SortNeighbors()
	if !g.HasEdge(0, 7) || !g.HasEdge(0, 40) || !g.HasEdge(0, 1) {
		t.Fatal("HasEdge missed an existing edge")
	}
	if g.HasEdge(0, 0) {
		t.Fatal("HasEdge invented an edge")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := mustFromEdges(t, 3, []Edge{{0, 1}, {1, 2}})
	cases := map[string]func(*CSR){
		"rowptr head":      func(g *CSR) { g.RowPtr[0] = 1 },
		"rowptr decrease":  func(g *CSR) { g.RowPtr[1] = 5 },
		"rowptr tail":      func(g *CSR) { g.RowPtr[len(g.RowPtr)-1] = 1 },
		"col out of range": func(g *CSR) { g.Col[0] = 99 },
		"col negative":     func(g *CSR) { g.Col[0] = -1 },
	}
	for name, corrupt := range cases {
		g := good.Clone()
		corrupt(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
	empty := &CSR{}
	if err := empty.Validate(); err == nil {
		t.Error("zero-value CSR validated")
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := mustFromEdges(t, 4, []Edge{{2, 0}, {2, 1}, {2, 3}, {0, 1}})
	v, d := g.MaxDegreeVertex()
	if v != 2 || d != 3 {
		t.Fatalf("MaxDegreeVertex = (%d,%d), want (2,3)", v, d)
	}
}

// propEdges converts quick-generated raw pairs into a valid edge list.
func propEdges(n int, raw []uint32) []Edge {
	if n <= 0 {
		return nil
	}
	edges := make([]Edge, 0, len(raw)/2)
	for i := 0; i+1 < len(raw); i += 2 {
		edges = append(edges, Edge{
			Src: VertexID(raw[i] % uint32(n)),
			Dst: VertexID(raw[i+1] % uint32(n)),
		})
	}
	return edges
}

func TestPropertyCSRInvariants(t *testing.T) {
	f := func(nRaw uint8, raw []uint32) bool {
		n := int(nRaw)%100 + 1
		edges := propEdges(n, raw)
		g, err := FromEdges(n, edges)
		if err != nil {
			return false
		}
		if g.Validate() != nil || g.NumEdges() != len(edges) {
			return false
		}
		// Sum of degrees equals |E|.
		var sum int32
		for v := 0; v < n; v++ {
			sum += g.Degree(VertexID(v))
		}
		return int(sum) == len(edges)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyReversePreservesEdgeCountAndMirrors(t *testing.T) {
	f := func(nRaw uint8, raw []uint32) bool {
		n := int(nRaw)%50 + 1
		g, err := FromEdges(n, propEdges(n, raw))
		if err != nil {
			return false
		}
		r := g.Reverse()
		if r.Validate() != nil || r.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !r.HasEdge(e.Dst, e.Src) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySimpleGraphHasNoDupsOrLoops(t *testing.T) {
	f := func(nRaw uint8, raw []uint32) bool {
		n := int(nRaw)%50 + 1
		g, err := FromEdgesSimple(n, propEdges(n, raw))
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			adj := g.Neighbors(VertexID(v))
			for i, w := range adj {
				if w == VertexID(v) {
					return false
				}
				if i > 0 && adj[i-1] >= w {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectedFrom(t *testing.T) {
	// 0 -> 1 -> 2, isolated 3.
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}})
	if c := ConnectedFrom(g, 0); c != 3 {
		t.Fatalf("ConnectedFrom(0) = %d, want 3", c)
	}
	if c := ConnectedFrom(g, 2); c != 1 {
		t.Fatalf("ConnectedFrom(2) = %d, want 1", c)
	}
	if c := ConnectedFrom(g, 3); c != 1 {
		t.Fatalf("ConnectedFrom(3) = %d, want 1", c)
	}
}

func TestLargestOutComponentSeed(t *testing.T) {
	// Chain 0..9 plus isolated 10..19; any chain-prefix vertex beats isolates.
	edges := make([]Edge, 0, 9)
	for i := int32(0); i < 9; i++ {
		edges = append(edges, Edge{i, i + 1})
	}
	g := mustFromEdges(t, 20, edges)
	seed := LargestOutComponentSeed(g)
	if c := ConnectedFrom(g, seed); c < 5 {
		t.Fatalf("seed %d reaches only %d vertices", seed, c)
	}
}

func randomGraph(seed uint64, n, e int) *CSR {
	r := xrand.New(seed)
	edges := make([]Edge, e)
	for i := range edges {
		edges[i] = Edge{VertexID(r.Intn(n)), VertexID(r.Intn(n))}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

func TestCloneIsDeep(t *testing.T) {
	g := randomGraph(1, 50, 200)
	c := g.Clone()
	c.Col[0] = (c.Col[0] + 1) % 50
	c.RowPtr[1]++
	if g.Col[0] == c.Col[0] && g.RowPtr[1] == c.RowPtr[1] {
		t.Fatal("Clone shares storage with original")
	}
}
