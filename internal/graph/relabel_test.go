package graph

import (
	"testing"
	"testing/quick"
)

func TestRelabelIdentity(t *testing.T) {
	g := randomGraph(1, 30, 120)
	id := make([]VertexID, 30)
	for i := range id {
		id[i] = VertexID(i)
	}
	r, err := Relabel(g, id)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() != g.NumEdges() || r.NumVertices() != g.NumVertices() {
		t.Fatal("identity relabel changed sizes")
	}
	// Same edges modulo neighbor ordering.
	for v := 0; v < 30; v++ {
		if int(r.Degree(VertexID(v))) != int(g.Degree(VertexID(v))) {
			t.Fatalf("degree of %d changed", v)
		}
	}
}

func TestRelabelRejectsBadPermutations(t *testing.T) {
	g := randomGraph(2, 5, 10)
	bad := [][]VertexID{
		{0, 1, 2},             // wrong length
		{0, 1, 2, 3, 3},       // duplicate
		{0, 1, 2, 3, 5},       // out of range
		{-1, 1, 2, 3, 4},      // negative
		{0, 1, 2, 3, 4, 5, 6}, // too long
	}
	for _, p := range bad {
		if _, err := Relabel(g, p); err == nil {
			t.Errorf("permutation %v accepted", p)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%30 + 2
		g := randomGraph(seed, n, n*4)
		perm := DegreeSortPermutation(g)
		r, err := Relabel(g, perm)
		if err != nil || r.Validate() != nil {
			return false
		}
		// Every original edge exists under the new labels and vice versa.
		if r.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			for _, w := range g.Neighbors(VertexID(v)) {
				if !r.HasEdge(perm[v], perm[w]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByDegreeOrdersDegreesDescending(t *testing.T) {
	g := randomGraph(7, 200, 2400)
	sorted, perm, err := SortByDegree(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := checkPermutation(perm, 200); err != nil {
		t.Fatal(err)
	}
	prev := int32(1 << 30)
	for v := 0; v < sorted.NumVertices(); v++ {
		d := sorted.Degree(VertexID(v))
		if d > prev {
			t.Fatalf("degree rose at %d: %d after %d", v, d, prev)
		}
		prev = d
	}
	// Degree multiset preserved.
	if Stats(sorted).MaxDegree != Stats(g).MaxDegree {
		t.Fatal("max degree changed")
	}
	if Stats(sorted).AvgDegree != Stats(g).AvgDegree {
		t.Fatal("avg degree changed")
	}
}

func TestDegreeSortTieBreakIsStable(t *testing.T) {
	// All vertices degree 1: permutation must be the identity.
	edges := []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0}}
	g := mustFromEdges(t, 3, edges)
	perm := DegreeSortPermutation(g)
	for v, id := range perm {
		if int(id) != v {
			t.Fatalf("tie-break not stable: %v", perm)
		}
	}
}
