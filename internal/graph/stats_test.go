package graph

import (
	"math"
	"strings"
	"testing"
)

func TestStatsRegularGraph(t *testing.T) {
	// Directed 4-cycle: every vertex has out-degree exactly 1.
	g := mustFromEdges(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	s := Stats(g)
	if s.NumVertices != 4 || s.NumEdges != 4 {
		t.Fatalf("V/E wrong: %+v", s)
	}
	if s.MinDegree != 1 || s.MaxDegree != 1 || s.AvgDegree != 1 {
		t.Fatalf("degrees wrong: %+v", s)
	}
	if s.CV != 0 || s.Gini > 1e-9 {
		t.Fatalf("regular graph should have zero skew: CV=%f Gini=%f", s.CV, s.Gini)
	}
	if s.P50 != 1 || s.P99 != 1 {
		t.Fatalf("percentiles wrong: %+v", s)
	}
}

func TestStatsStarGraph(t *testing.T) {
	// Star: hub 0 points at 1..99 — extreme skew.
	edges := make([]Edge, 0, 99)
	for i := int32(1); i < 100; i++ {
		edges = append(edges, Edge{0, i})
	}
	g := mustFromEdges(t, 100, edges)
	s := Stats(g)
	if s.MaxDegree != 99 || s.MinDegree != 0 {
		t.Fatalf("star degrees wrong: %+v", s)
	}
	if s.CV < 5 {
		t.Fatalf("star CV should be large, got %f", s.CV)
	}
	if s.Gini < 0.9 {
		t.Fatalf("star Gini should approach 1, got %f", s.Gini)
	}
	if s.ZeroDegree != 99 {
		t.Fatalf("ZeroDegree = %d, want 99", s.ZeroDegree)
	}
}

func TestStatsEmpty(t *testing.T) {
	g := mustFromEdges(t, 0, nil)
	s := Stats(g)
	if s.NumVertices != 0 || s.NumEdges != 0 {
		t.Fatalf("empty stats: %+v", s)
	}
}

func TestStatsAverage(t *testing.T) {
	g := randomGraph(7, 1000, 8000)
	s := Stats(g)
	if math.Abs(s.AvgDegree-8) > 1e-9 {
		t.Fatalf("AvgDegree = %f, want 8", s.AvgDegree)
	}
	if s.StdDev <= 0 {
		t.Fatal("random graph should have positive degree stddev")
	}
}

func TestStatsString(t *testing.T) {
	s := Stats(randomGraph(1, 10, 20))
	str := s.String()
	for _, want := range []string{"V=10", "E=20", "cv="} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() = %q missing %q", str, want)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	// Degrees: v0=1, v1=2, v2=5, v3=0.
	edges := []Edge{{0, 1}, {1, 0}, {1, 2}, {2, 0}, {2, 1}, {2, 3}, {2, 0}, {2, 1}}
	g := mustFromEdges(t, 4, edges)
	zero, buckets := DegreeHistogram(g)
	if zero != 1 {
		t.Fatalf("zero-degree count = %d, want 1", zero)
	}
	// Buckets: [1,2)=1 vertex, [2,4)=1, [4,8)=1.
	want := []int{1, 1, 1}
	if len(buckets) != len(want) {
		t.Fatalf("buckets = %v", buckets)
	}
	for i := range want {
		if buckets[i] != want[i] {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, buckets[i], want[i], buckets)
		}
	}
}

func TestDegreeHistogramTotalsMatch(t *testing.T) {
	g := randomGraph(9, 500, 3000)
	zero, buckets := DegreeHistogram(g)
	total := zero
	for _, b := range buckets {
		total += b
	}
	if total != g.NumVertices() {
		t.Fatalf("histogram totals %d vertices, graph has %d", total, g.NumVertices())
	}
}
