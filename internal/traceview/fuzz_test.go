package traceview

import (
	"bytes"
	"reflect"
	"testing"

	"maxwarp/internal/simt"
)

// FuzzChromeTraceRoundTrip checks the parse→render→parse fixed point on
// arbitrary JSON: anything ParseChromeTrace accepts must re-render to a
// document that parses to the same events and renders identically.
func FuzzChromeTraceRoundTrip(f *testing.F) {
	seed, err := ChromeTrace([]simt.TraceEvent{
		{Kind: simt.TraceLaunchStart, SM: -1, Warp: -1, Block: -1},
		{Kind: simt.TraceInstr, Cycle: 10, SM: 0, Block: 1, Warp: 2, Class: "mem", Issue: 1, Latency: 400, Txns: 7},
		{Kind: simt.TraceBarrierRelease, Cycle: 25, SM: 1, Block: 3, Warp: -1},
		{Kind: simt.TraceLaunchEnd, Cycle: 99, SM: -1, Warp: -1, Block: -1},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"traceEvents":[],"displayTimeUnit":"ns"}`))
	f.Add([]byte(`{"traceEvents":[{"name":"alu","ph":"X","ts":-5,"dur":0,"pid":1,"tid":-3,"args":{"kind":1,"cycle":-5,"sm":-3,"block":0,"warp":-9}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ParseChromeTrace(data)
		if err != nil {
			return
		}
		first, err := ChromeTrace(events)
		if err != nil {
			t.Fatalf("parsed events do not render: %v", err)
		}
		events2, err := ParseChromeTrace(first)
		if err != nil {
			t.Fatalf("rendered trace does not re-parse: %v\nrendered: %s", err, first)
		}
		if !reflect.DeepEqual(events, events2) {
			t.Fatalf("round trip changed events:\n got: %+v\nwant: %+v", events2, events)
		}
		second, err := ChromeTrace(events2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("render/parse is not a fixed point")
		}
	})
}

// TestChromeTraceRoundTripFromEvents is the deterministic companion: every
// TraceEvent field must survive the args payload losslessly.
func TestChromeTraceRoundTripFromEvents(t *testing.T) {
	in := []simt.TraceEvent{
		{Kind: simt.TraceLaunchStart, SM: -1, Warp: -1, Block: -1},
		{Kind: simt.TraceBlockStart, Cycle: 0, SM: 2, Block: 5, Warp: -1},
		{Kind: simt.TraceInstr, Cycle: 3, SM: 0, Block: 0, Warp: 1, Class: "atomic", Issue: 2, Latency: 600, Txns: 3},
		{Kind: simt.TraceInstr, Cycle: 4, SM: 3, Block: 2, Warp: 0, Class: "alu", Issue: 1, Latency: 1},
		{Kind: simt.TraceWarpDone, Cycle: 8, SM: 1, Block: 1, Warp: 2},
		{Kind: simt.TraceLaunchEnd, Cycle: 20, SM: -1, Warp: -1, Block: -1},
	}
	data, err := ChromeTrace(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseChromeTrace(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip changed events:\n got: %+v\nwant: %+v", out, in)
	}
}
