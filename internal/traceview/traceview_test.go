package traceview

import (
	"strings"
	"testing"

	"maxwarp/internal/simt"
)

func capture(t *testing.T) (*simt.RingTracer, *simt.LaunchStats) {
	t.Helper()
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 2
	cfg.MaxWarpsPerSM = 8
	d, err := simt.NewDevice(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := &simt.RingTracer{Cap: 1 << 16}
	d.SetTracer(tr)
	buf := d.AllocI32("buf", 256)
	cnt := d.AllocI32("cnt", 1)
	k := func(w *simt.WarpCtx) {
		tid := w.GlobalThreadIDs()
		w.If(func(l int) bool { return tid[l] < 256 }, func() {
			v := w.VecI32()
			w.LoadI32(buf, tid, v)
			w.AtomicAddI32(cnt, w.ConstI32(0), w.ConstI32(1), nil)
			w.StoreI32(buf, tid, v)
		}, nil)
	}
	stats, err := d.Launch(simt.Grid1D(256, 64), k)
	if err != nil {
		t.Fatal(err)
	}
	return tr, stats
}

func TestSummarizeCountsMatchStats(t *testing.T) {
	tr, stats := capture(t)
	s := Summarize(tr.Events())
	if s.TotalCycles != stats.Cycles {
		t.Fatalf("total cycles %d, stats %d", s.TotalCycles, stats.Cycles)
	}
	var warps int
	for _, sm := range s.PerSM {
		warps += sm.Warps
	}
	if warps != stats.WarpsLaunched {
		t.Fatalf("warps %d, stats %d", warps, stats.WarpsLaunched)
	}
	if s.InstrByClass["atomic"] != stats.AtomicOps {
		t.Fatalf("atomic instrs %d, stats %d", s.InstrByClass["atomic"], stats.AtomicOps)
	}
	// Mem issue accounting uses transactions.
	if s.IssueByClass["mem"]+s.IssueByClass["atomic"] != stats.MemTxns {
		t.Fatalf("mem txns %d, stats %d",
			s.IssueByClass["mem"]+s.IssueByClass["atomic"], stats.MemTxns)
	}
}

func TestSummaryTables(t *testing.T) {
	tr, _ := capture(t)
	tables := Summarize(tr.Events()).Tables()
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	mix := tables[0].Text()
	for _, class := range []string{"alu", "mem", "atomic"} {
		if !strings.Contains(mix, class) {
			t.Fatalf("mix table missing %q:\n%s", class, mix)
		}
	}
	sms := tables[1].Text()
	if !strings.Contains(sms, "SM") {
		t.Fatalf("per-SM table wrong:\n%s", sms)
	}
}

func TestTimelineRendering(t *testing.T) {
	tr, _ := capture(t)
	tl := Timeline(tr.Events(), 40)
	if !strings.Contains(tl, "SM0") || !strings.Contains(tl, "SM1") {
		t.Fatalf("timeline missing SM rows:\n%s", tl)
	}
	if !strings.ContainsAny(tl, ".:#") {
		t.Fatalf("timeline shows no activity:\n%s", tl)
	}
	// Every row is bracketed and equal width.
	var width int
	for _, line := range strings.Split(tl, "\n") {
		if !strings.HasPrefix(line, "SM") {
			continue
		}
		if width == 0 {
			width = len(line)
		} else if len(line) != width {
			t.Fatalf("ragged timeline rows:\n%s", tl)
		}
	}
}

func TestTimelineEmptyTrace(t *testing.T) {
	out := Timeline(nil, 10)
	if !strings.Contains(out, "timeline") {
		t.Fatal("empty trace crashed or rendered nothing")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Events != 0 || len(s.PerSM) != 0 {
		t.Fatalf("empty summary wrong: %+v", s)
	}
	if tables := s.Tables(); len(tables) != 2 {
		t.Fatal("tables missing for empty summary")
	}
}
