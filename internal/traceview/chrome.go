package traceview

// Chrome trace_event JSON export: renders a simt trace as a timeline that
// chrome://tracing / Perfetto can open, with each SM as a thread row.
// Every TraceEvent field rides along in args, so ParseChromeTrace recovers
// the original event stream losslessly — the round-trip property the fuzz
// target checks.

import (
	"encoding/json"
	"fmt"

	"maxwarp/internal/simt"
)

// chromeArgs carries the full simt.TraceEvent through the viewer format.
type chromeArgs struct {
	Kind    int    `json:"kind"`
	Cycle   int64  `json:"cycle"`
	SM      int    `json:"sm"`
	Block   int    `json:"block"`
	Warp    int    `json:"warp"`
	Class   string `json:"class,omitempty"`
	Issue   int64  `json:"issue,omitempty"`
	Latency int64  `json:"latency,omitempty"`
	Txns    int64  `json:"txns,omitempty"`
}

// chromeEvent is one trace_event record. We emit "X" (complete) events:
// ts is the simulated cycle, dur the instruction's latency (min 1 so zero-
// cost markers stay visible), tid the SM id.
type chromeEvent struct {
	Name string     `json:"name"`
	Ph   string     `json:"ph"`
	Ts   int64      `json:"ts"`
	Dur  int64      `json:"dur"`
	Pid  int        `json:"pid"`
	Tid  int        `json:"tid"`
	Args chromeArgs `json:"args"`
}

// chromeDoc is the JSON object format of the trace_event spec.
type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeTrace renders events as Chrome trace_event JSON (object format).
// Cycles map to microsecond ticks 1:1; each SM is a thread of pid 1
// (SM -1 — launch-scoped events — renders as tid 0's markers).
func ChromeTrace(events []simt.TraceEvent) ([]byte, error) {
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ns"}
	for _, e := range events {
		name := e.Kind.String()
		if e.Kind == simt.TraceInstr && e.Class != "" {
			name = e.Class
		}
		dur := e.Latency
		if dur < 1 {
			dur = 1
		}
		tid := e.SM
		if tid < 0 {
			tid = 0
		}
		ts := e.Cycle
		if ts < 0 {
			ts = 0
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: name, Ph: "X", Ts: ts, Dur: dur, Pid: 1, Tid: tid,
			Args: chromeArgs{
				Kind: int(e.Kind), Cycle: e.Cycle, SM: e.SM, Block: e.Block, Warp: e.Warp,
				Class: e.Class, Issue: e.Issue, Latency: e.Latency, Txns: e.Txns,
			},
		})
	}
	return json.MarshalIndent(doc, "", " ")
}

// ParseChromeTrace inverts ChromeTrace: it reads the args payload of each
// record back into a simt.TraceEvent. Records produced by other tools (no
// args payload) decode as zero-valued events rather than erroring, but any
// malformed JSON or an out-of-range event kind is an error.
func ParseChromeTrace(data []byte) ([]simt.TraceEvent, error) {
	var doc chromeDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("traceview: bad chrome trace: %w", err)
	}
	events := make([]simt.TraceEvent, 0, len(doc.TraceEvents))
	for i, ce := range doc.TraceEvents {
		a := ce.Args
		if a.Kind < 0 || a.Kind > int(simt.TraceWarpDone) {
			return nil, fmt.Errorf("traceview: record %d has invalid event kind %d", i, a.Kind)
		}
		events = append(events, simt.TraceEvent{
			Kind: simt.TraceKind(a.Kind), Cycle: a.Cycle, SM: a.SM, Block: a.Block, Warp: a.Warp,
			Class: a.Class, Issue: a.Issue, Latency: a.Latency, Txns: a.Txns,
		})
	}
	return events, nil
}
