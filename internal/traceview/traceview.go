// Package traceview summarizes simt execution traces into tables and a
// text timeline — the debugging/profiling companion to the simulator's
// RingTracer.
package traceview

import (
	"fmt"
	"strings"

	"maxwarp/internal/report"
	"maxwarp/internal/simt"
)

// Summary aggregates one launch's trace.
type Summary struct {
	// TotalCycles is the launch-end cycle (0 if the trace lacks it).
	TotalCycles int64
	// InstrByClass counts instructions per class ("alu", "mem", ...).
	InstrByClass map[string]int64
	// IssueByClass sums issue slots (or transactions for memory classes).
	IssueByClass map[string]int64
	// PerSM aggregates per-SM activity.
	PerSM []SMSummary
	// Events is the total number of trace events seen.
	Events int
}

// SMSummary is one SM's activity.
type SMSummary struct {
	SM           int
	Blocks       int
	Warps        int
	Instrs       int64
	FirstCycle   int64
	LastCycle    int64
	seenAnything bool
}

// Summarize folds a trace event stream into a Summary.
func Summarize(events []simt.TraceEvent) *Summary {
	s := &Summary{
		InstrByClass: map[string]int64{},
		IssueByClass: map[string]int64{},
		Events:       len(events),
	}
	smIndex := map[int]int{}
	getSM := func(id int) *SMSummary {
		if i, ok := smIndex[id]; ok {
			return &s.PerSM[i]
		}
		smIndex[id] = len(s.PerSM)
		s.PerSM = append(s.PerSM, SMSummary{SM: id})
		return &s.PerSM[len(s.PerSM)-1]
	}
	for _, e := range events {
		switch e.Kind {
		case simt.TraceLaunchEnd:
			s.TotalCycles = e.Cycle
		case simt.TraceBlockStart:
			getSM(e.SM).Blocks++
		case simt.TraceWarpDone:
			getSM(e.SM).Warps++
		case simt.TraceInstr:
			s.InstrByClass[e.Class]++
			issue := e.Issue
			if e.Class == "mem" || e.Class == "atomic" {
				issue = e.Txns
			}
			s.IssueByClass[e.Class] += issue
			sm := getSM(e.SM)
			sm.Instrs++
			if !sm.seenAnything || e.Cycle < sm.FirstCycle {
				sm.FirstCycle = e.Cycle
			}
			if e.Cycle > sm.LastCycle {
				sm.LastCycle = e.Cycle
			}
			sm.seenAnything = true
		}
	}
	return s
}

// Tables renders the summary as result tables.
func (s *Summary) Tables() []*report.Table {
	mix := &report.Table{
		ID:      "trace",
		Title:   "instruction mix",
		Columns: []string{"class", "instructions", "issue slots / txns"},
	}
	for _, class := range []string{"alu", "mem", "atomic", "shared", "barrier"} {
		if s.InstrByClass[class] == 0 {
			continue
		}
		mix.AddRow(class, report.I(s.InstrByClass[class]), report.I(s.IssueByClass[class]))
	}
	sms := &report.Table{
		ID:      "trace",
		Title:   fmt.Sprintf("per-SM activity (launch: %d cycles, %d events)", s.TotalCycles, s.Events),
		Columns: []string{"SM", "blocks", "warps", "instructions", "first cycle", "last cycle"},
	}
	for _, sm := range s.PerSM {
		sms.AddRow(report.I(int64(sm.SM)), report.I(int64(sm.Blocks)), report.I(int64(sm.Warps)),
			report.I(sm.Instrs), report.I(sm.FirstCycle), report.I(sm.LastCycle))
	}
	return []*report.Table{mix, sms}
}

// Timeline renders per-SM activity as a text heat strip: time is split into
// buckets; each cell shows instruction density (' ' none, '.', ':', '#').
func Timeline(events []simt.TraceEvent, buckets int) string {
	if buckets <= 0 {
		buckets = 60
	}
	var maxCycle int64 = 1
	maxSM := 0
	for _, e := range events {
		if e.Cycle > maxCycle {
			maxCycle = e.Cycle
		}
		if e.SM > maxSM {
			maxSM = e.SM
		}
	}
	counts := make([][]int64, maxSM+1)
	for i := range counts {
		counts[i] = make([]int64, buckets)
	}
	var peak int64 = 1
	for _, e := range events {
		if e.Kind != simt.TraceInstr || e.SM < 0 {
			continue
		}
		b := int(e.Cycle * int64(buckets-1) / maxCycle)
		counts[e.SM][b]++
		if counts[e.SM][b] > peak {
			peak = counts[e.SM][b]
		}
	}
	glyphs := []byte(" .:#")
	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline (%d cycles across %d buckets; density per SM)\n", maxCycle, buckets)
	for smID, row := range counts {
		fmt.Fprintf(&sb, "SM%-3d |", smID)
		for _, c := range row {
			g := 0
			if c > 0 {
				g = 1 + int(c*2/peak)
				if g > 3 {
					g = 3
				}
			}
			sb.WriteByte(glyphs[g])
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}
