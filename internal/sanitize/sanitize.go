// Package sanitize implements the device-side kernel sanitizer: the
// repository's equivalent of NVIDIA compute-sanitizer. It attaches to a
// simulated device through the simt.Sanitizer hook and runs three checkers
// over every sanitized launch:
//
//   - racecheck: unsynchronized conflicts — cross-warp plain stores of
//     differing values to one global cell, plain-store/atomic mixes on one
//     cell (which have no sequential analogue under the launch memory
//     model), and same-barrier-epoch conflicts on block-shared arrays.
//     Benign overlaps (same-value multi-writer stores, the paper's BFS
//     frontier race; cross-warp read-vs-write overlaps, which read a
//     well-defined frozen snapshot here) are reported at Info severity.
//   - memcheck: out-of-bounds lane indices on global buffers and shared
//     arrays (observed even though the launch then faults), and plain loads
//     from cells no kernel ever wrote on buffers the host never initialized.
//   - synccheck: SyncThreads executed under a divergent active mask, and
//     block warps that finish a launch having passed unequal barrier counts.
//
// Findings are deduplicated per (checker, rule, buffer) into Diagnostics
// with occurrence counts, element ranges, and warp samples; severity Error
// is the acceptance bar ("a clean kernel has zero Errors"), severity Info is
// advisory. Because hooks charge no simulated cycles, LaunchStats are
// bit-identical with the sanitizer attached; the only cost is host time.
package sanitize

import (
	"fmt"
	"math"
	"sort"

	"maxwarp/internal/simt"
)

// Sanitizer implements simt.Sanitizer. Attach with Device.SetSanitizer and
// enable per launch (LaunchOpts.Sanitize) or device-wide (Config.Sanitize).
// It is driven from the simulation goroutine in execution order, so it needs
// no locking; one Sanitizer must not be shared between concurrently
// launching devices. State spanning launches (which cells kernels have
// written, accumulated diagnostics) persists until Reset.
type Sanitizer struct {
	diags map[diagKey]*Diagnostic
	order []diagKey

	// launch stamps launch-scoped cell state so it lazily resets without a
	// sweep over every tracked buffer.
	launch int

	i32 map[*simt.BufI32]*bufState
	f32 map[*simt.BufF32]*bufState

	// shared tracks block-shared arrays, keyed per (block, array); rebuilt
	// each launch since shared arrays do not outlive their block.
	shared map[sharedKey]*sharedState

	// barrierCounts is block -> warp -> barriers passed, filled by WarpDone
	// and analyzed at LaunchEnd; launch-scoped.
	barrierCounts map[int]map[int]int
}

// NewSanitizer returns an empty sanitizer ready to attach to a device.
func NewSanitizer() *Sanitizer {
	return &Sanitizer{
		diags: make(map[diagKey]*Diagnostic),
		i32:   make(map[*simt.BufI32]*bufState),
		f32:   make(map[*simt.BufF32]*bufState),
	}
}

var _ simt.Sanitizer = (*Sanitizer)(nil)

// Reset discards all diagnostics and all cross-launch tracking (including
// which cells kernels have written), as if freshly constructed.
func (s *Sanitizer) Reset() {
	s.diags = make(map[diagKey]*Diagnostic)
	s.order = nil
	s.i32 = make(map[*simt.BufI32]*bufState)
	s.f32 = make(map[*simt.BufF32]*bufState)
	s.shared = nil
	s.barrierCounts = nil
}

// bufState tracks one global buffer: the persistent set of kernel-written
// cells (memcheck) and the launch-stamped per-cell race state (racecheck).
type bufState struct {
	name    string
	isF32   bool
	written map[int32]struct{}
	cells   map[int32]*cell
}

// cell is one global cell's launch-scoped access history. Conflicts are
// cross-warp by definition: a single warp's program order is real order.
type cell struct {
	launch int

	wrote       bool
	writer      int
	multiWriter bool
	valBits     uint32 // last stored value (for benign-vs-conflicting)

	hadAtomic   bool
	atomicWarp  int
	multiAtomic bool

	hadRead     bool
	reader      int
	multiReader bool
}

// reset clears launch-scoped history when first touched in a new launch.
func (c *cell) reset(launch int) {
	if c.launch == launch {
		return
	}
	*c = cell{launch: launch}
}

type sharedKey struct {
	block int
	key   string
}

type sharedState struct {
	cells map[int32]*sharedCell
}

// sharedCell is one shared-array cell's history within its current barrier
// epoch. Any same-epoch cross-warp conflict involving a plain access is a
// race: unlike global memory there is no frozen snapshot — shared stores are
// immediately visible, so interleaving order is real.
type sharedCell struct {
	epoch int

	wrote       bool
	writer      int
	multiWriter bool

	hadAtomic   bool
	atomicWarp  int
	multiAtomic bool

	hadRead     bool
	reader      int
	multiReader bool
}

// LaunchBegin implements simt.Sanitizer.
func (s *Sanitizer) LaunchBegin(lc simt.LaunchConfig) {
	s.launch++
	s.shared = make(map[sharedKey]*sharedState)
	s.barrierCounts = make(map[int]map[int]int)
}

// stateI32 returns (creating) the tracking state for an int32 buffer.
func (s *Sanitizer) stateI32(b *simt.BufI32) *bufState {
	st := s.i32[b]
	if st == nil {
		st = &bufState{name: b.Name(), written: make(map[int32]struct{}), cells: make(map[int32]*cell)}
		s.i32[b] = st
	}
	return st
}

// stateF32 returns (creating) the tracking state for a float32 buffer.
func (s *Sanitizer) stateF32(b *simt.BufF32) *bufState {
	st := s.f32[b]
	if st == nil {
		st = &bufState{name: b.Name(), isF32: true, written: make(map[int32]struct{}), cells: make(map[int32]*cell)}
		s.f32[b] = st
	}
	return st
}

// formatVal renders a stored value for messages, honoring the element type.
func (st *bufState) formatVal(bits uint32) string {
	if st.isF32 {
		return fmt.Sprintf("%v", math.Float32frombits(bits))
	}
	return fmt.Sprintf("%d", int32(bits))
}

// GlobalAccess implements simt.Sanitizer: one warp instruction on a global
// buffer, observed before its bounds check.
func (s *Sanitizer) GlobalAccess(a *simt.GlobalAccess) {
	var st *bufState
	var n int
	var hostInit bool
	if a.I32 != nil {
		st = s.stateI32(a.I32)
		n = a.I32.Len()
		hostInit = a.I32.HostInitialized()
	} else {
		st = s.stateF32(a.F32)
		n = a.F32.Len()
		hostInit = a.F32.HostInitialized()
	}
	for lane, active := range a.Mask {
		if !active {
			continue
		}
		idx := a.Idx[lane]
		if idx < 0 || int(idx) >= n {
			s.record("memcheck", RuleOOB, SeverityError, st.name,
				fmt.Sprintf("warp %d lane %d %s at index %d, buffer length %d",
					a.Warp, lane, a.Kind, idx, n),
				int64(idx), a.Warp)
			continue
		}
		switch a.Kind {
		case simt.AccessLoad:
			s.checkLoad(st, hostInit, idx, a.Warp)
		case simt.AccessStore:
			var bits uint32
			if a.ValI32 != nil {
				bits = uint32(a.ValI32[lane])
			} else if a.ValF32 != nil {
				bits = math.Float32bits(a.ValF32[lane])
			}
			s.checkStore(st, idx, a.Warp, bits)
		case simt.AccessAtomic:
			s.checkAtomic(st, idx, a.Warp)
		}
	}
}

// checkLoad handles a plain global load of one lane.
func (s *Sanitizer) checkLoad(st *bufState, hostInit bool, idx int32, warp int) {
	if _, ok := st.written[idx]; !ok && !hostInit {
		s.record("memcheck", RuleUninitRead, SeverityError, st.name,
			fmt.Sprintf("warp %d read %s[%d], which no kernel wrote and the host never initialized",
				warp, st.name, idx),
			int64(idx), warp)
	}
	c := st.cells[idx]
	if c == nil {
		c = &cell{launch: s.launch}
		st.cells[idx] = c
	}
	c.reset(s.launch)
	if (c.wrote && (c.writer != warp || c.multiWriter)) ||
		(c.hadAtomic && (c.atomicWarp != warp || c.multiAtomic)) {
		s.record("racecheck", RuleStaleRead, SeverityInfo, st.name,
			fmt.Sprintf("warp %d plain-read %s[%d] while another warp writes it this launch (read sees the pre-launch snapshot)",
				warp, st.name, idx),
			int64(idx), warp)
	}
	if !c.hadRead {
		c.hadRead, c.reader = true, warp
	} else if c.reader != warp {
		c.multiReader = true
	}
}

// checkStore handles a plain global store of one lane.
func (s *Sanitizer) checkStore(st *bufState, idx int32, warp int, bits uint32) {
	st.written[idx] = struct{}{}
	c := st.cells[idx]
	if c == nil {
		c = &cell{launch: s.launch}
		st.cells[idx] = c
	}
	c.reset(s.launch)
	if c.hadAtomic && (c.atomicWarp != warp || c.multiAtomic) {
		s.record("racecheck", RulePlainAtomic, SeverityError, st.name,
			fmt.Sprintf("warp %d plain-stored %s[%d], which warp %d updates atomically this launch (no sequential analogue)",
				warp, st.name, idx, c.atomicWarp),
			int64(idx), warp, c.atomicWarp)
	}
	if c.wrote && c.writer != warp {
		if bits != c.valBits {
			s.record("racecheck", RuleWriteWrite, SeverityError, st.name,
				fmt.Sprintf("warps %d and %d stored different values (%s vs %s) to %s[%d] in one launch",
					c.writer, warp, st.formatVal(c.valBits), st.formatVal(bits), st.name, idx),
				int64(idx), warp, c.writer)
		} else {
			s.record("racecheck", RuleBenignWriteWrite, SeverityInfo, st.name,
				fmt.Sprintf("warps %d and %d stored the same value (%s) to %s[%d] in one launch",
					c.writer, warp, st.formatVal(bits), st.name, idx),
				int64(idx), warp, c.writer)
		}
	}
	if c.hadRead && (c.reader != warp || c.multiReader) {
		s.record("racecheck", RuleStaleRead, SeverityInfo, st.name,
			fmt.Sprintf("warp %d stored %s[%d] after another warp plain-read it this launch (the read saw the pre-launch snapshot)",
				warp, st.name, idx),
			int64(idx), warp)
	}
	if !c.wrote {
		c.wrote, c.writer = true, warp
	} else if c.writer != warp {
		c.multiWriter = true
	}
	c.valBits = bits
}

// checkAtomic handles an atomic read-modify-write of one lane.
func (s *Sanitizer) checkAtomic(st *bufState, idx int32, warp int) {
	st.written[idx] = struct{}{}
	c := st.cells[idx]
	if c == nil {
		c = &cell{launch: s.launch}
		st.cells[idx] = c
	}
	c.reset(s.launch)
	if c.wrote && (c.writer != warp || c.multiWriter) {
		s.record("racecheck", RulePlainAtomic, SeverityError, st.name,
			fmt.Sprintf("warp %d atomically updated %s[%d], which warp %d plain-stores this launch (no sequential analogue)",
				warp, st.name, idx, c.writer),
			int64(idx), warp, c.writer)
	}
	if c.hadRead && (c.reader != warp || c.multiReader) {
		s.record("racecheck", RuleStaleRead, SeverityInfo, st.name,
			fmt.Sprintf("warp %d atomically updated %s[%d] while another warp plain-reads it this launch",
				warp, st.name, idx),
			int64(idx), warp)
	}
	if !c.hadAtomic {
		c.hadAtomic, c.atomicWarp = true, warp
	} else if c.atomicWarp != warp {
		c.multiAtomic = true
	}
}

// SharedAccess implements simt.Sanitizer: one warp instruction on a
// block-shared array, observed before its bounds check.
func (s *Sanitizer) SharedAccess(a *simt.SharedAccess) {
	name := "shared:" + a.Key
	st := s.shared[sharedKey{a.Block, a.Key}]
	if st == nil {
		st = &sharedState{cells: make(map[int32]*sharedCell)}
		s.shared[sharedKey{a.Block, a.Key}] = st
	}
	for lane, active := range a.Mask {
		if !active {
			continue
		}
		idx := a.Idx[lane]
		if idx < 0 || int(idx) >= a.Len {
			s.record("memcheck", RuleSharedOOB, SeverityError, name,
				fmt.Sprintf("warp %d lane %d %s at index %d, shared array length %d",
					a.Warp, lane, a.Kind, idx, a.Len),
				int64(idx), a.Warp)
			continue
		}
		c := st.cells[idx]
		if c == nil {
			c = &sharedCell{epoch: a.Epoch}
			st.cells[idx] = c
		}
		if c.epoch != a.Epoch {
			// A barrier separates the histories; start a fresh interval.
			*c = sharedCell{epoch: a.Epoch}
		}
		s.checkShared(c, name, a.Kind, idx, a.Warp)
	}
}

// checkShared flags same-epoch cross-warp conflicts on one shared cell.
// Shared stores are immediately visible to the whole block, so any
// unsynchronized cross-warp overlap involving a plain access is an Error;
// atomic-vs-atomic is the one safe concurrent combination.
func (s *Sanitizer) checkShared(c *sharedCell, name string, kind simt.AccessKind, idx int32, warp int) {
	conflict := ""
	switch kind {
	case simt.AccessLoad:
		if c.wrote && (c.writer != warp || c.multiWriter) {
			conflict = "read vs store"
		} else if c.hadAtomic && (c.atomicWarp != warp || c.multiAtomic) {
			conflict = "read vs atomic"
		}
	case simt.AccessStore:
		if c.wrote && (c.writer != warp || c.multiWriter) {
			conflict = "store vs store"
		} else if c.hadAtomic && (c.atomicWarp != warp || c.multiAtomic) {
			conflict = "store vs atomic"
		} else if c.hadRead && (c.reader != warp || c.multiReader) {
			conflict = "store vs read"
		}
	case simt.AccessAtomic:
		if c.wrote && (c.writer != warp || c.multiWriter) {
			conflict = "atomic vs store"
		} else if c.hadRead && (c.reader != warp || c.multiReader) {
			conflict = "atomic vs read"
		}
	}
	if conflict != "" {
		s.record("racecheck", RuleSharedRace, SeverityError, name,
			fmt.Sprintf("%s on %s[%d] by warp %d and another warp with no barrier between them",
				conflict, name, idx, warp),
			int64(idx), warp)
	}
	switch kind {
	case simt.AccessLoad:
		if !c.hadRead {
			c.hadRead, c.reader = true, warp
		} else if c.reader != warp {
			c.multiReader = true
		}
	case simt.AccessStore:
		if !c.wrote {
			c.wrote, c.writer = true, warp
		} else if c.writer != warp {
			c.multiWriter = true
		}
	case simt.AccessAtomic:
		if !c.hadAtomic {
			c.hadAtomic, c.atomicWarp = true, warp
		} else if c.atomicWarp != warp {
			c.multiAtomic = true
		}
	}
}

// Barrier implements simt.Sanitizer.
func (s *Sanitizer) Barrier(block, warp int, divergent bool) {
	if divergent {
		s.record("synccheck", RuleDivergentBarrier, SeverityError, "",
			fmt.Sprintf("warp %d (block %d) executed SyncThreads under a divergent mask: some lanes branched around the barrier",
				warp, block),
			-1, warp)
	}
}

// WarpDone implements simt.Sanitizer.
func (s *Sanitizer) WarpDone(block, warp, barriers int) {
	m := s.barrierCounts[block]
	if m == nil {
		m = make(map[int]int)
		s.barrierCounts[block] = m
	}
	m[warp] = barriers
}

// LaunchEnd implements simt.Sanitizer. On a clean launch it runs the
// whole-launch synccheck analysis: every warp of a block must have passed
// the same number of barriers. Aborted launches skip it — their warps were
// torn down mid-kernel, so unequal counts are expected.
func (s *Sanitizer) LaunchEnd(err error) {
	if err != nil {
		return
	}
	blocks := make([]int, 0, len(s.barrierCounts))
	for b := range s.barrierCounts {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	for _, b := range blocks {
		m := s.barrierCounts[b]
		warps := make([]int, 0, len(m))
		for w := range m {
			warps = append(warps, w)
		}
		sort.Ints(warps)
		first, count := -1, 0
		for _, w := range warps {
			if first < 0 {
				first, count = w, m[w]
				continue
			}
			if m[w] != count {
				s.record("synccheck", RuleBarrierMismatch, SeverityError, "",
					fmt.Sprintf("block %d: warp %d passed %d barriers but warp %d passed %d — some warps skipped a SyncThreads",
						b, first, count, w, m[w]),
					-1, first, w)
			}
		}
	}
}
