package sanitize

import (
	"fmt"
	"sort"
	"strings"

	"maxwarp/internal/report"
)

// Severity ranks a diagnostic. The acceptance bar for kernels in this repo is
// "zero Error-severity diagnostics"; Info diagnostics describe behavior that
// is well-defined under the simulator's launch memory model (frozen base +
// per-SM store shadows + ordered atomic overlay) but would be a hazard on
// real hardware with a weaker model, so they stay visible for review.
type Severity uint8

const (
	// SeverityInfo marks benign-but-notable behavior: same-value multi-writer
	// stores (the paper's benign BFS race) and cross-warp read-vs-write
	// overlaps whose reads are well-defined frozen-snapshot reads here.
	SeverityInfo Severity = iota
	// SeverityError marks behavior with no sequential analogue or an outright
	// fault: divergent barriers, mismatched barrier counts, out-of-bounds
	// lanes, uninitialized reads, conflicting-value races, plain/atomic mixes,
	// and unsynchronized shared-memory conflicts.
	SeverityError
)

// String names the severity for reports.
func (s Severity) String() string {
	if s == SeverityError {
		return "ERROR"
	}
	return "INFO"
}

// Rule identifiers, one per distinct hazard the checkers detect.
const (
	// racecheck (global memory)
	RuleWriteWrite       = "write-write"        // cross-warp stores of differing values
	RuleBenignWriteWrite = "benign-write-write" // cross-warp stores, all values equal
	RulePlainAtomic      = "plain-atomic"       // plain store + atomic on one cell
	RuleStaleRead        = "stale-read"         // cross-warp plain read vs write
	// racecheck (shared memory)
	RuleSharedRace = "shared-race" // same-epoch cross-warp conflict
	// memcheck
	RuleOOB        = "oob"         // lane index outside the buffer
	RuleSharedOOB  = "shared-oob"  // lane index outside the shared array
	RuleUninitRead = "uninit-read" // plain load of a never-written cell
	// synccheck
	RuleDivergentBarrier = "divergent-barrier" // SyncThreads under a divergent mask
	RuleBarrierMismatch  = "barrier-mismatch"  // block warps passed unequal barrier counts
)

// maxWarpSample bounds how many distinct warp ids a diagnostic records.
const maxWarpSample = 8

// Diagnostic is one deduplicated finding. Repeated occurrences of the same
// (checker, rule, buffer) fold into a single diagnostic with an occurrence
// count, an element-index range, and a sample of the warps involved.
type Diagnostic struct {
	// Checker is "racecheck", "memcheck", or "synccheck".
	Checker string
	// Rule is one of the Rule* constants.
	Rule string
	// Severity classifies the finding; see Severity.
	Severity Severity
	// Buffer names the global buffer or shared array ("shared:<key>")
	// involved; empty for barrier findings.
	Buffer string
	// Message describes the first occurrence in concrete terms.
	Message string
	// Count is how many occurrences folded into this diagnostic.
	Count int
	// MinIndex/MaxIndex bound the element indices involved (-1 when the rule
	// has no element, e.g. barrier findings).
	MinIndex, MaxIndex int64
	// Warps samples the grid-wide warp ids involved (at most maxWarpSample,
	// ascending).
	Warps []int
}

// String renders the diagnostic as a single report line.
func (d *Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s/%s", d.Severity, d.Checker, d.Rule)
	if d.Buffer != "" {
		fmt.Fprintf(&b, " [%s]", d.Buffer)
	}
	fmt.Fprintf(&b, ": %s", d.Message)
	if d.Count > 1 {
		fmt.Fprintf(&b, " (x%d)", d.Count)
	}
	return b.String()
}

type diagKey struct {
	checker, rule, buffer string
}

// record folds one occurrence into the dedup map.
func (s *Sanitizer) record(checker, rule string, sev Severity, buffer, msg string, index int64, warps ...int) {
	k := diagKey{checker, rule, buffer}
	d := s.diags[k]
	if d == nil {
		d = &Diagnostic{
			Checker:  checker,
			Rule:     rule,
			Severity: sev,
			Buffer:   buffer,
			Message:  msg,
			MinIndex: index,
			MaxIndex: index,
		}
		s.diags[k] = d
		s.order = append(s.order, k)
	}
	d.Count++
	if index >= 0 {
		if d.MinIndex < 0 || index < d.MinIndex {
			d.MinIndex = index
		}
		if index > d.MaxIndex {
			d.MaxIndex = index
		}
	}
	for _, w := range warps {
		d.addWarp(w)
	}
}

func (d *Diagnostic) addWarp(w int) {
	i := sort.SearchInts(d.Warps, w)
	if i < len(d.Warps) && d.Warps[i] == w {
		return
	}
	if len(d.Warps) >= maxWarpSample {
		return
	}
	d.Warps = append(d.Warps, 0)
	copy(d.Warps[i+1:], d.Warps[i:])
	d.Warps[i] = w
}

// Diagnostics returns every finding, most severe first, then by checker,
// rule, and buffer — a deterministic order independent of detection order.
func (s *Sanitizer) Diagnostics() []*Diagnostic {
	out := make([]*Diagnostic, 0, len(s.diags))
	for _, k := range s.order {
		out = append(out, s.diags[k])
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Buffer < b.Buffer
	})
	return out
}

// Errors returns only the Error-severity findings, in Diagnostics order.
func (s *Sanitizer) Errors() []*Diagnostic {
	var out []*Diagnostic
	for _, d := range s.Diagnostics() {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// HasErrors reports whether any Error-severity finding was recorded.
func (s *Sanitizer) HasErrors() bool {
	for _, d := range s.diags {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Table renders all findings as a report table (the repo's standard text /
// markdown / CSV surface).
func (s *Sanitizer) Table() *report.Table {
	t := &report.Table{
		ID:      "SAN",
		Title:   "Kernel sanitizer findings",
		Columns: []string{"severity", "checker", "rule", "buffer", "count", "elems", "warps", "detail"},
	}
	for _, d := range s.Diagnostics() {
		elems := "-"
		if d.MinIndex >= 0 {
			if d.MinIndex == d.MaxIndex {
				elems = fmt.Sprintf("[%d]", d.MinIndex)
			} else {
				elems = fmt.Sprintf("[%d..%d]", d.MinIndex, d.MaxIndex)
			}
		}
		warps := "-"
		if len(d.Warps) > 0 {
			parts := make([]string, len(d.Warps))
			for i, w := range d.Warps {
				parts[i] = fmt.Sprintf("%d", w)
			}
			warps = strings.Join(parts, ",")
			if len(d.Warps) == maxWarpSample {
				warps += ",…"
			}
		}
		t.AddRow(d.Severity.String(), d.Checker, d.Rule, d.Buffer,
			fmt.Sprintf("%d", d.Count), elems, warps, d.Message)
	}
	if len(t.Rows) == 0 {
		t.Notes = append(t.Notes, "no findings")
	}
	return t
}

// Text renders the findings table as aligned terminal text.
func (s *Sanitizer) Text() string { return s.Table().Text() }
