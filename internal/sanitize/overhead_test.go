package sanitize_test

import (
	"testing"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/sanitize"
	"maxwarp/internal/simt"
)

// BenchmarkBFSSanitizer measures the host wall-clock cost of the sanitizer
// on the same workload as internal/obs's observability benchmark. Simulated
// cycles are unchanged by construction (TestSanitizerCyclesUnchanged); this
// pins what the checking actually costs: nothing when attached but not
// enabled, and the per-access bookkeeping when it is.
func BenchmarkBFSSanitizer(b *testing.B) {
	g, err := gengraph.ChungLu(1<<12, 8, 2.2, 42)
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestOutComponentSeed(g)

	cases := []struct {
		name             string
		attach, sanitize bool
	}{
		{name: "bare"},
		{name: "attached-disabled", attach: true},
		{name: "sanitized", attach: true, sanitize: true},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := simt.DefaultConfig()
				cfg.Sanitize = c.sanitize
				d, err := simt.NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if c.attach {
					d.SetSanitizer(sanitize.NewSanitizer())
				}
				if _, err := gpualgo.BFS(d, gpualgo.Upload(d, g), src, gpualgo.Options{K: 8}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
