package sanitize

import (
	"strings"
	"testing"

	"maxwarp/internal/simt"
)

// sanConfig is a tiny device: 4-wide warps so cross-warp scenarios need only
// 8 threads, and few SMs so tests stay fast.
func sanConfig() simt.Config {
	cfg := simt.DefaultConfig()
	cfg.NumSMs = 2
	cfg.WarpWidth = 4
	cfg.MaxWarpsPerSM = 8
	cfg.MaxBlocksPerSM = 4
	cfg.Sanitize = true
	return cfg
}

// sanDevice returns a sanitized device and its attached sanitizer.
func sanDevice(t *testing.T) (*simt.Device, *Sanitizer) {
	t.Helper()
	d := simt.MustNewDevice(sanConfig())
	s := NewSanitizer()
	d.SetSanitizer(s)
	return d, s
}

// launch runs the kernel over blocks×tpb and fails the test on launch error.
func launch(t *testing.T, d *simt.Device, blocks, tpb int, k simt.Kernel) *simt.LaunchStats {
	t.Helper()
	stats, err := d.Launch(simt.LaunchConfig{Blocks: blocks, ThreadsPerBlock: tpb}, k)
	if err != nil {
		t.Fatalf("launch: %v", err)
	}
	return stats
}

// hasRule reports whether any diagnostic matches checker/rule.
func hasRule(diags []*Diagnostic, checker, rule string) bool {
	for _, d := range diags {
		if d.Checker == checker && d.Rule == rule {
			return true
		}
	}
	return false
}

func wantError(t *testing.T, s *Sanitizer, checker, rule string) {
	t.Helper()
	if !hasRule(s.Errors(), checker, rule) {
		t.Errorf("missing Error %s/%s; diagnostics:\n%s", checker, rule, s.Text())
	}
}

func wantClean(t *testing.T, s *Sanitizer) {
	t.Helper()
	if errs := s.Errors(); len(errs) != 0 {
		t.Errorf("expected zero Error diagnostics, got %d:\n%s", len(errs), s.Text())
	}
}

// --- racecheck: global memory ---

func TestRacecheckWriteWriteConflicting(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 1)
	// Two warps each store their own warp id to out[0]: a conflicting-value
	// cross-warp write-write race.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		w.StoreI32(out, w.ConstI32(0), w.ConstI32(int32(w.GlobalWarpID())))
	})
	wantError(t, s, "racecheck", RuleWriteWrite)
}

func TestRacecheckBenignSameValue(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 1)
	// Both warps store the same constant: the paper's benign BFS-style race.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		w.StoreI32(out, w.ConstI32(0), w.ConstI32(7))
	})
	wantClean(t, s)
	if !hasRule(s.Diagnostics(), "racecheck", RuleBenignWriteWrite) {
		t.Errorf("missing Info benign-write-write:\n%s", s.Text())
	}
}

func TestRacecheckPlainAtomicMix(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 1)
	out.Fill(0)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		if w.GlobalWarpID() == 0 {
			w.StoreI32(out, w.ConstI32(0), w.ConstI32(1))
		} else {
			w.AtomicAddI32(out, w.ConstI32(0), w.ConstI32(1), nil)
		}
	})
	wantError(t, s, "racecheck", RulePlainAtomic)
}

func TestRacecheckStaleReadIsInfo(t *testing.T) {
	d, s := sanDevice(t)
	buf := d.AllocI32("flag", 1)
	buf.Fill(0)
	// Warp 0 stores, warp 1 plain-reads the same cell: well-defined under the
	// frozen-snapshot launch model, so Info, not Error.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		if w.GlobalWarpID() == 0 {
			w.StoreI32(buf, w.ConstI32(0), w.ConstI32(1))
		} else {
			dst := w.VecI32()
			w.LoadI32(buf, w.ConstI32(0), dst)
		}
	})
	wantClean(t, s)
	if !hasRule(s.Diagnostics(), "racecheck", RuleStaleRead) {
		t.Errorf("missing Info stale-read:\n%s", s.Text())
	}
}

// --- racecheck: shared memory ---

func TestRacecheckSharedStoreStore(t *testing.T) {
	d, s := sanDevice(t)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		tile := w.SharedI32("tile", 4)
		// Both warps store shared[0] with no barrier between them.
		w.StoreSharedI32(tile, w.ConstI32(0), w.ConstI32(1))
	})
	wantError(t, s, "racecheck", RuleSharedRace)
}

func TestRacecheckSharedBarrierSeparates(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 8)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		hist := w.SharedI32("hist", 4)
		// Same-epoch shared atomics from both warps are the safe concurrent
		// combination; the barrier then orders them before the plain reads.
		w.AtomicAddSharedI32(hist, w.LaneIDs(), w.ConstI32(1), nil)
		w.SyncThreads()
		dst := w.VecI32()
		w.LoadSharedI32(hist, w.LaneIDs(), dst)
		w.StoreI32(out, w.GlobalThreadIDs(), dst)
	})
	wantClean(t, s)
	if len(s.Diagnostics()) != 0 {
		t.Errorf("expected no diagnostics at all:\n%s", s.Text())
	}
}

// --- memcheck ---

func TestMemcheckOOB(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 4)
	_, err := d.Launch(simt.LaunchConfig{Blocks: 1, ThreadsPerBlock: 4}, func(w *simt.WarpCtx) {
		w.StoreI32(out, w.ConstI32(5), w.ConstI32(1))
	})
	if err == nil {
		t.Fatal("OOB launch should fail")
	}
	wantError(t, s, "memcheck", RuleOOB)
}

func TestMemcheckSharedOOB(t *testing.T) {
	d, s := sanDevice(t)
	_, err := d.Launch(simt.LaunchConfig{Blocks: 1, ThreadsPerBlock: 4}, func(w *simt.WarpCtx) {
		tile := w.SharedI32("tile", 2)
		w.StoreSharedI32(tile, w.ConstI32(3), w.ConstI32(1))
	})
	if err == nil {
		t.Fatal("shared OOB launch should fail")
	}
	wantError(t, s, "memcheck", RuleSharedOOB)
}

func TestMemcheckUninitRead(t *testing.T) {
	d, s := sanDevice(t)
	buf := d.AllocI32("scratch", 8)
	// Alloc without Upload/Fill/Data: reads are CUDA-uninitialized.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		dst := w.VecI32()
		w.LoadI32(buf, w.GlobalThreadIDs(), dst)
	})
	wantError(t, s, "memcheck", RuleUninitRead)
}

func TestMemcheckHostInitIsClean(t *testing.T) {
	d, s := sanDevice(t)
	buf := d.AllocI32("scratch", 8)
	buf.Fill(0)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		dst := w.VecI32()
		w.LoadI32(buf, w.GlobalThreadIDs(), dst)
	})
	wantClean(t, s)
}

func TestMemcheckKernelWriteInitializes(t *testing.T) {
	d, s := sanDevice(t)
	buf := d.AllocI32("scratch", 8)
	// First launch writes every cell; the second launch's reads are then
	// initialized even though the host never touched the buffer.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		w.StoreI32(buf, w.GlobalThreadIDs(), w.GlobalThreadIDs())
	})
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		dst := w.VecI32()
		w.LoadI32(buf, w.GlobalThreadIDs(), dst)
	})
	wantClean(t, s)
}

// --- synccheck ---

func TestSynccheckDivergentBarrier(t *testing.T) {
	d, s := sanDevice(t)
	// One warp per block so the barrier itself completes; the hazard is the
	// divergent mask at the barrier, not a hang.
	launch(t, d, 1, 4, func(w *simt.WarpCtx) {
		w.If(func(lane int) bool { return lane < 2 }, func() {
			w.SyncThreads() //kernelcheck:ignore barrier
		}, nil)
	})
	wantError(t, s, "synccheck", RuleDivergentBarrier)
}

func TestSynccheckBarrierMismatch(t *testing.T) {
	d, s := sanDevice(t)
	// Warp 0 passes one barrier, warp 1 passes none. The simulator releases
	// the barrier when warp 1 exits (as real hardware effectively does), so
	// the launch completes — but the counts disagree.
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		if w.GlobalWarpID()%2 == 0 {
			w.SyncThreads()
		}
	})
	wantError(t, s, "synccheck", RuleBarrierMismatch)
}

func TestSynccheckUniformBarrierClean(t *testing.T) {
	d, s := sanDevice(t)
	launch(t, d, 2, 8, func(w *simt.WarpCtx) {
		w.SyncThreads()
		w.SyncThreads()
	})
	wantClean(t, s)
	if len(s.Diagnostics()) != 0 {
		t.Errorf("expected no diagnostics:\n%s", s.Text())
	}
}

// --- clean corpus: idiomatic kernels must produce zero diagnostics ---

func TestCleanDisjointWrites(t *testing.T) {
	d, s := sanDevice(t)
	in := d.UploadI32("in", []int32{1, 2, 3, 4, 5, 6, 7, 8})
	out := d.AllocI32("out", 8)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		v := w.VecI32()
		w.LoadI32(in, w.GlobalThreadIDs(), v)
		w.Apply(1, func(lane int) { v[lane] *= 2 })
		w.StoreI32(out, w.GlobalThreadIDs(), v)
	})
	wantClean(t, s)
	if len(s.Diagnostics()) != 0 {
		t.Errorf("expected no diagnostics:\n%s", s.Text())
	}
}

func TestCleanAtomicMin(t *testing.T) {
	d, s := sanDevice(t)
	dist := d.AllocI32("dist", 2)
	dist.Fill(1 << 30)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		idx := w.VecI32()
		w.Apply(1, func(lane int) { idx[lane] = w.GlobalThreadIDs()[lane] % 2 })
		w.AtomicMinI32(dist, idx, w.GlobalThreadIDs(), nil)
	})
	wantClean(t, s)
	if len(s.Diagnostics()) != 0 {
		t.Errorf("expected no diagnostics:\n%s", s.Text())
	}
}

// --- reporting ---

func TestDiagnosticRendering(t *testing.T) {
	d, s := sanDevice(t)
	out := d.AllocI32("out", 1)
	launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		w.StoreI32(out, w.ConstI32(0), w.ConstI32(int32(w.GlobalWarpID())))
	})
	text := s.Text()
	for _, want := range []string{"ERROR", "racecheck", RuleWriteWrite, "out"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q:\n%s", want, text)
		}
	}
	errs := s.Errors()
	if len(errs) == 0 {
		t.Fatal("no errors recorded")
	}
	line := errs[0].String()
	if !strings.Contains(line, "racecheck/write-write") || !strings.Contains(line, "[out]") {
		t.Errorf("Diagnostic.String() = %q", line)
	}
	if !s.HasErrors() {
		t.Error("HasErrors() = false with errors present")
	}
	s.Reset()
	if len(s.Diagnostics()) != 0 || s.HasErrors() {
		t.Error("Reset did not clear diagnostics")
	}
}

func TestDedupFoldsOccurrences(t *testing.T) {
	d, s := sanDevice(t)
	buf := d.AllocI32("scratch", 64)
	// 16 warps each read 4 distinct uninitialized cells: one diagnostic, many
	// occurrences, with the element range covering the whole buffer.
	launch(t, d, 8, 8, func(w *simt.WarpCtx) {
		dst := w.VecI32()
		w.LoadI32(buf, w.GlobalThreadIDs(), dst)
	})
	errs := s.Errors()
	if len(errs) != 1 {
		t.Fatalf("expected 1 deduplicated diagnostic, got %d:\n%s", len(errs), s.Text())
	}
	dgn := errs[0]
	if dgn.Count != 64 {
		t.Errorf("Count = %d, want 64", dgn.Count)
	}
	if dgn.MinIndex != 0 || dgn.MaxIndex != 63 {
		t.Errorf("index range [%d..%d], want [0..63]", dgn.MinIndex, dgn.MaxIndex)
	}
	if len(dgn.Warps) != 8 {
		t.Errorf("warp sample size %d, want capped at 8", len(dgn.Warps))
	}
}

// --- overhead: the sanitizer must not perturb the simulation ---

func TestSanitizerCyclesUnchanged(t *testing.T) {
	kernel := func(in, out *simt.BufI32) simt.Kernel {
		return func(w *simt.WarpCtx) {
			v := w.VecI32()
			w.LoadI32(in, w.GlobalThreadIDs(), v)
			w.Apply(2, func(lane int) { v[lane] = v[lane]*3 + 1 })
			w.SyncThreads()
			w.StoreI32(out, w.GlobalThreadIDs(), v)
		}
	}
	run := func(sanitize bool) int64 {
		cfg := sanConfig()
		cfg.Sanitize = sanitize
		d := simt.MustNewDevice(cfg)
		if sanitize {
			d.SetSanitizer(NewSanitizer())
		}
		data := make([]int32, 256)
		for i := range data {
			data[i] = int32(i)
		}
		in := d.UploadI32("in", data)
		out := d.AllocI32("out", 256)
		stats, err := d.Launch(simt.Grid1D(256, 8), kernel(in, out))
		if err != nil {
			t.Fatal(err)
		}
		return stats.Cycles
	}
	plain, sanitized := run(false), run(true)
	if plain != sanitized {
		t.Errorf("sanitizer changed simulated cycles: %d -> %d", plain, sanitized)
	}
}

func TestSanitizedLaunchFallsBackSequential(t *testing.T) {
	cfg := sanConfig()
	cfg.ParallelSMs = 2 // request parallel so the forced fallback is visible
	d := simt.MustNewDevice(cfg)
	s := NewSanitizer()
	d.SetSanitizer(s)
	out := d.AllocI32("out", 8)
	stats := launch(t, d, 1, 8, func(w *simt.WarpCtx) {
		w.StoreI32(out, w.GlobalThreadIDs(), w.GlobalThreadIDs())
	})
	if stats.SequentialFallback != "sanitizer" {
		t.Errorf("SequentialFallback = %q, want \"sanitizer\"", stats.SequentialFallback)
	}
	wantClean(t, s)
}
