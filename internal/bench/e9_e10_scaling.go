package bench

import (
	"fmt"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
)

// E9Scaling reproduces the size-scaling figure: BFS edge throughput (MTEPS,
// simulated) versus graph size for the skewed (RMAT) and regular (uniform)
// regimes, baseline vs warp-centric. Expected shape: the warp-centric
// advantage on RMAT persists or widens with size; on uniform graphs the two
// track each other.
func E9Scaling(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	t := &report.Table{
		ID:      "E9",
		Title:   "BFS throughput vs graph size (simulated MTEPS)",
		Columns: []string{"graph", "scale", "V", "E", "K=1 MTEPS", "K=32 MTEPS", "speedup"},
	}
	scales := []int{cfg.Scale - 2, cfg.Scale - 1, cfg.Scale, cfg.Scale + 1}
	kinds := []struct {
		name  string
		build func(scale int) (*graph.CSR, error)
	}{
		{"RMAT", func(s int) (*graph.CSR, error) {
			return gengraph.RMAT(s, 8, gengraph.DefaultRMAT, cfg.Seed)
		}},
		{"Uniform", func(s int) (*graph.CSR, error) {
			n := 1 << s
			return gengraph.UniformRandom(n, 8*n, cfg.Seed)
		}},
	}
	for _, kind := range kinds {
		for _, s := range scales {
			if s < 4 {
				continue
			}
			g, err := kind.build(s)
			if err != nil {
				return nil, err
			}
			src := graph.LargestOutComponentSeed(g)
			teps := func(k int) (float64, error) {
				d, err := newDevice(cfg)
				if err != nil {
					return 0, err
				}
				dg := gpualgo.Upload(d, g)
				res, err := gpualgo.BFS(d, dg, src, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
				if err != nil {
					return 0, err
				}
				return res.TEPS(g.NumEdges(), cfg.Device.ClockGHz) / 1e6, nil
			}
			base, err := teps(1)
			if err != nil {
				return nil, err
			}
			fullK := cfg.Device.WarpWidth
			warp, err := teps(fullK)
			if err != nil {
				return nil, err
			}
			t.AddRow(kind.name, report.I(int64(s)),
				report.I(int64(g.NumVertices())), report.I(int64(g.NumEdges())),
				report.F(base, 2), report.F(warp, 2),
				report.F(warp/base, 2)+"x")
		}
	}
	return []*report.Table{t}, nil
}

// E10Coalescing reproduces the memory-transaction analysis: global-memory
// transactions per warp memory instruction and bytes moved per edge for the
// neighbor-sum gather kernel, as K sweeps. Expected shape: transactions per
// op fall steeply from K=1 (scattered per-lane adjacency reads) toward K=32
// (lane-contiguous reads of each list).
func E10Coalescing(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:      "E10",
		Title:   "Memory coalescing: neighbor-sum gather kernel",
		Columns: []string{"graph", "K", "mem txns", "txns/mem-op", "bytes/edge", "Mcycles"},
		Notes:   []string{fmt.Sprintf("segment size %d bytes", cfg.Device.SegmentBytes)},
	}
	for _, w := range ws {
		values := make([]int32, w.g.NumVertices())
		for i := range values {
			values[i] = int32(i)
		}
		for _, k := range cfg.Ks {
			d, err := newDevice(cfg)
			if err != nil {
				return nil, err
			}
			dg := gpualgo.Upload(d, w.g)
			res, err := gpualgo.NeighborSum(d, dg, values, gpualgo.Options{K: k, BlockSize: cfg.BlockSize})
			if err != nil {
				return nil, err
			}
			bytesPerEdge := 0.0
			if m := w.g.NumEdges(); m > 0 {
				bytesPerEdge = float64(res.Stats.MemBytes) / float64(m)
			}
			t.AddRow(w.name, report.I(int64(k)),
				report.I(res.Stats.MemTxns),
				report.F(res.Stats.TxnsPerMemOp(), 2),
				report.F(bytesPerEdge, 1),
				report.F(float64(res.Stats.Cycles)/1e6, 2))
		}
	}
	return []*report.Table{t}, nil
}
