package bench

import (
	"strconv"
	"strings"
	"testing"
)

// smallCfg keeps harness tests fast while preserving the qualitative shapes.
func smallCfg() Config {
	cfg := Config{Scale: 8, Seed: 42}.WithDefaults()
	cfg.Device.NumSMs = 4
	cfg.Device.MaxWarpsPerSM = 16
	return cfg
}

func parseSpeed(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", cell, err)
	}
	return v
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 22 {
		t.Fatalf("expected 22 experiments, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("incomplete experiment: %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if _, err := ByID(e.ID); err != nil {
			t.Fatalf("ByID(%s): %v", e.ID, err)
		}
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestE1Shapes(t *testing.T) {
	tables, err := E1GraphTable(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) != 5 {
		t.Fatalf("expected 5 workloads, got %d", len(tab.Rows))
	}
	// The suite is ordered most-skewed -> most-regular: first CV must exceed
	// last CV by a wide margin (columns: ... 5 = deg CV).
	first := parseF(t, tab.Rows[0][5])
	last := parseF(t, tab.Rows[len(tab.Rows)-1][5])
	if first < 4*last+0.5 {
		t.Fatalf("skew ordering broken: first CV %.2f, last CV %.2f", first, last)
	}
}

func TestE2HistogramTotals(t *testing.T) {
	cfg := smallCfg()
	tables, err := E2DegreeHistogram(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// Column sums must equal each workload's vertex count.
	e1, err := E1GraphTable(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for col := 1; col < len(tab.Columns); col++ {
		sum := 0.0
		for _, row := range tab.Rows {
			sum += parseF(t, row[col])
		}
		wantV := parseF(t, e1[0].Rows[col-1][1])
		if sum != wantV {
			t.Fatalf("column %s sums to %v, want %v vertices", tab.Columns[col], sum, wantV)
		}
	}
}

func TestE4HeadlineShape(t *testing.T) {
	cfg := smallCfg()
	cfg.Ks = []int{1, 4, 32}
	tables, err := E4WarpSizeSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// Columns: graph, baseline, K=4, K=32, best K, best speedup.
	bestSpeedCol := len(tab.Columns) - 1
	var skewedBest, meshBest float64
	for _, row := range tab.Rows {
		switch row[0] {
		case "WikiTalk-like", "LiveJournal-like":
			if s := parseSpeed(t, row[bestSpeedCol]); s > skewedBest {
				skewedBest = s
			}
		case "RoadNet-like":
			meshBest = parseSpeed(t, row[bestSpeedCol])
		}
	}
	if skewedBest < 1.5 {
		t.Fatalf("warp-centric best speedup on skewed graphs only %.2fx", skewedBest)
	}
	if meshBest >= skewedBest {
		t.Fatalf("mesh speedup %.2fx should trail skewed %.2fx", meshBest, skewedBest)
	}
}

func TestE5TradeoffShape(t *testing.T) {
	cfg := smallCfg()
	cfg.Ks = []int{1, 32}
	tables, err := E5UtilImbalance(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// Columns: graph, K, simd util, useful util, cv, ...
	byGraph := map[string]map[string][]float64{}
	for _, row := range tab.Rows {
		if byGraph[row[0]] == nil {
			byGraph[row[0]] = map[string][]float64{}
		}
		byGraph[row[0]][row[1]] = []float64{parseF(t, row[2]), parseF(t, row[3]), parseF(t, row[4])}
	}
	for name, rows := range byGraph {
		k1, k32 := rows["1"], rows["32"]
		if k1 == nil || k32 == nil {
			t.Fatalf("%s: missing K rows", name)
		}
		for _, r := range [][]float64{k1, k32} {
			if r[0] < 0 || r[0] > 1 || r[1] < 0 || r[1] > r[0]+1e-9 {
				t.Errorf("%s: utilization out of bounds: %v", name, r)
			}
		}
	}
	// Workload imbalance falls with K on the skewed workload.
	if skew := byGraph["WikiTalk-like"]; skew["32"][2] > skew["1"][2] {
		t.Errorf("WikiTalk-like: imbalance CV rose from %.3f (K=1) to %.3f (K=32)",
			skew["1"][2], skew["32"][2])
	}
	// Useful ALU utilization falls with K on the regular low-degree workload
	// (the cost side of the paper's trade-off).
	if mesh := byGraph["RoadNet-like"]; mesh["32"][1] >= mesh["1"][1] {
		t.Errorf("RoadNet-like: useful utilization did not fall with K=32 (%.3f -> %.3f)",
			mesh["1"][1], mesh["32"][1])
	}
}

func TestE10CoalescingShape(t *testing.T) {
	cfg := smallCfg()
	cfg.Ks = []int{1, 32}
	tables, err := E10Coalescing(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	txns := map[string]map[string]float64{}
	for _, row := range tab.Rows {
		if txns[row[0]] == nil {
			txns[row[0]] = map[string]float64{}
		}
		txns[row[0]][row[1]] = parseF(t, row[3])
	}
	for name, m := range txns {
		if m["32"] >= m["1"] {
			t.Errorf("%s: txns/op did not improve (K=1 %.2f, K=32 %.2f)", name, m["1"], m["32"])
		}
	}
}

func TestA1ResidencyShape(t *testing.T) {
	cfg := smallCfg()
	tables, err := A1ResidencySweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	if len(tab.Rows) < 3 {
		t.Fatalf("too few residency points: %d", len(tab.Rows))
	}
	first := parseF(t, tab.Rows[0][1])              // 1 warp/SM
	last := parseF(t, tab.Rows[len(tab.Rows)-1][1]) // max warps/SM
	if first <= last {
		t.Fatalf("no latency-hiding benefit: 1 warp/SM %.2f Mcycles vs max %.2f", first, last)
	}
}

func TestE6RunsOnSingleWorkload(t *testing.T) {
	// E6 across all workloads is slow; shape-check the hub-heavy case only
	// by reusing the registry function on a trimmed config.
	cfg := smallCfg()
	tables, err := E6DeferOutliers(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tab := tables[0]
	// At least one skewed-graph row with a nonzero deferred count.
	found := false
	for _, row := range tab.Rows {
		if (row[0] == "WikiTalk-like" || row[0] == "LiveJournal-like") && row[4] != "0" {
			found = true
		}
	}
	if !found {
		t.Fatal("no vertices were ever deferred on skewed workloads")
	}
}

func TestE3AndE7AndE8AndE9Run(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness pass is slow")
	}
	cfg := smallCfg()
	for _, id := range []string{"E3", "E7", "E8", "E9", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18", "A2", "A3", "A4"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			t.Fatalf("%s produced no data", id)
		}
		// Render paths must not panic and must mention the ID.
		if !strings.Contains(tables[0].Markdown(), id) {
			t.Fatalf("%s: markdown missing id", id)
		}
		_ = tables[0].Text()
		_ = tables[0].CSV()
	}
}
