// Package bench is the experiment harness: each E-number from DESIGN.md's
// experiment index is a named, runnable experiment that regenerates the
// corresponding table or figure data series from the paper's evaluation.
package bench

import (
	"fmt"

	"maxwarp/internal/gengraph"
	"maxwarp/internal/graph"
	"maxwarp/internal/report"
	"maxwarp/internal/simt"
)

// Config controls experiment sizing. The defaults run the whole suite in
// minutes on a laptop; raise Scale to stress the shapes at larger sizes.
type Config struct {
	// Scale is log2 of the vertex count for synthetic workloads (default 10).
	Scale int
	// Seed drives all generators (default 42).
	Seed uint64
	// Device is the simulated GPU (default simt.DefaultConfig()).
	Device simt.Config
	// Ks is the virtual-warp-width sweep (default 1,2,4,8,16,32, clipped to
	// the device warp width).
	Ks []int
	// BlockSize is threads per block for all launches (default 128).
	BlockSize int
	// NewDevice, when non-nil, replaces the default device constructor for
	// every device an experiment creates — the hook observability tooling
	// uses to attach tracers/profiling and accumulate device-lifetime totals
	// across an experiment's launches.
	NewDevice func(simt.Config) (*simt.Device, error)
}

// WithDefaults fills zero values.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Device.NumSMs == 0 {
		c.Device = simt.DefaultConfig()
	}
	if len(c.Ks) == 0 {
		for k := 1; k <= c.Device.WarpWidth; k *= 2 {
			c.Ks = append(c.Ks, k)
		}
	}
	if c.BlockSize == 0 {
		c.BlockSize = 128
	}
	return c
}

// Experiment is one reproducible table/figure generator.
type Experiment struct {
	// ID is the index from DESIGN.md ("E1".."E10", "A1", "A2").
	ID string
	// Title says what it reproduces.
	Title string
	// Run produces the experiment's tables.
	Run func(cfg Config) ([]*report.Table, error)
}

// workload is a named graph instance for the sweep tables.
type workload struct {
	name string
	g    *graph.CSR
	src  graph.VertexID
}

// buildWorkloads instantiates the preset suite at the configured scale and
// picks a BFS source reaching a large component in each.
func buildWorkloads(cfg Config) ([]workload, error) {
	var out []workload
	for _, p := range gengraph.Presets() {
		g, err := p.Build(cfg.Scale, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("bench: building %s: %w", p.Name, err)
		}
		out = append(out, workload{name: p.Name, g: g, src: graph.LargestOutComponentSeed(g)})
	}
	return out, nil
}

func newDevice(cfg Config) (*simt.Device, error) {
	if cfg.NewDevice != nil {
		return cfg.NewDevice(cfg.Device)
	}
	return simt.NewDevice(cfg.Device)
}
