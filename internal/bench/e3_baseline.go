package bench

import (
	"time"

	"maxwarp/internal/cpualgo"
	"maxwarp/internal/gpualgo"
	"maxwarp/internal/report"
)

// E3BaselineVsCPU reproduces the motivating comparison: the thread-per-vertex
// GPU baseline against sequential and parallel CPU BFS. The paper's point:
// on skewed graphs the naive GPU mapping squanders the hardware — its edge
// throughput collapses relative to its own performance on regular graphs,
// letting the CPU close the gap.
func E3BaselineVsCPU(cfg Config) ([]*report.Table, error) {
	cfg = cfg.WithDefaults()
	ws, err := buildWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &report.Table{
		ID:    "E3",
		Title: "BFS: thread-per-vertex GPU baseline vs CPU",
		Columns: []string{
			"graph", "cpu-seq ms", "cpu-par ms", "gpu-base ms(sim)",
			"gpu MTEPS(sim)", "gpu SIMD util", "gpu imbalance CV",
		},
		Notes: []string{
			"GPU times are simulated cycles at the configured clock; CPU times are host wall-clock.",
			"Compare columns within a row qualitatively, and GPU rows against each other quantitatively.",
		},
	}
	for _, w := range ws {
		seqMS := timeIt(func() { cpualgo.BFSSequential(w.g, w.src) })
		parMS := timeIt(func() { cpualgo.BFSParallel(w.g, w.src, 0) })
		d, err := newDevice(cfg)
		if err != nil {
			return nil, err
		}
		dg := gpualgo.Upload(d, w.g)
		res, err := gpualgo.BFS(d, dg, w.src, gpualgo.Options{K: 1, BlockSize: cfg.BlockSize})
		if err != nil {
			return nil, err
		}
		t.AddRow(w.name,
			report.F(seqMS, 3), report.F(parMS, 3),
			report.F(res.Stats.TimeMS(cfg.Device.ClockGHz), 3),
			report.F(res.TEPS(w.g.NumEdges(), cfg.Device.ClockGHz)/1e6, 2),
			report.F(res.Stats.SIMDUtilization(), 3),
			report.F(res.Stats.WarpImbalanceCV(), 2))
	}
	return []*report.Table{t}, nil
}

// timeIt returns the best-of-3 wall-clock milliseconds for f.
func timeIt(f func()) float64 {
	best := 0.0
	for i := 0; i < 3; i++ {
		start := time.Now()
		f()
		ms := float64(time.Since(start).Nanoseconds()) / 1e6
		if i == 0 || ms < best {
			best = ms
		}
	}
	return best
}
