package bench

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateE4Baseline = flag.Bool("update-e4-baseline", false,
	"rewrite testdata/e4_baseline.json from the current simulator instead of comparing")

const e4BaselinePath = "testdata/e4_baseline.json"

// e4Baseline is the committed regression baseline: the E4 sweep's cycle
// counts at a pinned config. The gate tolerates ±10% so deliberate
// performance-model changes don't break CI noise-free runs, while mapping or
// scheduler regressions (which move cycles by far more) are caught.
type e4Baseline struct {
	Scale  int       `json:"scale"`
	Seed   uint64    `json:"seed"`
	Points []E4Point `json:"points"`
}

// e4GateConfig pins the sweep the gate runs: small enough for CI (~1s),
// large enough that the warp-centric mapping effects dominate the counts.
func e4GateConfig() Config {
	return Config{Scale: 9, Seed: 42}
}

// TestE4CyclesRegression is the benchmark-regression gate: simulated cycles
// of the E4 BFS warp-width sweep must stay within ±10% of the committed
// baseline, point by point. Simulated cycles are deterministic, so any drift
// is a code change, not noise. Regenerate after an intentional
// performance-model change with:
//
//	go test ./internal/bench -run TestE4CyclesRegression -update-e4-baseline
func TestE4CyclesRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("regression gate skipped in -short mode")
	}
	points, err := E4SweepPoints(e4GateConfig())
	if err != nil {
		t.Fatal(err)
	}
	if *updateE4Baseline {
		cfg := e4GateConfig()
		data, err := json.MarshalIndent(e4Baseline{Scale: cfg.Scale, Seed: cfg.Seed, Points: points}, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(e4BaselinePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(e4BaselinePath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d points)", e4BaselinePath, len(points))
		return
	}

	raw, err := os.ReadFile(e4BaselinePath)
	if err != nil {
		t.Fatalf("reading baseline (rerun with -update-e4-baseline to create it): %v", err)
	}
	var base e4Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing %s: %v", e4BaselinePath, err)
	}
	cfg := e4GateConfig()
	if base.Scale != cfg.Scale || base.Seed != cfg.Seed {
		t.Fatalf("baseline recorded at scale=%d seed=%d, gate runs scale=%d seed=%d — regenerate it",
			base.Scale, base.Seed, cfg.Scale, cfg.Seed)
	}
	if len(base.Points) != len(points) {
		t.Fatalf("sweep shape changed: %d points vs %d in baseline — regenerate it",
			len(points), len(base.Points))
	}
	const tolerance = 0.10
	for i, p := range points {
		b := base.Points[i]
		if p.Graph != b.Graph || p.K != b.K {
			t.Fatalf("point %d is (%s, K=%d) but baseline has (%s, K=%d) — regenerate it",
				i, p.Graph, p.K, b.Graph, b.K)
		}
		drift := math.Abs(float64(p.Cycles)-float64(b.Cycles)) / float64(b.Cycles)
		if drift > tolerance {
			t.Errorf("%s K=%d: %d cycles vs baseline %d (%+.1f%%, tolerance ±%.0f%%)",
				p.Graph, p.K, p.Cycles, b.Cycles,
				100*(float64(p.Cycles)/float64(b.Cycles)-1), 100*tolerance)
		}
	}
	if t.Failed() {
		t.Log("if the drift is an intentional performance-model change, regenerate with -update-e4-baseline")
	}
}
